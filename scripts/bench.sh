#!/bin/sh
# bench.sh — run the hot-kernel benchmarks with allocation reporting, for
# before/after comparison of the Rosenbrock stepping loop (see the
# "Hot-loop cost model" section of EXPERIMENTS.md).
#
# Usage:
#   scripts/bench.sh                 # full run
#   scripts/bench.sh -benchtime 1x   # smoke run (CI)
#   scripts/bench.sh -count 5        # for benchstat comparisons
#   scripts/bench.sh --json BENCH_4.json   # also write machine-readable results
#
# --json FILE parses every benchmark line of the run into one JSON document
# (name, ns/op, allocs/op, plus host metadata) — the canonical format
# later PRs append their BENCH_<n>.json files in. All other arguments are
# passed through to `go test`.
set -eu
cd "$(dirname "$0")/.."

json=""
if [ "${1:-}" = "--json" ]; then
    json="${2:?usage: bench.sh --json FILE [go test args]}"
    shift 2
fi

run_benches() {
    echo "## linalg kernels (assembly vs in-place update, SpMV, team dispatch)"
    go test -run XXX \
        -bench 'BenchmarkShifted|BenchmarkMulVec|BenchmarkBuilderBuild|BenchmarkTeamDispatch' \
        -benchmem "$@" ./internal/linalg/

    echo
    echo "## rosenbrock steady-state stepping (must be 0 allocs/op)"
    go test -run XXX \
        -bench 'BenchmarkSubsolveSteady|BenchmarkIntegrateWorkspaceReuse' \
        -benchmem "$@" ./internal/rosenbrock/
}

hostcpus="$(nproc 2>/dev/null || echo 1)"
if [ "$hostcpus" -le 1 ]; then
    echo "WARNING: this host exposes only 1 CPU — the >1-core benchmark rows" >&2
    echo "WARNING: measure dispatch overhead, not scaling; calibration will" >&2
    echo "WARNING: sequentialize the team kernels. Use a multi-core runner" >&2
    echo "WARNING: (CI pins GOMAXPROCS=4) for real strong-scaling numbers." >&2
fi

if [ -z "$json" ]; then
    run_benches "$@"
    exit 0
fi

out="$(mktemp)"
trap 'rm -f "$out"' EXIT
run_benches "$@" | tee "$out"

# Benchmark lines look like:
#   BenchmarkX/sub-4  100  12345 ns/op  67 extra/unit  0 B/op  0 allocs/op
awk '
BEGIN { n = 0 }
# scaling_valid marks whether >1-core rows measure real scaling: on a
# 1-CPU host they measure dispatch overhead only (see the WARNING above),
# so downstream consumers must not read speedups out of them.
$1 ~ /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    ns = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (allocs == "") allocs = 0
    rows[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs)
}
END {
    printf "{\n"
    printf "  \"pr\": 5,\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"host_cpus\": %d,\n", hostcpus
    printf "  \"gomaxprocs\": %d,\n", gomaxprocs
    printf "  \"scaling_valid\": %s,\n", (hostcpus > 1 ? "true" : "false")
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
    printf "  ]\n"
    printf "}\n"
}' goversion="$(go env GOVERSION)" hostcpus="$hostcpus" gomaxprocs="${GOMAXPROCS:-$hostcpus}" "$out" > "$json"
echo
echo "wrote $json"

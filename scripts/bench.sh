#!/bin/sh
# bench.sh — run the hot-kernel benchmarks with allocation reporting, for
# before/after comparison of the Rosenbrock stepping loop (see the
# "Hot-loop cost model" section of EXPERIMENTS.md).
#
# Usage:
#   scripts/bench.sh                 # full run
#   scripts/bench.sh -benchtime 1x   # smoke run (CI)
#   scripts/bench.sh -count 5        # for benchstat comparisons
#
# Extra arguments are passed through to `go test`.
set -eu
cd "$(dirname "$0")/.."

echo "## linalg kernels (assembly vs in-place update, SpMV)"
go test -run XXX \
    -bench 'BenchmarkShifted|BenchmarkMulVec|BenchmarkBuilderBuild' \
    -benchmem "$@" ./internal/linalg/

echo
echo "## rosenbrock steady-state stepping (must be 0 allocs/op)"
go test -run XXX \
    -bench 'BenchmarkSubsolveSteady|BenchmarkIntegrateWorkspaceReuse' \
    -benchmem "$@" ./internal/rosenbrock/

#!/usr/bin/env bash
# Batching/caching ablation: drive the identical bursty load against two
# self-hosted solve services — throughput layer (cross-request batcher +
# signature-keyed solver cache) off, then on — and compare completed
# requests per second. CI gates on the speedup and the warm-cache hit
# rate and uploads the BENCH_6.json comparison as an artifact. Extra
# arguments pass through to `solved loadtest` (e.g. -bench-json ...).
set -euo pipefail
cd "$(dirname "$0")/.."

exec go run ./cmd/solved loadtest -ab \
    -clients 16 -requests 8 -burst 8 -tenants 4 -seed 42 \
    -root 1 -level 2 -tol 1e-2 \
    -queue 256 -executors 4 -degrade-at 0 \
    -batch-window 500us -batch-size 4 \
    "$@"

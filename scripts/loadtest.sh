#!/usr/bin/env bash
# Smoke-load the solve service: start it in-process and drive a bursty
# multi-client load against it, printing the outcome ledger with
# p50/p95/p99 latencies. CI runs this with a fault spec so the shed /
# degraded / failed paths all light up; extra arguments are passed
# through to `solved loadtest` (e.g. -faults ..., -timeline out.jsonl).
set -euo pipefail
cd "$(dirname "$0")/.."

exec go run ./cmd/solved loadtest -self \
    -clients 8 -requests 6 -burst 3 -tenants 3 -seed 42 \
    -queue 8 -executors 2 -degrade-at 0.5 \
    -tenant-rate 100 -tenant-burst 6 -max-inflight 4 \
    -retries 1 -failure-budget 6 -breaker-threshold 3 \
    "$@"

#!/usr/bin/env bash
# Run the repository's lint stack exactly as the CI lint/vetsparse jobs do:
#   1. go vet (the standard passes)
#   2. vetsparse, both drivers (the custom go/analysis suite — determinism,
#      allocfree, protocol, obsnames, locks, leaks, deadlines; see LINTS.md)
#   3. vetsparse -json audit record (every finding, suppressed ones marked)
#   4. revive (doc-comment policy, revive.toml)
#   5. staticcheck (staticcheck.conf policy)
# Tools that are not installed locally are skipped with a notice; CI
# installs the pinned versions (see .github/workflows/ci.yml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> vetsparse (standalone driver)"
go run ./cmd/vetsparse ./...

echo "==> vetsparse (go vet -vettool)"
bin="$(mktemp -d)/vetsparse"
go build -o "$bin" ./cmd/vetsparse
go vet -vettool="$bin" ./...

# The JSON record includes findings silenced by //vetsparse:ignore
# (marked "suppressed": true) so the suppression inventory stays
# auditable; CI uploads it as an artifact. VETSPARSE_JSON overrides the
# output path.
echo "==> vetsparse -json audit record"
"$bin" -json ./... > "${VETSPARSE_JSON:-vetsparse.json}" || true
echo "    wrote ${VETSPARSE_JSON:-vetsparse.json}"

if command -v revive >/dev/null 2>&1; then
  echo "==> revive"
  revive -config revive.toml -set_exit_status \
    ./internal/core/... ./internal/solver/... ./internal/obs/... ./internal/trace/...
else
  echo "==> revive not installed; skipping (CI: go install github.com/mgechev/revive@latest)"
fi

if command -v staticcheck >/dev/null 2>&1; then
  echo "==> staticcheck"
  staticcheck ./...
else
  echo "==> staticcheck not installed; skipping (CI: go install honnef.co/go/tools/cmd/staticcheck@2025.1.1)"
fi

echo "lint OK"

package repro

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/manifold"
	"repro/internal/manifold/lang"
	"repro/internal/pde"
	"repro/internal/solver"
)

// TestFullPaperPipeline runs the complete renovation exactly as the paper
// deployed it: the MANIFOLD gluing modules (protocolMW.m + mainprog.m) are
// executed by this repository's interpreter; the Master and Worker atomics
// are wrappers around the legacy computation (solver.Subsolve); and the
// per-grid results delivered through the coordinator's streams must be
// bit-for-bit identical to the purely sequential run.
func TestFullPaperPipeline(t *testing.T) {
	read := func(name string) string {
		b, err := os.ReadFile(filepath.Join("internal", "manifold", "lang", "testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	proto, err := lang.Parse("protocolMW.m", read("protocolMW.m"))
	if err != nil {
		t.Fatal(err)
	}
	main, err := lang.Parse("mainprog.m", read("mainprog.m"))
	if err != nil {
		t.Fatal(err)
	}
	it, err := lang.NewInterp(proto, main)
	if err != nil {
		t.Fatal(err)
	}

	params := solver.Params{Root: 2, Level: 2, Tol: 1e-3}
	fam := grid.Family(params.Root, params.Level)
	results := map[grid.Grid]solver.Result{}
	var mu sync.Mutex

	// The Master atomic: the behaviour interface of §4.3 wrapped around
	// the legacy main program (minus the subsolve work).
	err = it.RegisterAtomic("Master", func(p *manifold.Process, args []lang.Value) {
		p.Observe("a_rendezvous")
		p.Raise("create_pool")
		for _, g := range fam {
			p.Raise("create_worker")
			ref := p.Input().MustRead().(*manifold.Process)
			ref.Activate()
			p.Output().Write(solver.Job{Grid: g, Prob: pde.PaperProblem(), Tol: params.Tol, TEnd: solver.DefaultTEnd})
		}
		for range fam {
			r := p.Port("dataport").MustRead().(solver.Result)
			mu.Lock()
			results[r.Grid] = r
			mu.Unlock()
		}
		p.Raise("rendezvous")
		p.Wait(manifold.On("a_rendezvous"))
		p.Raise("finished")
		// Step 5 (prolongation) happens below, after the run.
	})
	if err != nil {
		t.Fatal(err)
	}
	// The Worker atomic: the subsolve wrapper.
	err = it.RegisterAtomic("Worker", func(p *manifold.Process, args []lang.Value) {
		job := p.Input().MustRead().(solver.Job)
		prob := job.Prob
		r, err := solver.Subsolve(job.Grid, prob, job.Tol, job.TEnd)
		if err != nil {
			t.Errorf("subsolve %v: %v", job.Grid, err)
		}
		p.Output().Write(r)
		if ev, ok := args[0].(lang.EventVal); ok {
			p.Raise(string(ev))
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- it.Run("Main", lang.StrVal("argv")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("interpreted pipeline timed out")
	}

	seq, err := solver.Sequential(params)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(results) != len(fam) {
		t.Fatalf("got %d grid results, want %d", len(results), len(fam))
	}
	for _, want := range seq.Results {
		got, ok := results[want.Grid]
		if !ok {
			t.Fatalf("no result for %v", want.Grid)
		}
		for i := range want.U {
			if got.U[i] != want.U[i] {
				t.Fatalf("grid %v: u[%d] = %g via MANIFOLD, %g sequentially",
					want.Grid, i, got.U[i], want.U[i])
			}
		}
	}
}

// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation and measure the substrates. One benchmark per
// experiment:
//
//	BenchmarkTable1Tol1e3 / BenchmarkTable1Tol1e4 — Table 1 (both series)
//	BenchmarkFigure1 ... BenchmarkFigure5         — Figures 1-5
//	BenchmarkAblation*                            — design-choice ablations
//
// The per-experiment metrics (speedup, machines, concurrent seconds) are
// attached with b.ReportMetric, so `go test -bench . -benchmem` prints the
// reproduced headline numbers next to the timing of the reproduction
// itself.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/manifold"
	"repro/internal/mwsim"
	"repro/internal/pde"
	"repro/internal/rosenbrock"
	"repro/internal/sim"
	"repro/internal/solver"
)

// --- Table 1 ---

func benchTable(b *testing.B, tol float64) {
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table1(bench.DefaultTable1Options(tol))
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Su, "speedup@15")
	b.ReportMetric(last.M, "machines@15")
	b.ReportMetric(last.Ct, "ct@15_s")
	b.ReportMetric(last.St, "st@15_s")
}

func BenchmarkTable1Tol1e3(b *testing.B) { benchTable(b, 1e-3) }
func BenchmarkTable1Tol1e4(b *testing.B) { benchTable(b, 1e-4) }

// BenchmarkTable1Row regenerates single rows (the per-level cost of the
// cluster replay).
func BenchmarkTable1Row(b *testing.B) {
	for _, level := range []int{0, 5, 10, 15} {
		b.Run(fmt.Sprintf("level=%d", level), func(b *testing.B) {
			var r mwsim.Result
			for i := 0; i < b.N; i++ {
				r = mwsim.Run(mwsim.PaperConfig(2, level, 1e-3))
			}
			b.ReportMetric(r.Speedup, "speedup")
			b.ReportMetric(r.AvgMachines, "machines")
		})
	}
}

// --- Figures ---

func BenchmarkFigure1(b *testing.B) {
	var f bench.Figure1Result
	for i := 0; i < b.N; i++ {
		f = bench.Figure1(2, 15, 1e-3)
	}
	b.ReportMetric(float64(f.PeakM), "peak_machines")
	b.ReportMetric(f.AvgM, "avg_machines")
	b.ReportMetric(f.DurationSec, "duration_s")
}

func benchTimesFigure(b *testing.B, tol float64) {
	var curves []bench.FigureSeries
	for i := 0; i < b.N; i++ {
		rows := bench.Table1(bench.DefaultTable1Options(tol))
		curves = bench.TimesFigure(rows, tol)
	}
	n := len(curves[0].Measured)
	b.ReportMetric(curves[0].Measured[n-1], "st@15_s")
	b.ReportMetric(curves[1].Measured[n-1], "ct@15_s")
}

func benchSpeedupFigure(b *testing.B, tol float64) {
	var curves []bench.FigureSeries
	for i := 0; i < b.N; i++ {
		rows := bench.Table1(bench.DefaultTable1Options(tol))
		curves = bench.SpeedupFigure(rows, tol)
	}
	n := len(curves[0].Measured)
	b.ReportMetric(curves[0].Measured[n-1], "speedup@15")
	b.ReportMetric(curves[1].Measured[n-1], "machines@15")
}

func BenchmarkFigure2(b *testing.B) { benchTimesFigure(b, 1e-3) }
func BenchmarkFigure3(b *testing.B) { benchSpeedupFigure(b, 1e-3) }
func BenchmarkFigure4(b *testing.B) { benchTimesFigure(b, 1e-4) }
func BenchmarkFigure5(b *testing.B) { benchSpeedupFigure(b, 1e-4) }

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationPerpetual measures the {perpetual} keyword: task reuse
// vs a fresh fork per worker.
func BenchmarkAblationPerpetual(b *testing.B) {
	for _, perpetual := range []bool{true, false} {
		b.Run(fmt.Sprintf("perpetual=%v", perpetual), func(b *testing.B) {
			cfg := mwsim.PaperConfig(2, 8, 1e-3)
			cfg.Perpetual = perpetual
			var r mwsim.Result
			for i := 0; i < b.N; i++ {
				r = mwsim.Run(cfg)
			}
			b.ReportMetric(float64(r.Forks), "forks")
			b.ReportMetric(r.ConcurrentSec, "ct_s")
		})
	}
}

// BenchmarkAblationPools compares one pool for the whole nested loop with
// a pool (and rendezvous barrier) per grid level.
func BenchmarkAblationPools(b *testing.B) {
	for _, split := range []bool{false, true} {
		b.Run(fmt.Sprintf("poolPerLevel=%v", split), func(b *testing.B) {
			cfg := mwsim.PaperConfig(2, 13, 1e-3)
			cfg.PoolPerLevel = split
			var r mwsim.Result
			for i := 0; i < b.N; i++ {
				r = mwsim.Run(cfg)
			}
			b.ReportMetric(r.ConcurrentSec, "ct_s")
			b.ReportMetric(r.Speedup, "speedup")
		})
	}
}

// BenchmarkAblationIOWorkers measures §4.1's untried alternative: I/O
// workers moving the data instead of the master.
func BenchmarkAblationIOWorkers(b *testing.B) {
	for _, io := range []bool{false, true} {
		b.Run(fmt.Sprintf("ioWorkers=%v", io), func(b *testing.B) {
			cfg := mwsim.PaperConfig(2, 15, 1e-3)
			cfg.IOWorkers = io
			var r mwsim.Result
			for i := 0; i < b.N; i++ {
				r = mwsim.Run(cfg)
			}
			b.ReportMetric(r.ConcurrentSec, "ct_s")
			b.ReportMetric(r.Speedup, "speedup")
		})
	}
}

// BenchmarkAblationBundling compares the distributed deployment ({load 1})
// with the single-task parallel deployment (everything bundled).
func BenchmarkAblationBundling(b *testing.B) {
	for _, load := range []int{1, 64} {
		b.Run(fmt.Sprintf("load=%d", load), func(b *testing.B) {
			cfg := mwsim.PaperConfig(2, 12, 1e-3)
			cfg.MaxLoad = load
			var r mwsim.Result
			for i := 0; i < b.N; i++ {
				r = mwsim.Run(cfg)
			}
			b.ReportMetric(r.ConcurrentSec, "ct_s")
			b.ReportMetric(float64(r.PeakMachines), "peak_machines")
		})
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkRealSolverSeqVsConc runs the actual Go solver (not the
// simulator) both ways on a small level: the local analogue of one Table 1
// row.
func BenchmarkRealSolverSeqVsConc(b *testing.B) {
	p := solver.Params{Root: 2, Level: 3, Tol: 1e-3}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Sequential(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("concurrent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Concurrent(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSubsolve(b *testing.B) {
	prob := pde.PaperProblem()
	g := grid.Grid{Root: 2, L1: 2, L2: 2}
	for i := 0; i < b.N; i++ {
		if _, err := solver.Subsolve(g, prob, 1e-3, solver.DefaultTEnd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBiCGStab(b *testing.B) {
	g := grid.Grid{Root: 2, L1: 3, L2: 3}
	d := pde.NewDisc(g, pde.PaperProblem())
	m := d.A.ShiftedScaled(0.01)
	rhs := linalg.NewVector(d.N())
	rhs.Fill(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := linalg.NewVector(d.N())
		if _, err := linalg.BiCGStab(m, x, rhs, 1e-10, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkROS2Step(b *testing.B) {
	g := grid.Grid{Root: 2, L1: 2, L2: 2}
	d := pde.NewDisc(g, pde.PaperProblem())
	u0 := d.InitialInterior()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := u0.Clone()
		if _, err := rosenbrock.Integrate(d, u, 0, 0.01, rosenbrock.Config{Tol: 1e-3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombine(b *testing.B) {
	fam := grid.Family(2, 4)
	var fields []*grid.Field
	for _, g := range fam {
		f := grid.NewField(g)
		f.Fill(func(x, y float64) float64 { return x * y })
		fields = append(fields, f)
	}
	target := grid.Grid{Root: 2, L1: 4, L2: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid.Combine(fields, 4, target)
	}
}

// BenchmarkProtocolPool measures the coordination overhead of the real
// (goroutine) master/worker protocol with trivial work — the Go analogue
// of the paper's "overhead of the coordination layer".
func BenchmarkProtocolPool(b *testing.B) {
	for _, workers := range []int{1, 8, 31} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Run(func(m *core.Master) {
					m.CreatePool()
					for j := 0; j < workers; j++ {
						m.CreateWorker()
						m.Send(j)
					}
					for j := 0; j < workers; j++ {
						m.ReadResult()
					}
					m.Rendezvous()
					m.Finished()
				}, func(w *core.Worker) {
					w.Write(w.Read())
				})
			}
		})
	}
}

// BenchmarkStreams measures unit throughput through a manifold stream.
func BenchmarkStreams(b *testing.B) {
	env := manifold.NewEnv()
	src := env.NewProcess("src", nil)
	dst := env.NewProcess("dst", nil)
	manifold.Connect(src.Output(), dst.Input(), manifold.KK)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Output().Write(i)
		if _, ok := dst.Input().Read(); !ok {
			b.Fatal("port closed")
		}
	}
}

// BenchmarkSimEngine measures the discrete-event kernel (events/second).
func BenchmarkSimEngine(b *testing.B) {
	env := sim.NewEnv()
	env.Spawn("ticker", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Hold(1)
		}
	})
	b.ResetTimer()
	env.Run()
}

// BenchmarkAblationInnerSolver compares the two inner linear solvers on a
// real Subsolve call (BiCGStab vs restarted GMRES).
func BenchmarkAblationInnerSolver(b *testing.B) {
	g := grid.Grid{Root: 2, L1: 2, L2: 2}
	prob := pde.PaperProblem()
	for _, lin := range []rosenbrock.LinearSolver{rosenbrock.BiCGStab, rosenbrock.GMRES} {
		b.Run(lin.String(), func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				r, err := solver.SubsolveWith(g, prob, 1e-3, solver.DefaultTEnd, lin)
				if err != nil {
					b.Fatal(err)
				}
				iters = r.Stats.LinIters
			}
			b.ReportMetric(float64(iters), "krylov_iters")
		})
	}
}

// Command vetsparse is the repo's custom static-analysis gate: seven
// go/analysis-style passes that machine-check the invariants PRs 1–9
// established — deterministic numerics (determinism), zero-allocation hot
// loops (allocfree), exact master/worker protocol accounting (protocol),
// a single observability name taxonomy (obsnames), and the flow-sensitive
// concurrency trio: lockset discipline (locks), goroutine termination
// (leaks), and request-deadline propagation (deadlines). See LINTS.md for
// each pass's invariant, diagnostics, and suppression conventions.
//
// Run standalone:
//
//	go run ./cmd/vetsparse ./...
//	go run ./cmd/vetsparse -json ./...   # one JSON object per diagnostic line
//
// or as a vet tool, which shares go vet's caching and package loading:
//
//	go build -o /tmp/vetsparse ./cmd/vetsparse
//	go vet -vettool=/tmp/vetsparse ./...
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/passes/allocfree"
	"repro/internal/analysis/passes/deadlines"
	"repro/internal/analysis/passes/determinism"
	"repro/internal/analysis/passes/leaks"
	"repro/internal/analysis/passes/locks"
	"repro/internal/analysis/passes/obsnames"
	"repro/internal/analysis/passes/protocol"
)

func main() {
	analysis.Main("vetsparse",
		determinism.Analyzer,
		allocfree.Analyzer,
		protocol.Analyzer,
		obsnames.Analyzer,
		locks.Analyzer,
		leaks.Analyzer,
		deadlines.Analyzer,
	)
}

// Command vetsparse is the repo's custom static-analysis gate: four
// go/analysis-style passes that machine-check the invariants PRs 1–4
// established — deterministic numerics (determinism), zero-allocation hot
// loops (allocfree), exact master/worker protocol accounting (protocol),
// and a single observability name taxonomy (obsnames). See LINTS.md for
// each pass's invariant, diagnostics, and suppression conventions.
//
// Run standalone:
//
//	go run ./cmd/vetsparse ./...
//
// or as a vet tool, which shares go vet's caching and package loading:
//
//	go build -o /tmp/vetsparse ./cmd/vetsparse
//	go vet -vettool=/tmp/vetsparse ./...
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/passes/allocfree"
	"repro/internal/analysis/passes/determinism"
	"repro/internal/analysis/passes/obsnames"
	"repro/internal/analysis/passes/protocol"
)

func main() {
	analysis.Main("vetsparse",
		determinism.Analyzer,
		allocfree.Analyzer,
		protocol.Analyzer,
		obsnames.Analyzer,
	)
}

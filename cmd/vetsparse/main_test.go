package main

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/allocfree"
	"repro/internal/analysis/passes/determinism"
	"repro/internal/analysis/passes/obsnames"
	"repro/internal/analysis/passes/protocol"
)

// TestSelfClean runs the full vetsparse suite over the repository itself —
// the same invariant CI enforces with `go run ./cmd/vetsparse ./...`.
// Every existing hot path, protocol site, and observability name must
// satisfy the analyzers (with any justified //vetsparse:ignore suppressions
// in place).
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	var out bytes.Buffer
	count, err := analysis.Run(&out, []string{"repro/..."}, []*analysis.Analyzer{
		determinism.Analyzer,
		allocfree.Analyzer,
		protocol.Analyzer,
		obsnames.Analyzer,
	})
	if err != nil {
		t.Fatalf("vetsparse over repro/...: %v", err)
	}
	if count != 0 {
		t.Fatalf("vetsparse reported %d finding(s) on the repo:\n%s", count, out.String())
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/allocfree"
	"repro/internal/analysis/passes/deadlines"
	"repro/internal/analysis/passes/determinism"
	"repro/internal/analysis/passes/leaks"
	"repro/internal/analysis/passes/locks"
	"repro/internal/analysis/passes/obsnames"
	"repro/internal/analysis/passes/protocol"
)

func allAnalyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		allocfree.Analyzer,
		protocol.Analyzer,
		obsnames.Analyzer,
		locks.Analyzer,
		leaks.Analyzer,
		deadlines.Analyzer,
	}
}

// TestSelfClean runs the full vetsparse suite over the repository itself —
// the same invariant CI enforces with `go run ./cmd/vetsparse ./...`.
// Every existing hot path, protocol site, lockset, goroutine, and deadline
// chain must satisfy the analyzers (with any justified //vetsparse:ignore
// suppressions in place).
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	var out bytes.Buffer
	count, err := analysis.Run(&out, []string{"repro/..."}, allAnalyzers())
	if err != nil {
		t.Fatalf("vetsparse over repro/...: %v", err)
	}
	if count != 0 {
		t.Fatalf("vetsparse reported %d finding(s) on the repo:\n%s", count, out.String())
	}
}

// TestSelfJSON runs the suite in -json mode over the repo: the exit count
// must still be zero, every line must decode, and the suppressed findings
// hidden by the tree's //vetsparse:ignore directives must be present and
// marked — that audit trail is why -json exists.
func TestSelfJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	var out bytes.Buffer
	count, err := analysis.RunJSON(&out, []string{"repro/..."}, allAnalyzers())
	if err != nil {
		t.Fatalf("vetsparse -json over repro/...: %v", err)
	}
	if count != 0 {
		t.Fatalf("vetsparse -json counted %d unsuppressed finding(s):\n%s", count, out.String())
	}
	// Any object that does appear must be a suppressed finding: the count
	// above says no live ones exist. (Chain-cutting ignores — the deadlines
	// pass consumes its directives during reachability — produce no
	// diagnostic at all, so an empty stream is also legal here; the
	// directive-interplay tests in internal/analysis pin the marked-
	// suppressed behavior on a synthetic package.)
	dec := json.NewDecoder(&out)
	for dec.More() {
		var d struct {
			File       string `json:"file"`
			Line       int    `json:"line"`
			Col        int    `json:"col"`
			Pass       string `json:"pass"`
			Message    string `json:"message"`
			Suppressed bool   `json:"suppressed"`
		}
		if err := dec.Decode(&d); err != nil {
			t.Fatalf("undecodable -json line: %v", err)
		}
		if !d.Suppressed {
			t.Errorf("unsuppressed finding leaked past count: %+v", d)
		}
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/linalg"
	"repro/internal/serve"
)

// abSide is one half of the batching ablation: the client-side ledger and
// latency profile of a load run, plus the server-side batching/caching
// counters of that run.
type abSide struct {
	Completed int     `json:"completed"`
	Degraded  int     `json:"degraded"`
	Shed      int     `json:"shed"`
	Failed    int     `json:"failed"`
	Errors    int     `json:"errors"`
	P50Us     int64   `json:"p50_us"`
	P95Us     int64   `json:"p95_us"`
	P99Us     int64   `json:"p99_us"`
	ElapsedMs float64 `json:"elapsed_ms"`
	Thru      float64 `json:"throughput_rps"`

	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	BatchFlushes  int64   `json:"batch_flushes"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	ExecScales    int64   `json:"exec_scales"`
}

// abReport is the BENCH_6.json shape: the ablation methodology is the
// same load (same seed, same arrival schedule) against two self-hosted
// servers differing only in the throughput layer.
type abReport struct {
	PR         int     `json:"pr"`
	Bench      string  `json:"bench"`
	Go         string  `json:"go"`
	HostCPUs   int     `json:"host_cpus"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Load       abLoad  `json:"load"`
	Off        abSide  `json:"off"`
	On         abSide  `json:"on"`
	Speedup    float64 `json:"speedup"`
}

type abLoad struct {
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	Burst    int     `json:"burst"`
	Tenants  int     `json:"tenants"`
	Root     int     `json:"root"`
	Level    int     `json:"level"`
	Tol      float64 `json:"tol"`
	PauseMs  float64 `json:"pause_ms"`
	Seed     int64   `json:"seed"`
}

// runAblation is the loadtest -ab mode: drive the identical load against
// a server with the throughput layer off, then on, and compare completed
// requests per second. minSpeedup > 0 turns the comparison into a gate
// (CI's acceptance criterion), minHitRate > 0 gates the warm-cache check.
func runAblation(cfg serve.Config, lc serve.LoadConfig, benchJSON string, minSpeedup, minHitRate float64) int {
	linalg.Calibrate()

	offCfg := cfg
	offCfg.BatchWindow = 0 // no batcher, no cache
	onCfg := cfg
	if onCfg.BatchWindow <= 0 {
		onCfg.BatchWindow = 2 * time.Millisecond
	}

	fmt.Println("ablation: batching+caching OFF")
	off, err := runSide(offCfg, lc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablation:", err)
		return 1
	}
	fmt.Println("ablation: batching+caching ON")
	on, err := runSide(onCfg, lc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablation:", err)
		return 1
	}

	rep := abReport{
		PR: 8, Bench: "serve_batching_ablation",
		Go: runtime.Version(), HostCPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		Load: abLoad{
			Clients: lc.Clients, Requests: lc.Requests, Burst: lc.Burst,
			Tenants: lc.Tenants, Root: lc.Root, Level: lc.Level, Tol: lc.Tol,
			PauseMs: float64(lc.Pause.Microseconds()) / 1e3, Seed: lc.Seed,
		},
		Off: off, On: on,
	}
	if off.Thru > 0 {
		rep.Speedup = on.Thru / off.Thru
	}
	fmt.Printf("ablation: off=%.2f/s on=%.2f/s speedup=%.2fx hit-rate=%.2f (shed off=%d on=%d)\n",
		off.Thru, on.Thru, rep.Speedup, on.CacheHitRate, off.Shed, on.Shed)

	if benchJSON != "" {
		f, err := os.Create(benchJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			return 1
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(rep)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			return 1
		}
	}

	code := 0
	if minSpeedup > 0 {
		if on.Shed != off.Shed {
			fmt.Fprintf(os.Stderr, "ablation: shed rates differ (off=%d on=%d) — speedup not comparable\n", off.Shed, on.Shed)
			code = 1
		}
		if rep.Speedup < minSpeedup {
			fmt.Fprintf(os.Stderr, "ablation: speedup %.2fx below required %.2fx\n", rep.Speedup, minSpeedup)
			code = 1
		}
	}
	if minHitRate > 0 && on.CacheHitRate <= minHitRate {
		fmt.Fprintf(os.Stderr, "ablation: cache hit rate %.2f not above required %.2f\n", on.CacheHitRate, minHitRate)
		code = 1
	}
	return code
}

// runSide self-hosts one server configuration, runs the load, drains, and
// folds the client ledger and server counters into one abSide.
func runSide(cfg serve.Config, lc serve.LoadConfig) (abSide, error) {
	srv := serve.NewServer(cfg)
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return abSide{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	lc.URL = "http://" + ln.Addr().String()
	res := serve.RunLoad(lc)
	fmt.Println(res)
	if clean := srv.Drain(time.Minute); !clean {
		return abSide{}, fmt.Errorf("drain timed out")
	}
	if res.Errors > 0 {
		return abSide{}, fmt.Errorf("%d transport errors", res.Errors)
	}

	rec := srv.Recorder()
	side := abSide{
		Completed: res.Completed, Degraded: res.Degraded, Shed: res.Shed,
		Failed: res.Failed, Errors: res.Errors,
		P50Us: res.P50.Microseconds(), P95Us: res.P95.Microseconds(), P99Us: res.P99.Microseconds(),
		ElapsedMs: float64(res.Elapsed.Microseconds()) / 1e3, Thru: res.Throughput,

		CacheHits:    rec.Counter("serve.cache.hits").Value(),
		CacheMisses:  rec.Counter("serve.cache.misses").Value(),
		BatchFlushes: rec.Counter("serve.batch.flushes").Value(),
		ExecScales:   rec.Counter("serve.exec.scales").Value(),
	}
	if lookups := side.CacheHits + side.CacheMisses; lookups > 0 {
		side.CacheHitRate = float64(side.CacheHits) / float64(lookups)
	}
	if h := rec.Histogram("serve.batch.size"); h.Count() > 0 {
		side.MeanBatchSize = h.Mean()
	}
	return side, nil
}

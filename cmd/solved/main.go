// Command solved runs the multi-tenant solve service: a long-running HTTP
// server that accepts solve jobs (POST /solve), admission-controls them
// per tenant, propagates request deadlines down to the worker protocol,
// retries failed attempts under a seeded backoff and failure budget, and
// degrades to the sequential path under queue pressure. GET /metrics and
// GET /healthz expose the live counters and drain state.
//
//	solved -addr :8080 -queue 64 -executors 2 -tenant-rate 5 -max-inflight 4
//	curl -XPOST -H 'X-Tenant: alice' -H 'X-Deadline-Ms: 5000' \
//	     -d '{"root":2,"level":3,"tol":1e-3}' localhost:8080/solve
//
// SIGTERM or SIGINT triggers the graceful drain: admission stops (503
// "draining"), queued jobs are shed, inflight jobs finish within
// -drain-timeout, and the observability exports flush before exit.
//
// The loadtest subcommand drives a bursty multi-client load against a
// running service — or, with -self, against an in-process one — and
// prints the outcome ledger with p50/p95/p99 latencies:
//
//	solved loadtest -self -clients 8 -requests 10 -burst 4 -faults 'seed=7,panic=0.3'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	if len(os.Args) > 1 && os.Args[1] == "loadtest" {
		return runLoadtest(os.Args[2:])
	}
	return runServe(os.Args[1:])
}

// serveFlags registers the service configuration on fs and returns a
// closure resolving it to a serve.Config — shared by the serve mode and
// loadtest -self.
func serveFlags(fs *flag.FlagSet) func() (serve.Config, error) {
	var (
		queue     = fs.Int("queue", 64, "admission queue depth; a full queue sheds with 503")
		executors = fs.Int("executors", 2, "concurrent solve executors")
		degradeAt = fs.Float64("degrade-at", 0.5, "queue-occupancy fraction at which jobs degrade to the sequential path (0 = never)")
		rate      = fs.Float64("tenant-rate", 0, "per-tenant token refill rate per second (0 = unlimited)")
		burst     = fs.Float64("tenant-burst", 8, "per-tenant token-bucket capacity")
		inflight  = fs.Int("max-inflight", 0, "per-tenant inflight request cap (0 = unlimited)")
		brkN      = fs.Int("breaker-threshold", 3, "consecutive failed requests tripping a tenant's circuit breaker (0 = breaker off)")
		brkCool   = fs.Duration("breaker-cooldown", 5*time.Second, "how long a tripped breaker stays open before a half-open probe")
		attempts  = fs.Int("attempts", 2, "solve attempts per request; attempts after the first are paced by the backoff")
		retries   = fs.Int("retries", 2, "per-job worker retry budget inside each attempt")
		budget    = fs.Int("failure-budget", 8, "failed worker attempts tolerated per request across attempts (0 = unlimited)")
		wdl       = fs.Duration("worker-deadline", 10*time.Second, "per-worker deadline inside a solve (capped by the request deadline)")
		ddl       = fs.Duration("default-deadline", 30*time.Second, "request deadline when the client sends none")
		maxLevel  = fs.Int("max-level", 6, "largest refinement level the service accepts")
		boSeed    = fs.Int64("backoff-seed", 1, "seed of the retry backoff jitter")
		boBase    = fs.Duration("backoff-base", core.DefaultBackoffBase, "base delay of the exponential retry backoff")
		boMax     = fs.Duration("backoff-max", core.DefaultBackoffMax, "delay ceiling of the retry backoff")
		faults    = fs.String("faults", "", "worker fault injection spec, e.g. 'seed=42,panic=0.2,hang=0.1,corrupt=0.1' (applies to every solve)")

		batchWin    = fs.Duration("batch-window", 0, "cross-request batching window (0 = batching and the solver cache off); see SERVING.md")
		batchSize   = fs.Int("batch-size", 8, "flush a pending batch at this many tasks")
		batchWork   = fs.Int("batch-workers", 0, "batch workers, each with a persistent team (0 = GOMAXPROCS)")
		batchTeam   = fs.Int("batch-team", 1, "team size per batch worker")
		batchMargin = fs.Duration("batch-margin", 25*time.Millisecond, "safety margin before the earliest member deadline when flushing")
		cacheN      = fs.Int("cache-entries", 64, "solver-cache entry bound")
		cacheBytes  = fs.Int64("cache-bytes", 256<<20, "solver-cache approximate byte budget")
		maxExec     = fs.Int("max-executors", 0, "autoscale the executor pool up to this (0 = fixed at -executors)")
		scaleEvery  = fs.Duration("scale-every", 20*time.Millisecond, "autoscaler evaluation period")
		scaleMc     = fs.Float64("scale-quantum-mc", 0, "queued megacycles per extra executor (0 = model default)")
	)
	return func() (serve.Config, error) {
		cfg := serve.Config{
			QueueDepth: *queue, Executors: *executors, DegradeAt: *degradeAt,
			TenantRate: *rate, TenantBurst: *burst, MaxInflight: *inflight,
			BreakerThreshold: *brkN, BreakerCooldown: *brkCool,
			Attempts: *attempts, Retries: *retries, FailureBudget: *budget,
			WorkerDeadline: *wdl, DefaultDeadline: *ddl, MaxLevel: *maxLevel,
			Backoff: core.NewBackoff(*boSeed, *boBase, *boMax),
			BatchWindow: *batchWin, BatchSize: *batchSize, BatchWorkers: *batchWork,
			BatchTeam: *batchTeam, BatchMargin: *batchMargin,
			CacheEntries: *cacheN, CacheBytes: *cacheBytes,
			MaxExecutors: *maxExec, ScaleEvery: *scaleEvery, ScaleQuantumMc: *scaleMc,
		}
		if *faults != "" {
			inj, err := core.ParseFaultSpec(*faults)
			if err != nil {
				return serve.Config{}, err
			}
			cfg.Faults = inj
		}
		return cfg, nil
	}
}

func runServe(args []string) int {
	fs := flag.NewFlagSet("solved", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		drainTO  = fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for inflight jobs")
		traceOut = fs.String("trace", "", "write the service's events as a chronological trace on exit ('-' = stdout)")
		timeline = fs.String("timeline", "", "write the service's events as a JSON-lines timeline on exit ('-' = stdout)")
		metrics  = fs.String("metrics", "", "write the metrics summary on exit ('-' = stdout)")
	)
	cfgOf := serveFlags(fs)
	fs.Parse(args)
	cfg, err := cfgOf()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// Same setup-path calibration as the batch command: measure the team
	// dispatch cost once, before any solve runs.
	linalg.Calibrate()

	srv := serve.NewServer(cfg)
	srv.Start()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		err := httpSrv.ListenAndServe()
		if !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Printf("solved: listening on %s (queue=%d executors=%d)\n", *addr, cfg.QueueDepth, cfg.Executors)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	code := 0
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "solved:", err)
		code = 1
	case s := <-sig:
		fmt.Printf("solved: %v — draining (timeout %v)\n", s, *drainTO)
		clean := srv.Drain(*drainTO)
		// Drain settled every admitted job, so open handlers only need to
		// write their responses; give Shutdown a short grace for that.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		httpSrv.Shutdown(ctx)
		cancel()
		if clean {
			fmt.Println("solved: drain complete")
		} else {
			fmt.Println("solved: drain timed out with jobs still running")
			code = 1
		}
	}
	rec := srv.Recorder()
	export(*traceOut, rec.WriteTrace)
	export(*timeline, rec.WriteJSONL)
	export(*metrics, rec.WriteMetrics)
	return code
}

func runLoadtest(args []string) int {
	fs := flag.NewFlagSet("solved loadtest", flag.ExitOnError)
	var (
		url      = fs.String("url", "", "base URL of a running service (empty with -self)")
		self     = fs.Bool("self", false, "start an in-process service on 127.0.0.1:0 and load it")
		clients  = fs.Int("clients", 4, "concurrent clients")
		requests = fs.Int("requests", 8, "requests per client")
		burstN   = fs.Int("burst", 4, "requests fired back to back before an inter-burst pause")
		tenants  = fs.Int("tenants", 2, "tenant names the clients are spread across")
		root     = fs.Int("root", 1, "solve root level")
		level    = fs.Int("level", 1, "solve refinement level")
		tol      = fs.Float64("tol", 1e-2, "solve tolerance")
		deadline = fs.Duration("deadline", 0, "per-request deadline (0 = server default)")
		pause    = fs.Duration("pause", 10*time.Millisecond, "mean inter-burst pause")
		seed     = fs.Int64("seed", 1, "arrival-jitter seed")
		timeline = fs.String("timeline", "", "with -self: write the server's JSON-lines timeline after the run ('-' = stdout)")

		ab         = fs.Bool("ab", false, "ablation: run the same load twice self-hosted — batching+caching off, then on — and compare")
		benchJSON  = fs.String("bench-json", "", "with -ab: write the machine-readable comparison (BENCH_6 format) to this file")
		minSpeedup = fs.Float64("min-speedup", 0, "with -ab: fail unless the on/off throughput ratio reaches this (0 = report only)")
		minHitRate = fs.Float64("min-hit-rate", 0, "with -ab: fail unless the on-run cache hit rate exceeds this")
	)
	cfgOf := serveFlags(fs)
	fs.Parse(args)

	lc := serve.LoadConfig{
		Clients: *clients, Requests: *requests, Burst: *burstN,
		Tenants: *tenants, Root: *root, Level: *level, Tol: *tol,
		Deadline: *deadline, Pause: *pause, Seed: *seed,
	}
	if *ab {
		cfg, err := cfgOf()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		return runAblation(cfg, lc, *benchJSON, *minSpeedup, *minHitRate)
	}

	var srv *serve.Server
	base := *url
	if *self {
		cfg, err := cfgOf()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		linalg.Calibrate()
		srv = serve.NewServer(cfg)
		srv.Start()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("loadtest: self-hosted service on %s\n", base)
	}
	if base == "" {
		fmt.Fprintln(os.Stderr, "loadtest: need -url or -self")
		return 2
	}

	lc.URL = base
	res := serve.RunLoad(lc)
	fmt.Println(res)
	if *self {
		clean := srv.Drain(time.Minute)
		if !clean {
			fmt.Fprintln(os.Stderr, "loadtest: drain timed out")
			return 1
		}
		export(*timeline, srv.Recorder().WriteJSONL)
	}
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadtest: %d transport errors\n", res.Errors)
		return 1
	}
	return 0
}

// export writes one observability view to the named file ('-' = stdout,
// empty = disabled).
func export(path string, write func(io.Writer) error) {
	if path == "" {
		return
	}
	w := io.Writer(os.Stdout)
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := write(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

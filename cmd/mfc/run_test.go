package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSubcommand executes the paper's protocol sources end to end
// through `mfc run` and checks the protocol completed with every worker's
// result delivered.
func TestRunSubcommand(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := runRun([]string{
		"-n", "3",
		"../../internal/manifold/lang/testdata/protocolMW.m",
		"../../internal/manifold/lang/testdata/mainprog.m",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("mfc run exited %d\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "3 result(s): [0 10 20]") {
		t.Errorf("results line missing:\n%s", out)
	}
	if !strings.Contains(out, "rendezvous acknowledged") {
		t.Errorf("rendezvous never acknowledged:\n%s", out)
	}
}

// TestRunSubcommandUsage pins the error surface: no files is a usage
// error, a missing file is a runtime error.
func TestRunSubcommandUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := runRun(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no-file run exited %d, want 2", code)
	}
	if code := runRun([]string{"no-such-file.m"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing-file run exited %d, want 1", code)
	}
}

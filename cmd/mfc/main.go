// Command mfc is the repro's stand-in for the MANIFOLD compiler Mc: it
// lexes, parses and semantically checks MANIFOLD source files, and can dump
// their declarations.
//
//	mfc file1.m file2.m          # check the files together
//	mfc -decls protocolMW.m      # list the declarations
//	mfc -tokens mainprog.m       # dump the token stream
//	mfc run protocolMW.m mainprog.m   # execute on the interpreter
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/manifold/lang"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "run" {
		os.Exit(runRun(os.Args[2:], os.Stdout, os.Stderr))
	}
	var (
		decls  = flag.Bool("decls", false, "list top-level declarations")
		tokens = flag.Bool("tokens", false, "dump the token stream")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mfc [-decls] [-tokens] file.m ...")
		os.Exit(2)
	}

	var progs []*lang.Program
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mfc:", err)
			os.Exit(1)
		}
		if *tokens {
			toks, err := lang.Lex(path, string(src))
			if err != nil {
				fmt.Fprintln(os.Stderr, "mfc:", err)
				os.Exit(1)
			}
			for _, t := range toks {
				fmt.Printf("%s\t%s\n", t.Pos, t)
			}
			continue
		}
		prog, err := lang.Parse(path, string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mfc:", err)
			os.Exit(1)
		}
		progs = append(progs, prog)
	}
	if *tokens {
		return
	}
	declMap, err := lang.Check(progs...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfc:", err)
		os.Exit(1)
	}
	if *decls {
		for _, prog := range progs {
			fmt.Printf("%s:\n", prog.File)
			for _, d := range prog.Decls {
				fmt.Printf("  %s\n", d)
			}
		}
	}
	fmt.Printf("mfc: %d file(s), %d declaration(s), no errors\n", len(progs), len(declMap))
}

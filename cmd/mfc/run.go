package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/manifold"
	"repro/internal/manifold/lang"
)

// runRun is the `mfc run` subcommand: it parses and checks the given
// MANIFOLD sources and executes them on the interpreter, with the paper's
// atomic manifolds — Master and Worker, the Go wrappers around the legacy
// computation — registered as built-ins. Master hands each of n workers
// one integer job, the worker computes job*10, and the sorted results are
// printed after the protocol's rendezvous completes.
func runRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mfc run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n     = fs.Int("n", 4, "workers (and integer jobs) the Master creates")
		entry = fs.String("entry", "Main", "manifold to instantiate and run")
		quiet = fs.Bool("q", false, "suppress the coordinator's MES output")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: mfc run [-n workers] [-entry Main] [-q] protocolMW.m mainprog.m ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	var progs []*lang.Program
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "mfc:", err)
			return 1
		}
		prog, err := lang.Parse(path, string(src))
		if err != nil {
			fmt.Fprintln(stderr, "mfc:", err)
			return 1
		}
		progs = append(progs, prog)
	}

	it, err := lang.NewInterp(progs...)
	if err != nil {
		fmt.Fprintln(stderr, "mfc:", err)
		return 1
	}
	if !*quiet {
		it.Output = stdout
	}

	var (
		mu      sync.Mutex
		results []int
	)
	master := func(p *manifold.Process, args []lang.Value) {
		p.Observe("a_rendezvous")
		p.Raise("create_pool")
		for i := 0; i < *n; i++ {
			p.Raise("create_worker")
			ref := p.Input().MustRead().(*manifold.Process)
			ref.Activate()
			p.Output().Write(i)
		}
		for i := 0; i < *n; i++ {
			u := p.Port("dataport").MustRead()
			mu.Lock()
			results = append(results, u.(int))
			mu.Unlock()
		}
		p.Raise("rendezvous")
		p.Wait(manifold.On("a_rendezvous"))
		p.Raise("finished")
	}
	worker := func(p *manifold.Process, args []lang.Value) {
		u := p.Input().MustRead()
		p.Output().Write(u.(int) * 10)
		if ev, ok := args[0].(lang.EventVal); ok {
			p.Raise(string(ev))
		}
	}
	// The sources decide which atomics they declare; a program without a
	// Master (say, a pipeline demo) simply leaves the binding unused.
	for name, fn := range map[string]lang.AtomicFunc{"Master": master, "Worker": worker} {
		if err := it.RegisterAtomic(name, fn); err != nil {
			fmt.Fprintln(stderr, "mfc: warning:", err)
		}
	}

	if err := it.Run(*entry, lang.StrVal("argv")); err != nil {
		fmt.Fprintln(stderr, "mfc:", err)
		return 1
	}
	if errs := it.Errs(); len(errs) > 0 {
		for _, err := range errs {
			fmt.Fprintln(stderr, "mfc:", err)
		}
		return 1
	}

	mu.Lock()
	sort.Ints(results)
	fmt.Fprintf(stdout, "mfc run: %s terminated, %d result(s): %v\n", *entry, len(results), results)
	mu.Unlock()
	return 0
}

// Command paperbench regenerates the paper's evaluation: Table 1 and
// Figures 1-5, printed side by side with the published numbers.
//
// Usage:
//
//	paperbench -all
//	paperbench -table1 -tol 1e-3
//	paperbench -fig 1
//	paperbench -table1 -runs 5    # average five noisy runs, as the paper did
//	paperbench -fig 1 -timeline run.jsonl   # also export the virtual-time timeline
//	paperbench -scaling 1,2,4     # measure real finest-grid strong scaling
//	paperbench -compare -compare-json BENCH_7.json   # scheduler head-to-head
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/grid"
	"repro/internal/mwsim"
	"repro/internal/obs"
)

func main() {
	var (
		all      = flag.Bool("all", false, "regenerate every table and figure")
		table1   = flag.Bool("table1", false, "regenerate Table 1")
		fig      = flag.Int("fig", 0, "regenerate one figure (1-5)")
		tol      = flag.Float64("tol", 1e-3, "integrator tolerance (1e-3 or 1e-4)")
		runs     = flag.Int("runs", 1, "noisy runs to average (1 = noise-free)")
		maxLvl   = flag.Int("maxlevel", 15, "highest additional refinement level")
		timeline = flag.String("timeline", "", "with -fig 1: also export the simulated run's virtual-time events as a JSON-lines timeline to this file ('-' = stdout)")
		scaling  = flag.String("scaling", "", "measure real (not simulated) finest-grid strong scaling over this comma-separated cores list, e.g. '1,2,4'")
		scLevel  = flag.Int("scaling-level", 5, "with -scaling: refinement of the (square) grid measured")
		scRuns   = flag.Int("scaling-runs", 3, "with -scaling: repeats per cores value (fastest kept)")

		compare     = flag.Bool("compare", false, "run the scheduler head-to-head: one seeded bursty workload through pool, steal, and steal+elastic")
		compareJSON = flag.String("compare-json", "", "with -compare: write the report (the BENCH_7.json shape) to this file")
		cmpJobs     = flag.Int("compare-jobs", 0, "with -compare: jobs in the workload (0 = default)")
		cmpRuns     = flag.Int("compare-runs", 0, "with -compare: repeats per schedule, fastest kept (0 = default)")
		cmpSeed     = flag.Int64("compare-seed", 0, "with -compare: workload seed (0 = default)")
		minRatio    = flag.Float64("min-steal-ratio", 0, "with -compare: fail unless steal throughput >= this multiple of pool throughput (and outputs are bit-identical)")
	)
	flag.Parse()

	if *compare {
		os.Exit(runCompare(*compareJSON, *cmpJobs, *cmpRuns, *cmpSeed, *minRatio))
	}
	if *scaling != "" {
		os.Exit(runScaling(*scaling, *scLevel, *tol, *scRuns))
	}
	if !*all && !*table1 && *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}

	table := func(tol float64) []bench.Row {
		opt := bench.DefaultTable1Options(tol)
		opt.MaxLevel = *maxLvl
		opt.Runs = *runs
		return bench.Table1(opt)
	}

	if *table1 || *all {
		tols := []float64{*tol}
		if *all {
			tols = []float64{1e-3, 1e-4}
		}
		for _, tl := range tols {
			bench.WriteTable1(os.Stdout, tl, table(tl))
			fmt.Println()
		}
	}
	doFig := func(n int) {
		switch n {
		case 1:
			cfg := mwsim.PaperConfig(2, *maxLvl, 1e-3)
			var rec *obs.Recorder
			if *timeline != "" {
				rec = obs.NewRecorder(0)
				rec.AppName = "paperbench"
				cfg.Obs = rec
			}
			bench.WriteFigure1(os.Stdout, bench.Figure1Config(cfg))
			if rec != nil {
				writeTimeline(*timeline, rec)
			}
		case 2:
			rows := table(1e-3)
			bench.WriteFigure(os.Stdout, "Figure 2: sequential vs concurrent time, tol 1.0e-3 (log scale)",
				bench.TimesFigure(rows, 1e-3), true)
		case 3:
			rows := table(1e-3)
			bench.WriteFigure(os.Stdout, "Figure 3: speedup and machines, tol 1.0e-3",
				bench.SpeedupFigure(rows, 1e-3), false)
		case 4:
			rows := table(1e-4)
			bench.WriteFigure(os.Stdout, "Figure 4: sequential vs concurrent time, tol 1.0e-4 (log scale)",
				bench.TimesFigure(rows, 1e-4), true)
		case 5:
			rows := table(1e-4)
			bench.WriteFigure(os.Stdout, "Figure 5: speedup and machines, tol 1.0e-4",
				bench.SpeedupFigure(rows, 1e-4), false)
		default:
			fmt.Fprintf(os.Stderr, "paperbench: no figure %d (want 1-5)\n", n)
			os.Exit(2)
		}
		fmt.Println()
	}
	if *fig != 0 {
		doFig(*fig)
	}
	if *all {
		for n := 1; n <= 5; n++ {
			doFig(n)
		}
	}
}

// runCompare runs the coordination head-to-head and optionally gates on
// it: bit identity across schedules is always required when a gate is set,
// and the steal schedule must keep at least minRatio of the pool's
// throughput (CI sets it above 1 to demand a win).
func runCompare(jsonPath string, jobs, runs int, seed int64, minRatio float64) int {
	opt := bench.DefaultCompareOptions()
	if jobs > 0 {
		opt.Jobs = jobs
	}
	if runs > 0 {
		opt.Runs = runs
	}
	if seed != 0 {
		opt.Seed = seed
	}
	rep, err := bench.CompareSchedules(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		return 1
	}
	if err := bench.WriteCompare(os.Stdout, rep); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		return 1
	}
	if jsonPath != "" {
		if err := bench.WriteCompareJSON(jsonPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
	}
	if minRatio > 0 {
		if !rep.BitIdentical {
			fmt.Fprintln(os.Stderr, "paperbench: outputs are not bit-identical across schedules")
			return 1
		}
		if ratio := rep.Steal.Thru / rep.Pool.Thru; ratio < minRatio {
			fmt.Fprintf(os.Stderr, "paperbench: steal/pool throughput ratio %.3f below required %.3f\n", ratio, minRatio)
			return 1
		}
	}
	return 0
}

// runScaling measures real finest-grid strong scaling: one SubsolveInto per
// cores value, on an intra-grid team of that size, wall-clock timed. The
// numerical output is bit-for-bit identical across rows; only time moves.
func runScaling(coresList string, level int, tol float64, runs int) int {
	cores, err := bench.ParseCores(coresList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		return 2
	}
	opt := bench.DefaultScalingOptions(tol)
	opt.Grid = grid.Grid{Root: 2, L1: level, L2: level}
	opt.Cores = cores
	opt.Runs = runs
	rows, err := bench.StrongScaling(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		return 1
	}
	if err := bench.WriteScaling(os.Stdout, opt, rows); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		return 1
	}
	return 0
}

// writeTimeline exports the recorder's events as JSON lines to the named
// file ('-' = stdout).
func writeTimeline(path string, rec *obs.Recorder) {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rec.WriteJSONL(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Command sparsegrid runs the transport application itself — really, on
// this machine — either sequentially (the legacy structure) or
// concurrently (the renovated master/worker structure), and verifies that
// both produce identical results. Its command line mirrors the legacy C
// program: root, level, tolerance.
//
//	sparsegrid -root 2 -level 3 -tol 1e-3 -mode both
//
// The concurrent mode is fault tolerant: -faults injects seeded worker
// failures (panics, hangs, corrupt results), -retries bounds how often a
// failed job is resubmitted to a fresh worker, and jobs that exhaust their
// retries fall back to a master-local subsolve — so even a run that loses
// workers produces output identical to the sequential version.
//
//	sparsegrid -mode both -faults 'seed=42,panic=0.2,hang=0.1' -retries 3
//
// Observability: -trace exports the run's events as a chronological
// paper-style (§6) two-line trace, -timeline exports them as JSON lines,
// and -metrics prints the per-run metrics summary (event totals, counters,
// per-grid subsolve duration histograms). Each flag takes a file name, or
// "-" for stdout. Without these flags the recorder is never created and
// the run pays nothing.
//
//	sparsegrid -root 2 -level 5 -mode conc -trace - -metrics -
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/solver"
)

func main() { os.Exit(run()) }

// run is main's body; returning (rather than os.Exit-ing) lets the profile
// defers flush even on error exits.
func run() int {
	var (
		root     = flag.Int("root", 2, "refinement level of the coarsest grid (argv[1])")
		level    = flag.Int("level", 3, "additional refinement above the root level (argv[2])")
		tol      = flag.Float64("tol", 1e-3, "tolerance of the integrator (argv[3])")
		mode     = flag.String("mode", "both", "seq, conc, or both")
		faults   = flag.String("faults", "", "worker fault injection spec, e.g. 'seed=42,panic=0.2,panicpre=0.1,hang=0.1,corrupt=0.1,hangfor=2s' (concurrent mode)")
		retries  = flag.Int("retries", 2, "per-job retry budget of the concurrent mode")
		ddl      = flag.Duration("worker-deadline", 10*time.Second, "how long the master waits for one worker before abandoning it (0 = forever)")
		backoff  = flag.Duration("retry-backoff", 0, "base delay of the seeded exponential retry backoff (0 = retry immediately)")
		budget   = flag.Int("failure-budget", 0, "total failed worker attempts tolerated per concurrent run (0 = unlimited)")
		traceOut = flag.String("trace", "", "write the run's events as a paper-style (§6) chronological trace to this file ('-' = stdout)")
		timeline = flag.String("timeline", "", "write the run's events as a JSON-lines timeline to this file ('-' = stdout)")
		metrics  = flag.String("metrics", "", "write the per-run metrics summary (event totals, counters, histograms) to this file ('-' = stdout)")
		cpw      = flag.Int("cores-per-worker", 0, "intra-grid team size per subsolve (0 = auto: sequential uses GOMAXPROCS, concurrent splits GOMAXPROCS by grid cost); output is bit-identical at any setting")
		schedule = flag.String("schedule", "pool", "concurrent-mode scheduler: pool, steal, or steal+elastic; output is bit-identical under all three")
		execs    = flag.Int("executors", 0, "executors of the stealing schedules (0 = GOMAXPROCS)")
		sseed    = flag.Int64("steal-seed", 0, "seed of the stealing schedules' victim-probe rotation")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (pprof worker labels attribute samples per grid)")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	// Calibrate the intra-grid parallel cut-overs against this host's
	// measured dispatch cost before any solve starts (setup path only:
	// solver code itself must stay clock-free). On hosts that cannot run
	// team members concurrently this sequentializes the team kernels.
	linalg.Calibrate()

	var rec *obs.Recorder
	if *traceOut != "" || *timeline != "" || *metrics != "" {
		rec = obs.NewRecorder(0)
		rec.AppName = "sparsegrid"
	}

	p := solver.Params{
		Root: *root, Level: *level, Tol: *tol,
		Retries:        *retries,
		FailureBudget:  *budget,
		WorkerDeadline: *ddl,
		Fallback:       true,
		Obs:            rec,
		CoresPerWorker: *cpw,
		Executors:      *execs,
		StealSeed:      *sseed,
	}
	sched, err := solver.ParseSchedule(*schedule)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	p.Schedule = sched
	if *backoff > 0 {
		p.Backoff = core.NewBackoff(1, *backoff, 0)
	}
	if *faults != "" {
		inj, err := core.ParseFaultSpec(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		p.Faults = inj
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	var seq, conc *solver.Output
	if *mode == "seq" || *mode == "both" {
		t0 := time.Now()
		out, err := solver.Sequential(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sequential:", err)
			return 1
		}
		seq = out
		report("sequential", out, time.Since(t0))
	}
	if *mode == "conc" || *mode == "both" {
		t0 := time.Now()
		out, err := solver.Concurrent(p)
		if err != nil {
			var be core.BudgetExhausted
			if errors.As(err, &be) {
				fmt.Fprintf(os.Stderr, "concurrent: run aborted: %d worker failures exceeded the failure budget of %d (raise -failure-budget or -retries)\n",
					be.Failures, be.Budget)
				return 3
			}
			fmt.Fprintln(os.Stderr, "concurrent:", err)
			return 1
		}
		conc = out
		report("concurrent", out, time.Since(t0))
		if fs := out.Faults; fs.Failures > 0 || fs.Retries > 0 || fs.Fallbacks > 0 {
			fmt.Printf("%-10s workers=%d deaths=%d failures=%d retries=%d abandoned=%d fallbacks=%d\n",
				"faults", fs.Workers, fs.Deaths, fs.Failures, fs.Retries, fs.Abandoned, fs.Fallbacks)
		}
		if sched != solver.SchedulePool {
			ss := out.Sched
			fmt.Printf("%-10s executors=%d steals=%d donations=%d resizes=%d\n",
				"schedule", ss.Executors, ss.Steals, ss.Donations, ss.Resizes)
		}
	}
	if seq != nil && conc != nil {
		if d := seq.Combined.MaxDiff(conc.Combined); d == 0 {
			fmt.Println("results: concurrent output is exactly the same as the sequential version")
		} else {
			fmt.Printf("results: DIFFER by %g\n", d)
			return 1
		}
	}
	export(*traceOut, rec.WriteTrace)
	export(*timeline, rec.WriteJSONL)
	export(*metrics, rec.WriteMetrics)
	return 0
}

// export writes one observability view to the named file ('-' = stdout,
// empty = disabled).
func export(path string, write func(io.Writer) error) {
	if path == "" {
		return
	}
	w := io.Writer(os.Stdout)
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := write(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func report(name string, out *solver.Output, elapsed time.Duration) {
	steps, rejected, iters := 0, 0, 0
	for _, r := range out.Results {
		steps += r.Stats.Steps
		rejected += r.Stats.Rejected
		iters += r.Stats.LinIters
	}
	fmt.Printf("%-10s grids=%d flops=%.3g steps=%d rejected=%d bicgstab_iters=%d elapsed=%v\n",
		name, len(out.Results), float64(out.TotalFlops), steps, rejected, iters, elapsed.Round(time.Millisecond))
	fmt.Printf("%-10s combined grid %v, max |u| = %.6f\n",
		name, out.Combined.G, out.Combined.V.NormInf())
}

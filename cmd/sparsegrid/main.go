// Command sparsegrid runs the transport application itself — really, on
// this machine — either sequentially (the legacy structure) or
// concurrently (the renovated master/worker structure), and verifies that
// both produce identical results. Its command line mirrors the legacy C
// program: root, level, tolerance.
//
//	sparsegrid -root 2 -level 3 -tol 1e-3 -mode both
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/solver"
)

func main() {
	var (
		root  = flag.Int("root", 2, "refinement level of the coarsest grid (argv[1])")
		level = flag.Int("level", 3, "additional refinement above the root level (argv[2])")
		tol   = flag.Float64("tol", 1e-3, "tolerance of the integrator (argv[3])")
		mode  = flag.String("mode", "both", "seq, conc, or both")
	)
	flag.Parse()

	p := solver.Params{Root: *root, Level: *level, Tol: *tol}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var seq, conc *solver.Output
	if *mode == "seq" || *mode == "both" {
		t0 := time.Now()
		out, err := solver.Sequential(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sequential:", err)
			os.Exit(1)
		}
		seq = out
		report("sequential", out, time.Since(t0))
	}
	if *mode == "conc" || *mode == "both" {
		t0 := time.Now()
		out, err := solver.Concurrent(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "concurrent:", err)
			os.Exit(1)
		}
		conc = out
		report("concurrent", out, time.Since(t0))
	}
	if seq != nil && conc != nil {
		if d := seq.Combined.MaxDiff(conc.Combined); d == 0 {
			fmt.Println("results: concurrent output is exactly the same as the sequential version")
		} else {
			fmt.Printf("results: DIFFER by %g\n", d)
			os.Exit(1)
		}
	}
}

func report(name string, out *solver.Output, elapsed time.Duration) {
	steps, rejected, iters := 0, 0, 0
	for _, r := range out.Results {
		steps += r.Stats.Steps
		rejected += r.Stats.Rejected
		iters += r.Stats.LinIters
	}
	fmt.Printf("%-10s grids=%d flops=%.3g steps=%d rejected=%d bicgstab_iters=%d elapsed=%v\n",
		name, len(out.Results), float64(out.TotalFlops), steps, rejected, iters, elapsed.Round(time.Millisecond))
	fmt.Printf("%-10s combined grid %v, max |u| = %.6f\n",
		name, out.Combined.G, out.Combined.V.NormInf())
}

// Command mflink plays the MLINK + CONFIG stages: it reads an MLINK task
// composition file and a CONFIG host file, simulates placing a master and
// n workers, and prints which task instance and machine each process ends
// up on — the application-construction pipeline of §6 of the paper.
//
//	mflink -mlink mainprog.mlink -config hosts.config -task mainprog -workers 5
//
// Without -mlink/-config the paper's files from §6 are used.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/manifold/mconfig"
	"repro/internal/manifold/mlink"
)

func main() {
	var (
		mlinkPath  = flag.String("mlink", "", "MLINK input file (default: the paper's)")
		configPath = flag.String("config", "", "CONFIG host file (default: the paper's)")
		task       = flag.String("task", "mainprog", "task name")
		workers    = flag.Int("workers", 5, "number of workers to place")
		churn      = flag.Bool("churn", false, "let each worker die before the next is placed (perpetual reuse)")
	)
	flag.Parse()

	mlinkSrc := mconfig.PaperMlink()
	if *mlinkPath != "" {
		b, err := os.ReadFile(*mlinkPath)
		if err != nil {
			fatal(err)
		}
		mlinkSrc = string(b)
	}
	configSrc := mconfig.PaperConfig()
	if *configPath != "" {
		b, err := os.ReadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		configSrc = string(b)
	}

	file, err := mlink.Parse(mlinkSrc)
	if err != nil {
		fatal(err)
	}
	cfg, err := mconfig.Parse(configSrc)
	if err != nil {
		fatal(err)
	}
	placer, err := cfg.Placer(*task)
	if err != nil {
		fatal(err)
	}

	rule := file.RuleFor(*task)
	fmt.Printf("task %q: perpetual=%v load=%d includes=%v\n", *task, rule.Perpetual, rule.Load, rule.Includes)

	b := mlink.NewBundler(file, *task)
	hostOf := map[int]string{}
	place := func(manifold string) *mlink.Instance {
		inst, fresh := b.Place(manifold)
		if fresh {
			hostOf[inst.ID] = placer.Next()
			fmt.Printf("fork   task instance %d on %-22s <- %s\n", inst.ID, hostOf[inst.ID], manifold)
		} else {
			fmt.Printf("reuse  task instance %d on %-22s <- %s\n", inst.ID, hostOf[inst.ID], manifold)
		}
		return inst
	}

	place("Master")
	var prev *mlink.Instance
	for i := 0; i < *workers; i++ {
		if *churn && prev != nil {
			if err := b.Leave(prev, "Worker"); err != nil {
				fatal(err)
			}
			fmt.Printf("bye    task instance %d (worker done, instance alive=%v)\n", prev.ID, prev.Alive())
		}
		prev = place("Worker")
	}
	fmt.Printf("total: %d fresh task instance(s) for 1 master + %d workers\n", b.Forks(), *workers)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mflink:", err)
	os.Exit(1)
}

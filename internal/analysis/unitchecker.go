package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON configuration file `go vet` hands a -vettool
// for each package unit (the unitchecker protocol). Field names must match
// cmd/go's serialization exactly.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string // package path -> fact file of dependency
	VetxOnly                  bool              // only facts are needed, not diagnostics
	VetxOutput                string            // where to write this unit's facts
	SucceedOnTypecheckFailure bool
}

// printVersionAndExit implements -V=full: `go vet` fingerprints the tool by
// this line (content hash of the executable) to decide cache validity.
func printVersionAndExit(progname string) {
	f, err := os.Open(os.Args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
}

// printFlagsAndExit implements -flags: `go vet` asks the tool which flags
// it supports before forwarding any. We expose the per-analyzer enable
// flags so `go vet -vettool=vetsparse -determinism` works.
func printFlagsAndExit(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: "enable only the " + a.Name + " analysis"})
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	os.Exit(0)
}

// runUnit processes one .cfg file per the unitchecker protocol: parse and
// type-check the unit using the export data `go vet` prepared, import the
// dependencies' facts, run the analyzers, write this unit's facts, and
// report diagnostics to stderr. Returns the diagnostic count.
func runUnit(cfgPath string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("cannot decode JSON config file %s: %v", cfgPath, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not an import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	info := NewTypesInfo()
	tc := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	tpkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}

	facts := NewFactSet()
	for _, vetx := range cfg.PackageVetx {
		if err := facts.MergeFile(vetx); err != nil {
			return 0, err
		}
	}

	pkg := &Package{PkgPath: cfg.ImportPath, Dir: cfg.Dir, Files: files, Types: tpkg, Info: info}
	results, err := runPackage(pkg, analyzers, fset, facts)
	if err != nil {
		return 0, err
	}

	if cfg.VetxOutput != "" {
		out, err := facts.Encode()
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(cfg.VetxOutput, out, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}
	return printDiagnostics(os.Stderr, fset, results), nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Main is the multichecker entry point shared by cmd/vetsparse. It handles
// the `go vet -vettool` handshake (-V=full, -flags, a *.cfg argument) and,
// given package patterns instead, runs the standalone loader-based driver.
// Exits nonzero iff diagnostics were reported.
func Main(progname string, analyzers ...*Analyzer) {
	if err := Validate(analyzers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	args := os.Args[1:]
	enabled := analyzers
	jsonOut := false
	var rest []string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersionAndExit(progname)
		case arg == "-flags" || arg == "--flags":
			printFlagsAndExit(analyzers)
		case arg == "-h" || arg == "-help" || arg == "--help":
			usage(progname, analyzers)
			os.Exit(0)
		case arg == "-json" || arg == "--json":
			// Standalone-driver only: in vettool mode `go vet` owns the
			// flag namespace and the diagnostic presentation.
			jsonOut = true
		case strings.HasPrefix(arg, "-"):
			name, val, hasVal := strings.Cut(strings.TrimLeft(arg, "-"), "=")
			var found *Analyzer
			for _, a := range analyzers {
				if a.Name == name {
					found = a
					break
				}
			}
			if found == nil {
				fmt.Fprintf(os.Stderr, "%s: unknown flag %s\n", progname, arg)
				usage(progname, analyzers)
				os.Exit(2)
			}
			if hasVal && (val == "false" || val == "0") {
				continue // -pass=false: ignore (default set already minimal)
			}
			if len(enabled) == len(analyzers) {
				enabled = nil // first -name flag switches to explicit selection
			}
			enabled = append(enabled, found)
		default:
			rest = append(rest, arg)
		}
	}

	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		n, err := runUnit(rest[0], enabled)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		if n > 0 {
			os.Exit(1)
		}
		return
	}

	if len(rest) == 0 {
		usage(progname, analyzers)
		os.Exit(2)
	}
	runner := Run
	if jsonOut {
		runner = RunJSON
	}
	n, err := runner(os.Stdout, rest, enabled)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if n > 0 {
		os.Exit(1)
	}
}

func usage(progname string, analyzers []*Analyzer) {
	fmt.Fprintf(os.Stderr, "%s checks the repo's coordination invariants statically.\n\n", progname)
	fmt.Fprintf(os.Stderr, "Usage:\n  %s [-json] [-pass ...] package...     # standalone (-json: one diagnostic object per line, suppressed included)\n  go vet -vettool=$(which %s) ./...  # as a vet tool\n\nRegistered analyzers:\n", progname, progname)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
	}
}

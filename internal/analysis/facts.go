package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"os"
	"sort"
	"sync"
)

// FactSet is the cross-package fact store shared by a driver run. Facts
// are keyed by (analyzer, object) where the object key is the qualified
// name of the package-level object — stable across processes, so the same
// encoding serves the in-process standalone driver and the .vetx files of
// the `go vet -vettool` protocol. Only package-level functions, methods,
// variables and types can carry facts, which is all the vetsparse passes
// need.
type FactSet struct {
	mu sync.Mutex
	m  map[factKey][]byte // gob-encoded fact value
}

type factKey struct {
	analyzer string
	object   string
}

// NewFactSet returns an empty fact store.
func NewFactSet() *FactSet {
	return &FactSet{m: make(map[factKey][]byte)}
}

// ObjectKey returns the cross-process identity of a package-level object:
// the method's FullName for funcs ("pkg/path.(*T).M"), otherwise
// "pkg/path.Name". Objects without a package (builtins) have no key.
func ObjectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName(), true
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false // local object: facts not supported
	}
	return obj.Pkg().Path() + "." + obj.Name(), true
}

// export stores fact for obj under the analyzer's namespace.
func (s *FactSet) export(analyzer string, obj types.Object, fact Fact) error {
	key, ok := ObjectKey(obj)
	if !ok {
		return fmt.Errorf("analysis: object %v cannot carry facts", obj)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return fmt.Errorf("analysis: encoding fact for %s: %v", key, err)
	}
	s.mu.Lock()
	s.m[factKey{analyzer, key}] = buf.Bytes()
	s.mu.Unlock()
	return nil
}

// imports copies the stored fact for obj into fact, reporting whether one
// existed.
func (s *FactSet) imports(analyzer string, obj types.Object, fact Fact) bool {
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	s.mu.Lock()
	data, ok := s.m[factKey{analyzer, key}]
	s.mu.Unlock()
	if !ok {
		return false
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(fact); err != nil {
		return false
	}
	return true
}

// bind returns the Pass hooks for one analyzer over this store.
func (s *FactSet) bind(a *Analyzer) (imp func(types.Object, Fact) bool, exp func(types.Object, Fact)) {
	imp = func(obj types.Object, f Fact) bool { return s.imports(a.Name, obj, f) }
	exp = func(obj types.Object, f Fact) {
		if err := s.export(a.Name, obj, f); err != nil {
			panic(err)
		}
	}
	return imp, exp
}

// factEntry is the serialized form of one fact for .vetx files.
type factEntry struct {
	Analyzer string
	Object   string
	Data     []byte
}

// Encode serializes the store (sorted, so output is deterministic).
func (s *FactSet) Encode() ([]byte, error) {
	s.mu.Lock()
	entries := make([]factEntry, 0, len(s.m))
	for k, v := range s.m {
		entries = append(entries, factEntry{Analyzer: k.analyzer, Object: k.object, Data: v})
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Analyzer != entries[j].Analyzer {
			return entries[i].Analyzer < entries[j].Analyzer
		}
		return entries[i].Object < entries[j].Object
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Merge decodes serialized facts into the store (imported-package .vetx
// files in unitchecker mode).
func (s *FactSet) Merge(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var entries []factEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&entries); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		s.m[factKey{e.Analyzer, e.Object}] = e.Data
	}
	return nil
}

// MergeFile is Merge over a file's contents; a missing file is not an
// error (no facts were exported for that package).
func (s *FactSet) MergeFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	return s.Merge(data)
}

// Package analysistest runs an analyzer over fixture packages rooted at
// testdata/src and checks its diagnostics against // want comments, in the
// style of golang.org/x/tools/go/analysis/analysistest (reimplemented on
// the standard library because the container has no module proxy).
//
// A fixture line expecting diagnostics carries a comment of the form
//
//	code() // want "regexp" `another regexp`
//
// Every diagnostic reported on that line must match one of the regexps and
// every regexp must be matched by some diagnostic; lines without a want
// comment must be diagnostic-free. Fixture packages may import each other
// (resolved under testdata/src, dependencies analyzed first so facts
// propagate) and the standard library.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run analyzes the fixture packages named by pkgpaths (directories under
// dir/src) and reports any mismatch between diagnostics and want comments
// as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	l := &loader{
		fset: fset,
		src:  filepath.Join(dir, "src"),
		std:  importer.ForCompiler(fset, "gc", nil),
		pkgs: make(map[string]*analysis.Package),
	}
	facts := analysis.NewFactSet()
	for _, path := range pkgpaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		// Analyze fixture dependencies first so object facts are in place,
		// then the named package, whose diagnostics are checked.
		for _, dep := range l.order {
			if dep.PkgPath == path || dep.checked {
				continue
			}
			if _, err := analysis.RunPackage(dep.Package, a, fset, facts); err != nil {
				t.Fatalf("analyzing fixture dependency %s: %v", dep.PkgPath, err)
			}
			dep.checked = true
		}
		diags, err := analysis.RunPackage(pkg, a, fset, facts)
		if err != nil {
			t.Fatalf("analyzing fixture %s: %v", path, err)
		}
		for _, fp := range l.order {
			if fp.PkgPath == path {
				fp.checked = true
			}
		}
		check(t, fset, pkg, diags)
	}
}

// fixturePkg tracks analysis state for one loaded fixture package.
type fixturePkg struct {
	*analysis.Package
	checked bool
}

// loader loads fixture packages beneath testdata/src, memoized, recording
// dependency-first order.
type loader struct {
	fset  *token.FileSet
	src   string
	std   types.Importer
	pkgs  map[string]*analysis.Package
	order []*fixturePkg
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &analysis.Package{PkgPath: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	l.order = append(l.order, &fixturePkg{Package: pkg})
	return pkg, nil
}

// importPkg resolves a fixture import: under testdata/src if present,
// otherwise the standard library.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(path))); err == nil {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one "regexp" from a want comment, consumed when matched.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// check compares reported diagnostics with the fixture's want comments.
func check(t *testing.T, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	type lineKey struct {
		file string
		line int
	}
	want := make(map[lineKey][]*expectation)
	for _, f := range pkg.Files {
		fileName := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := cutWant(c.Text)
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				exps, err := parseExpectations(text)
				if err != nil {
					t.Errorf("%s:%d: %v", fileName, line, err)
					continue
				}
				key := lineKey{fileName, line}
				want[key] = append(want[key], exps...)
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		found := false
		for _, exp := range want[key] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}

	var keys []lineKey
	for k := range want {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, exp := range want[k] {
			if !exp.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, exp.raw)
			}
		}
	}
}

// cutWant extracts the expectation list following "want" in a comment,
// reporting whether the comment is a want comment.
func cutWant(comment string) (string, bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return "", false
	}
	return rest, true
}

// parseExpectations scans a sequence of Go string literals.
func parseExpectations(text string) ([]*expectation, error) {
	var sc scanner.Scanner
	fset := token.NewFileSet()
	file := fset.AddFile("", fset.Base(), len(text))
	sc.Init(file, []byte(text), nil, 0)
	var exps []*expectation
	for {
		_, tok, lit := sc.Scan()
		if tok == token.EOF || tok == token.SEMICOLON {
			break
		}
		if tok != token.STRING {
			return nil, fmt.Errorf("want comment: expected string literal, got %s", tok)
		}
		raw, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("want comment: %v", err)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, fmt.Errorf("want comment: bad regexp %q: %v", raw, err)
		}
		exps = append(exps, &expectation{re: re, raw: raw})
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("want comment: no expectations")
	}
	return exps, nil
}

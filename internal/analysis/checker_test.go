package analysis

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkerSrc has two call sites; the directive suppresses only the alpha
// pass at the first one. Both toy analyzers report at every call.
const checkerSrc = `package p

func target() {
	//vetsparse:ignore alpha alpha misfires on this shape; see test
	a()

	b()
}

func a() {}
func b() {}
`

// callReporter builds a toy analyzer reporting at every function call.
func callReporter(name string) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "report every call (test analyzer)",
		Run: func(pass *Pass) (any, error) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						pass.Reportf(call.Pos(), "call reported by %s", name)
					}
					return true
				})
			}
			return nil, nil
		},
	}
}

func loadCheckerPkg(t *testing.T) (*Package, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", checkerSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewTypesInfo()
	tpkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{PkgPath: "p", Files: []*ast.File{f}, Types: tpkg, Info: info}, fset
}

// TestDirectiveInterplay: an ignore naming one pass suppresses exactly
// that pass at that line — the co-located finding from the other pass
// survives — and suppressed findings are retained (marked), not dropped.
func TestDirectiveInterplay(t *testing.T) {
	pkg, fset := loadCheckerPkg(t)
	results, err := runPackage(pkg, []*Analyzer{callReporter("alpha"), callReporter("beta")}, fset, NewFactSet())
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		pass string
		line int
	}
	got := map[key]bool{} // -> suppressed
	for _, r := range results {
		for _, d := range r.diags {
			got[key{r.analyzer, fset.Position(d.Pos).Line}] = d.Suppressed
		}
	}
	want := map[key]bool{
		{"alpha", 5}: true,  // the directive names alpha
		{"beta", 5}:  false, // co-located beta finding must survive
		{"alpha", 7}: false,
		{"beta", 7}:  false,
	}
	for k, suppressed := range want {
		gotSup, ok := got[k]
		if !ok {
			t.Errorf("missing diagnostic %v", k)
			continue
		}
		if gotSup != suppressed {
			t.Errorf("%v suppressed = %v, want %v", k, gotSup, suppressed)
		}
	}
	if len(got) != len(want) {
		t.Errorf("diagnostics = %d, want %d: %v", len(got), len(want), got)
	}

	// Plain output drops the suppressed finding and counts survivors only.
	var buf bytes.Buffer
	if n := printDiagnostics(&buf, fset, results); n != 3 {
		t.Errorf("printDiagnostics count = %d, want 3", n)
	}
	if strings.Count(buf.String(), "\n") != 3 {
		t.Errorf("plain output lines = %d, want 3:\n%s", strings.Count(buf.String(), "\n"), buf.String())
	}
}

// TestJSONOutput: -json emits every diagnostic — the suppressed one
// included, marked — while the returned count (the exit-status source)
// still excludes suppressed findings.
func TestJSONOutput(t *testing.T) {
	pkg, fset := loadCheckerPkg(t)
	results, err := runPackage(pkg, []*Analyzer{callReporter("alpha"), callReporter("beta")}, fset, NewFactSet())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if n := printJSON(&buf, fset, results); n != 3 {
		t.Errorf("printJSON count = %d, want 3 (suppressed excluded from exit count)", n)
	}

	var objs []jsonDiagnostic
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var d jsonDiagnostic
		if err := dec.Decode(&d); err != nil {
			t.Fatal(err)
		}
		objs = append(objs, d)
	}
	if len(objs) != 4 {
		t.Fatalf("json objects = %d, want 4 (suppressed included)", len(objs))
	}
	suppressed := 0
	for _, d := range objs {
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Pass == "" || d.Message == "" {
			t.Errorf("incomplete json diagnostic: %+v", d)
		}
		if d.Suppressed {
			suppressed++
			if d.Pass != "alpha" || d.Line != 5 {
				t.Errorf("wrong suppressed diagnostic: %+v", d)
			}
		}
	}
	if suppressed != 1 {
		t.Errorf("suppressed json diagnostics = %d, want 1", suppressed)
	}
}

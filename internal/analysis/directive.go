package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The vetsparse comment directives:
//
//	//vetsparse:allocfree
//	    on a function declaration (doc comment or same line) asserts the
//	    function body contains no allocation-causing constructs; the
//	    allocfree pass verifies the assertion.
//
//	//vetsparse:ignore <pass> <reason>
//	    on a line (or the line directly above it) suppresses the named
//	    pass there: diagnostics anchored to that line are dropped by the
//	    driver, and fact-deriving passes skip the line when computing
//	    facts. The reason is mandatory — an unexplained suppression is
//	    itself reported.
const (
	allocFreeDirective = "vetsparse:allocfree"
	ignoreDirective    = "vetsparse:ignore"
)

// Ignores indexes the //vetsparse:ignore directives of one package.
type Ignores struct {
	fset *token.FileSet
	// byLine maps file -> line -> pass names suppressed on that line.
	byLine map[string]map[int][]string
}

// NewIgnores scans the comments of files for ignore directives. A
// malformed directive (missing pass name or reason) is reported through
// report so it cannot silently suppress nothing.
func NewIgnores(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) *Ignores {
	ig := &Ignores{fset: fset, byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					if report != nil {
						report(Diagnostic{Pos: c.Pos(), Message: "malformed //vetsparse:ignore directive: want \"//vetsparse:ignore <pass> <reason>\""})
					}
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ig.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					ig.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], fields[0])
			}
		}
	}
	return ig
}

// Match reports whether pass is suppressed at pos: a directive on the same
// line or on the line directly above (a directive-only comment line).
func (ig *Ignores) Match(pass string, pos token.Pos) bool {
	if ig == nil || !pos.IsValid() {
		return false
	}
	p := ig.fset.Position(pos)
	lines := ig.byLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, name := range lines[line] {
			if name == pass {
				return true
			}
		}
	}
	return false
}

// AllocFree reports whether fn is marked //vetsparse:allocfree, either in
// its doc comment or in a comment on the declaration line. cm must be the
// file's comment map (see AllocFreeFuncs for the usual entry point).
func declHasAllocFree(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, "//"+allocFreeDirective) {
			return true
		}
	}
	return false
}

// AllocFreeFuncs returns the function declarations of the package marked
// with //vetsparse:allocfree.
func AllocFreeFuncs(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && declHasAllocFree(fn) {
				out = append(out, fn)
			}
		}
	}
	return out
}

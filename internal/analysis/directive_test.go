package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const directiveSrc = `package p

func f() {
	//vetsparse:ignore determinism justified metrics-only read
	g()
	h() //vetsparse:ignore allocfree same-line suppression works too
	//vetsparse:ignore determinism
	i()
}

func g() {}
func h() {}
func i() {}
`

// TestIgnores checks directive matching (line above, same line, pass name)
// and that a reason-less directive is reported as malformed instead of
// silently registering.
func TestIgnores(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var malformed []Diagnostic
	ig := NewIgnores(fset, []*ast.File{f}, func(d Diagnostic) { malformed = append(malformed, d) })

	calls := make(map[string]token.Pos)
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				calls[id.Name] = call.Pos()
			}
		}
		return true
	})

	cases := []struct {
		pass string
		call string
		want bool
	}{
		{"determinism", "g", true},  // directive on the line above
		{"allocfree", "g", false},   // different pass
		{"allocfree", "h", true},    // same-line directive
		{"determinism", "h", false}, // different pass
		{"determinism", "i", false}, // reason-less directive must not register
	}
	for _, c := range cases {
		if got := ig.Match(c.pass, calls[c.call]); got != c.want {
			t.Errorf("Match(%q, %s()) = %v, want %v", c.pass, c.call, got, c.want)
		}
	}
	if len(malformed) != 1 {
		t.Fatalf("malformed directives reported = %d, want 1", len(malformed))
	}
	if pos := fset.Position(malformed[0].Pos); pos.Line != 7 {
		t.Errorf("malformed directive reported at line %d, want 7", pos.Line)
	}
}

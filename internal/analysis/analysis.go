// Package analysis is a self-contained, dependency-free reimplementation
// of the golang.org/x/tools/go/analysis driver surface that the vetsparse
// suite needs. The repo's invariants — bit-for-bit deterministic
// reductions, zero-allocation hot loops, exact death_worker rendezvous
// accounting, checked deadline reads, a single observability taxonomy —
// were bought by PRs 1-4 and are enforced by example-based tests; the
// passes built on this package check them mechanically from the code, in
// the spirit of Arbab et al.'s verifiable protocol work.
//
// The API deliberately mirrors x/tools (Analyzer, Pass, Diagnostic, object
// facts) so the passes read like standard go/analysis passes and could be
// ported to the real framework by changing one import, but everything here
// builds with the standard library only: the container has no module
// proxy, so golang.org/x/tools cannot be fetched. Two drivers share the
// passes: a standalone loader (checker.go, load.go) used by
// `go run ./cmd/vetsparse ./...`, and the `go vet -vettool` unitchecker
// protocol (unitchecker.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass: a name, documentation, the
// fact types it exchanges across packages, and the per-package Run.
type Analyzer struct {
	// Name identifies the pass in diagnostics, flags (-name), and
	// suppression directives (//vetsparse:ignore name reason).
	Name string
	// Doc is the help text; the first line is the one-line summary.
	Doc string
	// FactTypes lists the fact value types the pass exports and imports;
	// each must be a pointer type registered here so the drivers can
	// (de)serialize facts across package boundaries.
	FactTypes []Fact
	// Run executes the pass on one package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Fact is an observation about a package-level object, exported by the
// pass that analyzed the defining package and importable wherever the
// object is used — how bottom-up properties (e.g. "this function can reach
// time.Now") propagate across package boundaries in dependency order.
// Implementations must be pointer types with gob-encodable fields.
type Fact interface {
	// AFact marks the type as a fact; it is never called.
	AFact()
}

// Pass is the interface between one Analyzer run and the driver: the
// package under analysis plus reporting and fact-exchange hooks.
type Pass struct {
	// Analyzer is the pass being run.
	Analyzer *Analyzer
	// Fset maps positions of every file in the analysis.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Ignores answers whether a //vetsparse:ignore directive suppresses a
	// given pass at a given position; passes that derive facts (not just
	// diagnostics) from a source position must consult it so a suppressed
	// line does not poison fact propagation. Reported diagnostics are
	// filtered by the driver automatically.
	Ignores *Ignores
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
	// ImportObjectFact copies the fact of the given type previously
	// exported for obj into fact and reports whether one existed.
	ImportObjectFact func(obj types.Object, fact Fact) bool
	// ExportObjectFact associates fact with obj for downstream packages.
	ExportObjectFact func(obj types.Object, fact Fact)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message, attributed to the
// reporting analyzer by the driver.
type Diagnostic struct {
	// Pos is where the finding anchors.
	Pos token.Pos
	// Message states the violated invariant.
	Message string
	// Suppressed is set by the driver (never by analyzers) when a
	// //vetsparse:ignore directive matched the diagnostic. Suppressed
	// findings are dropped from plain output and the exit status, but
	// still appear in -json output with "suppressed": true, so tooling
	// can audit what the directives hide.
	Suppressed bool
}

// Validate checks the analyzer set for driver use: non-empty distinct
// names, a Run function, and pointer-typed facts.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a.Name == "" || a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q missing Name or Run", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

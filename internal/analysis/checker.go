package analysis

import (
	"fmt"
	"go/token"
	"io"
	"sort"
)

// result collects one package's surviving diagnostics for one analyzer.
type result struct {
	analyzer string
	diags    []Diagnostic
}

// runPackage executes every analyzer over one loaded package against the
// shared fact store, applies the //vetsparse:ignore filter, and returns
// the surviving diagnostics. The malformed-directive diagnostics from the
// ignore scan itself are attributed to the pseudo-pass "directive".
func runPackage(pkg *Package, analyzers []*Analyzer, fset *token.FileSet, facts *FactSet) ([]result, error) {
	var results []result

	var directiveDiags []Diagnostic
	ignores := NewIgnores(fset, pkg.Files, func(d Diagnostic) {
		directiveDiags = append(directiveDiags, d)
	})
	if len(directiveDiags) > 0 {
		results = append(results, result{analyzer: "directive", diags: directiveDiags})
	}

	for _, a := range analyzers {
		var diags []Diagnostic
		imp, exp := facts.bind(a)
		pass := &Pass{
			Analyzer:         a,
			Fset:             fset,
			Files:            pkg.Files,
			Pkg:              pkg.Types,
			TypesInfo:        pkg.Info,
			Ignores:          ignores,
			Report:           func(d Diagnostic) { diags = append(diags, d) },
			ImportObjectFact: imp,
			ExportObjectFact: exp,
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %v", pkg.PkgPath, a.Name, err)
		}
		kept := diags[:0]
		for _, d := range diags {
			if !ignores.Match(a.Name, d.Pos) {
				kept = append(kept, d)
			}
		}
		if len(kept) > 0 {
			results = append(results, result{analyzer: a.Name, diags: kept})
		}
	}
	return results, nil
}

// RunPackage runs one analyzer over one loaded package against facts,
// applying the //vetsparse:ignore filter; used by the analysistest fixture
// runner, which checks one analyzer at a time.
func RunPackage(pkg *Package, a *Analyzer, fset *token.FileSet, facts *FactSet) ([]Diagnostic, error) {
	results, err := runPackage(pkg, []*Analyzer{a}, fset, facts)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, r := range results {
		if r.analyzer == a.Name {
			diags = append(diags, r.diags...)
		}
	}
	return diags, nil
}

// printDiagnostics writes results in the plain `go vet` style
// (file:line:col: message (pass)) sorted by position, returning how many
// were printed.
func printDiagnostics(w io.Writer, fset *token.FileSet, results []result) int {
	type flat struct {
		pos  token.Position
		msg  string
		pass string
	}
	var all []flat
	for _, r := range results {
		for _, d := range r.diags {
			all = append(all, flat{pos: fset.Position(d.Pos), msg: d.Message, pass: r.analyzer})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pos.Filename != all[j].pos.Filename {
			return all[i].pos.Filename < all[j].pos.Filename
		}
		if all[i].pos.Line != all[j].pos.Line {
			return all[i].pos.Line < all[j].pos.Line
		}
		return all[i].pos.Column < all[j].pos.Column
	})
	for _, d := range all {
		fmt.Fprintf(w, "%s: %s (%s)\n", d.pos, d.msg, d.pass)
	}
	return len(all)
}

// Run loads the packages matched by patterns (plus module dependencies),
// runs the analyzers over each in dependency order sharing one fact store,
// and prints diagnostics to w. It returns the diagnostic count.
func Run(w io.Writer, patterns []string, analyzers []*Analyzer) (int, error) {
	if err := Validate(analyzers); err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	pkgs, err := Load(fset, patterns)
	if err != nil {
		return 0, err
	}
	facts := NewFactSet()
	count := 0
	for _, pkg := range pkgs {
		results, err := runPackage(pkg, analyzers, fset, facts)
		if err != nil {
			return count, err
		}
		count += printDiagnostics(w, fset, results)
	}
	return count, nil
}

package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
)

// result collects one package's diagnostics for one analyzer, including
// suppressed ones (marked, so -json can surface them).
type result struct {
	analyzer string
	diags    []Diagnostic
}

// runPackage executes every analyzer over one loaded package against the
// shared fact store and applies the //vetsparse:ignore filter by MARKING
// matched diagnostics suppressed rather than dropping them — plain output
// and the exit status skip them, -json reports them. The malformed-
// directive diagnostics from the ignore scan itself are attributed to the
// pseudo-pass "directive".
func runPackage(pkg *Package, analyzers []*Analyzer, fset *token.FileSet, facts *FactSet) ([]result, error) {
	var results []result

	var directiveDiags []Diagnostic
	ignores := NewIgnores(fset, pkg.Files, func(d Diagnostic) {
		directiveDiags = append(directiveDiags, d)
	})
	if len(directiveDiags) > 0 {
		results = append(results, result{analyzer: "directive", diags: directiveDiags})
	}

	for _, a := range analyzers {
		var diags []Diagnostic
		imp, exp := facts.bind(a)
		pass := &Pass{
			Analyzer:         a,
			Fset:             fset,
			Files:            pkg.Files,
			Pkg:              pkg.Types,
			TypesInfo:        pkg.Info,
			Ignores:          ignores,
			Report:           func(d Diagnostic) { diags = append(diags, d) },
			ImportObjectFact: imp,
			ExportObjectFact: exp,
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %v", pkg.PkgPath, a.Name, err)
		}
		for i := range diags {
			diags[i].Suppressed = ignores.Match(a.Name, diags[i].Pos)
		}
		if len(diags) > 0 {
			results = append(results, result{analyzer: a.Name, diags: diags})
		}
	}
	return results, nil
}

// RunPackage runs one analyzer over one loaded package against facts,
// applying the //vetsparse:ignore filter (suppressed diagnostics are
// dropped here — fixture `want` comments describe surviving findings);
// used by the analysistest fixture runner, which checks one analyzer at a
// time.
func RunPackage(pkg *Package, a *Analyzer, fset *token.FileSet, facts *FactSet) ([]Diagnostic, error) {
	results, err := runPackage(pkg, []*Analyzer{a}, fset, facts)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, r := range results {
		if r.analyzer == a.Name {
			for _, d := range r.diags {
				if !d.Suppressed {
					diags = append(diags, d)
				}
			}
		}
	}
	return diags, nil
}

// flat is one position-sorted diagnostic ready for output.
type flat struct {
	pos        token.Position
	msg        string
	pass       string
	suppressed bool
}

// flatten sorts every diagnostic in results by position.
func flatten(fset *token.FileSet, results []result) []flat {
	var all []flat
	for _, r := range results {
		for _, d := range r.diags {
			all = append(all, flat{pos: fset.Position(d.Pos), msg: d.Message, pass: r.analyzer, suppressed: d.Suppressed})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pos.Filename != all[j].pos.Filename {
			return all[i].pos.Filename < all[j].pos.Filename
		}
		if all[i].pos.Line != all[j].pos.Line {
			return all[i].pos.Line < all[j].pos.Line
		}
		return all[i].pos.Column < all[j].pos.Column
	})
	return all
}

// printDiagnostics writes unsuppressed results in the plain `go vet` style
// (file:line:col: message (pass)) sorted by position, returning how many
// were printed.
func printDiagnostics(w io.Writer, fset *token.FileSet, results []result) int {
	count := 0
	for _, d := range flatten(fset, results) {
		if d.suppressed {
			continue
		}
		fmt.Fprintf(w, "%s: %s (%s)\n", d.pos, d.msg, d.pass)
		count++
	}
	return count
}

// jsonDiagnostic is the -json wire format: one object per line.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Pass       string `json:"pass"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// printJSON writes every diagnostic — suppressed ones included, marked —
// as one JSON object per line, sorted by position. The return value counts
// only unsuppressed diagnostics: suppression keeps the exit status clean,
// and -json exists so tooling can audit what the directives hide.
func printJSON(w io.Writer, fset *token.FileSet, results []result) int {
	enc := json.NewEncoder(w)
	count := 0
	for _, d := range flatten(fset, results) {
		enc.Encode(jsonDiagnostic{
			File:       d.pos.Filename,
			Line:       d.pos.Line,
			Col:        d.pos.Column,
			Pass:       d.pass,
			Message:    d.msg,
			Suppressed: d.suppressed,
		})
		if !d.suppressed {
			count++
		}
	}
	return count
}

// Run loads the packages matched by patterns (plus module dependencies),
// runs the analyzers over each in dependency order sharing one fact store,
// and prints unsuppressed diagnostics to w. It returns the unsuppressed
// diagnostic count.
func Run(w io.Writer, patterns []string, analyzers []*Analyzer) (int, error) {
	return run(w, patterns, analyzers, printDiagnostics)
}

// RunJSON is Run with one JSON object per diagnostic line, suppressed
// findings included (marked "suppressed": true). The count still excludes
// suppressed findings so the exit status matches plain mode.
func RunJSON(w io.Writer, patterns []string, analyzers []*Analyzer) (int, error) {
	return run(w, patterns, analyzers, printJSON)
}

func run(w io.Writer, patterns []string, analyzers []*Analyzer, print func(io.Writer, *token.FileSet, []result) int) (int, error) {
	if err := Validate(analyzers); err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	pkgs, err := Load(fset, patterns)
	if err != nil {
		return 0, err
	}
	facts := NewFactSet()
	count := 0
	for _, pkg := range pkgs {
		results, err := runPackage(pkg, analyzers, fset, facts)
		if err != nil {
			return count, err
		}
		count += print(w, fset, results)
	}
	return count, nil
}

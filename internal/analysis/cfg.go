package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file gives the flow-sensitive passes (locks, leaks, deadlines) a
// per-function control-flow graph over the AST. The repo's earlier passes
// are syntax-directed — they inspect one construct at a time — but the
// PR 7-9 concurrency surface (locksets held across paths, goroutine
// termination, deadline threading) is a property of *paths*, so the
// coordination invariants need blocks and edges: if/else splits, loop back
// edges, select and switch fans, defer-at-exit, goto resolution.
//
// The graph is deliberately AST-level, not SSA: every statement (and the
// condition expressions that guard branches) lands in exactly one Block in
// execution order, so a transfer function can re-inspect the original
// syntax — which is where //vetsparse:ignore directives, method names, and
// selector paths live. Function literals are boundaries: a FuncLit body is
// NEVER inlined into the enclosing graph (it runs at some other time, on
// some other goroutine); clients build a separate CFG per literal.

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the first block executed.
	Entry *Block
	// Exit is the virtual join of every normal return path. Deferred
	// calls conceptually run on the Entry→...→Exit edge into it.
	Exit *Block
	// Blocks lists every block, Entry first, Exit last.
	Blocks []*Block
	// Deferred are the defer statements of the function in source order.
	// They run at every exit — normal or panicking — so clients treat
	// their effect (an Unlock, a Done) as applying to Exit.
	Deferred []*ast.DeferStmt
	// Comm marks select communication statements (the `case ch <- v:` /
	// `case v := <-ch:` operations). Their send or receive does not block
	// by itself — the SelectDispatch marker models the blocking decision —
	// so clients must not classify them as blocking operations.
	Comm map[ast.Stmt]bool
}

// SelectDispatch is the marker node a select statement leaves in its
// predecessor block: the moment control blocks (or polls, with a default)
// until one communication is ready. Clients classify it without descending
// into the clause bodies — those live in their own successor blocks.
type SelectDispatch struct {
	// Stmt is the select statement being dispatched.
	Stmt *ast.SelectStmt
}

// Pos implements ast.Node.
func (s *SelectDispatch) Pos() token.Pos { return s.Stmt.Pos() }

// End implements ast.Node. It covers only the keyword, not the clauses.
func (s *SelectDispatch) End() token.Pos { return s.Stmt.Select + token.Pos(len("select")) }

// HasDefault reports whether the select has a default clause (and so never
// blocks).
func (s *SelectDispatch) HasDefault() bool {
	for _, c := range s.Stmt.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// Block is a straight-line run of AST nodes with no internal control
// transfer. Nodes holds statements and guard expressions in execution
// order; Succs are the possible next blocks.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Nodes are the statements/expressions executed in order. Nested
	// FuncLit bodies are opaque: their statements are not here.
	Nodes []ast.Node
	// Succs are the control-flow successors.
	Succs []*Block
	// Return is set when the block ends in a return statement (its edge
	// goes to Exit).
	Return bool
	// Panics is set when the block ends in a call to panic (no
	// successors: the goroutine unwinds, so normal-exit checks skip it).
	Panics bool
}

// builder carries the state of one CFG construction.
type builder struct {
	cfg     *CFG
	current *Block
	// breakTo / continueTo map the innermost enclosing loop/switch/select
	// targets; label entries ("label") address labeled statements.
	breakTo    map[string]*Block
	continueTo map[string]*Block
	// labels maps label name → block starting the labeled statement, for
	// goto resolution; gotos seen before their label are patched after.
	labels       map[string]*Block
	pendingGotos map[string][]*Block
	// pendingLabel threads a label from LabeledStmt to the loop/switch
	// translator so `break label` / `continue label` resolve.
	pendingLabel string
	info         *types.Info
}

// NewCFG builds the control-flow graph of body. info may be nil; when
// present it sharpens panic detection (a call to the predeclared panic).
func NewCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	cfg := &CFG{}
	b := &builder{
		cfg:          cfg,
		breakTo:      make(map[string]*Block),
		continueTo:   make(map[string]*Block),
		labels:       make(map[string]*Block),
		pendingGotos: make(map[string][]*Block),
		info:         info,
	}
	cfg.Entry = b.newBlock()
	cfg.Exit = &Block{}
	b.current = cfg.Entry
	b.stmtList(body.List)
	b.jump(cfg.Exit)
	// Unresolved gotos (labels in dead code) fall through to exit so the
	// graph stays connected.
	for _, blocks := range b.pendingGotos {
		for _, blk := range blocks {
			blk.Succs = append(blk.Succs, cfg.Exit)
		}
	}
	cfg.Exit.Index = len(cfg.Blocks)
	cfg.Blocks = append(cfg.Blocks, cfg.Exit)
	return cfg
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump ends the current block with an edge to dst and leaves no current
// block; callers start a fresh one for any following (possibly dead) code.
func (b *builder) jump(dst *Block) {
	if b.current != nil {
		b.current.Succs = append(b.current.Succs, dst)
	}
	b.current = nil
}

// ensure returns the current block, starting an (unreachable) fresh one
// after a terminating statement so later code still lands somewhere.
func (b *builder) ensure() *Block {
	if b.current == nil {
		b.current = b.newBlock()
	}
	return b.current
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.ensure().Nodes = append(b.ensure().Nodes, n)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt translates one statement into blocks and edges.
func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.ensure()
		b.current = nil
		then := b.newBlock()
		cond.Succs = append(cond.Succs, then)
		b.current = then
		b.stmt(s.Body)
		thenEnd := b.current
		var elseEnd *Block
		hasElse := s.Else != nil
		if hasElse {
			els := b.newBlock()
			cond.Succs = append(cond.Succs, els)
			b.current = els
			b.stmt(s.Else)
			elseEnd = b.current
		}
		join := b.newBlock()
		if !hasElse {
			cond.Succs = append(cond.Succs, join)
		}
		if thenEnd != nil {
			thenEnd.Succs = append(thenEnd.Succs, join)
		}
		if elseEnd != nil {
			elseEnd.Succs = append(elseEnd.Succs, join)
		}
		b.current = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.jump(head)
		b.current = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		post := b.newBlock()
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		post.Succs = append(post.Succs, head)
		exit := b.newBlock()
		if s.Cond != nil {
			head.Succs = append(head.Succs, exit)
		}
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		b.withLoop(s, exit, post, func() {
			b.current = body
			b.stmt(s.Body)
			b.jump(post)
		})
		b.current = exit

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock()
		b.jump(head)
		exit := b.newBlock()
		head.Succs = append(head.Succs, exit)
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		b.withLoop(s, exit, head, func() {
			b.current = body
			b.stmt(s.Body)
			b.jump(head)
		})
		b.current = exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		// The dispatch marker lands in the predecessor block — that is
		// what clients classify as blocking (no default) or not. A
		// select{} gets the marker and no successors: it blocks forever.
		b.add(&SelectDispatch{Stmt: s})
		pred := b.ensure()
		b.current = nil
		join := b.newBlock()
		b.withBreakable(s, join, func() {
			for _, c := range s.Body.List {
				comm := c.(*ast.CommClause)
				blk := b.newBlock()
				pred.Succs = append(pred.Succs, blk)
				b.current = blk
				if comm.Comm != nil {
					if b.cfg.Comm == nil {
						b.cfg.Comm = make(map[ast.Stmt]bool)
					}
					b.cfg.Comm[comm.Comm] = true
					b.add(comm.Comm)
				}
				b.stmtList(comm.Body)
				b.jump(join)
			}
		})
		b.current = join

	case *ast.ReturnStmt:
		b.add(s)
		blk := b.ensure()
		blk.Return = true
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.LabeledStmt:
		head := b.newBlock()
		b.jump(head)
		b.current = head
		b.labels[s.Label.Name] = head
		for _, blk := range b.pendingGotos[s.Label.Name] {
			blk.Succs = append(blk.Succs, head)
		}
		delete(b.pendingGotos, s.Label.Name)
		// break/continue with this label resolve to the labeled loop's
		// targets; register after the loop sets them up via withLoop.
		b.labeledStmt(s)

	case *ast.DeferStmt:
		b.cfg.Deferred = append(b.cfg.Deferred, s)
		b.add(s)

	case *ast.GoStmt:
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if b.isPanic(s.X) {
			blk := b.ensure()
			blk.Panics = true
			b.current = nil
		}

	default:
		// Assign, Decl, Send, IncDec, Empty, ...: straight-line.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
	}
}

// labeledStmt handles the statement under a label: loops register their
// break/continue targets under the label name.
func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.pendingLabel = name
		b.stmt(inner)
		b.pendingLabel = ""
	default:
		b.stmt(s.Stmt)
	}
}

// withLoop runs body with the loop's break/continue targets registered
// (both anonymous — the innermost — and, when labeled, by name).
func (b *builder) withLoop(s ast.Stmt, brk, cont *Block, body func()) {
	label := b.pendingLabel
	b.pendingLabel = ""
	prevB, prevC := b.breakTo[""], b.continueTo[""]
	b.breakTo[""], b.continueTo[""] = brk, cont
	if label != "" {
		b.breakTo[label], b.continueTo[label] = brk, cont
	}
	body()
	b.breakTo[""], b.continueTo[""] = prevB, prevC
	if label != "" {
		delete(b.breakTo, label)
		delete(b.continueTo, label)
	}
}

// withBreakable is withLoop for switch/select: break works, continue
// passes through to the enclosing loop.
func (b *builder) withBreakable(s ast.Stmt, brk *Block, body func()) {
	label := b.pendingLabel
	b.pendingLabel = ""
	prev := b.breakTo[""]
	b.breakTo[""] = brk
	if label != "" {
		b.breakTo[label] = brk
	}
	body()
	b.breakTo[""] = prev
	if label != "" {
		delete(b.breakTo, label)
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if dst, ok := b.breakTo[name]; ok {
			b.jump(dst)
		} else {
			b.jump(b.cfg.Exit)
		}
	case token.CONTINUE:
		if dst, ok := b.continueTo[name]; ok {
			b.jump(dst)
		} else {
			b.jump(b.cfg.Exit)
		}
	case token.GOTO:
		if dst, ok := b.labels[name]; ok {
			b.jump(dst)
		} else {
			blk := b.ensure()
			b.pendingGotos[name] = append(b.pendingGotos[name], blk)
			b.current = nil
		}
	case token.FALLTHROUGH:
		// Handled structurally by switchStmt (edge to next clause).
	}
}

// switchStmt translates switch and type-switch: tag in the predecessor,
// one block per clause, fallthrough edges clause→clause, missing default
// adds a direct edge to the join.
func (b *builder) switchStmt(s ast.Stmt) {
	var init ast.Stmt
	var tag ast.Node
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, tag, clauses = s.Init, s.Tag, s.Body.List
	case *ast.TypeSwitchStmt:
		init, tag, clauses = s.Init, s.Assign, s.Body.List
	}
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	pred := b.ensure()
	b.current = nil
	join := b.newBlock()
	hasDefault := false
	var blocks []*Block
	var bodies [][]ast.Stmt
	for _, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		pred.Succs = append(pred.Succs, blk)
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		blocks = append(blocks, blk)
		bodies = append(bodies, cc.Body)
	}
	b.withBreakable(s, join, func() {
		for i := range blocks {
			b.current = blocks[i]
			// A trailing fallthrough jumps to the next clause body.
			fall := false
			body := bodies[i]
			if n := len(body); n > 0 {
				if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					fall = true
					body = body[:n-1]
				}
			}
			b.stmtList(body)
			if fall && i+1 < len(blocks) {
				b.jump(blocks[i+1])
			} else {
				b.jump(join)
			}
		}
	})
	if !hasDefault {
		pred.Succs = append(pred.Succs, join)
	}
	b.current = join
}

// isPanic reports whether e is a call to the predeclared panic.
func (b *builder) isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info == nil {
		return true
	}
	_, isBuiltin := b.info.Uses[id].(*types.Builtin)
	return isBuiltin
}

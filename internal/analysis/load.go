package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path.
	PkgPath string
	// Dir is the package directory.
	Dir string
	// Files are the parsed compiled Go files, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info is the type-checker output for Files.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves the patterns with `go list -deps -json` and type-checks
// every non-standard package from source, dependencies first, so analyzer
// facts can flow bottom-up exactly as they do under `go vet`. Standard
// library imports resolve through the compiler's export data.
func Load(fset *token.FileSet, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,GoFiles,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v", strings.Join(patterns, " "), err)
	}

	dec := json.NewDecoder(strings.NewReader(string(out)))
	byPath := make(map[string]*types.Package)
	imp := newModuleImporter(fset, byPath)
	var pkgs []*Package
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Standard || lp.ImportPath == "unsafe" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue // test-only package: nothing to analyze
		}
		pkg, err := typeCheckDir(fset, lp.ImportPath, lp.Dir, lp.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		byPath[lp.ImportPath] = pkg.Types
		// Dependencies are analyzed too (facts flow bottom-up) and their
		// diagnostics are reported: a violated invariant in a dependency
		// is a finding wherever the driver was pointed.
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheckDir parses and type-checks one package from source.
func typeCheckDir(fset *token.FileSet, path, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: package %s has no Go files", path)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{PkgPath: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// NewTypesInfo returns a types.Info with every result map allocated, as
// the passes expect.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// moduleImporter resolves module-internal imports from the packages
// already type-checked this run (go list -deps guarantees dependency
// order) and everything else through the gc export-data importer, falling
// back to type-checking the standard library from source if export data is
// unavailable.
type moduleImporter struct {
	byPath map[string]*types.Package
	gc     types.Importer
	source types.Importer
}

func newModuleImporter(fset *token.FileSet, byPath map[string]*types.Package) *moduleImporter {
	return &moduleImporter{
		byPath: byPath,
		gc:     importer.ForCompiler(fset, "gc", nil),
		source: importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.byPath[path]; ok {
		return p, nil
	}
	p, err := m.gc.Import(path)
	if err == nil {
		return p, nil
	}
	return m.source.Import(path)
}

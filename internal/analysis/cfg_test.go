package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// parseBody parses src as the body of a function declaration and returns
// its CFG (no type info — the builder must work untyped too).
func parseBody(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f(c, d bool, n int, ch chan int, quit chan struct{}) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return NewCFG(fn.Body, nil)
}

// calls runs a may-analysis over g collecting the names of functions
// called on some path, returning the names reaching Exit entry.
func calls(g *CFG) []string {
	spec := FlowSpec[map[string]bool]{
		Init: map[string]bool{},
		Copy: func(s map[string]bool) map[string]bool {
			c := make(map[string]bool, len(s))
			for k := range s {
				c[k] = true
			}
			return c
		},
		Join: func(dst, src map[string]bool) bool {
			changed := false
			for k := range src {
				if !dst[k] {
					dst[k] = true
					changed = true
				}
			}
			return changed
		},
		Transfer: func(n ast.Node, s map[string]bool) {
			InspectShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						s[id.Name] = true
					}
				}
				return true
			})
		},
	}
	in := Forward(g, spec)
	state, ok := in[g.Exit]
	if !ok {
		return nil
	}
	var names []string
	for k := range state {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func TestCFGBranchJoin(t *testing.T) {
	g := parseBody(t, `
	if c {
		a()
	} else {
		b()
	}
	tail()`)
	got := strings.Join(calls(g), " ")
	if got != "a b tail" {
		t.Fatalf("calls reaching exit = %q, want \"a b tail\"", got)
	}
}

func TestCFGReturnSkipsTail(t *testing.T) {
	g := parseBody(t, `
	if c {
		early()
		return
	}
	tail()`)
	// Both the early-return path and the fall-through path reach Exit, so
	// the may-union holds all three; the point is that the return block's
	// edge goes to Exit, not to tail's block.
	var returns int
	for _, blk := range g.Blocks {
		if blk.Return {
			returns++
			if len(blk.Succs) != 1 || blk.Succs[0] != g.Exit {
				t.Fatalf("return block succs = %v, want [Exit]", blk.Succs)
			}
		}
	}
	if returns != 1 {
		t.Fatalf("return blocks = %d, want 1", returns)
	}
	if got := strings.Join(calls(g), " "); got != "early tail" {
		t.Fatalf("calls reaching exit = %q, want \"early tail\"", got)
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	g := parseBody(t, `
	for i := 0; i < n; i++ {
		body()
	}
	after()`)
	backEdge := false
	for _, blk := range g.Blocks {
		for _, succ := range blk.Succs {
			if succ.Index < blk.Index && succ != g.Entry {
				backEdge = true
			}
		}
	}
	if !backEdge {
		t.Fatal("for loop produced no back edge")
	}
	if got := strings.Join(calls(g), " "); got != "after body" {
		t.Fatalf("calls reaching exit = %q, want \"after body\"", got)
	}
}

func TestCFGEmptySelectBlocksForever(t *testing.T) {
	g := parseBody(t, `
	pre()
	select {}
	post()`)
	// post() is unreachable: the dispatch block has no successors.
	if got := calls(g); got != nil {
		t.Fatalf("calls reaching exit = %v, want none (exit unreachable)", got)
	}
	found := false
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*SelectDispatch); ok {
				found = true
				if len(blk.Succs) != 0 {
					t.Fatalf("select{} block has succs %v, want none", blk.Succs)
				}
			}
		}
	}
	if !found {
		t.Fatal("no SelectDispatch node in graph")
	}
}

func TestCFGSelectClauses(t *testing.T) {
	g := parseBody(t, `
	select {
	case v := <-ch:
		recv()
		_ = v
	case ch <- n:
		send()
	default:
		poll()
	}
	after()`)
	if got := strings.Join(calls(g), " "); got != "after poll recv send" {
		t.Fatalf("calls reaching exit = %q, want \"after poll recv send\"", got)
	}
	if g.Comm == nil || len(g.Comm) != 2 {
		t.Fatalf("Comm marks %d statements, want 2", len(g.Comm))
	}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if sd, ok := n.(*SelectDispatch); ok && !sd.HasDefault() {
				t.Fatal("HasDefault() = false for a select with default")
			}
		}
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	g := parseBody(t, `
	pre()
	if c {
		panic("boom")
	}
	post()`)
	// The panic path contributes nothing to Exit: only pre+post reach it.
	if got := strings.Join(calls(g), " "); got != "post pre" {
		t.Fatalf("calls reaching exit = %q, want \"post pre\"", got)
	}
	found := false
	for _, blk := range g.Blocks {
		if blk.Panics {
			found = true
			if len(blk.Succs) != 0 {
				t.Fatalf("panic block has succs %v, want none", blk.Succs)
			}
		}
	}
	if !found {
		t.Fatal("no Panics block in graph")
	}
}

func TestCFGDeferRecorded(t *testing.T) {
	g := parseBody(t, `
	defer cleanup()
	work()`)
	if len(g.Deferred) != 1 {
		t.Fatalf("Deferred = %d statements, want 1", len(g.Deferred))
	}
}

func TestCFGGotoResolution(t *testing.T) {
	g := parseBody(t, `
	i := 0
loop:
	step()
	i++
	if i < n {
		goto loop
	}
	done()`)
	if got := strings.Join(calls(g), " "); got != "done step" {
		t.Fatalf("calls reaching exit = %q, want \"done step\"", got)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := parseBody(t, `
outer:
	for {
		select {
		case <-quit:
			break outer
		case v := <-ch:
			use(v)
		}
	}
	after()`)
	if got := strings.Join(calls(g), " "); got != "after use" {
		t.Fatalf("calls reaching exit = %q, want \"after use\"", got)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := parseBody(t, `
	switch n {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		other()
	}
	after()`)
	if got := strings.Join(calls(g), " "); got != "after one other two" {
		t.Fatalf("calls reaching exit = %q, want \"after one other two\"", got)
	}
}

func TestInspectShallowSkipsFuncLit(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", `package p
func f() {
	outer()
	g := func() { inner() }
	g()
}`, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var seen []string
	InspectShallow(f.Decls[0].(*ast.FuncDecl).Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				seen = append(seen, id.Name)
			}
		}
		return true
	})
	sort.Strings(seen)
	if got := strings.Join(seen, " "); got != "g outer" {
		t.Fatalf("InspectShallow saw calls %q, want \"g outer\" (inner must be skipped)", got)
	}
}

// TestWalkStateBeforeNode verifies Walk hands visit the state immediately
// before each node: the call seen at tail() must include both arms.
func TestWalkStateBeforeNode(t *testing.T) {
	g := parseBody(t, `
	if c {
		a()
	} else {
		b()
	}
	tail()`)
	spec := FlowSpec[map[string]bool]{
		Init: map[string]bool{},
		Copy: func(s map[string]bool) map[string]bool {
			c := make(map[string]bool, len(s))
			for k := range s {
				c[k] = true
			}
			return c
		},
		Join: func(dst, src map[string]bool) bool {
			changed := false
			for k := range src {
				if !dst[k] {
					dst[k] = true
					changed = true
				}
			}
			return changed
		},
		Transfer: func(n ast.Node, s map[string]bool) {
			InspectShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						s[id.Name] = true
					}
				}
				return true
			})
		},
	}
	in := Forward(g, spec)
	var atTail map[string]bool
	Walk(g, in, spec, func(n ast.Node, before map[string]bool) {
		InspectShallow(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "tail" {
					atTail = spec.Copy(before)
				}
			}
			return true
		})
	})
	if atTail == nil || !atTail["a"] || !atTail["b"] {
		t.Fatalf("state before tail() = %v, want both a and b (may-join)", atTail)
	}
}

// Package leaks implements the vetsparse pass requiring a provable
// termination signal in every goroutine launched under internal/...
// (DESIGN.md §9): drain-correctness (PR 8's breaker/drain machinery, PR
// 9's elastic team resize) depends on every worker actually exiting, and
// a fire-and-forget goroutine with no way out outlives Drain silently —
// the race detector can't see a leak that never touches shared memory.
//
// A goroutine body proves termination when every infinite construct in it
// has an escape:
//
//   - `for { ... }` (no condition) must contain a reachable exit bound to
//     that loop: a return, a break (binding respected — a break inside a
//     nested select/switch/loop does not exit it), a goto, or a panic.
//     The usual shape is the quit-channel select clause ending in return.
//   - `select {}` (no clauses) blocks forever and is always reported.
//   - Conditional and range loops are bounded by their condition or by
//     channel close, and straight-line bodies terminate trivially — both
//     pass without further proof.
//
// Both `go func(){...}()` literals and `go name(...)` launches of
// package-local functions are checked; the diagnostic lands on the go
// statement (the launch decides the goroutine's lifetime, and one leaky
// worker launched from three sites is three leaks).
package leaks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "leaks",
	Doc:  "require a provable termination signal in every goroutine: infinite loops need a reachable exit, select{} never returns",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	// Scope: the repo's internal packages, plus anything outside the
	// module (fixtures). cmd/ binaries run to process exit and may hold
	// process-lifetime goroutines.
	if p := pass.Pkg.Path(); strings.HasPrefix(p, "repro/") && !strings.HasPrefix(p, "repro/internal/") {
		return nil, nil
	}

	// Package-local function bodies, for `go name(...)` launches.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					decls[obj] = fn
				}
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			var what string
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				body, what = fun.Body, "goroutine"
			default:
				callee := calleeFunc(pass.TypesInfo, g.Call)
				if callee == nil || callee.Pkg() != pass.Pkg {
					return true // dynamic or cross-package launch: out of reach
				}
				if d := decls[callee]; d != nil {
					body, what = d.Body, "goroutine "+callee.Name()
				}
			}
			if body == nil {
				return true
			}
			for _, p := range checkBody(body) {
				pass.Reportf(g.Pos(), "%s has no termination signal: %s; it outlives drain — give it a quit/done receive with return, or bound the loop", what, p)
			}
			return true
		})
	}
	return nil, nil
}

// checkBody scans one goroutine body for eternal constructs without an
// escape, returning one description per finding. Function literals nested
// in the body run on their own schedule (or not at all) and are skipped —
// they get their own check if launched with go.
func checkBody(body *ast.BlockStmt) []string {
	var problems []string
	labels := map[*ast.ForStmt]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.LabeledStmt:
			if loop, ok := n.Stmt.(*ast.ForStmt); ok {
				labels[loop] = n.Label.Name
			}
		case *ast.SelectStmt:
			if len(n.Body.List) == 0 {
				problems = append(problems, "select{} blocks forever")
			}
		case *ast.ForStmt:
			if n.Cond == nil && !loopHasExit(n, labels[n]) {
				problems = append(problems, "infinite for loop with no reachable return, break, or goto")
			}
		}
		return true
	})
	return problems
}

// loopHasExit reports whether the infinite loop contains an exit bound to
// it: a return, a break that targets this loop (unlabeled only when not
// recaptured by a nested breakable construct, or labeled with this loop's
// label), a goto (assumed outward — inward gotos that keep the loop alive
// are not written in this codebase), or a definite no-return call (panic,
// os.Exit, runtime.Goexit, log.Fatal*).
func loopHasExit(loop *ast.ForStmt, label string) bool {
	return stmtsHaveExit(loop.Body.List, label, true)
}

func stmtsHaveExit(stmts []ast.Stmt, label string, breakBindsHere bool) bool {
	for _, s := range stmts {
		if stmtHasExit(s, label, breakBindsHere) {
			return true
		}
	}
	return false
}

func stmtHasExit(s ast.Stmt, label string, breakBindsHere bool) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			return true
		case token.BREAK:
			if s.Label == nil {
				return breakBindsHere
			}
			return label != "" && s.Label.Name == label
		}
		return false
	case *ast.LabeledStmt:
		return stmtHasExit(s.Stmt, label, breakBindsHere)
	case *ast.ExprStmt:
		return isNoReturnCall(s.X)
	case *ast.BlockStmt:
		return stmtsHaveExit(s.List, label, breakBindsHere)
	case *ast.IfStmt:
		if stmtHasExit(s.Body, label, breakBindsHere) {
			return true
		}
		if s.Else != nil && stmtHasExit(s.Else, label, breakBindsHere) {
			return true
		}
		return false
	case *ast.ForStmt:
		return stmtsHaveExit(s.Body.List, label, false)
	case *ast.RangeStmt:
		return stmtsHaveExit(s.Body.List, label, false)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && stmtsHaveExit(cc.Body, label, false) {
				return true
			}
		}
		return false
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok && stmtsHaveExit(cc.Body, label, false) {
				return true
			}
		}
		return false
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok && stmtsHaveExit(cc.Body, label, false) {
				return true
			}
		}
		return false
	case *ast.DeferStmt, *ast.GoStmt:
		return false
	}
	return false
}

// isNoReturnCall recognizes calls that definitely do not return control:
// panic, os.Exit, runtime.Goexit, log.Fatal / log.Fatalf / log.Fatalln.
func isNoReturnCall(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			switch pkg.Name + "." + fun.Sel.Name {
			case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
				return true
			}
		}
	}
	return false
}

// calleeFunc resolves the static callee of a call, or nil for dynamic
// calls and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

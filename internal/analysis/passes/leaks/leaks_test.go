package leaks_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/leaks"
)

func TestLeaks(t *testing.T) {
	analysistest.Run(t, "testdata", leaks.Analyzer, "leaksfix")
}

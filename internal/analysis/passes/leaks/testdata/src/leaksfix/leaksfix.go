// Package leaksfix exercises the leaks-pass rule: every goroutine needs a
// provable termination signal. The break-binding cases matter most — a
// break inside a select binds to the select, not the loop, which is
// exactly the bug shape that leaks a worker forever.
package leaksfix

import (
	"sync"
	"sync/atomic"
)

func work()     {}
func use(v int) {}

// --- flagged: no way out ---

func spinForever() {
	go func() { // want `goroutine has no termination signal: infinite for loop`
		for {
			work()
		}
	}()
}

func blockForever() {
	go func() { // want `goroutine has no termination signal: select\{\} blocks forever`
		select {}
	}()
}

// breakBindsToSelect is the classic leak: the break on the quit signal
// binds to the select, so the loop never exits.
func breakBindsToSelect(quit chan struct{}, ch chan int) {
	go func() { // want `goroutine has no termination signal: infinite for loop`
		for {
			select {
			case <-quit:
				break
			case v := <-ch:
				use(v)
			}
		}
	}()
}

type server struct{}

// pump is leaky; the diagnostic lands on each launch site below.
func (s *server) pump() {
	for {
		work()
	}
}

func launchNamed(s *server) {
	go s.pump() // want `goroutine pump has no termination signal: infinite for loop`
}

// --- clean: provable termination ---

func quitReturnOK(quit chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-quit:
				return
			case v := <-ch:
				use(v)
			}
		}
	}()
}

func labeledBreakOK(quit chan struct{}, ch chan int) {
	go func() {
	loop:
		for {
			select {
			case <-quit:
				break loop
			case v := <-ch:
				use(v)
			}
		}
	}()
}

func rangeCloseOK(ch chan int) {
	go func() {
		for v := range ch {
			use(v)
		}
	}()
}

func boundedLoopOK(n int, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			work()
		}
	}()
	wg.Wait()
}

func straightLineOK(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func atomicStopOK(stop *atomic.Int32) {
	go func() {
		for {
			if stop.Load() != 0 {
				return
			}
			work()
		}
	}()
}

// nestedLitNotOurs: the inner literal is only defined, never launched —
// its infinite loop is not this goroutine's loop.
func nestedLitNotOurs(quit chan struct{}) {
	go func() {
		_ = func() {
			for {
				work()
			}
		}
		<-quit
	}()
}

type worker struct{ quit chan struct{} }

// run terminates on quit; launching it by name is clean.
func (w *worker) run(ch chan int) {
	for {
		select {
		case <-w.quit:
			return
		case v := <-ch:
			use(v)
		}
	}
}

func launchNamedOK(w *worker, ch chan int) {
	go w.run(ch)
}

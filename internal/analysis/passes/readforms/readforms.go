// Package readforms is the single source of truth for the repo's blocking
// read vocabulary, shared by the protocol, deadlines, and locks passes.
// PR 7 added the absolute-deadline forms (ReadUntil/ReadResultUntil) next
// to the PR 2 relative forms (ReadWithin/ReadResultWithin/WaitWithin), and
// the protocol pass grew its table by hand — the kind of drift this
// package ends: one table, three passes, one regression fixture suite.
package readforms

// Deadline maps the deadline-carrying read/wait method names — the forms
// whose final result (error or ok) must be consumed, because a dropped
// timeout silently loses a protocol message. The *Within forms take a
// relative time.Duration; the *Until forms take the absolute time.Time a
// propagated request deadline arrives as.
var Deadline = map[string]bool{
	"ReadWithin":       true,
	"ReadUntil":        true,
	"ReadResultWithin": true,
	"ReadResultUntil":  true,
	"WaitWithin":       true,
}

// Bare maps each bare (deadline-free) blocking read on the manifold/core
// protocol surface to its deadline-carrying replacement. The deadlines
// pass reports these when they are reachable from a serve handler or the
// pool's collect loop, where a request deadline exists and must be
// threaded through.
var Bare = map[string]string{
	"Read":       "ReadUntil",
	"MustRead":   "ReadUntil",
	"ReadResult": "ReadResultUntil",
	"Wait":       "WaitWithin",
	"Terminated": "WaitWithin",
}

// BarePackages are the package names whose methods the Bare table applies
// to — the protocol layers (by name, so fixtures can reproduce them).
// sync.WaitGroup.Wait and friends are deliberately outside: they are
// completion joins, not protocol reads.
var BarePackages = map[string]bool{"manifold": true, "core": true}

package protocol_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/protocol"
)

func TestProtocol(t *testing.T) {
	analysistest.Run(t, "testdata", protocol.Analyzer, "core")
}

// Package protocol implements the vetsparse pass guarding the
// master/worker protocol invariants of internal/core and
// internal/manifold (the paper's §5 coordination discipline, made
// fault-tolerant in PR 3):
//
//  1. Deadline reads are checked: the error of ReadWithin /
//     ReadResultWithin and the ok of WaitWithin must not be discarded —
//     a dropped timeout silently loses a protocol message.
//  2. Worker removal raises exactly one death event: markDead must be
//     used directly as an if condition whose guarded block raises
//     death_worker exactly once. That syntactic discipline is what keeps
//     the rendezvous ledger exact — zero raises leaks a worker the
//     coordinator waits for forever, two raises double-counts a death.
//  3. No silent envelope drops: a select branch that receives a job or
//     result envelope and neither uses it nor emits a retry/abandon/
//     failure event loses work invisibly.
package protocol

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/readforms"
)

var Analyzer = &analysis.Analyzer{
	Name: "protocol",
	Doc:  "enforce checked deadline reads, exactly-one death_worker raise per removal, and no silent envelope drops in core/manifold",
	Run:  run,
}

// scopedPkgs are the protocol layers the pass applies to, by package name
// so fixtures can reproduce them.
var scopedPkgs = map[string]bool{"core": true, "manifold": true}

// The deadline-read method table lives in readforms.Deadline, shared with
// the deadlines and locks passes: this pass grew its own copy by hand
// once and missed the PR 7 *Until forms, the blind spot that motivated
// unifying the table (ISSUE 10 satellite).

// eventCalls are the method names accepted as handling an envelope that a
// select branch would otherwise drop: observability emission or the
// pool's failure bookkeeping.
var eventCalls = map[string]bool{"Emit": true, "EmitAt": true, "Raise": true, "fail": true, "exhaust": true, "abandon": true, "retry": true}

func run(pass *analysis.Pass) (any, error) {
	if !scopedPkgs[pass.Pkg.Name()] {
		return nil, nil
	}
	for _, f := range pass.Files {
		checkDeadlineReads(pass, f)
		checkMarkDead(pass, f)
		checkSelectDrops(pass, f)
	}
	return nil, nil
}

// checkDeadlineReads flags ReadWithin/ReadResultWithin/WaitWithin calls
// whose error/ok result is discarded: used as a bare statement, or with
// the final result assigned to blank.
func checkDeadlineReads(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name := deadlineMethod(pass.TypesInfo, call); name != "" {
					pass.Reportf(call.Pos(), "result of %s dropped; a missed deadline must be handled, not ignored", name)
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			name := deadlineMethod(pass.TypesInfo, call)
			if name == "" {
				return true
			}
			if last, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && last.Name == "_" {
				pass.Reportf(call.Pos(), "%s of %s assigned to _; a missed deadline must be handled, not ignored", lastResultName(pass.TypesInfo, call), name)
			}
		}
		return true
	})
}

// deadlineMethod returns the method name when call is a deadline read —
// a method in readforms.Deadline returning (T, error) or (T, bool) —
// else "".
func deadlineMethod(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !readforms.Deadline[sel.Sel.Name] {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	results := fn.Type().(*types.Signature).Results()
	if results.Len() != 2 {
		return ""
	}
	switch t := results.At(1).Type().(type) {
	case *types.Named:
		if t.Obj().Pkg() == nil && t.Obj().Name() == "error" {
			return sel.Sel.Name
		}
	case *types.Basic:
		if t.Kind() == types.Bool {
			return sel.Sel.Name
		}
	}
	return ""
}

func lastResultName(info *types.Info, call *ast.CallExpr) string {
	if tv, ok := info.Types[call]; ok {
		if tuple, ok := tv.Type.(*types.Tuple); ok && tuple.Len() == 2 {
			if b, ok := tuple.At(1).Type().(*types.Basic); ok && b.Kind() == types.Bool {
				return "ok"
			}
		}
	}
	return "error"
}

// checkMarkDead enforces the exactly-once death pattern: every markDead
// call is the condition of an if whose body raises death_worker exactly
// once.
func checkMarkDead(pass *analysis.Pass, f *ast.File) {
	guarded := make(map[*ast.CallExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(ifStmt.Cond).(*ast.CallExpr)
		if !ok || !isMethodNamed(call, "markDead") {
			return true
		}
		guarded[call] = true
		raises := countDeathRaises(pass.TypesInfo, ifStmt.Body)
		switch {
		case raises == 0:
			pass.Reportf(ifStmt.Pos(), "markDead branch removes a worker without raising death_worker; the rendezvous ledger loses a death")
		case raises > 1:
			pass.Reportf(ifStmt.Pos(), "markDead branch raises death_worker %d times; the rendezvous ledger double-counts the death", raises)
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isMethodNamed(call, "markDead") || guarded[call] {
			return true
		}
		pass.Reportf(call.Pos(), "markDead must be the condition of an if guarding exactly one death_worker raise; its result decides who raises the death event")
		return true
	})
}

func isMethodNamed(call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}

// countDeathRaises counts Raise calls in the block whose argument is the
// death_worker event (by constant value).
func countDeathRaises(info *types.Info, block *ast.BlockStmt) int {
	count := 0
	ast.Inspect(block, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isMethodNamed(call, "Raise") || len(call.Args) != 1 {
			return true
		}
		if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil &&
			tv.Value.Kind() == constant.String && constant.StringVal(tv.Value) == "death_worker" {
			count++
		}
		return true
	})
	return count
}

// checkSelectDrops flags select branches that receive an envelope-typed
// value and let it vanish: the value is unbound or unused and the branch
// emits no retry/abandon/failure event.
func checkSelectDrops(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			comm := clause.(*ast.CommClause)
			elem, bound := envelopeReceive(pass.TypesInfo, comm.Comm)
			if elem == "" {
				continue
			}
			if bound != nil && usedIn(pass.TypesInfo, comm.Body, bound) {
				continue
			}
			if hasEventCall(comm.Body) {
				continue
			}
			pass.Reportf(comm.Pos(), "select branch drops a %s without a retry/abandon event; lost envelopes must be accounted for", elem)
		}
		return true
	})
}

// envelopeReceive reports whether the comm statement receives from a
// channel of envelope-named element type, returning the element type name
// and the object the value is bound to (nil when discarded).
func envelopeReceive(info *types.Info, comm ast.Stmt) (elem string, bound types.Object) {
	var recv *ast.UnaryExpr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv, _ = ast.Unparen(s.X).(*ast.UnaryExpr)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv, _ = ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
		}
		if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			bound = info.Defs[id]
			if bound == nil {
				bound = info.Uses[id]
			}
		}
	}
	if recv == nil || recv.Op.String() != "<-" {
		return "", nil
	}
	tv, ok := info.Types[recv.X]
	if !ok {
		return "", nil
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return "", nil
	}
	name := typeName(ch.Elem())
	if !strings.Contains(strings.ToLower(name), "envelope") {
		return "", nil
	}
	return name, bound
}

func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func usedIn(info *types.Info, stmts []ast.Stmt, obj types.Object) bool {
	used := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				used = true
			}
			return !used
		})
	}
	return used
}

func hasEventCall(stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && eventCalls[sel.Sel.Name] {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// Package core fixtures stub the manifold surfaces by shape — deadline
// reads returning (T, error) / (T, bool), a markDead method, envelope-named
// channel element types — and exercise the three protocol rules.
package core

import "time"

type Unit struct{ ID int }

type Port struct{}

// ReadWithin mimics the manifold deadline read: (value, error).
func (p *Port) ReadWithin(d time.Duration) (Unit, error) { return Unit{}, nil }

// ReadUntil mimics the absolute-deadline read: (value, error).
func (p *Port) ReadUntil(t time.Time) (Unit, error) { return Unit{}, nil }

type Master struct{}

// ReadResultWithin mimics the master's relative-deadline result read.
func (m *Master) ReadResultWithin(d time.Duration) (Unit, error) { return Unit{}, nil }

// ReadResultUntil mimics the master's absolute-deadline result read — the
// form a propagated request deadline arrives in (PR 7). The pass once
// tracked these tables by hand and missed the *Until forms; this fixture
// is the regression for the shared readforms table.
func (m *Master) ReadResultUntil(t time.Time) (Unit, error) { return Unit{}, nil }

type Occurrence struct{ Name string }

type Process struct{}

// WaitWithin mimics the manifold deadline wait: (value, ok).
func (p *Process) WaitWithin(d time.Duration, names ...string) (Occurrence, bool) {
	return Occurrence{}, false
}

// Raise mimics the manifold event raise.
func (p *Process) Raise(event string) {}

func sinkUnit(u Unit) {}

func deadlineReads(port *Port, proc *Process) {
	port.ReadWithin(time.Second) // want `result of ReadWithin dropped`

	u, _ := port.ReadWithin(time.Second) // want `error of ReadWithin assigned to _`
	sinkUnit(u)

	v, err := port.ReadWithin(time.Second)
	if err == nil {
		sinkUnit(v)
	}

	// The absolute-deadline form a propagated request deadline arrives in
	// is held to the same discipline.
	port.ReadUntil(time.Now()) // want `result of ReadUntil dropped`

	w, _ := port.ReadUntil(time.Now()) // want `error of ReadUntil assigned to _`
	sinkUnit(w)

	x, uerr := port.ReadUntil(time.Now())
	if uerr == nil {
		sinkUnit(x)
	}

	m := &Master{}
	m.ReadResultWithin(time.Second) // want `result of ReadResultWithin dropped`
	m.ReadResultUntil(time.Now())   // want `result of ReadResultUntil dropped`

	r, _ := m.ReadResultUntil(time.Now()) // want `error of ReadResultUntil assigned to _`
	sinkUnit(r)

	rr, rerr := m.ReadResultWithin(time.Second)
	if rerr == nil {
		sinkUnit(rr)
	}

	occ, _ := proc.WaitWithin(time.Second, "finished") // want `ok of WaitWithin assigned to _`
	_ = occ

	if o, ok := proc.WaitWithin(time.Second, "finished"); ok {
		_ = o
	}
}

type pool struct {
	dead map[*Process]bool
}

// markDead records w's death, reporting whether this call retired it.
func (p *pool) markDead(w *Process) bool {
	if p.dead[w] {
		return false
	}
	p.dead[w] = true
	return true
}

func removeCorrect(p *pool, w *Process) {
	if p.markDead(w) {
		w.Raise("death_worker")
	}
}

func removeNoRaise(p *pool, w *Process) {
	if p.markDead(w) { // want `removes a worker without raising death_worker`
		delete(p.dead, w)
	}
}

func removeDoubleRaise(p *pool, w *Process) {
	if p.markDead(w) { // want `raises death_worker 2 times`
		w.Raise("death_worker")
		w.Raise("death_worker")
	}
}

func removeUnguarded(p *pool, w *Process) {
	p.markDead(w) // want `markDead must be the condition of an if`
	w.Raise("death_worker")
}

type jobEnvelope struct{ seq int }

type resultEnvelope struct{ seq int }

func dispatch(env jobEnvelope) {}

func pump(jobs chan jobEnvelope, results chan resultEnvelope, done chan struct{}, p *Process) {
	for {
		select {
		case env := <-jobs:
			dispatch(env)
		case <-results: // want `select branch drops a resultEnvelope`
		case <-done:
			return
		}
	}
}

func (p *pool) fail(env resultEnvelope) {}

// retryPump models the backoff-retry collect loop: an envelope routed into
// the pool's failure bookkeeping is handled, not dropped.
func retryPump(results chan resultEnvelope, done chan struct{}, p *pool) {
	for {
		select {
		case env := <-results:
			p.fail(env)
		case <-done:
			return
		}
	}
}

func drain(jobs chan jobEnvelope, p *Process) {
	select {
	case <-jobs:
		// Dropping on shutdown is fine once an event records it.
		p.Raise("a_rendezvous")
	default:
	}
}

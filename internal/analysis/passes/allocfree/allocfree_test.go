package allocfree_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/allocfree"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer, "allocfixture")
}

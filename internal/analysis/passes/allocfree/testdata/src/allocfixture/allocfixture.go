// Package allocfixture exercises the //vetsparse:allocfree checks: each
// allocation-causing construct is rejected inside an annotated function,
// while the panic-argument and error-return cold paths, constant folding,
// pointer-shaped interface values and unannotated functions stay silent.
package allocfixture

import "fmt"

type vec []float64

// axpy is the shape of a real hot kernel: annotated and clean.
//
//vetsparse:allocfree
func axpy(y, x vec, a float64) {
	for i := range y {
		y[i] += a * x[i]
	}
}

// guarded panics on misuse; the panic argument is a cold path.
//
//vetsparse:allocfree
func guarded(y, x vec) {
	if len(y) != len(x) {
		panic(fmt.Sprintf("allocfixture: length mismatch %d != %d", len(y), len(x)))
	}
	copy(y, x)
}

// fallible allocates only while building its error result: a cold path.
//
//vetsparse:allocfree
func fallible(n int) error {
	if n < 0 {
		return fmt.Errorf("allocfixture: negative n %d", n)
	}
	return nil
}

// unannotated may allocate freely; the pass only checks annotations.
func unannotated(n int) []float64 {
	return make([]float64, n)
}

//vetsparse:allocfree
func badAppend(xs []int, v int) []int {
	xs = append(xs, v) // want `append may grow the backing array`
	return xs
}

//vetsparse:allocfree
func badMake(n int) []int {
	buf := make([]int, n) // want `make allocates`
	return buf
}

//vetsparse:allocfree
func badNew() *vec {
	p := new(vec) // want `new allocates`
	return p
}

//vetsparse:allocfree
func badClosure(n int) func() int {
	f := func() int { return n } // want `function literal allocates a closure`
	return f
}

//vetsparse:allocfree
func badFmt(x float64) {
	fmt.Println(x) // want `fmt\.Println allocates`
}

//vetsparse:allocfree
func badConcat(a, b string) string {
	s := a + b // want `non-constant string concatenation allocates`
	return s
}

const prefix = "solver."

// constConcat's concatenation folds at compile time: no allocation.
//
//vetsparse:allocfree
func constConcat() string {
	return prefix + "subsolve"
}

type sample struct{ a, b float64 }

//vetsparse:allocfree
func badMapLit() map[string]int {
	m := map[string]int{} // want `map literal allocates`
	return m
}

//vetsparse:allocfree
func badSliceLit() vec {
	v := vec{1, 2} // want `slice literal allocates`
	return v
}

//vetsparse:allocfree
func badAddrLit() *sample {
	s := &sample{a: 1} // want `&composite literal escapes to the heap`
	return s
}

func sink(v any) {}

//vetsparse:allocfree
func badBoxArg(x int) {
	sink(x) // want `passing int as interface`
}

// goodPtrArg passes a pointer, which fits the interface word directly.
//
//vetsparse:allocfree
func goodPtrArg(p *sample) {
	sink(p)
}

//vetsparse:allocfree
func badBoxAssign(x float64) {
	var v any
	v = x // want `assigning float64 to interface`
	_ = v
}

//vetsparse:allocfree
func badConvert(x int) any {
	v := any(x) // want `conversion to interface boxes int`
	return v
}

// planStep and plan model the fused-phase micro-program form: a pre-built
// step sequence a hot interpreter walks per dispatch.
type planStep struct {
	op   int
	x, y vec
}

type plan struct{ steps []planStep }

// execPlan is the shape of a fused-phase interpreter: annotated and clean —
// a switch over pre-bound steps touches no allocating construct.
//
//vetsparse:allocfree
func execPlan(p *plan, lo, hi int) {
	for i := range p.steps {
		st := &p.steps[i]
		switch st.op {
		case 0:
			copy(st.x[lo:hi], st.y[lo:hi])
		default:
			for j := lo; j < hi; j++ {
				st.x[j] += st.y[j]
			}
		}
	}
}

// badPlanExec grows the step list from inside an annotated hot path: plan
// building belongs in unannotated setup code, where append reusing the
// steps[:0] backing array is fine.
//
//vetsparse:allocfree
func badPlanExec(p *plan, x, y vec) {
	p.steps = append(p.steps, planStep{op: 0, x: x, y: y}) // want `append may grow the backing array`
}

// ring models the work-stealing deque's hot surface: owner push/pop at the
// back and thief steal at the front reuse the pre-grown backing array —
// annotated and clean.
type ring struct {
	buf        []int
	head, size int
}

//vetsparse:allocfree
func (r *ring) push(v int) bool {
	if r.size == len(r.buf) {
		return false // growing the ring belongs in unannotated setup code
	}
	r.buf[(r.head+r.size)%len(r.buf)] = v
	r.size++
	return true
}

//vetsparse:allocfree
func (r *ring) pop() (int, bool) {
	if r.size == 0 {
		return 0, false
	}
	r.size--
	return r.buf[(r.head+r.size)%len(r.buf)], true
}

//vetsparse:allocfree
func (r *ring) stealFront() (int, bool) {
	if r.size == 0 {
		return 0, false
	}
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return v, true
}

// badRingGrow grows the ring from inside an annotated hot path.
//
//vetsparse:allocfree
func badRingGrow(r *ring, v int) {
	r.buf = append(r.buf, v) // want `append may grow the backing array`
}

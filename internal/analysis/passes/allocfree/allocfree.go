// Package allocfree implements the vetsparse pass guarding the repo's
// zero-allocation hot paths (DESIGN.md §8, the PR-2 Rosenbrock loop and
// the PR-4 team kernels): a function annotated
//
//	//vetsparse:allocfree
//
// in its doc comment asserts its body contains no allocation-causing
// construct, and this pass rejects the annotation when it finds one:
// append, closure-creating function literals, interface boxing, fmt
// calls, non-constant string concatenation, map/slice composite literals,
// make, new, or taking the address of a composite literal.
//
// Two cold-path exemptions keep failure handling out of the hot-loop
// ledger: constructs inside a panic(...) argument, and constructs inside a
// return statement of a function that returns an error, are not flagged —
// both execute at most once per failure, never per iteration. The check
// is intra-procedural: a callee's allocations are its own annotation's
// business, so annotate the whole call chain of a hot loop.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "reject //vetsparse:allocfree functions containing allocation-causing constructs",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, fn := range analysis.AllocFreeFuncs(pass.Files) {
		if fn.Body == nil {
			continue
		}
		c := &checker{pass: pass, returnsError: funcReturnsError(pass.TypesInfo, fn)}
		c.walk(fn.Body, false)
	}
	return nil, nil
}

type checker struct {
	pass         *analysis.Pass
	returnsError bool
}

func (c *checker) report(pos token.Pos, cold bool, format string, args ...any) {
	if !cold {
		c.pass.Reportf(pos, "allocfree function: "+format, args...)
	}
}

// walk flags allocation-causing constructs under n. cold marks the
// exempted failure paths (panic arguments, error returns).
func (c *checker) walk(n ast.Node, cold bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ReturnStmt:
			if !cold && c.returnsError {
				for _, res := range m.Results {
					c.walk(res, true)
				}
				return false
			}
		case *ast.CallExpr:
			if !cold && isBuiltin(c.pass.TypesInfo, m.Fun, "panic") {
				for _, arg := range m.Args {
					c.walk(arg, true)
				}
				return false
			}
			c.checkCall(m, cold)
		case *ast.FuncLit:
			c.report(m.Pos(), cold, "function literal allocates a closure")
			return false // the literal's body belongs to the closure
		case *ast.CompositeLit:
			c.checkCompositeLit(m, cold)
		case *ast.UnaryExpr:
			if _, ok := ast.Unparen(m.X).(*ast.CompositeLit); ok && m.Op == token.AND {
				c.report(m.Pos(), cold, "&composite literal escapes to the heap")
			}
		case *ast.BinaryExpr:
			if m.Op == token.ADD && isString(c.pass.TypesInfo.Types[m].Type) && c.pass.TypesInfo.Types[m].Value == nil {
				c.report(m.Pos(), cold, "non-constant string concatenation allocates")
			}
		case *ast.AssignStmt:
			for i, rhs := range m.Rhs {
				if i < len(m.Lhs) {
					c.checkBoxing(m.Lhs[i], rhs, cold)
				}
			}
		}
		return true
	})
}

// checkCall flags allocating builtins, fmt, and interface boxing at call
// argument positions.
func (c *checker) checkCall(call *ast.CallExpr, cold bool) {
	info := c.pass.TypesInfo
	switch {
	case isBuiltin(info, call.Fun, "append"):
		c.report(call.Pos(), cold, "append may grow the backing array")
		return
	case isBuiltin(info, call.Fun, "make"):
		c.report(call.Pos(), cold, "make allocates")
		return
	case isBuiltin(info, call.Fun, "new"):
		c.report(call.Pos(), cold, "new allocates")
		return
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(x): allocates only when T is an interface.
		if isInterface(tv.Type) && len(call.Args) == 1 && boxes(info, tv.Type, call.Args[0]) {
			c.report(call.Pos(), cold, "conversion to interface boxes %s", info.Types[call.Args[0]].Type)
		}
		return
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		c.report(call.Pos(), cold, "fmt.%s allocates", fn.Name())
		return
	}
	sig, ok := typeOf(info, call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		param := paramAt(sig, i, call.Ellipsis.IsValid())
		if param != nil && boxes(info, param, arg) {
			c.report(arg.Pos(), cold, "passing %s as interface %s boxes", info.Types[arg].Type, param)
		}
	}
}

func (c *checker) checkCompositeLit(lit *ast.CompositeLit, cold bool) {
	t := c.pass.TypesInfo.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.report(lit.Pos(), cold, "map literal allocates")
	case *types.Slice:
		c.report(lit.Pos(), cold, "slice literal allocates")
	}
}

// checkBoxing flags an assignment that stores a non-pointer-shaped
// concrete value into an interface-typed location.
func (c *checker) checkBoxing(lhs, rhs ast.Expr, cold bool) {
	t := typeOf(c.pass.TypesInfo, lhs)
	if t != nil && isInterface(t) && boxes(c.pass.TypesInfo, t, rhs) {
		c.report(rhs.Pos(), cold, "assigning %s to interface %s boxes", c.pass.TypesInfo.Types[rhs].Type, t)
	}
}

// boxes reports whether storing arg into an interface of type dst
// allocates: the arg has a concrete type that is not pointer-shaped
// (pointers, channels, maps, funcs and unsafe pointers fit the interface
// data word without allocating).
func boxes(info *types.Info, dst types.Type, arg ast.Expr) bool {
	if !isInterface(dst) {
		return false
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if isInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	return true
}

// paramAt returns the parameter type at argument index i, unrolling
// variadic parameters; nil when unknown. A `f(xs...)` spread passes the
// slice itself, which does not box per element.
func paramAt(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if ellipsis {
			return sig.Params().At(n - 1).Type()
		}
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// funcReturnsError reports whether the function has an error result,
// enabling the error-return cold-path exemption.
func funcReturnsError(info *types.Info, fn *ast.FuncDecl) bool {
	obj, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	results := obj.Type().(*types.Signature).Results()
	for i := 0; i < results.Len(); i++ {
		if named, ok := results.At(i).Type().(*types.Named); ok {
			if named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return true
			}
		}
	}
	return false
}

package locks_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/locks"
)

func TestLocks(t *testing.T) {
	// "locksfix" imports the fixture package "lockdep", analyzed first so
	// its acquisition-order facts cross the package boundary and close
	// the cycle locksfix only half-creates.
	analysistest.Run(t, "testdata", locks.Analyzer, "locksfix")
}

// Package locks implements the vetsparse pass tracking locksets over
// sync.Mutex / sync.RWMutex flow-sensitively (DESIGN.md §9): PRs 7-9 grew
// a real lock surface — the serve batcher's pending-map lock, the tenant
// table, the solver ledger lock donating team cores, the work-stealing
// deque — and its discipline ("copy under the lock, block outside it") is
// exactly the kind of path property the AST-level passes cannot see.
//
// Four rules, computed on the analysis CFG with a paired may/must lockset
// state:
//
//  1. No lock leaked on a path: at every return, each lock that MAY still
//     be held (net of deferred unlocks) is reported. Paths that end in
//     panic are exempt — the goroutine unwinds.
//  2. No double acquire: taking a lock that MUST already be held
//     self-deadlocks (sync.Mutex does not recurse).
//  3. No blocking operation under a lock: a channel send/receive, a
//     select without default, a deadline read (readforms table), a
//     WaitGroup.Wait, or a team dispatch (Team.RunPhase / kick) while a
//     lock is MUST-held stalls every other goroutine contending for it —
//     and deadlocks outright when the unblocking party needs the same
//     lock. sync.Cond.Wait is exempt: it atomically releases its locker.
//  4. Consistent acquisition order: each function exports the lock
//     classes (Type.field) it may acquire, transitively, as an object
//     fact; acquiring B while holding A records the edge A→B, edges merge
//     across packages bottom-up, and any cycle in the merged graph —
//     e.g. serve ledger lock vs core.Deque.mu taken in both orders — is
//     reported as a deadlock candidate where the local edge closes it.
package locks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/readforms"
)

// lockFact summarizes a function for callers: the lock classes it (or
// anything it calls) may acquire, and the acquisition-order edges observed
// in its dynamic extent. Edges ride the facts so a cycle whose halves live
// in different packages is visible to the downstream package.
type lockFact struct {
	// Acquires lists lock classes ("pkg/path.Type.field") the function
	// may take, transitively.
	Acquires []string
	// Edges lists "held→acquired" order edges observed transitively.
	Edges []string
}

func (*lockFact) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "locks",
	Doc:       "flow-sensitive lockset analysis: leaked locks, double acquire, blocking under a lock, cross-package acquisition-order cycles",
	FactTypes: []analysis.Fact{(*lockFact)(nil)},
	Run:       run,
}

// lockset is the dual may/must state: may is "held on some path into
// here", must is "held on every path". Keys are normalized lock
// expressions ("d.mu", "s.admitMu", with "#R" appended for read locks).
type lockset struct {
	may  map[string]bool
	must map[string]bool
	// class maps a held key to its lock class for order edges ("" when
	// the lock has no package-level identity).
	class map[string]string
}

func newLockset() *lockset {
	return &lockset{may: map[string]bool{}, must: map[string]bool{}, class: map[string]string{}}
}

func (s *lockset) copy() *lockset {
	c := newLockset()
	for k := range s.may {
		c.may[k] = true
	}
	for k := range s.must {
		c.must[k] = true
	}
	for k, v := range s.class {
		c.class[k] = v
	}
	return c
}

// join merges src into dst: may-union, must-intersection.
func (s *lockset) join(src *lockset) bool {
	changed := false
	for k := range src.may {
		if !s.may[k] {
			s.may[k] = true
			changed = true
		}
	}
	for k := range s.must {
		if !src.must[k] {
			delete(s.must, k)
			changed = true
		}
	}
	for k, v := range src.class {
		if _, ok := s.class[k]; !ok {
			s.class[k] = v
		}
	}
	return changed
}

func (s *lockset) acquire(key, class string) {
	s.may[key] = true
	s.must[key] = true
	s.class[key] = class
}

func (s *lockset) release(key string) {
	delete(s.may, key)
	delete(s.must, key)
}

func (s *lockset) mustHeld() []string {
	keys := make([]string, 0, len(s.must))
	for k := range s.must {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// funcSummary is the per-function analysis product before facts export.
type funcSummary struct {
	acquires map[string]bool
	edges    map[string]token.Pos // edge "A→B" → the local Lock position that created it
	callees  map[*types.Func]bool // package-local static callees
}

func run(pass *analysis.Pass) (any, error) {
	a := &lockAnalysis{
		pass:      pass,
		summaries: map[*types.Func]*funcSummary{},
	}
	// Pass 1: per-function lockset analysis + local summaries. Function
	// literals are analyzed as functions in their own right (their lock
	// state is private to the goroutine or deferred frame running them),
	// attributed to the enclosing declaration's summary so order edges
	// survive the indirection.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			sum := &funcSummary{acquires: map[string]bool{}, edges: map[string]token.Pos{}, callees: map[*types.Func]bool{}}
			if obj != nil {
				a.summaries[obj] = sum
			}
			a.analyzeFunc(fn.Body, sum)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					a.analyzeFunc(lit.Body, sum)
				}
				return true
			})
		}
	}
	a.propagate()
	a.checkOrder()
	return nil, nil
}

type lockAnalysis struct {
	pass      *analysis.Pass
	summaries map[*types.Func]*funcSummary
	// comm marks the current function's select communication statements
	// (CFG.Comm): their send/receive is decided by the select dispatch and
	// never blocks by itself.
	comm map[ast.Stmt]bool
}

// analyzeFunc runs the dual-lockset flow problem over one function body
// and reports rules 1-3; acquisition edges and acquire classes accumulate
// into sum.
func (a *lockAnalysis) analyzeFunc(body *ast.BlockStmt, sum *funcSummary) {
	g := analysis.NewCFG(body, a.pass.TypesInfo)
	a.comm = g.Comm

	// Deferred unlocks apply at exit; deferred Lock is nonsense we leave
	// to rule 1 (the lock would leak anyway).
	deferred := map[string]bool{}
	for _, d := range g.Deferred {
		if op, key, _ := a.mutexOp(d.Call); op == opUnlock {
			deferred[key] = true
		}
	}

	spec := analysis.FlowSpec[*lockset]{
		Init: newLockset(),
		Copy: func(s *lockset) *lockset { return s.copy() },
		Join: func(dst, src *lockset) bool { return dst.join(src) },
		Transfer: func(n ast.Node, s *lockset) {
			a.transfer(n, s, sum, nil)
		},
	}
	in := analysis.Forward(g, spec)

	// Replay with reporting enabled: rules 2 and 3 at every node, rule 1
	// (locks held at a return, net of deferred unlocks) at return nodes.
	analysis.Walk(g, in, spec, func(n ast.Node, before *lockset) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, key := range sortedKeys(before.may) {
				if !deferred[key] {
					a.pass.Reportf(ret.Pos(), "lock %s may still be held at this return; every path must release it (or defer the unlock)", key)
				}
			}
		}
		a.transferCheck(n, before, sum)
	})
	// The fall-off-the-end exit: a function whose last block reaches Exit
	// without a return statement. Find states flowing into Exit from
	// non-return, non-panic blocks.
	for _, blk := range g.Blocks {
		if blk.Return || blk.Panics {
			continue
		}
		for _, succ := range blk.Succs {
			if succ != g.Exit {
				continue
			}
			entry, ok := in[blk]
			if !ok {
				continue
			}
			s := entry.copy()
			for _, n := range blk.Nodes {
				a.transfer(n, s, sum, nil)
			}
			for _, key := range sortedKeys(s.may) {
				if !deferred[key] {
					pos := body.Rbrace
					if len(blk.Nodes) > 0 {
						pos = blk.Nodes[len(blk.Nodes)-1].Pos()
					}
					a.pass.Reportf(pos, "lock %s may still be held when the function falls off the end; every path must release it (or defer the unlock)", key)
				}
			}
		}
	}
}

// transferCheck is transfer with rules 2 and 3 reported against the state
// immediately before the node.
func (a *lockAnalysis) transferCheck(n ast.Node, before *lockset, sum *funcSummary) {
	s := before.copy()
	a.transfer(n, s, sum, func(kind, detail string, pos token.Pos) {
		a.pass.Reportf(pos, "%s", detail)
	})
}

type mutexOpKind int

const (
	opNone mutexOpKind = iota
	opLock
	opUnlock
)

// transfer applies one CFG node to the lockset. When report is non-nil,
// rules 2 and 3 fire through it; edges and acquires accumulate into sum
// either way (the fixed-point iteration and the replay both see them —
// the maps dedupe).
func (a *lockAnalysis) transfer(n ast.Node, s *lockset, sum *funcSummary, report func(kind, detail string, pos token.Pos)) {
	if sd, ok := n.(*analysis.SelectDispatch); ok {
		if !sd.HasDefault() && report != nil {
			a.reportBlocking(s, "select", sd.Pos(), report)
		}
		return
	}
	// A select comm statement's send/receive is non-blocking here: the
	// dispatch marker already modeled the blocking decision.
	isComm := false
	if stmt, ok := n.(ast.Stmt); ok {
		isComm = a.comm[stmt]
	}
	analysis.InspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt:
			// The deferred call runs at exit, not here; skip its call
			// expression (but not its argument expressions — they
			// evaluate now; close enough to skip entirely for mutex ops).
			return false
		case *ast.SendStmt:
			if report != nil && !isComm {
				a.reportBlocking(s, "channel send", m.Arrow, report)
			}
			return true
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && report != nil && !isComm {
				a.reportBlocking(s, "channel receive", m.OpPos, report)
			}
			return true
		case *ast.CallExpr:
			op, key, class := a.mutexOp(m)
			switch op {
			case opLock:
				// Read locks are shared: a second RLock is legal (though
				// an order hazard with writers, which rule 4 covers), so
				// the self-deadlock rule applies to exclusive locks only.
				if s.must[key] && report != nil && !strings.HasSuffix(key, "#R") {
					report("double", fmt.Sprintf("lock %s acquired while already held on every path here; sync mutexes do not recurse — this self-deadlocks", key), m.Pos())
				}
				// Order edges: every held lock with a class precedes
				// this one.
				if class != "" {
					for held, heldClass := range s.class {
						if s.may[held] && heldClass != "" && heldClass != class {
							edge := heldClass + "→" + class
							if _, ok := sum.edges[edge]; !ok {
								sum.edges[edge] = m.Pos()
							}
						}
					}
					sum.acquires[class] = true
				}
				s.acquire(key, class)
				return true
			case opUnlock:
				s.release(key)
				return true
			}
			if name, why := a.blockingCall(m); name != "" && report != nil {
				a.reportBlocking(s, why, m.Pos(), report)
			}
			// Callee summaries: acquisitions inside callees create order
			// edges under any held lock, and propagate into this
			// function's transitive acquire set.
			if callee := calleeFunc(a.pass.TypesInfo, m); callee != nil {
				if callee.Pkg() == a.pass.Pkg {
					sum.callees[callee] = true
					if cs := a.summaries[callee]; cs != nil {
						a.mergeCalleeLocked(s, sum, cs.acquires, m.Pos())
					}
				} else {
					var fact lockFact
					if a.pass.ImportObjectFact(callee, &fact) {
						acq := map[string]bool{}
						for _, c := range fact.Acquires {
							acq[c] = true
						}
						a.mergeCalleeLocked(s, sum, acq, m.Pos())
						for _, e := range fact.Edges {
							if _, ok := sum.edges[e]; !ok {
								sum.edges[e] = token.NoPos
							}
						}
					}
				}
			}
			return true
		}
		return true
	})
}

// mergeCalleeLocked folds a callee's acquire classes into the caller:
// order edges from every currently-held classed lock, plus transitive
// acquires.
func (a *lockAnalysis) mergeCalleeLocked(s *lockset, sum *funcSummary, calleeAcquires map[string]bool, pos token.Pos) {
	for c := range calleeAcquires {
		sum.acquires[c] = true
		for held, heldClass := range s.class {
			if s.may[held] && heldClass != "" && heldClass != c {
				edge := heldClass + "→" + c
				if _, ok := sum.edges[edge]; !ok {
					sum.edges[edge] = pos
				}
			}
		}
	}
}

// reportBlocking fires rule 3 for every must-held lock, honoring the
// //vetsparse:ignore filter indirectly (the driver filters by position).
func (a *lockAnalysis) reportBlocking(s *lockset, what string, pos token.Pos, report func(kind, detail string, pos token.Pos)) {
	for _, key := range s.mustHeld() {
		report("blocking", fmt.Sprintf("%s while holding lock %s; a blocked holder stalls every contender — release the lock first", what, key), pos)
	}
}

// mutexOp classifies a call as Lock/Unlock on a sync.Mutex or
// sync.RWMutex (including embedded ones), returning the op, the
// normalized lock key, and the lock class ("pkg.Type.field", "" when the
// lock has no package-level identity).
func (a *lockAnalysis) mutexOp(call *ast.CallExpr) (mutexOpKind, string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, "", ""
	}
	var op mutexOpKind
	read := false
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op, read = opLock, true
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op, read = opUnlock, true
	default:
		return opNone, "", ""
	}
	fn, ok := a.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, "", ""
	}
	key := types.ExprString(sel.X)
	if read {
		key += "#R"
	}
	return op, key, a.lockClass(sel.X)
}

// lockClass derives the package-level identity of a lock expression:
// "pkgpath.Type.field" for a mutex field of a named struct, "pkgpath.var"
// for a package-level mutex variable, "" otherwise.
func (a *lockAnalysis) lockClass(x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		field, ok := a.pass.TypesInfo.Uses[x.Sel].(*types.Var)
		if !ok || !field.IsField() {
			return ""
		}
		// The owning named type comes from the selection's receiver.
		if selInfo, ok := a.pass.TypesInfo.Selections[x]; ok {
			t := selInfo.Recv()
			for {
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
					continue
				}
				break
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
			}
		}
		return ""
	case *ast.Ident:
		obj := a.pass.TypesInfo.Uses[x]
		if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// blockingCall classifies a call as a blocking operation (rule 3):
// deadline-carrying and bare protocol reads, WaitGroup.Wait, team
// dispatches. sync.Cond.Wait is exempt — it releases its locker.
func (a *lockAnalysis) blockingCall(call *ast.CallExpr) (name, why string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	n := sel.Sel.Name
	fn, _ := a.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		// Package-level funcs: time.Sleep blocks.
		if fn.Pkg() != nil && fn.Pkg().Path() == "time" && n == "Sleep" {
			return n, "time.Sleep"
		}
		return "", ""
	}
	recvT := sig.Recv().Type()
	if isSyncType(recvT, "Cond") {
		return "", "" // Cond.Wait releases the locker; Signal/Broadcast don't block
	}
	if isSyncType(recvT, "WaitGroup") && n == "Wait" {
		return n, "WaitGroup.Wait"
	}
	if readforms.Deadline[n] || readforms.Bare[n] != "" {
		return n, "blocking read " + n
	}
	if n == "RunPhase" || n == "kick" {
		if named := namedOf(recvT); named != nil && named.Obj().Name() == "Team" {
			return n, "team dispatch " + n
		}
	}
	return "", ""
}

func isSyncType(t types.Type, name string) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == name
}

func namedOf(t types.Type) *types.Named {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, _ := t.(*types.Named)
	return named
}

// propagate closes the per-function summaries over package-local calls
// (so a helper's acquisitions count for its callers) and exports facts.
func (a *lockAnalysis) propagate() {
	for changed := true; changed; {
		changed = false
		for _, sum := range a.summaries {
			for callee := range sum.callees {
				cs := a.summaries[callee]
				if cs == nil {
					continue
				}
				for c := range cs.acquires {
					if !sum.acquires[c] {
						sum.acquires[c] = true
						changed = true
					}
				}
				for e := range cs.edges {
					if _, ok := sum.edges[e]; !ok {
						sum.edges[e] = token.NoPos
						changed = true
					}
				}
			}
		}
	}
	for obj, sum := range a.summaries {
		if len(sum.acquires) == 0 && len(sum.edges) == 0 {
			continue
		}
		fact := &lockFact{}
		for c := range sum.acquires {
			fact.Acquires = append(fact.Acquires, c)
		}
		for e := range sum.edges {
			fact.Edges = append(fact.Edges, e)
		}
		sort.Strings(fact.Acquires)
		sort.Strings(fact.Edges)
		a.pass.ExportObjectFact(obj, fact)
	}
}

// checkOrder merges every known acquisition-order edge — local ones plus
// edges imported through callee facts (already folded into summaries) —
// and reports each cycle that a locally-observed edge closes, at that
// edge's Lock site. Reporting only locally-closed cycles keeps a cycle
// from being re-reported by every downstream package.
func (a *lockAnalysis) checkOrder() {
	edges := map[string]token.Pos{}
	for _, sum := range a.summaries {
		for e, pos := range sum.edges {
			// Keep the earliest local position per edge (map iteration
			// over summaries is unordered; diagnostics must not be).
			if cur, ok := edges[e]; !ok || cur == token.NoPos || (pos != token.NoPos && pos < cur) {
				edges[e] = pos
			}
		}
	}
	adj := map[string][]string{}
	for e := range edges {
		from, to, ok := strings.Cut(e, "→")
		if !ok {
			continue
		}
		adj[from] = append(adj[from], to)
	}
	for _, succs := range adj {
		sort.Strings(succs)
	}
	sortedEdges := make([]string, 0, len(edges))
	for e := range edges {
		sortedEdges = append(sortedEdges, e)
	}
	sort.Strings(sortedEdges)
	reported := map[string]bool{}
	for _, e := range sortedEdges {
		pos := edges[e]
		if pos == token.NoPos {
			continue // imported edge; the defining package reports
		}
		from, to, _ := strings.Cut(e, "→")
		if path := findPath(adj, to, from); path != nil {
			// path runs to → ... → from; prepend from and drop the
			// duplicate tail so the cycle lists each node once (the
			// canonical key depends on it).
			cycle := append([]string{from}, path[:len(path)-1]...)
			key := canonicalCycle(cycle)
			if reported[key] {
				continue
			}
			reported[key] = true
			a.pass.Reportf(pos, "lock acquisition order cycle: %s → %s; two goroutines taking these locks in opposite orders deadlock", strings.Join(cycle, " → "), cycle[0])
		}
	}
}

// findPath returns a path from src to dst in adj (nil if none), depth-
// first in sorted order so diagnostics are deterministic.
func findPath(adj map[string][]string, src, dst string) []string {
	seen := map[string]bool{}
	var dfs func(n string) []string
	dfs = func(n string) []string {
		if n == dst {
			return []string{n}
		}
		if seen[n] {
			return nil
		}
		seen[n] = true
		for _, next := range adj[n] {
			if p := dfs(next); p != nil {
				return append([]string{n}, p...)
			}
		}
		return nil
	}
	return dfs(src)
}

// canonicalCycle rotates the cycle node list to start at the smallest
// element so the same cycle found from different edges dedupes.
func canonicalCycle(nodes []string) string {
	if len(nodes) == 0 {
		return ""
	}
	min := 0
	for i, n := range nodes {
		if n < nodes[min] {
			min = i
		}
	}
	rot := append(append([]string{}, nodes[min:]...), nodes[:min]...)
	return strings.Join(rot, "|")
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// calleeFunc resolves the static callee of a call, or nil for dynamic
// calls and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Package locksfix exercises the four locks-pass rules: leaked locks on a
// path, double acquire, blocking under a held lock, and acquisition-order
// cycles (in-package and via lockdep's cross-package facts).
package locksfix

import (
	"sync"
	"time"

	"lockdep"
)

type guarded struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	cond  *sync.Cond
	ready bool
	n     int
}

// --- Rule 1: every path releases ---

func balancedOK(g *guarded, early bool) {
	g.mu.Lock()
	if early {
		g.mu.Unlock()
		return
	}
	g.n++
	g.mu.Unlock()
}

func deferOK(g *guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

func leakOnReturn(g *guarded, early bool) {
	g.mu.Lock()
	if early {
		return // want `lock g\.mu may still be held at this return`
	}
	g.mu.Unlock()
}

func leakAtEnd(g *guarded) {
	g.mu.Lock()
	g.n++ // want `lock g\.mu may still be held when the function falls off the end`
}

// panicExempt unwinds instead of returning: panic paths are not leaks.
func panicExempt(g *guarded, bad bool) {
	g.mu.Lock()
	if bad {
		panic("invariant broken")
	}
	g.mu.Unlock()
}

// loopBalancedOK re-acquires per iteration; the join over the back edge
// must not accumulate phantom held locks.
func loopBalancedOK(g *guarded, n int) {
	for i := 0; i < n; i++ {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	}
}

// --- Rule 2: no double acquire ---

func doubleLock(g *guarded) {
	g.mu.Lock()
	g.mu.Lock() // want `lock g\.mu acquired while already held`
	g.mu.Unlock()
	g.mu.Unlock()
}

// rlockSharedOK: read locks are shared; a second RLock is not a
// self-deadlock.
func rlockSharedOK(g *guarded) {
	g.rw.RLock()
	g.rw.RLock()
	g.rw.RUnlock()
	g.rw.RUnlock()
}

// branchLockOK only holds the lock on one arm into the join; taking it on
// the other arm afterwards must not look like a double acquire (the lock
// is may-held, not must-held).
func branchLockOK(g *guarded, c bool) {
	if c {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	}
	g.mu.Lock()
	g.mu.Unlock()
}

// --- Rule 3: no blocking operation under a lock ---

func sendUnderLock(g *guarded, ch chan int) {
	g.mu.Lock()
	ch <- g.n // want `channel send while holding lock g\.mu`
	g.mu.Unlock()
}

func recvUnderLock(g *guarded, ch chan int) {
	g.mu.Lock()
	g.n = <-ch // want `channel receive while holding lock g\.mu`
	g.mu.Unlock()
}

func sendOutsideLockOK(g *guarded, ch chan int) {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	ch <- n
}

func selectUnderLock(g *guarded, a, b chan int) {
	g.mu.Lock()
	select { // want `select while holding lock g\.mu`
	case v := <-a:
		g.n = v
	case b <- g.n:
	}
	g.mu.Unlock()
}

// selectDefaultOK polls: a select with a default never blocks, and the
// send in its comm clause is decided by the dispatch, not by the channel.
func selectDefaultOK(g *guarded, ch chan int) {
	g.mu.Lock()
	select {
	case ch <- g.n:
	default:
	}
	g.mu.Unlock()
}

// condWaitOK: sync.Cond.Wait atomically releases its locker — the one
// blocking call that is correct under the lock.
func condWaitOK(g *guarded) {
	g.mu.Lock()
	for !g.ready {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

func sleepUnderLock(g *guarded) {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding lock g\.mu`
	g.mu.Unlock()
}

func wgWaitUnderLock(g *guarded, wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait() // want `WaitGroup\.Wait while holding lock g\.mu`
	g.mu.Unlock()
}

// port mimics the manifold deadline-read surface by method name.
type port struct{}

func (p *port) ReadWithin(d time.Duration) (int, error) { return 0, nil }

func readUnderLock(g *guarded, p *port) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, err := p.ReadWithin(time.Millisecond) // want `blocking read ReadWithin while holding lock g\.mu`
	return err
}

// --- Rule 4: acquisition-order cycles ---

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func abOrder(p *pair) {
	p.a.Lock()
	p.b.Lock() // want `lock acquisition order cycle: locksfix\.pair\.a → locksfix\.pair\.b → locksfix\.pair\.a`
	p.b.Unlock()
	p.a.Unlock()
}

func baOrder(p *pair) {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

// crossOrder takes lockdep's locks in the opposite order from
// lockdep.StoreThenCache; the conflicting edge arrives through the
// imported fact on the call below, never syntactically visible here.
func crossOrder(s *lockdep.Store, c *lockdep.Cache) {
	c.Mu.Lock()
	s.Mu.Lock() // want `lock acquisition order cycle: lockdep\.Cache\.Mu → lockdep\.Store\.Mu → lockdep\.Cache\.Mu`
	s.Mu.Unlock()
	c.Mu.Unlock()
}

func useDep(s *lockdep.Store, c *lockdep.Cache) {
	lockdep.StoreThenCache(s, c, "k")
}

// calleeEdge holds its own lock while calling into lockdep: the edge
// toward lockdep.Store.Mu comes from Bump's imported acquire fact. No
// cycle — just the fact plumbing the cross-package rule rides on.
type registry struct {
	mu sync.Mutex
}

func calleeEdge(r *registry, s *lockdep.Store) {
	r.mu.Lock()
	lockdep.Bump(s)
	r.mu.Unlock()
}

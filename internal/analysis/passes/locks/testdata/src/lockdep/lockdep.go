// Package lockdep is the dependency fixture for cross-package lock-order
// facts: it owns the lock classes Store.Mu and Cache.Mu and establishes
// the Store→Cache acquisition order locally. The order edge rides this
// package's object facts, so a downstream package taking the two locks in
// the opposite order closes a cycle it could never see syntactically.
package lockdep

import "sync"

type Store struct {
	Mu sync.Mutex
	n  int
}

type Cache struct {
	Mu sync.Mutex
	m  map[string]int
}

// StoreThenCache acquires Store.Mu before Cache.Mu — the package's
// documented order. The exported fact carries both the acquire set and
// the Store.Mu→Cache.Mu edge.
func StoreThenCache(s *Store, c *Cache, key string) {
	s.Mu.Lock()
	c.Mu.Lock()
	c.m[key] = s.n
	c.Mu.Unlock()
	s.Mu.Unlock()
}

// Bump acquires only Store.Mu; callers holding their own lock create an
// order edge toward it through this function's fact.
func Bump(s *Store) {
	s.Mu.Lock()
	s.n++
	s.Mu.Unlock()
}

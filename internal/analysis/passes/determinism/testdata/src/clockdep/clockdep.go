// Package clockdep is a fixture dependency outside the determinism
// diagnostic scope: it emits no findings of its own but exports the
// nondeterminism facts the solver fixture imports across the package
// boundary.
package clockdep

import "time"

// StampUs reads the wall clock.
func StampUs() int64 { return time.Now().UnixMicro() }

// Pure is deterministic.
func Pure(x float64) float64 { return 2 * x }

// Package linalg fixtures exercise the worker-range accumulator rule: a
// kernel (trailing lo, hi int parameters) must not fold its whole range
// into one function-level float.
package linalg

// badDot folds the whole [lo, hi) range into one function-level
// accumulator, so the partial depends on how the team splits the range.
func badDot(a, b []float64, lo, hi int) float64 {
	s := 0.0
	for i := lo; i < hi; i++ {
		s += a[i] * b[i] // want `float accumulation across the whole \[lo, hi\) worker range`
	}
	return s
}

// badNorm uses the s = s + x spelling; still a whole-range fold.
func badNorm(v []float64, lo, hi int) float64 {
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum = sum + v[i]*v[i] // want `float accumulation across the whole \[lo, hi\) worker range`
	}
	return sum
}

// goodDot follows the redChunk discipline: fixed 1024-element chunks with
// chunk-local partials written to a per-chunk slot.
func goodDot(partial, a, b []float64, c0, c1 int) {
	for c := c0; c < c1; c++ {
		lo, hi := c*1024, (c+1)*1024
		if hi > len(a) {
			hi = len(a)
		}
		p := 0.0
		for i := lo; i < hi; i++ {
			p += a[i] * b[i]
		}
		partial[c] = p
	}
}

// axpyRange is elementwise over the range: no reduction, nothing to flag.
func axpyRange(y, x []float64, a float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		y[i] += a * x[i]
	}
}

// phaseStep models one op of a fused-phase micro-program: operands bound at
// build time, executed per worker range by a plan interpreter.
type phaseStep struct {
	x, y    []float64
	partial []float64
}

// badFusedDotStep executes a fused phase's reduction step with one
// function-level accumulator over the whole worker range: fusing ops into a
// micro-program does not lift the chunk discipline.
func badFusedDotStep(st *phaseStep, lo, hi int) float64 {
	s := 0.0
	for i := lo; i < hi; i++ {
		s += st.x[i] * st.y[i] // want `float accumulation across the whole \[lo, hi\) worker range`
	}
	return s
}

// goodFusedDotStep keeps the redChunk discipline inside the fused phase:
// the worker's range is chunk-aligned, so the step fills exactly its own
// slots of the plan's partial buffer with chunk-local accumulators.
func goodFusedDotStep(st *phaseStep, c0, c1 int) {
	for c := c0; c < c1; c++ {
		lo, hi := c*1024, (c+1)*1024
		if hi > len(st.x) {
			hi = len(st.x)
		}
		p := 0.0
		for i := lo; i < hi; i++ {
			p += st.x[i] * st.y[i]
		}
		st.partial[c] = p
	}
}

// Package solver fixtures exercise the SubsolveInto reachability rule
// (direct, package-local, cross-package and suppressed sources) and the
// map-range rule.
package solver

import (
	"fmt"
	"math/rand"
	"time"

	"clockdep"
)

type stateA struct{ u []float64 }

// SubsolveInto reads the clock directly.
func (s *stateA) SubsolveInto() { // want `nondeterminism source reachable from SubsolveInto via time\.Now`
	_ = time.Now()
}

type stateB struct{ u []float64 }

func stamp() int64 { return time.Now().UnixNano() }

// SubsolveInto reaches the clock through a package-local helper.
func (s *stateB) SubsolveInto() { // want `reachable from SubsolveInto via solver\.stamp -> time\.Now`
	_ = stamp()
}

type stateC struct{ u []float64 }

// SubsolveInto reaches the clock through an imported package; the fact
// crossed the package boundary.
func (s *stateC) SubsolveInto() { // want `reachable from SubsolveInto via clockdep\.StampUs -> time\.Now`
	_ = clockdep.StampUs()
}

type stateD struct{ u []float64 }

// SubsolveInto draws from the unseeded global math/rand source.
func (s *stateD) SubsolveInto() { // want `reachable from SubsolveInto via math/rand\.Float64 \(global source\)`
	_ = rand.Float64()
}

type stateE struct{ u []float64 }

// SubsolveInto is deterministic: seeded local source, pure callee.
func (s *stateE) SubsolveInto() {
	r := rand.New(rand.NewSource(42))
	_ = r.Float64()
	_ = clockdep.Pure(1.0)
}

type stateF struct{ u []float64 }

// SubsolveInto's clock read is suppressed as metrics-only, which keeps it
// out of the facts too: no diagnostic here.
func (s *stateF) SubsolveInto() {
	//vetsparse:ignore determinism fixture for a justified metrics-only read
	_ = time.Now()
}

// mapAccumulate folds map values in iteration order: the float result
// depends on Go's randomized map order.
func mapAccumulate(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // want `range over map feeds float arithmetic`
		s += v
	}
	return s
}

// mapKeysOnly counts entries: no float work, order-insensitive.
func mapKeysOnly(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// mapPrint emits output in map iteration order.
func mapPrint(m map[string]int) {
	for k, v := range m { // want `range over map feeds output \(fmt\)`
		fmt.Printf("%s=%d\n", k, v)
	}
}

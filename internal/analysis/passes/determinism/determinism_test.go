package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/determinism"
)

func TestDeterminism(t *testing.T) {
	// "solver" imports the fixture package "clockdep", which is analyzed
	// first so its nondeterminism facts cross the package boundary.
	analysistest.Run(t, "testdata", determinism.Analyzer, "solver", "linalg")
}

// Package determinism implements the vetsparse pass guarding the repo's
// bit-for-bit reproducibility invariant (DESIGN.md §8): the numeric stack
// — linalg, grid, solver, rosenbrock — must produce identical floats for
// identical inputs at any team size.
//
// Three rules:
//
//  1. No unordered iteration feeding floats or output: `range` over a map
//     whose body performs float arithmetic or prints makes the result
//     depend on Go's randomized map order.
//  2. No wall clock or global randomness reachable from SubsolveInto:
//     time.Now / time.Since / unseeded math/rand anywhere in the dynamic
//     extent of a subsolve changes results run to run. Reachability is
//     computed bottom-up over the call graph with object facts, so a
//     clock read introduced three packages deep is still caught at the
//     SubsolveInto root. Metrics-only clock reads are suppressed at the
//     call site with //vetsparse:ignore determinism <reason>, which also
//     keeps them out of the facts.
//  3. No team-shape-dependent reductions: in a worker-range kernel (a
//     function whose trailing two int parameters are the [lo, hi) range a
//     team member owns), accumulating floats across the whole range in a
//     function-level accumulator makes the partial — and with it the
//     fold order — depend on the team size. Kernels must fold fixed
//     1024-element chunks (linalg's redChunk discipline) with chunk-local
//     accumulators instead.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// scopedPkgs are the numeric packages rules 1 and 3 and the SubsolveInto
// diagnostic apply to (by package name, so fixtures can reproduce them);
// rule 2's reachability facts are computed for every package.
var scopedPkgs = map[string]bool{
	"linalg":     true,
	"grid":       true,
	"solver":     true,
	"rosenbrock": true,
}

// nondetFact marks a function from whose body a nondeterminism source
// (clock read, unseeded math/rand) is reachable.
type nondetFact struct {
	// Via is the human-readable call chain to the source.
	Via string
}

func (*nondetFact) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "determinism",
	Doc:       "flag nondeterminism hazards in the numeric stack: map-order-dependent float code, clock/rand reachable from SubsolveInto, team-size-dependent reductions",
	FactTypes: []analysis.Fact{(*nondetFact)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	reach := computeReachability(pass)
	if !scopedPkgs[pass.Pkg.Name()] {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkMapRange(pass, fn)
				checkRangeAccumulator(pass, fn)
				if fn.Name.Name == "SubsolveInto" {
					if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
						if via, bad := reach[obj]; bad {
							pass.Reportf(fn.Name.Pos(), "nondeterminism source reachable from SubsolveInto via %s; identical inputs must produce identical floats", via)
						}
					}
				}
			}
		}
	}
	return nil, nil
}

// computeReachability finds the package's functions from which a clock
// read or unseeded math/rand call is reachable, imports the equivalent
// facts for callees in other packages, iterates the package-local call
// graph to a fixpoint, and exports facts for downstream packages. The
// returned map gives the via-chain per nondeterministic function.
func computeReachability(pass *analysis.Pass) map[*types.Func]string {
	type funcInfo struct {
		decl    *ast.FuncDecl
		via     string               // nonempty when nondeterminism is reachable
		callees map[*types.Func]bool // package-local static callees
	}
	infos := make(map[*types.Func]*funcInfo)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &funcInfo{decl: fn, callees: make(map[*types.Func]bool)}
			infos[obj] = info
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				if src := nondetSource(callee); src != "" {
					// A //vetsparse:ignore at the call site both drops the
					// diagnostic and keeps the call out of the facts, so a
					// justified metrics-only clock read does not poison
					// every caller up to SubsolveInto.
					if !pass.Ignores.Match(pass.Analyzer.Name, call.Pos()) && info.via == "" {
						info.via = src
					}
					return true
				}
				if callee.Pkg() == pass.Pkg {
					info.callees[callee] = true
				} else {
					var fact nondetFact
					if pass.ImportObjectFact(callee, &fact) && info.via == "" {
						info.via = callee.FullName() + " -> " + fact.Via
					}
				}
				return true
			})
		}
	}

	// Fixpoint over package-local edges (handles recursion and any
	// declaration order).
	for changed := true; changed; {
		changed = false
		for _, info := range infos {
			if info.via != "" {
				continue
			}
			for callee := range info.callees {
				if ci := infos[callee]; ci != nil && ci.via != "" {
					info.via = callee.FullName() + " -> " + ci.via
					changed = true
					break
				}
			}
		}
	}

	out := make(map[*types.Func]string)
	for obj, info := range infos {
		if info.via != "" {
			out[obj] = info.via
			pass.ExportObjectFact(obj, &nondetFact{Via: info.via})
		}
	}
	return out
}

// calleeFunc resolves the static callee of a call, or nil for dynamic
// calls (interface methods, function values) and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// seededRandFuncs are the math/rand package-level functions that do not
// consume the unseeded global source.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "Seed": true}

// nondetSource classifies a callee as a nondeterminism source, returning
// a description or "".
func nondetSource(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() == nil && !seededRandFuncs[fn.Name()] {
			return pkg.Path() + "." + fn.Name() + " (global source)"
		}
	}
	return ""
}

// checkMapRange flags `range` over a map whose body does float arithmetic
// or prints: Go randomizes map order, so such loops produce run-dependent
// floats or output.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if why := unorderedHazard(pass.TypesInfo, rng.Body); why != "" {
			pass.Reportf(rng.Pos(), "range over map feeds %s; map order is randomized, so the result depends on iteration order", why)
		}
		return true
	})
}

// unorderedHazard reports what order-sensitive work a loop body does:
// float arithmetic or output.
func unorderedHazard(info *types.Info, body *ast.BlockStmt) string {
	why := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				if isFloat(info.Types[n.X].Type) || isFloat(info.Types[n.Y].Type) {
					why = "float arithmetic"
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if isFloat(info.Types[lhs].Type) {
						why = "float arithmetic"
					}
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				why = "output (fmt)"
			}
		}
		return true
	})
	return why
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// checkRangeAccumulator flags float accumulation across a worker's whole
// [lo, hi) range. A kernel is recognized by its trailing two int
// parameters; an accumulator is a float variable declared directly in the
// function body that receives += / -= (or s = s + x) inside a loop whose
// header references both range parameters. Chunk-local accumulators — the
// redChunk discipline — live inside the loop and are untouched.
func checkRangeAccumulator(pass *analysis.Pass, fn *ast.FuncDecl) {
	lo, hi := rangeParams(pass.TypesInfo, fn)
	if lo == nil {
		return
	}
	acc := bodyLevelFloats(pass.TypesInfo, fn.Body)
	if len(acc) == 0 {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || !loopUsesBoth(pass.TypesInfo, loop, lo, hi) {
			return true
		}
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !acc[pass.TypesInfo.Uses[id]] {
					continue
				}
				if accumulates(pass.TypesInfo, as, i, id) {
					pass.Reportf(as.Pos(), "float accumulation across the whole [%s, %s) worker range makes the reduction depend on team size; fold fixed 1024-element chunks into chunk-local partials instead", lo.Name(), hi.Name())
				}
			}
			return true
		})
		return true
	})
}

// rangeParams returns the function's trailing two int parameters, or nils.
func rangeParams(info *types.Info, fn *ast.FuncDecl) (lo, hi *types.Var) {
	obj, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return nil, nil
	}
	params := obj.Type().(*types.Signature).Params()
	n := params.Len()
	if n < 2 {
		return nil, nil
	}
	a, b := params.At(n-2), params.At(n-1)
	if isInt(a.Type()) && isInt(b.Type()) {
		return a, b
	}
	return nil, nil
}

func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// bodyLevelFloats collects float variables declared by statements directly
// in the function body block (not nested in loops or ifs).
func bodyLevelFloats(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	addIdent := func(id *ast.Ident) {
		if obj := info.Defs[id]; obj != nil && isFloat(obj.Type()) {
			vars[obj] = true
		}
	}
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				for _, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						addIdent(id)
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							addIdent(id)
						}
					}
				}
			}
		}
	}
	return vars
}

// loopUsesBoth reports whether the loop header (init and condition)
// references both range parameters.
func loopUsesBoth(info *types.Info, loop *ast.ForStmt, lo, hi *types.Var) bool {
	usesLo, usesHi := false, false
	check := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				switch info.Uses[id] {
				case lo:
					usesLo = true
				case hi:
					usesHi = true
				}
			}
			return true
		})
	}
	check(loop.Init)
	check(loop.Cond)
	return usesLo && usesHi
}

// accumulates reports whether the assignment grows the identified float:
// s += x, s -= x, or s = s + x / s = x + s.
func accumulates(info *types.Info, as *ast.AssignStmt, i int, id *ast.Ident) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return true
	case token.ASSIGN:
		if i >= len(as.Rhs) {
			return false
		}
		bin, ok := ast.Unparen(as.Rhs[i]).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return false
		}
		for _, operand := range []ast.Expr{bin.X, bin.Y} {
			if op, ok := ast.Unparen(operand).(*ast.Ident); ok && info.Uses[op] == info.Uses[id] {
				return true
			}
		}
	}
	return false
}

package obsnames_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/obsnames"
)

func TestObsNames(t *testing.T) {
	analysistest.Run(t, "testdata", obsnames.Analyzer, "obsfix")
}

// Package obsnames implements the vetsparse pass keeping observability
// names honest: every metric name handed to Recorder.Counter / Gauge /
// Histogram and every event name raised or observed on a manifold Process
// must come from the taxonomy in internal/obs/names.go — the same source
// OBSERVABILITY.md's tables are generated from. A typo'd name would
// silently split a histogram or make a coordinator wait on an event
// nobody raises; here it fails the build instead.
//
// Checked: string arguments resolvable as constants (literals and
// consts), and concatenations with constant prefix and suffix around a
// dynamic middle, which must match a `<grid>` taxonomy entry. Wholly
// dynamic names are outside the pass's reach and pass silently. Test
// files are exempt — tests mint throwaway names on purpose.
package obsnames

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/obs"
)

var Analyzer = &analysis.Analyzer{
	Name: "obsnames",
	Doc:  "metric and event name literals must match the internal/obs taxonomy",
	Run:  run,
}

// metricMethods are the Recorder methods taking a metric name.
var metricMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// eventMethods are the Process methods taking protocol event names.
var eventMethods = map[string]bool{"Raise": true, "Observe": true}

func run(pass *analysis.Pass) (any, error) {
	protocolEvents := make(map[string]bool, len(obs.ProtocolEvents))
	for _, e := range obs.ProtocolEvents {
		protocolEvents[e] = true
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case metricMethods[sel.Sel.Name] && receiverNamed(pass.TypesInfo, sel, "Recorder") && len(call.Args) == 1:
				checkMetricArg(pass, call.Args[0])
			case eventMethods[sel.Sel.Name] && receiverNamed(pass.TypesInfo, sel, "Process"):
				for _, arg := range call.Args {
					if name, ok := constString(pass.TypesInfo, arg); ok && !protocolEvents[name] {
						pass.Reportf(arg.Pos(), "event name %q is not in the protocol taxonomy (internal/obs/names.go ProtocolEvents); a typo here deadlocks the rendezvous", name)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// receiverNamed reports whether the selector's receiver is (a pointer to)
// a named type with the given name — by name, not import path, so
// analysistest fixtures can stub the obs and manifold types.
func receiverNamed(info *types.Info, sel *ast.SelectorExpr, name string) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// checkMetricArg validates one metric-name argument: an exact constant
// must be a known metric; a concatenation with constant edges must match
// a `<grid>` family.
func checkMetricArg(pass *analysis.Pass, arg ast.Expr) {
	if name, ok := constString(pass.TypesInfo, arg); ok {
		if !obs.KnownMetric(name) {
			pass.Reportf(arg.Pos(), "metric name %q is not in the taxonomy (internal/obs/names.go MetricDocs); a typo silently splits the metric", name)
		}
		return
	}
	prefix, suffix, ok := concatEdges(pass.TypesInfo, arg)
	if !ok {
		return // wholly dynamic: out of reach
	}
	if !obs.KnownMetricParts(prefix, suffix) {
		pass.Reportf(arg.Pos(), "dynamic metric name %q+…+%q matches no <grid> family in the taxonomy (internal/obs/names.go MetricDocs)", prefix, suffix)
	}
}

func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// concatEdges flattens a + concatenation and returns its constant leading
// and trailing parts when at least one middle operand is dynamic.
func concatEdges(info *types.Info, e ast.Expr) (prefix, suffix string, ok bool) {
	var operands []ast.Expr
	var flatten func(ast.Expr)
	flatten = func(x ast.Expr) {
		if bin, isBin := ast.Unparen(x).(*ast.BinaryExpr); isBin && bin.Op == token.ADD {
			flatten(bin.X)
			flatten(bin.Y)
			return
		}
		operands = append(operands, x)
	}
	flatten(e)
	if len(operands) < 2 {
		return "", "", false
	}
	i := 0
	for ; i < len(operands); i++ {
		s, isConst := constString(info, operands[i])
		if !isConst {
			break
		}
		prefix += s
	}
	j := len(operands)
	for ; j > i; j-- {
		s, isConst := constString(info, operands[j-1])
		if !isConst {
			break
		}
		suffix = s + suffix
	}
	if i == len(operands) || (prefix == "" && suffix == "") {
		return "", "", false
	}
	return prefix, suffix, true
}

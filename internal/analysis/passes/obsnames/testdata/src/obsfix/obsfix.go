// Package obsfix stubs the obs Recorder and manifold Process surfaces by
// name and exercises the taxonomy checks: exact names, <grid> concat
// families, dynamic names, and typo'd metric and event names.
package obsfix

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

type Recorder struct{}

func (r *Recorder) Counter(name string) *Counter     { return nil }
func (r *Recorder) Gauge(name string) *Gauge         { return nil }
func (r *Recorder) Histogram(name string) *Histogram { return nil }

type Process struct{}

func (p *Process) Raise(event string)       {}
func (p *Process) Observe(events ...string) {}

const attemptUs = "core.job.attempt.us"

func metrics(r *Recorder, gname string) {
	r.Gauge("core.jobs.outstanding")
	r.Histogram(attemptUs)
	r.Histogram("solver.subsolve." + gname + ".us")
	r.Histogram("solver.subsolve." + gname + ".cores")

	r.Counter("solver.steals")
	r.Histogram("solver.steal.mc")
	r.Counter("serve.batch.steals")
	r.Histogram("linalg.team.resize.us")

	r.Gauge("core.jobs.outstandin")                  // want `metric name "core.jobs.outstandin" is not in the taxonomy`
	r.Histogram("solver.subsolve." + gname + ".uss") // want `matches no <grid> family`
	r.Counter("solver.stealz")                       // want `metric name "solver.stealz" is not in the taxonomy`

	dynamic := gname + ".us"
	r.Counter(dynamic) // wholly dynamic: out of the pass's reach
}

func events(p *Process) {
	p.Raise("death_worker")
	p.Observe("create_pool", "finished")

	p.Raise("death_workerr")           // want `event name "death_workerr" is not in the protocol taxonomy`
	p.Observe("finished", "finishedd") // want `event name "finishedd" is not in the protocol taxonomy`
}

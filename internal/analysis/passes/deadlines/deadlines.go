// Package deadlines implements the vetsparse pass that makes PR 7's
// deadline-propagation guarantee compile-time-checked (DESIGN.md §9): on
// a request path — a serve handler, the executor's runJob/solveBatched,
// or the pool's Collect loop — every blocking protocol read must be a
// deadline-carrying form (ReadUntil / ReadResultUntil / WaitWithin and
// the relative *Within forms) with the request deadline threaded through.
// A bare Read / MustRead / ReadResult / Wait / Terminated three packages
// below the handler is an unbounded wait the per-request deadline cannot
// reach, and only a test that happens to hang finds it.
//
// Reachability mirrors the determinism pass's clock analysis: each
// function from whose dynamic extent a bare read is reachable (its own
// body, function literals it creates, package-local callees to a
// fixpoint, cross-package callees via object facts) exports a bareRead
// fact carrying the call chain; the diagnostic fires at the roots. A
// //vetsparse:ignore deadlines <reason> at any call edge on the chain —
// the bare read itself, or a caller vouching for a subsystem boundary —
// cuts the chain and keeps the cut call out of the facts, so a justified
// bare read (a synchronous handshake, a worker unstuck by port close, a
// run whose boundedness the pool's expiry logic owns) does not poison
// every root above it.
package deadlines

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/readforms"
)

// bareReadFact marks a function from whose dynamic extent a bare
// (deadline-free) blocking protocol read is reachable.
type bareReadFact struct {
	// Via is the human-readable call chain to the bare read.
	Via string
}

func (*bareReadFact) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "deadlines",
	Doc:       "require deadline-carrying read forms (ReadUntil/ReadResultUntil/WaitWithin) on every blocking read reachable from a serve handler or the pool collect loop",
	FactTypes: []analysis.Fact{(*bareReadFact)(nil)},
	Run:       run,
}

// rootPkgs are the packages whose request-path roots the diagnostic fires
// in (by package name, so fixtures can reproduce them).
var rootPkgs = map[string]bool{"serve": true, "core": true}

func run(pass *analysis.Pass) (any, error) {
	reach := computeReachability(pass)
	if !rootPkgs[pass.Pkg.Name()] {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isRoot(pass, fn) {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			if via, bad := reach[obj]; bad {
				pass.Reportf(fn.Name.Pos(), "bare blocking read reachable from request path %s via %s; thread the request deadline through a deadline-carrying form", fn.Name.Name, via)
			}
		}
	}
	return nil, nil
}

// isRoot recognizes the request-path entry points: in serve, the HTTP
// handlers (handle*-shaped, or any func taking *http.Request) plus the
// executor chain runJob/solveBatched; in core, the pool's Collect loop.
func isRoot(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	switch pass.Pkg.Name() {
	case "serve":
		if strings.HasPrefix(name, "handle") || name == "runJob" || name == "solveBatched" {
			return true
		}
	case "core":
		if name == "Collect" && fn.Recv != nil {
			return true
		}
	}
	return false
}

// computeReachability finds the package's functions from which a bare
// protocol read is reachable, imports equivalent facts for callees in
// other packages, iterates the package-local call graph to a fixpoint,
// and exports facts downstream. Function literals count toward their
// enclosing declaration: a worker closure's bare read is reachable from
// whoever spawned the worker.
func computeReachability(pass *analysis.Pass) map[*types.Func]string {
	type funcInfo struct {
		via     string               // nonempty when a bare read is reachable
		callees map[*types.Func]bool // package-local static callees
	}
	infos := make(map[*types.Func]*funcInfo)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &funcInfo{callees: make(map[*types.Func]bool)}
			infos[obj] = info
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				// An ignore at any call edge cuts the chain there — at the
				// bare read itself, or at a caller vouching for a whole
				// subsystem boundary (e.g. the solver's RunPolicy calls,
				// whose coordination joins are bounded by pool expiry and
				// worker abandonment, not request deadlines). Either way
				// the cut call stays out of the facts, the determinism
				// precedent, so one justified site doesn't flag every
				// root above it.
				if pass.Ignores.Match(pass.Analyzer.Name, call.Pos()) {
					return true
				}
				if src := bareRead(callee); src != "" {
					if info.via == "" {
						info.via = src
					}
					return true
				}
				if callee.Pkg() == pass.Pkg {
					info.callees[callee] = true
				} else {
					var fact bareReadFact
					if pass.ImportObjectFact(callee, &fact) && info.via == "" {
						info.via = callee.FullName() + " -> " + fact.Via
					}
				}
				return true
			})
		}
	}

	for changed := true; changed; {
		changed = false
		for _, info := range infos {
			if info.via != "" {
				continue
			}
			for callee := range info.callees {
				if ci := infos[callee]; ci != nil && ci.via != "" {
					info.via = callee.FullName() + " -> " + ci.via
					changed = true
					break
				}
			}
		}
	}

	out := make(map[*types.Func]string)
	for obj, info := range infos {
		if info.via != "" {
			out[obj] = info.via
			pass.ExportObjectFact(obj, &bareReadFact{Via: info.via})
		}
	}
	return out
}

// bareRead classifies a callee as a bare blocking protocol read,
// returning a description ("core.Port.MustRead (use ReadUntil)") or "".
func bareRead(fn *types.Func) string {
	if readforms.Bare[fn.Name()] == "" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	pkg := fn.Pkg()
	if pkg == nil || !readforms.BarePackages[pkg.Name()] {
		return ""
	}
	return pkg.Name() + ".(" + recvTypeName(sig.Recv().Type()) + ")." + fn.Name() + " (use " + readforms.Bare[fn.Name()] + ")"
}

func recvTypeName(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// calleeFunc resolves the static callee of a call, or nil for dynamic
// calls and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

package deadlines_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/deadlines"
)

func TestDeadlines(t *testing.T) {
	// "serve" imports the fixture packages "core" and "manifold"; the
	// dependencies are analyzed first so the bare-read facts reach the
	// handler roots across package boundaries. "core" is also checked
	// directly for its own Collect roots.
	analysistest.Run(t, "testdata", deadlines.Analyzer, "core", "serve")
}

// Package manifold fixtures stub the protocol port surface by name: the
// deadlines pass classifies bare reads by method name on packages named
// manifold/core (the readforms tables), so these shapes are all it needs.
package manifold

import "time"

type Unit struct{ ID int }

type Port struct{}

// Read and MustRead are the bare (deadline-free) blocking reads.
func (p *Port) Read() Unit     { return Unit{} }
func (p *Port) MustRead() Unit { return Unit{} }

// ReadUntil is the absolute-deadline form a propagated request deadline
// arrives in.
func (p *Port) ReadUntil(t time.Time) (Unit, error) { return Unit{}, nil }

type Process struct{}

// Wait is the bare event wait; WaitWithin its deadline-carrying form.
func (p *Process) Wait(names ...string) string { return "" }
func (p *Process) WaitWithin(d time.Duration, names ...string) (string, bool) {
	return "", false
}

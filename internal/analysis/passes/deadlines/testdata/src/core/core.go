// Package core fixtures give the deadlines pass its two pool shapes: a
// collect loop stuck on a bare read (flagged at the Collect root), one
// threading an absolute deadline (clean), and one whose bare read carries
// a justified //vetsparse:ignore — which must also keep the read out of
// the exported facts, so serve-side callers of QuietPool stay clean.
package core

import (
	"time"

	"manifold"
)

type Master struct{ p *manifold.Port }

// ReadResult is itself a bare read by name; its body is another (the
// port-level MustRead), so it both matches at call sites and exports a
// reachability fact.
func (m *Master) ReadResult() manifold.Unit { return m.p.MustRead() }

// ReadResultUntil is the deadline-carrying form.
func (m *Master) ReadResultUntil(t time.Time) (manifold.Unit, error) {
	return m.p.ReadUntil(t)
}

type BadPool struct{ m *Master }

// Collect is a request-path root: its bare read is flagged here, with the
// chain in the message.
func (p *BadPool) Collect() manifold.Unit { // want `bare blocking read reachable from request path Collect via core\.\(Master\)\.ReadResult \(use ReadResultUntil\)`
	return p.m.ReadResult()
}

type GoodPool struct{ m *Master }

// Collect threads the propagated absolute deadline: clean.
func (p *GoodPool) Collect(deadline time.Time) (manifold.Unit, error) {
	return p.m.ReadResultUntil(deadline)
}

type QuietPool struct{ m *Master }

// Collect waits unbounded by explicit design; the directive suppresses
// the finding and keeps the read out of this function's fact.
func (p *QuietPool) Collect() manifold.Unit {
	//vetsparse:ignore deadlines deadline-free pool waits unbounded by design; there is no deadline to thread
	return p.m.ReadResult()
}

// Package serve fixtures are the handler-shaped roots: the bare read
// lives two packages down (core → manifold) and reaches the handlers only
// through object facts, never syntactically.
package serve

import (
	"time"

	"core"
	"manifold"
)

// handleSolve reaches the bare read through runJob and core's facts.
func handleSolve(p *core.BadPool) manifold.Unit { // want `bare blocking read reachable from request path handleSolve`
	return runJob(p)
}

// runJob is itself a root (the executor chain), flagged independently.
func runJob(p *core.BadPool) manifold.Unit { // want `bare blocking read reachable from request path runJob`
	return p.Collect()
}

// solveBatched threads the deadline end to end: clean.
func solveBatched(p *core.GoodPool, deadline time.Time) (manifold.Unit, error) {
	return p.Collect(deadline)
}

// handleQuiet calls the pool whose bare read carries a justified ignore;
// the cut fact keeps this root clean too.
func handleQuiet(p *core.QuietPool) manifold.Unit {
	return p.Collect()
}

// handleStream's bare read hides in a goroutine literal; reachability
// descends into function literals, attributing them to the enclosing
// declaration.
func handleStream(port *manifold.Port) { // want `bare blocking read reachable from request path handleStream`
	go func() {
		_ = port.MustRead()
	}()
}

// handleHealth does no protocol reads: clean.
func handleHealth() string { return "ok" }

package analysis

import "go/ast"

// This file is the forward may-analysis engine the flow-sensitive passes
// share: a standard iterative worklist over a CFG. The client supplies the
// lattice through three functions — Copy, Join, Transfer — and gets back
// the fixed-point state at entry to every block. Diagnostics are then a
// second, single pass per block: replay Transfer node by node from the
// block's entry state and inspect the intermediate states (that replay is
// Walk).
//
// Join semantics are the client's choice: a union join gives a may
// analysis ("on some path"), an intersection join a must analysis ("on
// every path"). The locks pass runs both at once by carrying a pair state.

// FlowSpec defines one forward dataflow problem over a CFG.
type FlowSpec[S any] struct {
	// Init is the state at function entry.
	Init S
	// Copy returns an independent copy of a state (states are mutated by
	// Transfer in place).
	Copy func(S) S
	// Join merges src into dst, reporting whether dst changed. The
	// engine re-queues a block only when its entry state changed, so
	// Join must be monotone for termination.
	Join func(dst, src S) bool
	// Transfer applies one node's effect to the state in place. During
	// the fixed-point iteration report must not fire; Walk replays with
	// reporting enabled.
	Transfer func(n ast.Node, s S)
}

// Forward iterates spec over g to a fixed point and returns the entry
// state of every reachable block, indexed by Block.Index. Unreachable
// blocks have no entry (the zero S and false from the second map lookup).
func Forward[S any](g *CFG, spec FlowSpec[S]) map[*Block]S {
	in := make(map[*Block]S, len(g.Blocks))
	in[g.Entry] = spec.Copy(spec.Init)
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := spec.Copy(in[blk])
		for _, n := range blk.Nodes {
			spec.Transfer(n, out)
		}
		for _, succ := range blk.Succs {
			cur, ok := in[succ]
			changed := false
			if !ok {
				in[succ] = spec.Copy(out)
				changed = true
			} else {
				changed = spec.Join(cur, out)
			}
			if changed && !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// Walk replays the transfer function over every reachable block from its
// fixed-point entry state, calling visit before each node with the state
// immediately before that node executes. This is where passes report:
// the state is exact for the block-local path, and join-approximate
// across blocks.
func Walk[S any](g *CFG, in map[*Block]S, spec FlowSpec[S], visit func(n ast.Node, before S)) {
	for _, blk := range g.Blocks {
		entry, ok := in[blk]
		if !ok {
			continue
		}
		s := spec.Copy(entry)
		for _, n := range blk.Nodes {
			visit(n, s)
			spec.Transfer(n, s)
		}
	}
}

// InspectShallow walks the AST under n in execution-relevant order but
// does not descend into function literals: a FuncLit body runs at another
// time on (possibly) another goroutine, so its effects never belong to the
// enclosing function's flow state. Every flow-sensitive transfer function
// uses this instead of ast.Inspect.
func InspectShallow(n ast.Node, f func(ast.Node) bool) {
	if sd, ok := n.(*SelectDispatch); ok {
		// Marker node: not part of the go/ast hierarchy, never descended.
		f(sd)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return f(m)
	})
}

package serve

import (
	"repro/internal/grid"
	"repro/internal/rosenbrock"
)

// signature identifies a subsolve shape for batching and caching: the
// grid (root and refinement levels fix the dimensions and with them the
// Jacobian's sparsity pattern) and the inner linear solver (which fixes
// the workspace layout — Krylov basis vs. BiCGStab vectors vs. ILU
// factors). Tolerance is deliberately excluded: the γτ shift key inside
// linalg.Workspace.ILUFor already triggers an in-place refactorization
// whenever the integrator's step size differs, so entries are shareable
// across tolerances without affecting results.
type signature struct {
	g   grid.Grid
	lin rosenbrock.LinearSolver
}

// String renders the signature as the Actor field of serve.batch.* and
// serve.cache.* events, e.g. "grid(1,2;root=2)/bicgstab".
func (s signature) String() string { return s.g.String() + "/" + s.lin.String() }

package serve

import (
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestTenantQuotaRefills(t *testing.T) {
	clock := newFakeClock()
	s, ts := newTestServer(t, Config{
		QueueDepth: 4, Executors: 1,
		TenantRate: 1, TenantBurst: 2,
		Now: clock.Now,
	})
	s.Start()
	defer s.Drain(time.Minute)

	req := SolveRequest{Tenant: "alice", Root: 1, Level: 0, Tol: 1e-2}
	for i := 0; i < 2; i++ {
		code, sr, _ := postSolve(t, ts.URL, req, nil)
		if code != http.StatusOK || sr.Status != StatusCompleted {
			t.Fatalf("burst request %d: %d %q, want 200 completed", i, code, sr.Status)
		}
	}
	// Bucket empty, clock frozen: the third request is shed with the exact
	// refill wait.
	code, sr, hdr := postSolve(t, ts.URL, req, nil)
	if code != http.StatusTooManyRequests || sr.Status != StatusShed || sr.Reason != shedQuota {
		t.Fatalf("over-quota: %d %q/%q, want 429 shed/quota", code, sr.Status, sr.Reason)
	}
	if ra, _ := strconv.Atoi(hdr.Get("Retry-After")); ra < 1 {
		t.Fatalf("over-quota Retry-After = %q, want >= 1s", hdr.Get("Retry-After"))
	}
	// Another tenant has their own bucket.
	if code, sr, _ := postSolve(t, ts.URL, SolveRequest{Tenant: "bob", Root: 1, Level: 0, Tol: 1e-2}, nil); code != http.StatusOK {
		t.Fatalf("bob sharing alice's bucket: %d %q", code, sr.Status)
	}
	// One refill interval later the shed tenant is admitted again.
	clock.Advance(time.Second)
	if code, sr, _ := postSolve(t, ts.URL, req, nil); code != http.StatusOK || sr.Status != StatusCompleted {
		t.Fatalf("after refill: %d %q, want 200 completed", code, sr.Status)
	}
	checkLedger(t, s)
}

func TestInflightCap(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 4, Executors: 1, MaxInflight: 1})
	defer s.Drain(time.Minute)

	// First request admitted and parked in the queue (no executors yet).
	first := make(chan SolveResponse, 1)
	go func() {
		_, sr, _, err := tryPost(ts.URL, SolveRequest{Tenant: "alice", Root: 1, Level: 0, Tol: 1e-2}, nil)
		if err != nil {
			sr.Status = "transport-error: " + err.Error()
		}
		first <- sr
	}()
	waitFor(t, "first job admitted", func() bool {
		return s.rec.KindCount(obs.KServeAccept) == 1
	})

	code, sr, _ := postSolve(t, ts.URL, SolveRequest{Tenant: "alice", Root: 1, Level: 0, Tol: 1e-2}, nil)
	if code != http.StatusTooManyRequests || sr.Reason != shedInflight {
		t.Fatalf("over inflight cap: %d %q/%q, want 429 shed/inflight", code, sr.Status, sr.Reason)
	}

	s.Start()
	if sr := <-first; sr.Status != StatusCompleted {
		t.Fatalf("first job status %q, want completed", sr.Status)
	}
	// The slot is free again once the first request settled.
	if code, sr, _ := postSolve(t, ts.URL, SolveRequest{Tenant: "alice", Root: 1, Level: 0, Tol: 1e-2}, nil); code != http.StatusOK {
		t.Fatalf("after settle: %d %q, want 200", code, sr.Status)
	}
	checkLedger(t, s)
}

func TestBreakerTripHalfOpenRetrip(t *testing.T) {
	clock := newFakeClock()
	// The single-grid job under Retries=1 and FailureBudget=1 spends two
	// scripted panics per budget-failed request. The four-panic plan walks
	// the breaker through its whole state machine: request 1 trips it,
	// the first half-open probe budget-fails and re-trips it, the second
	// probe runs fault-free (plan spent) and closes it.
	s, ts := newTestServer(t, Config{
		QueueDepth: 4, Executors: 1,
		Attempts: 1, Retries: 1, FailureBudget: 1,
		BreakerThreshold: 1, BreakerCooldown: 10 * time.Second,
		Now:    clock.Now,
		Faults: core.PlanFaults(0, core.FaultPanic, core.FaultPanic, core.FaultPanic, core.FaultPanic),
	})
	s.Start()
	defer s.Drain(time.Minute)

	req := SolveRequest{Tenant: "alice", Root: 1, Level: 0, Tol: 1e-2}

	// Request 1: both worker attempts panic, the budget is exhausted, the
	// request fails permanently and the breaker trips.
	code, sr, _ := postSolve(t, ts.URL, req, nil)
	if code != http.StatusInternalServerError || sr.Status != StatusFailed || sr.Reason != failBudget {
		t.Fatalf("budget exhaustion: %d %q/%q, want 500 failed/budget", code, sr.Status, sr.Reason)
	}
	if sr.Failures != 2 {
		t.Fatalf("failures charged = %d, want 2 (retry + budget overflow)", sr.Failures)
	}

	// Request 2: breaker open — shed with the cooldown as Retry-After.
	code, sr, hdr := postSolve(t, ts.URL, req, nil)
	if code != http.StatusTooManyRequests || sr.Reason != shedBreaker {
		t.Fatalf("open breaker: %d %q/%q, want 429 shed/breaker", code, sr.Status, sr.Reason)
	}
	if ra, _ := strconv.Atoi(hdr.Get("Retry-After")); ra < 1 || ra > 10 {
		t.Fatalf("open-breaker Retry-After = %q, want within the 10s cooldown", hdr.Get("Retry-After"))
	}

	// Cooldown over: the half-open probe is admitted, budget-fails on
	// panics 3 and 4, and re-trips the breaker.
	clock.Advance(10 * time.Second)
	code, sr, _ = postSolve(t, ts.URL, req, nil)
	if code != http.StatusInternalServerError || sr.Reason != failBudget {
		t.Fatalf("failing probe: %d %q/%q, want 500 failed/budget", code, sr.Status, sr.Reason)
	}
	if code, sr, _ := postSolve(t, ts.URL, req, nil); code != http.StatusTooManyRequests || sr.Reason != shedBreaker {
		t.Fatalf("after failed probe: %d %q/%q, want 429 shed/breaker", code, sr.Status, sr.Reason)
	}

	// Second cooldown: the plan is spent, the probe succeeds, the breaker
	// closes, and the tenant is back to normal service.
	clock.Advance(10 * time.Second)
	code, sr, _ = postSolve(t, ts.URL, req, nil)
	if code != http.StatusOK || sr.Status != StatusCompleted {
		t.Fatalf("recovering probe: %d %q, want 200 completed", code, sr.Status)
	}
	// The breaker is per tenant: alice's history never touched bob.
	if code, sr, _ := postSolve(t, ts.URL, SolveRequest{Tenant: "bob", Root: 1, Level: 0, Tol: 1e-2}, nil); code != http.StatusOK {
		t.Fatalf("bob after alice's trips: %d %q, want 200", code, sr.Status)
	}

	if trips := s.rec.KindCount(obs.KBreakerTrip); trips != 2 {
		t.Fatalf("breaker trips = %d, want 2 (initial + failed probe)", trips)
	}
	if probes := s.rec.KindCount(obs.KBreakerProbe); probes != 2 {
		t.Fatalf("breaker probes = %d, want 2", probes)
	}
	if closes := s.rec.KindCount(obs.KBreakerClose); closes != 1 {
		t.Fatalf("breaker closes = %d, want 1", closes)
	}
	checkLedger(t, s)
}

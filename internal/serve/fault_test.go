package serve

import (
	"net/http"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestRetryLadderRecovers(t *testing.T) {
	// Attempt 1 runs strict: the scripted panic exhausts the job's pool
	// retries (zero) and fails the whole attempt. The serve layer retries
	// after backoff; attempt 2 is fault-free and completes.
	s, ts := newTestServer(t, Config{
		QueueDepth: 2, Executors: 1,
		Attempts: 2, Retries: 0,
		Faults: core.PlanFaults(0, core.FaultPanic),
	})
	s.Start()
	defer s.Drain(time.Minute)

	code, sr, _ := postSolve(t, ts.URL, SolveRequest{Root: 1, Level: 0, Tol: 1e-2}, nil)
	if code != http.StatusOK || sr.Status != StatusCompleted {
		t.Fatalf("status %d %q, want 200 completed", code, sr.Status)
	}
	if sr.Attempts != 2 || sr.Failures != 1 {
		t.Fatalf("attempts=%d failures=%d, want 2 attempts with 1 charged failure", sr.Attempts, sr.Failures)
	}
	if got := s.rec.KindCount(obs.KServeRetry); got != 1 {
		t.Fatalf("serve.retry events = %d, want 1", got)
	}
	if got := s.rec.Counter("serve.retries").Value(); got != 1 {
		t.Fatalf("serve.retries counter = %d, want 1", got)
	}
	checkLedger(t, s)
}

func TestBudgetExhaustionBeatsRemainingAttempts(t *testing.T) {
	// Two scripted panics blow the per-request budget inside attempt 1;
	// even with a serve-level attempt left, budget exhaustion is terminal
	// — no retry, one failed request, exact failure accounting.
	s, ts := newTestServer(t, Config{
		QueueDepth: 2, Executors: 1,
		Attempts: 2, Retries: 1, FailureBudget: 1,
		Faults: core.PlanFaults(0, core.FaultPanic, core.FaultPanic),
	})
	s.Start()
	defer s.Drain(time.Minute)

	code, sr, _ := postSolve(t, ts.URL, SolveRequest{Root: 1, Level: 0, Tol: 1e-2}, nil)
	if code != http.StatusInternalServerError || sr.Status != StatusFailed || sr.Reason != failBudget {
		t.Fatalf("status %d %q/%q, want 500 failed/budget", code, sr.Status, sr.Reason)
	}
	if sr.Failures != 2 || sr.Attempts != 1 {
		t.Fatalf("failures=%d attempts=%d, want 2 failures in 1 attempt", sr.Failures, sr.Attempts)
	}
	if got := s.rec.Counter("serve.retries").Value(); got != 0 {
		t.Fatalf("serve.retries = %d: budget exhaustion must not be retried", got)
	}
	checkLedger(t, s)
}

func TestDeadlineExpiredBeforeRun(t *testing.T) {
	clock := newFakeClock()
	s, ts := newTestServer(t, Config{QueueDepth: 2, Executors: 1, Now: clock.Now})
	defer s.Drain(time.Minute)

	// The job is admitted with a 50ms deadline while no executor runs;
	// by the time one dequeues it, the (fake) clock has passed it.
	done := make(chan SolveResponse, 1)
	var gotCode int
	go func() {
		code, sr, _, err := tryPost(ts.URL, SolveRequest{Root: 1, Level: 0, Tol: 1e-2, DeadlineMs: 50}, nil)
		if err != nil {
			sr.Status = "transport-error: " + err.Error()
		}
		gotCode = code
		done <- sr
	}()
	waitFor(t, "job admitted", func() bool {
		return s.rec.KindCount(obs.KServeAccept) == 1
	})
	clock.Advance(100 * time.Millisecond)
	s.Start()

	sr := <-done
	if gotCode != http.StatusGatewayTimeout || sr.Status != StatusFailed || sr.Reason != failDeadline {
		t.Fatalf("status %d %q/%q, want 504 failed/deadline", gotCode, sr.Status, sr.Reason)
	}
	checkLedger(t, s)
}

func TestHangAbandonedWithinRequestDeadline(t *testing.T) {
	// The worker hangs for 5s but the request's 400ms deadline caps the
	// pool's worker deadline, so the master abandons the hung worker at
	// ~400ms and the final-attempt fallback completes the request — the
	// deadline propagated HTTP → envelope → pool → manifold read.
	s, ts := newTestServer(t, Config{
		QueueDepth: 2, Executors: 1,
		Attempts: 1, Retries: 0,
		Faults: core.PlanFaults(5*time.Second, core.FaultHang),
	})
	s.Start()
	defer s.Drain(time.Minute)

	start := time.Now()
	code, sr, _ := postSolve(t, ts.URL, SolveRequest{Root: 1, Level: 0, Tol: 1e-2, DeadlineMs: 400}, nil)
	elapsed := time.Since(start)
	if code != http.StatusOK || sr.Status != StatusCompleted {
		t.Fatalf("status %d %q, want 200 completed via fallback", code, sr.Status)
	}
	if sr.Failures < 1 {
		t.Fatalf("failures = %d, want >= 1 (the abandoned hang)", sr.Failures)
	}
	if elapsed >= 3*time.Second {
		t.Fatalf("request took %v: the master waited out the hang instead of abandoning at the deadline", elapsed)
	}
	if got := s.rec.KindCount(obs.KDeadlineExpired); got < 1 {
		t.Fatal("no deadline.expired event: the request deadline never reached the manifold read")
	}
	checkLedger(t, s)
}

func TestDrainUnderLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{QueueDepth: 8, Executors: 2})
	s.Start()

	const n = 6
	results := make(chan SolveResponse, n)
	for i := 0; i < n; i++ {
		go func() {
			_, sr, _, err := tryPost(ts.URL, SolveRequest{Root: 1, Level: 1, Tol: 1e-2}, nil)
			if err != nil {
				sr.Status = "transport-error: " + err.Error()
			}
			results <- sr
		}()
	}
	waitFor(t, "all jobs admitted or settled", func() bool {
		return s.rec.Counter("serve.requests").Value() == n
	})

	if clean := s.Drain(30 * time.Second); !clean {
		t.Fatal("drain under load timed out")
	}
	for i := 0; i < n; i++ {
		sr := <-results
		switch sr.Status {
		case StatusCompleted, StatusDegraded, StatusShed:
		default:
			t.Fatalf("request ended %q/%q, want completed, degraded, or shed", sr.Status, sr.Reason)
		}
	}

	// Admission is closed for good.
	code, sr, _ := postSolve(t, ts.URL, SolveRequest{Root: 1, Level: 0, Tol: 1e-2}, nil)
	if code != http.StatusServiceUnavailable || sr.Reason != shedDraining {
		t.Fatalf("post-drain request: %d %q/%q, want 503 shed/draining", code, sr.Status, sr.Reason)
	}

	if got := s.rec.KindCount(obs.KDrainBegin); got != 1 {
		t.Fatalf("drain.begin events = %d, want 1", got)
	}
	if got := s.rec.KindCount(obs.KDrainEnd); got != 1 {
		t.Fatalf("drain.end events = %d, want 1", got)
	}
	checkLedger(t, s)

	// No goroutine leaks: executors joined, workers rendezvoused, client
	// keep-alive connections released.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+4 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d at start, %d after drain", baseline, runtime.NumGoroutine())
}

func TestExactAccountingUnderChaos(t *testing.T) {
	// Probabilistic faults, tight admission, concurrent tenants: whatever
	// happens, the client-side tally of response statuses must equal the
	// server's counters, and the counters must equal the event totals.
	s, ts := newTestServer(t, Config{
		QueueDepth: 4, Executors: 2, DegradeAt: 0.5,
		MaxInflight: 2,
		Attempts:    2, Retries: 1, FailureBudget: 4,
		Faults: core.NewFaultInjector(42, 0.1, 0.25, 0.1, 0.15, 300*time.Millisecond),
	})
	s.Start()

	const n = 12
	results := make(chan SolveResponse, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			req := SolveRequest{
				Tenant: []string{"a", "b", "c"}[i%3],
				Root:   1, Level: i % 2, Tol: 1e-2,
			}
			_, sr, _, err := tryPost(ts.URL, req, nil)
			if err != nil {
				sr.Status = "transport-error: " + err.Error()
			}
			results <- sr
		}(i)
	}

	tally := map[string]int64{}
	for i := 0; i < n; i++ {
		sr := <-results
		tally[sr.Status]++
	}
	if clean := s.Drain(time.Minute); !clean {
		t.Fatal("post-chaos drain timed out")
	}

	rec := s.rec
	if got := rec.Counter("serve.requests").Value(); got != n {
		t.Fatalf("serve.requests = %d, want %d", got, n)
	}
	for status, counter := range map[string]string{
		StatusCompleted: "serve.completed",
		StatusDegraded:  "serve.degraded",
		StatusShed:      "serve.shed",
		StatusFailed:    "serve.failed",
	} {
		if got := rec.Counter(counter).Value(); got != tally[status] {
			t.Fatalf("%s = %d but clients saw %d %q responses (tally %v)",
				counter, got, tally[status], status, tally)
		}
	}
	// Every accepted request reached exactly one terminal event.
	accepted := rec.KindCount(obs.KServeAccept)
	terminal := rec.KindCount(obs.KServeComplete) + rec.KindCount(obs.KServeDegraded) + rec.KindCount(obs.KServeFail)
	if accepted != terminal {
		t.Fatalf("%d accepted requests but %d terminal events", accepted, terminal)
	}
	checkLedger(t, s)
}

package serve

import (
	"errors"
	"math"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/solver"
)

// Failure reasons of StatusFailed outcomes.
const (
	// failBudget marks a request that exhausted its failure budget; it is
	// the outcome that counts against the tenant's circuit breaker.
	failBudget = "budget"
	// failDeadline marks a request whose deadline expired before an attempt
	// could complete.
	failDeadline = "deadline"
	// failError marks a permanent solve error (all attempts consumed).
	failError = "error"
)

// Start launches the executor goroutines, the batch workers, and (when
// MaxExecutors > Executors) the autoscaler. Jobs enqueued before Start
// sit in the queue — tests use this to fill the queue deterministically.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Executors; i++ {
		s.spawnExecutor()
	}
	s.gExecTarget.Set(int64(s.cfg.Executors))
	if s.batch != nil {
		s.batch.start()
	}
	if s.shrink != nil {
		s.execWG.Add(1)
		go s.autoscaler()
	}
}

func (s *Server) spawnExecutor() {
	s.execWG.Add(1)
	s.gExecWorkers.Add(1)
	go s.executor()
}

// executor pulls admitted jobs off the queue and runs them to a terminal
// state. During a drain it sheds instead of running, racing the drain
// loop for the same jobs — each job is dequeued exactly once, so it is
// shed exactly once either way. A shrink token from the autoscaler
// retires an idle executor.
func (s *Server) executor() {
	defer s.execWG.Done()
	defer s.gExecWorkers.Add(-1)
	for {
		select {
		case <-s.quit:
			return
		case <-s.shrink:
			return
		case j := <-s.queue:
			s.gQueue.Set(int64(len(s.queue)))
			s.gQueueMc.Set(s.queuedMc.Add(-j.mc))
			if s.draining.Load() {
				s.shedQueued(j)
				continue
			}
			s.runJob(j)
		}
	}
}

// autoscaler resizes the executor pool between the Executors floor and
// the MaxExecutors cap, steering by the workmodel cost estimate of the
// queued jobs: one extra executor per ScaleQuantumMc of queued work.
// Scale-up spawns executors directly; scale-down posts tokens that idle
// executors consume, so a busy pool shrinks only as work finishes.
func (s *Server) autoscaler() {
	defer s.execWG.Done()
	tick := time.NewTicker(s.cfg.ScaleEvery)
	defer tick.Stop()
	cur := s.cfg.Executors
	for {
		select {
		case <-s.quit:
			return
		case <-tick.C:
			desired := s.desiredExecutors()
			if desired == cur {
				continue
			}
			s.rec.Emit(obs.KExecScale, "serve", "", int64(cur), int64(desired))
			s.cScales.Inc()
			s.gExecTarget.Set(int64(desired))
			for cur < desired {
				s.spawnExecutor()
				cur++
			}
			for cur > desired {
				s.shrink <- struct{}{}
				cur--
			}
		}
	}
}

func (s *Server) desiredExecutors() int {
	mc := float64(s.queuedMc.Load())
	d := s.cfg.Executors + int(math.Ceil(mc/s.cfg.ScaleQuantumMc))
	if d > s.cfg.MaxExecutors {
		d = s.cfg.MaxExecutors
	}
	if d < s.cfg.Executors {
		d = s.cfg.Executors
	}
	return d
}

// runJob drives one admitted job through the retry loop: each solve
// attempt gets the remaining deadline and failure budget, failed attempts
// are retried under backoff while attempts, budget, and deadline all
// still allow, and the first terminal condition wins.
func (s *Server) runJob(j *job) {
	s.hWait.Observe(s.now().Sub(j.admitted).Microseconds())

	// Degradation decision: if the queue behind this job is deep enough,
	// trade intra-run parallelism for service-level throughput — the
	// sequential single-core path leaves GOMAXPROCS to the other
	// executors instead of fanning out a worker pool per request.
	degraded := s.degradeLevel > 0 && len(s.queue) >= s.degradeLevel

	// The batched path replaces solver.Concurrent when the batcher is on.
	// Degraded jobs bypass it (degradation promises strictly sequential
	// single-core execution), and so does a fault-injecting server — the
	// batcher has no worker pool to inject faults into, and the fault
	// suite's contract is per-request pools.
	batched := s.batch != nil && !degraded && s.cfg.Faults == nil

	var (
		failures  int // failed worker attempts charged to this request
		retries   int // pool-level resubmissions across attempts
		fallbacks int // master-local recoveries across attempts
	)
	for attempt := 1; ; attempt++ {
		remaining := j.deadline.Sub(s.now())
		if remaining <= 0 {
			s.finishFailed(j, failDeadline, http.StatusGatewayTimeout, attempt-1, failures, retries, fallbacks)
			return
		}
		budget := 0 // unlimited
		if s.cfg.FailureBudget > 0 {
			budget = s.cfg.FailureBudget - failures
			if budget <= 0 {
				s.finishFailed(j, failBudget, http.StatusInternalServerError, attempt-1, failures, retries, fallbacks)
				return
			}
		}
		wd := s.cfg.WorkerDeadline
		if remaining < wd {
			wd = remaining
		}
		params := solver.Params{
			Root: j.req.Root, Level: j.req.Level, Tol: j.req.Tol,
			Solver: j.lin, Problem: s.problem,
			Retries: s.cfg.Retries, FailureBudget: budget,
			WorkerDeadline: wd, Backoff: s.cfg.Backoff,
			Faults: s.cfg.Faults, Obs: s.rec,
			// The robustness ladder: early attempts run strict, so a job
			// that exhausts its pool retries fails the attempt and the
			// serve-level retry gets a fresh run after backoff; only the
			// final attempt turns on the master-local fallback, the last
			// resort before failing the request.
			Fallback: attempt >= s.cfg.Attempts,
		}
		var (
			out *solver.Output
			err error
		)
		if degraded {
			// The degraded path is the legacy sequential program on one
			// core — no worker pool, no fault surface, same answer.
			params.CoresPerWorker = 1
			out, err = solver.Sequential(params)
		} else if batched {
			out, err = s.solveBatched(j, params)
		} else {
			out, err = solver.Concurrent(params)
		}
		if err == nil {
			failures += out.Faults.Failures
			retries += out.Faults.Retries
			fallbacks += out.Faults.Fallbacks
			s.finishSolved(j, out, degraded, attempt, failures, retries, fallbacks)
			return
		}

		if batched && errors.Is(err, errBatchDeadline) {
			s.finishFailed(j, failDeadline, http.StatusGatewayTimeout, attempt, failures, retries, fallbacks)
			return
		}
		var be core.BudgetExhausted
		if errors.As(err, &be) {
			// The attempt spent everything it was given; the request's
			// cumulative budget is gone with it.
			failures += be.Failures
			s.finishFailed(j, failBudget, http.StatusInternalServerError, attempt, failures, retries, fallbacks)
			return
		}
		var jf *core.JobFailed
		if errors.As(err, &jf) {
			failures += jf.Attempts
		} else {
			failures++
		}
		if s.cfg.FailureBudget > 0 && failures >= s.cfg.FailureBudget {
			s.finishFailed(j, failBudget, http.StatusInternalServerError, attempt, failures, retries, fallbacks)
			return
		}
		if attempt >= s.cfg.Attempts {
			s.finishFailed(j, failError, http.StatusInternalServerError, attempt, failures, retries, fallbacks)
			return
		}
		delay := s.cfg.Backoff.Delay(attempt)
		if s.now().Add(delay).After(j.deadline) {
			s.finishFailed(j, failDeadline, http.StatusGatewayTimeout, attempt, failures, retries, fallbacks)
			return
		}
		s.cRetries.Inc()
		s.rec.Emit(obs.KServeRetry, j.tenant, "", j.id, int64(attempt))
		if delay > 0 {
			time.Sleep(delay)
		}
	}
}

// finishSolved settles a successful attempt: completed on the concurrent
// path, degraded on the sequential one. Exactly one counter, one event,
// one done delivery.
func (s *Server) finishSolved(j *job, out *solver.Output, degraded bool, attempts, failures, retries, fallbacks int) {
	status := StatusCompleted
	if degraded {
		status = StatusDegraded
		s.cDegraded.Inc()
		s.rec.Emit(obs.KServeDegraded, j.tenant, "", j.id, int64(attempts))
	} else {
		s.cCompleted.Inc()
		s.rec.Emit(obs.KServeComplete, j.tenant, "", j.id, int64(attempts))
	}
	s.settle(j, false, outcome{
		status: status, httpStatus: http.StatusOK, out: out,
		attempts: attempts, failures: failures, retries: retries, fallbacks: fallbacks,
	})
}

// finishFailed settles a permanent failure. Budget exhaustion and solve
// errors count against the tenant's circuit breaker; a deadline expiry
// does not — a tight client deadline is not tenant misbehavior.
func (s *Server) finishFailed(j *job, reason string, httpStatus, attempts, failures, retries, fallbacks int) {
	s.cFailed.Inc()
	s.rec.Emit(obs.KServeFail, j.tenant, reason, j.id, int64(failures))
	s.settle(j, reason != failDeadline, outcome{
		status: StatusFailed, httpStatus: httpStatus, reason: reason,
		attempts: attempts, failures: failures, retries: retries, fallbacks: fallbacks,
	})
}

// shedQueued sheds a job that was admitted but never run (drain). The
// admission is released rather than settled so the breaker is untouched.
func (s *Server) shedQueued(j *job) {
	s.cShed.Inc()
	s.rec.Emit(obs.KServeShed, j.tenant, shedDraining, j.id, 0)
	s.tenants.release(j.tenant)
	s.gInflight.Add(-1)
	s.jobsWG.Done()
	j.done <- outcome{
		status: StatusShed, httpStatus: http.StatusServiceUnavailable,
		reason: shedDraining, retryAfter: time.Second,
		elapsed: s.now().Sub(j.admitted),
	}
}

// settle is the single exit of every run job: breaker accounting, latency
// histogram, inflight bookkeeping, and the exactly-once done delivery.
func (s *Server) settle(j *job, budgetFailure bool, oc outcome) {
	oc.elapsed = s.now().Sub(j.admitted)
	s.hRequest.Observe(oc.elapsed.Microseconds())
	s.tenants.settle(j.tenant, budgetFailure)
	s.gInflight.Add(-1)
	s.jobsWG.Done()
	j.done <- oc
}

// Drain performs the graceful-shutdown sequence: stop admitting (under
// the admission write-lock, so no request is mid-admission when it
// returns), shed everything still queued, wait up to timeout for inflight
// jobs to reach a terminal state, then stop the executors. It reports
// whether the drain was clean (true) or timed out with jobs still
// running (false). Safe to call once; later calls wait for the first and
// return its result.
func (s *Server) Drain(timeout time.Duration) bool {
	s.admitMu.Lock()
	already := s.draining.Swap(true)
	s.admitMu.Unlock()
	if already {
		<-s.drained
		return s.drainClean
	}
	s.rec.Emit(obs.KDrainBegin, "serve", "", int64(len(s.queue)), 0)

	// Shed the backlog. Executors that dequeue concurrently shed too
	// (they see draining); each job is dequeued exactly once. Admission
	// is closed, so the queue cannot refill.
shedLoop:
	for {
		select {
		case j := <-s.queue:
			s.gQueueMc.Set(s.queuedMc.Add(-j.mc))
			s.shedQueued(j)
		default:
			break shedLoop
		}
	}
	s.gQueue.Set(0)

	// Wait for inflight jobs — admitted, not yet terminal — to settle.
	settled := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(settled)
	}()
	clean := true
	select {
	case <-settled:
	case <-time.After(timeout):
		clean = false
	}
	if clean {
		s.rec.Emit(obs.KDrainEnd, "serve", "", 1, 0)
	} else {
		s.rec.Emit(obs.KDrainEnd, "serve", "", 0, 0)
	}

	// The batcher closes after inflight jobs settled (clean) or were
	// given up on (timeout): a clean drain has no pending batches left,
	// an unclean one fails whatever is still pending so stuck requests
	// settle as failed rather than hang.
	if s.batch != nil {
		s.batch.close(clean)
	}
	close(s.quit)
	if clean {
		// Idle executors exit on quit; with jobs still stuck past the
		// timeout, waiting here could block forever, so only a clean
		// drain joins them.
		s.execWG.Wait()
	}
	s.drainClean = clean
	close(s.drained)
	return clean
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadConfig parameterizes a load test against a running solve service:
// Clients concurrent clients each issue Requests requests in bursts of
// Burst, pausing a seeded-jittered Pause between bursts — the bursty
// arrival pattern admission control exists for.
type LoadConfig struct {
	// URL is the base URL of the service, e.g. "http://127.0.0.1:8080".
	URL string
	// Clients is the number of concurrent client goroutines.
	Clients int
	// Requests is issued per client.
	Requests int
	// Burst is how many requests each client fires back to back before
	// pausing; <= 1 means a steady stream.
	Burst int
	// Tenants spreads clients across this many tenant names; <= 1 puts
	// everyone on one tenant.
	Tenants int
	// Root, Level, Tol are the solve parameters of every request.
	Root, Level int
	Tol         float64
	// Deadline is each request's deadline; 0 leaves it to the server.
	Deadline time.Duration
	// Pause is the mean inter-burst pause; each pause is jittered
	// uniformly in [Pause/2, 3·Pause/2]. 0 means no pause.
	Pause time.Duration
	// Seed drives the per-client jitter; the same seed replays the same
	// arrival schedule (modulo scheduler timing).
	Seed int64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Requests <= 0 {
		c.Requests = 8
	}
	if c.Burst <= 0 {
		c.Burst = 1
	}
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if c.Root <= 0 {
		c.Root = 1
	}
	if c.Tol == 0 {
		c.Tol = 1e-2
	}
	if c.Pause == 0 {
		c.Pause = 10 * time.Millisecond
	}
	return c
}

// LoadResult is the outcome ledger and latency profile of one load run.
// Total always equals Completed+Degraded+Shed+Failed+Errors — every
// request is accounted exactly once.
type LoadResult struct {
	Total     int
	Completed int
	Degraded  int
	Shed      int
	Failed    int
	// Errors counts transport-level failures (connection refused, bad
	// JSON) — requests the service never accounted.
	Errors int

	// P50, P95, P99, Max profile the latency of requests that got any
	// service response, sheds included.
	P50, P95, P99, Max time.Duration
	// Elapsed is the wall clock of the whole run.
	Elapsed time.Duration
	// Throughput is completed requests per second of wall clock — the
	// service-level figure of merit the batching ablation compares.
	Throughput float64
}

// String renders the one-line summary the loadtest subcommand prints.
func (r LoadResult) String() string {
	return fmt.Sprintf(
		"requests=%d completed=%d degraded=%d shed=%d failed=%d errors=%d p50=%v p95=%v p99=%v max=%v elapsed=%v thru=%.2f/s",
		r.Total, r.Completed, r.Degraded, r.Shed, r.Failed, r.Errors,
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond),
		r.Elapsed.Round(time.Millisecond), r.Throughput)
}

// RunLoad drives cfg against the service and aggregates the ledger. It is
// a library function so tests and the solved loadtest subcommand share it.
func RunLoad(cfg LoadConfig) LoadResult {
	cfg = cfg.withDefaults()
	type sample struct {
		status  string
		latency time.Duration
		err     bool
	}
	samples := make([][]sample, cfg.Clients)
	client := &http.Client{}

	t0 := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)))
			tenant := fmt.Sprintf("tenant-%d", ci%cfg.Tenants)
			body, _ := json.Marshal(SolveRequest{
				Tenant: tenant, Root: cfg.Root, Level: cfg.Level, Tol: cfg.Tol,
				DeadlineMs: cfg.Deadline.Milliseconds(),
			})
			for n := 0; n < cfg.Requests; n++ {
				if n > 0 && n%cfg.Burst == 0 && cfg.Pause > 0 {
					half := cfg.Pause / 2
					time.Sleep(half + time.Duration(rng.Int63n(int64(2*half)+1)))
				}
				start := time.Now()
				resp, err := client.Post(cfg.URL+"/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					samples[ci] = append(samples[ci], sample{err: true})
					continue
				}
				var sr SolveResponse
				decErr := json.NewDecoder(resp.Body).Decode(&sr)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if decErr != nil {
					samples[ci] = append(samples[ci], sample{err: true})
					continue
				}
				samples[ci] = append(samples[ci], sample{status: sr.Status, latency: time.Since(start)})
			}
		}(i)
	}
	wg.Wait()

	res := LoadResult{Elapsed: time.Since(t0)}
	var lats []time.Duration
	for _, cs := range samples {
		for _, s := range cs {
			res.Total++
			switch {
			case s.err:
				res.Errors++
				continue
			case s.status == StatusCompleted:
				res.Completed++
			case s.status == StatusDegraded:
				res.Degraded++
			case s.status == StatusShed:
				res.Shed++
			default:
				res.Failed++
			}
			lats = append(lats, s.latency)
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(lats)-1))
			return lats[i]
		}
		res.P50, res.P95, res.P99, res.Max = q(0.50), q(0.95), q(0.99), lats[len(lats)-1]
	}
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.Throughput = float64(res.Completed) / secs
	}
	return res
}

package serve

import (
	"container/list"
	"sync"

	"repro/internal/obs"
	"repro/internal/pde"
	"repro/internal/rosenbrock"
)

// cacheEntry pairs a discretization with the workspace that last solved
// it. The pair is the whole point: rosenbrock.Workspace keeps the shifted
// operator and the ILU(0) factors keyed on the Jacobian *pointer*, so
// reusing disc and workspace together means the next solve of the same
// shape skips matrix assembly, level-set analysis, and — when the γτ key
// matches — the numeric factorization itself.
//
// Entries are checked out exclusively: take removes the entry from the
// cache, exactly one batch worker uses it, put parks it again. A Disc is
// not reentrant (its RHS scratch is shared), so exclusivity is what makes
// the cache race-free without any locking on the hot solve path.
type cacheEntry struct {
	sig    signature
	sigStr string
	disc   *pde.Disc
	ws     *rosenbrock.Workspace
	bytes  int64
	elem   *list.Element // LRU position while parked; nil while checked out
}

// entryBytes estimates the memory a parked entry pins: three CSR-sized
// structures (Jacobian, shifted copy, ILU factors) at 16 bytes per stored
// entry, plus the order-of-60 n-vectors across the Rosenbrock stages and
// the Krylov workspace. The estimate only has to be monotone in problem
// size — it feeds the eviction bound, not an allocator.
func entryBytes(d *pde.Disc) int64 {
	n := int64(d.N())
	nnz := int64(d.Jacobian().NNZ())
	return 3*16*nnz + 60*8*n
}

// solverCache is the bounded LRU of warm (Disc, Workspace) pairs, keyed
// by signature. Bounds are dual: a hard entry count and an approximate
// byte budget; crossing either evicts from the cold end. Several entries
// may park under one signature — concurrent misses on the same shape each
// build one, and all of them come back.
type solverCache struct {
	rec        *obs.Recorder
	problem    *pde.Problem
	maxEntries int
	maxBytes   int64

	mu     sync.Mutex
	parked map[signature][]*cacheEntry // per-signature stacks, warmest last
	lru    *list.List                  // front = most recently parked
	bytes  int64

	cHits, cMisses, cEvicts *obs.Counter
	gEntries, gBytes        *obs.Gauge
}

func newSolverCache(cfg Config, rec *obs.Recorder, problem *pde.Problem) *solverCache {
	return &solverCache{
		rec:        rec,
		problem:    problem,
		maxEntries: cfg.CacheEntries,
		maxBytes:   cfg.CacheBytes,
		parked:     make(map[signature][]*cacheEntry),
		lru:        list.New(),
		cHits:      rec.Counter("serve.cache.hits"),
		cMisses:    rec.Counter("serve.cache.misses"),
		cEvicts:    rec.Counter("serve.cache.evictions"),
		gEntries:   rec.Gauge("serve.cache.entries"),
		gBytes:     rec.Gauge("serve.cache.bytes"),
	}
}

// take checks out a warm entry for sig, or returns nil on a miss (the
// caller builds one with build). Either way exactly one hit or miss event
// and counter increment is recorded per checkout.
func (c *solverCache) take(sig signature, sigStr string) *cacheEntry {
	c.mu.Lock()
	stack := c.parked[sig]
	if n := len(stack); n > 0 {
		e := stack[n-1]
		if n == 1 {
			delete(c.parked, sig)
		} else {
			c.parked[sig] = stack[:n-1]
		}
		c.lru.Remove(e.elem)
		e.elem = nil
		c.bytes -= e.bytes
		c.gEntries.Set(int64(c.lru.Len()))
		c.gBytes.Set(c.bytes)
		c.mu.Unlock()
		c.cHits.Inc()
		c.rec.Emit(obs.KCacheHit, sigStr, "", 0, 0)
		return e
	}
	c.mu.Unlock()
	c.cMisses.Inc()
	c.rec.Emit(obs.KCacheMiss, sigStr, "", 0, 0)
	return nil
}

// build assembles a fresh entry for sig — the expensive path take exists
// to avoid. Runs outside the cache lock; assembly can take milliseconds.
func (c *solverCache) build(sig signature, sigStr string) *cacheEntry {
	d := pde.NewDisc(sig.g, c.problem)
	return &cacheEntry{
		sig: sig, sigStr: sigStr, disc: d,
		ws: rosenbrock.NewWorkspace(), bytes: entryBytes(d),
	}
}

// put parks an entry back and enforces the entry/byte bounds, evicting
// least-recently-parked entries. At least one entry always survives, so a
// single oversized problem degrades to "cache of one" instead of
// thrashing.
func (c *solverCache) put(e *cacheEntry) {
	c.mu.Lock()
	e.elem = c.lru.PushFront(e)
	c.parked[e.sig] = append(c.parked[e.sig], e)
	c.bytes += e.bytes
	var evicted []*cacheEntry
	for c.lru.Len() > 1 && (c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes) {
		v := c.lru.Back().Value.(*cacheEntry)
		c.removeLocked(v)
		evicted = append(evicted, v)
	}
	c.gEntries.Set(int64(c.lru.Len()))
	c.gBytes.Set(c.bytes)
	c.mu.Unlock()
	for _, v := range evicted {
		c.cEvicts.Inc()
		c.rec.Emit(obs.KCacheEvict, v.sigStr, "", v.bytes, 0)
	}
}

func (c *solverCache) removeLocked(v *cacheEntry) {
	c.lru.Remove(v.elem)
	v.elem = nil
	stack := c.parked[v.sig]
	for i, e := range stack {
		if e == v {
			stack = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	if len(stack) == 0 {
		delete(c.parked, v.sig)
	} else {
		c.parked[v.sig] = stack
	}
	c.bytes -= v.bytes
}

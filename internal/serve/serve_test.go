package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/solver"
)

// fakeClock is the Config.Now test seam: admission, deadlines, and the
// breaker cooldown all read it, so quota refills and cooldown expiries
// happen exactly when a test advances it.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestServer builds a server over httptest. Executors are NOT started —
// tests that want them call srv.Start(), and tests that want a full queue
// first get to set one up deterministically.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Backoff == nil {
		cfg.Backoff = core.NewBackoff(1, time.Millisecond, 4*time.Millisecond)
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// tryPost issues one solve request; safe from any goroutine.
func tryPost(base string, req SolveRequest, hdr map[string]string) (int, SolveResponse, http.Header, error) {
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, base+"/solve", bytes.NewReader(body))
	if err != nil {
		return 0, SolveResponse{}, nil, err
	}
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return 0, SolveResponse{}, nil, err
	}
	defer resp.Body.Close()
	var sr SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return resp.StatusCode, SolveResponse{}, resp.Header, err
	}
	return resp.StatusCode, sr, resp.Header, nil
}

// postSolve is tryPost with test-fatal error handling (main goroutine only).
func postSolve(t *testing.T, base string, req SolveRequest, hdr map[string]string) (int, SolveResponse, http.Header) {
	t.Helper()
	code, sr, h, err := tryPost(base, req, hdr)
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	return code, sr, h
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// checkLedger asserts the service's accounting invariant both ways: the
// terminal counters partition serve.requests exactly, every terminal
// counter equals its event's drop-proof KindCount, and no tenant is left
// holding an inflight slot.
func checkLedger(t *testing.T, s *Server) {
	t.Helper()
	rec := s.rec
	req := rec.Counter("serve.requests").Value()
	shed := rec.Counter("serve.shed").Value()
	comp := rec.Counter("serve.completed").Value()
	deg := rec.Counter("serve.degraded").Value()
	fail := rec.Counter("serve.failed").Value()
	if req != shed+comp+deg+fail {
		t.Fatalf("ledger: requests=%d != shed=%d + completed=%d + degraded=%d + failed=%d",
			req, shed, comp, deg, fail)
	}
	pairs := []struct {
		name string
		k    obs.Kind
		c    int64
	}{
		{"serve.shed", obs.KServeShed, shed},
		{"serve.completed", obs.KServeComplete, comp},
		{"serve.degraded", obs.KServeDegraded, deg},
		{"serve.failed", obs.KServeFail, fail},
		{"serve.retries", obs.KServeRetry, rec.Counter("serve.retries").Value()},
	}
	for _, p := range pairs {
		if got := rec.KindCount(p.k); got != uint64(p.c) {
			t.Fatalf("ledger: %d %v events vs counter %s=%d", got, p.k, p.name, p.c)
		}
	}
	if _, inflight := s.tenants.snapshot(); inflight != 0 {
		t.Fatalf("ledger: %d tenant inflight slots leaked", inflight)
	}
}

func TestSolveEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 4, Executors: 2})
	s.Start()
	defer s.Drain(time.Minute)

	code, sr, _ := postSolve(t, ts.URL, SolveRequest{Tenant: "alice", Root: 1, Level: 1, Tol: 1e-2}, nil)
	if code != http.StatusOK || sr.Status != StatusCompleted {
		t.Fatalf("status %d %q, want 200 completed", code, sr.Status)
	}
	if sr.Tenant != "alice" || sr.Attempts != 1 || sr.ID == 0 {
		t.Fatalf("response %+v: want tenant alice, 1 attempt, nonzero ID", sr)
	}

	// The service answer is the library answer, exactly: JSON float64
	// round-trips, so even the last bit must agree.
	ref, err := solver.Sequential(solver.Params{Root: 1, Level: 1, Tol: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if want := ref.Combined.V.NormInf(); sr.MaxU != want {
		t.Fatalf("service max|u| = %v, library = %v", sr.MaxU, want)
	}
	if sr.Grids != len(ref.Results) {
		t.Fatalf("service grids = %d, library = %d", sr.Grids, len(ref.Results))
	}
	checkLedger(t, s)
}

func TestRequestValidation(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxLevel: 3})
	s.Start()
	defer s.Drain(time.Minute)

	cases := []struct {
		name string
		body string
		hdr  map[string]string
		want int
	}{
		{"bad json", "{", nil, http.StatusBadRequest},
		{"bad root", `{"root":0,"level":1}`, nil, http.StatusBadRequest},
		{"bad solver", `{"root":1,"level":1,"solver":"cholesky"}`, nil, http.StatusBadRequest},
		{"level beyond cap", `{"root":1,"level":4}`, nil, http.StatusBadRequest},
		{"bad deadline header", `{"root":1,"level":1}`, map[string]string{"X-Deadline-Ms": "soon"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/solve", strings.NewReader(tc.body))
		for k, v := range tc.hdr {
			hreq.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	if resp, err := http.Get(ts.URL + "/solve"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /solve: status %d, want 405", resp.StatusCode)
		}
	}
	// Invalid requests are refused before admission: no ledger movement.
	if got := s.rec.Counter("serve.requests").Value(); got != 0 {
		t.Fatalf("invalid requests moved the ledger: serve.requests = %d", got)
	}
}

func TestHeaderOverridesAndSolverChoice(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 4, Executors: 1})
	s.Start()
	defer s.Drain(time.Minute)

	code, sr, _ := postSolve(t, ts.URL,
		SolveRequest{Tenant: "body-tenant", Root: 1, Level: 0, Tol: 1e-2, Solver: "gmres"},
		map[string]string{"X-Tenant": "header-tenant", "X-Deadline-Ms": "30000"})
	if code != http.StatusOK || sr.Status != StatusCompleted {
		t.Fatalf("status %d %q, want 200 completed", code, sr.Status)
	}
	if sr.Tenant != "header-tenant" {
		t.Fatalf("tenant %q: X-Tenant header must win over the body", sr.Tenant)
	}
	checkLedger(t, s)
}

func TestDegradeUnderQueuePressure(t *testing.T) {
	// Two jobs queued before any executor runs; DegradeAt 0.5 of depth 2
	// degrades any job dequeued while another still waits. The first
	// dequeue sees one queued job (degraded), the second sees none
	// (completed) — deterministic with a single executor.
	s, ts := newTestServer(t, Config{QueueDepth: 2, Executors: 1, DegradeAt: 0.5})
	defer s.Drain(time.Minute)

	results := make(chan SolveResponse, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, sr, _, err := tryPost(ts.URL, SolveRequest{Root: 1, Level: 0, Tol: 1e-2}, nil)
			if err != nil {
				sr.Status = "transport-error: " + err.Error()
			}
			results <- sr
		}()
	}
	waitFor(t, "both jobs queued", func() bool {
		return s.rec.KindCount(obs.KServeAccept) == 2
	})
	s.Start()

	got := map[string]int{}
	for i := 0; i < 2; i++ {
		sr := <-results
		got[sr.Status]++
	}
	if got[StatusDegraded] != 1 || got[StatusCompleted] != 1 {
		t.Fatalf("statuses %v, want exactly one degraded and one completed", got)
	}
	checkLedger(t, s)
}

func TestQueueFullSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 1, Executors: 1})
	defer s.Drain(time.Minute)

	first := make(chan SolveResponse, 1)
	go func() {
		_, sr, _, err := tryPost(ts.URL, SolveRequest{Root: 1, Level: 0, Tol: 1e-2}, nil)
		if err != nil {
			sr.Status = "transport-error: " + err.Error()
		}
		first <- sr
	}()
	waitFor(t, "first job queued", func() bool {
		return s.rec.KindCount(obs.KServeAccept) == 1
	})

	code, sr, hdr := postSolve(t, ts.URL, SolveRequest{Root: 1, Level: 0, Tol: 1e-2}, nil)
	if code != http.StatusServiceUnavailable || sr.Status != StatusShed || sr.Reason != shedQueueFull {
		t.Fatalf("status %d %q/%q, want 503 shed/queue-full", code, sr.Status, sr.Reason)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("queue-full shed without a Retry-After header")
	}

	s.Start()
	if sr := <-first; sr.Status != StatusCompleted {
		t.Fatalf("first job status %q, want completed", sr.Status)
	}
	checkLedger(t, s)
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 2, Executors: 1})
	s.Start()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz: %d %q, want 200 ok", resp.StatusCode, hz.Status)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "serve.requests") {
		t.Fatalf("metrics output lacks serve.requests:\n%s", body)
	}

	if clean := s.Drain(time.Minute); !clean {
		t.Fatal("drain of an idle server timed out")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
}

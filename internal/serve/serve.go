// Package serve is the multi-tenant solve service: a long-running
// stdlib-net/http JSON job API that accepts solve requests from many
// concurrent clients and routes them onto the existing solver drivers
// (solver.Concurrent over core.Pool, solver.Sequential as the degraded
// path). Robustness is the headline, in four layers:
//
//   - Admission control: a bounded job queue, per-tenant token-bucket
//     quotas and max-inflight caps, and 429/503 responses carrying a
//     Retry-After hint whenever a request is shed.
//   - Deadline propagation: a request deadline (X-Deadline-Ms header or
//     deadline_ms body field) flows into the job envelope, caps the
//     per-worker deadline of core.Pool, and through it bounds every
//     manifold.Port.ReadUntil — a timed-out request abandons its
//     subsolves instead of orphaning them.
//   - Retry with backoff and failure budgets: failed solve attempts are
//     retried under a seeded jittered exponential core.Backoff within the
//     request's deadline and failure budget, and a per-tenant circuit
//     breaker trips on budget exhaustion and half-opens on a timer. The
//     whole path is fault-injectable through core.FaultInjector.
//   - Graceful degradation and drain: under queue pressure jobs fall back
//     to the sequential single-core path, and Drain (SIGTERM) stops
//     admission, sheds queued jobs, completes inflight ones within a
//     deadline, and leaves the obs recorder ready to flush.
//
// Accounting is exact by construction: every valid request ends in
// exactly one of {completed, degraded, shed, failed}, each terminal state
// increments exactly one counter and emits exactly one serve.* terminal
// event, and the fault suite asserts the ledger both ways.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pde"
	"repro/internal/rosenbrock"
	"repro/internal/solver"
	"repro/internal/workmodel"
)

// Shed reasons, carried in the response body, the serve.shed event Aux,
// and the fault-suite ledger.
const (
	shedQueueFull = "queue-full"
	shedQuota     = "quota"
	shedInflight  = "inflight"
	shedBreaker   = "breaker"
	shedDraining  = "draining"
)

// Terminal statuses of a request.
const (
	// StatusCompleted marks a request solved on the normal concurrent path.
	StatusCompleted = "completed"
	// StatusDegraded marks a request solved on the degraded sequential path.
	StatusDegraded = "degraded"
	// StatusShed marks a request refused by admission control or drain.
	StatusShed = "shed"
	// StatusFailed marks a request that ended in permanent failure.
	StatusFailed = "failed"
)

// Config parameterizes a Server. The zero value is usable: withDefaults
// fills every field with service-grade defaults.
type Config struct {
	// QueueDepth bounds the admission queue; a full queue sheds with 503.
	QueueDepth int
	// Executors is the number of concurrent solve executors.
	Executors int
	// DegradeAt is the queue-occupancy fraction at or above which a
	// dequeued job is routed to the degraded sequential path; <= 0
	// disables degradation, values cap at 1.
	DegradeAt float64

	// TenantRate is the per-tenant token refill rate per second; <= 0
	// disables rate limiting.
	TenantRate float64
	// TenantBurst is the token-bucket capacity.
	TenantBurst float64
	// MaxInflight caps concurrently admitted requests per tenant (0 = off).
	MaxInflight int
	// BreakerThreshold is the consecutive failed requests that trip a
	// tenant's circuit breaker (0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// half-opening for a single probe.
	BreakerCooldown time.Duration

	// Attempts is the serve-level solve attempts per request (>= 1);
	// attempts after the first are paced by Backoff.
	Attempts int
	// Retries is the per-job worker retry budget inside each solve attempt.
	Retries int
	// FailureBudget caps failed worker attempts per request, cumulative
	// across solve attempts; exhausting it fails the request and counts
	// against the tenant's breaker. 0 means unlimited.
	FailureBudget int
	// WorkerDeadline bounds any single worker inside a solve; the
	// remaining request deadline caps it further.
	WorkerDeadline time.Duration
	// DefaultDeadline applies when a request carries no deadline.
	DefaultDeadline time.Duration
	// MaxLevel rejects requests refined beyond what the service is sized
	// for (400, before admission control).
	MaxLevel int

	// BatchWindow enables the cross-request batcher when > 0: same-shape
	// subsolves from concurrent requests are grouped for up to this long
	// (capped by the earliest member's deadline) and run on shared
	// persistent teams through the solver cache. 0 keeps the PR 7
	// per-request path. See SERVING.md.
	BatchWindow time.Duration
	// BatchSize flushes a pending batch as soon as it holds this many
	// tasks, without waiting out the window.
	BatchSize int
	// BatchWorkers is the number of batch workers, each owning one
	// persistent linalg.Team; 0 means GOMAXPROCS.
	BatchWorkers int
	// BatchTeam is the team size per batch worker (default 1: worker-level
	// parallelism amortizes better than intra-solve fan-out on small grids).
	BatchTeam int
	// BatchMargin is the safety margin subtracted from the earliest member
	// deadline when capping a batch's flush timer.
	BatchMargin time.Duration
	// CacheEntries bounds the solver cache (warm Disc+Workspace pairs).
	CacheEntries int
	// CacheBytes is the approximate byte budget of the solver cache.
	CacheBytes int64

	// MaxExecutors enables executor autoscaling when > Executors: the pool
	// grows from Executors toward this cap with the workmodel cost
	// estimate of the queued jobs, and shrinks back when the queue drains.
	MaxExecutors int
	// ScaleEvery is the autoscaler's evaluation period.
	ScaleEvery time.Duration
	// ScaleQuantumMc is the queued work (workmodel megacycles) that
	// justifies one executor beyond the floor; 0 takes the model's cost of
	// a root=2 level=2 tol=1e-3 request.
	ScaleQuantumMc float64

	// Backoff paces serve-level retries and, passed through to the solver,
	// pool-level job resubmissions. Nil gets a seeded default.
	Backoff *core.Backoff
	// Faults, when non-nil, injects worker faults into every concurrent
	// solve — the -faults server flag and the fault suite.
	Faults *core.FaultInjector
	// Obs receives the service's events and metrics; nil allocates a
	// recorder (a long-running service wants its /metrics live).
	Obs *obs.Recorder
	// Now is the clock, for tests; nil means time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.DegradeAt > 1 {
		c.DegradeAt = 1
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Attempts < 1 {
		c.Attempts = 2
	}
	if c.WorkerDeadline <= 0 {
		c.WorkerDeadline = 10 * time.Second
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxLevel <= 0 {
		c.MaxLevel = 6
	}
	if c.BatchWindow > 0 {
		if c.BatchSize <= 0 {
			c.BatchSize = 8
		}
		if c.BatchWorkers <= 0 {
			c.BatchWorkers = runtime.GOMAXPROCS(0)
		}
		if c.BatchTeam <= 0 {
			c.BatchTeam = 1
		}
		if c.BatchMargin <= 0 {
			c.BatchMargin = 25 * time.Millisecond
		}
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 64
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.ScaleEvery <= 0 {
		c.ScaleEvery = 20 * time.Millisecond
	}
	if c.ScaleQuantumMc <= 0 {
		c.ScaleQuantumMc = workmodel.Paper().SequentialMc(2, 2, 1e-3)
	}
	if c.Backoff == nil {
		c.Backoff = core.NewBackoff(1, core.DefaultBackoffBase, core.DefaultBackoffMax)
	}
	if c.Obs == nil {
		c.Obs = obs.NewRecorder(0)
		c.Obs.AppName = "solved"
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// SolveRequest is the JSON body of POST /solve. The X-Tenant and
// X-Deadline-Ms headers override the corresponding fields.
type SolveRequest struct {
	// Tenant identifies the quota/breaker bucket; empty means "anon".
	Tenant string `json:"tenant,omitempty"`
	// Root is the refinement level of the coarsest grid (argv[1]).
	Root int `json:"root"`
	// Level is the additional refinement above root (argv[2]).
	Level int `json:"level"`
	// Tol is the integrator tolerance (argv[3]); 0 means 1e-3.
	Tol float64 `json:"tol,omitempty"`
	// Solver selects the inner linear solver: "bicgstab" (default),
	// "gmres", or "ilu".
	Solver string `json:"solver,omitempty"`
	// DeadlineMs is the request deadline in milliseconds; 0 takes the
	// server's DefaultDeadline.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// SolveResponse is the JSON body of every /solve response, success or not.
type SolveResponse struct {
	// ID is the server-assigned request ID (events carry the same ID).
	ID int64 `json:"id"`
	// Status is one of completed, degraded, shed, failed.
	Status string `json:"status"`
	// Reason qualifies shed and failed statuses (quota, queue-full,
	// breaker, inflight, draining; budget, deadline, error).
	Reason string `json:"reason,omitempty"`
	// Tenant echoes the quota bucket the request was accounted to.
	Tenant string `json:"tenant"`
	// Grids is the sparse-grid family size solved.
	Grids int `json:"grids,omitempty"`
	// MaxU is the max-norm of the combined solution.
	MaxU float64 `json:"max_u,omitempty"`
	// Flops is the floating-point work of all subsolves.
	Flops int64 `json:"flops,omitempty"`
	// Attempts is the serve-level solve attempts consumed.
	Attempts int `json:"attempts,omitempty"`
	// Failures is the failed worker attempts charged to the request.
	Failures int `json:"failures,omitempty"`
	// Retries is the pool-level job resubmissions across attempts.
	Retries int `json:"retries,omitempty"`
	// Fallbacks is the master-local recomputations across attempts.
	Fallbacks int `json:"fallbacks,omitempty"`
	// ElapsedMs is admission-to-terminal latency in milliseconds.
	ElapsedMs float64 `json:"elapsed_ms,omitempty"`
	// RetryAfterMs duplicates the Retry-After header for JSON clients.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// job is one admitted request on its way through the queue and executors.
type job struct {
	id       int64
	tenant   string
	req      SolveRequest
	lin      rosenbrock.LinearSolver
	mc       int64 // workmodel cost estimate (megacycles), for the autoscaler
	deadline time.Time
	admitted time.Time
	done     chan outcome
}

// outcome is the single terminal result of an admitted job, delivered on
// job.done exactly once.
type outcome struct {
	status     string
	httpStatus int
	reason     string
	retryAfter time.Duration
	out        *solver.Output
	attempts   int
	failures   int
	retries    int
	fallbacks  int
	elapsed    time.Duration
}

// Server is the multi-tenant solve service. Create with NewServer, start
// the executors with Start, expose Handler over net/http, stop with Drain.
type Server struct {
	cfg     Config
	rec     *obs.Recorder
	now     func() time.Time
	problem *pde.Problem

	tenants  *tenants
	batch    *batcher     // nil unless BatchWindow > 0
	cache    *solverCache // nil unless batch is
	model    workmodel.Model
	queuedMc atomic.Int64 // megacycle estimate of the queued jobs
	shrink   chan struct{} // autoscaler scale-down tokens; nil when off
	queue    chan *job
	quit     chan struct{}
	admitMu  sync.RWMutex
	draining atomic.Bool
	drained    chan struct{} // closed when Drain finishes
	drainClean bool          // valid after drained closes
	jobsWG   sync.WaitGroup
	execWG   sync.WaitGroup
	nextID   atomic.Int64

	degradeLevel int // queue occupancy at which dequeued jobs degrade; 0 = off

	cRequests, cShed, cCompleted, cDegraded, cFailed, cRetries *obs.Counter
	cScales                                                    *obs.Counter
	gQueue, gInflight, gQueueMc, gExecWorkers, gExecTarget     *obs.Gauge
	hRequest, hWait                                            *obs.Histogram
}

// NewServer builds a Server from cfg (zero-value fields take defaults).
// Executors are not running until Start.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	rec := cfg.Obs
	s := &Server{
		cfg:     cfg,
		rec:     rec,
		now:     cfg.Now,
		problem: pde.PaperProblem(),
		queue:   make(chan *job, cfg.QueueDepth),
		quit:    make(chan struct{}),
		drained: make(chan struct{}),

		cRequests:    rec.Counter("serve.requests"),
		cShed:        rec.Counter("serve.shed"),
		cCompleted:   rec.Counter("serve.completed"),
		cDegraded:    rec.Counter("serve.degraded"),
		cFailed:      rec.Counter("serve.failed"),
		cRetries:     rec.Counter("serve.retries"),
		cScales:      rec.Counter("serve.exec.scales"),
		gQueue:       rec.Gauge("serve.queue.depth"),
		gInflight:    rec.Gauge("serve.inflight"),
		gQueueMc:     rec.Gauge("serve.queue.mc"),
		gExecWorkers: rec.Gauge("serve.exec.workers"),
		gExecTarget:  rec.Gauge("serve.exec.target"),
		hRequest:     rec.Histogram("serve.request.us"),
		hWait:        rec.Histogram("serve.queue.wait.us"),
	}
	s.model = workmodel.Paper()
	s.tenants = newTenants(cfg, s.now, rec)
	if cfg.BatchWindow > 0 {
		s.cache = newSolverCache(cfg, rec, s.problem)
		s.batch = newBatcher(cfg, rec, s.cache, s.now)
	}
	if cfg.MaxExecutors > cfg.Executors {
		s.shrink = make(chan struct{}, cfg.MaxExecutors)
	}
	if cfg.DegradeAt > 0 {
		s.degradeLevel = int(cfg.DegradeAt * float64(cfg.QueueDepth))
		if s.degradeLevel < 1 {
			s.degradeLevel = 1
		}
	}
	return s
}

// Recorder returns the service's observability recorder (for flushing
// timelines and metrics on shutdown).
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Handler returns the service's HTTP surface: POST /solve, GET /metrics,
// GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// handleSolve is the job API: parse, validate, admit, enqueue, wait for
// the terminal outcome. Every valid request increments serve.requests and
// ends in exactly one terminal counter.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if h := r.Header.Get("X-Tenant"); h != "" {
		req.Tenant = h
	}
	if req.Tenant == "" {
		req.Tenant = "anon"
	}
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad X-Deadline-Ms header")
			return
		}
		req.DeadlineMs = ms
	}
	if req.Tol == 0 {
		req.Tol = 1e-3
	}
	lin, err := parseSolver(req.Solver)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Level > s.cfg.MaxLevel {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("level %d beyond service cap %d", req.Level, s.cfg.MaxLevel))
		return
	}
	if perr := (solver.Params{Root: req.Root, Level: req.Level, Tol: req.Tol}).Validate(); perr != nil {
		httpError(w, http.StatusBadRequest, perr.Error())
		return
	}

	id := s.nextID.Add(1)
	s.cRequests.Inc()
	now := s.now()
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}

	// Admission. The read-lock pairs with Drain's write-lock: once Drain
	// holds it, no handler is mid-admission, so no job can slip into the
	// queue after the drain shed-loop ran.
	s.admitMu.RLock()
	if s.draining.Load() {
		s.admitMu.RUnlock()
		s.shedNow(w, id, req.Tenant, shedDraining, http.StatusServiceUnavailable, time.Second)
		return
	}
	ok, reason, retryAfter := s.tenants.admit(req.Tenant)
	if !ok {
		s.admitMu.RUnlock()
		s.shedNow(w, id, req.Tenant, reason, http.StatusTooManyRequests, retryAfter)
		return
	}
	j := &job{
		id: id, tenant: req.Tenant, req: req, lin: lin,
		mc:       int64(s.model.SequentialMc(req.Root, req.Level, req.Tol)),
		deadline: now.Add(deadline), admitted: now,
		done: make(chan outcome, 1),
	}
	s.jobsWG.Add(1)
	select {
	case s.queue <- j:
		depth := len(s.queue)
		s.gQueue.Set(int64(depth))
		s.gQueueMc.Set(s.queuedMc.Add(j.mc))
		s.gInflight.Add(1)
		s.rec.Emit(obs.KServeAccept, j.tenant, "", j.id, int64(depth))
		s.admitMu.RUnlock()
	default:
		s.jobsWG.Done()
		s.tenants.release(req.Tenant)
		s.admitMu.RUnlock()
		s.shedNow(w, id, req.Tenant, shedQueueFull, http.StatusServiceUnavailable, time.Second)
		return
	}

	oc := <-j.done
	writeOutcome(w, j, oc)
}

// shedNow refuses a request before it was enqueued: one serve.shed event,
// one shed counter increment, one 429/503 response with Retry-After.
func (s *Server) shedNow(w http.ResponseWriter, id int64, tenant, reason string, status int, retryAfter time.Duration) {
	s.cShed.Inc()
	s.rec.Emit(obs.KServeShed, tenant, reason, id, 0)
	writeJSON(w, status, retryAfter, SolveResponse{
		ID: id, Status: StatusShed, Reason: reason, Tenant: tenant,
		RetryAfterMs: retryAfter.Milliseconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.rec.WriteMetrics(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	tenantCount, inflight := s.tenants.snapshot()
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, 0, struct {
		Status   string `json:"status"`
		Queue    int    `json:"queue"`
		Inflight int    `json:"inflight"`
		Tenants  int    `json:"tenants"`
	}{status, len(s.queue), inflight, tenantCount})
}

// writeOutcome renders an admitted job's terminal outcome.
func writeOutcome(w http.ResponseWriter, j *job, oc outcome) {
	resp := SolveResponse{
		ID: j.id, Status: oc.status, Reason: oc.reason, Tenant: j.tenant,
		Attempts: oc.attempts, Failures: oc.failures, Retries: oc.retries,
		Fallbacks: oc.fallbacks, ElapsedMs: float64(oc.elapsed.Microseconds()) / 1e3,
		RetryAfterMs: oc.retryAfter.Milliseconds(),
	}
	if oc.out != nil {
		resp.Grids = len(oc.out.Results)
		resp.MaxU = oc.out.Combined.V.NormInf()
		resp.Flops = oc.out.TotalFlops
	}
	writeJSON(w, oc.httpStatus, oc.retryAfter, resp)
}

func writeJSON(w http.ResponseWriter, status int, retryAfter time.Duration, v any) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		secs := int64(retryAfter / time.Second)
		if retryAfter%time.Second != 0 {
			secs++ // ceil: "retry after 0s" would invite an immediate storm
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // response already committed; nothing to do on error
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, 0, struct {
		Error string `json:"error"`
	}{msg})
}

// parseSolver maps the request's solver name onto the Rosenbrock inner
// linear solvers.
func parseSolver(name string) (rosenbrock.LinearSolver, error) {
	switch strings.ToLower(name) {
	case "", "bicgstab":
		return rosenbrock.BiCGStab, nil
	case "gmres":
		return rosenbrock.GMRES, nil
	case "ilu":
		return rosenbrock.ILU, nil
	}
	return 0, fmt.Errorf("unknown solver %q (want bicgstab, gmres, or ilu)", name)
}

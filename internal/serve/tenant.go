package serve

import (
	"math"
	"sync"
	"time"

	"repro/internal/obs"
)

// tenant is the per-tenant admission state: a token bucket bounding the
// request rate, an inflight counter bounding concurrency, and a circuit
// breaker that stops admitting a tenant whose requests keep exhausting
// their failure budgets. All fields are guarded by the registry's mutex —
// tenant decisions are cheap and serialized on purpose, so quota,
// inflight, and breaker transitions are atomic with respect to each other.
type tenant struct {
	name string

	// Token bucket: tokens refill at rate per second up to burst.
	tokens   float64
	lastFill time.Time

	// inflight counts requests admitted but not yet terminal.
	inflight int

	// Circuit breaker. state transitions: closed --(threshold consecutive
	// failures)--> open --(cooldown elapses)--> half-open --(probe
	// succeeds)--> closed, or --(probe fails)--> open again.
	breaker      breakerState
	consecFails  int
	openUntil    time.Time
	probeInFlight bool
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// tenants is the registry of per-tenant admission state.
type tenants struct {
	mu   sync.Mutex
	byID map[string]*tenant

	rate      float64       // token refill per second
	burst     float64       // bucket capacity
	maxInFly  int           // per-tenant inflight cap (0 = unlimited)
	threshold int           // consecutive failures tripping the breaker (0 = breaker off)
	cooldown  time.Duration // open duration before a half-open probe

	now func() time.Time
	rec *obs.Recorder
}

func newTenants(cfg Config, now func() time.Time, rec *obs.Recorder) *tenants {
	return &tenants{
		byID:      make(map[string]*tenant),
		rate:      cfg.TenantRate,
		burst:     cfg.TenantBurst,
		maxInFly:  cfg.MaxInflight,
		threshold: cfg.BreakerThreshold,
		cooldown:  cfg.BreakerCooldown,
		now:       now,
		rec:       rec,
	}
}

func (ts *tenants) get(name string) *tenant {
	t, ok := ts.byID[name]
	if !ok {
		t = &tenant{name: name, tokens: ts.burst, lastFill: ts.now()}
		ts.byID[name] = t
	}
	return t
}

// admit runs the per-tenant admission checks in severity order — breaker,
// quota, inflight — and on success charges one token and one inflight
// slot. On refusal it returns the shed reason and the Retry-After hint.
func (ts *tenants) admit(name string) (ok bool, reason string, retryAfter time.Duration) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t := ts.get(name)
	now := ts.now()

	if ts.threshold > 0 {
		switch t.breaker {
		case breakerOpen:
			if now.Before(t.openUntil) {
				return false, shedBreaker, t.openUntil.Sub(now)
			}
			// Cooldown over: half-open, admit exactly one probe.
			t.breaker = breakerHalfOpen
			t.probeInFlight = false
			fallthrough
		case breakerHalfOpen:
			if t.probeInFlight {
				return false, shedBreaker, ts.cooldown
			}
			t.probeInFlight = true
			ts.rec.Emit(obs.KBreakerProbe, "serve", t.name, 0, 0)
		}
	}

	// Refill, then spend one token.
	if ts.rate > 0 {
		t.tokens = math.Min(ts.burst, t.tokens+ts.rate*now.Sub(t.lastFill).Seconds())
		t.lastFill = now
		if t.tokens < 1 {
			t.releaseProbe()
			wait := time.Duration((1 - t.tokens) / ts.rate * float64(time.Second))
			return false, shedQuota, wait
		}
		t.tokens--
	}

	if ts.maxInFly > 0 && t.inflight >= ts.maxInFly {
		t.releaseProbe()
		return false, shedInflight, time.Second
	}
	t.inflight++
	return true, "", 0
}

// releaseProbe undoes a half-open probe reservation when a later admission
// check refuses the request — the shed request never ran, so it must not
// consume the tenant's single probe.
func (t *tenant) releaseProbe() {
	if t.breaker == breakerHalfOpen && t.probeInFlight {
		t.probeInFlight = false
	}
}

// release undoes an admission whose request never ran (queue-full shed,
// drain shed): the inflight slot is freed and a half-open probe reservation
// is returned, without touching the breaker's failure accounting. The spent
// token is not refunded — the tenant did submit the request.
func (ts *tenants) release(name string) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t := ts.get(name)
	if t.inflight > 0 {
		t.inflight--
	}
	t.releaseProbe()
}

// settle records the terminal outcome of an admitted request: it frees the
// inflight slot and advances the breaker. budgetFailure marks outcomes
// that should count against the breaker (failure-budget exhaustion and
// other permanent failures); successes reset it.
func (ts *tenants) settle(name string, budgetFailure bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t := ts.get(name)
	if t.inflight > 0 {
		t.inflight--
	}
	if ts.threshold <= 0 {
		return
	}
	now := ts.now()
	if budgetFailure {
		t.consecFails++
		if t.breaker == breakerHalfOpen || t.consecFails >= ts.threshold {
			t.breaker = breakerOpen
			t.openUntil = now.Add(ts.cooldown)
			t.probeInFlight = false
			ts.rec.Emit(obs.KBreakerTrip, "serve", t.name, int64(t.consecFails), 0)
		}
		return
	}
	if t.breaker != breakerClosed {
		ts.rec.Emit(obs.KBreakerClose, "serve", t.name, 0, 0)
	}
	t.breaker = breakerClosed
	t.probeInFlight = false
	t.consecFails = 0
}

// snapshot returns the tenant count and total inflight for /healthz.
func (ts *tenants) snapshot() (count, inflight int) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, t := range ts.byID {
		inflight += t.inflight
	}
	return len(ts.byID), inflight
}

package serve

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/pde"
	"repro/internal/rosenbrock"
	"repro/internal/solver"
)

// batchConfig is the test server setup with the throughput layer on.
func batchConfig() Config {
	return Config{
		QueueDepth: 32, Executors: 2, Attempts: 1,
		BatchWindow: 2 * time.Millisecond, BatchSize: 4, BatchWorkers: 2,
	}
}

// TestBatchedBitIdentical is the cache-correctness oracle: solves through
// the batched+cached path — cold, then warm, across tenants — must be
// bit-for-bit identical to the legacy sequential program.
func TestBatchedBitIdentical(t *testing.T) {
	p := solver.Params{Root: 1, Level: 1, Tol: 1e-2, Problem: pde.PaperProblem()}
	ref, err := solver.Sequential(p)
	if err != nil {
		t.Fatal(err)
	}
	refU := ref.Combined.V.NormInf()

	s, ts := newTestServer(t, batchConfig())
	s.Start()

	const rounds, clients = 3, 4
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		resps := make([]SolveResponse, clients)
		errs := make([]error, clients)
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, resps[i], _, errs[i] = tryPost(ts.URL, SolveRequest{
					Tenant: map[bool]string{true: "alpha", false: "beta"}[i%2 == 0],
					Root:   p.Root, Level: p.Level, Tol: p.Tol,
				}, nil)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d client %d: %v", round, i, err)
			}
			if resps[i].Status != StatusCompleted {
				t.Fatalf("round %d client %d: status %q (%s)", round, i, resps[i].Status, resps[i].Reason)
			}
			if math.Float64bits(resps[i].MaxU) != math.Float64bits(refU) {
				t.Fatalf("round %d client %d: batched max|u| = %x, sequential = %x",
					round, i, math.Float64bits(resps[i].MaxU), math.Float64bits(refU))
			}
			if resps[i].Flops != ref.TotalFlops {
				t.Fatalf("round %d client %d: flops %d != sequential %d", round, i, resps[i].Flops, ref.TotalFlops)
			}
		}
	}

	rec := s.Recorder()
	if hits := rec.Counter("serve.cache.hits").Value(); hits == 0 {
		t.Fatal("no cache hits across warm rounds")
	}
	if clean := s.Drain(time.Minute); !clean {
		t.Fatal("drain timed out")
	}
	checkLedger(t, s)
	checkBatchLedger(t, s)
}

// checkBatchLedger asserts the batching/caching counters mirror their
// events exactly, the same both-ways accounting the PR 7 ledger uses.
func checkBatchLedger(t *testing.T, s *Server) {
	t.Helper()
	rec := s.rec
	for _, p := range []struct {
		name string
		k    obs.Kind
	}{
		{"serve.batch.tasks", obs.KBatchTask},
		{"serve.batch.flushes", obs.KBatchFlush},
		{"serve.batch.steals", obs.KSteal},
		{"serve.cache.hits", obs.KCacheHit},
		{"serve.cache.misses", obs.KCacheMiss},
		{"serve.cache.evictions", obs.KCacheEvict},
		{"serve.exec.scales", obs.KExecScale},
	} {
		if c, e := rec.Counter(p.name).Value(), rec.KindCount(p.k); uint64(c) != e {
			t.Fatalf("ledger: counter %s=%d vs %d %v events", p.name, c, e, p.k)
		}
	}
	// Every task entered the batcher through some flush: flushed sizes sum
	// to the task count once the batcher is closed.
	tasks := rec.Counter("serve.batch.tasks").Value()
	if sum := rec.Histogram("serve.batch.size").Sum(); sum != tasks {
		t.Fatalf("ledger: flushed batch sizes sum to %d, %d tasks enqueued", sum, tasks)
	}
}

// TestCacheEvictionBounds drives the solver cache past its entry and byte
// bounds and checks evictions are counted, emitted, and effective.
func TestCacheEvictionBounds(t *testing.T) {
	problem := pde.PaperProblem()
	fam := grid.Family(2, 2) // 5 distinct shapes
	rec := obs.NewRecorder(0)
	c := newSolverCache(Config{CacheEntries: 2, CacheBytes: 1 << 60}, rec, problem)
	for _, g := range fam {
		sig := signature{g: g, lin: rosenbrock.BiCGStab}
		c.put(c.build(sig, sig.String()))
	}
	if got := c.lru.Len(); got != 2 {
		t.Fatalf("entry bound: %d parked entries, want 2", got)
	}
	wantEvicts := int64(len(fam) - 2)
	if got := rec.Counter("serve.cache.evictions").Value(); got != wantEvicts {
		t.Fatalf("evictions = %d, want %d", got, wantEvicts)
	}
	if got := rec.KindCount(obs.KCacheEvict); got != uint64(wantEvicts) {
		t.Fatalf("evict events = %d, want %d", got, wantEvicts)
	}
	if got := rec.Gauge("serve.cache.entries").Value(); got != 2 {
		t.Fatalf("entries gauge = %d, want 2", got)
	}

	// Byte bound: a 1-byte budget keeps exactly one entry (the cache never
	// evicts its last) and evicts on every further put.
	rec2 := obs.NewRecorder(0)
	c2 := newSolverCache(Config{CacheEntries: 64, CacheBytes: 1}, rec2, problem)
	for _, g := range fam[:2] {
		sig := signature{g: g, lin: rosenbrock.BiCGStab}
		c2.put(c2.build(sig, sig.String()))
	}
	if got := c2.lru.Len(); got != 1 {
		t.Fatalf("byte bound: %d parked entries, want 1", got)
	}
	if got := rec2.Counter("serve.cache.evictions").Value(); got != 1 {
		t.Fatalf("byte bound evictions = %d, want 1", got)
	}

	// Checkout is exclusive and warm: a take returns the parked entry
	// itself and records a hit; a second take of the same signature misses.
	sig := signature{g: fam[1], lin: rosenbrock.BiCGStab}
	e := c2.take(sig, sig.String())
	if e == nil || e.sig != sig {
		t.Fatalf("take(%v) = %v, want the parked entry", sig, e)
	}
	if c2.take(sig, sig.String()) != nil {
		t.Fatal("second take of a checked-out signature must miss")
	}
	if hits, misses := rec2.Counter("serve.cache.hits").Value(), rec2.Counter("serve.cache.misses").Value(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1 and 1", hits, misses)
	}
}

// TestBatcherFlushReasons exercises each flush trigger of the batcher
// state machine directly, without workers: size, age, deadline, close.
func TestBatcherFlushReasons(t *testing.T) {
	mk := func(window, margin time.Duration, size int) (*batcher, *obs.Recorder) {
		rec := obs.NewRecorder(0)
		cfg := Config{BatchWindow: window, BatchMargin: margin, BatchSize: size, QueueDepth: 16}
		b := newBatcher(cfg, rec, newSolverCache(cfg.withDefaults(), rec, pde.PaperProblem()), time.Now)
		return b, rec
	}
	task := func(deadline time.Time) (*subTask, chan subResult) {
		sig := signature{g: grid.Grid{Root: 1}, lin: rosenbrock.BiCGStab}
		out := make(chan subResult, 1)
		return &subTask{sig: sig, sigStr: sig.String(), deadline: deadline, out: out}, out
	}
	lastFlush := func(rec *obs.Recorder) (string, bool) {
		for _, e := range rec.Events() {
			if e.Kind == obs.KBatchFlush {
				return e.Aux, true
			}
		}
		return "", false
	}

	// Size: the maxSize-th enqueue flushes immediately.
	b, rec := mk(time.Hour, time.Millisecond, 2)
	far := time.Now().Add(time.Hour)
	for i := 0; i < 2; i++ {
		tk, _ := task(far)
		if err := b.enqueue(tk); err != nil {
			t.Fatal(err)
		}
	}
	if aux, ok := lastFlush(rec); !ok || aux != "size" {
		t.Fatalf("size flush: got (%q, %v)", aux, ok)
	}

	// Age: the window expires with the deadline far away.
	b, rec = mk(5*time.Millisecond, time.Millisecond, 100)
	if tk, _ := task(far); b.enqueue(tk) != nil {
		t.Fatal("enqueue failed")
	}
	waitFor(t, "age flush", func() bool { _, ok := lastFlush(rec); return ok })
	if aux, _ := lastFlush(rec); aux != "age" {
		t.Fatalf("age flush: got %q", aux)
	}

	// Deadline: a tight member deadline caps a long window.
	b, rec = mk(time.Hour, 2*time.Millisecond, 100)
	if tk, _ := task(time.Now().Add(10 * time.Millisecond)); b.enqueue(tk) != nil {
		t.Fatal("enqueue failed")
	}
	waitFor(t, "deadline flush", func() bool { _, ok := lastFlush(rec); return ok })
	if aux, _ := lastFlush(rec); aux != "deadline" {
		t.Fatalf("deadline flush: got %q", aux)
	}

	// Close: pending tasks flush with reason "close" and fail.
	b, rec = mk(time.Hour, time.Millisecond, 100)
	tk, tkOut := task(far)
	if err := b.enqueue(tk); err != nil {
		t.Fatal(err)
	}
	b.close(true)
	if aux, _ := lastFlush(rec); aux != "close" {
		t.Fatalf("close flush: got %q", aux)
	}
	select {
	case r := <-tkOut:
		if r.err != errBatcherClosed {
			t.Fatalf("closed task error = %v", r.err)
		}
	default:
		t.Fatal("closed task got no result")
	}
	if tk2, _ := task(far); b.enqueue(tk2) != errBatcherClosed {
		t.Fatal("enqueue after close must fail with errBatcherClosed")
	}
}

// TestBatchSteal pins the batch work-stealing path deterministically: only
// the worker that is NOT the signature's affinity home is started, so every
// batch it runs must have been stolen off the home deque. Results still
// arrive intact, and the steal counter and solver.steal event tally agree
// exactly with the number of flushed batches.
func TestBatchSteal(t *testing.T) {
	cfg := Config{
		BatchWindow: time.Hour, BatchMargin: time.Millisecond,
		BatchSize: 1, BatchWorkers: 2, QueueDepth: 16,
	}.withDefaults()
	rec := obs.NewRecorder(0)
	b := newBatcher(cfg, rec, newSolverCache(cfg, rec, pde.PaperProblem()), time.Now)

	g := grid.Family(1, 0)[0]
	sig := signature{g: g, lin: rosenbrock.BiCGStab}
	thief := (b.home(sig.String()) + 1) % len(b.deques)
	b.wg.Add(1)
	go b.worker(thief)

	const batches = 3
	out := make(chan subResult, batches)
	for i := 0; i < batches; i++ {
		tk := &subTask{
			sig: sig, sigStr: sig.String(), idx: i, tol: 1e-2,
			deadline: time.Now().Add(time.Minute), out: out,
		}
		if err := b.enqueue(tk); err != nil { // BatchSize=1: flushes at once
			t.Fatal(err)
		}
	}
	for i := 0; i < batches; i++ {
		select {
		case r := <-out:
			if r.err != nil {
				t.Fatalf("stolen batch %d failed: %v", r.idx, r.err)
			}
		case <-time.After(time.Minute):
			t.Fatal("stolen batch result never arrived")
		}
	}
	if got := rec.Counter("serve.batch.steals").Value(); got != batches {
		t.Fatalf("serve.batch.steals = %d, want %d", got, batches)
	}
	if got := rec.KindCount(obs.KSteal); got != batches {
		t.Fatalf("solver.steal events = %d, want %d", got, batches)
	}
	b.close(true)
}

// TestAutoscaler checks the pool grows with queued estimated work, shrinks
// back when it drains, and accounts every resize.
func TestAutoscaler(t *testing.T) {
	s, _ := newTestServer(t, Config{
		Executors: 1, MaxExecutors: 3,
		ScaleEvery: time.Millisecond, ScaleQuantumMc: 100,
	})
	s.Start()
	workers := s.rec.Gauge("serve.exec.workers")
	target := s.rec.Gauge("serve.exec.target")

	s.queuedMc.Store(1000) // far beyond one quantum: desired = cap
	waitFor(t, "scale-up", func() bool { return workers.Value() == 3 && target.Value() == 3 })

	s.queuedMc.Store(0)
	waitFor(t, "scale-down", func() bool { return workers.Value() == 1 && target.Value() == 1 })

	if scales := s.rec.Counter("serve.exec.scales").Value(); scales < 2 {
		t.Fatalf("scales = %d, want >= 2", scales)
	}
	if clean := s.Drain(time.Minute); !clean {
		t.Fatal("drain timed out")
	}
	checkBatchLedger(t, s)
}

// TestDesiredExecutorsClamps pins the autoscaler's target arithmetic.
func TestDesiredExecutorsClamps(t *testing.T) {
	s := NewServer(Config{Executors: 2, MaxExecutors: 5, ScaleQuantumMc: 10})
	for _, tc := range []struct {
		mc   int64
		want int
	}{
		{0, 2}, {1, 3}, {10, 3}, {11, 4}, {1000, 5},
	} {
		s.queuedMc.Store(tc.mc)
		if got := s.desiredExecutors(); got != tc.want {
			t.Fatalf("desired(%d mc) = %d, want %d", tc.mc, got, tc.want)
		}
	}
}

// TestBatchedDrain: a drain with the throughput layer on stays clean and
// keeps the exactly-once ledger, and a draining server sheds instead of
// batching.
func TestBatchedDrain(t *testing.T) {
	s, ts := newTestServer(t, batchConfig())
	s.Start()
	if _, resp, _, err := tryPost(ts.URL, SolveRequest{Root: 1, Level: 0, Tol: 1e-2}, nil); err != nil || resp.Status != StatusCompleted {
		t.Fatalf("pre-drain solve: status %v err %v", resp.Status, err)
	}
	if clean := s.Drain(time.Minute); !clean {
		t.Fatal("drain timed out")
	}
	if _, resp, _, err := tryPost(ts.URL, SolveRequest{Root: 1, Level: 0, Tol: 1e-2}, nil); err != nil || resp.Status != StatusShed {
		t.Fatalf("post-drain solve: status %v err %v", resp.Status, err)
	}
	checkLedger(t, s)
	checkBatchLedger(t, s)
}

package serve

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/solver"
)

var (
	errBatcherClosed = errors.New("serve: batcher closed")
	errBatchDeadline = errors.New("serve: batched subsolve missed its deadline")
)

// subTask is one grid of one request's sparse-grid family on its way
// through the cross-request batcher. Its result channel is buffered to
// the family size, so a request that gives up (deadline) never blocks a
// batch worker delivering late results.
type subTask struct {
	sig      signature
	sigStr   string
	idx      int // position in the request's grid family
	tol      float64
	reqID    int64
	deadline time.Time
	enq      time.Time
	out      chan<- subResult
}

// subResult is the terminal state of one subTask.
type subResult struct {
	idx int
	res solver.Result
	err error
}

// pendingBatch accumulates same-signature tasks until a flush condition:
// size (the batch is full), age (the window expired), deadline (the
// earliest member's deadline minus the safety margin is due), or close
// (the batcher is shutting down).
type pendingBatch struct {
	sigStr   string
	tasks    []*subTask
	created  time.Time
	earliest time.Time // earliest member deadline; zero = none
	timer    *time.Timer
	gen      uint64 // guards the timer callback against a recycled key
}

// batcher groups same-shape subsolves from concurrent requests and runs
// them on a fixed set of workers, each owning one persistent linalg.Team.
// Amortization is the whole design: tasks of one batch share the worker's
// team (no per-request pool/team setup) and, through the solver cache,
// the discretization and factorization of their shape.
//
// Batches are routed by signature affinity — the same shape always lands
// on the same worker's deque, keeping its team and cache checkouts warm —
// and idle workers steal whole batches from their neighbors' deques, so
// a skewed signature mix cannot leave workers idle while one deque backs
// up. A token channel carries readiness: every dispatched batch sends one
// token, every token wakes one worker for one sweep (own deque first,
// then the others in index rotation).
type batcher struct {
	window  time.Duration
	maxSize int
	margin  time.Duration
	teamN   int
	tEnd    float64
	now     func() time.Time

	rec   *obs.Recorder
	cache *solverCache

	mu      sync.Mutex
	pending map[signature]*pendingBatch
	gen     uint64
	closed  bool

	deques []*core.Deque[[]*subTask]
	tokens chan struct{}
	quit   chan struct{}
	wg     sync.WaitGroup

	cTasks, cFlushes, cSteals *obs.Counter
	hSize, hWait              *obs.Histogram
}

func newBatcher(cfg Config, rec *obs.Recorder, cache *solverCache, now func() time.Time) *batcher {
	workers := cfg.BatchWorkers
	if workers < 1 {
		workers = 1
	}
	b := &batcher{
		window:  cfg.BatchWindow,
		maxSize: cfg.BatchSize,
		margin:  cfg.BatchMargin,
		teamN:   cfg.BatchTeam,
		tEnd:    solver.DefaultTEnd,
		now:     now,
		rec:     rec,
		cache:   cache,
		pending: make(map[signature]*pendingBatch),
		deques:  make([]*core.Deque[[]*subTask], workers),
		tokens:  make(chan struct{}, cfg.QueueDepth),
		quit:    make(chan struct{}),

		cTasks:   rec.Counter("serve.batch.tasks"),
		cFlushes: rec.Counter("serve.batch.flushes"),
		cSteals:  rec.Counter("serve.batch.steals"),
		hSize:    rec.Histogram("serve.batch.size"),
		hWait:    rec.Histogram("serve.batch.wait.us"),
	}
	for i := range b.deques {
		b.deques[i] = core.NewDeque[[]*subTask](cfg.QueueDepth)
	}
	return b
}

func (b *batcher) start() {
	for i := range b.deques {
		b.wg.Add(1)
		go b.worker(i)
	}
}

// home is the affinity route of a signature: an FNV-1a hash over the
// signature string picks the worker whose deque, team, and cache
// checkouts stay warm for that shape.
func (b *batcher) home(sigStr string) int {
	h := uint32(2166136261)
	for i := 0; i < len(sigStr); i++ {
		h ^= uint32(sigStr[i])
		h *= 16777619
	}
	return int(h % uint32(len(b.deques)))
}

// enqueue adds a task to its signature's pending batch, flushing on size
// immediately and otherwise (re)arming the age/deadline timer.
func (b *batcher) enqueue(t *subTask) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errBatcherClosed
	}
	t.enq = b.now()
	pb := b.pending[t.sig]
	if pb == nil {
		b.gen++
		pb = &pendingBatch{sigStr: t.sigStr, created: t.enq, gen: b.gen}
		b.pending[t.sig] = pb
	}
	pb.tasks = append(pb.tasks, t)
	if !t.deadline.IsZero() && (pb.earliest.IsZero() || t.deadline.Before(pb.earliest)) {
		pb.earliest = t.deadline
	}
	b.cTasks.Inc()
	b.rec.Emit(obs.KBatchTask, t.sigStr, "", t.reqID, int64(len(pb.tasks)))
	if len(pb.tasks) >= b.maxSize {
		b.detachLocked(t.sig, pb)
		b.mu.Unlock()
		b.dispatch(pb, "size")
		return nil
	}
	b.retimeLocked(t.sig, pb)
	b.mu.Unlock()
	return nil
}

// retimeLocked arms or resets the batch's flush timer: created+window,
// capped by the earliest member deadline minus the safety margin, so a
// batch always dispatches with enough runway to finish in time.
func (b *batcher) retimeLocked(sig signature, pb *pendingBatch) {
	fire := pb.created.Add(b.window)
	if !pb.earliest.IsZero() {
		if byDeadline := pb.earliest.Add(-b.margin); byDeadline.Before(fire) {
			fire = byDeadline
		}
	}
	d := fire.Sub(b.now())
	if d < 0 {
		d = 0
	}
	if pb.timer == nil {
		gen := pb.gen
		pb.timer = time.AfterFunc(d, func() { b.flushExpired(sig, gen) })
	} else {
		pb.timer.Reset(d)
	}
}

// flushExpired is the timer callback. The generation check makes a stale
// callback — one racing a size flush that already recycled the key — a
// no-op.
func (b *batcher) flushExpired(sig signature, gen uint64) {
	b.mu.Lock()
	pb := b.pending[sig]
	if pb == nil || pb.gen != gen {
		b.mu.Unlock()
		return
	}
	b.detachLocked(sig, pb)
	b.mu.Unlock()
	reason := "age"
	if !pb.earliest.IsZero() && !b.now().Before(pb.earliest.Add(-b.margin)) {
		reason = "deadline"
	}
	b.dispatch(pb, reason)
}

func (b *batcher) detachLocked(sig signature, pb *pendingBatch) {
	delete(b.pending, sig)
	if pb.timer != nil {
		pb.timer.Stop()
	}
}

// dispatch hands a detached batch to the workers: one flush event, one
// counter increment, one size observation per batch. The batch lands on
// its signature's affinity deque, then one readiness token wakes a
// worker; the push precedes the token send, so any worker woken by the
// token is guaranteed to find a batch somewhere in its sweep.
func (b *batcher) dispatch(pb *pendingBatch, reason string) {
	b.cFlushes.Inc()
	b.hSize.Observe(int64(len(pb.tasks)))
	b.rec.Emit(obs.KBatchFlush, pb.sigStr, reason, int64(len(pb.tasks)), b.now().Sub(pb.created).Microseconds())
	home := b.home(pb.sigStr)
	b.deques[home].Push(pb.tasks)
	select {
	case b.tokens <- struct{}{}:
	case <-b.quit:
		// Shutdown won the race: no token was issued for the pushed
		// batch, so fail whatever the home deque still holds (a live
		// worker that steals first simply fails or finishes the batch
		// itself — deque consumption is exclusive either way).
		for {
			tasks, ok := b.deques[home].Steal()
			if !ok {
				return
			}
			for _, t := range tasks {
				t.out <- subResult{idx: t.idx, err: errBatcherClosed}
			}
		}
	}
}

// take gives worker i one batch: its own deque first (affinity), then a
// steal sweep over the neighbors in index rotation. A false return means
// another worker's sweep got to the batch first — the caller just drops
// its token.
func (b *batcher) take(i int) ([]*subTask, int, bool) {
	if tasks, ok := b.deques[i].Pop(); ok {
		return tasks, i, true
	}
	n := len(b.deques)
	for k := 1; k < n; k++ {
		v := (i + k) % n
		if tasks, ok := b.deques[v].Steal(); ok {
			return tasks, v, true
		}
	}
	return nil, 0, false
}

// worker owns one persistent team for its whole life and runs batches in
// arrival order — its own signature-affine batches first, stolen ones
// when its deque runs dry. On quit it fails whatever is still queued so
// no request is left waiting on a dead batcher.
func (b *batcher) worker(i int) {
	defer b.wg.Done()
	team := linalg.NewTeam(b.teamN)
	defer team.Close()
	actor := "batch-" + strconv.Itoa(i)
	for {
		select {
		case <-b.quit:
			for _, dq := range b.deques {
				for {
					tasks, ok := dq.Steal()
					if !ok {
						break
					}
					for _, t := range tasks {
						t.out <- subResult{idx: t.idx, err: errBatcherClosed}
					}
				}
			}
			return
		case <-b.tokens:
			tasks, victim, ok := b.take(i)
			if !ok {
				continue
			}
			if victim != i {
				b.cSteals.Inc()
				b.rec.Emit(obs.KSteal, actor, "batch-"+strconv.Itoa(victim), int64(len(tasks)), 0)
			}
			for _, t := range tasks {
				b.runTask(actor, team, t)
			}
		}
	}
}

// runTask solves one batched subsolve on the worker's persistent team,
// through the signature-keyed cache. The checked-out entry is exclusive,
// so wiring the worker's team in and out of its workspace is safe.
func (b *batcher) runTask(actor string, team *linalg.Team, t *subTask) {
	b.hWait.Observe(b.now().Sub(t.enq).Microseconds())
	if !t.deadline.IsZero() && b.now().After(t.deadline) {
		t.out <- subResult{idx: t.idx, err: errBatchDeadline}
		return
	}
	e := b.cache.take(t.sig, t.sigStr)
	if e == nil {
		e = b.cache.build(t.sig, t.sigStr)
	}
	e.ws.SetTeam(team)
	res, err := solver.TimedSubsolveOn(b.rec, actor, e.disc, t.tol, b.tEnd, t.sig.lin, e.ws, b.teamN)
	e.ws.SetTeam(nil)
	b.cache.put(e)
	t.out <- subResult{idx: t.idx, res: res, err: err}
}

// close stops the batcher: pending batches flush with reason "close" and
// their tasks fail with errBatcherClosed, then the workers are signalled.
// When wait is true close joins them — only a clean drain does, a timed-
// out one must not block on a worker mid-solve.
func (b *batcher) close(wait bool) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
	} else {
		b.closed = true
		pending := b.pending
		b.pending = make(map[signature]*pendingBatch)
		b.mu.Unlock()
		for _, pb := range pending {
			if pb.timer != nil {
				pb.timer.Stop()
			}
			b.cFlushes.Inc()
			b.hSize.Observe(int64(len(pb.tasks)))
			b.rec.Emit(obs.KBatchFlush, pb.sigStr, "close", int64(len(pb.tasks)), b.now().Sub(pb.created).Microseconds())
			for _, t := range pb.tasks {
				t.out <- subResult{idx: t.idx, err: errBatcherClosed}
			}
		}
		close(b.quit)
	}
	if wait {
		b.wg.Wait()
	}
}

// solveBatched fans one request's grid family into the batcher and
// recombines the results; it replaces solver.Concurrent on the batched
// path. Combination runs on the executor's goroutine with a single-core
// team — it is cheap relative to the subsolves and keeps the executor's
// cost model honest.
func (s *Server) solveBatched(j *job, p solver.Params) (*solver.Output, error) {
	fam := grid.Family(p.Root, p.Level)
	out := make(chan subResult, len(fam))
	for i, g := range fam {
		sig := signature{g: g, lin: j.lin}
		t := &subTask{
			sig: sig, sigStr: sig.String(), idx: i, tol: p.Tol,
			reqID: j.id, deadline: j.deadline, out: out,
		}
		if err := s.batch.enqueue(t); err != nil {
			return nil, err
		}
	}
	remaining := j.deadline.Sub(s.now())
	if remaining <= 0 {
		return nil, errBatchDeadline
	}
	tm := time.NewTimer(remaining)
	defer tm.Stop()
	results := make([]solver.Result, len(fam))
	for n := 0; n < len(fam); n++ {
		select {
		case r := <-out:
			if r.err != nil {
				return nil, r.err
			}
			results[r.idx] = r.res
		case <-tm.C:
			return nil, errBatchDeadline
		}
	}
	p.CoresPerWorker = 1
	return solver.Combine(p, results)
}

package serve

import (
	"testing"
	"time"
)

func TestRunLoadLedgerMatchesServer(t *testing.T) {
	s, ts := newTestServer(t, Config{
		QueueDepth: 4, Executors: 2, DegradeAt: 0.5,
		TenantRate: 200, TenantBurst: 4, MaxInflight: 3,
	})
	s.Start()

	res := RunLoad(LoadConfig{
		URL: ts.URL, Clients: 4, Requests: 5, Burst: 2, Tenants: 2,
		Root: 1, Level: 0, Tol: 1e-2, Pause: 5 * time.Millisecond, Seed: 7,
	})
	if res.Total != 20 {
		t.Fatalf("total = %d, want 20", res.Total)
	}
	if res.Errors != 0 {
		t.Fatalf("transport errors = %d, want 0", res.Errors)
	}
	if res.Total != res.Completed+res.Degraded+res.Shed+res.Failed+res.Errors {
		t.Fatalf("client ledger does not partition: %+v", res)
	}
	if res.Completed == 0 {
		t.Fatalf("no request completed: %+v", res)
	}
	if res.P50 <= 0 || res.Max < res.P99 || res.P99 < res.P95 || res.P95 < res.P50 {
		t.Fatalf("latency profile not monotone: %+v", res)
	}

	// The client-side ledger is the server-side ledger.
	rec := s.rec
	if got := rec.Counter("serve.requests").Value(); got != int64(res.Total) {
		t.Fatalf("serve.requests = %d, client total = %d", got, res.Total)
	}
	for counter, want := range map[string]int{
		"serve.completed": res.Completed,
		"serve.degraded":  res.Degraded,
		"serve.shed":      res.Shed,
		"serve.failed":    res.Failed,
	} {
		if got := rec.Counter(counter).Value(); got != int64(want) {
			t.Fatalf("%s = %d, client saw %d", counter, got, want)
		}
	}
	if clean := s.Drain(time.Minute); !clean {
		t.Fatal("drain timed out")
	}
	checkLedger(t, s)
}

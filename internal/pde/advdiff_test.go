package pde

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/linalg"
)

func TestDiscDimensions(t *testing.T) {
	g := grid.Grid{Root: 2, L1: 1, L2: 0}
	d := NewDisc(g, PaperProblem())
	if d.N() != 7*3 {
		t.Fatalf("N = %d, want 21", d.N())
	}
	if d.A.Rows != d.N() || d.A.Cols != d.N() {
		t.Fatalf("A is %dx%d, want %dx%d", d.A.Rows, d.A.Cols, d.N(), d.N())
	}
}

func TestRowSumsZeroForPureAdvectionInterior(t *testing.T) {
	// For a constant-coefficient operator with no diffusion, interior rows
	// away from the boundary must sum to zero (consistency: A applied to a
	// constant field vanishes).
	g := grid.Grid{Root: 3, L1: 0, L2: 0}
	p := &Problem{A1: 1, A2: -0.5, D: 0}
	d := NewDisc(g, p)
	u := linalg.NewVector(d.N())
	u.Fill(1)
	out := linalg.NewVector(d.N())
	d.A.MulVec(out, u, nil)
	// Rows whose stencil touches the boundary are allowed nonzero; check a
	// central row.
	mx := g.NX() - 1
	center := (mx/2)*mx + mx/2
	if math.Abs(out[center]) > 1e-12 {
		t.Fatalf("central row sum = %g, want 0", out[center])
	}
}

func TestUpwindDirectionFollowsSign(t *testing.T) {
	g := grid.Grid{Root: 2, L1: 0, L2: 0}
	mx := g.NX() - 1
	center := (mx/2)*mx + mx/2
	// a1 > 0: west coefficient positive (uses upstream value), east zero.
	d := NewDisc(g, &Problem{A1: 2, A2: 0, D: 0})
	west := d.A.At(center, center-1)
	east := d.A.At(center, center+1)
	if west <= 0 || east != 0 {
		t.Fatalf("a1>0: west=%g east=%g, want west>0 east=0", west, east)
	}
	// a1 < 0: east coefficient positive, west zero.
	d = NewDisc(g, &Problem{A1: -2, A2: 0, D: 0})
	west = d.A.At(center, center-1)
	east = d.A.At(center, center+1)
	if east <= 0 || west != 0 {
		t.Fatalf("a1<0: west=%g east=%g, want east>0 west=0", west, east)
	}
}

func TestFExactForLinearSolution(t *testing.T) {
	// For u = x + y + t the discrete F must equal du/dt = 1 exactly:
	// upwind differences are exact on linear functions.
	p := LinearProblem(0.7, 0.3, 0.05)
	g := grid.Grid{Root: 2, L1: 1, L2: 2}
	d := NewDisc(g, p)
	u := d.ExactInterior(1.5)
	out := linalg.NewVector(d.N())
	d.F(1.5, u, out, nil)
	for i, v := range out {
		if math.Abs(v-1) > 1e-10 {
			t.Fatalf("F[%d] = %g, want 1", i, v)
		}
	}
}

func TestSpatialConsistencyManufactured(t *testing.T) {
	// F(t, exact(t)) must approach u_t as the grid refines; with
	// first-order upwind the truncation error is O(h).
	p := ManufacturedProblem(1, 0.5, 0.02)
	var prev float64 = math.Inf(1)
	for _, l := range []int{1, 2, 3} {
		g := grid.Grid{Root: 2, L1: l, L2: l}
		d := NewDisc(g, p)
		u := d.ExactInterior(0.3)
		out := linalg.NewVector(d.N())
		d.F(0.3, u, out, nil)
		// exact u_t = -exact
		maxErr := 0.0
		ue := d.ExactInterior(0.3)
		for i := range out {
			err := math.Abs(out[i] - (-ue[i]))
			if err > maxErr {
				maxErr = err
			}
		}
		if maxErr > prev {
			t.Fatalf("truncation error grew on refinement: %g -> %g", prev, maxErr)
		}
		prev = maxErr
	}
}

func TestBoundaryEntersRHS(t *testing.T) {
	g := grid.Grid{Root: 2, L1: 0, L2: 0}
	p := &Problem{
		A1: 1, A2: 0, D: 0.1,
		Boundary: func(x, y, t float64) float64 { return 10 * t },
	}
	d := NewDisc(g, p)
	b0 := linalg.NewVector(d.N())
	b1 := linalg.NewVector(d.N())
	d.RHS(0, b0, nil)
	d.RHS(1, b1, nil)
	if b0.NormInf() != 0 {
		t.Fatalf("RHS(0) = %v, want zero (boundary 0 at t=0)", b0.NormInf())
	}
	if b1.NormInf() == 0 {
		t.Fatal("RHS(1) is zero; boundary values not coupled")
	}
}

func TestInitialInterior(t *testing.T) {
	g := grid.Grid{Root: 2, L1: 0, L2: 0}
	p := &Problem{A1: 1, Initial: func(x, y float64) float64 { return x * y }}
	d := NewDisc(g, p)
	u := d.InitialInterior()
	// Interior point (1,1) is at (0.25, 0.25).
	if math.Abs(u[0]-0.0625) > 1e-15 {
		t.Fatalf("u[0] = %g, want 0.0625", u[0])
	}
}

func TestFieldFromInteriorRoundTrip(t *testing.T) {
	g := grid.Grid{Root: 2, L1: 1, L2: 0}
	p := LinearProblem(1, 1, 0.01)
	d := NewDisc(g, p)
	u := d.ExactInterior(2)
	f := d.FieldFromInterior(u, 2)
	// Every grid point (boundary and interior) must match the exact
	// solution at t=2.
	for iy := 0; iy <= g.NY(); iy++ {
		for ix := 0; ix <= g.NX(); ix++ {
			want := p.Exact(g.X(ix), g.Y(iy), 2)
			if math.Abs(f.At(ix, iy)-want) > 1e-13 {
				t.Fatalf("field(%d,%d) = %g, want %g", ix, iy, f.At(ix, iy), want)
			}
		}
	}
}

func TestPaperProblemPulse(t *testing.T) {
	p := PaperProblem()
	if p.Initial(0.3, 0.3) != 1 {
		t.Errorf("pulse peak = %g, want 1", p.Initial(0.3, 0.3))
	}
	if p.Initial(0.9, 0.9) > 1e-7 {
		t.Errorf("pulse tail = %g, want ~0", p.Initial(0.9, 0.9))
	}
	if p.Boundary != nil || p.Source != nil {
		t.Error("paper problem must have homogeneous boundary and no source")
	}
}

func TestNoInteriorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for grid without interior")
		}
	}()
	NewDisc(grid.Grid{Root: 0, L1: 0, L2: 0}, PaperProblem())
}

// Package pde discretizes the paper's transport problem — a time-dependent
// advection-diffusion equation on the unit square — on a rectangular grid:
//
//	u_t + a1*u_x + a2*u_y = d*(u_xx + u_yy) + s(x, y, t)
//
// with Dirichlet boundary values. Space is discretized with first-order
// upwind advection and second-order central diffusion, yielding the
// semi-discrete system du/dt = A*u + b(t) on the interior points, which the
// Rosenbrock integrator (internal/rosenbrock) marches in time.
package pde

import (
	"math"

	"repro/internal/grid"
	"repro/internal/linalg"
)

// Problem defines the continuous advection-diffusion problem.
type Problem struct {
	A1, A2 float64 // advection velocity components
	D      float64 // diffusion coefficient (>= 0)

	// Source is the source term s(x, y, t); nil means zero.
	Source func(x, y, t float64) float64
	// Boundary gives the Dirichlet value at boundary point (x, y) at time
	// t; nil means homogeneous.
	Boundary func(x, y, t float64) float64
	// Initial gives u(x, y, 0); nil means zero.
	Initial func(x, y float64) float64
	// Exact, when non-nil, is the known exact solution (for manufactured-
	// solution convergence tests).
	Exact func(x, y, t float64) float64
}

func (p *Problem) source(x, y, t float64) float64 {
	if p.Source == nil {
		return 0
	}
	return p.Source(x, y, t)
}

func (p *Problem) boundary(x, y, t float64) float64 {
	if p.Boundary == nil {
		return 0
	}
	return p.Boundary(x, y, t)
}

func (p *Problem) initial(x, y float64) float64 {
	if p.Initial == nil {
		return 0
	}
	return p.Initial(x, y)
}

// PaperProblem returns the transport problem used throughout the
// reproduction as the stand-in for the CWI application: a Gaussian pulse
// advected diagonally across the unit square with weak diffusion,
// homogeneous Dirichlet boundaries and no source.
func PaperProblem() *Problem {
	return &Problem{
		A1: 1.0,
		A2: 0.5,
		D:  0.01,
		Initial: func(x, y float64) float64 {
			dx, dy := x-0.3, y-0.3
			return math.Exp(-50 * (dx*dx + dy*dy))
		},
	}
}

// ManufacturedProblem returns a problem with the known solution
// u(x,y,t) = exp(-t)*sin(pi x)*sin(pi y), for convergence tests.
func ManufacturedProblem(a1, a2, d float64) *Problem {
	exact := func(x, y, t float64) float64 {
		return math.Exp(-t) * math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
	}
	pi := math.Pi
	return &Problem{
		A1: a1, A2: a2, D: d,
		Exact:    exact,
		Initial:  func(x, y float64) float64 { return exact(x, y, 0) },
		Boundary: func(x, y, t float64) float64 { return 0 },
		Source: func(x, y, t float64) float64 {
			e := math.Exp(-t)
			sx, cx := math.Sincos(pi * x)
			sy, cy := math.Sincos(pi * y)
			ut := -e * sx * sy
			ux := e * pi * cx * sy
			uy := e * pi * sx * cy
			lap := -2 * pi * pi * e * sx * sy
			return ut + a1*ux + a2*uy - d*lap
		},
	}
}

// LinearProblem returns a problem whose exact solution u = x + y + t is
// bilinear in space and linear in time, so both the upwind spatial
// discretization and the order-2 time integrator reproduce it to rounding
// error. Ideal for end-to-end exactness tests.
func LinearProblem(a1, a2, d float64) *Problem {
	exact := func(x, y, t float64) float64 { return x + y + t }
	return &Problem{
		A1: a1, A2: a2, D: d,
		Exact:    exact,
		Initial:  func(x, y float64) float64 { return exact(x, y, 0) },
		Boundary: exact,
		Source: func(x, y, t float64) float64 {
			return 1 + a1 + a2 // u_t + a1*u_x + a2*u_y, laplacian = 0
		},
	}
}

// boundaryLink couples interior row to a boundary point with a stencil
// coefficient: b[row] += coef * boundary(x, y, t).
type boundaryLink struct {
	row  int
	x, y float64
	coef float64
}

// Disc is the semi-discrete operator du/dt = A u + b(t) on the interior
// points of one grid.
type Disc struct {
	G grid.Grid
	P *Problem
	A *linalg.CSR

	links   []boundaryLink
	sources []sourcePoint

	// rhs is the scratch vector F uses for b(t), allocated once so the
	// integrator's hot loop stays allocation-free. It makes F
	// non-reentrant: a Disc must not be shared by concurrent
	// integrations (each sparse-grid worker builds its own).
	rhs linalg.Vector

	// team, when non-nil, parallelizes F's SpMV (rosenbrock.TeamSystem).
	team *linalg.Team
}

// SetTeam routes F's A*u product through t (nil restores serial execution);
// results are bit-for-bit identical either way. The boundary/source loop
// stays on the caller — it evaluates user closures.
func (d *Disc) SetTeam(t *linalg.Team) { d.team = t }

type sourcePoint struct {
	row  int
	x, y float64
}

// NewDisc assembles the discretization of p on g. The grid must have at
// least one interior point in each direction.
func NewDisc(g grid.Grid, p *Problem) *Disc {
	nx, ny := g.NX(), g.NY()
	mx, my := nx-1, ny-1 // interior counts
	if mx < 1 || my < 1 {
		panic("pde: grid has no interior points")
	}
	hx, hy := g.Hx(), g.Hy()
	d := &Disc{G: g, P: p}
	b := linalg.NewBuilder(mx*my, mx*my)

	// Stencil coefficients. Upwind advection: for a1 > 0 the x-derivative
	// uses (u_i - u_{i-1})/hx, contributing -a1/hx to the diagonal and
	// +a1/hx to the west neighbour, and symmetrically for a1 < 0 / a2.
	dw := p.D / (hx * hx) // west/east diffusion weight
	dn := p.D / (hy * hy) // north/south diffusion weight
	var aw, ae, as, an float64
	diag := -2*dw - 2*dn
	if p.A1 >= 0 {
		aw = p.A1 / hx
		diag -= p.A1 / hx
	} else {
		ae = -p.A1 / hx
		diag += p.A1 / hx
	}
	if p.A2 >= 0 {
		as = p.A2 / hy
		diag -= p.A2 / hy
	} else {
		an = -p.A2 / hy
		diag += p.A2 / hy
	}

	idx := func(ix, iy int) int { return (iy-1)*mx + (ix - 1) } // interior index
	for iy := 1; iy <= my; iy++ {
		for ix := 1; ix <= mx; ix++ {
			row := idx(ix, iy)
			b.Add(row, row, diag)
			d.sources = append(d.sources, sourcePoint{row: row, x: g.X(ix), y: g.Y(iy)})
			// West neighbour (ix-1, iy).
			wc := dw + aw
			if ix-1 >= 1 {
				b.Add(row, idx(ix-1, iy), wc)
			} else if wc != 0 {
				d.links = append(d.links, boundaryLink{row, g.X(ix - 1), g.Y(iy), wc})
			}
			// East neighbour (ix+1, iy).
			ec := dw + ae
			if ix+1 <= mx {
				b.Add(row, idx(ix+1, iy), ec)
			} else if ec != 0 {
				d.links = append(d.links, boundaryLink{row, g.X(ix + 1), g.Y(iy), ec})
			}
			// South neighbour (ix, iy-1).
			sc := dn + as
			if iy-1 >= 1 {
				b.Add(row, idx(ix, iy-1), sc)
			} else if sc != 0 {
				d.links = append(d.links, boundaryLink{row, g.X(ix), g.Y(iy - 1), sc})
			}
			// North neighbour (ix, iy+1).
			nc := dn + an
			if iy+1 <= my {
				b.Add(row, idx(ix, iy+1), nc)
			} else if nc != 0 {
				d.links = append(d.links, boundaryLink{row, g.X(ix), g.Y(iy + 1), nc})
			}
		}
	}
	d.A = b.Build()
	d.rhs = linalg.NewVector(mx * my)
	return d
}

// N returns the number of interior unknowns.
func (d *Disc) N() int { return d.A.Rows }

// Jacobian returns dF/du = A (the problem is linear), satisfying
// rosenbrock.System.
func (d *Disc) Jacobian() *linalg.CSR { return d.A }

// RHS fills b(t): the boundary couplings plus the source term.
func (d *Disc) RHS(t float64, b linalg.Vector, ops *linalg.Ops) {
	b.Fill(0)
	for _, l := range d.links {
		b[l.row] += l.coef * d.P.boundary(l.x, l.y, t)
	}
	if d.P.Source != nil {
		for _, s := range d.sources {
			b[s.row] += d.P.Source(s.x, s.y, t)
		}
	}
	ops.Add(int64(2*len(d.links)) + int64(8*len(d.sources)))
}

// F evaluates the semi-discrete right-hand side out = A*u + b(t).
func (d *Disc) F(t float64, u, out linalg.Vector, ops *linalg.Ops) {
	d.team.MulVec(d.A, out, u, ops)
	if d.rhs == nil {
		d.rhs = linalg.NewVector(len(out))
	}
	d.RHS(t, d.rhs, ops)
	d.team.AXPY(out, 1, d.rhs, ops)
}

// InitialInterior samples the initial condition at the interior points.
func (d *Disc) InitialInterior() linalg.Vector {
	u := linalg.NewVector(d.N())
	for _, s := range d.sources {
		u[s.row] = d.P.initial(s.x, s.y)
	}
	return u
}

// FieldFromInterior embeds an interior vector into a full grid field,
// evaluating the boundary condition at time t on the edge points.
func (d *Disc) FieldFromInterior(u linalg.Vector, t float64) *grid.Field {
	g := d.G
	f := grid.NewField(g)
	nx, ny := g.NX(), g.NY()
	for iy := 0; iy <= ny; iy++ {
		for ix := 0; ix <= nx; ix++ {
			if ix == 0 || ix == nx || iy == 0 || iy == ny {
				f.Set(ix, iy, d.P.boundary(g.X(ix), g.Y(iy), t))
			} else {
				f.Set(ix, iy, u[(iy-1)*(nx-1)+(ix-1)])
			}
		}
	}
	return f
}

// ExactInterior samples the problem's exact solution at time t on the
// interior points (panics if Exact is nil).
func (d *Disc) ExactInterior(t float64) linalg.Vector {
	u := linalg.NewVector(d.N())
	for _, s := range d.sources {
		u[s.row] = d.P.Exact(s.x, s.y, t)
	}
	return u
}

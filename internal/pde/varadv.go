package pde

import (
	"math"

	"repro/internal/grid"
	"repro/internal/linalg"
)

// VarProblem is an advection-diffusion problem with space-dependent
// velocity a(x, y) — still linear in u with a time-independent operator,
// so the Rosenbrock integrator's constant-Jacobian assumption holds.
//
//	u_t + a1(x,y) u_x + a2(x,y) u_y = d (u_xx + u_yy) + s(x,y,t)
type VarProblem struct {
	A1, A2 func(x, y float64) float64
	D      float64

	Source   func(x, y, t float64) float64
	Boundary func(x, y, t float64) float64
	Initial  func(x, y float64) float64
}

// RotatingProblem returns the classic solid-body-rotation transport test
// (the Molenkamp problem): a Gaussian pulse carried around the centre of
// the unit square by the velocity field omega*(-(y-1/2), x-1/2), with weak
// diffusion. One full revolution takes 2*pi/omega time units.
func RotatingProblem(omega, d float64) *VarProblem {
	return &VarProblem{
		A1: func(x, y float64) float64 { return -omega * (y - 0.5) },
		A2: func(x, y float64) float64 { return omega * (x - 0.5) },
		D:  d,
		Initial: func(x, y float64) float64 {
			dx, dy := x-0.5, y-0.25
			return math.Exp(-120 * (dx*dx + dy*dy))
		},
	}
}

// NewVarDisc assembles the first-order upwind / central discretization of
// a variable-coefficient problem on g. The upwind direction is chosen per
// point from the local velocity sign. The returned Disc supports the same
// operations as the constant-coefficient one (it satisfies
// rosenbrock.System through the embedded operator).
func NewVarDisc(g grid.Grid, p *VarProblem) *Disc {
	nx, ny := g.NX(), g.NY()
	mx, my := nx-1, ny-1
	if mx < 1 || my < 1 {
		panic("pde: grid has no interior points")
	}
	hx, hy := g.Hx(), g.Hy()
	// Wrap into the constant-coefficient Problem container so the Disc
	// helpers (RHS, FieldFromInterior, ...) work unchanged; A1/A2 of the
	// container are unused during assembly here.
	cont := &Problem{
		D:        p.D,
		Source:   p.Source,
		Boundary: p.Boundary,
		Initial:  p.Initial,
	}
	d := &Disc{G: g, P: cont}
	b := linalg.NewBuilder(mx*my, mx*my)
	dw := p.D / (hx * hx)
	dn := p.D / (hy * hy)

	idx := func(ix, iy int) int { return (iy-1)*mx + (ix - 1) }
	for iy := 1; iy <= my; iy++ {
		for ix := 1; ix <= mx; ix++ {
			row := idx(ix, iy)
			x, y := g.X(ix), g.Y(iy)
			a1 := p.A1(x, y)
			a2 := p.A2(x, y)
			diag := -2*dw - 2*dn
			var aw, ae, as, an float64
			if a1 >= 0 {
				aw = a1 / hx
				diag -= a1 / hx
			} else {
				ae = -a1 / hx
				diag += a1 / hx
			}
			if a2 >= 0 {
				as = a2 / hy
				diag -= a2 / hy
			} else {
				an = -a2 / hy
				diag += a2 / hy
			}
			b.Add(row, row, diag)
			d.sources = append(d.sources, sourcePoint{row: row, x: x, y: y})
			stencil := []struct {
				jx, jy int
				coef   float64
			}{
				{ix - 1, iy, dw + aw},
				{ix + 1, iy, dw + ae},
				{ix, iy - 1, dn + as},
				{ix, iy + 1, dn + an},
			}
			for _, st := range stencil {
				if st.coef == 0 {
					continue
				}
				if st.jx >= 1 && st.jx <= mx && st.jy >= 1 && st.jy <= my {
					b.Add(row, idx(st.jx, st.jy), st.coef)
				} else {
					d.links = append(d.links, boundaryLink{row, g.X(st.jx), g.Y(st.jy), st.coef})
				}
			}
		}
	}
	d.A = b.Build()
	d.rhs = linalg.NewVector(mx * my)
	return d
}

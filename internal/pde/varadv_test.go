package pde

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/rosenbrock"
)

func TestVarDiscMatchesConstantForConstantField(t *testing.T) {
	// With constant velocity functions, the variable-coefficient assembly
	// must produce exactly the constant-coefficient operator.
	g := grid.Grid{Root: 2, L1: 1, L2: 1}
	cp := &Problem{A1: 0.8, A2: -0.3, D: 0.02}
	vp := &VarProblem{
		A1: func(x, y float64) float64 { return 0.8 },
		A2: func(x, y float64) float64 { return -0.3 },
		D:  0.02,
	}
	dc := NewDisc(g, cp)
	dv := NewVarDisc(g, vp)
	if dc.A.NNZ() != dv.A.NNZ() {
		t.Fatalf("nnz %d vs %d", dc.A.NNZ(), dv.A.NNZ())
	}
	for r := 0; r < dc.A.Rows; r++ {
		for k := dc.A.RowPtr[r]; k < dc.A.RowPtr[r+1]; k++ {
			c := dc.A.ColIdx[k]
			if math.Abs(dc.A.At(r, c)-dv.A.At(r, c)) > 1e-13 {
				t.Fatalf("entry (%d,%d): %g vs %g", r, c, dc.A.At(r, c), dv.A.At(r, c))
			}
		}
	}
}

func TestRotatingFieldIsDivergenceFreeRotation(t *testing.T) {
	p := RotatingProblem(2, 0)
	// Velocity at (0.5, 0.75): pure +x? a1 = -2*(0.25) = -0.5, a2 = 0.
	if v := p.A1(0.5, 0.75); math.Abs(v+0.5) > 1e-15 {
		t.Fatalf("a1(0.5,0.75) = %g, want -0.5", v)
	}
	if v := p.A2(0.5, 0.75); v != 0 {
		t.Fatalf("a2(0.5,0.75) = %g, want 0", v)
	}
	// The centre is a stagnation point.
	if p.A1(0.5, 0.5) != 0 || p.A2(0.5, 0.5) != 0 {
		t.Fatal("centre is not a stagnation point")
	}
}

// centerOfMass finds the pulse centre on the interior grid.
func centerOfMass(d *Disc, u linalg.Vector) (float64, float64) {
	var sx, sy, m float64
	for _, s := range d.sources {
		w := u[s.row]
		if w < 0 {
			w = 0
		}
		sx += w * s.x
		sy += w * s.y
		m += w
	}
	return sx / m, sy / m
}

func TestRotatingPulseQuarterTurn(t *testing.T) {
	// Integrate the Molenkamp test for a quarter revolution: the pulse
	// starting at (0.5, 0.25) must arrive near (0.75, 0.5) (rotation is
	// counterclockwise for omega > 0: velocity at (0.5,0.25) is (+, 0)).
	omega := 2 * math.Pi // one revolution per unit time
	p := RotatingProblem(omega, 5e-4)
	g := grid.Grid{Root: 3, L1: 2, L2: 2} // 32x32 cells
	d := NewVarDisc(g, p)
	u := d.InitialInterior()
	_, err := rosenbrock.Integrate(d, u, 0, 0.25, rosenbrock.Config{Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	cx, cy := centerOfMass(d, u)
	if math.Abs(cx-0.75) > 0.06 || math.Abs(cy-0.5) > 0.06 {
		t.Fatalf("pulse centre after quarter turn at (%.3f, %.3f), want ~(0.75, 0.5)", cx, cy)
	}
	// The peak decays (upwind diffusion) but must remain a clear pulse.
	max := u.NormInf()
	if max < 0.2 || max > 1.01 {
		t.Fatalf("pulse peak %g after quarter turn", max)
	}
}

func TestRotatingPulseMassBounded(t *testing.T) {
	// With homogeneous boundaries and the pulse away from them, total mass
	// must not grow and not collapse during a short rotation.
	p := RotatingProblem(2*math.Pi, 5e-4)
	g := grid.Grid{Root: 3, L1: 1, L2: 1}
	d := NewVarDisc(g, p)
	u := d.InitialInterior()
	mass := func(v linalg.Vector) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s
	}
	m0 := mass(u)
	if _, err := rosenbrock.Integrate(d, u, 0, 0.1, rosenbrock.Config{Tol: 1e-4}); err != nil {
		t.Fatal(err)
	}
	m1 := mass(u)
	if m1 > m0*1.01 {
		t.Fatalf("mass grew: %g -> %g", m0, m1)
	}
	if m1 < m0*0.5 {
		t.Fatalf("mass collapsed: %g -> %g", m0, m1)
	}
}

func TestVarDiscWithILUSolver(t *testing.T) {
	// The rotating problem exercises sign changes in the upwind direction;
	// the ILU-preconditioned solver must agree with Jacobi-BiCGStab.
	p := RotatingProblem(math.Pi, 1e-3)
	g := grid.Grid{Root: 3, L1: 1, L2: 1}
	run := func(s rosenbrock.LinearSolver) linalg.Vector {
		d := NewVarDisc(g, p)
		u := d.InitialInterior()
		if _, err := rosenbrock.Integrate(d, u, 0, 0.05, rosenbrock.Config{Tol: 1e-5, Solver: s}); err != nil {
			t.Fatal(err)
		}
		return u
	}
	a := run(rosenbrock.BiCGStab)
	b := run(rosenbrock.ILU)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-6 {
			t.Fatalf("solutions diverge at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

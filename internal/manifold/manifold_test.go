package manifold

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestProcessLifecycle(t *testing.T) {
	env := NewEnv()
	ran := false
	p := env.NewProcess("p", func(self *Process) { ran = true })
	select {
	case <-p.Done():
		t.Fatal("process ran before Activate")
	default:
	}
	p.Activate()
	p.Terminated()
	if !ran {
		t.Fatal("body did not run")
	}
	env.Wait()
}

func TestActivateTwicePanics(t *testing.T) {
	env := NewEnv()
	p := env.NewProcess("p", nil)
	p.Activate()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Activate()
}

func TestStandardAndExtraPorts(t *testing.T) {
	env := NewEnv()
	p := env.NewProcess("master", nil, "dataport")
	for _, n := range []string{"input", "output", "error", "dataport"} {
		if p.Port(n) == nil {
			t.Fatalf("port %s missing", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown port")
		}
	}()
	p.Port("nonexistent")
}

func TestStreamDelivers(t *testing.T) {
	env := NewEnv()
	a := env.NewProcess("a", nil)
	b := env.NewProcess("b", nil)
	Connect(a.Output(), b.Input(), BK)
	a.Output().Write(42)
	u, ok := b.Input().Read()
	if !ok || u.(int) != 42 {
		t.Fatalf("read %v, %v; want 42, true", u, ok)
	}
}

func TestWriteBeforeConnectIsBuffered(t *testing.T) {
	// A worker may start producing before the coordinator wires it up;
	// units written with no stream attached flush on connection.
	env := NewEnv()
	a := env.NewProcess("a", nil)
	b := env.NewProcess("b", nil)
	a.Output().Write("early")
	Connect(a.Output(), b.Input(), BK)
	u, ok := b.Input().Read()
	if !ok || u.(string) != "early" {
		t.Fatalf("buffered unit lost: %v, %v", u, ok)
	}
}

func TestBKBreakStopsNewUnitsKeepsDelivered(t *testing.T) {
	env := NewEnv()
	a := env.NewProcess("a", nil)
	b := env.NewProcess("b", nil)
	s := Connect(a.Output(), b.Input(), BK)
	a.Output().Write(1)
	s.Break()
	a.Output().Write(2) // goes to pendingOut, not the broken stream
	if !s.Broken() {
		t.Fatal("stream not broken")
	}
	u, ok := b.Input().Read()
	if !ok || u.(int) != 1 {
		t.Fatalf("delivered unit lost after break: %v", u)
	}
	if b.Input().Len() != 0 {
		t.Fatal("unit written after break leaked through")
	}
}

func TestScopeDismantleBKvsKK(t *testing.T) {
	// The paper's create_worker state: master->worker is BK, worker->
	// master.dataport is KK; preemption must break only the former.
	env := NewEnv()
	master := env.NewProcess("master", nil, "dataport")
	worker := env.NewProcess("worker", nil)
	var sc Scope
	mw := sc.Connect(master.Output(), worker.Input(), BK)
	wm := sc.Connect(worker.Output(), master.Port("dataport"), KK)
	kept := sc.Dismantle()
	if !mw.Broken() {
		t.Error("BK stream survived dismantling")
	}
	if wm.Broken() {
		t.Error("KK stream broken by dismantling")
	}
	if len(kept) != 1 || kept[0] != wm {
		t.Errorf("kept = %v, want the KK stream", kept)
	}
	// The surviving KK stream still transports the worker's results.
	worker.Output().Write("result")
	u, ok := master.Port("dataport").Read()
	if !ok || u != "result" {
		t.Fatalf("KK stream no longer delivers: %v", u)
	}
}

func TestBroadcastToMultipleStreams(t *testing.T) {
	env := NewEnv()
	a := env.NewProcess("a", nil)
	b := env.NewProcess("b", nil)
	c := env.NewProcess("c", nil)
	Connect(a.Output(), b.Input(), BK)
	Connect(a.Output(), c.Input(), BK)
	a.Output().Write("x")
	if u, _ := b.Input().Read(); u != "x" {
		t.Error("b did not receive broadcast unit")
	}
	if u, _ := c.Input().Read(); u != "x" {
		t.Error("c did not receive broadcast unit")
	}
}

func TestPortCloseDrains(t *testing.T) {
	env := NewEnv()
	a := env.NewProcess("a", nil)
	b := env.NewProcess("b", nil)
	Connect(a.Output(), b.Input(), BK)
	a.Output().Write(1)
	b.Input().Close()
	if u, ok := b.Input().Read(); !ok || u.(int) != 1 {
		t.Fatalf("pre-close unit not drained: %v %v", u, ok)
	}
	if _, ok := b.Input().Read(); ok {
		t.Fatal("read on drained closed port returned a unit")
	}
}

func TestProcessReferenceAsUnit(t *testing.T) {
	env := NewEnv()
	coord := env.NewProcess("coord", nil)
	master := env.NewProcess("master", nil)
	worker := env.NewProcess("worker", func(self *Process) {})
	Connect(coord.Output(), master.Input(), BK)
	coord.Output().Write(worker) // &worker flows through the stream
	u, _ := master.Input().Read()
	ref := u.(*Process)
	if ref != worker {
		t.Fatal("process reference mangled in transit")
	}
	ref.Activate()
	ref.Terminated()
}

func TestEventBroadcastToObservers(t *testing.T) {
	env := NewEnv()
	coord := env.NewProcess("coord", nil)
	coord.Observe("create_pool")
	bystander := env.NewProcess("bystander", nil)
	master := env.NewProcess("master", nil)
	master.Raise("create_pool")
	occ := coord.Wait(On("create_pool"))
	if occ.Source != master {
		t.Fatalf("occurrence source = %v, want master", occ.Source)
	}
	if n := len(bystander.Memory().Pending()); n != 0 {
		t.Fatalf("non-observing process accumulated %d occurrences", n)
	}
}

func TestWaitPriorityOrder(t *testing.T) {
	// With both create_worker and rendezvous pending, the prioritized
	// label list must pick create_worker even though rendezvous arrived
	// first (the paper's `priority create_worker > rendezvous`).
	env := NewEnv()
	coord := env.NewProcess("coord", nil)
	coord.Observe("create_worker", "rendezvous")
	m := env.NewProcess("master", nil)
	m.Raise("rendezvous")
	m.Raise("create_worker")
	occ := coord.Wait(On("create_worker"), On("rendezvous"))
	if occ.Event != "create_worker" {
		t.Fatalf("got %v, want create_worker first", occ)
	}
	occ = coord.Wait(On("create_worker"), On("rendezvous"))
	if occ.Event != "rendezvous" {
		t.Fatalf("got %v, want rendezvous second", occ)
	}
}

func TestWaitFIFOWithinLabel(t *testing.T) {
	env := NewEnv()
	coord := env.NewProcess("coord", nil)
	coord.Observe("death_worker")
	w1 := env.NewProcess("w1", nil)
	w2 := env.NewProcess("w2", nil)
	w1.Raise("death_worker")
	w2.Raise("death_worker")
	if occ := coord.Wait(On("death_worker")); occ.Source != w1 {
		t.Fatalf("first occurrence from %v, want w1", occ.Source)
	}
	if occ := coord.Wait(On("death_worker")); occ.Source != w2 {
		t.Fatalf("second occurrence from %v, want w2", occ.Source)
	}
}

func TestWaitSourceFilter(t *testing.T) {
	env := NewEnv()
	coord := env.NewProcess("coord", nil)
	coord.Observe("finished")
	m1 := env.NewProcess("m1", nil)
	m2 := env.NewProcess("m2", nil)
	m1.Raise("finished")
	m2.Raise("finished")
	occ := coord.Wait(From("finished", m2))
	if occ.Source != m2 {
		t.Fatalf("source filter ignored: got %v", occ.Source)
	}
}

func TestPostIsLocal(t *testing.T) {
	env := NewEnv()
	a := env.NewProcess("a", nil)
	b := env.NewProcess("b", nil)
	b.Observe("begin")
	a.Post("begin") // post goes only to a's own memory
	if n := len(b.Memory().Pending()); n != 0 {
		t.Fatalf("post leaked to another process (%d occurrences)", n)
	}
	occ := a.Wait(On("begin"))
	if occ.Event != "begin" {
		t.Fatalf("got %v", occ)
	}
}

func TestWaitBlocksUntilRaise(t *testing.T) {
	env := NewEnv()
	coord := env.NewProcess("coord", nil)
	coord.Observe("go")
	m := env.NewProcess("m", nil)
	got := make(chan Occurrence, 1)
	go func() { got <- coord.Wait(On("go")) }()
	select {
	case <-got:
		t.Fatal("Wait returned before event was raised")
	case <-time.After(10 * time.Millisecond):
	}
	m.Raise("go")
	select {
	case occ := <-got:
		if occ.Event != "go" {
			t.Fatalf("got %v", occ)
		}
	case <-time.After(time.Second):
		t.Fatal("Wait never woke up")
	}
}

func TestManyWorkersConcurrent(t *testing.T) {
	// A coordinator-shaped stress test: 50 workers each write a unit and
	// raise death_worker; a collector must see all 50 of each.
	env := NewEnv()
	coord := env.NewProcess("coord", nil)
	coord.Observe("death_worker")
	sink := env.NewProcess("sink", nil)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		w := env.NewProcess(fmt.Sprintf("w%d", i), func(self *Process) {
			self.Output().Write(self.Name())
			self.Raise("death_worker")
		})
		Connect(w.Output(), sink.Input(), KK)
		wg.Add(1)
		go func() { defer wg.Done(); w.Activate() }()
	}
	wg.Wait()
	for i := 0; i < 50; i++ {
		coord.Wait(On("death_worker"))
		if _, ok := sink.Input().Read(); !ok {
			t.Fatal("missing unit")
		}
	}
	env.Wait()
	if sink.Input().Len() != 0 {
		t.Fatalf("extra units: %d", sink.Input().Len())
	}
}

func TestStreamFIFOOrder(t *testing.T) {
	env := NewEnv()
	a := env.NewProcess("a", nil)
	b := env.NewProcess("b", nil)
	Connect(a.Output(), b.Input(), BK)
	const n = 200
	for i := 0; i < n; i++ {
		a.Output().Write(i)
	}
	for i := 0; i < n; i++ {
		u, _ := b.Input().Read()
		if u.(int) != i {
			t.Fatalf("unit %d arrived as %v; stream not FIFO", i, u)
		}
	}
}

func TestTryRead(t *testing.T) {
	env := NewEnv()
	p := env.NewProcess("p", nil)
	if _, ok := p.Input().TryRead(); ok {
		t.Fatal("TryRead on empty port succeeded")
	}
	p.Input().deposit(7)
	if u, ok := p.Input().TryRead(); !ok || u.(int) != 7 {
		t.Fatalf("TryRead = %v, %v", u, ok)
	}
}

package lang

import (
	"strings"
	"testing"
)

func checkSrc(t *testing.T, srcs ...string) error {
	t.Helper()
	var progs []*Program
	for i, s := range srcs {
		p, err := Parse("t.m", s)
		if err != nil {
			t.Fatalf("parse %d: %v", i, err)
		}
		progs = append(progs, p)
	}
	_, err := Check(progs...)
	return err
}

func TestCheckAcceptsPaperSources(t *testing.T) {
	proto := readTestdata(t, "protocolMW.m")
	main := readTestdata(t, "mainprog.m")
	if err := checkSrc(t, proto, main); err != nil {
		t.Fatalf("paper sources rejected: %v", err)
	}
}

func TestCheckMissingBeginState(t *testing.T) {
	err := checkSrc(t, "manifold M() { go_on: halt. }")
	if err == nil || !strings.Contains(err.Error(), "begin state") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckRedeclaration(t *testing.T) {
	err := checkSrc(t, "manifold W(event) atomic. manifold W(event) atomic.")
	if err == nil || !strings.Contains(err.Error(), "redeclared") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckUnknownManifoldInProcessDecl(t *testing.T) {
	err := checkSrc(t, `manifold M() {
		process w is Nowhere().
		begin: halt.
	}`)
	if err == nil || !strings.Contains(err.Error(), "unknown manifold") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckCallArity(t *testing.T) {
	err := checkSrc(t, `
		manner N(event e) { begin: halt. }
		manifold M() { begin: N(). }
	`)
	if err == nil || !strings.Contains(err.Error(), "expects 1 arguments") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckUnknownCall(t *testing.T) {
	err := checkSrc(t, "manifold M() { begin: Phantom(1). }")
	if err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckPriorityMustNameLabels(t *testing.T) {
	err := checkSrc(t, `manifold M() {
		priority a > b.
		begin: halt.
	}`)
	if err == nil || !strings.Contains(err.Error(), "priority") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckTerminatedMustBeLast(t *testing.T) {
	err := checkSrc(t, `manifold M() {
		begin: (terminated(void), preemptall).
	}`)
	if err == nil || !strings.Contains(err.Error(), "final action") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckStreamEndpointScope(t *testing.T) {
	err := checkSrc(t, `manifold M() {
		begin: ghost -> phantom.
	}`)
	if err == nil || !strings.Contains(err.Error(), "not in scope") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckRefOnlyStartsChain(t *testing.T) {
	err := checkSrc(t, `manifold M(process a, process b) {
		begin: a -> &b.
	}`)
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestCheckAtomicWithBodyRejected(t *testing.T) {
	// The parser cannot even produce this (atomic consumes the dot), so
	// assert the parse fails cleanly.
	if _, err := Parse("t.m", "manifold W() atomic { begin: halt. }"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestCheckGlobalEventsUsable(t *testing.T) {
	err := checkSrc(t, `
		event go_ahead.
		manifold M() { begin: raise(go_ahead). }
	`)
	if err != nil {
		t.Fatalf("global event not usable: %v", err)
	}
}

func TestCheckInternalEventsUsable(t *testing.T) {
	err := checkSrc(t, `
		manifold A(port in p) atomic {internal. event ping}.
		manifold M() { begin: raise(ping). }
	`)
	if err != nil {
		t.Fatalf("internal event not usable: %v", err)
	}
}

package lang

import (
	"errors"
	"fmt"
)

// Builtins are names known to the runtime without declaration.
var Builtins = map[string]bool{
	"variable": true, // the predefined variable manifold
	"void":     true, // the special never-terminating process
}

// primitives usable as calls or bare actions in state bodies.
var primitives = map[string]bool{
	"post": true, "raise": true, "terminated": true, "halt": true,
	"preemptall": true, "MES": true, "IDLE": true,
}

// Checker verifies a set of parsed programs: unique top-level names,
// resolvable references, arity of manner/manifold calls, the mandatory
// begin state in every block, and the subset restriction that blocking
// actions (terminated) end their state body.
type Checker struct {
	decls  map[string]*TopDecl
	events map[string]bool // globally declared event names
	errs   []error
}

// Check analyses the programs together (as if concatenated by #include)
// and returns all problems found.
func Check(progs ...*Program) (map[string]*TopDecl, error) {
	c := &Checker{decls: make(map[string]*TopDecl), events: map[string]bool{"begin": true, "end": true}}
	for _, prog := range progs {
		for _, d := range prog.Decls {
			switch d.Kind {
			case DeclEvent:
				for _, n := range d.Events {
					c.events[n] = true
				}
				continue
			default:
				for _, n := range d.Internal {
					c.events[n] = true
				}
				if prev, ok := c.decls[d.Name]; ok {
					c.errorf(d.Pos, "%s redeclared (previously at %s)", d.Name, prev.Pos)
					continue
				}
				c.decls[d.Name] = d
			}
		}
	}
	for _, prog := range progs {
		for _, d := range prog.Decls {
			c.checkDecl(d)
		}
	}
	if len(c.errs) > 0 {
		return c.decls, errors.Join(c.errs...)
	}
	return c.decls, nil
}

func (c *Checker) errorf(pos Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

type checkScope struct {
	parent *checkScope
	names  map[string]ParamKind // crude: name -> kind-ish
}

func (s *checkScope) lookup(n string) (ParamKind, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if k, ok := cur.names[n]; ok {
			return k, true
		}
	}
	return 0, false
}

func (s *checkScope) child() *checkScope {
	return &checkScope{parent: s, names: map[string]ParamKind{}}
}

func (c *Checker) checkDecl(d *TopDecl) {
	switch d.Kind {
	case DeclEvent:
		return
	case DeclManifold, DeclManner:
		if d.Atomic {
			if d.Body != nil {
				c.errorf(d.Pos, "%s: atomic declaration cannot have a body", d.Name)
			}
			return
		}
		if d.Body == nil {
			c.errorf(d.Pos, "%s: missing body", d.Name)
			return
		}
		sc := &checkScope{names: map[string]ParamKind{}}
		for _, prm := range d.Params {
			if prm.Name != "" {
				sc.names[prm.Name] = prm.Kind
			}
		}
		c.checkBlock(d, d.Body, sc)
	}
}

func (c *Checker) checkBlock(d *TopDecl, b *Block, outer *checkScope) {
	sc := outer.child()
	// Declarations first.
	for _, bd := range b.Decls {
		switch bd.Kind {
		case BDEvent:
			for _, n := range bd.Names {
				sc.names[n] = ParamEvent
			}
		case BDProcess:
			if !c.knownManifold(sc, bd.TypeName) {
				c.errorf(bd.Pos, "process %s: unknown manifold %q", bd.ProcName, bd.TypeName)
			}
			for _, a := range bd.Args {
				c.checkExpr(d, a, sc)
			}
			sc.names[bd.ProcName] = ParamProcess
		case BDPriority:
			// Both names must be events handled by this block.
			handled := map[string]bool{}
			for _, n := range b.EventNames() {
				handled[n] = true
			}
			for _, n := range bd.Names {
				if !handled[n] {
					c.errorf(bd.Pos, "priority names %q which is not a state label of this block", n)
				}
			}
		case BDStreamType:
			c.checkStream(d, bd.Stream, sc, true)
		}
	}
	// The mandatory begin state.
	hasBegin := false
	for _, s := range b.States {
		for _, l := range s.Labels {
			if l.Event == "begin" {
				hasBegin = true
			}
		}
	}
	if !hasBegin {
		c.errorf(b.Pos, "%s: block has no begin state", d.Name)
	}
	for _, s := range b.States {
		c.checkBody(d, s.Body, sc)
	}
}

func (c *Checker) knownManifold(sc *checkScope, name string) bool {
	if Builtins[name] {
		return true
	}
	if k, ok := sc.lookup(name); ok {
		return k == ParamManifold
	}
	dd, ok := c.decls[name]
	return ok && dd.Kind == DeclManifold
}

func (c *Checker) checkBody(d *TopDecl, body StateBody, sc *checkScope) {
	switch b := body.(type) {
	case nil:
	case *Block:
		c.checkBlock(d, b, sc)
	case *Group:
		for i, a := range b.Actions {
			c.checkStmt(d, a, sc, i == len(b.Actions)-1)
		}
	case *Seq:
		for i, a := range b.Stmts {
			c.checkStmt(d, a, sc, i == len(b.Stmts)-1)
		}
	}
}

func (c *Checker) checkStmt(d *TopDecl, st Stmt, sc *checkScope, last bool) {
	switch s := st.(type) {
	case *Assign:
		if _, ok := sc.lookup(s.Name); !ok {
			c.errorf(s.Pos, "assignment to undeclared %q", s.Name)
		}
		c.checkExpr(d, s.Expr, sc)
	case *Call:
		c.checkCall(d, s, sc, last)
	case *If:
		c.checkExpr(d, s.Cond, sc)
		c.checkBody(d, s.Then, sc)
		c.checkBody(d, s.Else, sc)
	case *StreamExpr:
		c.checkStream(d, s, sc, false)
	case *Halt, nil:
	case *NameAction:
		if !primitives[s.Name] {
			if _, ok := sc.lookup(s.Name); !ok && !c.knownName(s.Name) {
				c.errorf(s.Pos, "unknown action %q", s.Name)
			}
		}
		if s.Name == "IDLE" && !last {
			c.errorf(s.Pos, "IDLE must be the final action of its state")
		}
	case *Group, *Block, *Seq:
		c.checkBody(d, s.(StateBody), sc)
	}
}

func (c *Checker) knownName(n string) bool {
	if Builtins[n] || primitives[n] {
		return true
	}
	_, ok := c.decls[n]
	return ok
}

func (c *Checker) checkCall(d *TopDecl, s *Call, sc *checkScope, last bool) {
	switch s.Name {
	case "post", "raise":
		if len(s.Args) != 1 {
			c.errorf(s.Pos, "%s takes one event argument", s.Name)
		}
	case "terminated":
		if len(s.Args) != 1 {
			c.errorf(s.Pos, "terminated takes one process argument")
		}
		if !last {
			c.errorf(s.Pos, "terminated must be the final action of its state (subset restriction)")
		}
	case "MES":
		// any arguments
	default:
		// A manner or manifold call.
		if k, ok := sc.lookup(s.Name); ok {
			if k != ParamManifold && k != ParamProcess {
				c.errorf(s.Pos, "%q is not callable", s.Name)
			}
		} else if dd, ok := c.decls[s.Name]; ok {
			if len(dd.Params) != len(s.Args) {
				c.errorf(s.Pos, "%s expects %d arguments, got %d", s.Name, len(dd.Params), len(s.Args))
			}
		} else {
			c.errorf(s.Pos, "call to unknown %q", s.Name)
		}
	}
	for _, a := range s.Args {
		c.checkExpr(d, a, sc)
	}
}

func (c *Checker) checkStream(d *TopDecl, se *StreamExpr, sc *checkScope, decl bool) {
	if se == nil {
		return
	}
	for i, t := range se.Terms {
		if t.Ref && i != 0 {
			c.errorf(t.Pos, "&%s: a reference can only start a stream chain", t.Name)
		}
		if _, ok := sc.lookup(t.Name); ok {
			continue
		}
		if c.knownName(t.Name) {
			continue
		}
		c.errorf(t.Pos, "stream endpoint %q is not in scope", t.Name)
	}
}

func (c *Checker) checkExpr(d *TopDecl, e Expr, sc *checkScope) {
	switch x := e.(type) {
	case *Name:
		if _, ok := sc.lookup(x.Name); ok {
			return
		}
		if c.knownName(x.Name) || c.events[x.Name] {
			return
		}
		c.errorf(x.Pos, "unknown name %q", x.Name)
	case *Unary:
		c.checkExpr(d, x.X, sc)
	case *Binary:
		c.checkExpr(d, x.L, sc)
		c.checkExpr(d, x.R, sc)
	case *CallExpr:
		if _, ok := sc.lookup(x.Name); !ok && !c.knownName(x.Name) {
			c.errorf(x.Pos, "call to unknown %q", x.Name)
		}
		for _, a := range x.Args {
			c.checkExpr(d, a, sc)
		}
	}
}

package lang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse("test.m", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestParseAtomicManifold(t *testing.T) {
	p := mustParse(t, "manifold Worker(event) atomic.")
	if len(p.Decls) != 1 {
		t.Fatalf("%d decls", len(p.Decls))
	}
	d := p.Decls[0]
	if d.Name != "Worker" || !d.Atomic || d.Kind != DeclManifold {
		t.Fatalf("decl = %+v", d)
	}
	if len(d.Params) != 1 || d.Params[0].Kind != ParamEvent {
		t.Fatalf("params = %+v", d.Params)
	}
}

func TestParseAtomicWithInternalEvents(t *testing.T) {
	p := mustParse(t, `manifold Master(port in p)
		port in dataport.
		atomic {internal. event create_pool, finished}.`)
	d := p.Decls[0]
	if !d.Atomic {
		t.Fatal("not atomic")
	}
	if len(d.Ports) != 1 || d.Ports[0].Name != "dataport" || !d.Ports[0].In {
		t.Fatalf("ports = %+v", d.Ports)
	}
	if len(d.Internal) != 2 || d.Internal[0] != "create_pool" {
		t.Fatalf("internal = %v", d.Internal)
	}
}

func TestParseMannerWithPortSignature(t *testing.T) {
	p := mustParse(t, `manner M(process master <input, dataport / output, error>, manifold W(event)) {
		begin: halt.
	}`)
	d := p.Decls[0]
	if d.Kind != DeclManner {
		t.Fatal("not a manner")
	}
	prm := d.Params[0]
	if prm.Kind != ParamProcess || prm.Name != "master" {
		t.Fatalf("param = %+v", prm)
	}
	if len(prm.InPorts) != 2 || prm.InPorts[1] != "dataport" {
		t.Fatalf("in ports = %v", prm.InPorts)
	}
	if len(prm.OutPorts) != 2 || prm.OutPorts[0] != "output" {
		t.Fatalf("out ports = %v", prm.OutPorts)
	}
	if d.Params[1].Kind != ParamManifold || len(d.Params[1].SubTypes) != 1 {
		t.Fatalf("manifold param = %+v", d.Params[1])
	}
}

func TestParseBlockDecls(t *testing.T) {
	p := mustParse(t, `manner M() {
		save *.
		ignore death_worker.
		auto process now is variable(0).
		event death_worker.
		priority a > b.
		begin: halt.
		a: halt.
		b: halt.
	}`)
	b := p.Decls[0].Body
	if len(b.Decls) != 5 {
		t.Fatalf("%d decls", len(b.Decls))
	}
	if b.Decls[0].Kind != BDSave || b.Decls[0].Names[0] != "*" {
		t.Fatalf("save decl = %+v", b.Decls[0])
	}
	pd := b.Decls[2]
	if pd.Kind != BDProcess || !pd.Auto || pd.ProcName != "now" || pd.TypeName != "variable" {
		t.Fatalf("process decl = %+v", pd)
	}
	if n, ok := pd.Args[0].(*Num); !ok || n.Value != 0 {
		t.Fatalf("process args = %+v", pd.Args)
	}
	if b.Decls[4].Kind != BDPriority || b.Decls[4].Names[0] != "a" || b.Decls[4].Names[1] != "b" {
		t.Fatalf("priority decl = %+v", b.Decls[4])
	}
}

func TestParseStreamTypeDecl(t *testing.T) {
	p := mustParse(t, `manner M(process master <input / output>, manifold W(event)) {
		process worker is W(e).
		stream KK worker -> master.dataport.
		begin: halt.
	}`)
	b := p.Decls[0].Body
	sd := b.Decls[1]
	if sd.Kind != BDStreamType || !sd.StreamKK {
		t.Fatalf("stream decl = %+v", sd)
	}
	terms := sd.Stream.Terms
	if terms[0].Name != "worker" || terms[1].Name != "master" || terms[1].Port != "dataport" {
		t.Fatalf("terms = %+v", terms)
	}
}

func TestParseStateWithGroup(t *testing.T) {
	p := mustParse(t, `manifold M() {
		begin: (MES("begin"), preemptall, terminated(void)).
	}`)
	st := p.Decls[0].Body.States[0]
	g, ok := st.Body.(*Group)
	if !ok {
		t.Fatalf("body is %T", st.Body)
	}
	if len(g.Actions) != 3 {
		t.Fatalf("%d actions", len(g.Actions))
	}
	if c, ok := g.Actions[2].(*Call); !ok || c.Name != "terminated" {
		t.Fatalf("last action = %+v", g.Actions[2])
	}
}

func TestParseSeqAndIf(t *testing.T) {
	p := mustParse(t, `manifold M() {
		begin: t = t + 1;
			if (t < now) then (
				post(begin)
			) else (
				post(end)
			).
	}`)
	st := p.Decls[0].Body.States[0]
	seq, ok := st.Body.(*Seq)
	if !ok {
		t.Fatalf("body is %T", st.Body)
	}
	if len(seq.Stmts) != 2 {
		t.Fatalf("%d stmts", len(seq.Stmts))
	}
	ifs, ok := seq.Stmts[1].(*If)
	if !ok {
		t.Fatalf("second stmt is %T", seq.Stmts[1])
	}
	if ifs.Else == nil {
		t.Fatal("missing else branch")
	}
	b, ok := ifs.Cond.(*Binary)
	if !ok || b.Op != "<" {
		t.Fatalf("cond = %+v", ifs.Cond)
	}
}

func TestParseStreamChainWithRef(t *testing.T) {
	p := mustParse(t, `manifold M() {
		begin: (&worker -> master -> worker -> master.dataport, terminated(void)).
	}`)
	g := p.Decls[0].Body.States[0].Body.(*Group)
	se, ok := g.Actions[0].(*StreamExpr)
	if !ok {
		t.Fatalf("first action is %T", g.Actions[0])
	}
	if len(se.Terms) != 4 {
		t.Fatalf("%d terms", len(se.Terms))
	}
	if !se.Terms[0].Ref || se.Terms[0].Name != "worker" {
		t.Fatalf("first term = %+v", se.Terms[0])
	}
	if se.Terms[3].Port != "dataport" {
		t.Fatalf("last term = %+v", se.Terms[3])
	}
}

func TestParseNestedBlockState(t *testing.T) {
	p := mustParse(t, `manner M() {
		begin: halt.
		create_worker: {
			process w is W(e).
			begin: terminated(void).
		}.
	}`)
	st := p.Decls[0].Body.States[1]
	blk, ok := st.Body.(*Block)
	if !ok {
		t.Fatalf("body is %T", st.Body)
	}
	if len(blk.Decls) != 1 || len(blk.States) != 1 {
		t.Fatalf("inner block: %d decls, %d states", len(blk.Decls), len(blk.States))
	}
}

func TestParseMannerCallWithInstantiation(t *testing.T) {
	p := mustParse(t, `manifold Main(process argv) {
		begin: ProtocolMW(Master(argv), Worker).
	}`)
	seq := p.Decls[0].Body.States[0].Body.(*Seq)
	c := seq.Stmts[0].(*Call)
	if c.Name != "ProtocolMW" || len(c.Args) != 2 {
		t.Fatalf("call = %+v", c)
	}
	if ce, ok := c.Args[0].(*CallExpr); !ok || ce.Name != "Master" {
		t.Fatalf("arg 0 = %+v", c.Args[0])
	}
	if n, ok := c.Args[1].(*Name); !ok || n.Name != "Worker" {
		t.Fatalf("arg 1 = %+v", c.Args[1])
	}
}

func TestParseGlobalEventDecl(t *testing.T) {
	p := mustParse(t, "event create_pool, finished.")
	d := p.Decls[0]
	if d.Kind != DeclEvent || len(d.Events) != 2 {
		t.Fatalf("decl = %+v", d)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"manifold",                       // missing name
		"manner M( {",                    // bad params
		"manifold M() { }",               // fine? no states -> allowed by parser; checker flags
		"manifold M() { begin halt. }",   // missing colon
		"manifold M() { begin: a -> . }", // bad stream
	} {
		_, err := Parse("t.m", src)
		if src == "manifold M() { }" {
			if err != nil {
				t.Errorf("empty block should parse (checker rejects): %v", err)
			}
			continue
		}
		if err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParsePaperProtocolFile(t *testing.T) {
	src := readTestdata(t, "protocolMW.m")
	p := mustParse(t, src)
	names := map[string]*TopDecl{}
	for _, d := range p.Decls {
		if d.Name != "" {
			names[d.Name] = d
		}
	}
	cwp, ok := names["Create_Worker_Pool"]
	if !ok {
		t.Fatal("Create_Worker_Pool missing")
	}
	if len(cwp.Body.States) != 4 { // begin, create_worker, rendezvous, end
		t.Fatalf("Create_Worker_Pool has %d states", len(cwp.Body.States))
	}
	pmw, ok := names["ProtocolMW"]
	if !ok || !pmw.Export {
		t.Fatal("ProtocolMW missing or not exported")
	}
	if len(pmw.Body.States) != 3 { // begin, create_pool, finished
		t.Fatalf("ProtocolMW has %d states", len(pmw.Body.States))
	}
}

func TestParsePaperMainFile(t *testing.T) {
	src := readTestdata(t, "mainprog.m")
	p := mustParse(t, src)
	if len(p.Directives) == 0 || !strings.Contains(p.Directives[0].Text, "protocolMW.h") {
		t.Fatalf("directives = %+v", p.Directives)
	}
	var main *TopDecl
	for _, d := range p.Decls {
		if d.Name == "Main" {
			main = d
		}
	}
	if main == nil || main.Body == nil {
		t.Fatal("Main missing")
	}
}

func TestDeclString(t *testing.T) {
	p := mustParse(t, "manifold Worker(event) atomic.")
	s := p.Decls[0].String()
	if !strings.Contains(s, "manifold Worker(event) atomic") {
		t.Fatalf("String() = %q", s)
	}
}

package lang

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Lex("test.m", src)
	if err != nil {
		t.Fatal(err)
	}
	var out []Kind
	for _, tok := range toks {
		out = append(out, tok.Kind)
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	got := kinds(t, "manifold Main(process argv) { begin: halt. }")
	want := []Kind{IDENT, IDENT, LPAREN, IDENT, IDENT, RPAREN, LBRACE,
		IDENT, COLON, IDENT, DOT, RBRACE, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexArrowVsMinus(t *testing.T) {
	got := kinds(t, "a -> b - c")
	want := []Kind{IDENT, ARROW, IDENT, MINUS, IDENT, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestLexComparisons(t *testing.T) {
	got := kinds(t, "t < now <= x >= y == z != w > v")
	want := []Kind{IDENT, LT, IDENT, LE, IDENT, GE, IDENT, EQ, IDENT, NE, IDENT, GT, IDENT, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `// line comment
	a /* block
	comment */ b`
	got := kinds(t, src)
	want := []Kind{IDENT, IDENT, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := Lex("t.m", "/* open"); err == nil {
		t.Fatal("expected error")
	}
}

func TestLexString(t *testing.T) {
	toks, err := Lex("t.m", `MES("create_worker: begin")`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != STRING || toks[2].Text != "create_worker: begin" {
		t.Fatalf("string token = %v", toks[2])
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex("t.m", `"a\nb\"c"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\nb\"c" {
		t.Fatalf("got %q", toks[0].Text)
	}
	if _, err := Lex("t.m", `"unterminated`); err == nil {
		t.Fatal("expected error")
	}
}

func TestLexDirective(t *testing.T) {
	toks, err := Lex("t.m", "#include \"MBL.h\"\nmanifold")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != DIRECTIVE || !strings.Contains(toks[0].Text, "MBL.h") {
		t.Fatalf("directive token = %v", toks[0])
	}
	if toks[1].Kind != IDENT {
		t.Fatalf("after directive: %v", toks[1])
	}
}

func TestLexNumberThenDot(t *testing.T) {
	// `variable(0).` — the dot terminates the statement, it is not part of
	// the number.
	got := kinds(t, "variable(0).")
	want := []Kind{IDENT, LPAREN, NUMBER, RPAREN, DOT, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("f.m", "a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := Lex("t.m", "a $ b"); err == nil {
		t.Fatal("expected error for $")
	}
}

func TestLexPaperSnippet(t *testing.T) {
	// A verbatim line from the paper's protocolMW.m.
	src := "stream KK worker -> master.dataport."
	got := kinds(t, src)
	want := []Kind{IDENT, IDENT, IDENT, ARROW, IDENT, DOT, IDENT, DOT, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: %v, want %v (all %v)", i, got[i], want[i], got)
		}
	}
}

package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer turns MANIFOLD source text into tokens.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
	file string
}

// NewLexer creates a lexer for src; file is used in positions.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1, file: file}
}

// Lex tokenizes the whole input.
func Lex(file, src string) ([]Token, error) {
	lx := NewLexer(file, src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) at() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) errorf(pos Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	for l.pos < len(l.src) {
		switch r := l.peek(); {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			pos := l.at()
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return Token{}, l.errorf(pos, "unterminated block comment")
			}
		default:
			return l.lexToken()
		}
	}
	return Token{Kind: EOF, Pos: l.at()}, nil
}

func (l *Lexer) lexToken() (Token, error) {
	pos := l.at()
	r := l.peek()
	switch {
	case r == '#':
		// Directive: the whole line (e.g. #include "protocolMW.h").
		var sb strings.Builder
		for l.pos < len(l.src) && l.peek() != '\n' {
			sb.WriteRune(l.advance())
		}
		return Token{Kind: DIRECTIVE, Text: strings.TrimSpace(sb.String()), Pos: pos}, nil
	case unicode.IsLetter(r) || r == '_':
		var sb strings.Builder
		for l.pos < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
			sb.WriteRune(l.advance())
		}
		return Token{Kind: IDENT, Text: sb.String(), Pos: pos}, nil
	case unicode.IsDigit(r):
		var sb strings.Builder
		for l.pos < len(l.src) && (unicode.IsDigit(l.peek()) || l.peek() == '.') {
			// A dot is part of the number only when followed by a digit;
			// otherwise it is the statement terminator.
			if l.peek() == '.' && !unicode.IsDigit(l.peek2()) {
				break
			}
			sb.WriteRune(l.advance())
		}
		return Token{Kind: NUMBER, Text: sb.String(), Pos: pos}, nil
	case r == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errorf(pos, "unterminated string literal")
			}
			c := l.advance()
			if c == '"' {
				return Token{Kind: STRING, Text: sb.String(), Pos: pos}, nil
			}
			if c == '\\' && l.pos < len(l.src) {
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteRune('\n')
				case 't':
					sb.WriteRune('\t')
				case '"', '\\':
					sb.WriteRune(esc)
				default:
					return Token{}, l.errorf(pos, "unknown escape \\%c", esc)
				}
				continue
			}
			sb.WriteRune(c)
		}
	}
	// Operators and punctuation.
	two := func(kind Kind, text string) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: kind, Text: text, Pos: pos}, nil
	}
	one := func(kind Kind) (Token, error) {
		l.advance()
		return Token{Kind: kind, Text: kindNames[kind], Pos: pos}, nil
	}
	switch r {
	case '{':
		return one(LBRACE)
	case '}':
		return one(RBRACE)
	case '(':
		return one(LPAREN)
	case ')':
		return one(RPAREN)
	case ',':
		return one(COMMA)
	case '.':
		return one(DOT)
	case ';':
		return one(SEMI)
	case ':':
		return one(COLON)
	case '&':
		return one(AMP)
	case '+':
		return one(PLUS)
	case '*':
		return one(STAR)
	case '/':
		return one(SLASH)
	case '-':
		if l.peek2() == '>' {
			return two(ARROW, "->")
		}
		return one(MINUS)
	case '=':
		if l.peek2() == '=' {
			return two(EQ, "==")
		}
		return one(ASSIGN)
	case '<':
		if l.peek2() == '=' {
			return two(LE, "<=")
		}
		return one(LT)
	case '>':
		if l.peek2() == '=' {
			return two(GE, ">=")
		}
		return one(GT)
	case '!':
		if l.peek2() == '=' {
			return two(NE, "!=")
		}
	}
	return Token{}, l.errorf(pos, "unexpected character %q", r)
}

package lang

import (
	"strings"
	"testing"
	"time"

	"repro/internal/manifold"
)

func TestVarValCell(t *testing.T) {
	v := &VarVal{}
	if v.Get() != 0 {
		t.Fatal("fresh variable not zero")
	}
	v.Set(42)
	if v.Get() != 42 {
		t.Fatal("set/get broken")
	}
}

func TestArithmeticOperators(t *testing.T) {
	// Exercise every operator through a chain of variable updates.
	src := `
		event go_on.
		manifold Kick(event) atomic.
		manifold Main() {
			auto process a is variable(7).
			auto process k is Kick(0).
			begin: terminated(void).
			go_on: a = a * 2;
				a = a - 4;
				a = a / 5;
				a = -a + 3;
				if (a == 1) then (MES("eq-ok"));
				if (a != 0) then (MES("ne-ok"));
				if (a >= 1) then (MES("ge-ok"));
				if (a <= 1) then (MES("le-ok"));
				if (a > 0) then (MES("gt-ok"));
				halt.
		}
	`
	it := interpFor(t, src)
	if err := it.RegisterAtomic("Kick", func(p *manifold.Process, args []Value) {
		p.Raise("go_on")
	}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	it.Output = &sb
	runWithTimeout(t, 5*time.Second, func() error { return it.Run("Main") })
	// a = ((7*2)-4)/5 = 2; a = -2+3 = 1.
	for _, want := range []string{"eq-ok", "ne-ok", "ge-ok", "le-ok", "gt-ok"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("missing %q in output %q", want, sb.String())
		}
	}
}

func TestSeqOfIfWithoutElse(t *testing.T) {
	src := `
		manifold Main() {
			auto process a is variable(1).
			begin: if (a < 0) then (MES("neg")); MES("after"); halt.
		}
	`
	it := interpFor(t, src)
	var sb strings.Builder
	it.Output = &sb
	runWithTimeout(t, 5*time.Second, func() error { return it.Run("Main") })
	if strings.Contains(sb.String(), "neg") || !strings.Contains(sb.String(), "after") {
		t.Fatalf("output = %q", sb.String())
	}
}

func TestRunArityMismatch(t *testing.T) {
	it := interpFor(t, `manifold Main(process argv) { begin: halt. }`)
	if err := it.Run("Main"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestRunMannerDirectlyRejected(t *testing.T) {
	it := interpFor(t, `
		manner M() { begin: halt. }
		manifold Main() { begin: halt. }
	`)
	if err := it.Run("M"); err == nil {
		t.Fatal("running a manner as a manifold succeeded")
	}
}

func TestUnregisteredAtomicFailsAtInstantiation(t *testing.T) {
	it := interpFor(t, `
		manifold W(event) atomic.
		event done.
		manifold Main() {
			auto process w is W(done).
			begin: halt.
		}
	`)
	// The atomic body is missing; instantiation inside the interpreted
	// block raises a runtime error, which Run surfaces as an error.
	done := make(chan error, 1)
	go func() { done <- it.Run("Main") }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "no registered Go body") {
			t.Fatalf("err = %v, want unregistered-atomic failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
}

func TestLabelClosureCrossesManners(t *testing.T) {
	it := interpFor(t, `
		event deep_event.
		manner Inner() {
			begin: halt.
			deep_event: halt.
		}
		manner Outer() { begin: Inner(). }
		manifold Main() { begin: Outer(). }
	`)
	d := it.decls["Main"]
	names := it.labelClosure(d)
	found := false
	for _, n := range names {
		if n == "deep_event" {
			found = true
		}
	}
	if !found {
		t.Fatalf("label closure %v misses deep_event (two manner hops)", names)
	}
}

func TestMESWithValues(t *testing.T) {
	src := `
		manifold Main() {
			auto process n is variable(9).
			begin: MES("n is", n); halt.
		}
	`
	it := interpFor(t, src)
	var sb strings.Builder
	it.Output = &sb
	runWithTimeout(t, 5*time.Second, func() error { return it.Run("Main") })
	if !strings.Contains(sb.String(), "9") {
		t.Fatalf("output = %q", sb.String())
	}
}

func TestStreamBetweenDeclaredProcesses(t *testing.T) {
	// A plain (non-&) stream chain with explicit ports.
	src := `
		manifold Src(port in p) atomic.
		manifold Dst(port in p) atomic.
		manifold Main() {
			auto process a is Src(0).
			auto process b is Dst(0).
			begin: (a.output -> b.input, terminated(b)).
		}
	`
	it := interpFor(t, src)
	got := ""
	if err := it.RegisterAtomic("Src", func(p *manifold.Process, args []Value) {
		p.Output().Write("payload")
	}); err != nil {
		t.Fatal(err)
	}
	if err := it.RegisterAtomic("Dst", func(p *manifold.Process, args []Value) {
		u, ok := p.Input().Read()
		if ok {
			got = u.(string)
		}
	}); err != nil {
		t.Fatal(err)
	}
	runWithTimeout(t, 5*time.Second, func() error { return it.Run("Main") })
	if got != "payload" {
		t.Fatalf("got %q", got)
	}
}

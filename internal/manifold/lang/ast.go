package lang

import "strings"

// Program is a parsed MANIFOLD source file.
type Program struct {
	File       string
	Directives []Directive
	Decls      []*TopDecl
}

// Directive is a preprocessor line (#include, #pragma).
type Directive struct {
	Pos  Pos
	Text string
}

// DeclKind distinguishes top-level declarations.
type DeclKind int

const (
	DeclManifold DeclKind = iota
	DeclManner
	DeclEvent
)

// TopDecl is a top-level declaration: a manifold, a manner, or a global
// event declaration.
type TopDecl struct {
	Pos      Pos
	Kind     DeclKind
	Export   bool
	Name     string   // manifold/manner name; empty for event decls
	Events   []string // names for DeclEvent
	Params   []Param
	Ports    []PortDecl // extra port declarations (e.g. dataport)
	Atomic   bool
	Internal []string // events listed in `atomic {internal. event ...}`
	Body     *Block   // nil for atomic declarations
}

// ParamKind classifies formal parameters.
type ParamKind int

const (
	ParamEvent ParamKind = iota
	ParamProcess
	ParamManifold
	ParamPortIn
	ParamPortOut
	ParamUntyped
)

// Param is one formal parameter of a manifold or manner.
type Param struct {
	Pos      Pos
	Kind     ParamKind
	Name     string   // may be empty (e.g. `manifold Worker(event)`)
	InPorts  []string // for ParamProcess with a port signature
	OutPorts []string
	SubTypes []ParamKind // for ParamManifold: parameter kinds of the manifold type
}

// PortDecl declares an extra port on a manifold.
type PortDecl struct {
	Pos  Pos
	In   bool
	Name string
}

// Block is `{ declarations states }`.
type Block struct {
	Pos    Pos
	Decls  []BlockDecl
	States []*State
}

// BlockDeclKind classifies block-local declarations.
type BlockDeclKind int

const (
	BDSave BlockDeclKind = iota
	BDIgnore
	BDHold
	BDPriority
	BDProcess
	BDEvent
	BDStreamType
)

// BlockDecl is one declaration in a block's local declaration part.
type BlockDecl struct {
	Pos  Pos
	Kind BlockDeclKind
	// Names: events for BDSave/BDIgnore/BDHold/BDEvent ("*" alone for
	// save *), or the two event names hi > lo for BDPriority.
	Names []string
	// Process declaration fields (BDProcess).
	Auto     bool
	ProcName string
	TypeName string
	Args     []Expr
	// Stream-type declaration fields (BDStreamType).
	StreamKK bool
	Stream   *StreamExpr
}

// State is one labelled state.
type State struct {
	Pos    Pos
	Labels []Label
	Body   StateBody
}

// Label names an event, optionally filtered by source (`event.source`).
type Label struct {
	Pos    Pos
	Event  string
	Source string // optional
}

// StateBody is a group of actions, a nested block, or a statement.
type StateBody interface{ stateBody() }

// Group is `(a, b, c)` — actions installed together in a state.
type Group struct {
	Pos     Pos
	Actions []Stmt
}

// Seq is `a; b; c` — sequential composition.
type Seq struct {
	Pos   Pos
	Stmts []Stmt
}

func (*Group) stateBody() {}
func (*Block) stateBody() {}
func (*Seq) stateBody()   {}

// Stmt is a statement (action).
type Stmt interface{ stmt() }

// Assign is `x = expr`.
type Assign struct {
	Pos  Pos
	Name string
	Expr Expr
}

// Call is `f(args)` — a primitive action, manner call, or predefined
// process action (post, raise, MES, terminated, ...).
type Call struct {
	Pos  Pos
	Name string
	Args []Expr
}

// If is `if (cond) then (...) else (...)`.
type If struct {
	Pos  Pos
	Cond Expr
	Then StateBody
	Else StateBody // may be nil
}

// StreamExpr is `a -> b -> c.port`: a chain of stream connections.
type StreamExpr struct {
	Pos   Pos
	Terms []StreamTerm
}

// StreamTerm is one endpoint in a stream chain.
type StreamTerm struct {
	Pos  Pos
	Ref  bool   // &proc: the reference itself flows as a unit
	Name string // process or variable name
	Port string // optional `.port`
}

// Halt is the `halt` primitive.
type Halt struct{ Pos Pos }

// Ident used as a bare action (e.g. `preemptall`, `IDLE` after macro
// expansion is terminated(void)).
type NameAction struct {
	Pos  Pos
	Name string
}

func (*Assign) stmt()     {}
func (*Call) stmt()       {}
func (*If) stmt()         {}
func (*StreamExpr) stmt() {}
func (*Halt) stmt()       {}
func (*NameAction) stmt() {}
func (*Group) stmt()      {}
func (*Block) stmt()      {}
func (*Seq) stmt()        {}

// Expr is an expression.
type Expr interface{ expr() }

// Num is an integer literal.
type Num struct {
	Pos   Pos
	Value int
}

// Str is a string literal.
type Str struct {
	Pos   Pos
	Value string
}

// Name is an identifier reference.
type Name struct {
	Pos  Pos
	Name string
}

// Unary is `&x` (a process reference) or `-x`.
type Unary struct {
	Pos Pos
	Op  string
	X   Expr
}

// Binary is `a op b` with op in + - * / < <= > >= == !=.
type Binary struct {
	Pos  Pos
	Op   string
	L, R Expr
}

// CallExpr is a call in expression position (e.g. variable(0)).
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

func (*Num) expr()      {}
func (*Str) expr()      {}
func (*Name) expr()     {}
func (*Unary) expr()    {}
func (*Binary) expr()   {}
func (*CallExpr) expr() {}

// EventNames returns the set of event labels a block handles.
func (b *Block) EventNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range b.States {
		for _, l := range s.Labels {
			if !seen[l.Event] {
				seen[l.Event] = true
				out = append(out, l.Event)
			}
		}
	}
	return out
}

// String renders a compact one-line summary of a declaration (for tools).
func (d *TopDecl) String() string {
	var sb strings.Builder
	if d.Export {
		sb.WriteString("export ")
	}
	switch d.Kind {
	case DeclManifold:
		sb.WriteString("manifold ")
	case DeclManner:
		sb.WriteString("manner ")
	case DeclEvent:
		sb.WriteString("event ")
		sb.WriteString(strings.Join(d.Events, ", "))
		return sb.String()
	}
	sb.WriteString(d.Name)
	sb.WriteString("(")
	for i, p := range d.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch p.Kind {
		case ParamEvent:
			sb.WriteString("event")
		case ParamProcess:
			sb.WriteString("process")
		case ParamManifold:
			sb.WriteString("manifold")
		case ParamPortIn:
			sb.WriteString("port in")
		case ParamPortOut:
			sb.WriteString("port out")
		}
		if p.Name != "" {
			sb.WriteString(" " + p.Name)
		}
	}
	sb.WriteString(")")
	if d.Atomic {
		sb.WriteString(" atomic")
	}
	return sb.String()
}

package lang

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/manifold"
)

// runWithTimeout guards interpreter tests against deadlocks.
func runWithTimeout(t *testing.T, d time.Duration, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(d):
		t.Fatal("interpreter run timed out (deadlock?)")
	}
}

func interpFor(t *testing.T, srcs ...string) *Interp {
	t.Helper()
	var progs []*Program
	for i, s := range srcs {
		p, err := Parse(fmt.Sprintf("src%d.m", i), s)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	it, err := NewInterp(progs...)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func TestRunTrivialManifold(t *testing.T) {
	it := interpFor(t, `manifold Main() { begin: MES("hello"). }`)
	var sb strings.Builder
	it.Output = &sb
	runWithTimeout(t, 5*time.Second, func() error { return it.Run("Main") })
	if !strings.Contains(sb.String(), "hello") {
		t.Fatalf("output = %q", sb.String())
	}
}

func TestRunUnknownManifold(t *testing.T) {
	it := interpFor(t, `manifold Main() { begin: halt. }`)
	if err := it.Run("Ghost"); err == nil {
		t.Fatal("expected error")
	}
}

func TestAtomicRegistrationRequired(t *testing.T) {
	it := interpFor(t, `
		manifold W(event) atomic.
		manifold Main() {
			process w is W(done).
			begin: halt.
		}
		event done.
	`)
	if err := it.RegisterAtomic("Nope", nil); err == nil {
		t.Fatal("registering unknown atomic succeeded")
	}
	if err := it.RegisterAtomic("Main", nil); err == nil {
		t.Fatal("registering non-atomic succeeded")
	}
	if err := it.RegisterAtomic("W", func(p *manifold.Process, args []Value) {}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineThroughInterpretedCoordinator(t *testing.T) {
	// A coordinator connects producer -> consumer with a stream and idles;
	// the producer's death preempts nothing (no label), so Main exits
	// after its begin completes — here begin just sets up the stream.
	src := `
		manifold Producer(port in p) atomic.
		manifold Consumer(port in p) atomic.
		manifold Main() {
			auto process prod is Producer(0).
			auto process cons is Consumer(0).
			begin: (prod -> cons, terminated(prod)).
		}
	`
	it := interpFor(t, src)
	var got []int
	var mu sync.Mutex
	if err := it.RegisterAtomic("Producer", func(p *manifold.Process, args []Value) {
		for i := 0; i < 5; i++ {
			p.Output().Write(i)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := it.RegisterAtomic("Consumer", func(p *manifold.Process, args []Value) {
		for i := 0; i < 5; i++ {
			u, ok := p.Input().Read()
			if !ok {
				return
			}
			mu.Lock()
			got = append(got, u.(int))
			mu.Unlock()
		}
	}); err != nil {
		t.Fatal(err)
	}
	runWithTimeout(t, 5*time.Second, func() error { return it.Run("Main") })
	if len(got) != 5 {
		t.Fatalf("consumer got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v", got)
		}
	}
}

func TestEventDrivenTransition(t *testing.T) {
	// An atomic pinger raises `ping`; the interpreted coordinator reacts
	// by transitioning from begin (idling) to the ping state.
	src := `
		event ping.
		manifold Pinger(event) atomic.
		manifold Main() {
			auto process p is Pinger(0).
			begin: terminated(void).
			ping: MES("got ping"); halt.
		}
	`
	it := interpFor(t, src)
	if err := it.RegisterAtomic("Pinger", func(p *manifold.Process, args []Value) {
		p.Raise("ping")
	}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	it.Output = &sb
	runWithTimeout(t, 5*time.Second, func() error { return it.Run("Main") })
	if !strings.Contains(sb.String(), "got ping") {
		t.Fatalf("output = %q", sb.String())
	}
}

func TestVariableArithmeticAndIf(t *testing.T) {
	src := `
		event tick.
		manifold Ticker(event) atomic.
		manifold Main() {
			auto process n is variable(0).
			auto process tk is Ticker(0).
			begin: terminated(void).
			tick: n = n + 1;
				MES("counting");
				if (n >= 3) then (
					MES("done counting"), halt
				).
		}
	`
	it := interpFor(t, src)
	if err := it.RegisterAtomic("Ticker", func(p *manifold.Process, args []Value) {
		for i := 0; i < 3; i++ {
			p.Raise("tick")
			time.Sleep(time.Millisecond)
		}
	}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	it.Output = &sb
	runWithTimeout(t, 5*time.Second, func() error { return it.Run("Main") })
	out := sb.String()
	if strings.Count(out, "counting") < 3 || !strings.Contains(out, "done counting") {
		t.Fatalf("output = %q", out)
	}
}

// TestVariableIfElseBranch checks the else arm of an interpreted if.
func TestVariableIfElseBranch(t *testing.T) {
	src := `
		event tick.
		manifold Ticker(event) atomic.
		manifold Main() {
			auto process n is variable(5).
			auto process tk is Ticker(0).
			begin: terminated(void).
			tick: if (n < 3) then (
					MES("low"), halt
				) else (
					MES("high"), halt
				).
		}
	`
	it := interpFor(t, src)
	if err := it.RegisterAtomic("Ticker", func(p *manifold.Process, args []Value) {
		p.Raise("tick")
	}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	it.Output = &sb
	runWithTimeout(t, 5*time.Second, func() error { return it.Run("Main") })
	if !strings.Contains(sb.String(), "high") || strings.Contains(sb.String(), "low") {
		t.Fatalf("output = %q", sb.String())
	}
}

// masterSteps implements the behaviour interface of §4.3 as an atomic Go
// master driving the interpreted ProtocolMW: one pool of n workers, each
// charged with one integer job.
func masterSteps(t *testing.T, n int, results *[]int, mu *sync.Mutex) AtomicFunc {
	return func(p *manifold.Process, args []Value) {
		p.Observe("a_rendezvous")
		p.Raise("create_pool") // step 3a
		for i := 0; i < n; i++ {
			p.Raise("create_worker") // step 3b
			ref := p.Input().MustRead().(*manifold.Process)
			ref.Activate()      // step 3c
			p.Output().Write(i) // step 3d
		}
		for i := 0; i < n; i++ { // step 3f
			u := p.Port("dataport").MustRead()
			mu.Lock()
			*results = append(*results, u.(int))
			mu.Unlock()
		}
		p.Raise("rendezvous")               // step 3g
		p.Wait(manifold.On("a_rendezvous")) // step 3h
		p.Raise("finished")                 // step 4
		_ = t                               // step 5 would follow here
	}
}

func workerSteps() AtomicFunc {
	return func(p *manifold.Process, args []Value) {
		u := p.Input().MustRead() // worker step 1
		v := u.(int) * 10         // step 2
		p.Output().Write(v)       // step 3
		if ev, ok := args[0].(EventVal); ok {
			p.Raise(string(ev)) // step 4
		}
	}
}

// TestPaperProtocolRuns executes the paper's protocolMW.m + mainprog.m
// through the interpreter, with atomic Go master/worker wrappers, and
// checks that the full master/worker protocol completes with all results
// delivered.
func TestPaperProtocolRuns(t *testing.T) {
	proto := readTestdata(t, "protocolMW.m")
	main := readTestdata(t, "mainprog.m")
	it := interpFor(t, proto, main)

	const n = 6
	var results []int
	var mu sync.Mutex
	if err := it.RegisterAtomic("Master", masterSteps(t, n, &results, &mu)); err != nil {
		t.Fatal(err)
	}
	if err := it.RegisterAtomic("Worker", workerSteps()); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	it.Output = &sb
	runWithTimeout(t, 10*time.Second, func() error { return it.Run("Main", StrVal("argv")) })

	mu.Lock()
	defer mu.Unlock()
	if len(results) != n {
		t.Fatalf("got %d results: %v\noutput:\n%s", len(results), results, sb.String())
	}
	sort.Ints(results)
	for i, v := range results {
		if v != i*10 {
			t.Fatalf("results = %v", results)
		}
	}
	// The coordinator's MES messages confirm the protocol path: pool
	// begin, one create_worker per worker, and the rendezvous.
	out := sb.String()
	if strings.Count(out, "create_worker: begin") != n {
		t.Errorf("expected %d create_worker states, output:\n%s", n, out)
	}
	if !strings.Contains(out, "rendezvous acknowledged") {
		t.Errorf("rendezvous never acknowledged:\n%s", out)
	}
}

// TestPaperProtocolTwoPools exercises the closing remark of §4.2: a more
// demanding master raises create_pool again and gets a second pool.
func TestPaperProtocolTwoPools(t *testing.T) {
	proto := readTestdata(t, "protocolMW.m")
	main := readTestdata(t, "mainprog.m")
	it := interpFor(t, proto, main)

	var total int
	var mu sync.Mutex
	master := func(p *manifold.Process, args []Value) {
		p.Observe("a_rendezvous")
		for pool := 0; pool < 2; pool++ {
			p.Raise("create_pool")
			for i := 0; i < 3; i++ {
				p.Raise("create_worker")
				ref := p.Input().MustRead().(*manifold.Process)
				ref.Activate()
				p.Output().Write(1)
			}
			for i := 0; i < 3; i++ {
				u := p.Port("dataport").MustRead()
				mu.Lock()
				total += u.(int)
				mu.Unlock()
			}
			p.Raise("rendezvous")
			p.Wait(manifold.On("a_rendezvous"))
		}
		p.Raise("finished")
	}
	if err := it.RegisterAtomic("Master", master); err != nil {
		t.Fatal(err)
	}
	if err := it.RegisterAtomic("Worker", workerSteps()); err != nil {
		t.Fatal(err)
	}
	runWithTimeout(t, 10*time.Second, func() error { return it.Run("Main", StrVal("argv")) })
	mu.Lock()
	defer mu.Unlock()
	if total != 2*3*10 {
		t.Fatalf("total = %d, want 60", total)
	}
}

// TestEmptyPoolHangsAsInPaper documents a faithfully reproduced quirk of
// the paper's protocol: the rendezvous state only compares t against now
// when a death_worker occurrence arrives (protocolMW.m line 42), so a
// rendezvous over an *empty* pool never completes. (The Go re-engineering
// in internal/core fixes this by checking t == now before waiting.)
func TestEmptyPoolHangsAsInPaper(t *testing.T) {
	proto := readTestdata(t, "protocolMW.m")
	main := readTestdata(t, "mainprog.m")
	it := interpFor(t, proto, main)
	var mu sync.Mutex
	reached := false
	master := func(p *manifold.Process, args []Value) {
		p.Observe("a_rendezvous")
		p.Raise("create_pool")
		p.Raise("rendezvous")
		p.Wait(manifold.On("a_rendezvous"))
		mu.Lock()
		reached = true
		mu.Unlock()
		p.Raise("finished")
	}
	if err := it.RegisterAtomic("Master", master); err != nil {
		t.Fatal(err)
	}
	if err := it.RegisterAtomic("Worker", workerSteps()); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		_ = it.Run("Main", StrVal("argv"))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("empty-pool rendezvous completed; the paper's protocol should hang here")
	case <-time.After(300 * time.Millisecond):
	}
	mu.Lock()
	defer mu.Unlock()
	if reached {
		t.Fatal("a_rendezvous was raised for an empty pool")
	}
	// The blocked goroutines are abandoned; the test binary exits anyway.
}

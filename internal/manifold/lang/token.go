// Package lang is a front end for a subset of the MANIFOLD coordination
// language, large enough to express the paper's gluing modules
// (protocolMW.m and mainprog.m): a lexer, a recursive-descent parser
// producing an AST, a semantic checker, and a tree-walking interpreter
// executing programs on the IWIM runtime of internal/manifold. It plays
// the role of the paper's Mc compiler.
package lang

import "fmt"

// Kind classifies tokens.
type Kind int

const (
	EOF Kind = iota
	IDENT
	NUMBER
	STRING
	// punctuation
	LBRACE    // {
	RBRACE    // }
	LPAREN    // (
	RPAREN    // )
	COMMA     // ,
	DOT       // .
	SEMI      // ;
	COLON     // :
	ARROW     // ->
	AMP       // &
	ASSIGN    // =
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	LT        // <
	GT        // >
	LE        // <=
	GE        // >=
	EQ        // ==
	NE        // !=
	DIRECTIVE // #include "..." / #pragma ... (whole line)
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", NUMBER: "number", STRING: "string",
	LBRACE: "{", RBRACE: "}", LPAREN: "(", RPAREN: ")", COMMA: ",", DOT: ".",
	SEMI: ";", COLON: ":", ARROW: "->", AMP: "&", ASSIGN: "=", PLUS: "+",
	MINUS: "-", STAR: "*", SLASH: "/", LT: "<", GT: ">", LE: "<=", GE: ">=",
	EQ: "==", NE: "!=", DIRECTIVE: "directive",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER, STRING, DIRECTIVE:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Keywords of the subset. They are lexed as IDENT and recognized by the
// parser, as in MANIFOLD, where e.g. `event` is also a type name.
var Keywords = map[string]bool{
	"manifold": true, "manner": true, "event": true, "process": true,
	"port": true, "in": true, "out": true, "error": true, "atomic": true,
	"internal": true, "auto": true, "begin": true, "end": true, "save": true,
	"ignore": true, "hold": true, "priority": true, "is": true, "if": true,
	"then": true, "else": true, "stream": true, "KK": true, "BK": true,
	"export": true, "import": true, "void": true, "halt": true,
	"terminated": true, "preemptall": true, "post": true, "raise": true,
}

// protocolMW.m
//
// The paper's generic master/worker protocol (SC2004, section 4.2),
// adapted to the repro subset: the IDLE macro of the original
// (#define IDLE terminated(void)) is written out, and the port-signature
// separator is uniformly `/`.

// The extern protocol events (the contents of protocolMW.h in the paper).
event create_pool, create_worker, rendezvous, a_rendezvous, finished.

/*****************************************************************/
manner Create_Worker_Pool(
    process master <input, dataport / output, error>,
    manifold Worker(event))
{
    save *.
    ignore death_worker.

    auto process now is variable(0).
    auto process t is variable(0).

    event death_worker.

    priority create_worker > rendezvous.

    begin: (MES("begin"), preemptall, terminated(void)).

    create_worker: {
        hold death_worker.

        process worker is Worker(death_worker).

        stream KK worker -> master.dataport.

        begin: now = now + 1;
            (MES("create_worker: begin"),
             &worker -> master -> worker -> master.dataport,
             terminated(void)).
    }.

    rendezvous: {
        begin: (preemptall, terminated(void)).

        death_worker: t = t + 1;
            if (t < now) then (
                post(begin)
            ) else (
                post(end)
            ).
    }.

    end: (MES("rendezvous acknowledged"), raise(a_rendezvous)).
}

/*****************************************************************/
export manner ProtocolMW(
    process master <input, dataport / output, error>,
    manifold Worker(event))
{
    save *.

    begin: terminated(master).

    create_pool: Create_Worker_Pool(master, Worker); post(begin).

    finished: halt.
}

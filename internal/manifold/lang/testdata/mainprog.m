// mainprog.m
//
// The paper's section-5 program: the small MANIFOLD source that changes
// the original sequential application into a concurrent version. Master
// and Worker are atomic manifolds — wrappers around the legacy
// computation, registered from Go via Interp.RegisterAtomic.

#include "protocolMW.h"

manifold Worker(event) atomic.

manifold Master(port in p)
    port in dataport.
    atomic {internal. event create_pool, create_worker, rendezvous,
            a_rendezvous, finished}.

/*****************************************************************/
manifold Main(process argv)
{
    begin: ProtocolMW(Master(argv), Worker).
}

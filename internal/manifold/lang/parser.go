package lang

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for the MANIFOLD subset.
type Parser struct {
	toks []Token
	pos  int
	file string
}

// Parse lexes and parses one source file.
func Parse(file, src string) (*Program, error) {
	toks, err := Lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, file: file}
	return p.program()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) peekN(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptIdent(text string) bool {
	if p.cur().Kind == IDENT && p.cur().Text == text {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) isIdent(text string) bool {
	return p.cur().Kind == IDENT && p.cur().Text == text
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, p.errorf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) expectIdent() (Token, error) {
	if p.cur().Kind != IDENT {
		return Token{}, p.errorf("expected identifier, found %s", p.cur())
	}
	return p.next(), nil
}

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *Parser) program() (*Program, error) {
	prog := &Program{File: p.file}
	for {
		switch {
		case p.cur().Kind == EOF:
			return prog, nil
		case p.cur().Kind == DIRECTIVE:
			t := p.next()
			prog.Directives = append(prog.Directives, Directive{Pos: t.Pos, Text: t.Text})
		default:
			d, err := p.topDecl()
			if err != nil {
				return nil, err
			}
			prog.Decls = append(prog.Decls, d)
		}
	}
}

func (p *Parser) topDecl() (*TopDecl, error) {
	d := &TopDecl{Pos: p.cur().Pos}
	if p.acceptIdent("export") {
		d.Export = true
	}
	switch {
	case p.acceptIdent("manifold"):
		d.Kind = DeclManifold
	case p.acceptIdent("manner"):
		d.Kind = DeclManner
	case p.acceptIdent("event"):
		d.Kind = DeclEvent
		names, err := p.identList()
		if err != nil {
			return nil, err
		}
		d.Events = names
		if _, err := p.expect(DOT); err != nil {
			return nil, err
		}
		return d, nil
	default:
		return nil, p.errorf("expected manifold, manner or event declaration, found %s", p.cur())
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d.Name = name.Text
	if p.cur().Kind == LPAREN {
		params, err := p.params()
		if err != nil {
			return nil, err
		}
		d.Params = params
	}
	// Extra port declarations: `port in dataport.` ...
	for p.isIdent("port") {
		p.next()
		in := true
		switch {
		case p.acceptIdent("in"):
		case p.acceptIdent("out"):
			in = false
		default:
			return nil, p.errorf("expected in or out after port")
		}
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d.Ports = append(d.Ports, PortDecl{Pos: pn.Pos, In: in, Name: pn.Text})
		p.accept(DOT) // each port declaration may end with '.'
	}
	// atomic tail or body block.
	if p.acceptIdent("atomic") {
		d.Atomic = true
		if p.cur().Kind == LBRACE {
			p.next()
			if !p.acceptIdent("internal") {
				return nil, p.errorf("expected internal in atomic clause")
			}
			p.accept(DOT)
			if p.acceptIdent("event") {
				evs, err := p.identList()
				if err != nil {
					return nil, err
				}
				d.Internal = evs
			}
			if _, err := p.expect(RBRACE); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(DOT); err != nil {
			return nil, err
		}
		return d, nil
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	d.Body = body
	p.accept(DOT) // optional terminating '.'
	return d, nil
}

func (p *Parser) identList() ([]string, error) {
	var names []string
	for {
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		names = append(names, t.Text)
		if !p.accept(COMMA) {
			return names, nil
		}
	}
}

func (p *Parser) params() ([]Param, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var out []Param
	if p.accept(RPAREN) {
		return out, nil
	}
	for {
		prm, err := p.param()
		if err != nil {
			return nil, err
		}
		out = append(out, prm)
		if p.accept(COMMA) {
			continue
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func (p *Parser) param() (Param, error) {
	prm := Param{Pos: p.cur().Pos}
	switch {
	case p.acceptIdent("event"):
		prm.Kind = ParamEvent
		if p.cur().Kind == IDENT && !Keywords[p.cur().Text] {
			prm.Name = p.next().Text
		}
	case p.acceptIdent("process"):
		prm.Kind = ParamProcess
		t, err := p.expectIdent()
		if err != nil {
			return prm, err
		}
		prm.Name = t.Text
		if p.accept(LT) {
			ins, err := p.identList()
			if err != nil {
				return prm, err
			}
			prm.InPorts = ins
			// The paper writes the separator as both `|` and `/`.
			if !p.accept(SLASH) {
				return prm, p.errorf("expected / between input and output ports")
			}
			outs, err := p.identList()
			if err != nil {
				return prm, err
			}
			prm.OutPorts = outs
			if _, err := p.expect(GT); err != nil {
				return prm, err
			}
		}
	case p.acceptIdent("manifold"):
		prm.Kind = ParamManifold
		t, err := p.expectIdent()
		if err != nil {
			return prm, err
		}
		prm.Name = t.Text
		if p.accept(LPAREN) {
			for !p.accept(RPAREN) {
				switch {
				case p.acceptIdent("event"):
					prm.SubTypes = append(prm.SubTypes, ParamEvent)
				case p.acceptIdent("process"):
					prm.SubTypes = append(prm.SubTypes, ParamProcess)
				case p.cur().Kind == IDENT:
					p.next()
					prm.SubTypes = append(prm.SubTypes, ParamUntyped)
				default:
					return prm, p.errorf("bad manifold parameter type list")
				}
				p.accept(COMMA)
			}
		}
	case p.acceptIdent("port"):
		in := true
		switch {
		case p.acceptIdent("in"):
		case p.acceptIdent("out"):
			in = false
		default:
			return prm, p.errorf("expected in or out after port")
		}
		if in {
			prm.Kind = ParamPortIn
		} else {
			prm.Kind = ParamPortOut
		}
		t, err := p.expectIdent()
		if err != nil {
			return prm, err
		}
		prm.Name = t.Text
	default:
		t, err := p.expectIdent()
		if err != nil {
			return prm, err
		}
		prm.Kind = ParamUntyped
		prm.Name = t.Text
	}
	return prm, nil
}

// block parses `{ decls states }`.
func (p *Parser) block() (*Block, error) {
	lb, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	// Local declaration part.
	for {
		d, ok, err := p.blockDecl()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		b.Decls = append(b.Decls, d)
	}
	// States.
	for p.cur().Kind != RBRACE {
		s, err := p.state()
		if err != nil {
			return nil, err
		}
		b.States = append(b.States, s)
	}
	p.next() // consume }
	return b, nil
}

// blockDecl parses one local declaration; ok=false when the next tokens
// start the state part.
func (p *Parser) blockDecl() (BlockDecl, bool, error) {
	d := BlockDecl{Pos: p.cur().Pos}
	switch {
	case p.isIdent("save"):
		p.next()
		d.Kind = BDSave
		if p.accept(STAR) {
			d.Names = []string{"*"}
		} else {
			names, err := p.identList()
			if err != nil {
				return d, false, err
			}
			d.Names = names
		}
	case p.isIdent("ignore"):
		p.next()
		d.Kind = BDIgnore
		names, err := p.identList()
		if err != nil {
			return d, false, err
		}
		d.Names = names
	case p.isIdent("hold"):
		p.next()
		d.Kind = BDHold
		names, err := p.identList()
		if err != nil {
			return d, false, err
		}
		d.Names = names
	case p.isIdent("priority"):
		p.next()
		d.Kind = BDPriority
		hi, err := p.expectIdent()
		if err != nil {
			return d, false, err
		}
		if _, err := p.expect(GT); err != nil {
			return d, false, err
		}
		lo, err := p.expectIdent()
		if err != nil {
			return d, false, err
		}
		d.Names = []string{hi.Text, lo.Text}
	case p.isIdent("event") && p.peekN(1).Kind == IDENT && !p.isStateStart(1):
		p.next()
		d.Kind = BDEvent
		names, err := p.identList()
		if err != nil {
			return d, false, err
		}
		d.Names = names
	case p.isIdent("auto") || (p.isIdent("process") && p.peekN(1).Kind == IDENT):
		d.Kind = BDProcess
		if p.acceptIdent("auto") {
			d.Auto = true
		}
		if !p.acceptIdent("process") {
			return d, false, p.errorf("expected process after auto")
		}
		t, err := p.expectIdent()
		if err != nil {
			return d, false, err
		}
		d.ProcName = t.Text
		if !p.acceptIdent("is") {
			return d, false, p.errorf("expected is in process declaration")
		}
		tn, err := p.expectIdent()
		if err != nil {
			return d, false, err
		}
		d.TypeName = tn.Text
		if p.accept(LPAREN) {
			for !p.accept(RPAREN) {
				e, err := p.expr()
				if err != nil {
					return d, false, err
				}
				d.Args = append(d.Args, e)
				p.accept(COMMA)
			}
		}
	case p.isIdent("stream"):
		p.next()
		d.Kind = BDStreamType
		switch {
		case p.acceptIdent("KK"):
			d.StreamKK = true
		case p.acceptIdent("BK"):
		default:
			return d, false, p.errorf("expected KK or BK after stream")
		}
		se, err := p.streamExpr()
		if err != nil {
			return d, false, err
		}
		d.Stream = se
	default:
		return d, false, nil
	}
	if _, err := p.expect(DOT); err != nil {
		return d, false, err
	}
	return d, true, nil
}

// isStateStart reports whether the token at offset n begins a state label
// (IDENT [:][,...]) — used to disambiguate `event x.` declarations from an
// `event:`-labelled state (which does not occur, but keeps errors sane).
func (p *Parser) isStateStart(n int) bool {
	return p.peekN(n+1).Kind == COLON
}

func (p *Parser) state() (*State, error) {
	s := &State{Pos: p.cur().Pos}
	for {
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		l := Label{Pos: t.Pos, Event: t.Text}
		if p.accept(DOT) {
			src, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			l.Source = src.Text
		}
		s.Labels = append(s.Labels, l)
		if p.accept(COMMA) {
			continue
		}
		break
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	body, err := p.stateBody()
	if err != nil {
		return nil, err
	}
	s.Body = body
	p.accept(DOT) // state terminator (optional after })
	return s, nil
}

// stateBody parses a group, a nested block, or a statement sequence.
func (p *Parser) stateBody() (StateBody, error) {
	switch p.cur().Kind {
	case LBRACE:
		return p.block()
	default:
		return p.seq()
	}
}

// seq parses `stmt {; stmt}`.
func (p *Parser) seq() (StateBody, error) {
	pos := p.cur().Pos
	var stmts []Stmt
	for {
		st, err := p.simple()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
		if !p.accept(SEMI) {
			break
		}
	}
	if len(stmts) == 1 {
		if sb, ok := stmts[0].(StateBody); ok {
			return sb, nil
		}
	}
	return &Seq{Pos: pos, Stmts: stmts}, nil
}

// group parses `( action {, action} )`.
func (p *Parser) group() (*Group, error) {
	lp, err := p.expect(LPAREN)
	if err != nil {
		return nil, err
	}
	g := &Group{Pos: lp.Pos}
	for {
		st, err := p.simple()
		if err != nil {
			return nil, err
		}
		g.Actions = append(g.Actions, st)
		if p.accept(COMMA) {
			continue
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return g, nil
	}
}

// simple parses one statement.
func (p *Parser) simple() (Stmt, error) {
	switch {
	case p.cur().Kind == LPAREN:
		return p.group()
	case p.cur().Kind == LBRACE:
		return p.block()
	case p.isIdent("if"):
		return p.ifStmt()
	case p.isIdent("halt"):
		t := p.next()
		return &Halt{Pos: t.Pos}, nil
	case p.cur().Kind == AMP:
		// A stream chain starting with a reference: &worker -> master ...
		return p.streamExpr()
	case p.cur().Kind == IDENT:
		// Could be: assignment, call, bare name action, or stream chain.
		switch p.peekN(1).Kind {
		case ASSIGN:
			name := p.next()
			p.next() // =
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &Assign{Pos: name.Pos, Name: name.Text, Expr: e}, nil
		case LPAREN:
			name := p.next()
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			c := &Call{Pos: name.Pos, Name: name.Text, Args: args}
			if p.cur().Kind == ARROW {
				// call result feeding a stream is not supported
				return nil, p.errorf("stream source cannot be a call")
			}
			return c, nil
		case ARROW:
			return p.streamExpr()
		case DOT:
			// Qualified name: either a stream term (a.b -> ...) or the
			// statement terminator follows. streamExpr handles the
			// qualifier lookahead.
			if p.peekN(2).Kind == IDENT && p.peekN(3).Kind != COLON {
				return p.streamExpr()
			}
			t := p.next()
			return &NameAction{Pos: t.Pos, Name: t.Text}, nil
		default:
			t := p.next()
			return &NameAction{Pos: t.Pos, Name: t.Text}, nil
		}
	}
	return nil, p.errorf("expected statement, found %s", p.cur())
}

func (p *Parser) ifStmt() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if !p.acceptIdent("then") {
		return nil, p.errorf("expected then")
	}
	thenB, err := p.branchBody()
	if err != nil {
		return nil, err
	}
	st := &If{Pos: t.Pos, Cond: cond, Then: thenB}
	if p.acceptIdent("else") {
		elseB, err := p.branchBody()
		if err != nil {
			return nil, err
		}
		st.Else = elseB
	}
	return st, nil
}

func (p *Parser) branchBody() (StateBody, error) {
	switch p.cur().Kind {
	case LPAREN:
		g, err := p.group()
		if err != nil {
			return nil, err
		}
		return g, nil
	case LBRACE:
		return p.block()
	default:
		st, err := p.simple()
		if err != nil {
			return nil, err
		}
		return &Seq{Stmts: []Stmt{st}}, nil
	}
}

func (p *Parser) callArgs() ([]Expr, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var args []Expr
	if p.accept(RPAREN) {
		return args, nil
	}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.accept(COMMA) {
			continue
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return args, nil
	}
}

// streamExpr parses `term -> term -> ...`.
func (p *Parser) streamExpr() (*StreamExpr, error) {
	se := &StreamExpr{Pos: p.cur().Pos}
	for {
		t, err := p.streamTerm()
		if err != nil {
			return nil, err
		}
		se.Terms = append(se.Terms, t)
		if !p.accept(ARROW) {
			break
		}
	}
	if len(se.Terms) < 2 {
		return nil, p.errorf("stream needs at least two endpoints")
	}
	return se, nil
}

func (p *Parser) streamTerm() (StreamTerm, error) {
	t := StreamTerm{Pos: p.cur().Pos}
	if p.accept(AMP) {
		t.Ref = true
	}
	id, err := p.expectIdent()
	if err != nil {
		return t, err
	}
	t.Name = id.Text
	// `.port` qualifier: only when the dot is followed by an identifier
	// that is not itself a state label (IDENT COLON).
	if p.cur().Kind == DOT && p.peekN(1).Kind == IDENT && p.peekN(2).Kind != COLON {
		p.next()
		pn, _ := p.expectIdent()
		t.Port = pn.Text
	}
	return t, nil
}

// expr parses comparisons over additive expressions.
func (p *Parser) expr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case LT, LE, GT, GE, EQ, NE:
		op := p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Binary{Pos: op.Pos, Op: op.Text, L: l, R: r}, nil
	}
	return l, nil
}

func (p *Parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == PLUS || p.cur().Kind == MINUS {
		op := p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: op.Pos, Op: op.Text, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) mulExpr() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == STAR || p.cur().Kind == SLASH {
		op := p.next()
		r, err := p.primary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: op.Pos, Op: op.Text, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) primary() (Expr, error) {
	switch t := p.cur(); t.Kind {
	case NUMBER:
		p.next()
		n, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return &Num{Pos: t.Pos, Value: n}, nil
	case STRING:
		p.next()
		return &Str{Pos: t.Pos, Value: t.Text}, nil
	case AMP:
		p.next()
		x, err := p.primary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: t.Pos, Op: "&", X: x}, nil
	case MINUS:
		p.next()
		x, err := p.primary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: t.Pos, Op: "-", X: x}, nil
	case LPAREN:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT:
		p.next()
		if p.cur().Kind == LPAREN {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Pos: t.Pos, Name: t.Text, Args: args}, nil
		}
		return &Name{Pos: t.Pos, Name: t.Text}, nil
	}
	return nil, p.errorf("expected expression, found %s", p.cur())
}

package lang

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/manifold"
)

// Value is a runtime value of the interpreter.
type Value any

// IntVal is an integer value (the contents of a variable process).
type IntVal int

// StrVal is a string value.
type StrVal string

// EventVal is an event, identified by its runtime name (local event
// declarations are uniquified per instantiation so two concurrent pools do
// not cross-talk).
type EventVal string

// ProcVal is a process instance.
type ProcVal struct{ P *manifold.Process }

// ManifoldVal is a manifold type passed as a value (e.g. the Worker
// parameter of ProtocolMW).
type ManifoldVal struct{ Decl *TopDecl }

// VarVal is an instance of the predefined `variable` manifold: the only
// data MANIFOLD knows is a process, so even an integer cell is one.
type VarVal struct {
	mu  sync.Mutex
	val int
}

// Get reads the variable.
func (v *VarVal) Get() int { v.mu.Lock(); defer v.mu.Unlock(); return v.val }

// Set writes the variable.
func (v *VarVal) Set(x int) { v.mu.Lock(); defer v.mu.Unlock(); v.val = x }

// AtomicFunc is the Go body of an atomic manifold (the paper's C wrappers
// around the legacy subroutines). It receives its own process and the
// evaluated actual parameters.
type AtomicFunc func(p *manifold.Process, args []Value)

// Interp executes checked MANIFOLD programs on the IWIM runtime.
type Interp struct {
	decls   map[string]*TopDecl
	atomics map[string]AtomicFunc
	env     *manifold.Env
	// Output receives MES(...) messages; defaults to io.Discard.
	Output io.Writer

	seq atomic.Int64 // uniquifier for local events, instances, wait tokens

	mu      sync.Mutex
	runErrs []error
}

// recordErr collects a runtime error raised inside a process body.
func (it *Interp) recordErr(err error) {
	it.mu.Lock()
	defer it.mu.Unlock()
	it.runErrs = append(it.runErrs, err)
}

// Errs returns the runtime errors recorded so far.
func (it *Interp) Errs() []error {
	it.mu.Lock()
	defer it.mu.Unlock()
	return append([]error(nil), it.runErrs...)
}

// NewInterp checks the programs and builds an interpreter.
func NewInterp(progs ...*Program) (*Interp, error) {
	decls, err := Check(progs...)
	if err != nil {
		return nil, err
	}
	return &Interp{
		decls:   decls,
		atomics: make(map[string]AtomicFunc),
		env:     manifold.NewEnv(),
		Output:  io.Discard,
	}, nil
}

// RegisterAtomic binds a Go function to an atomic manifold declaration.
func (it *Interp) RegisterAtomic(name string, fn AtomicFunc) error {
	d, ok := it.decls[name]
	if !ok {
		return fmt.Errorf("lang: no declaration named %s", name)
	}
	if !d.Atomic {
		return fmt.Errorf("lang: %s is not atomic", name)
	}
	it.atomics[name] = fn
	return nil
}

// Env exposes the underlying runtime environment.
func (it *Interp) Env() *manifold.Env { return it.env }

// Run instantiates the named manifold with the given arguments, activates
// it, and waits until every process of the application has terminated.
func (it *Interp) Run(name string, args ...Value) error {
	d, ok := it.decls[name]
	if !ok || d.Kind != DeclManifold {
		return fmt.Errorf("lang: no manifold named %s", name)
	}
	inst, err := it.instantiate(d, args)
	if err != nil {
		return err
	}
	inst.Activate()
	inst.Terminated()
	// A runtime error in any process body aborts the run without waiting
	// for the remaining (possibly stranded) processes.
	if errs := it.Errs(); len(errs) > 0 {
		return errors.Join(errs...)
	}
	it.env.Wait()
	if errs := it.Errs(); len(errs) > 0 {
		return errors.Join(errs...)
	}
	return nil
}

// instantiate creates (but does not activate) a process for manifold d.
func (it *Interp) instantiate(d *TopDecl, args []Value) (*manifold.Process, error) {
	if len(args) != len(d.Params) {
		return nil, fmt.Errorf("lang: %s expects %d arguments, got %d", d.Name, len(d.Params), len(args))
	}
	var extra []string
	for _, pd := range d.Ports {
		extra = append(extra, pd.Name)
	}
	name := fmt.Sprintf("%s-%d", d.Name, it.seq.Add(1))
	if d.Atomic {
		fn, ok := it.atomics[d.Name]
		if !ok {
			return nil, fmt.Errorf("lang: atomic manifold %s has no registered Go body", d.Name)
		}
		p := it.env.NewProcess(name, func(self *manifold.Process) {
			fn(self, args)
		}, extra...)
		return p, nil
	}
	// Observe every event name that can label a state anywhere in this
	// manifold's body — including manners it calls — before activation, so
	// that occurrences raised by co-processes that start first (the
	// already-active master of the paper's protocol) are never missed.
	closure := it.labelClosure(d)
	p := it.env.NewProcess(name, func(self *manifold.Process) {
		defer func() {
			if r := recover(); r != nil {
				if re, ok := r.(runtimeError); ok {
					it.recordErr(fmt.Errorf("lang: process %s: %w", self.Name(), re.err))
					return
				}
				panic(r)
			}
		}()
		ex := &exec{it: it, proc: self}
		sc := &scope{vars: map[string]Value{}}
		for i, prm := range d.Params {
			if prm.Name != "" {
				sc.vars[prm.Name] = args[i]
			}
		}
		ex.runBlock(d.Body, sc, nil)
	}, extra...)
	p.Observe(closure...)
	return p, nil
}

// labelClosure collects the state-label event names reachable from d's
// body through manner calls.
func (it *Interp) labelClosure(d *TopDecl) []string {
	seenDecl := map[string]bool{d.Name: true}
	names := map[string]bool{}
	var walkBody func(StateBody)
	var walkStmt func(Stmt)
	var walkBlock func(*Block)
	callTo := func(name string) {
		if dd, ok := it.decls[name]; ok && dd.Kind == DeclManner && !seenDecl[name] {
			seenDecl[name] = true
			walkBlock(dd.Body)
		}
	}
	walkStmt = func(s Stmt) {
		switch x := s.(type) {
		case *Call:
			callTo(x.Name)
		case *If:
			walkBody(x.Then)
			walkBody(x.Else)
		case *Group:
			for _, a := range x.Actions {
				walkStmt(a)
			}
		case *Seq:
			for _, a := range x.Stmts {
				walkStmt(a)
			}
		case *Block:
			walkBlock(x)
		}
	}
	walkBody = func(b StateBody) {
		switch x := b.(type) {
		case nil:
		case *Block:
			walkBlock(x)
		case *Group:
			for _, a := range x.Actions {
				walkStmt(a)
			}
		case *Seq:
			for _, a := range x.Stmts {
				walkStmt(a)
			}
		}
	}
	walkBlock = func(b *Block) {
		if b == nil {
			return
		}
		for _, s := range b.States {
			for _, l := range s.Labels {
				names[l.Event] = true
			}
			walkBody(s.Body)
		}
	}
	walkBlock(d.Body)
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	return out
}

// scope is a lexical environment.
type scope struct {
	parent *scope
	vars   map[string]Value
}

func (s *scope) child() *scope { return &scope{parent: s, vars: map[string]Value{}} }

func (s *scope) lookup(n string) (Value, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[n]; ok {
			return v, true
		}
	}
	return nil, false
}

// exec is the execution context of one interpreted process.
type exec struct {
	it   *Interp
	proc *manifold.Process
}

// blockOutcome tells a caller how a block ended.
type blockOutcome int

const (
	blockEnded     blockOutcome = iota // end state completed or block ran dry
	blockHalted                        // halt primitive
	blockPreempted                     // an outer label matched (no save *)
)

// streamRule is a `stream KK a -> b.port.` declaration in force.
type streamRule struct {
	src, dst, dstPort string
	kk                bool
}

// runtimeError aborts the interpreted process; MANIFOLD has no recoverable
// runtime errors in this subset.
type runtimeError struct{ err error }

func (ex *exec) fail(pos Pos, format string, args ...any) {
	panic(runtimeError{fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))})
}

// runBlock executes a block: declarations, then the event-driven state
// machine. outerLabels are the labels of enclosing blocks that may preempt
// this one; a `save *` declaration suppresses them (events stay in memory
// for the enclosing block to handle later).
func (ex *exec) runBlock(b *Block, outer *scope, outerLabels []manifold.Label) (blockOutcome, manifold.Occurrence) {
	sc := outer.child()
	saveAll := false
	var rules []streamRule
	var priorities []string

	for _, bd := range b.Decls {
		switch bd.Kind {
		case BDSave:
			for _, n := range bd.Names {
				if n == "*" {
					saveAll = true
				}
			}
		case BDIgnore, BDHold:
			// ignore: occurrences may be dropped on exit — our memory is
			// bounded by observation, so this is a no-op. hold: our memory
			// already retains occurrences across scopes.
		case BDPriority:
			priorities = append(priorities, bd.Names...)
		case BDEvent:
			for _, n := range bd.Names {
				ev := EventVal(fmt.Sprintf("%s#%d", n, ex.it.seq.Add(1)))
				sc.vars[n] = ev
				// The declaring block holds occurrences of its local
				// events even before a state waits for them (the paper's
				// workers die while the coordinator is still creating
				// others; the rendezvous counts them later).
				ex.proc.Observe(string(ev))
			}
		case BDProcess:
			v := ex.createProcess(bd, sc)
			sc.vars[bd.ProcName] = v
		case BDStreamType:
			terms := bd.Stream.Terms
			rules = append(rules, streamRule{
				src:     terms[0].Name,
				dst:     terms[len(terms)-1].Name,
				dstPort: terms[len(terms)-1].Port,
				kk:      bd.StreamKK,
			})
		}
	}

	// Resolve this block's labels (priority declarations first, then
	// declaration order) and observe their runtime event names.
	labels := ex.blockLabels(b, sc, priorities)
	for _, l := range labels {
		ex.proc.Observe(l.Event)
	}
	waitSet := labels
	if !saveAll {
		waitSet = append(append([]manifold.Label{}, labels...), outerLabels...)
	}

	// Enter via the mandatory begin state: MANIFOLD guarantees that upon
	// entering a block at least the begin state is visited, regardless of
	// other pending occurrences, so the first wait matches begin only.
	ex.proc.Post("begin")
	first := ex.proc.Wait(manifold.On("begin"))

	var stateScope manifold.Scope
	onlyBegin := len(labels) == 1 && labels[0].Event == "begin"
	pending := &first
	for {
		var occ manifold.Occurrence
		if pending != nil {
			occ, pending = *pending, nil
		} else {
			occ = ex.proc.Wait(waitSet...)
		}
		// Leaving the previous state dismantles its streams (BK broken,
		// KK kept).
		stateScope.Dismantle()
		if !saveAll && !ex.ownsLabel(labels, occ) {
			return blockPreempted, occ
		}
		st := ex.stateFor(b, sc, occ)
		if st == nil {
			continue // stale internal token
		}
		res, next := ex.runState(st, sc, &stateScope, rules, waitSet)
		switch res {
		case stateHalted:
			stateScope.Dismantle()
			return blockHalted, manifold.Occurrence{}
		case statePreempted:
			if !ex.ownsLabel(labels, next) {
				stateScope.Dismantle()
				return blockPreempted, next
			}
			pending = &next
			continue
		}
		// State completed. An `end` state completing exits the block; a
		// block whose only state is begin exits after begin completes.
		if ex.isEndState(st) || onlyBegin {
			stateScope.Dismantle()
			return blockEnded, manifold.Occurrence{}
		}
	}
}

func (ex *exec) isEndState(st *State) bool {
	for _, l := range st.Labels {
		if l.Event == "end" {
			return true
		}
	}
	return false
}

// ownsLabel reports whether occ matches one of the block's own labels.
func (ex *exec) ownsLabel(labels []manifold.Label, occ manifold.Occurrence) bool {
	for _, l := range labels {
		if l.Event == occ.Event && (l.Source == nil || l.Source == occ.Source) {
			return true
		}
	}
	return false
}

// blockLabels resolves state labels to runtime labels, priority names
// first.
func (ex *exec) blockLabels(b *Block, sc *scope, priorities []string) []manifold.Label {
	var ordered []Label
	seen := map[string]bool{}
	add := func(l Label) {
		key := l.Event + "." + l.Source
		if !seen[key] {
			seen[key] = true
			ordered = append(ordered, l)
		}
	}
	for _, pn := range priorities {
		for _, s := range b.States {
			for _, l := range s.Labels {
				if l.Event == pn {
					add(l)
				}
			}
		}
	}
	for _, s := range b.States {
		for _, l := range s.Labels {
			add(l)
		}
	}
	out := make([]manifold.Label, 0, len(ordered))
	for _, l := range ordered {
		ml := manifold.Label{Event: ex.eventName(sc, l.Event)}
		if l.Source != "" {
			if v, ok := sc.lookup(l.Source); ok {
				if pv, ok := v.(*ProcVal); ok {
					ml.Source = pv.P
				}
			}
		}
		out = append(out, ml)
	}
	return out
}

// eventName resolves an event identifier through the scope (local events
// are uniquified; unbound names are global events used verbatim).
func (ex *exec) eventName(sc *scope, name string) string {
	if v, ok := sc.lookup(name); ok {
		if e, ok := v.(EventVal); ok {
			return string(e)
		}
	}
	return name
}

// stateFor finds the state handling an occurrence.
func (ex *exec) stateFor(b *Block, sc *scope, occ manifold.Occurrence) *State {
	for _, s := range b.States {
		for _, l := range s.Labels {
			if ex.eventName(sc, l.Event) != occ.Event {
				continue
			}
			if l.Source != "" {
				v, ok := sc.lookup(l.Source)
				if !ok {
					continue
				}
				pv, ok := v.(*ProcVal)
				if !ok || pv.P != occ.Source {
					continue
				}
			}
			return s
		}
	}
	return nil
}

// waitToken is the blocking handle produced by terminated(...): the state
// loop waits for the token event alongside the preempting labels.
type waitToken struct {
	event string // "" means wait forever (terminated(void))
}

// stateResult tells the block loop how a state ended.
type stateResult int

const (
	stateCompleted stateResult = iota
	stateHalted
	statePreempted
)

// runState executes one state's body. It returns statePreempted plus the
// occurrence when a label event preempts the body (either mid-way through
// a nested block, or while blocked in a trailing terminated/IDLE action).
func (ex *exec) runState(st *State, sc *scope, stScope *manifold.Scope, rules []streamRule, waitSet []manifold.Label) (stateResult, manifold.Occurrence) {
	outcome, tok, pre := ex.runBody(st.Body, sc, stScope, rules, waitSet)
	switch outcome {
	case bodyHalt:
		return stateHalted, manifold.Occurrence{}
	case bodyPreempted:
		return statePreempted, pre
	case bodyBlocked:
		// Wait for the blocking action's token or a preempting label.
		set := waitSet
		if tok.event != "" {
			set = append([]manifold.Label{{Event: tok.event}}, waitSet...)
			ex.proc.Observe(tok.event)
		}
		occ := ex.proc.Wait(set...)
		if tok.event != "" && occ.Event == tok.event {
			return stateCompleted, manifold.Occurrence{}
		}
		return statePreempted, occ
	}
	return stateCompleted, manifold.Occurrence{}
}

// body outcomes.
type bodyOutcome int

const (
	bodyDone bodyOutcome = iota
	bodyBlocked
	bodyHalt
	bodyPreempted
)

func (ex *exec) runBody(body StateBody, sc *scope, stScope *manifold.Scope, rules []streamRule, waitSet []manifold.Label) (bodyOutcome, waitToken, manifold.Occurrence) {
	switch b := body.(type) {
	case nil:
		return bodyDone, waitToken{}, manifold.Occurrence{}
	case *Block:
		out, occ := ex.runBlock(b, sc, waitSet)
		switch out {
		case blockHalted:
			return bodyHalt, waitToken{}, manifold.Occurrence{}
		case blockPreempted:
			return bodyPreempted, waitToken{}, occ
		}
		return bodyDone, waitToken{}, manifold.Occurrence{}
	case *Group:
		return ex.runStmts(b.Actions, sc, stScope, rules, waitSet)
	case *Seq:
		return ex.runStmts(b.Stmts, sc, stScope, rules, waitSet)
	}
	return bodyDone, waitToken{}, manifold.Occurrence{}
}

func (ex *exec) runStmts(stmts []Stmt, sc *scope, stScope *manifold.Scope, rules []streamRule, waitSet []manifold.Label) (bodyOutcome, waitToken, manifold.Occurrence) {
	for i, st := range stmts {
		last := i == len(stmts)-1
		out, tok, pre := ex.runStmt(st, sc, stScope, rules, waitSet, last)
		if out != bodyDone {
			return out, tok, pre
		}
	}
	return bodyDone, waitToken{}, manifold.Occurrence{}
}

func (ex *exec) runStmt(st Stmt, sc *scope, stScope *manifold.Scope, rules []streamRule, waitSet []manifold.Label, last bool) (bodyOutcome, waitToken, manifold.Occurrence) {
	none := manifold.Occurrence{}
	switch s := st.(type) {
	case *Assign:
		v, ok := sc.lookup(s.Name)
		if !ok {
			ex.fail(s.Pos, "assignment to undeclared %q", s.Name)
		}
		cell, ok := v.(*VarVal)
		if !ok {
			ex.fail(s.Pos, "%q is not a variable process", s.Name)
		}
		cell.Set(ex.evalInt(s.Expr, sc))
		return bodyDone, waitToken{}, none
	case *Call:
		return ex.runCall(s, sc, stScope, rules, waitSet)
	case *If:
		if ex.evalInt(s.Cond, sc) != 0 {
			return ex.runBody(s.Then, sc, stScope, rules, waitSet)
		}
		if s.Else != nil {
			return ex.runBody(s.Else, sc, stScope, rules, waitSet)
		}
		return bodyDone, waitToken{}, none
	case *StreamExpr:
		ex.buildStreams(s, sc, stScope, rules)
		return bodyDone, waitToken{}, none
	case *Halt:
		return bodyHalt, waitToken{}, none
	case *NameAction:
		switch s.Name {
		case "preemptall":
			return bodyDone, waitToken{}, none // all labels already preempt
		case "halt":
			return bodyHalt, waitToken{}, none
		case "IDLE":
			return bodyBlocked, waitToken{}, none // terminated(void)
		default:
			return bodyDone, waitToken{}, none
		}
	case *Group:
		return ex.runStmts(s.Actions, sc, stScope, rules, waitSet)
	case *Seq:
		return ex.runStmts(s.Stmts, sc, stScope, rules, waitSet)
	case *Block:
		return ex.runBody(s, sc, stScope, rules, waitSet)
	}
	return bodyDone, waitToken{}, none
}

func (ex *exec) runCall(s *Call, sc *scope, stScope *manifold.Scope, rules []streamRule, waitSet []manifold.Label) (bodyOutcome, waitToken, manifold.Occurrence) {
	none := manifold.Occurrence{}
	switch s.Name {
	case "post":
		name, _ := ex.eventArg(s, sc)
		ex.proc.Post(name)
		return bodyDone, waitToken{}, none
	case "raise":
		name, _ := ex.eventArg(s, sc)
		ex.proc.Raise(name)
		return bodyDone, waitToken{}, none
	case "MES":
		var parts []any
		for _, a := range s.Args {
			parts = append(parts, ex.eval(a, sc))
		}
		fmt.Fprintf(ex.it.Output, "[%s] ", ex.proc.Name())
		fmt.Fprintln(ex.it.Output, parts...)
		return bodyDone, waitToken{}, none
	case "terminated":
		if n, ok := s.Args[0].(*Name); ok && n.Name == "void" {
			return bodyBlocked, waitToken{}, none // void never terminates
		}
		v := ex.eval(s.Args[0], sc)
		pv, ok := v.(*ProcVal)
		if !ok {
			ex.fail(s.Pos, "terminated needs a process, got %T", v)
		}
		tok := waitToken{event: fmt.Sprintf("__terminated#%d", ex.it.seq.Add(1))}
		ex.proc.Observe(tok.event)
		target := pv.P
		self := ex.proc
		go func() {
			target.Terminated()
			self.Post(tok.event)
		}()
		return bodyBlocked, tok, none
	default:
		// Manner call or manifold instantiation-as-action.
		if v, ok := sc.lookup(s.Name); ok {
			if mv, ok := v.(*ManifoldVal); ok {
				ex.instantiateAction(s, mv.Decl, sc)
				return bodyDone, waitToken{}, none
			}
		}
		d, ok := ex.it.decls[s.Name]
		if !ok {
			ex.fail(s.Pos, "call to unknown %q", s.Name)
		}
		if d.Kind == DeclManner {
			args := ex.evalArgs(s.Args, sc)
			mnSc := &scope{vars: map[string]Value{}}
			for i, prm := range d.Params {
				if prm.Name != "" {
					mnSc.vars[prm.Name] = args[i]
				}
			}
			out, occ := ex.runBlock(d.Body, mnSc, waitSet)
			switch out {
			case blockPreempted:
				return bodyPreempted, waitToken{}, occ
			}
			// A manner returning by halt returns control to the caller —
			// it does not halt the caller.
			return bodyDone, waitToken{}, none
		}
		ex.instantiateAction(s, d, sc)
		return bodyDone, waitToken{}, none
	}
}

// instantiateAction creates and activates an instance of a manifold used
// as an action (e.g. `Master(argv)` in expression/action position).
func (ex *exec) instantiateAction(s *Call, d *TopDecl, sc *scope) *ProcVal {
	args := ex.evalArgs(s.Args, sc)
	p, err := ex.it.instantiate(d, args)
	if err != nil {
		ex.fail(s.Pos, "%v", err)
	}
	p.Activate()
	return &ProcVal{P: p}
}

func (ex *exec) eventArg(s *Call, sc *scope) (string, bool) {
	n, ok := s.Args[0].(*Name)
	if !ok {
		ex.fail(s.Pos, "%s needs an event name", s.Name)
	}
	return ex.eventName(sc, n.Name), true
}

// createProcess handles a `process x is T(args).` declaration.
func (ex *exec) createProcess(bd BlockDecl, sc *scope) Value {
	if bd.TypeName == "variable" {
		v := &VarVal{}
		if len(bd.Args) == 1 {
			v.Set(ex.evalInt(bd.Args[0], sc))
		}
		return v
	}
	var d *TopDecl
	if v, ok := sc.lookup(bd.TypeName); ok {
		if mv, ok := v.(*ManifoldVal); ok {
			d = mv.Decl
		}
	}
	if d == nil {
		dd, ok := ex.it.decls[bd.TypeName]
		if !ok {
			ex.fail(bd.Pos, "unknown manifold %q", bd.TypeName)
		}
		d = dd
	}
	args := ex.evalArgs(bd.Args, sc)
	p, err := ex.it.instantiate(d, args)
	if err != nil {
		ex.fail(bd.Pos, "%v", err)
	}
	if bd.Auto {
		p.Activate()
	}
	return &ProcVal{P: p}
}

// buildStreams wires a chain a -> b -> c.port inside the state scope.
func (ex *exec) buildStreams(se *StreamExpr, sc *scope, stScope *manifold.Scope, rules []streamRule) {
	terms := se.Terms
	for i := 0; i+1 < len(terms); i++ {
		src, dst := terms[i], terms[i+1]
		dstPort := ex.portOf(dst, sc, true)
		typ := manifold.BK
		for _, r := range rules {
			if r.src == src.Name && r.dst == dst.Name && (r.dstPort == "" || r.dstPort == dst.Port) {
				if r.kk {
					typ = manifold.KK
				}
			}
		}
		if src.Ref {
			// The reference itself flows as a unit: the executing
			// coordinator writes &proc through its own output port.
			v, ok := sc.lookup(src.Name)
			if !ok {
				ex.fail(src.Pos, "unknown process %q", src.Name)
			}
			pv, ok := v.(*ProcVal)
			if !ok {
				ex.fail(src.Pos, "&%s is not a process", src.Name)
			}
			stScope.Connect(ex.proc.Output(), dstPort, typ)
			ex.proc.Output().Write(pv.P)
			continue
		}
		srcPort := ex.portOf(src, sc, false)
		stScope.Connect(srcPort, dstPort, typ)
	}
}

// portOf resolves a stream term to a port (default: input for sinks,
// output for sources).
func (ex *exec) portOf(t StreamTerm, sc *scope, sink bool) *manifold.Port {
	v, ok := sc.lookup(t.Name)
	if !ok {
		ex.fail(t.Pos, "unknown process %q in stream", t.Name)
	}
	pv, ok := v.(*ProcVal)
	if !ok {
		ex.fail(t.Pos, "%q is not a process", t.Name)
	}
	port := t.Port
	if port == "" {
		if sink {
			port = "input"
		} else {
			port = "output"
		}
	}
	return pv.P.Port(port)
}

func (ex *exec) evalArgs(args []Expr, sc *scope) []Value {
	out := make([]Value, len(args))
	for i, a := range args {
		out[i] = ex.eval(a, sc)
	}
	return out
}

// eval evaluates an expression.
func (ex *exec) eval(e Expr, sc *scope) Value {
	switch x := e.(type) {
	case *Num:
		return IntVal(x.Value)
	case *Str:
		return StrVal(x.Value)
	case *Name:
		if v, ok := sc.lookup(x.Name); ok {
			if cell, ok := v.(*VarVal); ok {
				return IntVal(cell.Get())
			}
			return v
		}
		if d, ok := ex.it.decls[x.Name]; ok {
			return &ManifoldVal{Decl: d}
		}
		// Unbound names in argument position are global event names.
		return EventVal(x.Name)
	case *Unary:
		switch x.Op {
		case "&":
			v := ex.eval(x.X, sc)
			if pv, ok := v.(*ProcVal); ok {
				return pv
			}
			ex.fail(x.Pos, "& of non-process")
		case "-":
			return IntVal(-ex.evalInt(x.X, sc))
		}
	case *Binary:
		l := ex.evalInt(x.L, sc)
		r := ex.evalInt(x.R, sc)
		b2i := func(b bool) IntVal {
			if b {
				return 1
			}
			return 0
		}
		switch x.Op {
		case "+":
			return IntVal(l + r)
		case "-":
			return IntVal(l - r)
		case "*":
			return IntVal(l * r)
		case "/":
			if r == 0 {
				ex.fail(x.Pos, "division by zero")
			}
			return IntVal(l / r)
		case "<":
			return b2i(l < r)
		case "<=":
			return b2i(l <= r)
		case ">":
			return b2i(l > r)
		case ">=":
			return b2i(l >= r)
		case "==":
			return b2i(l == r)
		case "!=":
			return b2i(l != r)
		}
	case *CallExpr:
		// Instantiation in expression position: Master(argv).
		var d *TopDecl
		if v, ok := sc.lookup(x.Name); ok {
			if mv, ok := v.(*ManifoldVal); ok {
				d = mv.Decl
			}
		}
		if d == nil {
			dd, ok := ex.it.decls[x.Name]
			if !ok {
				ex.fail(x.Pos, "unknown %q", x.Name)
			}
			d = dd
		}
		return ex.instantiateAction(&Call{Pos: x.Pos, Name: x.Name, Args: x.Args}, d, sc)
	}
	ex.fail(Pos{}, "unhandled expression %T", e)
	return nil
}

func (ex *exec) evalInt(e Expr, sc *scope) int {
	v := ex.eval(e, sc)
	switch n := v.(type) {
	case IntVal:
		return int(n)
	case *VarVal:
		return n.Get()
	}
	ex.fail(Pos{}, "expected integer, got %T", v)
	return 0
}

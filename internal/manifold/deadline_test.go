package manifold

import (
	"errors"
	"testing"
	"time"
)

func TestReadWithinDeliversImmediately(t *testing.T) {
	env := NewEnv()
	a := env.NewProcess("a", nil)
	b := env.NewProcess("b", nil)
	Connect(a.Output(), b.Input(), BK)
	a.Output().Write(7)
	u, err := b.Input().ReadWithin(time.Second)
	if err != nil || u.(int) != 7 {
		t.Fatalf("ReadWithin = %v, %v", u, err)
	}
}

func TestReadWithinTimesOut(t *testing.T) {
	env := NewEnv()
	b := env.NewProcess("b", nil)
	start := time.Now()
	_, err := b.Input().ReadWithin(30 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatalf("returned before the deadline")
	}
}

func TestReadWithinWakesOnLateWrite(t *testing.T) {
	env := NewEnv()
	a := env.NewProcess("a", nil)
	b := env.NewProcess("b", nil)
	Connect(a.Output(), b.Input(), BK)
	go func() {
		time.Sleep(20 * time.Millisecond)
		a.Output().Write("late")
	}()
	u, err := b.Input().ReadWithin(5 * time.Second)
	if err != nil || u != "late" {
		t.Fatalf("ReadWithin = %v, %v", u, err)
	}
}

func TestReadWithinClosedPort(t *testing.T) {
	env := NewEnv()
	b := env.NewProcess("b", nil)
	b.Input().Close()
	_, err := b.Input().ReadWithin(time.Second)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestWaitWithinConsumesOccurrence(t *testing.T) {
	env := NewEnv()
	p := env.NewProcess("p", nil)
	p.Observe("tick")
	q := env.NewProcess("q", nil)
	q.Raise("tick")
	occ, ok := p.WaitWithin(time.Second, On("tick"))
	if !ok || occ.Event != "tick" || occ.Source != q {
		t.Fatalf("WaitWithin = %v, %v", occ, ok)
	}
	if n := len(p.Memory().Pending()); n != 0 {
		t.Fatalf("%d occurrences left in memory", n)
	}
}

func TestWaitWithinTimesOut(t *testing.T) {
	env := NewEnv()
	p := env.NewProcess("p", nil)
	p.Observe("never")
	start := time.Now()
	_, ok := p.WaitWithin(30*time.Millisecond, On("never"))
	if ok {
		t.Fatal("WaitWithin returned an occurrence out of thin air")
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("returned before the deadline")
	}
}

func TestWaitWithinWakesOnLateRaise(t *testing.T) {
	env := NewEnv()
	p := env.NewProcess("p", nil)
	p.Observe("go")
	q := env.NewProcess("q", nil)
	go func() {
		time.Sleep(20 * time.Millisecond)
		q.Raise("go")
	}()
	occ, ok := p.WaitWithin(5*time.Second, On("go"))
	if !ok || occ.Event != "go" {
		t.Fatalf("WaitWithin = %v, %v", occ, ok)
	}
}

package mconfig

import (
	"strings"
	"testing"
)

func TestParsePaperConfig(t *testing.T) {
	c, err := Parse(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Hosts) != 5 {
		t.Fatalf("%d hosts", len(c.Hosts))
	}
	if c.Hosts["host1"] != "diplice.sen.cwi.nl" {
		t.Fatalf("host1 = %s", c.Hosts["host1"])
	}
	locus := c.Loci["mainprog"]
	want := []string{
		"diplice.sen.cwi.nl", "alboka.sen.cwi.nl", "altfluit.sen.cwi.nl",
		"arghul.sen.cwi.nl", "basfluit.sen.cwi.nl",
	}
	if len(locus) != len(want) {
		t.Fatalf("locus = %v", locus)
	}
	for i := range want {
		if locus[i] != want[i] {
			t.Fatalf("locus[%d] = %s, want %s", i, locus[i], want[i])
		}
	}
}

func TestHostNamesOrder(t *testing.T) {
	c, err := Parse(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	names := c.HostNames()
	if names[0] != "diplice.sen.cwi.nl" || names[4] != "basfluit.sen.cwi.nl" {
		t.Fatalf("names = %v", names)
	}
}

func TestLiteralHostInLocus(t *testing.T) {
	c, err := Parse("{locus t direct.example.org}")
	if err != nil {
		t.Fatal(err)
	}
	if c.Loci["t"][0] != "direct.example.org" {
		t.Fatalf("locus = %v", c.Loci["t"])
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"{host only_two}",
		"{host a x} {host a y}",
		"{locus t $missing}",
		"{locus t}",
		"{banana 1 2}",
		"no braces here",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	src := "# config\n\n{host h1 a.example} # inline\n{locus t $h1}\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Loci["t"][0] != "a.example" {
		t.Fatalf("locus = %v", c.Loci["t"])
	}
}

func TestPlacerRoundRobin(t *testing.T) {
	c, err := Parse(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Placer("mainprog")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i := 0; i < 12; i++ {
		seen[p.Next()]++
	}
	// 12 placements over 5 hosts: counts of 2 or 3 each.
	for _, h := range p.Hosts() {
		if seen[h] < 2 || seen[h] > 3 {
			t.Fatalf("host %s placed %d times, want 2-3 (%v)", h, seen[h], seen)
		}
	}
}

func TestPlacerUnknownTask(t *testing.T) {
	c, _ := Parse(PaperConfig())
	if _, err := c.Placer("ghost"); err == nil || !strings.Contains(err.Error(), "no locus") {
		t.Fatalf("err = %v", err)
	}
}

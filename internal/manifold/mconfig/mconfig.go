// Package mconfig implements the runtime-configuration stage of the
// MANIFOLD system (the CONFIG tool of §6): the host file format
//
//	{host host1 diplice.sen.cwi.nl}
//	{host host2 alboka.sen.cwi.nl}
//	{locus mainprog $host1 $host2}
//
// and the placement of task instances onto hosts. The locus line states on
// which machines instances of a task may be started; CONFIG hands them out
// round-robin as instances are forked during the run.
package mconfig

import (
	"fmt"
	"strings"
)

// Config is a parsed CONFIG input file.
type Config struct {
	// Hosts maps host variables to machine names.
	Hosts map[string]string
	// Loci maps task names to the ordered machine names (resolved) on
	// which their instances may run.
	Loci map[string][]string

	hostOrder []string
}

// Parse reads a CONFIG host file.
func Parse(src string) (*Config, error) {
	c := &Config{Hosts: map[string]string{}, Loci: map[string][]string{}}
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			return nil, fmt.Errorf("mconfig: line %d: expected {...}, got %q", ln+1, line)
		}
		fields := strings.Fields(strings.TrimSuffix(strings.TrimPrefix(line, "{"), "}"))
		if len(fields) == 0 {
			return nil, fmt.Errorf("mconfig: line %d: empty clause", ln+1)
		}
		switch fields[0] {
		case "host":
			if len(fields) != 3 {
				return nil, fmt.Errorf("mconfig: line %d: host needs variable and machine", ln+1)
			}
			if _, dup := c.Hosts[fields[1]]; dup {
				return nil, fmt.Errorf("mconfig: line %d: host %s redefined", ln+1, fields[1])
			}
			c.Hosts[fields[1]] = fields[2]
			c.hostOrder = append(c.hostOrder, fields[1])
		case "locus":
			if len(fields) < 3 {
				return nil, fmt.Errorf("mconfig: line %d: locus needs a task and at least one host", ln+1)
			}
			task := fields[1]
			for _, h := range fields[2:] {
				name, err := c.resolve(h)
				if err != nil {
					return nil, fmt.Errorf("mconfig: line %d: %w", ln+1, err)
				}
				c.Loci[task] = append(c.Loci[task], name)
			}
		default:
			return nil, fmt.Errorf("mconfig: line %d: unknown clause %q", ln+1, fields[0])
		}
	}
	return c, nil
}

// resolve maps a $variable (or literal machine name) to a machine name.
func (c *Config) resolve(ref string) (string, error) {
	if !strings.HasPrefix(ref, "$") {
		return ref, nil
	}
	name, ok := c.Hosts[ref[1:]]
	if !ok {
		return "", fmt.Errorf("undefined host variable %s", ref)
	}
	return name, nil
}

// HostNames returns the machine names in declaration order.
func (c *Config) HostNames() []string {
	out := make([]string, 0, len(c.hostOrder))
	for _, v := range c.hostOrder {
		out = append(out, c.Hosts[v])
	}
	return out
}

// Placer hands out hosts for new task instances of one task, round-robin
// over its locus.
type Placer struct {
	hosts []string
	next  int
}

// Placer returns a placer for the task, or an error if it has no locus.
func (c *Config) Placer(task string) (*Placer, error) {
	hosts, ok := c.Loci[task]
	if !ok || len(hosts) == 0 {
		return nil, fmt.Errorf("mconfig: no locus for task %q", task)
	}
	return &Placer{hosts: append([]string(nil), hosts...)}, nil
}

// Next returns the machine for the next fresh task instance.
func (p *Placer) Next() string {
	h := p.hosts[p.next%len(p.hosts)]
	p.next++
	return h
}

// Hosts returns the locus machines in order.
func (p *Placer) Hosts() []string { return append([]string(nil), p.hosts...) }

// PaperConfig returns the CONFIG file from §6 of the paper.
func PaperConfig() string {
	return `{host host1 diplice.sen.cwi.nl}
{host host2 alboka.sen.cwi.nl}
{host host3 altfluit.sen.cwi.nl}
{host host4 arghul.sen.cwi.nl}
{host host5 basfluit.sen.cwi.nl}
{locus mainprog $host1 $host2 $host3 $host4 $host5}
`
}

// PaperMlink returns the MLINK file from §6 of the paper.
func PaperMlink() string {
	return `{task *
    {perpetual}
    {load 1}
    {weight Master 1}
    {weight Worker 1}
}
{task mainprog
    {include mainprog.o}
    {include protocolMW.o}
}
`
}

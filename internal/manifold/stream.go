package manifold

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrTimeout is returned by deadline-aware reads and waits when the
// deadline expires before a unit (or occurrence) arrives.
var ErrTimeout = errors.New("manifold: deadline expired")

// ErrClosed is returned by deadline-aware reads on a closed, drained port.
var ErrClosed = errors.New("manifold: port closed")

// Port is an opening in a process's bounding wall. A process reads units
// from its own ports and writes units to its own ports; it is always a
// third party that connects ports with streams.
type Port struct {
	owner *Process
	name  string

	mu   sync.Mutex
	cond *sync.Cond
	// queue holds units that have arrived for this port (as a sink).
	queue []Unit
	// outgoing is the set of streams currently attached with this port as
	// their source.
	outgoing []*Stream
	// pendingOut buffers units written while no stream is attached; they
	// flush to the first stream that connects (so a worker may start
	// producing before the coordinator has wired it up).
	pendingOut []Unit
	closed     bool
}

func newPort(owner *Process, name string) *Port {
	p := &Port{owner: owner, name: name}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Name returns the port name.
func (pt *Port) Name() string { return pt.name }

// Owner returns the process the port belongs to.
func (pt *Port) Owner() *Process { return pt.owner }

func (pt *Port) String() string { return fmt.Sprintf("%s.%s", pt.owner.name, pt.name) }

// Write emits a unit through the port: it is replicated onto every stream
// currently attached to the port as a source. With no stream attached the
// unit is buffered until a connection is made. Write never blocks
// indefinitely (streams are asynchronous, unbounded).
func (pt *Port) Write(u Unit) {
	pt.mu.Lock()
	if pt.closed {
		pt.mu.Unlock()
		panic(fmt.Sprintf("manifold: write on closed port %s", pt))
	}
	streams := append([]*Stream(nil), pt.outgoing...)
	if len(streams) == 0 {
		pt.pendingOut = append(pt.pendingOut, u)
		pt.mu.Unlock()
		return
	}
	pt.mu.Unlock()
	for _, s := range streams {
		s.forward(u)
	}
}

// Read blocks until a unit arrives at the port and returns it. The second
// result is false when the port has been closed and drained.
func (pt *Port) Read() (Unit, bool) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	for len(pt.queue) == 0 && !pt.closed {
		pt.cond.Wait()
	}
	if len(pt.queue) == 0 {
		return nil, false
	}
	u := pt.queue[0]
	pt.queue = pt.queue[1:]
	return u, true
}

// MustRead reads a unit and panics if the port is closed — for processes
// whose protocol guarantees a unit will arrive.
func (pt *Port) MustRead() Unit {
	u, ok := pt.Read()
	if !ok {
		panic(fmt.Sprintf("manifold: read on closed port %s", pt))
	}
	return u
}

// ReadWithin blocks like Read but gives up after d: it returns ErrTimeout
// when no unit arrives within the deadline and ErrClosed when the port has
// been closed and drained. A master with a deadline on a worker uses this
// so that it is never stuck forever on a hung producer.
func (pt *Port) ReadWithin(d time.Duration) (Unit, error) {
	return pt.ReadUntil(time.Now().Add(d))
}

// ReadUntil is ReadWithin against an absolute deadline — the form used
// when a deadline propagates through layers (an HTTP request deadline
// flowing down to a worker read) and must not be stretched by repeated
// relative-deadline restarts.
func (pt *Port) ReadUntil(deadline time.Time) (Unit, error) {
	d := time.Until(deadline)
	pt.mu.Lock()
	defer pt.mu.Unlock()
	for len(pt.queue) == 0 && !pt.closed {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if r := pt.owner.env.Recorder(); r != nil {
				r.Emit(obs.KDeadlineExpired, pt.String(), "", d.Microseconds(), 0)
			}
			return nil, ErrTimeout
		}
		// sync.Cond has no timed wait; a timer broadcast stands in for one.
		// A spurious broadcast after Stop is harmless: the loop re-checks.
		t := time.AfterFunc(remaining, func() {
			pt.mu.Lock()
			pt.cond.Broadcast()
			pt.mu.Unlock()
		})
		pt.cond.Wait()
		t.Stop()
	}
	if len(pt.queue) == 0 {
		return nil, ErrClosed
	}
	u := pt.queue[0]
	pt.queue = pt.queue[1:]
	return u, nil
}

// TryRead returns the next unit without blocking.
func (pt *Port) TryRead() (Unit, bool) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if len(pt.queue) == 0 {
		return nil, false
	}
	u := pt.queue[0]
	pt.queue = pt.queue[1:]
	return u, true
}

// Close marks the port closed: pending units can still be read; further
// reads return ok=false, further writes panic.
func (pt *Port) Close() {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	pt.closed = true
	pt.cond.Broadcast()
}

// Len returns the number of queued (unread) units.
func (pt *Port) Len() int {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return len(pt.queue)
}

// deposit appends a unit to the port's sink queue.
func (pt *Port) deposit(u Unit) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.closed {
		return // unit dropped: consumer is gone
	}
	pt.queue = append(pt.queue, u)
	pt.cond.Broadcast()
}

// attach registers s as an outgoing stream of the port and flushes any
// buffered output into it.
func (pt *Port) attach(s *Stream) {
	pt.mu.Lock()
	flush := pt.pendingOut
	pt.pendingOut = nil
	pt.outgoing = append(pt.outgoing, s)
	pt.mu.Unlock()
	for _, u := range flush {
		s.forward(u)
	}
}

// detach removes s from the port's outgoing streams.
func (pt *Port) detach(s *Stream) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	for i, o := range pt.outgoing {
		if o == s {
			pt.outgoing = append(pt.outgoing[:i], pt.outgoing[i+1:]...)
			return
		}
	}
}

// Stream is an asynchronous channel from a source port to a sink port.
// Units written to the source are forwarded to the sink's queue; a broken
// stream forwards nothing, but units already delivered remain readable
// (disconnection from the producer does not disconnect the consumer).
type Stream struct {
	Type StreamType
	src  *Port
	dst  *Port

	mu     sync.Mutex
	broken bool
}

// Connect creates a stream of the given type from src to dst and attaches
// it. Buffered output pending at src flushes immediately.
func Connect(src, dst *Port, typ StreamType) *Stream {
	s := &Stream{Type: typ, src: src, dst: dst}
	if r := src.owner.env.Recorder(); r != nil {
		r.Emit(obs.KStreamConnect, src.String(), dst.String(), int64(typ), 0)
	}
	src.attach(s)
	return s
}

// Source returns the producer port.
func (s *Stream) Source() *Port { return s.src }

// Sink returns the consumer port.
func (s *Stream) Sink() *Port { return s.dst }

func (s *Stream) forward(u Unit) {
	s.mu.Lock()
	broken := s.broken
	s.mu.Unlock()
	if broken {
		return
	}
	s.dst.deposit(u)
}

// Break disconnects the stream from its producer. Units already delivered
// to the sink remain readable.
func (s *Stream) Break() {
	s.mu.Lock()
	if s.broken {
		s.mu.Unlock()
		return
	}
	s.broken = true
	s.mu.Unlock()
	if r := s.src.owner.env.Recorder(); r != nil {
		r.Emit(obs.KStreamBreak, s.src.String(), s.dst.String(), int64(s.Type), 0)
	}
	s.src.detach(s)
}

// Broken reports whether the stream has been disconnected from its source.
func (s *Stream) Broken() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.broken
}

// Scope groups the streams constructed while a coordinator is in one
// state. Preempting the state dismantles the scope: BK streams are broken
// at their sources, KK streams stay intact — exactly the paper's stream
// semantics in the create_worker state (`stream KK worker -> master.dataport`).
type Scope struct {
	streams []*Stream
}

// Connect creates a stream inside the scope.
func (sc *Scope) Connect(src, dst *Port, typ StreamType) *Stream {
	s := Connect(src, dst, typ)
	sc.streams = append(sc.streams, s)
	return s
}

// Dismantle applies the per-type dismantling rules and empties the scope.
// KK streams survive and are returned to the caller (they belong to no
// scope afterwards).
func (sc *Scope) Dismantle() []*Stream {
	var kept []*Stream
	for _, s := range sc.streams {
		if s.Type == KK {
			kept = append(kept, s)
			continue
		}
		s.Break()
	}
	sc.streams = nil
	return kept
}

// Streams returns the streams currently in the scope.
func (sc *Scope) Streams() []*Stream { return append([]*Stream(nil), sc.streams...) }

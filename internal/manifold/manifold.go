// Package manifold is a Go runtime for the IWIM (Idealized Worker
// Idealized Manager) coordination model underlying the MANIFOLD language of
// the paper. Its basic concepts are exactly MANIFOLD's:
//
//   - Processes are black boxes that read and write only through the ports
//     in their own bounding walls; they never address each other directly.
//   - Streams are asynchronous channels connecting an output port of one
//     process to an input port of another. They are set up from the
//     outside, by a third party (exogenous coordination). A stream has a
//     dismantling type: a BK (Break-Keep) stream is disconnected from its
//     producer when the state that created it is preempted, while a KK
//     (Keep-Keep) stream survives preemption — the paper uses a KK stream
//     to keep a remote worker's results flowing to the master.
//   - Events are broadcast: raising an event makes an occurrence visible in
//     the event memory of every process observing that event name. A
//     process reacts by waiting on a prioritized list of labels, which is
//     how MANIFOLD state transitions are driven.
//   - Process references are first-class units: a coordinator can send
//     &worker through a stream, and the receiver can activate it.
//
// Processes run as goroutines ("threads bundled in task instances" in
// MANIFOLD terms); the package is safe for concurrent use.
package manifold

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Unit is a datum flowing through a stream. Process references (*Process)
// are legal units, which is how the paper's coordinator ships &worker to
// the master.
type Unit any

// StreamType is the dismantling behaviour of a stream.
type StreamType int

const (
	// BK (Break-Keep) is the default: on dismantling the stream is broken
	// at its source — no new units enter — but units already in transit
	// still reach the consumer.
	BK StreamType = iota
	// KK (Keep-Keep) streams survive dismantling at both ends.
	KK
)

func (t StreamType) String() string {
	if t == KK {
		return "KK"
	}
	return "BK"
}

// Env is one coordination application: a set of processes plus the event
// bus connecting them.
type Env struct {
	mu    sync.Mutex
	procs []*Process
	wg    sync.WaitGroup
	rec   atomic.Pointer[obs.Recorder]
}

// SetRecorder attaches an observability recorder to the application:
// stream wiring (connect/break) and deadline expiries are recorded from
// then on. A nil recorder (the default) costs nothing. Safe to call
// concurrently with running processes, though it is normally set once
// before activation.
func (e *Env) SetRecorder(r *obs.Recorder) { e.rec.Store(r) }

// Recorder returns the attached recorder, or nil when observability is
// off.
func (e *Env) Recorder() *obs.Recorder { return e.rec.Load() }

// NewEnv creates an empty application.
func NewEnv() *Env { return &Env{} }

// Wait blocks until every activated process has returned.
func (e *Env) Wait() { e.wg.Wait() }

// Processes returns a snapshot of all created processes.
func (e *Env) Processes() []*Process {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Process(nil), e.procs...)
}

// Process is an IWIM process: a named black box with ports, an event
// memory, and (once activated) a body goroutine.
type Process struct {
	name string
	env  *Env

	mu        sync.Mutex
	ports     map[string]*Port
	body      func(*Process)
	activated bool
	done      chan struct{}

	memory *EventMemory
}

// NewProcess creates a process with the standard MANIFOLD ports (input,
// output, error) plus any extra named ports (e.g. the paper master's
// "dataport"). The process does not run until Activate is called.
func (e *Env) NewProcess(name string, body func(*Process), extraPorts ...string) *Process {
	p := &Process{
		name:   name,
		env:    e,
		ports:  make(map[string]*Port),
		body:   body,
		done:   make(chan struct{}),
		memory: newEventMemory(),
	}
	for _, pn := range append([]string{"input", "output", "error"}, extraPorts...) {
		p.ports[pn] = newPort(p, pn)
	}
	e.mu.Lock()
	e.procs = append(e.procs, p)
	e.mu.Unlock()
	return p
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Env returns the application the process belongs to.
func (p *Process) Env() *Env { return p.env }

func (p *Process) String() string { return fmt.Sprintf("process(%s)", p.name) }

// Port returns the named port, panicking if it does not exist (a port is
// an opening in the process's own bounding wall, fixed at creation).
func (p *Process) Port(name string) *Port {
	p.mu.Lock()
	defer p.mu.Unlock()
	pt, ok := p.ports[name]
	if !ok {
		panic(fmt.Sprintf("manifold: process %s has no port %q", p.name, name))
	}
	return pt
}

// Input is shorthand for Port("input").
func (p *Process) Input() *Port { return p.Port("input") }

// Output is shorthand for Port("output").
func (p *Process) Output() *Port { return p.Port("output") }

// Activate starts the process body in its own goroutine. Activating twice
// panics; activating a process with a nil body just marks it terminated.
func (p *Process) Activate() {
	p.mu.Lock()
	if p.activated {
		p.mu.Unlock()
		panic(fmt.Sprintf("manifold: process %s activated twice", p.name))
	}
	p.activated = true
	body := p.body
	p.mu.Unlock()

	p.env.wg.Add(1)
	go func() {
		defer p.env.wg.Done()
		defer close(p.done)
		if body != nil {
			body(p)
		}
	}()
}

// Done returns a channel closed when the process body has returned.
func (p *Process) Done() <-chan struct{} { return p.done }

// Terminated blocks until the process has terminated (the MANIFOLD
// primitive terminated(p)).
func (p *Process) Terminated() { <-p.done }

// Observe declares interest in event names: occurrences of these events
// raised anywhere in the application are kept in this process's event
// memory until consumed by Wait. Without a declaration, raised events pass
// the process by (MANIFOLD processes react only to events they have
// handling states or save declarations for).
func (p *Process) Observe(names ...string) {
	p.memory.observe(names...)
}

// Raise broadcasts an event occurrence, with this process as its source,
// to the event memory of every observing process in the application
// (including, possibly, itself).
func (p *Process) Raise(event string) {
	occ := Occurrence{Event: event, Source: p}
	p.env.mu.Lock()
	procs := append([]*Process(nil), p.env.procs...)
	p.env.mu.Unlock()
	for _, q := range procs {
		q.memory.deliver(occ)
	}
}

// Post puts an occurrence (with this process as source) into this
// process's own event memory only — MANIFOLD's post primitive, used for
// self-transitions. The event need not be observed.
func (p *Process) Post(event string) {
	p.memory.deliverAlways(Occurrence{Event: event, Source: p})
}

// Wait blocks until the event memory holds an occurrence matching one of
// the labels and returns it (removing it from memory). Labels are in
// priority order: a matching occurrence for labels[0] is preferred over
// labels[1] even if the latter arrived first — this is MANIFOLD's
// `priority a > b` declaration.
func (p *Process) Wait(labels ...Label) Occurrence {
	return p.memory.wait(labels)
}

// WaitWithin is Wait with a deadline: it returns ok=false when no matching
// occurrence arrives within d. Nothing is consumed on timeout.
func (p *Process) WaitWithin(d time.Duration, labels ...Label) (Occurrence, bool) {
	return p.memory.waitWithin(labels, d)
}

// Label matches event occurrences by name and, optionally, source.
type Label struct {
	Event  string
	Source *Process // nil matches any source
}

// On is a convenience constructor for a source-agnostic label.
func On(event string) Label { return Label{Event: event} }

// From is a convenience constructor for a source-filtered label.
func From(event string, src *Process) Label { return Label{Event: event, Source: src} }

// Occurrence is one raised event instance in an event memory.
type Occurrence struct {
	Event  string
	Source *Process
}

func (o Occurrence) String() string {
	src := "?"
	if o.Source != nil {
		src = o.Source.name
	}
	return fmt.Sprintf("%s@%s", o.Event, src)
}

// EventMemory is a process's mailbox of pending event occurrences.
type EventMemory struct {
	mu       sync.Mutex
	cond     *sync.Cond
	observed map[string]bool
	pending  []Occurrence
}

func newEventMemory() *EventMemory {
	m := &EventMemory{observed: make(map[string]bool)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *EventMemory) observe(names ...string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range names {
		m.observed[n] = true
	}
}

func (m *EventMemory) deliver(o Occurrence) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.observed[o.Event] {
		return
	}
	m.pending = append(m.pending, o)
	m.cond.Broadcast()
}

func (m *EventMemory) deliverAlways(o Occurrence) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending = append(m.pending, o)
	m.cond.Broadcast()
}

func (m *EventMemory) wait(labels []Label) Occurrence {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for _, l := range labels { // label order = priority order
			for i, o := range m.pending { // FIFO within a label
				if o.Event == l.Event && (l.Source == nil || l.Source == o.Source) {
					m.pending = append(m.pending[:i], m.pending[i+1:]...)
					return o
				}
			}
		}
		m.cond.Wait()
	}
}

func (m *EventMemory) waitWithin(labels []Label, d time.Duration) (Occurrence, bool) {
	deadline := time.Now().Add(d)
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for _, l := range labels {
			for i, o := range m.pending {
				if o.Event == l.Event && (l.Source == nil || l.Source == o.Source) {
					m.pending = append(m.pending[:i], m.pending[i+1:]...)
					return o, true
				}
			}
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return Occurrence{}, false
		}
		t := time.AfterFunc(remaining, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		m.cond.Wait()
		t.Stop()
	}
}

// Pending returns a snapshot of the unconsumed occurrences (for tests and
// debugging).
func (m *EventMemory) Pending() []Occurrence {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Occurrence(nil), m.pending...)
}

// Memory exposes the process's event memory.
func (p *Process) Memory() *EventMemory { return p.memory }

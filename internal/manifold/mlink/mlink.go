// Package mlink implements the task-composition stage of the MANIFOLD
// system: the MLINK input file format of §6 of the paper and the bundling
// of coordination-level process instances into operating-system level task
// instances.
//
//	{task *
//	    {perpetual}
//	    {load 1}
//	    {weight Master 1}
//	    {weight Worker 1}
//	}
//	{task mainprog
//	    {include mainprog.o}
//	    {include protocolMW.o}
//	}
//
// A task is "full" when its load exceeds the declared load; the weight
// clauses give each manifold's contribution. With {load 1} and weight 1
// every worker lands in its own task instance (the distributed
// deployment); raising the load to 6 bundles master and five workers into
// one task instance (the parallel deployment).
package mlink

import (
	"fmt"
	"strconv"
	"strings"
)

// TaskRule is one {task name ...} clause.
type TaskRule struct {
	// Name is the task name; "*" applies to every task.
	Name      string
	Perpetual bool
	// Load is the load at which a task instance is full; 0 means
	// unlimited.
	Load int
	// Weights maps manifold names to their load contribution (default 1).
	Weights map[string]int
	// Includes lists object files composed into the task executable.
	Includes []string
}

// File is a parsed MLINK input file.
type File struct {
	Rules []TaskRule
}

// sexpr is the brace-tree the MLINK and CONFIG formats share.
type sexpr struct {
	atoms []string
	kids  []*sexpr
}

// parseSexprs parses a sequence of {...} trees.
func parseSexprs(src string) ([]*sexpr, error) {
	toks := tokenize(src)
	var pos int
	var parseOne func() (*sexpr, error)
	parseOne = func() (*sexpr, error) {
		if pos >= len(toks) || toks[pos] != "{" {
			return nil, fmt.Errorf("mlink: expected { at token %d", pos)
		}
		pos++
		node := &sexpr{}
		for pos < len(toks) {
			switch toks[pos] {
			case "{":
				kid, err := parseOne()
				if err != nil {
					return nil, err
				}
				node.kids = append(node.kids, kid)
			case "}":
				pos++
				return node, nil
			default:
				node.atoms = append(node.atoms, toks[pos])
				pos++
			}
		}
		return nil, fmt.Errorf("mlink: unterminated { group")
	}
	var out []*sexpr
	for pos < len(toks) {
		if toks[pos] == "#" {
			pos++
			continue
		}
		n, err := parseOne()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func tokenize(src string) []string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		// # starts a comment line (the paper numbers lines with #).
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.ReplaceAll(line, "{", " { ")
		line = strings.ReplaceAll(line, "}", " } ")
		out = append(out, strings.Fields(line)...)
	}
	return out
}

// Parse reads an MLINK input file.
func Parse(src string) (*File, error) {
	nodes, err := parseSexprs(src)
	if err != nil {
		return nil, err
	}
	f := &File{}
	for _, n := range nodes {
		if len(n.atoms) < 1 || n.atoms[0] != "task" {
			return nil, fmt.Errorf("mlink: top-level clause must be {task ...}, got %v", n.atoms)
		}
		if len(n.atoms) < 2 {
			return nil, fmt.Errorf("mlink: task clause missing name")
		}
		rule := TaskRule{Name: n.atoms[1], Weights: map[string]int{}}
		for _, k := range n.kids {
			if len(k.atoms) == 0 {
				return nil, fmt.Errorf("mlink: empty clause in task %s", rule.Name)
			}
			switch k.atoms[0] {
			case "perpetual":
				rule.Perpetual = true
			case "load":
				if len(k.atoms) != 2 {
					return nil, fmt.Errorf("mlink: load needs one number")
				}
				v, err := strconv.Atoi(k.atoms[1])
				if err != nil || v < 1 {
					return nil, fmt.Errorf("mlink: bad load %q", k.atoms[1])
				}
				rule.Load = v
			case "weight":
				if len(k.atoms) != 3 {
					return nil, fmt.Errorf("mlink: weight needs manifold and number")
				}
				v, err := strconv.Atoi(k.atoms[2])
				if err != nil || v < 0 {
					return nil, fmt.Errorf("mlink: bad weight %q", k.atoms[2])
				}
				rule.Weights[k.atoms[1]] = v
			case "include":
				if len(k.atoms) != 2 {
					return nil, fmt.Errorf("mlink: include needs one file")
				}
				rule.Includes = append(rule.Includes, k.atoms[1])
			default:
				return nil, fmt.Errorf("mlink: unknown clause %q", k.atoms[0])
			}
		}
		f.Rules = append(f.Rules, rule)
	}
	return f, nil
}

// RuleFor returns the effective rule for a task name: clauses from the
// wildcard rule overlaid with the task's own rule.
func (f *File) RuleFor(task string) TaskRule {
	eff := TaskRule{Name: task, Weights: map[string]int{}}
	apply := func(r TaskRule) {
		if r.Perpetual {
			eff.Perpetual = true
		}
		if r.Load != 0 {
			eff.Load = r.Load
		}
		for k, v := range r.Weights {
			eff.Weights[k] = v
		}
		eff.Includes = append(eff.Includes, r.Includes...)
	}
	for _, r := range f.Rules {
		if r.Name == "*" {
			apply(r)
		}
	}
	for _, r := range f.Rules {
		if r.Name == task {
			apply(r)
		}
	}
	return eff
}

// Weight returns the load contribution of a manifold under a rule
// (default 1).
func (r TaskRule) Weight(manifold string) int {
	if w, ok := r.Weights[manifold]; ok {
		return w
	}
	return 1
}

// Instance is one task instance produced by the bundler.
type Instance struct {
	ID      int
	Task    string
	load    int
	members []string
	dead    bool
}

// Load returns the instance's current load.
func (i *Instance) Load() int { return i.load }

// Members returns the manifold names currently housed.
func (i *Instance) Members() []string { return append([]string(nil), i.members...) }

// Alive reports whether the instance still exists.
func (i *Instance) Alive() bool { return !i.dead }

// Bundler assigns process instances to task instances according to the
// MLINK rules, reproducing the runtime behaviour described in §6: a
// process goes into a live task instance with spare load if one exists
// (perpetual instances stay alive at load zero to welcome new workers),
// otherwise a fresh task instance comes into existence.
type Bundler struct {
	file      *File
	task      string
	rule      TaskRule
	instances []*Instance
	nextID    int
	forks     int
}

// NewBundler prepares bundling for the given task name.
func NewBundler(f *File, task string) *Bundler {
	return &Bundler{file: f, task: task, rule: f.RuleFor(task)}
}

// Rule returns the effective rule in force.
func (b *Bundler) Rule() TaskRule { return b.rule }

// Place assigns a process instance of the given manifold to a task
// instance, returning it and whether it was freshly created.
func (b *Bundler) Place(manifold string) (*Instance, bool) {
	w := b.rule.Weight(manifold)
	for _, inst := range b.instances {
		if !inst.dead && (b.rule.Load == 0 || inst.load+w <= b.rule.Load) {
			inst.load += w
			inst.members = append(inst.members, manifold)
			return inst, false
		}
	}
	b.nextID++
	b.forks++
	inst := &Instance{ID: b.nextID, Task: b.task, load: w, members: []string{manifold}}
	b.instances = append(b.instances, inst)
	return inst, true
}

// Leave removes a process of the given manifold from its instance. A
// non-perpetual instance dies at load zero.
func (b *Bundler) Leave(inst *Instance, manifold string) error {
	w := b.rule.Weight(manifold)
	if inst.load < w {
		return fmt.Errorf("mlink: instance %d load %d below weight %d", inst.ID, inst.load, w)
	}
	inst.load -= w
	for i, m := range inst.members {
		if m == manifold {
			inst.members = append(inst.members[:i], inst.members[i+1:]...)
			break
		}
	}
	if inst.load == 0 && !b.rule.Perpetual {
		inst.dead = true
	}
	return nil
}

// Instances returns every task instance ever created, dead or alive.
func (b *Bundler) Instances() []*Instance { return append([]*Instance(nil), b.instances...) }

// Forks returns how many fresh task instances were created.
func (b *Bundler) Forks() int { return b.forks }

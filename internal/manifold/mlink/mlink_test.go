package mlink

import (
	"testing"
	"testing/quick"

	"repro/internal/manifold/mconfig"
)

func TestParsePaperFile(t *testing.T) {
	f, err := Parse(mconfig.PaperMlink())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rules) != 2 {
		t.Fatalf("%d rules", len(f.Rules))
	}
	star := f.Rules[0]
	if star.Name != "*" || !star.Perpetual || star.Load != 1 {
		t.Fatalf("wildcard rule = %+v", star)
	}
	if star.Weights["Master"] != 1 || star.Weights["Worker"] != 1 {
		t.Fatalf("weights = %v", star.Weights)
	}
	mp := f.Rules[1]
	if mp.Name != "mainprog" || len(mp.Includes) != 2 {
		t.Fatalf("mainprog rule = %+v", mp)
	}
}

func TestRuleForOverlays(t *testing.T) {
	f, err := Parse(`
		{task * {perpetual} {load 1}}
		{task big {load 6}}
	`)
	if err != nil {
		t.Fatal(err)
	}
	eff := f.RuleFor("big")
	if eff.Load != 6 || !eff.Perpetual {
		t.Fatalf("effective rule = %+v", eff)
	}
	other := f.RuleFor("other")
	if other.Load != 1 || !other.Perpetual {
		t.Fatalf("fallback rule = %+v", other)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"{nottask x}",
		"{task}",
		"{task t {load zero}}",
		"{task t {load 0}}",
		"{task t {weight OnlyName}}",
		"{task t {mystery 1}}",
		"{task t",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestCommentsIgnored(t *testing.T) {
	f, err := Parse("# mainprog.mlink\n{task * {load 2}} # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.Rules[0].Load != 2 {
		t.Fatalf("rule = %+v", f.Rules[0])
	}
}

func TestDistributedBundling(t *testing.T) {
	// The paper's file: load 1, weight 1 — every process gets its own
	// task instance.
	f, _ := Parse(mconfig.PaperMlink())
	b := NewBundler(f, "mainprog")
	m, fresh := b.Place("Master")
	if !fresh || m.Load() != 1 {
		t.Fatalf("master placement: %+v fresh=%v", m, fresh)
	}
	w1, fresh1 := b.Place("Worker")
	w2, fresh2 := b.Place("Worker")
	if !fresh1 || !fresh2 || w1.ID == w2.ID || w1.ID == m.ID {
		t.Fatalf("workers not isolated: %v %v", w1, w2)
	}
}

func TestPerpetualReuseAfterDeath(t *testing.T) {
	f, _ := Parse(mconfig.PaperMlink())
	b := NewBundler(f, "mainprog")
	w1, _ := b.Place("Worker")
	if err := b.Leave(w1, "Worker"); err != nil {
		t.Fatal(err)
	}
	if !w1.Alive() {
		t.Fatal("perpetual instance died at load zero")
	}
	w2, fresh := b.Place("Worker")
	if fresh || w2.ID != w1.ID {
		t.Fatalf("expected reuse of instance %d, got %d fresh=%v", w1.ID, w2.ID, fresh)
	}
	if b.Forks() != 1 {
		t.Fatalf("forks = %d, want 1", b.Forks())
	}
}

func TestNonPerpetualDies(t *testing.T) {
	f, _ := Parse("{task * {load 1}}")
	b := NewBundler(f, "t")
	w, _ := b.Place("Worker")
	if err := b.Leave(w, "Worker"); err != nil {
		t.Fatal(err)
	}
	if w.Alive() {
		t.Fatal("non-perpetual instance survived load zero")
	}
	_, fresh := b.Place("Worker")
	if !fresh {
		t.Fatal("dead instance was reused")
	}
}

func TestParallelBundlingLoadSix(t *testing.T) {
	// The paper: "change the load on line 5 to 6" — master plus five
	// workers share one task instance.
	f, _ := Parse(`{task * {perpetual} {load 6} {weight Master 1} {weight Worker 1}}`)
	b := NewBundler(f, "mainprog")
	m, _ := b.Place("Master")
	for i := 0; i < 5; i++ {
		w, fresh := b.Place("Worker")
		if fresh || w.ID != m.ID {
			t.Fatalf("worker %d not bundled with master", i)
		}
	}
	if m.Load() != 6 {
		t.Fatalf("load = %d, want 6", m.Load())
	}
	w, fresh := b.Place("Worker")
	if !fresh || w.ID == m.ID {
		t.Fatal("seventh process must start a new task instance")
	}
}

func TestHeavyWeight(t *testing.T) {
	f, _ := Parse("{task * {load 4} {weight Big 3} {weight Small 1}}")
	b := NewBundler(f, "t")
	i1, _ := b.Place("Big")
	i2, fresh := b.Place("Small")
	if fresh || i2.ID != i1.ID {
		t.Fatal("small should fit beside big (3+1 <= 4)")
	}
	i3, fresh := b.Place("Big")
	if !fresh || i3.ID == i1.ID {
		t.Fatal("second big cannot fit (3+4 > 4)")
	}
	if err := b.Leave(i3, "Big"); err != nil {
		t.Fatal(err)
	}
	if err := b.Leave(i3, "Big"); err == nil {
		t.Fatal("leaving more weight than present must fail")
	}
}

func TestMembersTracking(t *testing.T) {
	f, _ := Parse("{task * {load 3}}")
	b := NewBundler(f, "t")
	i, _ := b.Place("A")
	b.Place("B")
	if got := i.Members(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("members = %v", got)
	}
	if err := b.Leave(i, "A"); err != nil {
		t.Fatal(err)
	}
	if got := i.Members(); len(got) != 1 || got[0] != "B" {
		t.Fatalf("members after leave = %v", got)
	}
}

// Property: with load L and unit weights, the bundler never exceeds L
// processes per instance and forks exactly ceil(n/L) instances for n
// sequential placements.
func TestPropBundlerCapacity(t *testing.T) {
	fn := func(nRaw, lRaw uint8) bool {
		n := int(nRaw%50) + 1
		l := int(lRaw%6) + 1
		f := &File{Rules: []TaskRule{{Name: "*", Load: l, Weights: map[string]int{}}}}
		b := NewBundler(f, "t")
		for i := 0; i < n; i++ {
			b.Place("W")
		}
		for _, inst := range b.Instances() {
			if inst.Load() > l {
				return false
			}
		}
		want := (n + l - 1) / l
		return b.Forks() == want
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package grid

import (
	"fmt"
	"math"
)

// Restrict samples a field onto a coarser (or equal) nested grid by
// injection: because grids are dyadic, every point of the target grid
// coincides with a point of the source grid. It panics if the target is
// finer in either direction or has a different root.
func (f *Field) Restrict(target Grid) *Field {
	src := f.G
	if target.Root != src.Root {
		panic(fmt.Sprintf("grid: restrict across roots %d -> %d", src.Root, target.Root))
	}
	if target.L1 > src.L1 || target.L2 > src.L2 {
		panic(fmt.Sprintf("grid: restrict to finer grid %v -> %v", src, target))
	}
	sx := 1 << uint(src.L1-target.L1)
	sy := 1 << uint(src.L2-target.L2)
	out := NewField(target)
	nx, ny := target.NX(), target.NY()
	for iy := 0; iy <= ny; iy++ {
		for ix := 0; ix <= nx; ix++ {
			out.Set(ix, iy, f.At(ix*sx, iy*sy))
		}
	}
	return out
}

// L2Norm returns the grid-weighted discrete L2 norm
// sqrt(hx*hy * sum f_ij^2) — an approximation of the continuous L2 norm.
func (f *Field) L2Norm() float64 {
	s := 0.0
	for _, v := range f.V {
		s += v * v
	}
	return math.Sqrt(f.G.Hx() * f.G.Hy() * s)
}

// L2Diff returns the discrete L2 norm of (f - g) on the common grid.
func (f *Field) L2Diff(g *Field) float64 {
	if f.G != g.G {
		panic("grid: L2Diff across different grids")
	}
	s := 0.0
	for i := range f.V {
		d := f.V[i] - g.V[i]
		s += d * d
	}
	return math.Sqrt(f.G.Hx() * f.G.Hy() * s)
}

// Mean returns the average of all grid-point values.
func (f *Field) Mean() float64 {
	s := 0.0
	for _, v := range f.V {
		s += v
	}
	return s / float64(len(f.V))
}

// AddScaled adds a*g to f in place (same grid).
func (f *Field) AddScaled(a float64, g *Field) {
	if f.G != g.G {
		panic("grid: AddScaled across different grids")
	}
	f.V.AXPY(a, g.V, nil)
}

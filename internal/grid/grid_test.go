package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGridDimensions(t *testing.T) {
	g := Grid{Root: 2, L1: 1, L2: 3}
	if g.NX() != 8 || g.NY() != 32 {
		t.Fatalf("NX,NY = %d,%d; want 8,32", g.NX(), g.NY())
	}
	if g.Hx() != 0.125 {
		t.Errorf("Hx = %g, want 0.125", g.Hx())
	}
	if g.Points() != 9*33 {
		t.Errorf("Points = %d, want %d", g.Points(), 9*33)
	}
	if g.Interior() != 7*31 {
		t.Errorf("Interior = %d, want %d", g.Interior(), 7*31)
	}
	if g.Level() != 4 {
		t.Errorf("Level = %d, want 4", g.Level())
	}
}

func TestFamilySizeMatchesPaper(t *testing.T) {
	// The paper: w = 2l + 1 workers for additional refinement level l.
	for level := 0; level <= 15; level++ {
		fam := Family(2, level)
		want := 2*level + 1
		if level == 0 {
			want = 1
		}
		if len(fam) != want {
			t.Fatalf("level %d: family size %d, want %d", level, len(fam), want)
		}
	}
}

func TestFamilyLevels(t *testing.T) {
	fam := Family(2, 3)
	counts := map[int]int{}
	for _, g := range fam {
		counts[g.Level()]++
		if g.Root != 2 {
			t.Fatalf("grid %v has wrong root", g)
		}
	}
	if counts[2] != 3 || counts[3] != 4 {
		t.Fatalf("family level counts = %v, want 3 at level 2, 4 at level 3", counts)
	}
}

func TestCombineCoefficient(t *testing.T) {
	if c := CombineCoefficient(Grid{Root: 2, L1: 1, L2: 2}, 3); c != 1 {
		t.Errorf("coefficient = %g, want 1", c)
	}
	if c := CombineCoefficient(Grid{Root: 2, L1: 1, L2: 1}, 3); c != -1 {
		t.Errorf("coefficient = %g, want -1", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-family grid")
		}
	}()
	CombineCoefficient(Grid{Root: 2, L1: 0, L2: 0}, 3)
}

func TestFieldFillAndAt(t *testing.T) {
	g := Grid{Root: 1, L1: 1, L2: 0}
	f := NewField(g)
	f.Fill(func(x, y float64) float64 { return x + 10*y })
	if v := f.At(2, 1); math.Abs(v-(0.5+5)) > 1e-15 {
		t.Fatalf("At(2,1) = %g, want 5.5", v)
	}
}

func TestEvalReproducesGridPoints(t *testing.T) {
	g := Grid{Root: 2, L1: 1, L2: 1}
	f := NewField(g)
	f.Fill(func(x, y float64) float64 { return math.Sin(3*x) * math.Cos(2*y) })
	for iy := 0; iy <= g.NY(); iy++ {
		for ix := 0; ix <= g.NX(); ix++ {
			got := f.Eval(g.X(ix), g.Y(iy))
			want := f.At(ix, iy)
			if math.Abs(got-want) > 1e-14 {
				t.Fatalf("Eval at grid point (%d,%d) = %g, want %g", ix, iy, got, want)
			}
		}
	}
}

func TestEvalExactForBilinear(t *testing.T) {
	g := Grid{Root: 2, L1: 0, L2: 2}
	f := NewField(g)
	bilin := func(x, y float64) float64 { return 2 + 3*x - y + 0.5*x*y }
	f.Fill(bilin)
	for _, pt := range [][2]float64{{0.3, 0.7}, {0.01, 0.99}, {1, 1}, {0, 0}, {0.5, 0.123}} {
		got := f.Eval(pt[0], pt[1])
		want := bilin(pt[0], pt[1])
		if math.Abs(got-want) > 1e-13 {
			t.Fatalf("Eval(%v) = %g, want %g", pt, got, want)
		}
	}
}

func TestProlongateNestedExact(t *testing.T) {
	// Prolongating to a finer grid then sampling the original points must
	// reproduce the original values exactly (dyadic nesting).
	coarse := Grid{Root: 1, L1: 1, L2: 1}
	fine := Grid{Root: 1, L1: 2, L2: 3}
	f := NewField(coarse)
	f.Fill(func(x, y float64) float64 { return math.Exp(x) + y*y })
	p := f.Prolongate(fine)
	for iy := 0; iy <= coarse.NY(); iy++ {
		for ix := 0; ix <= coarse.NX(); ix++ {
			x, y := coarse.X(ix), coarse.Y(iy)
			got := p.Eval(x, y)
			want := f.At(ix, iy)
			if math.Abs(got-want) > 1e-13 {
				t.Fatalf("prolongated value at (%g,%g) = %g, want %g", x, y, got, want)
			}
		}
	}
}

func TestCombineReproducesBilinear(t *testing.T) {
	// The combination of exact bilinear samples is the bilinear function:
	// (level+1) copies - level copies = 1 copy.
	root, level := 1, 3
	bilin := func(x, y float64) float64 { return 1 - 2*x + 4*y + 3*x*y }
	var fields []*Field
	for _, g := range Family(root, level) {
		f := NewField(g)
		f.Fill(bilin)
		fields = append(fields, f)
	}
	target := Grid{Root: root, L1: level, L2: level}
	u := Combine(fields, level, target)
	want := NewField(target)
	want.Fill(bilin)
	if d := u.MaxDiff(want); d > 1e-12 {
		t.Fatalf("combination error %g for bilinear function, want ~0", d)
	}
}

func TestCombineConvergesForSmooth(t *testing.T) {
	// For a smooth non-bilinear function the combination error on a fixed
	// evaluation grid must decrease with level (the essence of the
	// sparse-grid combination technique).
	root := 1
	fn := func(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) }
	target := Grid{Root: 1, L1: 3, L2: 3}
	want := NewField(target)
	want.Fill(fn)
	var prev float64 = math.Inf(1)
	for _, level := range []int{1, 3, 5} {
		var fields []*Field
		for _, g := range Family(root, level) {
			f := NewField(g)
			f.Fill(fn)
			fields = append(fields, f)
		}
		u := Combine(fields, level, target)
		err := u.MaxDiff(want)
		if err > prev*1.01 {
			t.Fatalf("combination error grew: level %d error %g, previous %g", level, err, prev)
		}
		prev = err
	}
	if prev > 1e-3 {
		t.Fatalf("final combination error %g too large", prev)
	}
}

func TestMaxDiffPanicsAcrossGrids(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewField(Grid{Root: 1}).MaxDiff(NewField(Grid{Root: 2}))
}

// Property: Eval stays within the min/max of the four surrounding corner
// values (bilinear interpolation is convex).
func TestPropEvalWithinBounds(t *testing.T) {
	g := Grid{Root: 2, L1: 1, L2: 1}
	f := NewField(g)
	f.Fill(func(x, y float64) float64 { return math.Sin(13*x + 7*y) })
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range f.V {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	check := func(xr, yr uint16) bool {
		x := float64(xr) / 65535
		y := float64(yr) / 65535
		v := f.Eval(x, y)
		return v >= lo-1e-12 && v <= hi+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: prolongation to the same grid is the identity.
func TestPropProlongateIdentity(t *testing.T) {
	f := func(seed int64) bool {
		g := Grid{Root: 1, L1: int(seed % 3), L2: int((seed / 3) % 3)}
		if g.L1 < 0 {
			g.L1 = -g.L1
		}
		if g.L2 < 0 {
			g.L2 = -g.L2
		}
		fld := NewField(g)
		fld.Fill(func(x, y float64) float64 { return math.Sin(float64(seed%7)*x + y) })
		p := fld.Prolongate(g)
		return fld.MaxDiff(p) < 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRestrictInjection(t *testing.T) {
	fine := Grid{Root: 1, L1: 3, L2: 2}
	coarse := Grid{Root: 1, L1: 1, L2: 1}
	f := NewField(fine)
	fn := func(x, y float64) float64 { return math.Sin(2*x) + y }
	f.Fill(fn)
	r := f.Restrict(coarse)
	for iy := 0; iy <= coarse.NY(); iy++ {
		for ix := 0; ix <= coarse.NX(); ix++ {
			want := fn(coarse.X(ix), coarse.Y(iy))
			if math.Abs(r.At(ix, iy)-want) > 1e-14 {
				t.Fatalf("restricted(%d,%d) = %g, want %g", ix, iy, r.At(ix, iy), want)
			}
		}
	}
}

func TestRestrictSameGridIsIdentity(t *testing.T) {
	g := Grid{Root: 2, L1: 1, L2: 1}
	f := NewField(g)
	f.Fill(func(x, y float64) float64 { return x*x - y })
	r := f.Restrict(g)
	if d := f.MaxDiff(r); d != 0 {
		t.Fatalf("identity restriction changed field by %g", d)
	}
}

func TestRestrictToFinerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewField(Grid{Root: 1, L1: 1, L2: 1}).Restrict(Grid{Root: 1, L1: 2, L2: 1})
}

func TestRestrictAcrossRootsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewField(Grid{Root: 2, L1: 1, L2: 1}).Restrict(Grid{Root: 1, L1: 1, L2: 1})
}

// Property: prolongate then restrict is the identity on the original grid.
func TestPropProlongateRestrictRoundTrip(t *testing.T) {
	f := func(l1, l2, d1, d2 uint8) bool {
		src := Grid{Root: 1, L1: int(l1 % 3), L2: int(l2 % 3)}
		dst := Grid{Root: 1, L1: src.L1 + int(d1%3), L2: src.L2 + int(d2%3)}
		fld := NewField(src)
		fld.Fill(func(x, y float64) float64 { return math.Cos(3*x) * (1 + y) })
		back := fld.Prolongate(dst).Restrict(src)
		return fld.MaxDiff(back) < 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestL2NormOfConstant(t *testing.T) {
	g := Grid{Root: 3, L1: 0, L2: 0}
	f := NewField(g)
	f.Fill(func(x, y float64) float64 { return 2 })
	// hx*hy*sum(4) = (1/8)(1/8)*81*4 -> sqrt = 2*sqrt(81/64) = 2*9/8.
	want := 2.0 * 9 / 8
	if got := f.L2Norm(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("L2 = %g, want %g", got, want)
	}
}

func TestL2NormApproximatesContinuous(t *testing.T) {
	// ||sin(pi x) sin(pi y)||_L2 = 1/2 on the unit square. For this
	// function the equispaced quadrature is exact (sum of sin^2 over a
	// uniform grid is exactly n/2), so every level agrees to roundoff.
	for _, l := range []int{1, 3, 5} {
		g := Grid{Root: 1, L1: l, L2: l}
		f := NewField(g)
		f.Fill(func(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) })
		if err := math.Abs(f.L2Norm() - 0.5); err > 1e-12 {
			t.Fatalf("level %d: L2 error %g", l, err)
		}
	}
	// For a function where the quadrature is not exact, the error must
	// shrink with refinement.
	var prev = math.Inf(1)
	exact := math.Sqrt((math.E*math.E - 1) / 2) // ||e^x||_L2 on [0,1]^2
	for _, l := range []int{0, 2, 4} {
		g := Grid{Root: 1, L1: l, L2: l}
		f := NewField(g)
		f.Fill(func(x, y float64) float64 { return math.Exp(x) })
		err := math.Abs(f.L2Norm() - exact)
		if err > prev {
			t.Fatalf("L2 error grew: %g -> %g at level %d", prev, err, l)
		}
		prev = err
	}
	// Point-sum quadrature carries an O(h) boundary bias; at n=32 the
	// remaining error is ~0.06.
	if prev > 0.1 {
		t.Fatalf("final L2 error %g", prev)
	}
}

func TestL2DiffAndMean(t *testing.T) {
	g := Grid{Root: 2, L1: 0, L2: 0}
	a := NewField(g)
	b := NewField(g)
	a.Fill(func(x, y float64) float64 { return 1 })
	b.Fill(func(x, y float64) float64 { return 3 })
	if d := a.L2Diff(b); math.Abs(d-2*math.Sqrt(25.0/16)) > 1e-12 {
		t.Fatalf("L2Diff = %g", d)
	}
	if m := a.Mean(); m != 1 {
		t.Fatalf("Mean = %g", m)
	}
}

func TestAddScaled(t *testing.T) {
	g := Grid{Root: 2, L1: 0, L2: 0}
	a := NewField(g)
	b := NewField(g)
	a.Fill(func(x, y float64) float64 { return 1 })
	b.Fill(func(x, y float64) float64 { return 2 })
	a.AddScaled(0.5, b)
	if a.At(1, 1) != 2 {
		t.Fatalf("AddScaled result %g, want 2", a.At(1, 1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic across grids")
		}
	}()
	a.AddScaled(1, NewField(Grid{Root: 2, L1: 1, L2: 0}))
}

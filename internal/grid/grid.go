// Package grid provides the dyadic tensor grids of the sparse-grid method:
// rectangular grids (l1, l2) on the unit square, fields living on them,
// bilinear interpolation/prolongation between grids, and the sparse-grid
// combination formula that assembles the final solution from the coarse
// anisotropic solves (the paper's "prolongation work" after the nested
// loop).
package grid

import (
	"fmt"

	"repro/internal/linalg"
)

// Grid identifies a rectangular grid on the unit square. The paper's
// subsolve(l, m) works on grid (l, m) with a global root refinement: the
// grid has 2^(root+l1) cells in x and 2^(root+l2) cells in y.
type Grid struct {
	Root   int // refinement level of the coarsest grid (paper argv[1])
	L1, L2 int // additional refinement in x and y
}

// NX returns the number of cells in x.
func (g Grid) NX() int { return 1 << uint(g.Root+g.L1) }

// NY returns the number of cells in y.
func (g Grid) NY() int { return 1 << uint(g.Root+g.L2) }

// Hx returns the mesh width in x.
func (g Grid) Hx() float64 { return 1.0 / float64(g.NX()) }

// Hy returns the mesh width in y.
func (g Grid) Hy() float64 { return 1.0 / float64(g.NY()) }

// Points returns the number of grid points including the boundary.
func (g Grid) Points() int { return (g.NX() + 1) * (g.NY() + 1) }

// Interior returns the number of interior (unknown) points.
func (g Grid) Interior() int { return (g.NX() - 1) * (g.NY() - 1) }

// Level returns l1 + l2, the grid's place in the combination hierarchy.
func (g Grid) Level() int { return g.L1 + g.L2 }

// X returns the x coordinate of column ix.
func (g Grid) X(ix int) float64 { return float64(ix) * g.Hx() }

// Y returns the y coordinate of row iy.
func (g Grid) Y(iy int) float64 { return float64(iy) * g.Hy() }

func (g Grid) String() string { return fmt.Sprintf("grid(%d,%d;root=%d)", g.L1, g.L2, g.Root) }

// Field is a scalar field sampled at the points of a grid (boundary
// included), stored row-major: index = iy*(NX+1) + ix.
type Field struct {
	G Grid
	V linalg.Vector
}

// NewField allocates a zero field on g.
func NewField(g Grid) *Field {
	return &Field{G: g, V: linalg.NewVector(g.Points())}
}

// idx returns the storage index of point (ix, iy).
func (f *Field) idx(ix, iy int) int { return iy*(f.G.NX()+1) + ix }

// At returns the value at point (ix, iy).
func (f *Field) At(ix, iy int) float64 { return f.V[f.idx(ix, iy)] }

// Set stores v at point (ix, iy).
func (f *Field) Set(ix, iy int, v float64) { f.V[f.idx(ix, iy)] = v }

// Clone returns a deep copy.
func (f *Field) Clone() *Field {
	return &Field{G: f.G, V: f.V.Clone()}
}

// Fill evaluates fn at every grid point.
func (f *Field) Fill(fn func(x, y float64) float64) {
	nx, ny := f.G.NX(), f.G.NY()
	for iy := 0; iy <= ny; iy++ {
		y := f.G.Y(iy)
		for ix := 0; ix <= nx; ix++ {
			f.V[iy*(nx+1)+ix] = fn(f.G.X(ix), y)
		}
	}
}

// Eval bilinearly interpolates the field at (x, y) in [0,1]^2.
func (f *Field) Eval(x, y float64) float64 {
	nx, ny := f.G.NX(), f.G.NY()
	fx := x * float64(nx)
	fy := y * float64(ny)
	ix, iy := int(fx), int(fy)
	if ix >= nx {
		ix = nx - 1
	}
	if iy >= ny {
		iy = ny - 1
	}
	tx, ty := fx-float64(ix), fy-float64(iy)
	v00 := f.At(ix, iy)
	v10 := f.At(ix+1, iy)
	v01 := f.At(ix, iy+1)
	v11 := f.At(ix+1, iy+1)
	return (1-tx)*(1-ty)*v00 + tx*(1-ty)*v10 + (1-tx)*ty*v01 + tx*ty*v11
}

// Prolongate interpolates f onto target, returning a new field. Because
// grids are dyadic, coinciding points are reproduced exactly.
func (f *Field) Prolongate(target Grid) *Field {
	out := NewField(target)
	f.ProlongateInto(out, nil)
	return out
}

// ProlongateInto interpolates f onto out's grid, overwriting out. When t is
// non-nil the target rows are split across the team; every point is one
// independent bilinear evaluation, so the values are identical at any team
// size.
func (f *Field) ProlongateInto(out *Field, t *linalg.Team) {
	target := out.G
	nx, ny := target.NX(), target.NY()
	rows := func(iy0, iy1 int) {
		for iy := iy0; iy < iy1; iy++ {
			y := target.Y(iy)
			for ix := 0; ix <= nx; ix++ {
				out.V[iy*(nx+1)+ix] = f.Eval(target.X(ix), y)
			}
		}
	}
	if t.Size() > 1 && ny+1 >= 2*t.Size() {
		t.Run(ny+1, rows)
	} else {
		rows(0, ny+1)
	}
}

// MaxDiff returns the maximum absolute pointwise difference between two
// fields on the same grid.
func (f *Field) MaxDiff(g *Field) float64 {
	if f.G != g.G {
		panic("grid: MaxDiff across different grids")
	}
	d := linalg.NewVector(len(f.V))
	d.Sub(f.V, g.V, nil)
	return d.NormInf()
}

// Family returns the grids visited by the paper's nested loop for a given
// additional refinement level: for lm = level-1 and lm = level, the grids
// (l, lm-l) for l = 0..lm. The total count is 2*level + 1 (the paper's
// worker count w = 2l + 1).
func Family(root, level int) []Grid {
	var out []Grid
	for lm := level - 1; lm <= level; lm++ {
		if lm < 0 {
			continue
		}
		for l := 0; l <= lm; l++ {
			out = append(out, Grid{Root: root, L1: l, L2: lm - l})
		}
	}
	return out
}

// CombineCoefficient returns the weight of a family grid in the 2D
// combination formula: +1 for grids with l1+l2 = level, -1 for grids with
// l1+l2 = level-1.
func CombineCoefficient(g Grid, level int) float64 {
	switch g.Level() {
	case level:
		return 1
	case level - 1:
		return -1
	default:
		panic(fmt.Sprintf("grid: %v does not belong to the level-%d family", g, level))
	}
}

// Combine evaluates the sparse-grid combination of the family solutions on
// the target grid:
//
//	u = sum_{l1+l2=level} u_{l1,l2} - sum_{l1+l2=level-1} u_{l1,l2}
//
// with every component prolongated (bilinearly) onto target. The fields
// must be exactly the Family(root, level) grids, in any order.
func Combine(fields []*Field, level int, target Grid) *Field {
	return CombineWith(nil, fields, level, target)
}

// CombineWith is Combine with the prolongations and accumulation routed
// through a Team (nil runs serially). One scratch field is reused across
// the family instead of allocating a prolongation per component; the
// accumulation order and arithmetic are Combine's exactly, so the result is
// bit-for-bit identical at any team size.
func CombineWith(t *linalg.Team, fields []*Field, level int, target Grid) *Field {
	out := NewField(target)
	scratch := NewField(target)
	for _, f := range fields {
		c := CombineCoefficient(f.G, level)
		f.ProlongateInto(scratch, t)
		t.AXPY(out.V, c, scratch.V, nil)
	}
	return out
}

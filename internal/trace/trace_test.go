package trace

import (
	"strings"
	"testing"
)

func TestFormatMatchesPaperLayout(t *testing.T) {
	e := Entry{
		Host: "bumpa.sen.cwi.nl", TaskID: 262146, ProcID: 140,
		Sec: 1048087412, Usec: 175834,
		Task: "mainprog", Manifold: "Master(port in)",
		File: "ResSourceCode.c", Line: 136, Msg: "Welcome",
	}
	got := e.Format()
	want := "bumpa.sen.cwi.nl 262146 140 1048087412 175834\n mainprog Master(port in) ResSourceCode.c 136 -> Welcome"
	if got != want {
		t.Fatalf("Format:\n%q\nwant\n%q", got, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	orig := Entry{
		Host: "basfluit.sen.cwi.nl", TaskID: 1572865, ProcID: 79,
		Sec: 1048087412, Usec: 275851,
		Task: "mainprog", Manifold: "Worker(event)",
		File: "ResSourceCode.c", Line: 351, Msg: "Welcome",
	}
	parsed, err := Parse(orig.Format())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != orig {
		t.Fatalf("round trip changed entry:\n%+v\n%+v", parsed, orig)
	}
}

func TestParsePaperOutput(t *testing.T) {
	// Verbatim lines from the paper's §6 output.
	msg := "arghul.sen.cwi.nl 1310721 79 1048087412 385644\n mainprog Worker(event) ResSourceCode.c 351 -> Welcome"
	e, err := Parse(msg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Host != "arghul.sen.cwi.nl" || e.TaskID != 1310721 || e.ProcID != 79 {
		t.Fatalf("parsed %+v", e)
	}
	if e.Manifold != "Worker(event)" || e.Line != 351 || e.Msg != "Welcome" {
		t.Fatalf("parsed %+v", e)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"one line only",
		"host 1 2 3\n body without arrow",
		"host x 2 3 4\n a b c 5 -> m",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestLoggerCollectsInOrder(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, 1048087412)
	l.Log(0.1, Entry{Host: "a", Task: "t", Manifold: "M", File: "f.c", Line: 1, Msg: "Welcome"})
	l.Log(0.5, Entry{Host: "a", Task: "t", Manifold: "M", File: "f.c", Line: 2, Msg: "Bye"})
	es := l.Entries()
	if len(es) != 2 {
		t.Fatalf("%d entries", len(es))
	}
	if es[0].Sec != 1048087412 || es[0].Usec != 100000 {
		t.Fatalf("timestamp %d.%06d", es[0].Sec, es[0].Usec)
	}
	if !strings.Contains(sb.String(), "-> Welcome") {
		t.Fatal("writer did not receive formatted entries")
	}
}

// TestSortEntriesMicrosecondPrecision is the regression test for ordering
// same-second entries: float64 Time() cannot separate microsecond
// neighbours once Sec exceeds ~2^32 (the mantissa spacing passes 1e-6),
// but Before/SortEntries compare the integer (Sec, Usec) pair exactly.
func TestSortEntriesMicrosecondPrecision(t *testing.T) {
	const sec = int64(1) << 33 // spacing of float64 at 2^33 is ~1.9e-6 s
	a := Entry{Host: "a", Sec: sec, Usec: 1, Msg: "first"}
	b := Entry{Host: "b", Sec: sec, Usec: 2, Msg: "second"}
	if a.Time() != b.Time() {
		t.Fatalf("precondition failed: Time() distinguishes the entries (%v vs %v); pick a larger Sec", a.Time(), b.Time())
	}
	if !a.Before(b) || b.Before(a) || a.Before(a) {
		t.Fatal("Before must order by the integer (Sec, Usec) pair")
	}
	entries := []Entry{b, a}
	SortEntries(entries)
	if entries[0].Msg != "first" || entries[1].Msg != "second" {
		t.Fatalf("SortEntries kept float order: %v, %v", entries[0].Msg, entries[1].Msg)
	}
	// Cross-second ordering still holds.
	c := Entry{Sec: sec - 1, Usec: 999999}
	if !c.Before(a) {
		t.Fatal("earlier second must sort first")
	}
	// Stability: identical timestamps keep emission order.
	d1 := Entry{Sec: sec, Usec: 5, Msg: "d1"}
	d2 := Entry{Sec: sec, Usec: 5, Msg: "d2"}
	same := []Entry{d1, d2}
	SortEntries(same)
	if same[0].Msg != "d1" || same[1].Msg != "d2" {
		t.Fatal("SortEntries must be stable for equal timestamps")
	}
}

// TestMachineEbbFlowMicrosecondOrder: a Bye and a Welcome in the same
// second (large epoch) must be replayed in microsecond order even when
// Time() collapses them — the float-sorted version kept slice order.
func TestMachineEbbFlowMicrosecondOrder(t *testing.T) {
	const sec = int64(1) << 33
	entries := []Entry{
		{Host: "w1", Sec: sec, Usec: 2, Msg: "Bye"},     // emitted second
		{Host: "w1", Sec: sec, Usec: 1, Msg: "Welcome"}, // emitted first
	}
	flow := MachineEbbFlow(entries)
	if len(flow) != 2 {
		t.Fatalf("%d points, want 2", len(flow))
	}
	if flow[0].Count != 1 || flow[1].Count != 0 {
		t.Fatalf("counts %d,%d; want 1,0 (Welcome before Bye)", flow[0].Count, flow[1].Count)
	}
}

func TestMachineEbbFlow(t *testing.T) {
	mk := func(host string, tsec int64, msg string) Entry {
		return Entry{Host: host, Sec: tsec, Msg: msg}
	}
	entries := []Entry{
		mk("m1", 0, "Welcome"), // master machine busy: 1
		mk("w1", 1, "Welcome"), // 2
		mk("w2", 2, "Welcome"), // 3
		mk("w1", 3, "Bye"),     // 2
		mk("w1", 4, "Welcome"), // 3 (reused)
		mk("w1", 5, "Bye"),     // 2
		mk("w2", 6, "Bye"),     // 1
		mk("m1", 7, "Bye"),     // 0
	}
	flow := MachineEbbFlow(entries)
	wantCounts := []int{1, 2, 3, 2, 3, 2, 1, 0}
	if len(flow) != len(wantCounts) {
		t.Fatalf("%d points, want %d", len(flow), len(wantCounts))
	}
	peak := 0
	for i, f := range flow {
		if f.Count != wantCounts[i] {
			t.Fatalf("point %d count %d, want %d", i, f.Count, wantCounts[i])
		}
		if f.Count > peak {
			peak = f.Count
		}
	}
	if peak != 3 {
		t.Fatalf("peak %d, want 3", peak)
	}
}

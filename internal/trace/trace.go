// Package trace produces and parses the chronological output format of a
// distributed MANIFOLD run, as printed in §6 of the paper. Each message
// carries a label telling "who is printing, what, where and when":
//
//	bumpa.sen.cwi.nl 262146 140 1048087412 175834
//	 mainprog Master(port in) ResSourceCode.c 136 -> Welcome
//
// i.e. host, task-instance id, process-instance id, a timestamp as seconds
// and microseconds since the Unix epoch, then the task name, the manifold
// name, the source file and line where the message was produced, and the
// message itself.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Entry is one trace message.
type Entry struct {
	Host     string
	TaskID   int
	ProcID   int
	Sec      int64
	Usec     int64
	Task     string
	Manifold string
	File     string
	Line     int
	Msg      string
}

// Time returns the timestamp in (fractional) seconds. Note that float64
// cannot always separate same-second entries one microsecond apart (a
// 52-bit mantissa runs out around Sec ≈ 2^32); use Before or SortEntries
// for ordering — they compare the integer (Sec, Usec) pair exactly.
func (e Entry) Time() float64 { return float64(e.Sec) + float64(e.Usec)/1e6 }

// Before reports whether e was printed strictly earlier than o, comparing
// the (Sec, Usec) integer pair — exact where Time() loses microsecond
// precision.
func (e Entry) Before(o Entry) bool {
	if e.Sec != o.Sec {
		return e.Sec < o.Sec
	}
	return e.Usec < o.Usec
}

// SortEntries sorts entries chronologically by the integer (Sec, Usec)
// pair. The sort is stable: entries with identical timestamps keep their
// original (emission) order.
func SortEntries(entries []Entry) {
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Before(entries[j]) })
}

// Format renders the entry in the paper's two-line layout.
func (e Entry) Format() string {
	return fmt.Sprintf("%s %d %d %d %d\n %s %s %s %d -> %s",
		e.Host, e.TaskID, e.ProcID, e.Sec, e.Usec,
		e.Task, e.Manifold, e.File, e.Line, e.Msg)
}

// Parse decodes one two-line message produced by Format.
func Parse(s string) (Entry, error) {
	var e Entry
	lines := strings.SplitN(strings.TrimSpace(s), "\n", 2)
	if len(lines) != 2 {
		return e, fmt.Errorf("trace: message has %d lines, want 2", len(lines))
	}
	head := strings.Fields(lines[0])
	if len(head) != 5 {
		return e, fmt.Errorf("trace: label has %d fields, want 5", len(head))
	}
	e.Host = head[0]
	var err error
	if e.TaskID, err = strconv.Atoi(head[1]); err != nil {
		return e, fmt.Errorf("trace: task id: %w", err)
	}
	if e.ProcID, err = strconv.Atoi(head[2]); err != nil {
		return e, fmt.Errorf("trace: process id: %w", err)
	}
	if e.Sec, err = strconv.ParseInt(head[3], 10, 64); err != nil {
		return e, fmt.Errorf("trace: seconds: %w", err)
	}
	if e.Usec, err = strconv.ParseInt(head[4], 10, 64); err != nil {
		return e, fmt.Errorf("trace: microseconds: %w", err)
	}
	body := strings.TrimSpace(lines[1])
	arrow := strings.Index(body, " -> ")
	if arrow < 0 {
		return e, fmt.Errorf("trace: missing -> separator")
	}
	e.Msg = body[arrow+4:]
	fields := strings.Fields(body[:arrow])
	if len(fields) < 4 {
		return e, fmt.Errorf("trace: body has %d fields before ->, want >= 4", len(fields))
	}
	// The manifold name may contain spaces ("Master(port in)"): the task
	// name is the first field, the file and line are the last two, and the
	// manifold name is everything in between.
	e.Task = fields[0]
	e.File = fields[len(fields)-2]
	if e.Line, err = strconv.Atoi(fields[len(fields)-1]); err != nil {
		return e, fmt.Errorf("trace: line number: %w", err)
	}
	e.Manifold = strings.Join(fields[1:len(fields)-2], " ")
	return e, nil
}

// Logger emits entries to a writer, in order, safely from many goroutines.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
	// Epoch is added to entry times so the output resembles the paper's
	// absolute Unix timestamps.
	Epoch int64
	log   []Entry
}

// NewLogger creates a logger writing to w (which may be nil to only
// collect entries).
func NewLogger(w io.Writer, epoch int64) *Logger {
	return &Logger{w: w, Epoch: epoch}
}

// Log records an entry, stamping Sec/Usec from t (seconds since the run
// started) plus the epoch.
func (l *Logger) Log(t float64, e Entry) {
	e.Sec = l.Epoch + int64(t)
	e.Usec = int64((t - float64(int64(t))) * 1e6)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.log = append(l.log, e)
	if l.w != nil {
		fmt.Fprintln(l.w, e.Format())
	}
}

// Entries returns the recorded entries in emission order.
func (l *Logger) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.log...)
}

// MachineEbbFlow reconstructs the number of machines in use over time from
// Welcome/Bye messages, exactly the way the paper built Figure 1 from the
// chronological output.
func MachineEbbFlow(entries []Entry) []struct {
	T     float64
	Count int
} {
	active := map[string]int{} // host -> processes currently on it
	sorted := append([]Entry(nil), entries...)
	SortEntries(sorted)
	var out []struct {
		T     float64
		Count int
	}
	machines := 0
	for _, e := range sorted {
		switch {
		case strings.Contains(e.Msg, "Welcome"):
			if active[e.Host] == 0 {
				machines++
			}
			active[e.Host]++
		case strings.Contains(e.Msg, "Bye"):
			active[e.Host]--
			if active[e.Host] == 0 {
				machines--
			}
		default:
			continue
		}
		out = append(out, struct {
			T     float64
			Count int
		}{e.Time(), machines})
	}
	return out
}

package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric (jobs dispatched, retries,
// bytes moved). A nil *Counter — what a disabled recorder hands out — is a
// valid, free no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
//
//vetsparse:allocfree
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
//
//vetsparse:allocfree
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move both ways (outstanding jobs, live task
// instances). A nil *Gauge is a valid, free no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil gauge.
//
//vetsparse:allocfree
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta. No-op on a nil gauge.
//
//vetsparse:allocfree
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// holds observations v (in microseconds) with 2^(i-1) <= v < 2^i, bucket 0
// holds v <= 0..1. 40 buckets cover up to ~2^39 us ≈ 6.4 days.
const histBuckets = 40

// Histogram records a distribution of durations in microseconds, in
// lock-free power-of-two buckets with exact count, sum, min and max. A nil
// *Histogram is a valid, free no-op.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64
}

// bucketOf returns the bucket index of a microsecond observation.
//
//vetsparse:allocfree
func bucketOf(us int64) int {
	if us <= 0 {
		return 0
	}
	b := bits.Len64(uint64(us)) // = floor(log2(us)) + 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one duration, given in microseconds. Negative values
// clamp to zero. No-op on a nil histogram.
//
//vetsparse:allocfree
func (h *Histogram) Observe(us int64) {
	if h == nil {
		return
	}
	if us < 0 {
		us = 0
	}
	h.buckets[bucketOf(us)].Add(1)
	h.sum.Add(us)
	if h.count.Add(1) == 1 {
		h.min.Store(us)
		h.max.Store(us)
		return
	}
	for {
		cur := h.min.Load()
		if us >= cur || h.min.CompareAndSwap(cur, us) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			break
		}
	}
}

// ObserveSince records the elapsed wall-clock time since t0. No-op on a
// nil histogram.
//
//vetsparse:allocfree
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Microseconds())
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations in microseconds.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Min returns the smallest observation (0 when empty or nil).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation (0 when empty or nil).
func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Mean returns the mean observation in microseconds (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) from the
// bucket boundaries: the result is the upper edge of the bucket holding
// the q-th observation, clamped to the exact observed min/max. Empty and
// nil histograms return 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	seen := int64(0)
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			upper := int64(1) << uint(i) // bucket i upper edge: 2^i - 1, rounded up
			if i == 0 {
				upper = 1
			}
			if mx := h.Max(); upper > mx {
				upper = mx
			}
			if mn := h.Min(); upper < mn {
				upper = mn
			}
			return upper
		}
	}
	return h.Max()
}

// Buckets returns a copy of the per-bucket counts (nil for a nil
// histogram); bucket i counts observations in [2^(i-1), 2^i) microseconds.
func (h *Histogram) Buckets() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, histBuckets)
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// registry is the name → handle map behind a Recorder's metrics. Handles
// are registered on first use and stable afterwards, so hot paths hold the
// handle and never touch the map.
type registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

func (rg *registry) counter(name string) *Counter {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if rg.counters == nil {
		rg.counters = make(map[string]*Counter)
	}
	c, ok := rg.counters[name]
	if !ok {
		c = &Counter{}
		rg.counters[name] = c
	}
	return c
}

func (rg *registry) gauge(name string) *Gauge {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if rg.gauges == nil {
		rg.gauges = make(map[string]*Gauge)
	}
	g, ok := rg.gauges[name]
	if !ok {
		g = &Gauge{}
		rg.gauges[name] = g
	}
	return g
}

func (rg *registry) histogram(name string) *Histogram {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if rg.histograms == nil {
		rg.histograms = make(map[string]*Histogram)
	}
	h, ok := rg.histograms[name]
	if !ok {
		h = &Histogram{}
		rg.histograms[name] = h
	}
	return h
}

// names returns the sorted registered names of one metric class.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Package obs is the observability layer of the reproduction: a
// low-overhead structured event recorder plus a metrics registry, threaded
// through every level of the stack — the IWIM runtime (stream wiring,
// deadline expiries), the master/worker protocol (job dispatch, retries,
// abandonments, rendezvous), the solver (per-grid subsolve timings,
// fallback activations) and the simulated cluster (task-instance and
// machine events in virtual time).
//
// The paper's §6 debugging story hinges on chronological output telling
// "who is printing, what, where and when"; this package produces that
// artifact from the live protocol rather than from scattered prints. Every
// recorded Event can render as a §6 two-line trace.Entry (see TraceEntry
// and the exporters in export.go), so the renovated system's own behaviour
// is inspected with exactly the tooling the paper describes.
//
// Design constraints, in order:
//
//   - Zero overhead when disabled. Every entry point is nil-safe: a nil
//     *Recorder (and the nil metric handles it hands out) turns every call
//     into an immediate return with no allocation, so instrumented hot
//     loops cost nothing in ordinary runs (see BenchmarkEmitDisabled).
//   - Bounded overhead when enabled. Events are fixed-size structs copied
//     into a preallocated ring buffer under a mutex; when the ring is full
//     the oldest event is overwritten and a drop counter increments, so a
//     runaway emitter can never exhaust memory. Emitting with pre-existing
//     strings allocates nothing.
//   - Safe under -race. The ring is mutex-guarded, metric handles use
//     atomics, and per-kind totals are kept inside the ring's critical
//     section.
package obs

import (
	"sync"
	"time"
)

// Kind classifies one recorded event. The taxonomy spans every layer of
// the stack; OBSERVABILITY.md documents each kind and its payload.
type Kind uint8

// The event taxonomy. Kinds are grouped by the subsystem that emits them:
// the master/worker protocol (internal/core), the solver, the IWIM runtime
// (internal/manifold) and the simulated cluster (internal/cluster,
// internal/mwsim).
const (
	// KUnknown is the zero Kind; it is never emitted.
	KUnknown Kind = iota

	// KPoolCreate marks the master raising create_pool (protocol step 3a).
	KPoolCreate
	// KWorkerCreate marks the coordinator creating one worker process
	// (a worker birth); A is the worker's ordinal within the run.
	KWorkerCreate
	// KWorkerDeath marks the single death_worker raise of one worker,
	// whether self-raised on return or raised on its behalf at abandonment.
	KWorkerDeath
	// KJobDispatch marks a job being sent to a freshly created worker;
	// A is the job ID, B the attempt number (1 = first try).
	KJobDispatch
	// KJobResult marks a job's result accepted by the master; A is the job
	// ID, B the attempt that produced it.
	KJobResult
	// KJobRetry marks a failed job being resubmitted to a fresh worker;
	// A is the job ID, B the attempts consumed so far.
	KJobRetry
	// KJobAbandon marks the master giving up on a worker (deadline expiry
	// or budget exhaustion): death_worker is raised on the worker's behalf.
	KJobAbandon
	// KJobFailed marks a job that exhausted its retry budget; A is the job
	// ID, B the total attempts.
	KJobFailed
	// KRendezvousBegin marks the master raising rendezvous; A is the number
	// of workers created in the pool, B the deaths already counted.
	KRendezvousBegin
	// KRendezvousEnd marks the coordinator acknowledging the rendezvous
	// with a_rendezvous; A is the workers created, B the deaths counted —
	// a correct barrier always ends with A == B.
	KRendezvousEnd
	// KBudgetExhausted marks the run-level failure budget being spent;
	// A is the failure count, B the budget.
	KBudgetExhausted

	// KSubsolveBegin marks one subsolve starting; Aux is the grid, A its
	// level.
	KSubsolveBegin
	// KSubsolveEnd marks one subsolve finishing; Aux is the grid, A the
	// floating-point operations spent, B the integrator steps taken.
	KSubsolveEnd
	// KFallback marks a job that exhausted its retries being recomputed
	// master-locally (graceful degradation); Aux is the grid.
	KFallback

	// KStreamConnect marks a stream being wired between two ports; Aux is
	// the sink, A the stream type (0 = BK, 1 = KK).
	KStreamConnect
	// KStreamBreak marks a stream broken at its source (BK dismantling).
	KStreamBreak
	// KDeadlineExpired marks a deadline-aware port read timing out; A is
	// the deadline in microseconds.
	KDeadlineExpired

	// KMachineCrash marks a simulated machine dying at the event's virtual
	// time, taking its task instances and in-flight workers with it.
	KMachineCrash
	// KMachineSlow marks a simulated machine entering degraded speed; A is
	// the integral slowdown factor.
	KMachineSlow
	// KTaskFork marks a fresh task instance forked on a machine; A is the
	// task-instance ID, B the initial load. Its message contains "Welcome"
	// so trace.MachineEbbFlow reconstructs Figure 1 from a live trace.
	KTaskFork
	// KTaskAdopt marks an externally created task instance (the start-up
	// task housing the master) being registered; A is the instance ID.
	KTaskAdopt
	// KTaskReuse marks a perpetual task instance welcoming a new worker;
	// A is the instance ID, B its new load.
	KTaskReuse
	// KTaskKill marks a task instance dying (worker exit, idle reaping,
	// retirement, or host crash); A is the instance ID. Its message
	// contains "Bye" for trace.MachineEbbFlow.
	KTaskKill
	// KWorkerLost marks a simulated worker that died with its crashed
	// machine, observed by the master after the detection latency.
	KWorkerLost

	// KServeAccept marks a solve request admitted past admission control
	// into the service queue; A is the request ID, B the queue depth after
	// the enqueue.
	KServeAccept
	// KServeShed marks a request refused by admission control or during
	// drain (tenant over quota, queue full, breaker open, draining); Aux is
	// the shed reason, A the request ID.
	KServeShed
	// KServeRetry marks a serve-level retry of a failed solve attempt after
	// a backoff pause; A is the request ID, B the attempt just failed.
	KServeRetry
	// KServeComplete marks an admitted request finishing successfully on
	// the normal concurrent path; A is the request ID, B the attempts used.
	KServeComplete
	// KServeDegraded marks an admitted request finishing successfully on
	// the degraded sequential path (overload ladder); A is the request ID,
	// B the attempts used.
	KServeDegraded
	// KServeFail marks an admitted request ending in permanent failure
	// (failure budget spent, deadline passed, or solver error); Aux is the
	// reason, A the request ID, B the failed worker attempts charged.
	KServeFail
	// KBreakerTrip marks a tenant circuit breaker opening after its
	// consecutive-failure threshold; Aux is the tenant, A the failures.
	KBreakerTrip
	// KBreakerProbe marks a half-open breaker admitting one probe request;
	// Aux is the tenant.
	KBreakerProbe
	// KBreakerClose marks a breaker closing after a successful probe; Aux
	// is the tenant.
	KBreakerClose
	// KDrainBegin marks the service entering drain: admission stops, queued
	// jobs are shed, inflight jobs run to completion; A is the queue depth.
	KDrainBegin
	// KDrainEnd marks the drain finishing; A is 1 when every inflight job
	// completed within the drain deadline, 0 on timeout.
	KDrainEnd

	// KBatchTask marks one subsolve task entering the cross-request
	// batcher; Actor is the problem signature, A the request ID, B the
	// pending-batch size after the enqueue.
	KBatchTask
	// KBatchFlush marks one batch dispatched to a batch worker; Actor is
	// the problem signature, Aux the flush reason (size, age, deadline,
	// close), A the batch size, B the age of the oldest member in µs.
	KBatchFlush
	// KCacheHit marks a solver-cache checkout that found a warm entry;
	// Actor is the problem signature.
	KCacheHit
	// KCacheMiss marks a solver-cache checkout that had to build a fresh
	// entry; Actor is the problem signature.
	KCacheMiss
	// KCacheEvict marks an entry evicted to keep the cache within its
	// entry/byte bounds; Actor is the evicted signature, A the entry's
	// approximate bytes.
	KCacheEvict
	// KExecScale marks the executor autoscaler resizing the pool; A is
	// the previous worker count, B the new one.
	KExecScale

	// KSteal marks one queued task stolen by an idle executor; Actor is
	// the thief, Aux the victim, A the task index, B the task's modelled
	// megacycles.
	KSteal
	// KTeamResize marks an elastic team resize applied at a dispatch
	// boundary; Actor is the resized executor, A the old team size, B
	// the new one.
	KTeamResize

	kindCount // number of kinds; keep last
)

var kindNames = [...]string{
	KUnknown:         "unknown",
	KPoolCreate:      "pool.create",
	KWorkerCreate:    "worker.create",
	KWorkerDeath:     "worker.death",
	KJobDispatch:     "job.dispatch",
	KJobResult:       "job.result",
	KJobRetry:        "job.retry",
	KJobAbandon:      "job.abandon",
	KJobFailed:       "job.failed",
	KRendezvousBegin: "rendezvous.begin",
	KRendezvousEnd:   "rendezvous.end",
	KBudgetExhausted: "budget.exhausted",
	KSubsolveBegin:   "subsolve.begin",
	KSubsolveEnd:     "subsolve.end",
	KFallback:        "subsolve.fallback",
	KStreamConnect:   "stream.connect",
	KStreamBreak:     "stream.break",
	KDeadlineExpired: "deadline.expired",
	KMachineCrash:    "machine.crash",
	KMachineSlow:     "machine.slow",
	KTaskFork:        "task.fork",
	KTaskAdopt:       "task.adopt",
	KTaskReuse:       "task.reuse",
	KTaskKill:        "task.kill",
	KWorkerLost:      "worker.lost",
	KServeAccept:     "serve.accept",
	KServeShed:       "serve.shed",
	KServeRetry:      "serve.retry",
	KServeComplete:   "serve.complete",
	KServeDegraded:   "serve.degraded",
	KServeFail:       "serve.fail",
	KBreakerTrip:     "serve.breaker.trip",
	KBreakerProbe:    "serve.breaker.probe",
	KBreakerClose:    "serve.breaker.close",
	KDrainBegin:      "serve.drain.begin",
	KDrainEnd:        "serve.drain.end",
	KBatchTask:       "serve.batch.task",
	KBatchFlush:      "serve.batch.flush",
	KCacheHit:        "serve.cache.hit",
	KCacheMiss:       "serve.cache.miss",
	KCacheEvict:      "serve.cache.evict",
	KExecScale:       "serve.exec.scale",
	KSteal:           "solver.steal",
	KTeamResize:      "linalg.team.resize",
}

// String returns the dotted event name, e.g. "job.dispatch".
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// source maps a kind to the source file that emits it, standing in for the
// "source file and line" slot of the paper's §6 label (a single-binary Go
// run has no per-task source files, but the slot keeps traces greppable).
func (k Kind) source() string {
	switch k {
	case KPoolCreate, KJobDispatch, KJobResult, KJobRetry, KJobFailed, KBudgetExhausted:
		return "pool.go"
	case KWorkerCreate, KWorkerDeath, KJobAbandon, KRendezvousBegin, KRendezvousEnd:
		return "protocol.go"
	case KSubsolveBegin, KSubsolveEnd, KFallback:
		return "solver.go"
	case KStreamConnect, KStreamBreak, KDeadlineExpired:
		return "stream.go"
	case KMachineCrash, KMachineSlow, KWorkerLost:
		return "mwsim.go"
	case KTaskFork, KTaskAdopt, KTaskReuse, KTaskKill:
		return "cluster.go"
	case KServeAccept, KServeShed, KServeRetry, KServeComplete, KServeDegraded,
		KServeFail, KBreakerTrip, KBreakerProbe, KBreakerClose, KDrainBegin, KDrainEnd:
		return "serve.go"
	case KBatchTask, KBatchFlush:
		return "batch.go"
	case KCacheHit, KCacheMiss, KCacheEvict:
		return "cache.go"
	case KExecScale:
		return "exec.go"
	case KSteal:
		return "steal.go"
	case KTeamResize:
		return "team.go"
	}
	return "obs.go"
}

// Event is one recorded occurrence. Events are fixed-size values: the
// string fields reference pre-existing names (process, machine, grid), so
// emitting one allocates nothing beyond the ring slot it overwrites.
type Event struct {
	// Seq is the 1-based emission sequence number across the run; drops
	// never renumber surviving events.
	Seq uint64
	// Us is the timestamp in microseconds since the recorder's epoch —
	// wall-clock microseconds for live runs, virtual-time microseconds for
	// simulated ones (EmitAt).
	Us int64
	// Kind classifies the event.
	Kind Kind
	// Host is the machine the event happened on; empty means the local
	// process ("localhost" in trace output).
	Host string
	// Actor is the process, worker or subsystem the event belongs to.
	Actor string
	// Aux carries a kind-specific secondary name (target port, grid, ...).
	Aux string
	// A and B are kind-specific numeric payloads (job IDs, attempt counts,
	// durations); see the Kind constants.
	A, B int64
}

// Recorder is the run-wide event sink: a preallocated ring buffer of
// Events plus a metrics registry. The zero of *Recorder (nil) is a valid,
// permanently disabled recorder: every method is nil-safe and free.
type Recorder struct {
	// AppName labels trace output (the paper's task-name slot, e.g.
	// "mainprog"); empty renders as "run".
	AppName string
	// Epoch is the Unix-seconds base added to event times when rendering
	// paper-style absolute timestamps. NewRecorder sets it to the creation
	// time; set it to PaperEpoch for output resembling the paper's.
	Epoch int64

	start time.Time

	mu      sync.Mutex
	ring    []Event
	head    int // index of the oldest event
	n       int // events currently stored
	seq     uint64
	dropped uint64
	kinds   [kindCount]uint64

	metrics registry
}

// PaperEpoch is the Unix-seconds timestamp of the paper's §6 output
// (Mon Mar 17 2003, bumpa.sen.cwi.nl), for deterministic trace rendering.
const PaperEpoch = 1048087412

// DefaultRingCap is the ring capacity used when NewRecorder is given a
// non-positive one. At 64 bytes an Event, the default ring holds the full
// trace of any paper-scale run in a few MiB.
const DefaultRingCap = 1 << 16

// NewRecorder creates an enabled recorder with a ring of the given
// capacity (DefaultRingCap if cap <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	now := time.Now()
	return &Recorder{
		start: now,
		Epoch: now.Unix(),
		ring:  make([]Event, capacity),
	}
}

// Enabled reports whether the recorder records anything; it is the nil
// check instrumented code uses before building event strings.
func (r *Recorder) Enabled() bool { return r != nil }

// Emit records one event stamped with the wall-clock time since the
// recorder was created. It is safe from any goroutine and a no-op on a nil
// recorder.
//
//vetsparse:allocfree
func (r *Recorder) Emit(k Kind, actor, aux string, a, b int64) {
	if r == nil {
		return
	}
	r.push(Event{Us: time.Since(r.start).Microseconds(), Kind: k, Actor: actor, Aux: aux, A: a, B: b})
}

// EmitAt records one event with an explicit timestamp (microseconds since
// the epoch) and host — the entry point for virtual-time emitters like the
// cluster simulator. No-op on a nil recorder.
//
//vetsparse:allocfree
func (r *Recorder) EmitAt(us int64, k Kind, host, actor, aux string, a, b int64) {
	if r == nil {
		return
	}
	r.push(Event{Us: us, Kind: k, Host: host, Actor: actor, Aux: aux, A: a, B: b})
}

//vetsparse:allocfree
func (r *Recorder) push(e Event) {
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	if int(e.Kind) < len(r.kinds) {
		r.kinds[e.Kind]++
	}
	if r.n < len(r.ring) {
		r.ring[(r.head+r.n)%len(r.ring)] = e
		r.n++
	} else {
		// Full: overwrite the oldest event and count the drop, so the ring
		// always holds the most recent window of the run.
		r.ring[r.head] = e
		r.head = (r.head + 1) % len(r.ring)
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns a copy of the buffered events in emission order (oldest
// first). Nil recorders return nil.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.ring[(r.head+i)%len(r.ring)]
	}
	return out
}

// Len returns the number of events currently buffered.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Emitted returns the total number of events emitted, drops included.
func (r *Recorder) Emitted() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dropped returns how many events were overwritten because the ring was
// full. The per-kind totals (KindCount) are unaffected by drops.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// KindCount returns the total number of events of kind k emitted over the
// run — a drop-proof tally, so protocol accounting (workers created,
// deaths, retries) can be cross-checked against the run's Stats exactly.
func (r *Recorder) KindCount(k Kind) uint64 {
	if r == nil || int(k) >= int(kindCount) {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.kinds[k]
}

// Counter returns the named counter handle, registering it on first use.
// Nil recorders return a nil handle whose methods are free no-ops.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.metrics.counter(name)
}

// Gauge returns the named gauge handle, registering it on first use.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.metrics.gauge(name)
}

// Histogram returns the named duration histogram handle, registering it on
// first use.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.metrics.histogram(name)
}

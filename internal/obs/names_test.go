package obs

import (
	"os"
	"strings"
	"testing"
)

// TestEventDocsComplete asserts the generated taxonomy covers every Kind
// exactly once, so adding a Kind without documenting it fails the build.
func TestEventDocsComplete(t *testing.T) {
	seen := make(map[Kind]int)
	for _, d := range EventDocs {
		if len(d.Kinds) == 0 {
			t.Errorf("EventDoc %q has no kinds", d.Emitter)
		}
		for _, k := range d.Kinds {
			seen[k]++
		}
	}
	for k := Kind(1); k < kindCount; k++ {
		if seen[k] != 1 {
			t.Errorf("kind %s appears %d times in EventDocs, want exactly 1", k, seen[k])
		}
	}
	if seen[KUnknown] != 0 {
		t.Errorf("KUnknown must not be documented as an emitted kind")
	}
}

// TestEventNamesDistinct guards the obsnames analyzer's assumption that
// dotted names identify kinds uniquely.
func TestEventNamesDistinct(t *testing.T) {
	names := EventNames()
	seen := make(map[string]bool)
	for _, n := range names {
		if n == "" || n == "unknown" {
			t.Errorf("real kind renders as %q", n)
		}
		if seen[n] {
			t.Errorf("duplicate event name %q", n)
		}
		seen[n] = true
	}
}

func TestKnownMetric(t *testing.T) {
	for _, name := range []string{
		"core.job.attempt.us",
		"core.jobs.outstanding",
		"linalg.team.imbalance.us",
		"solver.subsolve.grid(1,2;root=2).us",
		"solver.subsolve.g.cores",
	} {
		if !KnownMetric(name) {
			t.Errorf("KnownMetric(%q) = false, want true", name)
		}
	}
	for _, name := range []string{
		"core.job.attempt.usx",
		"solver.subsolve..us", // empty dynamic segment
		"solver.subsolve.us",
		"bogus",
		"",
	} {
		if KnownMetric(name) {
			t.Errorf("KnownMetric(%q) = true, want false", name)
		}
	}
	if !KnownMetricParts("solver.subsolve.", ".us") {
		t.Errorf("KnownMetricParts(solver.subsolve., .us) = false, want true")
	}
	if KnownMetricParts("solver.", ".us") {
		t.Errorf("KnownMetricParts(solver., .us) = true, want false")
	}
}

// TestTablesInSync fails when OBSERVABILITY.md's generated tables drift
// from the Go taxonomy — the fix is `go generate ./internal/obs`.
func TestTablesInSync(t *testing.T) {
	data, err := os.ReadFile("../../OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("reading OBSERVABILITY.md: %v", err)
	}
	doc := string(data)
	for _, tc := range []struct {
		name, table string
	}{
		{"events", RenderEventTable()},
		{"metrics", RenderMetricTable()},
	} {
		begin := "<!-- BEGIN GENERATED: " + tc.name + " (go generate ./internal/obs) -->\n"
		end := "<!-- END GENERATED: " + tc.name + " -->"
		i := strings.Index(doc, begin)
		j := strings.Index(doc, end)
		if i < 0 || j < 0 || j < i {
			t.Fatalf("OBSERVABILITY.md is missing the GENERATED markers for %s", tc.name)
		}
		if got := doc[i+len(begin) : j]; got != tc.table {
			t.Errorf("OBSERVABILITY.md %s table is stale; run `go generate ./internal/obs`.\n-- file --\n%s\n-- taxonomy --\n%s", tc.name, got, tc.table)
		}
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/trace"
)

// Message renders the event's human-readable payload — the part after the
// "->" of a §6 trace line. Task fork/adopt messages contain "Welcome" and
// task kills "Bye", so trace.MachineEbbFlow reconstructs the paper's
// Figure 1 directly from a live trace.
func (e Event) Message() string {
	switch e.Kind {
	case KPoolCreate:
		return "create_pool"
	case KWorkerCreate:
		return fmt.Sprintf("create_worker %s (worker %d)", e.Actor, e.A)
	case KWorkerDeath:
		return fmt.Sprintf("death_worker %s", e.Actor)
	case KJobDispatch:
		return fmt.Sprintf("dispatch job %d attempt %d to %s", e.A, e.B, e.Actor)
	case KJobResult:
		return fmt.Sprintf("result of job %d attempt %d from %s", e.A, e.B, e.Actor)
	case KJobRetry:
		return fmt.Sprintf("retry job %d after %d attempts", e.A, e.B)
	case KJobAbandon:
		return fmt.Sprintf("abandon %s", e.Actor)
	case KJobFailed:
		return fmt.Sprintf("job %d failed permanently after %d attempts", e.A, e.B)
	case KRendezvousBegin:
		return fmt.Sprintf("rendezvous: %d workers, %d deaths counted", e.A, e.B)
	case KRendezvousEnd:
		return fmt.Sprintf("a_rendezvous: %d workers, %d deaths", e.A, e.B)
	case KBudgetExhausted:
		return fmt.Sprintf("failure budget exhausted: %d failures > %d", e.A, e.B)
	case KSubsolveBegin:
		return fmt.Sprintf("subsolve %s begin", e.Aux)
	case KSubsolveEnd:
		return fmt.Sprintf("subsolve %s end after %d us", e.Aux, e.B)
	case KFallback:
		return fmt.Sprintf("fallback: master recomputes %s locally", e.Aux)
	case KStreamConnect:
		t := "BK"
		if e.A == 1 {
			t = "KK"
		}
		return fmt.Sprintf("stream %s %s to %s", t, e.Actor, e.Aux)
	case KStreamBreak:
		return fmt.Sprintf("stream broken at %s", e.Actor)
	case KDeadlineExpired:
		return fmt.Sprintf("deadline expired on %s after %d us", e.Actor, e.A)
	case KMachineCrash:
		return "machine crashed"
	case KMachineSlow:
		return fmt.Sprintf("machine slowed by factor %d", e.A)
	case KTaskFork:
		return fmt.Sprintf("Welcome (fork task %d, load %d)", e.A, e.B)
	case KTaskAdopt:
		return fmt.Sprintf("Welcome (adopt task %d)", e.A)
	case KTaskReuse:
		return fmt.Sprintf("reuse task %d, load %d", e.A, e.B)
	case KTaskKill:
		return fmt.Sprintf("Bye (task %d)", e.A)
	case KWorkerLost:
		return fmt.Sprintf("worker %s lost with its machine", e.Actor)
	case KServeAccept:
		return fmt.Sprintf("accept request %d (queue depth %d)", e.A, e.B)
	case KServeShed:
		return fmt.Sprintf("shed request %d: %s", e.A, e.Aux)
	case KServeRetry:
		return fmt.Sprintf("retry request %d after attempt %d", e.A, e.B)
	case KServeComplete:
		return fmt.Sprintf("request %d completed after %d attempts", e.A, e.B)
	case KServeDegraded:
		return fmt.Sprintf("request %d completed degraded after %d attempts", e.A, e.B)
	case KServeFail:
		return fmt.Sprintf("request %d failed (%s) with %d worker failures", e.A, e.Aux, e.B)
	case KBreakerTrip:
		return fmt.Sprintf("breaker open for tenant %s after %d consecutive failures", e.Aux, e.A)
	case KBreakerProbe:
		return fmt.Sprintf("breaker half-open for tenant %s: probe admitted", e.Aux)
	case KBreakerClose:
		return fmt.Sprintf("breaker closed for tenant %s", e.Aux)
	case KDrainBegin:
		return fmt.Sprintf("drain begin: %d queued jobs to shed", e.A)
	case KDrainEnd:
		if e.A == 1 {
			return "drain end: all inflight jobs completed"
		}
		return "drain end: timeout with inflight jobs remaining"
	case KBatchTask:
		return fmt.Sprintf("batch %s: task of request %d enqueued (%d pending)", e.Actor, e.A, e.B)
	case KBatchFlush:
		return fmt.Sprintf("batch %s: flush %d tasks (%s) after %d us", e.Actor, e.A, e.Aux, e.B)
	case KCacheHit:
		return fmt.Sprintf("cache hit %s", e.Actor)
	case KCacheMiss:
		return fmt.Sprintf("cache miss %s", e.Actor)
	case KCacheEvict:
		return fmt.Sprintf("cache evict %s (%d bytes)", e.Actor, e.A)
	case KExecScale:
		return fmt.Sprintf("executors scaled %d -> %d", e.A, e.B)
	case KSteal:
		return fmt.Sprintf("%s stole task %d (%d mc) from %s", e.Actor, e.A, e.B, e.Aux)
	case KTeamResize:
		return fmt.Sprintf("%s team resized %d -> %d", e.Actor, e.A, e.B)
	}
	return e.Kind.String()
}

// TraceEntry bridges the live event to the paper's §6 two-line format: the
// host/task/process label, the (sec, usec) timestamp, the task name, the
// acting manifold, a source-file slot and the message. app is the
// application name (the paper's "mainprog"), epoch the Unix-seconds base.
func (e Event) TraceEntry(app string, epoch int64) trace.Entry {
	host := e.Host
	if host == "" {
		host = "localhost"
	}
	if app == "" {
		app = "run"
	}
	actor := e.Actor
	if actor == "" {
		actor = e.Kind.String()
	}
	return trace.Entry{
		Host:   host,
		TaskID: 1, // a single-binary run is one task instance
		ProcID: int(e.Seq),
		Sec:    epoch + e.Us/1e6,
		Usec:   e.Us % 1e6,
		Task:   app,
		// The manifold-name slot names the acting process; the paper's own
		// output uses the same slot for "Master(port in)".
		Manifold: actor,
		File:     e.Kind.source(),
		Line:     100 + int(e.Kind),
		Msg:      e.Message(),
	}
}

// WriteTrace renders every buffered event in the paper's chronological
// two-line format, ordered by the integer (Sec, Usec) pair. If events were
// dropped, a header line says how many.
func (r *Recorder) WriteTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	events := r.Events()
	entries := make([]trace.Entry, len(events))
	for i, e := range events {
		entries[i] = e.TraceEntry(r.AppName, r.Epoch)
	}
	trace.SortEntries(entries)
	if d := r.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "# obs: ring full, %d oldest events dropped\n", d); err != nil {
			return err
		}
	}
	for _, e := range entries {
		if _, err := fmt.Fprintln(w, e.Format()); err != nil {
			return err
		}
	}
	return nil
}

// timelineRecord is the JSON shape of one exported event.
type timelineRecord struct {
	Seq   uint64 `json:"seq"`
	Us    int64  `json:"us"`
	T     string `json:"t"` // human-readable seconds, e.g. "12.345678"
	Kind  string `json:"kind"`
	Host  string `json:"host,omitempty"`
	Actor string `json:"actor,omitempty"`
	Aux   string `json:"aux,omitempty"`
	A     int64  `json:"a,omitempty"`
	B     int64  `json:"b,omitempty"`
	Msg   string `json:"msg"`
}

// WriteJSONL exports the buffered events as a JSON-lines timeline, one
// event per line in chronological order, followed by a summary record
// (kind "obs.summary") carrying the emitted/dropped totals. This is the
// machine-readable artifact CI uploads from fault-stress runs.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		rec := timelineRecord{
			Seq:   e.Seq,
			Us:    e.Us,
			T:     fmt.Sprintf("%d.%06d", e.Us/1e6, e.Us%1e6),
			Kind:  e.Kind.String(),
			Host:  e.Host,
			Actor: e.Actor,
			Aux:   e.Aux,
			A:     e.A,
			B:     e.B,
			Msg:   e.Message(),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	summary := struct {
		Kind    string `json:"kind"`
		Emitted uint64 `json:"emitted"`
		Dropped uint64 `json:"dropped"`
	}{"obs.summary", r.Emitted(), r.Dropped()}
	return enc.Encode(summary)
}

// WriteMetrics prints the per-run metrics summary: the drop-proof
// per-kind event totals, every registered counter and gauge, and every
// duration histogram with count/min/mean/p50/p90/p99/max in microseconds.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	b.WriteString("# events (total emitted; ring drops do not affect these)\n")
	r.mu.Lock()
	kinds := r.kinds
	emitted, dropped := r.seq, r.dropped
	r.mu.Unlock()
	for k := Kind(1); k < kindCount; k++ {
		if kinds[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "event   %-28s %d\n", k.String(), kinds[k])
	}
	fmt.Fprintf(&b, "event   %-28s %d\n", "total", emitted)
	if dropped > 0 {
		fmt.Fprintf(&b, "event   %-28s %d\n", "dropped", dropped)
	}

	r.metrics.mu.Lock()
	counters, gauges, hists := r.metrics.counters, r.metrics.gauges, r.metrics.histograms
	r.metrics.mu.Unlock()
	if len(counters) > 0 {
		b.WriteString("# counters\n")
		for _, name := range sortedKeys(counters) {
			fmt.Fprintf(&b, "counter %-28s %d\n", name, counters[name].Value())
		}
	}
	if len(gauges) > 0 {
		b.WriteString("# gauges\n")
		for _, name := range sortedKeys(gauges) {
			fmt.Fprintf(&b, "gauge   %-28s %d\n", name, gauges[name].Value())
		}
	}
	if len(hists) > 0 {
		b.WriteString("# histograms (microseconds)\n")
		for _, name := range sortedKeys(hists) {
			h := hists[name]
			fmt.Fprintf(&b, "hist    %-28s count=%d min=%d mean=%.0f p50=%d p90=%d p99=%d max=%d\n",
				name, h.Count(), h.Min(), h.Mean(),
				h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestRingKeepsMostRecentAndCountsDrops(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Emit(KJobDispatch, "w", "", int64(i), 1)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	if got := r.Emitted(); got != 10 {
		t.Fatalf("Emitted = %d, want 10", got)
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(events))
	}
	for i, e := range events {
		if want := int64(6 + i); e.A != want {
			t.Errorf("event %d: A = %d, want %d (most recent window)", i, e.A, want)
		}
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("event %d: Seq = %d, want %d", i, e.Seq, want)
		}
	}
	// Per-kind totals are drop-proof.
	if got := r.KindCount(KJobDispatch); got != 10 {
		t.Fatalf("KindCount = %d, want 10", got)
	}
}

func TestNilRecorderIsSafeAndFree(t *testing.T) {
	var r *Recorder
	r.Emit(KWorkerCreate, "w", "", 0, 0)
	r.EmitAt(5, KMachineCrash, "h", "m", "", 0, 0)
	r.Counter("c").Inc()
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(10)
	r.Histogram("h").ObserveSince(time.Now())
	if r.Enabled() || r.Len() != 0 || r.Events() != nil || r.Dropped() != 0 ||
		r.Emitted() != 0 || r.KindCount(KWorkerCreate) != 0 {
		t.Fatal("nil recorder should observe nothing")
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteTrace: err=%v len=%d", err, buf.Len())
	}
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteJSONL: err=%v len=%d", err, buf.Len())
	}
	if err := r.WriteMetrics(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteMetrics: err=%v len=%d", err, buf.Len())
	}
}

// TestDisabledZeroAlloc is the overhead guard of the disabled path: with a
// nil recorder, instrumentation in a hot loop must not allocate at all.
func TestDisabledZeroAlloc(t *testing.T) {
	var r *Recorder
	c := r.Counter("core.jobs")
	h := r.Histogram("core.job.us")
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(KJobDispatch, "Worker-1", "", 3, 1)
		c.Inc()
		h.Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledEmitZeroAlloc pins the enabled-path cost: emitting with
// pre-existing strings writes into the preallocated ring without
// allocating.
func TestEnabledEmitZeroAlloc(t *testing.T) {
	r := NewRecorder(1 << 10)
	c := r.Counter("core.jobs")
	h := r.Histogram("core.job.us")
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(KJobDispatch, "Worker-1", "", 3, 1)
		c.Inc()
		h.Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("enabled emit allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestConcurrentEmitters exercises the recorder from many goroutines; run
// under -race it is the data-race guard for the whole package.
func TestConcurrentEmitters(t *testing.T) {
	r := NewRecorder(256) // small ring: force concurrent overwrites
	const goroutines, each = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("emitted")
			h := r.Histogram("lat.us")
			for i := 0; i < each; i++ {
				r.Emit(KJobDispatch, "w", "", int64(i), int64(g))
				c.Inc()
				h.Observe(int64(i))
			}
		}(g)
	}
	wg.Wait()
	total := uint64(goroutines * each)
	if got := r.Emitted(); got != total {
		t.Fatalf("Emitted = %d, want %d", got, total)
	}
	if got := r.KindCount(KJobDispatch); got != total {
		t.Fatalf("KindCount = %d, want %d", got, total)
	}
	if got := r.Dropped(); got != total-256 {
		t.Fatalf("Dropped = %d, want %d", got, total-256)
	}
	if got := r.Counter("emitted").Value(); got != int64(total) {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if got := r.Histogram("lat.us").Count(); got != int64(total) {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	// Surviving events are the last 256 emitted, in sequence order.
	events := r.Events()
	if len(events) != 256 {
		t.Fatalf("len(Events) = %d, want 256", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("events out of sequence at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1106 || h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("count/sum/min/max = %d/%d/%d/%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if m := h.Mean(); m != 1106.0/5 {
		t.Fatalf("mean = %g", m)
	}
	// p50 of {1,2,3,100,1000}: third observation (3) lives in bucket
	// [2,4) whose upper edge is 4.
	if q := h.Quantile(0.5); q != 4 {
		t.Fatalf("p50 = %d, want 4", q)
	}
	// The top quantile is clamped to the exact max.
	if q := h.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 = %d, want 1000", q)
	}
	// Negative observations clamp to zero and land in bucket 0.
	h2 := &Histogram{}
	h2.Observe(-5)
	if h2.Min() != 0 || h2.Buckets()[0] != 1 {
		t.Fatalf("negative observation: min=%d bucket0=%d", h2.Min(), h2.Buckets()[0])
	}
}

// TestWriteTraceParsesAsPaperFormat round-trips the exporter through the
// §6 parser: every emitted event must render as a valid two-line entry,
// and the output must be chronological by the integer (Sec, Usec) pair.
func TestWriteTraceParsesAsPaperFormat(t *testing.T) {
	r := NewRecorder(64)
	r.AppName = "mainprog"
	r.Epoch = PaperEpoch
	r.EmitAt(2_000_001, KWorkerCreate, "alboka.sen.cwi.nl", "Worker-1", "", 1, 0)
	r.EmitAt(1_500_000, KPoolCreate, "", "Master", "", 0, 0)
	r.EmitAt(2_000_000, KJobDispatch, "", "Worker-1", "", 0, 1)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6 (3 two-line entries):\n%s", len(lines), buf.String())
	}
	var entries []trace.Entry
	for i := 0; i < len(lines); i += 2 {
		e, err := trace.Parse(lines[i] + "\n" + lines[i+1])
		if err != nil {
			t.Fatalf("entry %d does not parse: %v\n%s\n%s", i/2, err, lines[i], lines[i+1])
		}
		entries = append(entries, e)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Before(entries[i-1]) {
			t.Fatalf("entries not chronological: %v then %v", entries[i-1], entries[i])
		}
	}
	if entries[0].Task != "mainprog" || entries[0].Manifold != "Master" {
		t.Fatalf("first entry label: %+v", entries[0])
	}
	if entries[0].Sec != PaperEpoch+1 || entries[0].Usec != 500000 {
		t.Fatalf("first entry time: sec=%d usec=%d", entries[0].Sec, entries[0].Usec)
	}
	// The host-tagged cluster event keeps its machine name.
	if entries[2].Host != "alboka.sen.cwi.nl" {
		t.Fatalf("host-tagged entry: %+v", entries[2])
	}
}

func TestWriteJSONLTimeline(t *testing.T) {
	r := NewRecorder(8)
	r.Emit(KWorkerCreate, "Worker-1", "", 1, 0)
	r.Emit(KWorkerDeath, "Worker-1", "", 0, 0)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 { // 2 events + summary
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if first["kind"] != "worker.create" || first["actor"] != "Worker-1" {
		t.Fatalf("first record: %v", first)
	}
	var summary map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &summary); err != nil {
		t.Fatalf("summary is not JSON: %v", err)
	}
	if summary["kind"] != "obs.summary" || summary["emitted"] != float64(2) {
		t.Fatalf("summary record: %v", summary)
	}
}

func TestWriteMetricsSummary(t *testing.T) {
	r := NewRecorder(8)
	r.Emit(KJobRetry, "w", "", 0, 1)
	r.Emit(KJobRetry, "w", "", 1, 1)
	r.Counter("core.failures").Add(3)
	r.Gauge("pool.outstanding").Set(2)
	r.Histogram("solver.subsolve.us").Observe(1234)
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"event   job.retry",
		"counter core.failures",
		"gauge   pool.outstanding",
		"hist    solver.subsolve.us",
		"count=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics summary missing %q:\n%s", want, out)
		}
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(1); k < kindCount; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
		if k.source() == "" {
			t.Errorf("kind %v has no source file", k)
		}
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var r *Recorder
	c := r.Counter("c")
	h := r.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(KJobDispatch, "Worker-1", "", int64(i), 1)
		c.Inc()
		h.Observe(int64(i))
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	r := NewRecorder(1 << 12)
	c := r.Counter("c")
	h := r.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(KJobDispatch, "Worker-1", "", int64(i), 1)
		c.Inc()
		h.Observe(int64(i))
	}
}

// Command gen regenerates the event and metric name tables of
// OBSERVABILITY.md from the taxonomy in internal/obs/names.go, the single
// source of truth shared with the obsnames analyzer. Run via
// `go generate ./internal/obs`.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

const docPath = "../../OBSERVABILITY.md" // go generate runs in internal/obs

func main() {
	path := docPath
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	out := string(data)
	out, err = splice(out, "events", obs.RenderEventTable())
	if err != nil {
		fatal(err)
	}
	out, err = splice(out, "metrics", obs.RenderMetricTable())
	if err != nil {
		fatal(err)
	}
	if string(data) != out {
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("gen: OBSERVABILITY.md updated")
	}
}

// splice replaces the block between the named GENERATED markers.
func splice(doc, name, table string) (string, error) {
	begin := fmt.Sprintf("<!-- BEGIN GENERATED: %s (go generate ./internal/obs) -->\n", name)
	end := fmt.Sprintf("<!-- END GENERATED: %s -->", name)
	i := strings.Index(doc, begin)
	j := strings.Index(doc, end)
	if i < 0 || j < 0 || j < i {
		return "", fmt.Errorf("gen: markers for %q not found in OBSERVABILITY.md", name)
	}
	return doc[:i+len(begin)] + table + doc[j:], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

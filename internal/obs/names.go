package obs

import (
	"fmt"
	"strings"
)

// This file is the single source of truth for the observability name
// taxonomy: the event-kind table and the metric-name table rendered into
// OBSERVABILITY.md (go generate, below) and enforced over the codebase by
// the obsnames analyzer (internal/analysis/passes/obsnames). Editing a
// name or adding a metric happens here; the doc and the checker follow.

//go:generate go run ./gen

// EventDoc documents one row of the event-taxonomy table. A row may cover
// several kinds (begin/end pairs share emitter and payload semantics).
type EventDoc struct {
	// Kinds are the kinds documented by the row.
	Kinds []Kind
	// Emitter names who emits the event.
	Emitter string
	// Payload describes the A, B integer payloads ("—" when unused).
	Payload string
}

// EventDocs is the event taxonomy, one entry per OBSERVABILITY.md row.
// TestEventDocsComplete asserts every Kind appears exactly once.
var EventDocs = []EventDoc{
	{[]Kind{KPoolCreate}, "`core.Master.CreatePool`", "—"},
	{[]Kind{KWorkerCreate}, "coordinator, per `create_worker`", "worker ordinal"},
	{[]Kind{KWorkerDeath}, "protocol wrapper / abandonment, exactly once per worker", "—"},
	{[]Kind{KJobDispatch}, "`core.Pool.dispatch`", "job ID, attempt"},
	{[]Kind{KJobResult}, "`core.Pool.Collect` on an accepted result", "job ID, attempt"},
	{[]Kind{KJobRetry}, "`core.Pool.fail` within the retry budget", "job ID, failed attempt"},
	{[]Kind{KJobAbandon}, "`core.Master.abandon` (deadline expiry / budget stop)", "—"},
	{[]Kind{KJobFailed}, "`core.Pool.fail` on retry exhaustion", "job ID, attempts"},
	{[]Kind{KRendezvousBegin, KRendezvousEnd}, "coordinator", "workers created, deaths counted"},
	{[]Kind{KBudgetExhausted}, "`core.Pool.exhaust`", "failures, budget"},
	{[]Kind{KSubsolveBegin, KSubsolveEnd}, "`solver.timedSubsolve` (workers, `Sequential`, fallback)", "begin: grid L1, L2; end: flops, steps"},
	{[]Kind{KFallback}, "`solver.Concurrent` on graceful degradation", "job ID, attempts"},
	{[]Kind{KStreamConnect, KStreamBreak}, "`manifold.Connect` / `Stream.Break`", "stream type (0=BK, 1=KK)"},
	{[]Kind{KDeadlineExpired}, "`manifold.Port.ReadWithin` on timeout", "deadline (µs)"},
	{[]Kind{KTaskFork, KTaskAdopt, KTaskReuse, KTaskKill}, "`cluster.Spawner`, virtual time", "task ID, load"},
	{[]Kind{KMachineCrash, KMachineSlow}, "`mwsim` failure plan, virtual time", "slow: factor"},
	{[]Kind{KWorkerLost}, "`mwsim` when a crash takes a worker", "grid L1, L2"},
	{[]Kind{KServeAccept}, "`serve.Server` on admission", "request ID, queue depth"},
	{[]Kind{KServeShed}, "`serve.Server` refusing a request (Aux is the reason)", "request ID"},
	{[]Kind{KServeRetry}, "`serve.Server` retrying a failed attempt after backoff", "request ID, failed attempt"},
	{[]Kind{KServeComplete, KServeDegraded, KServeFail}, "`serve.Server`, exactly one per admitted request", "request ID, attempts (fail: failures)"},
	{[]Kind{KBreakerTrip, KBreakerProbe, KBreakerClose}, "`serve` tenant circuit breaker (Aux is the tenant)", "trip: consecutive failures"},
	{[]Kind{KDrainBegin, KDrainEnd}, "`serve.Server.Drain` on SIGTERM", "begin: queue depth; end: 1=clean, 0=timeout"},
	{[]Kind{KBatchTask}, "`serve` batcher on a subsolve enqueue (Actor is the signature)", "request ID, pending-batch size"},
	{[]Kind{KBatchFlush}, "`serve` batcher dispatching a batch (Aux is the reason: size, age, deadline, close)", "batch size, oldest-member age (µs)"},
	{[]Kind{KCacheHit, KCacheMiss}, "`serve` solver cache on checkout (Actor is the signature)", "—"},
	{[]Kind{KCacheEvict}, "`serve` solver cache keeping its entry/byte bounds", "evicted entry bytes"},
	{[]Kind{KExecScale}, "`serve` executor autoscaler on a pool resize", "old workers, new workers"},
	{[]Kind{KSteal}, "work-stealing schedulers (`solver.concurrentSteal`, `serve` batch workers; Aux is the victim)", "solver: grid index, modelled megacycles; serve: batch size, 0"},
	{[]Kind{KTeamResize}, "`solver` resize observer when an elastic `linalg.Team` applies a `SetTarget`", "old team size, new team size"},
}

// MetricDoc documents one registered metric name. A `<grid>` segment marks
// a dynamic component (the per-grid metric families built by
// concatenation in solver.timedSubsolve).
type MetricDoc struct {
	// Name is the canonical metric name, with `<grid>` for dynamic
	// segments.
	Name string
	// Type is "counter", "gauge" or "histogram".
	Type string
	// Meaning is the one-line doc rendered into the table.
	Meaning string
}

// MetricDocs is the metric-name taxonomy, one entry per OBSERVABILITY.md
// row. The obsnames analyzer rejects Counter/Gauge/Histogram calls whose
// name does not resolve to one of these.
var MetricDocs = []MetricDoc{
	{"core.job.attempt.us", "histogram", "dispatch-to-accepted-result latency per job"},
	{"core.jobs.outstanding", "gauge", "jobs submitted but not yet resolved"},
	{"linalg.team.imbalance.us", "histogram", "per-dispatch spread between first and last finishing team worker"},
	{"linalg.team.phase.us", "histogram", "wall-clock cost of one fused-phase dispatch (wake, micro-program, park)"},
	{"linalg.team.phase.barriers", "counter", "in-phase barriers crossed by fused-phase dispatches"},
	{"serve.requests", "counter", "valid solve requests reaching admission control"},
	{"serve.shed", "counter", "requests refused by admission control or shed during drain"},
	{"serve.completed", "counter", "admitted requests finished successfully on the concurrent path"},
	{"serve.degraded", "counter", "admitted requests finished successfully on the degraded sequential path"},
	{"serve.failed", "counter", "admitted requests ending in permanent failure (budget, deadline, error)"},
	{"serve.retries", "counter", "serve-level solve attempts retried after a backoff pause"},
	{"serve.queue.depth", "gauge", "jobs admitted and waiting for an executor"},
	{"serve.queue.mc", "gauge", "workmodel cost estimate (megacycles) of the queued jobs"},
	{"serve.inflight", "gauge", "requests admitted but not yet terminal"},
	{"serve.request.us", "histogram", "admission-to-terminal latency per admitted request"},
	{"serve.queue.wait.us", "histogram", "admission-to-execution wait per admitted request"},
	{"serve.batch.tasks", "counter", "subsolve tasks entering the cross-request batcher"},
	{"serve.batch.flushes", "counter", "batches dispatched to batch workers"},
	{"serve.batch.size", "histogram", "subsolve tasks per flushed batch"},
	{"serve.batch.wait.us", "histogram", "enqueue-to-execution wait per batched subsolve"},
	{"serve.cache.hits", "counter", "solver-cache checkouts that found a warm entry"},
	{"serve.cache.misses", "counter", "solver-cache checkouts that built a fresh entry"},
	{"serve.cache.evictions", "counter", "solver-cache entries evicted under the entry/byte bounds"},
	{"serve.cache.entries", "gauge", "solver-cache entries currently parked (checked-out entries excluded)"},
	{"serve.cache.bytes", "gauge", "approximate bytes held by parked solver-cache entries"},
	{"serve.exec.workers", "gauge", "executor goroutines currently running"},
	{"serve.exec.target", "gauge", "executor count the autoscaler is steering toward"},
	{"serve.exec.scales", "counter", "autoscaler pool resizes"},
	{"solver.subsolve.<grid>.cores", "histogram", "team size used per subsolve of the grid"},
	{"solver.subsolve.<grid>.us", "histogram", "per-grid subsolve duration, e.g. `solver.subsolve.grid(1,2;root=2).us`"},
	{"solver.steals", "counter", "queued grids taken by an idle executor instead of their seeded owner"},
	{"solver.steal.mc", "histogram", "modelled megacycles of each stolen grid (how heavy the moved work was)"},
	{"serve.batch.steals", "counter", "flushed batches taken by an idle batch worker instead of their affinity owner"},
	{"linalg.team.resize.us", "histogram", "SetTarget-to-application latency of elastic team resizes"},
}

// ProtocolEvents are the canonical manifold event names of the
// master/worker protocol (the paper's §5 vocabulary, internal/core's Ev*
// constants). The obsnames analyzer checks event string literals raised or
// awaited on processes against this list.
var ProtocolEvents = []string{
	"create_pool",
	"create_worker",
	"rendezvous",
	"a_rendezvous",
	"finished",
	"death_worker",
}

// EventNames returns the dotted names of every real Kind ("pool.create" …
// "worker.lost"), in Kind order.
func EventNames() []string {
	names := make([]string, 0, int(kindCount)-1)
	for k := Kind(1); k < kindCount; k++ {
		names = append(names, k.String())
	}
	return names
}

// KnownMetric reports whether a fully-literal metric name is in the
// taxonomy, resolving `<grid>` segments against any single name segment.
func KnownMetric(name string) bool {
	for _, d := range MetricDocs {
		if d.Name == name {
			return true
		}
		prefix, suffix, ok := strings.Cut(d.Name, "<grid>")
		if ok && strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) && len(name) > len(prefix)+len(suffix) {
			return true
		}
	}
	return false
}

// KnownMetricParts reports whether a metric name built by concatenation —
// a constant prefix and suffix around a dynamic middle — matches a
// taxonomy entry with a `<grid>` segment in that position.
func KnownMetricParts(prefix, suffix string) bool {
	for _, d := range MetricDocs {
		p, s, ok := strings.Cut(d.Name, "<grid>")
		if ok && p == prefix && s == suffix {
			return true
		}
	}
	return false
}

// RenderEventTable renders EventDocs as the OBSERVABILITY.md markdown
// table; go generate splices it between the GENERATED markers, and
// TestTablesInSync fails if the file drifts from this rendering.
func RenderEventTable() string {
	var b strings.Builder
	b.WriteString("| Kind | Emitter | A, B |\n|---|---|---|\n")
	for _, d := range EventDocs {
		names := make([]string, len(d.Kinds))
		for i, k := range d.Kinds {
			names[i] = "`" + k.String() + "`"
		}
		fmt.Fprintf(&b, "| %s | %s | %s |\n", strings.Join(names, " / "), d.Emitter, d.Payload)
	}
	return b.String()
}

// RenderMetricTable renders MetricDocs as the OBSERVABILITY.md markdown
// table.
func RenderMetricTable() string {
	var b strings.Builder
	b.WriteString("| Name | Type | Meaning |\n|---|---|---|\n")
	for _, d := range MetricDocs {
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", d.Name, d.Type, d.Meaning)
	}
	return b.String()
}

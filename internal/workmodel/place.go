package workmodel

import "sort"

// PlaceLPT distributes task indices across executors by the classic
// longest-processing-time-first greedy: tasks are visited heaviest first
// and each lands on the currently least-loaded executor. The result is the
// initial placement of the work-stealing scheduler — cost-model-guided so
// steals are the exception, not the protocol. Deterministic: weight ties
// visit the lower task index first, load ties pick the lower executor.
//
// Each executor's queue is returned sorted by ascending weight (ties by
// ascending index), so a LIFO owner pops its heaviest task first while
// FIFO thieves steal its lightest — the cheapest item to move.
func PlaceLPT(executors int, weights []float64) [][]int {
	if executors < 1 {
		executors = 1
	}
	queues := make([][]int, executors)
	if len(weights) == 0 {
		return queues
	}
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		wa, wb := weights[order[a]], weights[order[b]]
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	load := make([]float64, executors)
	for _, task := range order {
		best := 0
		for e := 1; e < executors; e++ {
			if load[e] < load[best] {
				best = e
			}
		}
		w := weights[task]
		if w < 0 {
			w = 0
		}
		load[best] += w
		queues[best] = append(queues[best], task)
	}
	for _, q := range queues {
		sort.Slice(q, func(a, b int) bool {
			wa, wb := weights[q[a]], weights[q[b]]
			if wa != wb {
				return wa < wb
			}
			return q[a] < q[b]
		})
	}
	return queues
}

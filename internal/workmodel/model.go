// Package workmodel is the calibrated cost model that lets the cluster
// simulator replay paper-scale runs (levels up to 15, thousands of 2004
// seconds) in milliseconds.
//
// # Shape
//
// The per-grid work of subsolve(i, j) is modelled as
//
//	work(i, j, tol) = W0 * tolFactor(tol) * 2^(i+j) * (2^(Beta*i) + GammaY*2^(Beta*j))
//
// megacycles, which encodes three facts observed both in the paper's Table
// 1 and in the instrumented real solver of this repository
// (internal/solver with linalg.Ops counting):
//
//  1. cells double per unit of i+j, so per-step cost doubles;
//  2. work is U-shaped across one grid level: the anisotropic end grids
//     (lm,0) and (0,lm) cost a multiple of the balanced middle grid — the
//     real solver probe at lm=6 measured max/min ~ 3.1 with the (i,0) end
//     heavier (advection a1 > a2), reproduced here by GammaY < 1;
//  3. tightening the tolerance from 1.0e-3 to 1.0e-4 roughly doubles the
//     work (the paper's st ratio is 1.9-2.15; tolFactor = (TolRef/tol)^TolExp).
//
// # Calibration
//
// Beta is set so the modelled sequential time grows by the paper's
// observed factor ~2.42 per level (2 * 2^Beta = 2.42), and W0 anchors the
// absolute scale to the paper's st(level=15, tol=1.0e-3) = 2019.02 s on a
// 1200 MHz machine. The low-level behaviour is anchored by InitMc
// (sequential start-up work, visible in the paper's st(0) ~ 0.02 s).
//
// The real solver's flop counts feeding this calibration charge the
// Rosenbrock stage matrix at its true steady-state cost: an in-place
// O(nnz) shifted-operator update per step-size change (nothing when the
// controller holds the step), not the full re-assembly the seed performed
// — see the "Hot-loop cost model" section of EXPERIMENTS.md.
package workmodel

import (
	"math"
	"sort"

	"repro/internal/grid"
)

// Model holds the calibrated constants. The zero value is useless; start
// from Paper().
type Model struct {
	W0      float64 // base megacycles per grid-work unit at TolRef
	Beta    float64 // anisotropy exponent (imbalance across one level)
	BetaTol float64 // extra anisotropy per decade of tolerance tightening
	Delta   float64 // uniform per-level exponent (step-count growth)
	GammaY  float64 // relative weight of y-anisotropy (a2 < a1 => < 1)
	TolRef  float64 // reference tolerance of W0
	TolExp  float64 // work ~ (TolRef/tol)^TolExp

	InitMc        float64 // sequential initialization work, megacycles
	ProlongMcCell float64 // prolongation megacycles per source cell
	RootRef       int     // root level the calibration assumed (2)
}

// Paper returns the model calibrated against the paper's Table 1.
func Paper() Model {
	return Model{
		W0:      0.32232,
		Beta:    0.275,
		BetaTol: 0.045,
		Delta:   0,
		GammaY:  0.70,
		TolRef:  1e-3,
		TolExp:  0.1607,
		InitMc:  25,
		// Prolongation visits every family grid's cells once with a
		// handful of flops per point; a small per-cell constant.
		ProlongMcCell: 2e-5,
		RootRef:       2,
	}
}

// TolFactor returns the work multiplier for an integrator tolerance.
func (m Model) TolFactor(tol float64) float64 {
	return math.Pow(m.TolRef/tol, m.TolExp)
}

// Cells returns the cell count of a grid.
func Cells(g grid.Grid) float64 {
	return float64(g.NX()) * float64(g.NY())
}

// BetaFor returns the anisotropy exponent at a tolerance: tighter
// tolerances hit the stiff anisotropic end grids harder (more rejected
// steps, worse conditioning), so the imbalance steepens slightly.
func (m Model) BetaFor(tol float64) float64 {
	return m.Beta + m.BetaTol*math.Log10(m.TolRef/tol)
}

// GridWork returns the subsolve work on g in megacycles at the given
// tolerance. Roots other than RootRef scale with the cell count.
func (m Model) GridWork(g grid.Grid, tol float64) float64 {
	i, j := float64(g.L1), float64(g.L2)
	beta := m.BetaFor(tol)
	shape := math.Pow(2, beta*i) + m.GammaY*math.Pow(2, beta*j)
	rootScale := math.Pow(4, float64(g.Root-m.RootRef))
	return m.W0 * m.TolFactor(tol) * rootScale * math.Pow(2, (1+m.Delta)*(i+j)) * shape
}

// JobBytes returns the size of the unit the master ships to the worker of
// grid g: the grid's share of the global data structure (initial data and
// solver workspace headers).
func JobBytes(g grid.Grid) float64 { return 32*Cells(g) + 2048 }

// ResultBytes returns the size of the worker's computed result (the
// solution field written back into the global data structure).
func ResultBytes(g grid.Grid) float64 { return 16*Cells(g) + 2048 }

// ProlongWork returns the master's final sequential prolongation work for
// a family, in megacycles.
func (m Model) ProlongWork(root, level int) float64 {
	total := 0.0
	for _, g := range grid.Family(root, level) {
		total += Cells(g)
	}
	return m.InitMc/10 + m.ProlongMcCell*total
}

// SequentialMc returns the total work of the unrestructured program:
// init, every subsolve in the nested loop, and the prolongation.
func (m Model) SequentialMc(root, level int, tol float64) float64 {
	total := m.InitMc + m.ProlongWork(root, level)
	for _, g := range grid.Family(root, level) {
		total += m.GridWork(g, tol)
	}
	return total
}

// SequentialSeconds is SequentialMc on a machine of the given clock rate —
// the paper's "st" column when run at 1200 MHz.
func (m Model) SequentialSeconds(root, level int, tol, mhz float64) float64 {
	return m.SequentialMc(root, level, tol) / mhz
}

// Allocate splits a core budget across jobs proportional to their work
// weights (largest-remainder apportionment): every job gets at least one
// core, the surplus goes to the heaviest grids first. Deterministic —
// remainder ties break toward the lower index. A budget at or below the
// job count degenerates to one core each.
func Allocate(budget int, weights []float64) []int {
	n := len(weights)
	out := make([]int, n)
	if n == 0 {
		return out
	}
	for i := range out {
		out[i] = 1
	}
	extra := budget - n
	if extra <= 0 {
		return out
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		// No usable weights: round-robin the surplus.
		for i := 0; i < extra; i++ {
			out[i%n]++
		}
		return out
	}
	type frac struct {
		i int
		r float64
	}
	fr := make([]frac, 0, n)
	used := 0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		share := float64(extra) * w / total
		k := int(share)
		out[i] += k
		used += k
		fr = append(fr, frac{i, share - float64(k)})
	}
	sort.Slice(fr, func(a, b int) bool {
		if fr[a].r != fr[b].r {
			return fr[a].r > fr[b].r
		}
		return fr[a].i < fr[b].i
	})
	for k := 0; k < extra-used; k++ {
		out[fr[k%len(fr)].i]++
	}
	return out
}

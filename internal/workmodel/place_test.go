package workmodel

import (
	"reflect"
	"testing"
)

func TestPlaceLPTBalancesAndSorts(t *testing.T) {
	//                0   1   2  3  4  5
	weights := []float64{10, 8, 7, 6, 5, 4}
	got := PlaceLPT(2, weights)
	// LPT: 10->e0, 8->e1, 7->e1(15? no: loads 10 vs 8, e1), then 6->e0? loads
	// 10 vs 15 -> e0, 5 -> e0(16? loads 16 vs 15 -> e1), 4 -> e0? loads 16 vs 20 -> e0.
	// e0 = {0, 3, 5} (sorted ascending weight: 5,3,0 -> indices 5,3,0)
	// e1 = {1, 2, 4} (ascending: 4,2,1)
	want := [][]int{{5, 3, 0}, {4, 2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PlaceLPT = %v, want %v", got, want)
	}
	// Every task placed exactly once.
	seen := map[int]int{}
	for _, q := range got {
		for _, task := range q {
			seen[task]++
		}
	}
	if len(seen) != len(weights) {
		t.Fatalf("placed %d distinct tasks, want %d", len(seen), len(weights))
	}
}

func TestPlaceLPTDeterministicTies(t *testing.T) {
	weights := []float64{3, 3, 3, 3}
	a := PlaceLPT(2, weights)
	b := PlaceLPT(2, weights)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("PlaceLPT not deterministic: %v vs %v", a, b)
	}
	// Weight ties visit lower indices first; load ties pick executor 0.
	want := [][]int{{0, 2}, {1, 3}}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("PlaceLPT = %v, want %v", a, want)
	}
}

func TestPlaceLPTEdgeCases(t *testing.T) {
	if got := PlaceLPT(3, nil); len(got) != 3 {
		t.Fatalf("PlaceLPT(3, nil) = %v, want 3 empty queues", got)
	}
	got := PlaceLPT(0, []float64{1, 2}) // executors clamps to 1
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("PlaceLPT(0, ...) = %v, want one queue of 2", got)
	}
	// More executors than tasks: surplus queues stay empty, no panic.
	got = PlaceLPT(4, []float64{2, 1})
	placed := 0
	for _, q := range got {
		placed += len(q)
	}
	if placed != 2 {
		t.Fatalf("placed %d tasks, want 2: %v", placed, got)
	}
}

package workmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func TestSequentialAnchorLevel15(t *testing.T) {
	m := Paper()
	// The model is anchored to the paper's st(15) for both tolerances.
	st3 := m.SequentialSeconds(2, 15, 1e-3, 1200)
	if math.Abs(st3-2019.02)/2019.02 > 0.01 {
		t.Errorf("st(15, 1e-3) = %g, want ~2019.02", st3)
	}
	st4 := m.SequentialSeconds(2, 15, 1e-4, 1200)
	if math.Abs(st4-4118.08)/4118.08 > 0.01 {
		t.Errorf("st(15, 1e-4) = %g, want ~4118.08", st4)
	}
}

func TestSequentialGrowthRate(t *testing.T) {
	// The paper's sequential time grows by ~2.42x per level at high
	// levels.
	m := Paper()
	for l := 11; l <= 15; l++ {
		r := m.SequentialSeconds(2, l, 1e-3, 1200) / m.SequentialSeconds(2, l-1, 1e-3, 1200)
		if r < 2.2 || r < 0 || r > 2.7 {
			t.Errorf("growth st(%d)/st(%d) = %g, want ~2.42", l, l-1, r)
		}
	}
}

func TestToleranceRoughlyDoublesWork(t *testing.T) {
	m := Paper()
	for _, l := range []int{8, 12, 15} {
		r := m.SequentialSeconds(2, l, 1e-4, 1200) / m.SequentialSeconds(2, l, 1e-3, 1200)
		if r < 1.5 || r > 2.3 {
			t.Errorf("level %d: st(1e-4)/st(1e-3) = %g, want ~1.7-2.1", l, r)
		}
	}
}

func TestUShapedImbalance(t *testing.T) {
	// Across one grid level the end grids must cost more than the middle
	// one, with the (i, 0) end heavier (a1 > a2), as the instrumented real
	// solver showed.
	m := Paper()
	lm := 10
	end0 := m.GridWork(grid.Grid{Root: 2, L1: lm, L2: 0}, 1e-3)
	endN := m.GridWork(grid.Grid{Root: 2, L1: 0, L2: lm}, 1e-3)
	mid := m.GridWork(grid.Grid{Root: 2, L1: lm / 2, L2: lm - lm/2}, 1e-3)
	if !(end0 > endN && endN > mid) {
		t.Fatalf("imbalance order violated: (lm,0)=%g (0,lm)=%g mid=%g", end0, endN, mid)
	}
	if end0/mid < 1.5 || end0/mid > 6 {
		t.Errorf("max/mid = %g, want a clear but bounded imbalance", end0/mid)
	}
}

func TestImbalanceSteepensWithTolerance(t *testing.T) {
	m := Paper()
	ratio := func(tol float64) float64 {
		end := m.GridWork(grid.Grid{Root: 2, L1: 12, L2: 0}, tol)
		mid := m.GridWork(grid.Grid{Root: 2, L1: 6, L2: 6}, tol)
		return end / mid
	}
	if ratio(1e-4) <= ratio(1e-3) {
		t.Fatalf("imbalance at 1e-4 (%g) not steeper than at 1e-3 (%g)", ratio(1e-4), ratio(1e-3))
	}
}

func TestBytesScaleWithCells(t *testing.T) {
	small := grid.Grid{Root: 2, L1: 0, L2: 0}
	big := grid.Grid{Root: 2, L1: 5, L2: 5}
	if JobBytes(big) <= JobBytes(small) || ResultBytes(big) <= ResultBytes(small) {
		t.Fatal("message sizes must grow with the grid")
	}
	if JobBytes(big) <= ResultBytes(big) {
		t.Fatal("job data (input fields + workspace) must exceed result data")
	}
}

func TestRootScaling(t *testing.T) {
	m := Paper()
	w2 := m.GridWork(grid.Grid{Root: 2, L1: 3, L2: 3}, 1e-3)
	w3 := m.GridWork(grid.Grid{Root: 3, L1: 3, L2: 3}, 1e-3)
	if math.Abs(w3/w2-4) > 1e-9 {
		t.Fatalf("root+1 work ratio = %g, want 4 (4x cells)", w3/w2)
	}
}

// Property: work is positive and monotone in level along both axes.
func TestPropWorkMonotone(t *testing.T) {
	m := Paper()
	f := func(iRaw, jRaw uint8) bool {
		i, j := int(iRaw%14), int(jRaw%14)
		g := grid.Grid{Root: 2, L1: i, L2: j}
		w := m.GridWork(g, 1e-3)
		if w <= 0 {
			return false
		}
		wx := m.GridWork(grid.Grid{Root: 2, L1: i + 1, L2: j}, 1e-3)
		wy := m.GridWork(grid.Grid{Root: 2, L1: i, L2: j + 1}, 1e-3)
		return wx > w && wy > w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sequential total equals init + prolong + the sum of the
// family's grid works.
func TestPropSequentialIsSumOfParts(t *testing.T) {
	m := Paper()
	f := func(lRaw uint8) bool {
		l := int(lRaw % 12)
		sum := m.InitMc + m.ProlongWork(2, l)
		for _, g := range grid.Family(2, l) {
			sum += m.GridWork(g, 1e-3)
		}
		return math.Abs(sum-m.SequentialMc(2, l, 1e-3)) < 1e-9*sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocate(t *testing.T) {
	cases := []struct {
		budget  int
		weights []float64
		want    []int
	}{
		{8, []float64{1, 1, 1, 1}, []int{2, 2, 2, 2}},
		{4, []float64{10, 1, 1, 1}, []int{1, 1, 1, 1}}, // budget == n: one each
		{2, []float64{10, 1, 1, 1}, []int{1, 1, 1, 1}}, // budget < n: still one each
		{10, []float64{6, 2, 1, 1}, []int{5, 2, 2, 1}}, // heaviest gets the surplus
		{7, []float64{0, 0, 0}, []int{3, 2, 2}},        // zero weights: round-robin
		{6, []float64{-1, 1, -1}, []int{1, 4, 1}},      // negatives treated as zero
		{0, nil, []int{}},
	}
	for _, c := range cases {
		got := Allocate(c.budget, c.weights)
		if len(got) != len(c.want) {
			t.Errorf("Allocate(%d, %v) = %v, want %v", c.budget, c.weights, got, c.want)
			continue
		}
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != c.want[i] {
				t.Errorf("Allocate(%d, %v) = %v, want %v", c.budget, c.weights, got, c.want)
			}
		}
		if n := len(c.weights); n > 0 && c.budget >= n && sum != c.budget {
			t.Errorf("Allocate(%d, %v) hands out %d cores, want the whole budget", c.budget, c.weights, sum)
		}
	}
	// Determinism: equal weights with a remainder must tie-break by index.
	a := Allocate(5, []float64{1, 1, 1})
	b := Allocate(5, []float64{1, 1, 1})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Allocate not deterministic: %v vs %v", a, b)
		}
	}
}

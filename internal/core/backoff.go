// Seeded, jittered exponential backoff for retry pacing.
//
// The Pool used to resubmit a failed job to a fresh worker immediately,
// which is exactly wrong under real failure causes: a retry storm against
// an overloaded or flapping resource amplifies the overload. A Backoff
// spaces the attempts out exponentially with bounded jitter, and — like
// the FaultInjector — it is seeded, so a test seed reproduces the same
// delay sequence every run.

package core

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes jittered exponential retry delays: attempt n (1-based)
// waits a duration drawn uniformly from [exp/2, exp] where exp is
// Base·2^(n-1) clamped to Max. Draws come from a seeded source, so the
// delay sequence is deterministic for a given seed and draw order. A nil
// *Backoff is a valid no-op that always returns zero delay.
type Backoff struct {
	mu   sync.Mutex
	base time.Duration
	max  time.Duration
	rng  *rand.Rand
}

// Defaults used by NewBackoff when base or max are non-positive.
const (
	// DefaultBackoffBase is the first-attempt delay ceiling.
	DefaultBackoffBase = 5 * time.Millisecond
	// DefaultBackoffMax caps the exponential growth.
	DefaultBackoffMax = 500 * time.Millisecond
)

// NewBackoff returns a seeded backoff policy with the given base and cap
// (non-positive values take the defaults; a max below base is raised to
// base).
func NewBackoff(seed int64, base, max time.Duration) *Backoff {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the pause before retry attempt n (1-based): the jittered
// exponential described on Backoff. Attempts below 1 are treated as 1.
// Safe from any goroutine; zero on a nil Backoff.
func (b *Backoff) Delay(attempt int) time.Duration {
	if b == nil {
		return 0
	}
	if attempt < 1 {
		attempt = 1
	}
	exp := b.base
	for i := 1; i < attempt && exp < b.max; i++ {
		exp *= 2
	}
	if exp > b.max {
		exp = b.max
	}
	half := exp / 2
	b.mu.Lock()
	jitter := time.Duration(b.rng.Int63n(int64(half) + 1))
	b.mu.Unlock()
	return half + jitter
}

// Base returns the configured first-attempt delay ceiling (0 for nil).
func (b *Backoff) Base() time.Duration {
	if b == nil {
		return 0
	}
	return b.base
}

// Max returns the configured delay cap (0 for nil).
func (b *Backoff) Max() time.Duration {
	if b == nil {
		return 0
	}
	return b.max
}

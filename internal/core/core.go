package core

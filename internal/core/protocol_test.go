package core

import (
	"fmt"
	"sort"
	"sync/atomic"
	"testing"
)

// TestEchoPool drives one pool of n workers, each doubling one integer.
func TestEchoPool(t *testing.T) {
	const n = 8
	var got []int
	Run(func(m *Master) {
		m.CreatePool()
		for i := 0; i < n; i++ {
			m.CreateWorker()
			m.Send(i)
		}
		for i := 0; i < n; i++ {
			got = append(got, m.ReadResult().(int))
		}
		m.Rendezvous()
		m.Finished()
	}, func(w *Worker) {
		v := w.Read().(int)
		w.Write(2 * v)
	})
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	sort.Ints(got)
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("sorted results %v, want doubles of 0..%d", got, n-1)
		}
	}
}

func TestSingleWorkerPool(t *testing.T) {
	var result any
	Run(func(m *Master) {
		m.CreatePool()
		m.CreateWorker()
		m.Send("ping")
		result = m.ReadResult()
		m.Rendezvous()
		m.Finished()
	}, func(w *Worker) {
		w.Write(w.Read().(string) + "-pong")
	})
	if result != "ping-pong" {
		t.Fatalf("result = %v", result)
	}
}

func TestEmptyPoolRendezvous(t *testing.T) {
	// A pool with zero workers must rendezvous immediately (t == now == 0).
	done := false
	Run(func(m *Master) {
		m.CreatePool()
		m.Rendezvous()
		done = true
		m.Finished()
	}, func(w *Worker) { t.Error("worker created for empty pool") })
	if !done {
		t.Fatal("master never passed the rendezvous")
	}
}

func TestMultiplePools(t *testing.T) {
	// The paper (§4.2, closing remark): a more demanding master may raise
	// create_pool again after a rendezvous; the coordinator must serve a
	// second pool.
	var sums []int
	Run(func(m *Master) {
		for pool := 0; pool < 3; pool++ {
			m.CreatePool()
			for i := 0; i < 4; i++ {
				m.CreateWorker()
				m.Send(pool*10 + i)
			}
			sum := 0
			for i := 0; i < 4; i++ {
				sum += m.ReadResult().(int)
			}
			m.Rendezvous()
			sums = append(sums, sum)
		}
		m.Finished()
	}, func(w *Worker) {
		w.Write(w.Read().(int))
	})
	want := []int{0 + 1 + 2 + 3, 40 + 1 + 2 + 3, 80 + 1 + 2 + 3}
	for i := range want {
		if sums[i] != want[i] {
			t.Fatalf("pool %d sum = %d, want %d (all: %v)", i, sums[i], want[i], sums)
		}
	}
}

func TestMasterFinalSequentialWork(t *testing.T) {
	// Step 5: the master keeps computing after finished; the coordinator
	// has already halted.
	final := 0
	Run(func(m *Master) {
		m.CreatePool()
		m.CreateWorker()
		m.Send(21)
		r := m.ReadResult().(int)
		m.Rendezvous()
		m.Finished()
		final = r * 2 // prolongation stand-in
	}, func(w *Worker) {
		w.Write(w.Read().(int))
	})
	if final != 42 {
		t.Fatalf("final = %d, want 42", final)
	}
}

func TestWorkerPanicDeliversFailure(t *testing.T) {
	// A panicking worker must still die (rendezvous completes) and the
	// master must receive a WorkerFailure instead of hanging.
	var failure error
	Run(func(m *Master) {
		m.CreatePool()
		m.CreateWorker()
		m.Send("boom")
		if f, ok := m.ReadResult().(WorkerFailure); ok {
			failure = f
		}
		m.Rendezvous()
		m.Finished()
	}, func(w *Worker) {
		w.Read()
		panic("job exploded")
	})
	if failure == nil {
		t.Fatal("no WorkerFailure delivered")
	}
	if got := failure.Error(); got == "" {
		t.Fatal("empty failure message")
	}
}

func TestWorkersRunConcurrently(t *testing.T) {
	// All workers of a pool must be alive simultaneously when their work
	// overlaps: each worker waits until every other worker has started,
	// which can only succeed if they truly run in parallel.
	const n = 6
	var started atomic.Int32
	Run(func(m *Master) {
		m.CreatePool()
		for i := 0; i < n; i++ {
			m.CreateWorker()
			m.Send(i)
		}
		for i := 0; i < n; i++ {
			m.ReadResult()
		}
		m.Rendezvous()
		m.Finished()
	}, func(w *Worker) {
		w.Read()
		started.Add(1)
		for started.Load() < n {
			// Spin until all workers have started; a sequential execution
			// would deadlock here, so reaching Write proves concurrency.
		}
		w.Write(true)
	})
	if started.Load() != n {
		t.Fatalf("started = %d, want %d", started.Load(), n)
	}
}

func TestResultsArriveInCompletionOrder(t *testing.T) {
	// Workers finishing early deliver early regardless of creation order;
	// the KK stream keeps every results path open.
	const n = 5
	var order []int
	Run(func(m *Master) {
		m.CreatePool()
		for i := 0; i < n; i++ {
			m.CreateWorker()
			m.Send(i)
		}
		for i := 0; i < n; i++ {
			order = append(order, m.ReadResult().(int))
		}
		m.Rendezvous()
		m.Finished()
	}, func(w *Worker) {
		w.Write(w.Read().(int))
	})
	seen := map[int]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("duplicate result %d in %v", v, order)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("got %v, want %d distinct results", order, n)
	}
}

func TestLargePool(t *testing.T) {
	// The paper runs pools of up to 31 workers; exercise 64.
	const n = 64
	total := 0
	Run(func(m *Master) {
		m.CreatePool()
		for i := 0; i < n; i++ {
			m.CreateWorker()
			m.Send(1)
		}
		for i := 0; i < n; i++ {
			total += m.ReadResult().(int)
		}
		m.Rendezvous()
		m.Finished()
	}, func(w *Worker) {
		w.Write(w.Read().(int))
	})
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
}

func TestGenericReuseDifferentWorker(t *testing.T) {
	// The protocol is generic: the same Run coordinates an entirely
	// different worker computation without modification.
	var words []string
	Run(func(m *Master) {
		m.CreatePool()
		for _, s := range []string{"cut", "paste"} {
			m.CreateWorker()
			m.Send(s)
		}
		for i := 0; i < 2; i++ {
			words = append(words, m.ReadResult().(string))
		}
		m.Rendezvous()
		m.Finished()
	}, func(w *Worker) {
		w.Write(fmt.Sprintf("<%s>", w.Read().(string)))
	})
	sort.Strings(words)
	if words[0] != "<cut>" || words[1] != "<paste>" {
		t.Fatalf("words = %v", words)
	}
}

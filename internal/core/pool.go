// Fault tolerance for the master/worker protocol.
//
// The paper's deployment absorbs worker loss through MLINK {perpetual} task
// instances: a dying worker is a normal event, and the next worker is simply
// installed in a fresh (or recycled) task instance. This file gives the
// protocol the matching semantics at the coordination level: a Pool tracks
// every submitted job, bounds how long the master waits for any single
// worker, and — on a worker panic, deadline expiry, or corrupt result —
// resubmits the job to a freshly created worker, bounded by a per-job retry
// budget and a run-level failure budget. The protocol, not the computation,
// owns the failure semantics.

package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/manifold"
	"repro/internal/obs"
)

// Policy configures the fault tolerance of one Run.
type Policy struct {
	// Retries is the per-job retry budget: how many times a failed job is
	// resubmitted to a fresh worker before it is reported as JobFailed.
	Retries int
	// FailureBudget caps the total number of failed worker attempts across
	// the run; once exceeded the run's pools stop retrying and report
	// BudgetExhausted. 0 means unlimited.
	FailureBudget int
	// WorkerDeadline bounds how long the master waits for any single
	// worker; a worker that has not delivered within the deadline is
	// abandoned (its death is raised on its behalf) and its job retried.
	// 0 means no deadline.
	WorkerDeadline time.Duration
	// Backoff, when non-nil, paces job resubmissions: retry attempt n is
	// dispatched only after Backoff.Delay(n) has elapsed, so a flapping
	// resource is not hammered by an immediate-retry storm. The pause is
	// taken in the collecting goroutine and is bounded by Backoff.Max; nil
	// (the default) keeps the historical retry-immediately behaviour.
	Backoff *Backoff
	// Injector, when non-nil, deterministically makes worker bodies panic,
	// hang, or corrupt their results (tests and the CLI -faults flag).
	Injector *FaultInjector
	// Validate, when non-nil, checks every successful result unit; an error
	// counts as a failed attempt of that job (corrupt-result detection).
	Validate func(result any) error
	// Obs, when non-nil, records the run's protocol events (dispatches,
	// retries, abandonments, rendezvous) and metrics into the observability
	// layer; nil (the default) costs nothing on any path.
	Obs *obs.Recorder
}

// Stats accounts the failure handling of one Run.
type Stats struct {
	// Workers counts the worker processes created (including retries).
	Workers int
	// Deaths counts the death_worker events consumed at rendezvous; a
	// correct run has Deaths == Workers, faults or not.
	Deaths int
	// Failures counts failed worker attempts (panics, deadline expiries,
	// rejected results).
	Failures int
	// Retries counts job resubmissions to fresh workers.
	Retries int
	// Abandoned counts workers given up on after their deadline.
	Abandoned int
}

// JobFailed reports a job that exhausted its retry budget. The master can
// degrade gracefully (e.g. compute the job locally) using the embedded Job.
type JobFailed struct {
	Job      manifold.Unit
	ID       int
	Attempts int
	LastErr  error
}

// Error describes the exhausted job and its last failure cause.
func (e *JobFailed) Error() string {
	return fmt.Sprintf("core: job %d failed after %d attempts: %v", e.ID, e.Attempts, e.LastErr)
}

// Unwrap exposes the last failure cause to errors.Is/As chains.
func (e *JobFailed) Unwrap() error { return e.LastErr }

// BudgetExhausted reports that the run-level failure budget was spent.
type BudgetExhausted struct {
	Failures, Budget int
}

// Error reports how far past the budget the run's failures went.
func (e BudgetExhausted) Error() string {
	return fmt.Sprintf("core: failure budget exhausted: %d failures > budget %d", e.Failures, e.Budget)
}

// DeadlineExpired is the per-attempt failure cause of an abandoned worker.
type DeadlineExpired struct {
	Worker   string
	Deadline time.Duration
}

// Error names the abandoned worker and the deadline it missed.
func (e DeadlineExpired) Error() string {
	return fmt.Sprintf("core: worker %s missed its %v deadline", e.Worker, e.Deadline)
}

// jobEnvelope tags a job with its pool-local ID so results and failures can
// be correlated with the job that produced them. Worker.Read unwraps it.
type jobEnvelope struct {
	ID  int
	Job manifold.Unit
}

// resultEnvelope is the tagged counterpart written by Worker.Write.
type resultEnvelope struct {
	ID   int
	Unit manifold.Unit
}

// jobRec is the master-side record of one submitted job.
type jobRec struct {
	id       int
	job      manifold.Unit
	attempts int
	worker   *manifold.Process
	deadline time.Time // zero = none
	started  time.Time // dispatch time of the current attempt (obs only)
	lastErr  error
}

// Pool is the retry-aware façade over one worker pool: Submit hands a job
// to a fresh worker, Collect returns successful results (transparently
// retrying failed attempts) and surfaces permanent failures as errors.
type Pool struct {
	m           *Master
	outstanding map[int]*jobRec    // by job ID
	byWorker    map[string]*jobRec // by current worker name
	pending     []error            // permanent failures awaiting Collect
	nextID      int
	budgetErr   error // sticky once the failure budget is exhausted

	obs      *obs.Recorder  // nil = observability off
	jobHist  *obs.Histogram // dispatch-to-result latency per attempt
	outGauge *obs.Gauge     // outstanding jobs
}

// NewPool raises create_pool and returns the retry-aware pool handle
// operating under the run's Policy.
func (m *Master) NewPool() *Pool {
	m.CreatePool()
	rec := m.state.obs
	return &Pool{
		m:           m,
		outstanding: make(map[int]*jobRec),
		byWorker:    make(map[string]*jobRec),
		obs:         rec,
		jobHist:     rec.Histogram("core.job.attempt.us"),
		outGauge:    rec.Gauge("core.jobs.outstanding"),
	}
}

// Submit creates a worker for the job and charges it (steps 3b-3d with
// failure tracking). Call Collect once per Submit.
func (pl *Pool) Submit(job manifold.Unit) {
	id := pl.nextID
	pl.nextID++
	pl.dispatch(&jobRec{id: id, job: job})
}

// dispatch sends rec's job to a freshly created worker and (re)arms its
// deadline.
func (pl *Pool) dispatch(rec *jobRec) {
	w := pl.m.CreateWorker()
	rec.worker = w
	rec.attempts++
	rec.deadline = time.Time{}
	if d := pl.m.policy().WorkerDeadline; d > 0 {
		rec.deadline = time.Now().Add(d)
	}
	pl.outstanding[rec.id] = rec
	pl.byWorker[w.Name()] = rec
	if pl.obs != nil {
		rec.started = time.Now()
		pl.obs.Emit(obs.KJobDispatch, w.Name(), "", int64(rec.id), int64(rec.attempts))
		pl.outGauge.Set(int64(len(pl.outstanding)))
	}
	pl.m.Send(jobEnvelope{ID: rec.id, Job: rec.job})
}

// Collect returns the next successful result. Failed attempts are retried
// transparently; a job that exhausts its retry budget yields a *JobFailed
// error, and once the run-level failure budget is spent every remaining
// Collect returns BudgetExhausted. Results arrive in completion order.
func (pl *Pool) Collect() (manifold.Unit, error) {
	for {
		if len(pl.pending) > 0 {
			err := pl.pending[0]
			pl.pending = pl.pending[1:]
			return nil, err
		}
		if pl.budgetErr != nil {
			return nil, pl.budgetErr
		}
		if len(pl.outstanding) == 0 {
			return nil, fmt.Errorf("core: Collect with no outstanding jobs")
		}
		u, err := pl.read()
		if err != nil {
			// Deadline tick: fail every overdue worker, then loop.
			pl.expireOverdue()
			continue
		}
		switch v := u.(type) {
		case resultEnvelope:
			rec, ok := pl.outstanding[v.ID]
			if !ok {
				continue // stale result from an abandoned attempt
			}
			if validate := pl.m.policy().Validate; validate != nil {
				if verr := validate(v.Unit); verr != nil {
					pl.fail(rec, verr, false)
					continue
				}
			}
			delete(pl.outstanding, rec.id)
			delete(pl.byWorker, rec.worker.Name())
			if pl.obs != nil {
				pl.obs.Emit(obs.KJobResult, rec.worker.Name(), "", int64(rec.id), int64(rec.attempts))
				pl.jobHist.ObserveSince(rec.started)
				pl.outGauge.Set(int64(len(pl.outstanding)))
			}
			return v.Unit, nil
		case WorkerFailure:
			rec, ok := pl.byWorker[v.Worker]
			if !ok {
				continue // stale failure from an abandoned attempt
			}
			pl.fail(rec, v, false)
		default:
			return nil, fmt.Errorf("core: unexpected unit %T on dataport", u)
		}
	}
}

// read waits for the next dataport unit, bounded by the nearest outstanding
// deadline (if any).
func (pl *Pool) read() (manifold.Unit, error) {
	var nearest time.Time
	for _, rec := range pl.outstanding {
		if rec.deadline.IsZero() {
			continue
		}
		if nearest.IsZero() || rec.deadline.Before(nearest) {
			nearest = rec.deadline
		}
	}
	if nearest.IsZero() {
		//vetsparse:ignore deadlines no outstanding job carries a deadline here, so there is none to thread; deadline-free pools wait unbounded by design
		return pl.m.ReadResult(), nil
	}
	return pl.m.ReadResultUntil(nearest)
}

// expireOverdue abandons every worker past its deadline and fails its job.
// Iteration is in job-ID order so failure handling is deterministic.
func (pl *Pool) expireOverdue() {
	now := time.Now()
	var due []*jobRec
	for _, rec := range pl.outstanding {
		if !rec.deadline.IsZero() && !now.Before(rec.deadline) {
			due = append(due, rec)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].id < due[j].id })
	for _, rec := range due {
		if pl.budgetErr != nil {
			return
		}
		pl.fail(rec, DeadlineExpired{Worker: rec.worker.Name(), Deadline: pl.m.policy().WorkerDeadline}, true)
	}
}

// fail handles one failed attempt: it counts against the failure budget,
// retries the job if its budget allows, and otherwise queues a permanent
// JobFailed. abandon marks attempts whose worker is (possibly) still alive —
// the master raises death_worker on its behalf so the rendezvous count stays
// correct, and closes the worker's input port to unstick a pre-read hang.
func (pl *Pool) fail(rec *jobRec, cause error, abandon bool) {
	rec.lastErr = cause
	if abandon {
		pl.m.abandon(rec.worker)
	}
	delete(pl.byWorker, rec.worker.Name())
	failures := pl.m.state.addFailure()
	if budget := pl.m.policy().FailureBudget; budget > 0 && failures > budget {
		pl.exhaust(BudgetExhausted{Failures: failures, Budget: budget})
		return
	}
	if rec.attempts <= pl.m.policy().Retries {
		pl.m.state.addRetry()
		pl.obs.Emit(obs.KJobRetry, rec.worker.Name(), "", int64(rec.id), int64(rec.attempts))
		// Pace the resubmission. Sleeping here blocks Collect, which is
		// deliberate: results produced meanwhile buffer on the dataport's
		// unbounded stream, and the pause is bounded by Backoff.Max, so
		// failure handling stays ordered and deterministic under a seed.
		if d := pl.m.policy().Backoff.Delay(rec.attempts); d > 0 {
			time.Sleep(d)
		}
		pl.dispatch(rec)
		return
	}
	delete(pl.outstanding, rec.id)
	pl.obs.Emit(obs.KJobFailed, rec.worker.Name(), "", int64(rec.id), int64(rec.attempts))
	pl.pending = append(pl.pending, &JobFailed{Job: rec.job, ID: rec.id, Attempts: rec.attempts, LastErr: cause})
}

// exhaust stops the pool: every outstanding worker is abandoned (so the
// rendezvous still terminates) and the budget error becomes sticky.
func (pl *Pool) exhaust(err BudgetExhausted) {
	pl.budgetErr = err
	pl.obs.Emit(obs.KBudgetExhausted, "Master", "", int64(err.Failures), int64(err.Budget))
	for _, rec := range pl.outstanding {
		pl.m.abandon(rec.worker)
	}
	pl.outstanding = make(map[int]*jobRec)
	pl.byWorker = make(map[string]*jobRec)
}

// Outstanding returns how many submitted jobs have not yet been resolved.
func (pl *Pool) Outstanding() int { return len(pl.outstanding) }

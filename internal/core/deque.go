package core

import "sync"

// Deque is a mutex-guarded work-stealing deque: the owning executor pushes
// and pops at the back (LIFO, so an owner seeded in ascending cost order
// pops its heaviest work first), thieves steal from the front (FIFO, so a
// thief takes the oldest — for a cost-sorted seed, the lightest — queued
// item, the one the owner would reach last). A plain mutex over a ring
// buffer is deliberate: the items are whole subsolves costing milliseconds
// to seconds, so a lock-free Chase-Lev deque would buy nothing but
// subtlety. The zero value is empty and ready to use.
//
// The steady-state Push/Pop/Steal cycle is allocation-free: the ring grows
// only when Push outruns capacity, which a scheduler seeding the deque
// once up front (NewDeque with the task count) never hits.
type Deque[T any] struct {
	mu   sync.Mutex
	ring []T
	head int // index of the front item (steal end)
	size int
}

// NewDeque returns a deque with capacity for n items before any grow.
func NewDeque[T any](n int) *Deque[T] {
	if n < 1 {
		n = 1
	}
	return &Deque[T]{ring: make([]T, n)}
}

// Len returns the current number of queued items.
func (d *Deque[T]) Len() int {
	d.mu.Lock()
	n := d.size
	d.mu.Unlock()
	return n
}

// Push adds v at the back (the owner's end).
//
//vetsparse:allocfree
func (d *Deque[T]) Push(v T) {
	d.mu.Lock()
	if d.size == len(d.ring) {
		d.grow()
	}
	d.ring[(d.head+d.size)%len(d.ring)] = v
	d.size++
	d.mu.Unlock()
}

// Pop removes and returns the back item (the owner's end, LIFO). It
// reports false when the deque is empty.
//
//vetsparse:allocfree
func (d *Deque[T]) Pop() (T, bool) {
	var zero T
	d.mu.Lock()
	if d.size == 0 {
		d.mu.Unlock()
		return zero, false
	}
	d.size--
	i := (d.head + d.size) % len(d.ring)
	v := d.ring[i]
	d.ring[i] = zero
	d.mu.Unlock()
	return v, true
}

// Steal removes and returns the front item (the thief's end, FIFO). It
// reports false when the deque is empty.
//
//vetsparse:allocfree
func (d *Deque[T]) Steal() (T, bool) {
	var alwaysTrue func(T) bool
	return d.stealIf(alwaysTrue)
}

// StealIf removes and returns the front item only if pred accepts it,
// atomically under the deque lock — the cost-model guardrail: a thief
// inspects the candidate's weight and either takes it or leaves the deque
// untouched, with no window for the item to change hands in between.
//
//vetsparse:allocfree
func (d *Deque[T]) StealIf(pred func(T) bool) (T, bool) {
	return d.stealIf(pred)
}

//vetsparse:allocfree
func (d *Deque[T]) stealIf(pred func(T) bool) (T, bool) {
	var zero T
	d.mu.Lock()
	if d.size == 0 {
		d.mu.Unlock()
		return zero, false
	}
	v := d.ring[d.head]
	if pred != nil && !pred(v) {
		d.mu.Unlock()
		return zero, false
	}
	d.ring[d.head] = zero
	d.head = (d.head + 1) % len(d.ring)
	d.size--
	d.mu.Unlock()
	return v, true
}

// grow doubles the ring, unwrapping the items into the new backing array.
// Called under d.mu; isolated so the Push fast path stays allocation-free.
func (d *Deque[T]) grow() {
	next := make([]T, 2*len(d.ring))
	for i := 0; i < d.size; i++ {
		next[i] = d.ring[(d.head+i)%len(d.ring)]
	}
	d.ring = next
	d.head = 0
}

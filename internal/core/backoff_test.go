package core

import (
	"testing"
	"time"
)

func TestBackoffDeterministicUnderSeed(t *testing.T) {
	a := NewBackoff(42, time.Millisecond, 100*time.Millisecond)
	b := NewBackoff(42, time.Millisecond, 100*time.Millisecond)
	for n := 1; n <= 16; n++ {
		if da, db := a.Delay(n), b.Delay(n); da != db {
			t.Fatalf("attempt %d: seeds diverge: %v vs %v", n, da, db)
		}
	}
	c := NewBackoff(43, time.Millisecond, 100*time.Millisecond)
	same := true
	d := NewBackoff(42, time.Millisecond, 100*time.Millisecond)
	for n := 1; n <= 16; n++ {
		if c.Delay(n) != d.Delay(n) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical delay sequences")
	}
}

func TestBackoffBoundsAndClamp(t *testing.T) {
	base, max := 4*time.Millisecond, 32*time.Millisecond
	bo := NewBackoff(1, base, max)
	for n := 1; n <= 20; n++ {
		exp := base
		for i := 1; i < n && exp < max; i++ {
			exp *= 2
		}
		if exp > max {
			exp = max
		}
		d := bo.Delay(n)
		if d < exp/2 || d > exp {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", n, d, exp/2, exp)
		}
	}
}

func TestBackoffDefaultsAndNil(t *testing.T) {
	bo := NewBackoff(1, 0, 0)
	if bo.Base() != DefaultBackoffBase || bo.Max() != DefaultBackoffMax {
		t.Fatalf("defaults = (%v, %v), want (%v, %v)", bo.Base(), bo.Max(), DefaultBackoffBase, DefaultBackoffMax)
	}
	// A max below base is raised to base, so Delay stays well defined.
	lo := NewBackoff(1, 10*time.Millisecond, time.Millisecond)
	if lo.Max() != 10*time.Millisecond {
		t.Fatalf("max below base: Max() = %v, want %v", lo.Max(), 10*time.Millisecond)
	}
	if d := lo.Delay(5); d < 5*time.Millisecond || d > 10*time.Millisecond {
		t.Fatalf("delay %v outside [5ms, 10ms]", d)
	}
	// Attempts below 1 behave as attempt 1.
	if d := bo.Delay(0); d > bo.Base() {
		t.Fatalf("attempt 0 delay %v exceeds base %v", d, bo.Base())
	}
	var nilBo *Backoff
	if nilBo.Delay(3) != 0 || nilBo.Base() != 0 || nilBo.Max() != 0 {
		t.Fatal("nil Backoff is not a zero no-op")
	}
}

func TestPoolRetriesPacedByBackoff(t *testing.T) {
	// A faulted run with a backoff completes with the same results and the
	// same failure accounting as the immediate-retry policy — the pacing
	// changes when retries happen, never what they produce.
	policy := Policy{
		Retries:  2,
		Backoff:  NewBackoff(7, time.Millisecond, 8*time.Millisecond),
		Injector: PlanFaults(0, FaultPanic, FaultPanic),
	}
	got, errs, stats := runPool(t, 4, policy)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	wantDoubles(t, got, 4)
	if stats.Failures != 2 || stats.Retries != 2 {
		t.Fatalf("stats = %+v, want 2 failures, 2 retries", stats)
	}
	if stats.Deaths != stats.Workers {
		t.Fatalf("deaths %d != workers %d", stats.Deaths, stats.Workers)
	}
}

package core

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"
)

// doubler is the worker computation used throughout: read one int, double
// it. Injected faults hit the protocol wrapper and Read/Write around it.
func doubler(w *Worker) {
	v := w.Read().(int)
	w.Write(2 * v)
}

// rejectCorrupt is the Validate hook used by tests that inject corruption.
func rejectCorrupt(u any) error {
	if c, ok := u.(CorruptUnit); ok {
		return fmt.Errorf("corrupt unit from %s", c.Worker)
	}
	return nil
}

// runPool drives one pool of n doubling jobs under the policy and returns
// the sorted successful results, the per-job errors, and the run stats.
func runPool(t *testing.T, n int, policy Policy) ([]int, []error, Stats) {
	t.Helper()
	var got []int
	var errs []error
	stats := RunPolicy(func(m *Master) {
		pool := m.NewPool()
		for i := 0; i < n; i++ {
			pool.Submit(i)
		}
		for i := 0; i < n; i++ {
			u, err := pool.Collect()
			if err != nil {
				errs = append(errs, err)
				continue
			}
			got = append(got, u.(int))
		}
		m.Rendezvous()
		m.Finished()
	}, doubler, policy)
	sort.Ints(got)
	return got, errs, stats
}

func wantDoubles(t *testing.T, got []int, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("got %d results (%v), want %d", len(got), got, n)
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("sorted results %v, want doubles of 0..%d", got, n-1)
		}
	}
}

func TestPanicBeforeReadRetried(t *testing.T) {
	// The worker dies before it ever reads its job; the master must learn
	// of the failure (JobID unknown, correlated by worker name) and
	// resubmit to a fresh worker.
	policy := Policy{
		Retries:  1,
		Injector: PlanFaults(0, FaultPanicPreRead),
	}
	got, errs, stats := runPool(t, 1, policy)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	wantDoubles(t, got, 1)
	if stats.Failures != 1 || stats.Retries != 1 || stats.Workers != 2 {
		t.Fatalf("stats = %+v, want 1 failure, 1 retry, 2 workers", stats)
	}
	if stats.Deaths != stats.Workers {
		t.Fatalf("deaths %d != workers %d", stats.Deaths, stats.Workers)
	}
}

func TestHangPastDeadlineAbandonedAndRetried(t *testing.T) {
	// The first worker stalls far past the master's deadline: the master
	// abandons it (raising its death on its behalf) and retries the job;
	// the stalled worker's late result must be discarded.
	policy := Policy{
		Retries:        1,
		WorkerDeadline: 50 * time.Millisecond,
		Injector:       PlanFaults(3*time.Second, FaultHang),
	}
	start := time.Now()
	got, errs, stats := runPool(t, 1, policy)
	if elapsed := time.Since(start); elapsed >= 3*time.Second {
		t.Fatalf("run took %v: master waited out the hang instead of abandoning", elapsed)
	}
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	wantDoubles(t, got, 1)
	if stats.Abandoned != 1 || stats.Retries != 1 || stats.Workers != 2 {
		t.Fatalf("stats = %+v, want 1 abandoned, 1 retry, 2 workers", stats)
	}
	if stats.Deaths != stats.Workers {
		t.Fatalf("deaths %d != workers %d", stats.Deaths, stats.Workers)
	}
}

func TestMultipleSimultaneousFailures(t *testing.T) {
	// Half the pool's first attempts die at once; every job must still
	// complete and the rendezvous must account for every worker created.
	const n = 6
	policy := Policy{
		Retries:  2,
		Injector: PlanFaults(0, FaultPanic, FaultPanic, FaultPanic),
	}
	got, errs, stats := runPool(t, n, policy)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	wantDoubles(t, got, n)
	if stats.Failures != 3 || stats.Retries != 3 || stats.Workers != n+3 {
		t.Fatalf("stats = %+v, want 3 failures, 3 retries, %d workers", stats, n+3)
	}
	if stats.Deaths != stats.Workers {
		t.Fatalf("deaths %d != workers %d", stats.Deaths, stats.Workers)
	}
}

func TestCorruptResultRejectedAndRetried(t *testing.T) {
	policy := Policy{
		Retries:  1,
		Validate: rejectCorrupt,
		Injector: PlanFaults(0, FaultCorrupt),
	}
	got, errs, stats := runPool(t, 2, policy)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	wantDoubles(t, got, 2)
	if stats.Failures != 1 || stats.Retries != 1 {
		t.Fatalf("stats = %+v, want 1 failure, 1 retry", stats)
	}
}

func TestRetryExhaustionReportsJobFailed(t *testing.T) {
	// Job 0 panics on its first attempt and again on its retry (draw index
	// 3: indexes 0..2 are the initial submissions); with Retries=1 it must
	// surface as JobFailed carrying the original job for graceful
	// degradation.
	policy := Policy{
		Retries:  1,
		Injector: PlanFaults(0, FaultPanic, FaultNone, FaultNone, FaultPanic),
	}
	got, errs, stats := runPool(t, 3, policy)
	if len(errs) != 1 {
		t.Fatalf("errors = %v, want exactly one JobFailed", errs)
	}
	var jf *JobFailed
	if !errors.As(errs[0], &jf) {
		t.Fatalf("error %v is not a JobFailed", errs[0])
	}
	if jf.Job.(int) != 0 || jf.Attempts != 2 {
		t.Fatalf("JobFailed = %+v, want job 0 after 2 attempts", jf)
	}
	if len(got) != 2 {
		t.Fatalf("got %v, want the two surviving jobs", got)
	}
	if stats.Deaths != stats.Workers {
		t.Fatalf("deaths %d != workers %d", stats.Deaths, stats.Workers)
	}
}

func TestFailureBudgetExhausted(t *testing.T) {
	// Every attempt panics and the run tolerates only 2 failures: the pool
	// must stop retrying, report BudgetExhausted for everything left, and
	// still reach a clean rendezvous.
	alwaysPanic := NewFaultInjector(1, 0, 1, 0, 0, 0)
	policy := Policy{
		Retries:       5,
		FailureBudget: 2,
		Injector:      alwaysPanic,
	}
	got, errs, stats := runPool(t, 4, policy)
	if len(got) != 0 {
		t.Fatalf("got %v, want no successes", got)
	}
	if len(errs) != 4 {
		t.Fatalf("%d errors, want 4", len(errs))
	}
	var be BudgetExhausted
	if !errors.As(errs[len(errs)-1], &be) {
		t.Fatalf("last error %v is not BudgetExhausted", errs[len(errs)-1])
	}
	if be.Budget != 2 {
		t.Fatalf("budget = %d, want 2", be.Budget)
	}
	if stats.Deaths != stats.Workers {
		t.Fatalf("deaths %d != workers %d", stats.Deaths, stats.Workers)
	}
}

func TestRendezvousCountAcrossPoolsWithFaults(t *testing.T) {
	// Two pools in one run, faults in both: every pool's rendezvous must
	// terminate and the total death count must equal the workers created.
	policy := Policy{
		Retries:  2,
		Injector: PlanFaults(0, FaultPanic, FaultNone, FaultPanicPreRead, FaultNone, FaultPanic),
	}
	var all []int
	stats := RunPolicy(func(m *Master) {
		for pool := 0; pool < 2; pool++ {
			pl := m.NewPool()
			for i := 0; i < 3; i++ {
				pl.Submit(pool*10 + i)
			}
			for i := 0; i < 3; i++ {
				u, err := pl.Collect()
				if err != nil {
					panic(err)
				}
				all = append(all, u.(int))
			}
			m.Rendezvous()
		}
		m.Finished()
	}, doubler, policy)
	if len(all) != 6 {
		t.Fatalf("%d results, want 6", len(all))
	}
	if stats.Deaths != stats.Workers {
		t.Fatalf("deaths %d != workers %d (stats %+v)", stats.Deaths, stats.Workers, stats)
	}
	if stats.Failures != 3 || stats.Retries != 3 {
		t.Fatalf("stats = %+v, want 3 failures / 3 retries", stats)
	}
}

func TestInjectorDeterministicDraws(t *testing.T) {
	a := NewFaultInjector(42, 0.1, 0.2, 0.2, 0.2, time.Second)
	b := NewFaultInjector(42, 0.1, 0.2, 0.2, 0.2, time.Second)
	for i := 0; i < 200; i++ {
		if ka, kb := a.draw(), b.draw(); ka != kb {
			t.Fatalf("draw %d: %v != %v", i, ka, kb)
		}
	}
}

func TestParseFaultSpec(t *testing.T) {
	fi, err := ParseFaultSpec("seed=7, panic=0.25, panicpre=0.1, hang=0.2, corrupt=0.05, hangfor=250ms")
	if err != nil {
		t.Fatal(err)
	}
	if fi.HangFor() != 250*time.Millisecond {
		t.Fatalf("hangFor = %v", fi.HangFor())
	}
	for _, bad := range []string{"panic", "frob=1", "panic=x", "panic=0.9,hang=0.9"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestZeroPolicyPoolBehavesLikePlainProtocol(t *testing.T) {
	// The Pool façade under an empty policy must reproduce plain Run
	// semantics: no retries, no deadlines, results in completion order.
	got, errs, stats := runPool(t, 8, Policy{})
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	wantDoubles(t, got, 8)
	if stats.Failures != 0 || stats.Retries != 0 || stats.Abandoned != 0 {
		t.Fatalf("stats = %+v, want no failures", stats)
	}
	if stats.Workers != 8 || stats.Deaths != 8 {
		t.Fatalf("stats = %+v, want 8 workers / 8 deaths", stats)
	}
}

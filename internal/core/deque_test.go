package core

import (
	"sync"
	"testing"
)

func TestDequeOwnerLIFOThiefFIFO(t *testing.T) {
	d := NewDeque[int](4)
	for i := 1; i <= 3; i++ {
		d.Push(i)
	}
	if got := d.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if v, ok := d.Steal(); !ok || v != 1 {
		t.Fatalf("Steal = %d,%v, want 1,true (front/FIFO)", v, ok)
	}
	if v, ok := d.Pop(); !ok || v != 3 {
		t.Fatalf("Pop = %d,%v, want 3,true (back/LIFO)", v, ok)
	}
	if v, ok := d.Pop(); !ok || v != 2 {
		t.Fatalf("Pop = %d,%v, want 2,true", v, ok)
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop on empty deque reported ok")
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("Steal on empty deque reported ok")
	}
}

func TestDequeStealIfGuardrail(t *testing.T) {
	d := NewDeque[int](4)
	d.Push(5)
	d.Push(50)
	// The front item (5) fails the predicate: the deque must be left
	// untouched — StealIf never skips past the front to reach 50.
	if v, ok := d.StealIf(func(v int) bool { return v >= 10 }); ok {
		t.Fatalf("StealIf accepted %d despite failing front item", v)
	}
	if got := d.Len(); got != 2 {
		t.Fatalf("Len after rejected StealIf = %d, want 2", got)
	}
	if v, ok := d.StealIf(func(v int) bool { return v >= 5 }); !ok || v != 5 {
		t.Fatalf("StealIf = %d,%v, want 5,true", v, ok)
	}
}

func TestDequeGrowWraps(t *testing.T) {
	d := NewDeque[int](2)
	// Force a wrapped ring before growing: head in the middle.
	d.Push(1)
	d.Push(2)
	if v, _ := d.Steal(); v != 1 {
		t.Fatal("setup steal")
	}
	d.Push(3)
	d.Push(4) // grows with head != 0
	d.Push(5)
	want := []int{2, 3, 4, 5}
	for _, w := range want {
		if v, ok := d.Steal(); !ok || v != w {
			t.Fatalf("Steal = %d,%v, want %d,true", v, ok, w)
		}
	}
}

func TestDequeZeroValueAndEmptyCapacity(t *testing.T) {
	var d Deque[string]
	if _, ok := d.Pop(); ok {
		t.Fatal("zero-value Pop reported ok")
	}
	nd := NewDeque[string](0)
	nd.Push("a")
	if v, ok := nd.Pop(); !ok || v != "a" {
		t.Fatalf("Pop = %q,%v, want a,true", v, ok)
	}
}

// TestDequeConcurrentAccounting hammers one deque from an owner and
// several thieves under the race detector and checks every item is
// consumed exactly once.
func TestDequeConcurrentAccounting(t *testing.T) {
	const items, thieves = 2000, 4
	d := NewDeque[int](64)
	seen := make([]int32, items)
	var wg sync.WaitGroup
	var mu sync.Mutex
	record := func(v int) {
		mu.Lock()
		seen[v]++
		mu.Unlock()
	}

	wg.Add(1 + thieves)
	go func() { // owner: interleaved pushes and pops
		defer wg.Done()
		for i := 0; i < items; i++ {
			d.Push(i)
			if i%3 == 0 {
				if v, ok := d.Pop(); ok {
					record(v)
				}
			}
		}
		for {
			v, ok := d.Pop()
			if !ok {
				return
			}
			record(v)
		}
	}()
	for th := 0; th < thieves; th++ {
		go func() {
			defer wg.Done()
			misses := 0
			for misses < 10000 {
				v, ok := d.Steal()
				if !ok {
					misses++
					continue
				}
				misses = 0
				record(v)
			}
		}()
	}
	wg.Wait()

	// The owner drains whatever the thieves left, so after both sides
	// stop, every item was consumed exactly once... except items the
	// thieves missed after their miss budget — the owner's final drain
	// loop catches those. Anything not seen exactly once is a bug.
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("item %d consumed %d times, want exactly once", v, n)
		}
	}
}

func BenchmarkDequePushPop(b *testing.B) {
	d := NewDeque[int](8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Pop()
	}
}

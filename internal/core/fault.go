package core

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultKind classifies one injected worker fault.
type FaultKind int

const (
	// FaultNone leaves the worker alone.
	FaultNone FaultKind = iota
	// FaultPanicPreRead makes the worker panic before it reads its job —
	// the job unit never leaves the worker's input queue.
	FaultPanicPreRead
	// FaultPanic makes the worker panic right after reading its job.
	FaultPanic
	// FaultHang stalls the worker for the injector's HangFor after reading
	// its job; a hang longer than the master's deadline looks like a dead
	// worker, a shorter one like a slow node.
	FaultHang
	// FaultCorrupt makes the worker deliver a CorruptUnit instead of its
	// computed result.
	FaultCorrupt
)

// String names the fault kind as it appears in -faults specs and reports.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultPanicPreRead:
		return "panic-pre-read"
	case FaultPanic:
		return "panic"
	case FaultHang:
		return "hang"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// CorruptUnit is the unit a corrupt-faulted worker delivers instead of its
// result. A Policy.Validate hook rejects it, turning the corruption into a
// retriable failure.
type CorruptUnit struct{ Worker string }

// InjectedFault is the panic value of injected panics, so failure reports
// distinguish injected faults from genuine worker bugs.
type InjectedFault struct{ Kind FaultKind }

// Error formats the injected fault as a failure cause.
func (f InjectedFault) Error() string { return "core: injected fault: " + f.Kind.String() }

// FaultInjector deterministically assigns a fault to every worker attempt.
// Draws happen in the coordinator goroutine in worker-creation order, so a
// given seed (or plan) always produces the same fault sequence. Two modes:
//
//   - plan mode: an explicit FaultKind per creation index, clean afterwards
//     (deterministic protocol tests);
//   - probabilistic mode: seeded per-kind probabilities (CLI and stress
//     runs).
type FaultInjector struct {
	mu      sync.Mutex
	plan    []FaultKind
	rng     *rand.Rand
	pPre    float64
	pPanic  float64
	pHang   float64
	pCorr   float64
	hangFor time.Duration
	drawn   int
	counts  map[FaultKind]int
}

// DefaultHangFor is the stall duration of FaultHang when the spec does not
// set one.
const DefaultHangFor = 3 * time.Second

// NewFaultInjector returns a probabilistic injector: every worker attempt
// panics before its read with probability pPre, panics after it with pPanic,
// hangs for hangFor with pHang, or corrupts its result with pCorrupt
// (cumulative; the remainder is fault-free).
func NewFaultInjector(seed int64, pPre, pPanic, pHang, pCorrupt float64, hangFor time.Duration) *FaultInjector {
	if hangFor <= 0 {
		hangFor = DefaultHangFor
	}
	return &FaultInjector{
		rng:     rand.New(rand.NewSource(seed)),
		pPre:    pPre,
		pPanic:  pPanic,
		pHang:   pHang,
		pCorr:   pCorrupt,
		hangFor: hangFor,
		counts:  make(map[FaultKind]int),
	}
}

// PlanFaults returns a scripted injector: worker attempt i (in creation
// order) suffers kinds[i]; attempts beyond the plan are fault-free.
func PlanFaults(hangFor time.Duration, kinds ...FaultKind) *FaultInjector {
	if hangFor <= 0 {
		hangFor = DefaultHangFor
	}
	return &FaultInjector{
		plan:    append([]FaultKind(nil), kinds...),
		hangFor: hangFor,
		counts:  make(map[FaultKind]int),
	}
}

// ParseFaultSpec builds an injector from a comma-separated spec, e.g.
//
//	seed=42,panic=0.3,panicpre=0.1,hang=0.2,corrupt=0.1,hangfor=2s
//
// Unknown keys are errors; omitted probabilities default to zero.
func ParseFaultSpec(spec string) (*FaultInjector, error) {
	var (
		seed                       int64
		pPre, pPanic, pHang, pCorr float64
		hangFor                    time.Duration
	)
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("core: fault spec %q: missing '=' in %q", spec, kv)
		}
		var err error
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "seed":
			seed, err = strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		case "panicpre":
			pPre, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
		case "panic":
			pPanic, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
		case "hang":
			pHang, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
		case "corrupt":
			pCorr, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
		case "hangfor":
			hangFor, err = time.ParseDuration(strings.TrimSpace(v))
		default:
			return nil, fmt.Errorf("core: fault spec %q: unknown key %q", spec, k)
		}
		if err != nil {
			return nil, fmt.Errorf("core: fault spec %q: %v", spec, err)
		}
	}
	if pPre+pPanic+pHang+pCorr > 1 {
		return nil, fmt.Errorf("core: fault spec %q: probabilities sum to more than 1", spec)
	}
	return NewFaultInjector(seed, pPre, pPanic, pHang, pCorr, hangFor), nil
}

// draw assigns the fault of the next worker attempt. Called from the
// coordinator goroutine only, in creation order.
func (fi *FaultInjector) draw() FaultKind {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	k := FaultNone
	if fi.drawn < len(fi.plan) {
		k = fi.plan[fi.drawn]
	} else if fi.rng != nil {
		switch r := fi.rng.Float64(); {
		case r < fi.pPre:
			k = FaultPanicPreRead
		case r < fi.pPre+fi.pPanic:
			k = FaultPanic
		case r < fi.pPre+fi.pPanic+fi.pHang:
			k = FaultHang
		case r < fi.pPre+fi.pPanic+fi.pHang+fi.pCorr:
			k = FaultCorrupt
		}
	}
	fi.drawn++
	fi.counts[k]++
	return k
}

// HangFor returns the stall duration of injected hangs.
func (fi *FaultInjector) HangFor() time.Duration { return fi.hangFor }

// Drawn returns how many worker attempts have been assigned a fault (or
// FaultNone) so far.
func (fi *FaultInjector) Drawn() int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.drawn
}

// Counts returns a copy of the per-kind injection counters.
func (fi *FaultInjector) Counts() map[FaultKind]int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	out := make(map[FaultKind]int, len(fi.counts))
	for k, v := range fi.counts {
		out[k] = v
	}
	return out
}

// Injected returns how many attempts were assigned a real fault.
func (fi *FaultInjector) Injected() int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	n := 0
	for k, v := range fi.counts {
		if k != FaultNone {
			n += v
		}
	}
	return n
}

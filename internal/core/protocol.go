// Package core implements the paper's primary contribution: the generic,
// reusable master/worker coordination protocol (the MANIFOLD manners
// ProtocolMW and Create_Worker_Pool of §4.2) on top of the IWIM runtime in
// internal/manifold.
//
// The protocol is generic in exactly the paper's sense: the master and the
// worker are parameters, and the coordinator knows nothing about the
// computation they perform. It only prescribes their input/output and
// event behaviour (§4.3):
//
//	master: raise create_pool; per worker {raise create_worker, read
//	        &worker from own input port and activate it, write the
//	        worker's job to own output port}; read results from own
//	        dataport; raise rendezvous and wait for a_rendezvous;
//	        repeat pools as needed; raise finished.
//	worker: read job from own input port; compute; write results to own
//	        output port; raise death_worker.
//
// The coordinator reacts to the master's events, creates workers, wires
// the streams (&worker -> master, master -> worker as Break-Keep, worker ->
// master.dataport as Keep-Keep so results survive state preemption) and
// organizes the rendezvous by counting death_worker events.
package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/manifold"
	"repro/internal/obs"
)

// Event names of the master/worker protocol, as in the paper's MANIFOLD
// source.
const (
	EvCreatePool   = "create_pool"
	EvCreateWorker = "create_worker"
	EvRendezvous   = "rendezvous"
	EvARendezvous  = "a_rendezvous"
	EvFinished     = "finished"
	EvDeathWorker  = "death_worker"
)

// Master is the handle through which a master computation speaks the
// protocol. It wraps the master's manifold process; every method
// corresponds to a step of the behaviour interface in §4.3.
type Master struct {
	p     *manifold.Process
	state *runState
}

func (m *Master) policy() Policy { return m.state.policy }

// Process returns the underlying manifold process.
func (m *Master) Process() *manifold.Process { return m.p }

// CreatePool requests the coordinator to create an empty pool of workers
// (step 3a).
func (m *Master) CreatePool() {
	m.state.obs.Emit(obs.KPoolCreate, m.p.Name(), "", 0, 0)
	m.p.Raise(EvCreatePool)
}

// CreateWorker requests a new worker in the pool (step 3b), reads the
// worker's process reference from the master's own input port (step 3c),
// activates it and returns it. Call Send immediately afterwards to charge
// the worker with its job.
func (m *Master) CreateWorker() *manifold.Process {
	m.p.Raise(EvCreateWorker)
	//vetsparse:ignore deadlines synchronous handshake: the coordinator wires the worker ref in direct response to the raise just above, with no unbounded wait
	ref := m.p.Input().MustRead().(*manifold.Process)
	ref.Activate()
	return ref
}

// Send writes the information the most recently created worker needs to do
// its job on the master's own output port (step 3d); the coordinator has
// connected that port to the worker's input port.
func (m *Master) Send(u manifold.Unit) { m.p.Output().Write(u) }

// ReadResult collects one computational result from the master's dataport
// (step 3f). Results arrive in completion order, not creation order.
func (m *Master) ReadResult() manifold.Unit { return m.p.Port("dataport").MustRead() }

// ReadResultWithin is ReadResult with a deadline, so a master is never
// stuck forever on a hung worker. It returns manifold.ErrTimeout when no
// result arrives within d.
func (m *Master) ReadResultWithin(d time.Duration) (manifold.Unit, error) {
	return m.p.Port("dataport").ReadWithin(d)
}

// ReadResultUntil is ReadResultWithin against an absolute deadline — the
// form the Pool uses so that per-worker deadlines propagate exactly
// instead of being re-derived as durations on every read.
func (m *Master) ReadResultUntil(t time.Time) (manifold.Unit, error) {
	return m.p.Port("dataport").ReadUntil(t)
}

// abandon gives up on a worker the master no longer trusts to deliver: the
// master raises death_worker on its behalf (exactly once per worker — a
// late self-raise is suppressed) so the rendezvous count stays correct, and
// closes the worker's input port so a worker hung before its read unsticks
// (its MustRead panics, which the protocol wrapper absorbs). The goroutine
// of a worker hung inside its own body cannot be killed — Go has no
// preemptive termination — so it is left to finish in the background,
// mirroring how an operating system would eventually reap a MANIFOLD task
// instance.
func (m *Master) abandon(w *manifold.Process) {
	m.state.obs.Emit(obs.KJobAbandon, w.Name(), "", 0, 0)
	if m.state.markDead(w) {
		m.p.Raise(EvDeathWorker)
		m.state.obs.Emit(obs.KWorkerDeath, w.Name(), "", 0, 0)
	}
	w.Input().Close()
	m.state.addAbandoned()
}

// Rendezvous asks the coordinator to organize a rendezvous — a
// synchronization point at which every worker of the pool has died — and
// naps until the coordinator acknowledges it with a_rendezvous (steps
// 3g-3h).
func (m *Master) Rendezvous() {
	m.p.Raise(EvRendezvous)
	//vetsparse:ignore deadlines synchronous handshake: the coordinator answers the rendezvous raise just above immediately; there is no unbounded wait to bound
	m.p.Wait(manifold.On(EvARendezvous))
}

// Finished tells the coordinator that the master needs no more workers
// (step 4); the coordinator halts while the master may go on with its
// final sequential computation (step 5).
func (m *Master) Finished() { m.p.Raise(EvFinished) }

// Worker is the handle through which a worker computation speaks the
// protocol.
type Worker struct {
	p       *manifold.Process
	id      int  // pool-local job ID, -1 until an enveloped job is read
	tagged  bool // true once an enveloped job was read
	fault   FaultKind
	hangFor time.Duration
}

// Process returns the underlying manifold process.
func (w *Worker) Process() *manifold.Process { return w.p }

// Read obtains the job information from the worker's own input port
// (worker step 1). Jobs submitted through a Pool arrive in a tagging
// envelope, which Read strips; injected post-read faults fire here.
func (w *Worker) Read() manifold.Unit {
	u := w.p.Input().MustRead()
	if env, ok := u.(jobEnvelope); ok {
		w.tagged = true
		w.id = env.ID
		u = env.Job
	}
	switch w.fault {
	case FaultPanic:
		panic(InjectedFault{Kind: FaultPanic})
	case FaultHang:
		time.Sleep(w.hangFor)
	}
	return u
}

// Write delivers computed results through the worker's own output port
// (worker step 3); the coordinator's KK stream carries them to the
// master's dataport. Results of enveloped jobs are tagged on the way out.
func (w *Worker) Write(u manifold.Unit) {
	if w.fault == FaultCorrupt {
		u = CorruptUnit{Worker: w.p.Name()}
		w.fault = FaultNone
	}
	if w.tagged {
		u = resultEnvelope{ID: w.id, Unit: u}
	}
	w.p.Output().Write(u)
}

// MasterFunc is the master computation: everything the legacy main program
// does except the work delegated to workers.
type MasterFunc func(*Master)

// WorkerFunc is the worker computation (the paper's subsolve wrapper).
type WorkerFunc func(*Worker)

// WorkerFailure is delivered to the master's dataport when a worker body
// panics, so the master is never left waiting on a dead worker. JobID is
// the pool-local job the worker had read, or -1 when it failed before
// reading one.
type WorkerFailure struct {
	Worker string
	JobID  int
	Reason any
}

// Error describes the worker failure as an error value.
func (f WorkerFailure) Error() string {
	return fmt.Sprintf("core: worker %s failed: %v", f.Worker, f.Reason)
}

// runState is the bookkeeping one Run shares between the master handle and
// the coordinator: the policy, the per-worker death flags backing the
// raise-exactly-once guarantee, and the failure statistics.
type runState struct {
	policy Policy
	obs    *obs.Recorder // nil = observability off; Emit on nil is a no-op

	mu        sync.Mutex
	dead      map[*manifold.Process]bool
	stats     Stats
	abandoned int
}

func newRunState(policy Policy) *runState {
	return &runState{policy: policy, obs: policy.Obs, dead: make(map[*manifold.Process]bool)}
}

// markDead flips the worker's death flag and reports whether the caller won
// the race and must raise death_worker. Both the worker's protocol wrapper
// (normal death) and the master (abandonment) call it; exactly one raise
// happens per worker, so the rendezvous count is always Workers.
func (st *runState) markDead(w *manifold.Process) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.dead[w] {
		return false
	}
	st.dead[w] = true
	return true
}

func (st *runState) addWorker() {
	st.mu.Lock()
	st.stats.Workers++
	st.mu.Unlock()
}

func (st *runState) addDeath() {
	st.mu.Lock()
	st.stats.Deaths++
	st.mu.Unlock()
}

func (st *runState) addFailure() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.stats.Failures++
	return st.stats.Failures
}

func (st *runState) addRetry() {
	st.mu.Lock()
	st.stats.Retries++
	st.mu.Unlock()
}

func (st *runState) addAbandoned() {
	st.mu.Lock()
	st.stats.Abandoned++
	st.abandoned++
	st.mu.Unlock()
}

func (st *runState) snapshot() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// Run executes one application under the master/worker protocol: it
// creates the master process and the coordinator (the paper's Main
// manifold calling ProtocolMW), activates them and blocks until every
// process has terminated.
func Run(masterFn MasterFunc, workerFn WorkerFunc) {
	RunPolicy(masterFn, workerFn, Policy{})
}

// RunPolicy is Run under an explicit fault-tolerance policy; it returns the
// run's failure statistics. With a zero Policy it behaves exactly like Run.
func RunPolicy(masterFn MasterFunc, workerFn WorkerFunc, policy Policy) Stats {
	st := newRunState(policy)
	env := manifold.NewEnv()
	env.SetRecorder(policy.Obs)
	master := env.NewProcess("Master", func(p *manifold.Process) {
		masterFn(&Master{p: p, state: st})
	}, "dataport")
	master.Observe(EvARendezvous)

	coord := env.NewProcess("Main", func(p *manifold.Process) {
		protocolMW(p, master, workerFn, st)
	})
	coord.Observe(EvCreatePool, EvCreateWorker, EvRendezvous, EvFinished, EvDeathWorker)

	coord.Activate()
	master.Activate()
	master.Terminated()
	coord.Terminated()
	st.mu.Lock()
	abandoned := st.abandoned
	st.mu.Unlock()
	// An abandoned worker's goroutine may be hung indefinitely; the
	// protocol has already raised its death and discarded its results, so
	// the run does not wait for it (the goroutine is left to finish or leak
	// in the background). Fault-free runs drain completely, as before.
	if abandoned == 0 {
		env.Wait()
	}
	return st.snapshot()
}

// protocolMW is the paper's ProtocolMW manner: in its begin state it waits
// for events raised by the (already active) master; create_pool calls the
// Create_Worker_Pool manner, finished halts.
func protocolMW(coord *manifold.Process, master *manifold.Process, workerFn WorkerFunc, st *runState) {
	for {
		occ := coord.Wait(
			manifold.From(EvCreatePool, master),
			manifold.From(EvFinished, master),
		)
		switch occ.Event {
		case EvCreatePool:
			createWorkerPool(coord, master, workerFn, st)
			// post(begin): fall through to waiting again.
		case EvFinished:
			return // halt
		}
	}
}

// workerSeq numbers workers across pools for readable process names.
// Access is confined to the coordinator goroutine of one Run; a global
// would race across concurrent Runs, so it lives in the pool call.
func createWorkerPool(coord *manifold.Process, master *manifold.Process, workerFn WorkerFunc, st *runState) {
	now := 0 // Number Of Workers created (the paper's `now` variable)
	t := 0   // dead workers counted (the paper's `t` variable)
	var scope manifold.Scope
	env := coord.Env()

	for {
		// priority create_worker > rendezvous (the paper line 23).
		occ := coord.Wait(
			manifold.From(EvCreateWorker, master),
			manifold.From(EvRendezvous, master),
		)
		switch occ.Event {
		case EvCreateWorker:
			// Leaving the previous create_worker state dismantles its
			// streams: BK streams break at the source, the KK results
			// stream stays intact.
			scope.Dismantle()

			// Faults are drawn here, in the coordinator goroutine, so a
			// seeded injector assigns them deterministically in worker
			// creation order.
			fault := FaultNone
			var hangFor time.Duration
			if inj := st.policy.Injector; inj != nil {
				fault = inj.draw()
				hangFor = inj.HangFor()
			}
			name := fmt.Sprintf("Worker-%d", now+1)
			w := env.NewProcess(name, func(p *manifold.Process) {
				wk := &Worker{p: p, id: -1, fault: fault, hangFor: hangFor}
				defer func() {
					if r := recover(); r != nil {
						// Deliver the failure where the master is
						// listening, then die normally so the rendezvous
						// count stays correct. An abandoned worker's death
						// was already raised on its behalf; markDead
						// suppresses the duplicate.
						p.Output().Write(WorkerFailure{Worker: p.Name(), JobID: wk.id, Reason: r})
					}
					if st.markDead(p) {
						p.Raise(EvDeathWorker)
						st.obs.Emit(obs.KWorkerDeath, p.Name(), "", 0, 0)
					}
				}()
				if wk.fault == FaultPanicPreRead {
					panic(InjectedFault{Kind: FaultPanicPreRead})
				}
				runWorkerBody(p.Name(), workerFn, wk, st.obs)
			})
			st.addWorker()
			st.obs.Emit(obs.KWorkerCreate, name, "", int64(now+1), 0)

			// The stream configuration of the paper's line 36:
			//   &worker -> master -> worker -> master.dataport
			// with the last stream declared KK.
			scope.Connect(coord.Output(), master.Input(), manifold.BK)
			scope.Connect(master.Output(), w.Input(), manifold.BK)
			scope.Connect(w.Output(), master.Port("dataport"), manifold.KK)
			coord.Output().Write(w) // send &worker; the master activates it
			now++

		case EvRendezvous:
			st.obs.Emit(obs.KRendezvousBegin, coord.Name(), "", int64(now), int64(t))
			for t < now {
				coord.Wait(manifold.On(EvDeathWorker))
				t++
				st.addDeath()
			}
			scope.Dismantle()
			coord.Raise(EvARendezvous)
			st.obs.Emit(obs.KRendezvousEnd, coord.Name(), "", int64(now), int64(t))
			return // the manner returns to ProtocolMW
		}
	}
}

// runWorkerBody executes the worker computation, labelling its goroutine for
// CPU and goroutine profiles when observability is on (pprof labels name the
// worker in `go tool pprof` output). With observability off the body runs
// directly — no context, no label set, no allocation.
func runWorkerBody(name string, workerFn WorkerFunc, wk *Worker, rec *obs.Recorder) {
	if rec == nil {
		workerFn(wk)
		return
	}
	labels := pprof.Labels("mw_role", "worker", "mw_name", name)
	pprof.Do(context.Background(), labels, func(context.Context) {
		workerFn(wk)
	})
}

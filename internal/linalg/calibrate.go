package linalg

import (
	"runtime"
	"sync"
	"time"
)

// Hand-set defaults of the parallel cut-over knobs. Calibrate treats a
// knob still holding its default as "not explicitly configured" and
// replaces it with a measured break-even; a knob the caller has changed is
// left alone.
const (
	defParMinVec       = 8192
	defParMinRed       = 8192
	defParMinRows      = 2048
	defParMinLevelRows = 256
	defParMinPhase     = 4096
)

// knobCeiling is the "never parallelize" setting Calibrate installs on
// hosts that cannot run team members concurrently.
const knobCeiling = 1 << 30

// Calibration reports what Calibrate measured and which cut-overs are in
// effect afterwards.
type Calibration struct {
	// EffectiveProcs is min(GOMAXPROCS, NumCPU): the parallelism the
	// host actually delivers to a team.
	EffectiveProcs int
	// DispatchUs is the measured cost of one team wake/park round-trip
	// in microseconds (work subtracted).
	DispatchUs float64
	// ElemNs is the measured serial per-element cost of an axpy-class
	// elementwise kernel in nanoseconds.
	ElemNs float64
	// Sequentialized reports that the host cannot run team members in
	// parallel, so every cut-over was pushed out of reach and the
	// kernels run serially regardless of team size — the
	// "sequentialize overparallelized code" outcome: coordination that
	// cannot pay for itself is removed, not merely cheapened.
	Sequentialized bool
	// The cut-over values in effect after calibration.
	ParMinVec, ParMinRed, ParMinRows, ParMinLevelRows, ParMinPhase int
}

var (
	calOnce sync.Once
	calRes  Calibration
)

// Calibrate measures the host's team dispatch cost and serial kernel
// throughput once per process and derives the ParMin* cut-overs from them,
// replacing the hand-set defaults. Knobs already changed from their
// defaults are respected, and callers may still override any knob after
// calibration — the vars stay plain exported tuning knobs.
//
// Calibrate takes wall-clock timestamps, so it must only run from setup
// paths (main functions, benchmark harnesses) — never from solver code,
// which the determinism analyzer keeps free of time sources. Results are
// bit-for-bit unaffected either way; only the serial/parallel cut-over
// moves.
func Calibrate() Calibration {
	calOnce.Do(func() { calRes = calibrate() })
	return calRes
}

func calibrate() Calibration {
	procs := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < procs {
		procs = c
	}
	cal := Calibration{EffectiveProcs: procs}

	// Serial per-element cost of an axpy-class kernel, best of a few
	// trials to shed scheduler noise. The multiplier is tiny so repeated
	// axpys cannot overflow the operands.
	const n = 1 << 15
	x := NewVector(n)
	y := NewVector(n)
	for i := range x {
		x[i] = 0.5 + float64(i%7)
		y[i] = 0.25 + float64(i%5)
	}
	var ops Ops
	y.AXPY(1e-12, x, &ops) // warm caches
	const reps = 8
	best := time.Duration(1) << 62
	for trial := 0; trial < 5; trial++ {
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			y.AXPY(1e-12, x, &ops)
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	cal.ElemNs = float64(best.Nanoseconds()) / float64(reps*n)
	if cal.ElemNs <= 0 {
		cal.ElemNs = 0.5 // timer too coarse; assume a modern core
	}

	// Wake/park round-trip cost: dispatch a one-chunk axpy through a
	// real team (bypassing the cut-over knobs) and subtract the compute.
	ts := procs
	if ts < 2 {
		ts = 2
	}
	if ts > 8 {
		ts = 8
	}
	tm := NewTeam(ts)
	tm.y, tm.x, tm.alpha = y[:redChunk], x[:redChunk], 1e-12
	tm.op = opAXPY
	tm.splitEven(redChunk)
	tm.kick() // spin up the workers before timing
	bestD := time.Duration(1) << 62
	for trial := 0; trial < 7; trial++ {
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			tm.kick()
		}
		if d := time.Since(t0); d < bestD {
			bestD = d
		}
	}
	tm.Close()
	dispatchNs := float64(bestD.Nanoseconds())/reps - cal.ElemNs*redChunk/float64(ts)
	if dispatchNs < 0 {
		dispatchNs = 0
	}
	cal.DispatchUs = dispatchNs / 1e3

	if procs < 2 {
		// One effective processor: a team can never run its members in
		// parallel, so every dispatch is pure overhead. Push all
		// cut-overs out of reach.
		cal.Sequentialized = true
		setKnob(&ParMinVec, defParMinVec, knobCeiling)
		setKnob(&ParMinRed, defParMinRed, knobCeiling)
		setKnob(&ParMinRows, defParMinRows, knobCeiling)
		setKnob(&ParMinLevelRows, defParMinLevelRows, knobCeiling)
		setKnob(&ParMinPhase, defParMinPhase, knobCeiling)
	} else {
		// Break-even length n*: one dispatch pays for itself when the
		// work it offloads, n*elem*(p-1)/p, covers its cost.
		saved := cal.ElemNs * float64(procs-1) / float64(procs)
		nStar := int(dispatchNs / saved)
		nStar = clampKnob(nStar, redChunk, 1<<22)
		setKnob(&ParMinVec, defParMinVec, nStar)
		setKnob(&ParMinRed, defParMinRed, nStar)
		// SpMV rows carry ~2*nnz/row flops plus irregular access; the
		// triangular levels ~nnz/row. Scale the break-even down
		// accordingly (5-point stencil: ~5 nnz/row).
		setKnob(&ParMinRows, defParMinRows, clampKnob(nStar/8, 64, 1<<22))
		setKnob(&ParMinLevelRows, defParMinLevelRows, clampKnob(nStar/4, 64, 1<<22))
		// A fused phase amortizes several ops (and several saved
		// dispatches) over one wake/park, so it breaks even earlier
		// than a single op.
		setKnob(&ParMinPhase, defParMinPhase, clampKnob(nStar/4, redChunk, 1<<22))
	}
	cal.ParMinVec = ParMinVec
	cal.ParMinRed = ParMinRed
	cal.ParMinRows = ParMinRows
	cal.ParMinLevelRows = ParMinLevelRows
	cal.ParMinPhase = ParMinPhase
	return cal
}

// setKnob installs val into a cut-over knob unless the caller already
// changed it from its default.
func setKnob(knob *int, def, val int) {
	if *knob == def {
		*knob = val
	}
}

func clampKnob(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

package linalg

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"
)

// redChunk is the fixed reduction chunk: dot products and norms are summed
// as per-chunk partials folded in chunk order, so the result depends only
// on the vector length — never on how many workers computed the chunks.
// This is what makes the parallel kernels bit-for-bit identical to the
// serial ones at any team size and any GOMAXPROCS. Vectors shorter than
// one chunk reduce to the classic single running sum.
const redChunk = 1024

// MaxTeam caps the size of a Team.
const MaxTeam = 64

// Parallel cut-overs: below these sizes the fork-join latency of a kernel
// dispatch (a few microseconds) exceeds the work, so the Team runs the
// serial kernel inline. They are exported tuning knobs — results are
// bit-for-bit identical either way, so tests lower them to exercise the
// parallel paths on small problems. The defaults are conservative
// hand-set values; Calibrate replaces them with measured break-evens for
// the actual host (and pushes them out of reach entirely on hosts that
// cannot run team members in parallel).
var (
	// ParMinVec is the smallest vector length worth a parallel
	// elementwise kernel (axpy, scale, copy, fused updates).
	ParMinVec = defParMinVec
	// ParMinRed is the smallest vector length worth a parallel
	// dot/norm reduction.
	ParMinRed = defParMinRed
	// ParMinRows is the smallest row count worth a parallel SpMV or
	// shifted-operator value rewrite.
	ParMinRows = defParMinRows
)

// ImbalanceObserver receives one per-dispatch load-imbalance measurement in
// microseconds (slowest minus fastest worker busy time). It is satisfied by
// *obs.Histogram without linalg importing the obs package.
type ImbalanceObserver interface{ Observe(us int64) }

// PhaseObserver receives one measurement per fused-phase dispatch: the
// wall-clock microseconds of the whole wake-execute-park cycle and the
// number of in-phase barriers it crossed. Wired to the obs metrics
// "linalg.team.phase.us" and "linalg.team.phase.barriers" by the solver
// driver without linalg importing the obs package.
type PhaseObserver interface{ ObservePhase(us, barriers int64) }

// ResizeObserver receives one measurement per applied elastic resize: the
// microseconds between the SetTarget request and its application at a
// dispatch boundary, plus the team sizes before and after. Wired to the
// obs metric "linalg.team.resize.us" and the "linalg.team.resize" event by
// the solver driver without linalg importing the obs package.
type ResizeObserver interface{ ObserveResize(us int64, from, to int) }

// kernelOp selects the kernel the worker goroutines execute on the next
// dispatch. Arguments travel through Team fields, not closures, so a
// steady-state dispatch allocates nothing.
type kernelOp int

const (
	opNone kernelOp = iota
	opMulVec
	opShiftedUpdate
	opDot
	opWRMS
	opCopy
	opAXPY
	opAXPYTo
	opAXPY2
	opUpdateP
	opMulElem
	opMulElemAdd
	opScaleTo
	opSub
	opILUFwd
	opILUBwd
	opRun
	opPhase
)

// spinBudget bounds how many atomic-load iterations a worker (or the
// kicking leader) spins before parking on its wake channel. At roughly a
// nanosecond per iteration the budget covers the gap between consecutive
// fused-phase dispatches of a solver iteration, so in a phase-sized hot
// loop the team stays on its cores and a dispatch costs two cache misses
// instead of two scheduler round-trips. Spinning is enabled only when the
// host has a core per team member (see NewTeam); otherwise it would steal
// cycles from the very workers it waits for.
const spinBudget = 4096

// Team is a persistent chunked worker team: a fixed set of goroutines,
// created once and reused for every kernel dispatch, that parallelize the
// hot subsolve kernels — CSR/shifted-operator SpMV, fused vector ops,
// dot/norm reductions, and the level-scheduled ILU(0) triangular solves —
// by fixed index ranges.
//
// Determinism: every kernel either computes each output element with
// exactly the serial arithmetic (elementwise ops, SpMV, triangular-solve
// rows) or reduces through the fixed-chunk ordered fold of redChunk (dots,
// norms), so the results are bit-for-bit identical to the serial kernels
// at any team size and any GOMAXPROCS.
//
// A nil *Team is valid everywhere and runs the serial kernels, as does a
// team of size one. A Team is owned by one goroutine: its methods must not
// be called concurrently — with one exception: SetTarget may be called
// from any goroutine to request an elastic resize, which the owner applies
// at its next dispatch boundary. Close stops the worker goroutines; a hot
// loop should create one team per worker goroutine and keep it for the
// whole computation (no per-call spawn).
type Team struct {
	n int

	// Spin-then-park dispatch state. epoch is the dispatch generation —
	// the single ground truth workers wait on; the wake channels carry
	// purely advisory tokens for parked goroutines, so a stale or
	// spurious token never corrupts a dispatch (the receiver re-checks
	// epoch and goes back to waiting). remaining counts workers that
	// have not finished the current dispatch; the last one to decrement
	// it wakes the leader if it parked. The parked / leaderParked flags
	// and the epoch / remaining counters form store-then-load pairs on
	// both sides (Dekker-style, all Go atomics are sequentially
	// consistent), so a waiter is woken or sees the state change itself
	// — never neither.
	//
	// parked and wake are fixed MaxTeam arrays, not slices sized to n:
	// an elastic grow must never reallocate storage that idle worker
	// goroutines hold references into.
	epoch        atomic.Uint64
	remaining    atomic.Int32
	parked       [MaxTeam]atomic.Int32  // workers 1..n-1: 1 while (about to be) parked
	wake         [MaxTeam]chan struct{} // cap-1 advisory wake tokens, workers 1..n-1
	leaderParked atomic.Int32
	leaderWake   chan struct{}
	stop         atomic.Int32
	spin         atomic.Int32 // spin iterations before parking; 0 = park immediately

	// Elastic-resize state. target is the pending SetTarget request
	// (0 = none), swapped to zero and applied by the owner in seq() —
	// i.e. at the head of every kernel dispatch, when the team is
	// guaranteed idle. active mirrors n for the worker goroutines:
	// a worker whose index is >= active skips the dispatch (it stays
	// spawned and parked, ready for a later grow). spawned tracks the
	// high-water mark of started goroutines so Close stops them all
	// even after a shrink.
	target   atomic.Int32
	active   atomic.Int32
	spawned  int
	resizeNs atomic.Int64 // UnixNano of the pending SetTarget request

	// In-phase barrier (sense-reversing, reused across barriers).
	barGen    atomic.Uint32
	barArrive atomic.Int32

	// Kernel dispatch arguments, set by the public methods before kick.
	op          kernelOp
	m           *CSR
	so          *ShiftedOperator
	f           *ILU0
	ph          *Phase
	x, y, z, d  Vector
	alpha, beta float64
	partial     []float64
	split       [MaxTeam + 1]int
	runFn       func(lo, hi int)

	obs      ImbalanceObserver
	pobs     PhaseObserver
	robs     ResizeObserver
	workerUs [MaxTeam]int64
	closed   bool
}

// spinFor returns the spin budget for a team of n: spin only when the host
// can actually run every team member at once; an oversubscribed team must
// park immediately so the scheduler can run the workers the leader is
// waiting for.
func spinFor(n int) int32 {
	if n <= 1 {
		return 0
	}
	procs := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < procs {
		procs = c
	}
	if procs >= n {
		return spinBudget
	}
	return 0
}

// NewTeam starts a team of n workers (the calling goroutine counts as one:
// n-1 goroutines are spawned). n is clamped to [1, MaxTeam]; a team of one
// spawns nothing and runs every kernel inline.
func NewTeam(n int) *Team {
	if n < 1 {
		n = 1
	}
	if n > MaxTeam {
		n = MaxTeam
	}
	t := &Team{n: n, spawned: n}
	t.active.Store(int32(n))
	t.spin.Store(spinFor(n))
	if n > 1 {
		t.leaderWake = make(chan struct{}, 1)
		for w := 1; w < n; w++ {
			t.wake[w] = make(chan struct{}, 1)
			go t.worker(w, 0)
		}
	}
	return t
}

// Size returns the number of workers (1 for a nil team).
func (t *Team) Size() int {
	if t == nil {
		return 1
	}
	return t.n
}

// SetObserver installs a load-imbalance observer: every parallel dispatch
// reports (slowest - fastest) worker busy time in microseconds. A nil
// observer (the default) costs nothing — no timestamps are taken.
func (t *Team) SetObserver(o ImbalanceObserver) {
	if t != nil {
		t.obs = o
	}
}

// SetPhaseObserver installs a fused-phase observer: every RunPhase
// dispatch that actually runs on the team reports its wall-clock cost and
// barrier count. A nil observer (the default) costs nothing — no
// timestamps are taken.
func (t *Team) SetPhaseObserver(o PhaseObserver) {
	if t != nil {
		t.pobs = o
	}
}

// SetResizeObserver installs an elastic-resize observer: every applied
// SetTarget reports its request-to-application latency and the size change.
// Install before the team pointer is shared with donor goroutines.
func (t *Team) SetResizeObserver(o ResizeObserver) {
	if t != nil {
		t.robs = o
	}
}

// SetTarget requests an elastic resize to n workers (clamped to
// [1, MaxTeam]). Unlike every other Team method it is safe to call from
// any goroutine: the request is two atomic stores, and the owning
// goroutine applies it at its next dispatch boundary — when the team is
// guaranteed idle — by recomputing worker ranges, spawning or idling
// worker goroutines, and re-deriving the spin budget. Because every
// kernel is bit-for-bit identical at any team size (fixed-chunk ordered
// reductions), a resize can never change results, only speed. A request
// that arrives after the owner's last dispatch is silently dropped.
func (t *Team) SetTarget(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	if n > MaxTeam {
		n = MaxTeam
	}
	//vetsparse:ignore determinism metrics-only resize-latency timestamp; never feeds float results
	t.resizeNs.Store(time.Now().UnixNano())
	t.target.Store(int32(n))
}

// applyResize applies a pending SetTarget request. Owner-side only, and
// only while the team is idle (between dispatches) — workers observe the
// new size through the next epoch publication, never concurrently.
func (t *Team) applyResize() {
	n := int(t.target.Swap(0))
	if n == 0 || t.closed || n == t.n {
		return
	}
	if t.leaderWake == nil {
		t.leaderWake = make(chan struct{}, 1)
	}
	for w := t.spawned; w < n; w++ {
		if t.wake[w] == nil {
			t.wake[w] = make(chan struct{}, 1)
		}
		go t.worker(w, t.epoch.Load())
	}
	if n > t.spawned {
		t.spawned = n
	}
	from := t.n
	t.n = n
	t.active.Store(int32(n))
	t.spin.Store(spinFor(n))
	if t.robs != nil {
		//vetsparse:ignore determinism metrics-only resize-latency timing; never feeds float results
		us := (time.Now().UnixNano() - t.resizeNs.Load()) / 1000
		t.robs.ObserveResize(us, from, n)
	}
}

// Close stops the worker goroutines. The team must be idle; after Close
// the kernels still work, executing serially.
func (t *Team) Close() {
	if t == nil || t.closed {
		return
	}
	t.closed = true
	t.n = 1
	t.active.Store(1)
	if t.spawned <= 1 {
		return
	}
	t.stop.Store(1)
	t.epoch.Add(1)
	for w := 1; w < t.spawned; w++ {
		if t.parked[w].Load() != 0 {
			select {
			case t.wake[w] <- struct{}{}:
			default:
			}
		}
	}
}

// seq reports whether kernels must run inline (nil, single, or closed
// team). It doubles as the dispatch boundary: a pending elastic-resize
// request is applied here, before the size decision, so a serial team can
// grow and a grown team can shrink back to serial.
func (t *Team) seq() bool {
	if t == nil {
		return true
	}
	if t.target.Load() != 0 {
		t.applyResize()
	}
	return t.n <= 1
}

//vetsparse:allocfree
func (t *Team) worker(w int, last uint64) {
	for {
		last = t.await(w, last)
		if t.stop.Load() != 0 {
			return
		}
		if int32(w) >= t.active.Load() {
			continue // shrunk out of the team: idle until grown back
		}
		t.exec(w)
		if t.remaining.Add(-1) == 0 && t.leaderParked.Load() != 0 {
			select {
			case t.leaderWake <- struct{}{}:
			default:
			}
		}
	}
}

// await blocks worker w until a dispatch newer than last arrives: a
// bounded spin on the epoch counter (when the worker has a core to spin
// on), then a park on the wake channel. The parked flag and the epoch
// re-check before blocking close the race against a concurrent kick; any
// token received is advisory and the epoch is re-checked after it.
//
//vetsparse:allocfree
func (t *Team) await(w int, last uint64) uint64 {
	spin := int(t.spin.Load())
	for i := 0; i < spin; i++ {
		if e := t.epoch.Load(); e != last {
			return e
		}
	}
	for {
		t.parked[w].Store(1)
		if e := t.epoch.Load(); e != last {
			t.parked[w].Store(0)
			return e
		}
		<-t.wake[w]
		t.parked[w].Store(0)
		if e := t.epoch.Load(); e != last {
			return e
		}
	}
}

// phaseBarrier blocks until every team member arrives: the in-phase
// synchronization point of fused micro-programs. Sense-reversing on a
// generation counter, so the one barrier instance is reused any number of
// times per dispatch with no teardown.
//
//vetsparse:allocfree
func (t *Team) phaseBarrier() {
	g := t.barGen.Load()
	if t.barArrive.Add(1) == int32(t.n) {
		t.barArrive.Store(0)
		t.barGen.Add(1)
		return
	}
	spin := t.spin.Load()
	for i := 1; t.barGen.Load() == g; i++ {
		if spin == 0 || i%spinBudget == 0 {
			runtime.Gosched()
		}
	}
}

// kick runs the prepared kernel on all workers and waits for completion.
// The wake side is batched: one epoch increment publishes the dispatch to
// every spinning worker at once, and only actually-parked workers cost a
// channel send. The join side is the mirror: the leader spins on the
// remaining counter, parking only when the workers outlast its budget.
//
//vetsparse:allocfree
func (t *Team) kick() {
	t.remaining.Store(int32(t.n - 1))
	t.epoch.Add(1)
	for w := 1; w < t.n; w++ {
		if t.parked[w].Load() != 0 {
			select {
			case t.wake[w] <- struct{}{}:
			default:
			}
		}
	}
	t.exec(0)
	if t.remaining.Load() != 0 {
		spin := int(t.spin.Load())
		for i := 0; i < spin && t.remaining.Load() != 0; i++ {
		}
		for t.remaining.Load() != 0 {
			t.leaderParked.Store(1)
			if t.remaining.Load() == 0 {
				break
			}
			<-t.leaderWake
		}
		t.leaderParked.Store(0)
	}
	if t.obs != nil {
		min, max := t.workerUs[0], t.workerUs[0]
		for w := 1; w < t.n; w++ {
			if us := t.workerUs[w]; us < min {
				min = us
			} else if us > max {
				max = us
			}
		}
		t.obs.Observe(max - min)
	}
}

// exec runs worker w's share [split[w], split[w+1]) of the current kernel.
//
//vetsparse:allocfree
func (t *Team) exec(w int) {
	var t0 time.Time
	if t.obs != nil {
		//vetsparse:ignore determinism metrics-only imbalance timing; never feeds float results
		t0 = time.Now()
	}
	lo, hi := t.split[w], t.split[w+1]
	switch t.op {
	case opMulVec:
		t.m.mulVecRange(t.y, t.x, lo, hi)
	case opShiftedUpdate:
		t.so.updateRange(t.alpha, lo, hi)
	case opDot:
		dotChunks(t.partial, t.x, t.y, lo, hi)
	case opWRMS:
		wrmsChunks(t.partial, t.x, t.y, t.alpha, t.beta, lo, hi)
	case opCopy:
		copy(t.y[lo:hi], t.x[lo:hi])
	case opAXPY:
		y, x, a := t.y, t.x, t.alpha
		for i := lo; i < hi; i++ {
			y[i] += a * x[i]
		}
	case opAXPYTo:
		dst, y, x, a := t.z, t.y, t.x, t.alpha
		for i := lo; i < hi; i++ {
			dst[i] = y[i] + a*x[i]
		}
	case opAXPY2:
		dst, x, y, a, b := t.z, t.x, t.y, t.alpha, t.beta
		for i := lo; i < hi; i++ {
			dst[i] += a*x[i] + b*y[i]
		}
	case opUpdateP:
		p, r, v, beta, omega := t.z, t.y, t.x, t.alpha, t.beta
		for i := lo; i < hi; i++ {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
	case opMulElem:
		dst, d, x := t.z, t.d, t.x
		for i := lo; i < hi; i++ {
			dst[i] = d[i] * x[i]
		}
	case opMulElemAdd:
		dst, d, x := t.z, t.d, t.x
		for i := lo; i < hi; i++ {
			dst[i] += d[i] * x[i]
		}
	case opScaleTo:
		dst, x, a := t.y, t.x, t.alpha
		for i := lo; i < hi; i++ {
			dst[i] = a * x[i]
		}
	case opSub:
		dst, a, b := t.z, t.y, t.x
		for i := lo; i < hi; i++ {
			dst[i] = a[i] - b[i]
		}
	case opILUFwd:
		t.f.forwardRows(t.x, t.y, lo, hi)
	case opILUBwd:
		t.f.backwardRows(t.x, lo, hi)
	case opRun:
		t.runFn(lo, hi)
	case opPhase:
		t.ph.exec(t, w)
	}
	if t.obs != nil {
		//vetsparse:ignore determinism metrics-only imbalance timing; never feeds float results
		t.workerUs[w] = time.Since(t0).Microseconds()
	}
}

// splitEven partitions [0, n) into t.n contiguous worker ranges.
//
//vetsparse:allocfree
func (t *Team) splitEven(n int) { t.splitRange(0, n) }

// splitRange partitions [lo, hi) into t.n contiguous worker ranges.
//
//vetsparse:allocfree
func (t *Team) splitRange(lo, hi int) {
	n := hi - lo
	for w := 0; w <= t.n; w++ {
		t.split[w] = lo + w*n/t.n
	}
}

// splitChunkAligned partitions [0, n) into t.n contiguous ranges whose
// boundaries fall on redChunk multiples, distributing whole chunks evenly.
// With element ranges and reduction chunks coinciding, a fused phase's
// reduction reads exactly the elements the same worker's elementwise steps
// just wrote — no barrier needed between them. Workers beyond the chunk
// count get empty ranges (they still participate in phase barriers).
//
//vetsparse:allocfree
func (t *Team) splitChunkAligned(n int) {
	nch := (n + redChunk - 1) / redChunk
	for w := 0; w <= t.n; w++ {
		b := w * nch / t.n * redChunk
		if b > n {
			b = n
		}
		t.split[w] = b
	}
}

// RunPhase executes the fused micro-program p in one dispatch: a single
// wake/park cycle covers every step, with in-phase barriers only where a
// step reads outside its worker's range. Sequential teams and phases below
// ParMinPhase interpret the program serially inline — bit-for-bit the same
// result either way.
//
//vetsparse:allocfree
func (t *Team) RunPhase(p *Phase) {
	if t.seq() || p.n < ParMinPhase {
		p.runSerial()
		return
	}
	var t0 time.Time
	if t.pobs != nil {
		//vetsparse:ignore determinism metrics-only phase timing; never feeds float results
		t0 = time.Now()
	}
	t.ph = p
	t.op = opPhase
	t.splitChunkAligned(p.n)
	t.kick()
	t.ph = nil
	if t.pobs != nil {
		//vetsparse:ignore determinism metrics-only phase timing; never feeds float results
		t.pobs.ObservePhase(time.Since(t0).Microseconds(), p.barrierCount())
	}
}

// splitRowsByNNZ partitions m's rows into t.n contiguous ranges of roughly
// equal stored-entry counts (a plain even row split would starve workers on
// matrices whose nnz is concentrated in few rows).
//
//vetsparse:allocfree
func (t *Team) splitRowsByNNZ(m *CSR) {
	nnz := m.NNZ()
	t.split[0] = 0
	for w := 1; w < t.n; w++ {
		target := nnz * w / t.n
		lo, hi := t.split[w-1], m.Rows
		for lo < hi {
			mid := (lo + hi) / 2
			if m.RowPtr[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		t.split[w] = lo
	}
	t.split[t.n] = m.Rows
}

// Run splits [0, n) into contiguous worker ranges and calls fn(lo, hi) on
// each concurrently. fn must be safe to run from multiple goroutines on
// disjoint ranges. Intended for cold-path parallel loops (prolongation);
// the hot kernels have dedicated closure-free entry points.
//
//vetsparse:allocfree
func (t *Team) Run(n int, fn func(lo, hi int)) {
	if t.seq() || n < t.Size() {
		fn(0, n)
		return
	}
	t.runFn = fn
	t.op = opRun
	t.splitEven(n)
	t.kick()
	t.runFn = nil
}

// MulVec computes y = m*x, splitting rows across the team balanced by
// stored entries. Every y[r] is one row's serial dot product, so the result
// is exactly CSR.MulVec's.
//
//vetsparse:allocfree
func (t *Team) MulVec(m *CSR, y, x Vector, ops *Ops) {
	if t.seq() || m.Rows < ParMinRows {
		m.MulVec(y, x, ops)
		return
	}
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: mulvec dims %dx%d with x[%d], y[%d]", m.Rows, m.Cols, len(x), len(y)))
	}
	t.m, t.y, t.x = m, y, x
	t.op = opMulVec
	t.splitRowsByNNZ(m)
	t.kick()
	ops.Add(2 * int64(m.NNZ()))
}

// Dot returns the inner product of a and b through the fixed-chunk ordered
// reduction: workers fill per-chunk partials, the caller folds them in
// chunk order — exactly the sum Vector.Dot computes serially.
//
//vetsparse:allocfree
func (t *Team) Dot(a, b Vector, ops *Ops) float64 {
	if t.seq() || len(a) < ParMinRed {
		return a.Dot(b, ops)
	}
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot length mismatch %d != %d", len(a), len(b)))
	}
	nch := (len(a) + redChunk - 1) / redChunk
	t.partial = growF(t.partial, nch)
	t.x, t.y = a, b
	t.op = opDot
	t.splitEven(nch)
	t.kick()
	s := 0.0
	for _, p := range t.partial[:nch] {
		s += p
	}
	ops.Add(2 * int64(len(a)))
	return s
}

// Norm2 returns the Euclidean norm of v (parallel Dot plus sqrt).
//
//vetsparse:allocfree
func (t *Team) Norm2(v Vector, ops *Ops) float64 {
	return math.Sqrt(t.Dot(v, v, ops))
}

// WRMSNorm is the parallel twin of Vector.WRMSNorm, reduced through the
// same fixed-chunk ordered fold.
//
//vetsparse:allocfree
func (t *Team) WRMSNorm(v, ref Vector, atol, rtol float64, ops *Ops) float64 {
	if t.seq() || len(v) < ParMinRed {
		return v.WRMSNorm(ref, atol, rtol, ops)
	}
	nch := (len(v) + redChunk - 1) / redChunk
	t.partial = growF(t.partial, nch)
	t.x, t.y = v, ref
	t.alpha, t.beta = atol, rtol
	t.op = opWRMS
	t.splitEven(nch)
	t.kick()
	s := 0.0
	for _, p := range t.partial[:nch] {
		s += p
	}
	ops.Add(5 * int64(len(v)))
	return math.Sqrt(s / float64(len(v)))
}

// Copy copies src into dst in parallel.
//
//vetsparse:allocfree
func (t *Team) Copy(dst, src Vector) {
	if t.seq() || len(dst) < ParMinVec {
		copy(dst, src)
		return
	}
	t.y, t.x = dst, src
	t.op = opCopy
	t.splitEven(len(dst))
	t.kick()
}

// AXPY computes y += a*x.
//
//vetsparse:allocfree
func (t *Team) AXPY(y Vector, a float64, x Vector, ops *Ops) {
	if t.seq() || len(y) < ParMinVec {
		y.AXPY(a, x, ops)
		return
	}
	if len(y) != len(x) {
		panic(fmt.Sprintf("linalg: axpy length mismatch %d != %d", len(y), len(x)))
	}
	t.y, t.x, t.alpha = y, x, a
	t.op = opAXPY
	t.splitEven(len(y))
	t.kick()
	ops.Add(2 * int64(len(y)))
}

// AXPYTo computes dst = y + a*x (dst may alias y or x).
//
//vetsparse:allocfree
func (t *Team) AXPYTo(dst, y Vector, a float64, x Vector, ops *Ops) {
	if t.seq() || len(dst) < ParMinVec {
		for i := range dst {
			dst[i] = y[i] + a*x[i]
		}
		ops.Add(2 * int64(len(dst)))
		return
	}
	t.z, t.y, t.x, t.alpha = dst, y, x, a
	t.op = opAXPYTo
	t.splitEven(len(dst))
	t.kick()
	ops.Add(2 * int64(len(dst)))
}

// AXPY2 computes dst += a*x + b*y, the fused two-direction update of the
// BiCGStab solution step.
//
//vetsparse:allocfree
func (t *Team) AXPY2(dst Vector, a float64, x Vector, b float64, y Vector, ops *Ops) {
	if t.seq() || len(dst) < ParMinVec {
		for i := range dst {
			dst[i] += a*x[i] + b*y[i]
		}
		ops.Add(4 * int64(len(dst)))
		return
	}
	t.z, t.x, t.y, t.alpha, t.beta = dst, x, y, a, b
	t.op = opAXPY2
	t.splitEven(len(dst))
	t.kick()
	ops.Add(4 * int64(len(dst)))
}

// UpdateP computes the fused BiCGStab search-direction update
// p = r + beta*(p - omega*v).
//
//vetsparse:allocfree
func (t *Team) UpdateP(p, r, v Vector, beta, omega float64, ops *Ops) {
	if t.seq() || len(p) < ParMinVec {
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		ops.Add(4 * int64(len(p)))
		return
	}
	t.z, t.y, t.x, t.alpha, t.beta = p, r, v, beta, omega
	t.op = opUpdateP
	t.splitEven(len(p))
	t.kick()
	ops.Add(4 * int64(len(p)))
}

// MulElem computes dst = d .* x (the Jacobi preconditioner application).
//
//vetsparse:allocfree
func (t *Team) MulElem(dst, d, x Vector, ops *Ops) {
	if t.seq() || len(dst) < ParMinVec {
		for i := range dst {
			dst[i] = d[i] * x[i]
		}
		ops.Add(int64(len(dst)))
		return
	}
	t.z, t.d, t.x = dst, d, x
	t.op = opMulElem
	t.splitEven(len(dst))
	t.kick()
	ops.Add(int64(len(dst)))
}

// MulElemAdd computes dst += d .* x.
//
//vetsparse:allocfree
func (t *Team) MulElemAdd(dst, d, x Vector, ops *Ops) {
	if t.seq() || len(dst) < ParMinVec {
		for i := range dst {
			dst[i] += d[i] * x[i]
		}
		ops.Add(2 * int64(len(dst)))
		return
	}
	t.z, t.d, t.x = dst, d, x
	t.op = opMulElemAdd
	t.splitEven(len(dst))
	t.kick()
	ops.Add(2 * int64(len(dst)))
}

// ScaleTo computes dst = a*x (dst may alias x; used to normalize Krylov
// basis vectors).
//
//vetsparse:allocfree
func (t *Team) ScaleTo(dst Vector, a float64, x Vector, ops *Ops) {
	if t.seq() || len(dst) < ParMinVec {
		for i := range dst {
			dst[i] = a * x[i]
		}
		ops.Add(int64(len(dst)))
		return
	}
	t.y, t.x, t.alpha = dst, x, a
	t.op = opScaleTo
	t.splitEven(len(dst))
	t.kick()
	ops.Add(int64(len(dst)))
}

// Sub computes dst = a - b component-wise (dst may alias either operand).
//
//vetsparse:allocfree
func (t *Team) Sub(dst, a, b Vector, ops *Ops) {
	if t.seq() || len(dst) < ParMinVec {
		dst.Sub(a, b, ops)
		return
	}
	t.z, t.y, t.x = dst, a, b
	t.op = opSub
	t.splitEven(len(dst))
	t.kick()
	ops.Add(int64(len(dst)))
}

// dotChunks fills partial[c] with the serial dot of chunk c for every chunk
// in [c0, c1).
//
//vetsparse:allocfree
func dotChunks(partial []float64, a, b Vector, c0, c1 int) {
	for c := c0; c < c1; c++ {
		lo := c * redChunk
		hi := lo + redChunk
		if hi > len(a) {
			hi = len(a)
		}
		p := 0.0
		for i := lo; i < hi; i++ {
			p += a[i] * b[i]
		}
		partial[c] = p
	}
}

// wrmsChunks fills partial[c] with the weighted squared-error sum of chunk
// c for every chunk in [c0, c1).
//
//vetsparse:allocfree
func wrmsChunks(partial []float64, v, ref Vector, atol, rtol float64, c0, c1 int) {
	for c := c0; c < c1; c++ {
		lo := c * redChunk
		hi := lo + redChunk
		if hi > len(v) {
			hi = len(v)
		}
		p := 0.0
		for i := lo; i < hi; i++ {
			w := atol + rtol*math.Abs(ref[i])
			e := v[i] / w
			p += e * e
		}
		partial[c] = p
	}
}

package linalg

import (
	"fmt"
	"math"
	"time"
)

// redChunk is the fixed reduction chunk: dot products and norms are summed
// as per-chunk partials folded in chunk order, so the result depends only
// on the vector length — never on how many workers computed the chunks.
// This is what makes the parallel kernels bit-for-bit identical to the
// serial ones at any team size and any GOMAXPROCS. Vectors shorter than
// one chunk reduce to the classic single running sum.
const redChunk = 1024

// MaxTeam caps the size of a Team.
const MaxTeam = 64

// Parallel cut-overs: below these sizes the fork-join latency of a kernel
// dispatch (a few microseconds) exceeds the work, so the Team runs the
// serial kernel inline. They are exported tuning knobs — results are
// bit-for-bit identical either way, so tests lower them to exercise the
// parallel paths on small problems.
var (
	// ParMinVec is the smallest vector length worth a parallel
	// elementwise kernel (axpy, scale, copy, fused updates).
	ParMinVec = 8192
	// ParMinRed is the smallest vector length worth a parallel
	// dot/norm reduction.
	ParMinRed = 8192
	// ParMinRows is the smallest row count worth a parallel SpMV or
	// shifted-operator value rewrite.
	ParMinRows = 2048
)

// ImbalanceObserver receives one per-dispatch load-imbalance measurement in
// microseconds (slowest minus fastest worker busy time). It is satisfied by
// *obs.Histogram without linalg importing the obs package.
type ImbalanceObserver interface{ Observe(us int64) }

// kernelOp selects the kernel the worker goroutines execute on the next
// dispatch. Arguments travel through Team fields, not closures, so a
// steady-state dispatch allocates nothing.
type kernelOp int

const (
	opNone kernelOp = iota
	opMulVec
	opShiftedUpdate
	opDot
	opWRMS
	opCopy
	opAXPY
	opAXPYTo
	opAXPY2
	opUpdateP
	opMulElem
	opMulElemAdd
	opScaleTo
	opSub
	opILUFwd
	opILUBwd
	opRun
)

// Team is a persistent chunked worker team: a fixed set of goroutines,
// created once and reused for every kernel dispatch, that parallelize the
// hot subsolve kernels — CSR/shifted-operator SpMV, fused vector ops,
// dot/norm reductions, and the level-scheduled ILU(0) triangular solves —
// by fixed index ranges.
//
// Determinism: every kernel either computes each output element with
// exactly the serial arithmetic (elementwise ops, SpMV, triangular-solve
// rows) or reduces through the fixed-chunk ordered fold of redChunk (dots,
// norms), so the results are bit-for-bit identical to the serial kernels
// at any team size and any GOMAXPROCS.
//
// A nil *Team is valid everywhere and runs the serial kernels, as does a
// team of size one. A Team is owned by one goroutine: its methods must not
// be called concurrently. Close stops the worker goroutines; a hot loop
// should create one team per worker goroutine and keep it for the whole
// computation (no per-call spawn).
type Team struct {
	n     int
	start []chan struct{} // per-worker dispatch signals (workers 1..n-1)
	done  chan struct{}   // completion signals

	// Kernel dispatch arguments, set by the public methods before kick.
	op          kernelOp
	m           *CSR
	so          *ShiftedOperator
	f           *ILU0
	x, y, z, d  Vector
	alpha, beta float64
	partial     []float64
	split       [MaxTeam + 1]int
	runFn       func(lo, hi int)

	obs      ImbalanceObserver
	workerUs [MaxTeam]int64
	closed   bool
}

// NewTeam starts a team of n workers (the calling goroutine counts as one:
// n-1 goroutines are spawned). n is clamped to [1, MaxTeam]; a team of one
// spawns nothing and runs every kernel inline.
func NewTeam(n int) *Team {
	if n < 1 {
		n = 1
	}
	if n > MaxTeam {
		n = MaxTeam
	}
	t := &Team{n: n}
	if n > 1 {
		t.start = make([]chan struct{}, n)
		t.done = make(chan struct{}, n)
		for w := 1; w < n; w++ {
			t.start[w] = make(chan struct{}, 1)
			go t.worker(w)
		}
	}
	return t
}

// Size returns the number of workers (1 for a nil team).
func (t *Team) Size() int {
	if t == nil {
		return 1
	}
	return t.n
}

// SetObserver installs a load-imbalance observer: every parallel dispatch
// reports (slowest - fastest) worker busy time in microseconds. A nil
// observer (the default) costs nothing — no timestamps are taken.
func (t *Team) SetObserver(o ImbalanceObserver) {
	if t != nil {
		t.obs = o
	}
}

// Close stops the worker goroutines. The team must be idle; after Close
// the kernels still work, executing serially.
func (t *Team) Close() {
	if t == nil || t.n <= 1 || t.closed {
		return
	}
	t.closed = true
	for w := 1; w < t.n; w++ {
		close(t.start[w])
	}
	t.n = 1
}

// seq reports whether kernels must run inline (nil, single, or closed team).
func (t *Team) seq() bool { return t == nil || t.n <= 1 }

//vetsparse:allocfree
func (t *Team) worker(w int) {
	for range t.start[w] {
		t.exec(w)
		t.done <- struct{}{}
	}
}

// kick runs the prepared kernel on all workers and waits for completion.
//
//vetsparse:allocfree
func (t *Team) kick() {
	for w := 1; w < t.n; w++ {
		t.start[w] <- struct{}{}
	}
	t.exec(0)
	for w := 1; w < t.n; w++ {
		<-t.done
	}
	if t.obs != nil {
		min, max := t.workerUs[0], t.workerUs[0]
		for w := 1; w < t.n; w++ {
			if us := t.workerUs[w]; us < min {
				min = us
			} else if us > max {
				max = us
			}
		}
		t.obs.Observe(max - min)
	}
}

// exec runs worker w's share [split[w], split[w+1]) of the current kernel.
//
//vetsparse:allocfree
func (t *Team) exec(w int) {
	var t0 time.Time
	if t.obs != nil {
		//vetsparse:ignore determinism metrics-only imbalance timing; never feeds float results
		t0 = time.Now()
	}
	lo, hi := t.split[w], t.split[w+1]
	switch t.op {
	case opMulVec:
		t.m.mulVecRange(t.y, t.x, lo, hi)
	case opShiftedUpdate:
		t.so.updateRange(t.alpha, lo, hi)
	case opDot:
		dotChunks(t.partial, t.x, t.y, lo, hi)
	case opWRMS:
		wrmsChunks(t.partial, t.x, t.y, t.alpha, t.beta, lo, hi)
	case opCopy:
		copy(t.y[lo:hi], t.x[lo:hi])
	case opAXPY:
		y, x, a := t.y, t.x, t.alpha
		for i := lo; i < hi; i++ {
			y[i] += a * x[i]
		}
	case opAXPYTo:
		dst, y, x, a := t.z, t.y, t.x, t.alpha
		for i := lo; i < hi; i++ {
			dst[i] = y[i] + a*x[i]
		}
	case opAXPY2:
		dst, x, y, a, b := t.z, t.x, t.y, t.alpha, t.beta
		for i := lo; i < hi; i++ {
			dst[i] += a*x[i] + b*y[i]
		}
	case opUpdateP:
		p, r, v, beta, omega := t.z, t.y, t.x, t.alpha, t.beta
		for i := lo; i < hi; i++ {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
	case opMulElem:
		dst, d, x := t.z, t.d, t.x
		for i := lo; i < hi; i++ {
			dst[i] = d[i] * x[i]
		}
	case opMulElemAdd:
		dst, d, x := t.z, t.d, t.x
		for i := lo; i < hi; i++ {
			dst[i] += d[i] * x[i]
		}
	case opScaleTo:
		dst, x, a := t.y, t.x, t.alpha
		for i := lo; i < hi; i++ {
			dst[i] = a * x[i]
		}
	case opSub:
		dst, a, b := t.z, t.y, t.x
		for i := lo; i < hi; i++ {
			dst[i] = a[i] - b[i]
		}
	case opILUFwd:
		t.f.forwardRows(t.x, t.y, lo, hi)
	case opILUBwd:
		t.f.backwardRows(t.x, lo, hi)
	case opRun:
		t.runFn(lo, hi)
	}
	if t.obs != nil {
		//vetsparse:ignore determinism metrics-only imbalance timing; never feeds float results
		t.workerUs[w] = time.Since(t0).Microseconds()
	}
}

// splitEven partitions [0, n) into t.n contiguous worker ranges.
//
//vetsparse:allocfree
func (t *Team) splitEven(n int) { t.splitRange(0, n) }

// splitRange partitions [lo, hi) into t.n contiguous worker ranges.
//
//vetsparse:allocfree
func (t *Team) splitRange(lo, hi int) {
	n := hi - lo
	for w := 0; w <= t.n; w++ {
		t.split[w] = lo + w*n/t.n
	}
}

// splitRowsByNNZ partitions m's rows into t.n contiguous ranges of roughly
// equal stored-entry counts (a plain even row split would starve workers on
// matrices whose nnz is concentrated in few rows).
//
//vetsparse:allocfree
func (t *Team) splitRowsByNNZ(m *CSR) {
	nnz := m.NNZ()
	t.split[0] = 0
	for w := 1; w < t.n; w++ {
		target := nnz * w / t.n
		lo, hi := t.split[w-1], m.Rows
		for lo < hi {
			mid := (lo + hi) / 2
			if m.RowPtr[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		t.split[w] = lo
	}
	t.split[t.n] = m.Rows
}

// Run splits [0, n) into contiguous worker ranges and calls fn(lo, hi) on
// each concurrently. fn must be safe to run from multiple goroutines on
// disjoint ranges. Intended for cold-path parallel loops (prolongation);
// the hot kernels have dedicated closure-free entry points.
//
//vetsparse:allocfree
func (t *Team) Run(n int, fn func(lo, hi int)) {
	if t.seq() || n < t.Size() {
		fn(0, n)
		return
	}
	t.runFn = fn
	t.op = opRun
	t.splitEven(n)
	t.kick()
	t.runFn = nil
}

// MulVec computes y = m*x, splitting rows across the team balanced by
// stored entries. Every y[r] is one row's serial dot product, so the result
// is exactly CSR.MulVec's.
//
//vetsparse:allocfree
func (t *Team) MulVec(m *CSR, y, x Vector, ops *Ops) {
	if t.seq() || m.Rows < ParMinRows {
		m.MulVec(y, x, ops)
		return
	}
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: mulvec dims %dx%d with x[%d], y[%d]", m.Rows, m.Cols, len(x), len(y)))
	}
	t.m, t.y, t.x = m, y, x
	t.op = opMulVec
	t.splitRowsByNNZ(m)
	t.kick()
	ops.Add(2 * int64(m.NNZ()))
}

// Dot returns the inner product of a and b through the fixed-chunk ordered
// reduction: workers fill per-chunk partials, the caller folds them in
// chunk order — exactly the sum Vector.Dot computes serially.
//
//vetsparse:allocfree
func (t *Team) Dot(a, b Vector, ops *Ops) float64 {
	if t.seq() || len(a) < ParMinRed {
		return a.Dot(b, ops)
	}
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot length mismatch %d != %d", len(a), len(b)))
	}
	nch := (len(a) + redChunk - 1) / redChunk
	t.partial = growF(t.partial, nch)
	t.x, t.y = a, b
	t.op = opDot
	t.splitEven(nch)
	t.kick()
	s := 0.0
	for _, p := range t.partial[:nch] {
		s += p
	}
	ops.Add(2 * int64(len(a)))
	return s
}

// Norm2 returns the Euclidean norm of v (parallel Dot plus sqrt).
//
//vetsparse:allocfree
func (t *Team) Norm2(v Vector, ops *Ops) float64 {
	return math.Sqrt(t.Dot(v, v, ops))
}

// WRMSNorm is the parallel twin of Vector.WRMSNorm, reduced through the
// same fixed-chunk ordered fold.
//
//vetsparse:allocfree
func (t *Team) WRMSNorm(v, ref Vector, atol, rtol float64, ops *Ops) float64 {
	if t.seq() || len(v) < ParMinRed {
		return v.WRMSNorm(ref, atol, rtol, ops)
	}
	nch := (len(v) + redChunk - 1) / redChunk
	t.partial = growF(t.partial, nch)
	t.x, t.y = v, ref
	t.alpha, t.beta = atol, rtol
	t.op = opWRMS
	t.splitEven(nch)
	t.kick()
	s := 0.0
	for _, p := range t.partial[:nch] {
		s += p
	}
	ops.Add(5 * int64(len(v)))
	return math.Sqrt(s / float64(len(v)))
}

// Copy copies src into dst in parallel.
//
//vetsparse:allocfree
func (t *Team) Copy(dst, src Vector) {
	if t.seq() || len(dst) < ParMinVec {
		copy(dst, src)
		return
	}
	t.y, t.x = dst, src
	t.op = opCopy
	t.splitEven(len(dst))
	t.kick()
}

// AXPY computes y += a*x.
//
//vetsparse:allocfree
func (t *Team) AXPY(y Vector, a float64, x Vector, ops *Ops) {
	if t.seq() || len(y) < ParMinVec {
		y.AXPY(a, x, ops)
		return
	}
	if len(y) != len(x) {
		panic(fmt.Sprintf("linalg: axpy length mismatch %d != %d", len(y), len(x)))
	}
	t.y, t.x, t.alpha = y, x, a
	t.op = opAXPY
	t.splitEven(len(y))
	t.kick()
	ops.Add(2 * int64(len(y)))
}

// AXPYTo computes dst = y + a*x (dst may alias y or x).
//
//vetsparse:allocfree
func (t *Team) AXPYTo(dst, y Vector, a float64, x Vector, ops *Ops) {
	if t.seq() || len(dst) < ParMinVec {
		for i := range dst {
			dst[i] = y[i] + a*x[i]
		}
		ops.Add(2 * int64(len(dst)))
		return
	}
	t.z, t.y, t.x, t.alpha = dst, y, x, a
	t.op = opAXPYTo
	t.splitEven(len(dst))
	t.kick()
	ops.Add(2 * int64(len(dst)))
}

// AXPY2 computes dst += a*x + b*y, the fused two-direction update of the
// BiCGStab solution step.
//
//vetsparse:allocfree
func (t *Team) AXPY2(dst Vector, a float64, x Vector, b float64, y Vector, ops *Ops) {
	if t.seq() || len(dst) < ParMinVec {
		for i := range dst {
			dst[i] += a*x[i] + b*y[i]
		}
		ops.Add(4 * int64(len(dst)))
		return
	}
	t.z, t.x, t.y, t.alpha, t.beta = dst, x, y, a, b
	t.op = opAXPY2
	t.splitEven(len(dst))
	t.kick()
	ops.Add(4 * int64(len(dst)))
}

// UpdateP computes the fused BiCGStab search-direction update
// p = r + beta*(p - omega*v).
//
//vetsparse:allocfree
func (t *Team) UpdateP(p, r, v Vector, beta, omega float64, ops *Ops) {
	if t.seq() || len(p) < ParMinVec {
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		ops.Add(4 * int64(len(p)))
		return
	}
	t.z, t.y, t.x, t.alpha, t.beta = p, r, v, beta, omega
	t.op = opUpdateP
	t.splitEven(len(p))
	t.kick()
	ops.Add(4 * int64(len(p)))
}

// MulElem computes dst = d .* x (the Jacobi preconditioner application).
//
//vetsparse:allocfree
func (t *Team) MulElem(dst, d, x Vector, ops *Ops) {
	if t.seq() || len(dst) < ParMinVec {
		for i := range dst {
			dst[i] = d[i] * x[i]
		}
		ops.Add(int64(len(dst)))
		return
	}
	t.z, t.d, t.x = dst, d, x
	t.op = opMulElem
	t.splitEven(len(dst))
	t.kick()
	ops.Add(int64(len(dst)))
}

// MulElemAdd computes dst += d .* x.
//
//vetsparse:allocfree
func (t *Team) MulElemAdd(dst, d, x Vector, ops *Ops) {
	if t.seq() || len(dst) < ParMinVec {
		for i := range dst {
			dst[i] += d[i] * x[i]
		}
		ops.Add(2 * int64(len(dst)))
		return
	}
	t.z, t.d, t.x = dst, d, x
	t.op = opMulElemAdd
	t.splitEven(len(dst))
	t.kick()
	ops.Add(2 * int64(len(dst)))
}

// ScaleTo computes dst = a*x (dst may alias x; used to normalize Krylov
// basis vectors).
//
//vetsparse:allocfree
func (t *Team) ScaleTo(dst Vector, a float64, x Vector, ops *Ops) {
	if t.seq() || len(dst) < ParMinVec {
		for i := range dst {
			dst[i] = a * x[i]
		}
		ops.Add(int64(len(dst)))
		return
	}
	t.y, t.x, t.alpha = dst, x, a
	t.op = opScaleTo
	t.splitEven(len(dst))
	t.kick()
	ops.Add(int64(len(dst)))
}

// Sub computes dst = a - b component-wise (dst may alias either operand).
//
//vetsparse:allocfree
func (t *Team) Sub(dst, a, b Vector, ops *Ops) {
	if t.seq() || len(dst) < ParMinVec {
		dst.Sub(a, b, ops)
		return
	}
	t.z, t.y, t.x = dst, a, b
	t.op = opSub
	t.splitEven(len(dst))
	t.kick()
	ops.Add(int64(len(dst)))
}

// dotChunks fills partial[c] with the serial dot of chunk c for every chunk
// in [c0, c1).
//
//vetsparse:allocfree
func dotChunks(partial []float64, a, b Vector, c0, c1 int) {
	for c := c0; c < c1; c++ {
		lo := c * redChunk
		hi := lo + redChunk
		if hi > len(a) {
			hi = len(a)
		}
		p := 0.0
		for i := lo; i < hi; i++ {
			p += a[i] * b[i]
		}
		partial[c] = p
	}
}

// wrmsChunks fills partial[c] with the weighted squared-error sum of chunk
// c for every chunk in [c0, c1).
//
//vetsparse:allocfree
func wrmsChunks(partial []float64, v, ref Vector, atol, rtol float64, c0, c1 int) {
	for c := c0; c < c1; c++ {
		lo := c * redChunk
		hi := lo + redChunk
		if hi > len(v) {
			hi = len(v)
		}
		p := 0.0
		for i := lo; i < hi; i++ {
			w := atol + rtol*math.Abs(ref[i])
			e := v[i] / w
			p += e * e
		}
		partial[c] = p
	}
}

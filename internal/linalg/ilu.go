package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ILU0 is an incomplete LU factorization with zero fill-in: L and U share
// A's sparsity pattern exactly. It is the classic stronger alternative to
// Jacobi preconditioning for advection-diffusion operators — the
// anisotropic end grids of the sparse-grid family condition badly under
// Jacobi, which is where ILU(0) pays off.
type ILU0 struct {
	n      int
	rowPtr []int
	colIdx []int
	val    []float64 // combined L (strict lower, unit diagonal) and U
	diag   []int     // index of the diagonal entry in each row
	colPos []int     // scratch scatter index, kept to make Refactor allocation-free
}

// NewILU0 computes the ILU(0) factorization of a square CSR matrix. It
// fails if a zero pivot appears (the factorization exists for M-matrices
// and diagonally dominant operators; arbitrary matrices may break down).
func NewILU0(a *CSR, ops *Ops) (*ILU0, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: ILU0 needs a square matrix")
	}
	n := a.Rows
	f := &ILU0{
		n:      n,
		rowPtr: append([]int(nil), a.RowPtr...),
		colIdx: append([]int(nil), a.ColIdx...),
		val:    append([]float64(nil), a.Val...),
		diag:   make([]int, n),
		colPos: make([]int, n),
	}
	// Locate diagonals (column indices are sorted by the builder).
	for i := 0; i < n; i++ {
		f.diag[i] = -1
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			if f.colIdx[k] == i {
				f.diag[i] = k
				break
			}
		}
		if f.diag[i] < 0 {
			return nil, fmt.Errorf("linalg: ILU0 row %d has no diagonal entry", i)
		}
	}
	for i := range f.colPos {
		f.colPos[i] = -1
	}
	if err := f.factorize(ops); err != nil {
		return nil, err
	}
	return f, nil
}

// Refactor recomputes the factorization in place for a matrix with the
// same sparsity pattern as the one the factorization was built from (the
// Rosenbrock stage matrix I - gamma*tau*J: its pattern is fixed, only the
// values move when tau changes). It allocates nothing. On a zero pivot the
// factor values are left invalid and must not be used for Solve.
func (f *ILU0) Refactor(a *CSR, ops *Ops) error {
	if a.Rows != f.n || a.Cols != f.n || len(a.Val) != len(f.val) {
		return errors.New("linalg: ILU0 refactor pattern mismatch")
	}
	copy(f.val, a.Val)
	return f.factorize(ops)
}

// factorize runs the IKJ elimination restricted to the existing pattern,
// overwriting f.val (which must hold the matrix values on entry).
func (f *ILU0) factorize(ops *Ops) error {
	colPos := f.colPos // scatter index of row i's entries; -1 outside row i
	var flops int64
	for i := 0; i < f.n; i++ {
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			colPos[f.colIdx[k]] = k
		}
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			j := f.colIdx[k]
			if j >= i {
				break // only the strict lower part eliminates
			}
			piv := f.val[f.diag[j]]
			if piv == 0 {
				f.resetColPos(i)
				ops.Add(flops)
				return fmt.Errorf("linalg: ILU0 zero pivot at row %d", j)
			}
			lij := f.val[k] / piv
			f.val[k] = lij
			flops++
			for kk := f.diag[j] + 1; kk < f.rowPtr[j+1]; kk++ {
				if p := colPos[f.colIdx[kk]]; p >= 0 {
					f.val[p] -= lij * f.val[kk]
					flops += 2
				}
			}
		}
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			colPos[f.colIdx[k]] = -1
		}
		if f.val[f.diag[i]] == 0 {
			ops.Add(flops)
			return fmt.Errorf("linalg: ILU0 zero pivot at row %d", i)
		}
	}
	ops.Add(flops)
	return nil
}

// resetColPos clears the scatter marks of row i after an early exit so the
// scratch array is all -1 for the next factorization.
func (f *ILU0) resetColPos(i int) {
	for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
		f.colPos[f.colIdx[k]] = -1
	}
}

// Solve applies the preconditioner: x = U^-1 L^-1 b. x and b may alias.
func (f *ILU0) Solve(x, b Vector, ops *Ops) {
	if len(x) != f.n || len(b) != f.n {
		panic("linalg: ILU0 solve dimension mismatch")
	}
	// Forward solve L y = b (unit diagonal), result in x.
	for i := 0; i < f.n; i++ {
		s := b[i]
		for k := f.rowPtr[i]; k < f.diag[i]; k++ {
			s -= f.val[k] * x[f.colIdx[k]]
		}
		x[i] = s
	}
	// Backward solve U x = y.
	for i := f.n - 1; i >= 0; i-- {
		s := x[i]
		for k := f.diag[i] + 1; k < f.rowPtr[i+1]; k++ {
			s -= f.val[k] * x[f.colIdx[k]]
		}
		x[i] = s / f.val[f.diag[i]]
	}
	ops.Add(2 * int64(len(f.val)))
}

// BiCGStabILU solves A x = b with BiCGStab preconditioned by an ILU(0)
// factorization of A (computed internally). On operators where ILU(0)
// breaks down it falls back to the Jacobi-preconditioned BiCGStab. It
// allocates fresh factors and workspace; hot loops should hold a Workspace
// and call its BiCGStabILU method, which caches the factorization.
func BiCGStabILU(a *CSR, x, b Vector, tol float64, maxIter int, ops *Ops) (SolveStats, error) {
	return NewWorkspace().BiCGStabILU(a, x, b, tol, maxIter, math.NaN(), ops)
}

// BiCGStabILU is the workspace-pooled variant of the package-level
// BiCGStabILU. The ILU(0) factorization is cached in ws keyed on (a, key):
// passing the Rosenbrock shift gamma*tau as key makes repeated stage
// solves at an unchanged step size reuse the factors outright, and a
// changed step refactorizes in place with no allocation. A NaN key never
// matches, forcing a refactorization. On factorization breakdown it falls
// back to the Jacobi-preconditioned BiCGStab.
func (ws *Workspace) BiCGStabILU(a *CSR, x, b Vector, tol float64, maxIter int, key float64, ops *Ops) (SolveStats, error) {
	f, err := ws.ILUFor(a, key, ops)
	if err != nil {
		return ws.BiCGStab(a, x, b, tol, maxIter, ops)
	}
	n := a.Rows
	if maxIter <= 0 {
		maxIter = 4 * n
		if maxIter < 100 {
			maxIter = 100
		}
	}
	ws.ensureBiCGStab(n)
	r := ws.r
	a.MulVec(r, x, ops)
	r.Sub(b, r, ops)
	bNorm := b.Norm2(ops)
	if bNorm == 0 {
		x.Fill(0)
		return SolveStats{}, nil
	}
	if rn := r.Norm2(ops); rn/bNorm <= tol {
		return SolveStats{Residual: rn / bNorm}, nil
	}
	rTilde := ws.rTilde
	copy(rTilde, r)
	p := ws.p
	v := ws.v
	s := ws.s
	t := ws.t
	pHat := ws.pHat
	sHat := ws.sHat
	rho, alpha, omega := 1.0, 1.0, 1.0
	for it := 1; it <= maxIter; it++ {
		rhoNew := rTilde.Dot(r, ops)
		if abs(rhoNew) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		if it == 1 {
			copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
			ops.Add(4 * int64(n))
		}
		rho = rhoNew
		f.Solve(pHat, p, ops)
		a.MulVec(v, pHat, ops)
		den := rTilde.Dot(v, ops)
		if abs(den) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		ops.Add(2 * int64(n))
		if sn := s.Norm2(ops); sn/bNorm <= tol {
			x.AXPY(alpha, pHat, ops)
			return SolveStats{Iterations: it, Residual: sn / bNorm}, nil
		}
		f.Solve(sHat, s, ops)
		a.MulVec(t, sHat, ops)
		tt := t.Dot(t, ops)
		if tt == 0 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		omega = t.Dot(s, ops) / tt
		for i := range x {
			x[i] += alpha*pHat[i] + omega*sHat[i]
		}
		ops.Add(4 * int64(n))
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		ops.Add(2 * int64(n))
		if rn := r.Norm2(ops); rn/bNorm <= tol {
			return SolveStats{Iterations: it, Residual: rn / bNorm}, nil
		}
		if abs(omega) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
	}
	return SolveStats{Iterations: maxIter}, ErrNoConvergence
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ILU0 is an incomplete LU factorization with zero fill-in: L and U share
// A's sparsity pattern exactly. It is the classic stronger alternative to
// Jacobi preconditioning for advection-diffusion operators — the
// anisotropic end grids of the sparse-grid family condition badly under
// Jacobi, which is where ILU(0) pays off.
type ILU0 struct {
	n      int
	rowPtr []int
	colIdx []int
	val    []float64 // combined L (strict lower, unit diagonal) and U
	diag   []int     // index of the diagonal entry in each row
	colPos []int     // scratch scatter index, kept to make Refactor allocation-free

	// Level schedule for the parallel triangular solves, computed once per
	// sparsity pattern in NewILU0 (Refactor keeps it: values move, the
	// pattern does not). Level l of the forward (backward) solve holds the
	// rows whose longest dependency chain through the strict lower (upper)
	// pattern has length l; rows within a level are independent.
	fwdPtr, fwdRows []int
	bwdPtr, bwdRows []int
	maxWidth        int // widest level across both sweeps
}

// ParMinLevelRows is the smallest level width worth a parallel dispatch in
// the level-scheduled triangular solve: narrower levels run inline on the
// caller (the per-level barrier otherwise dominates). Exported tuning knob;
// results are bit-for-bit identical either way.
var ParMinLevelRows = defParMinLevelRows

// NewILU0 computes the ILU(0) factorization of a square CSR matrix. It
// fails if a zero pivot appears (the factorization exists for M-matrices
// and diagonally dominant operators; arbitrary matrices may break down).
func NewILU0(a *CSR, ops *Ops) (*ILU0, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: ILU0 needs a square matrix")
	}
	n := a.Rows
	f := &ILU0{
		n:      n,
		rowPtr: append([]int(nil), a.RowPtr...),
		colIdx: append([]int(nil), a.ColIdx...),
		val:    append([]float64(nil), a.Val...),
		diag:   make([]int, n),
		colPos: make([]int, n),
	}
	// Locate diagonals (column indices are sorted by the builder).
	for i := 0; i < n; i++ {
		f.diag[i] = -1
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			if f.colIdx[k] == i {
				f.diag[i] = k
				break
			}
		}
		if f.diag[i] < 0 {
			return nil, fmt.Errorf("linalg: ILU0 row %d has no diagonal entry", i)
		}
	}
	for i := range f.colPos {
		f.colPos[i] = -1
	}
	f.buildLevels()
	if err := f.factorize(ops); err != nil {
		return nil, err
	}
	return f, nil
}

// buildLevels computes the forward and backward dependency level sets of
// the pattern. Row i's forward level is 1 + max level over its strict-lower
// neighbours (0 when it has none); the backward levels are the mirror over
// the strict upper pattern. Rows are bucketed per level in ascending row
// order — the order within a level is irrelevant for the solve values, the
// rows being independent, but a fixed order keeps the schedule
// deterministic.
func (f *ILU0) buildLevels() {
	n := f.n
	lev := make([]int, n)
	maxL := 0
	for i := 0; i < n; i++ {
		l := 0
		for k := f.rowPtr[i]; k < f.diag[i]; k++ {
			if d := lev[f.colIdx[k]] + 1; d > l {
				l = d
			}
		}
		lev[i] = l
		if l > maxL {
			maxL = l
		}
	}
	f.fwdPtr, f.fwdRows = bucketByLevel(lev, maxL+1)
	// Backward levels: fill lev in decreasing row order so every strict-
	// upper neighbour is already leveled when row i reads it.
	maxL = 0
	for i := n - 1; i >= 0; i-- {
		l := 0
		for k := f.diag[i] + 1; k < f.rowPtr[i+1]; k++ {
			if d := lev[f.colIdx[k]] + 1; d > l {
				l = d
			}
		}
		lev[i] = l
		if l > maxL {
			maxL = l
		}
	}
	f.bwdPtr, f.bwdRows = bucketByLevel(lev, maxL+1)
	f.maxWidth = 0
	for l := 0; l+1 < len(f.fwdPtr); l++ {
		if w := f.fwdPtr[l+1] - f.fwdPtr[l]; w > f.maxWidth {
			f.maxWidth = w
		}
	}
	for l := 0; l+1 < len(f.bwdPtr); l++ {
		if w := f.bwdPtr[l+1] - f.bwdPtr[l]; w > f.maxWidth {
			f.maxWidth = w
		}
	}
}

// bucketByLevel groups row indices by their level with a stable counting
// pass: ptr[l]..ptr[l+1] delimits level l's rows (ascending row order).
func bucketByLevel(lev []int, nlev int) (ptr, rows []int) {
	ptr = make([]int, nlev+1)
	for _, l := range lev {
		ptr[l+1]++
	}
	for l := 1; l <= nlev; l++ {
		ptr[l] += ptr[l-1]
	}
	rows = make([]int, len(lev))
	next := append([]int(nil), ptr[:nlev]...)
	for i, l := range lev {
		rows[next[l]] = i
		next[l]++
	}
	return ptr, rows
}

// Refactor recomputes the factorization in place for a matrix with the
// same sparsity pattern as the one the factorization was built from (the
// Rosenbrock stage matrix I - gamma*tau*J: its pattern is fixed, only the
// values move when tau changes). It allocates nothing. On a zero pivot the
// factor values are left invalid and must not be used for Solve.
//
//vetsparse:allocfree
func (f *ILU0) Refactor(a *CSR, ops *Ops) error {
	if a.Rows != f.n || a.Cols != f.n || len(a.Val) != len(f.val) {
		return errors.New("linalg: ILU0 refactor pattern mismatch")
	}
	copy(f.val, a.Val)
	return f.factorize(ops)
}

// factorize runs the IKJ elimination restricted to the existing pattern,
// overwriting f.val (which must hold the matrix values on entry).
//
//vetsparse:allocfree
func (f *ILU0) factorize(ops *Ops) error {
	colPos := f.colPos // scatter index of row i's entries; -1 outside row i
	var flops int64
	for i := 0; i < f.n; i++ {
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			colPos[f.colIdx[k]] = k
		}
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			j := f.colIdx[k]
			if j >= i {
				break // only the strict lower part eliminates
			}
			piv := f.val[f.diag[j]]
			if piv == 0 {
				f.resetColPos(i)
				ops.Add(flops)
				return fmt.Errorf("linalg: ILU0 zero pivot at row %d", j)
			}
			lij := f.val[k] / piv
			f.val[k] = lij
			flops++
			for kk := f.diag[j] + 1; kk < f.rowPtr[j+1]; kk++ {
				if p := colPos[f.colIdx[kk]]; p >= 0 {
					f.val[p] -= lij * f.val[kk]
					flops += 2
				}
			}
		}
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			colPos[f.colIdx[k]] = -1
		}
		if f.val[f.diag[i]] == 0 {
			ops.Add(flops)
			return fmt.Errorf("linalg: ILU0 zero pivot at row %d", i)
		}
	}
	ops.Add(flops)
	return nil
}

// resetColPos clears the scatter marks of row i after an early exit so the
// scratch array is all -1 for the next factorization.
//
//vetsparse:allocfree
func (f *ILU0) resetColPos(i int) {
	for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
		f.colPos[f.colIdx[k]] = -1
	}
}

// Solve applies the preconditioner: x = U^-1 L^-1 b. x and b may alias.
//
//vetsparse:allocfree
func (f *ILU0) Solve(x, b Vector, ops *Ops) {
	if len(x) != f.n || len(b) != f.n {
		panic("linalg: ILU0 solve dimension mismatch")
	}
	// Forward solve L y = b (unit diagonal), result in x.
	for i := 0; i < f.n; i++ {
		s := b[i]
		for k := f.rowPtr[i]; k < f.diag[i]; k++ {
			s -= f.val[k] * x[f.colIdx[k]]
		}
		x[i] = s
	}
	// Backward solve U x = y.
	for i := f.n - 1; i >= 0; i-- {
		s := x[i]
		for k := f.diag[i] + 1; k < f.rowPtr[i+1]; k++ {
			s -= f.val[k] * x[f.colIdx[k]]
		}
		x[i] = s / f.val[f.diag[i]]
	}
	ops.Add(2 * int64(len(f.val)))
}

// SolveWith is Solve with each dependency level's rows split across a Team.
// Rows are solved with the serial per-row arithmetic and the level barriers
// enforce the same dependency order, so the result is bit-for-bit Solve's
// at any team size. Levels narrower than ParMinLevelRows run inline; a nil
// or single team falls back to Solve outright.
//
//vetsparse:allocfree
func (f *ILU0) SolveWith(t *Team, x, b Vector, ops *Ops) {
	if t.seq() || f.maxWidth < ParMinLevelRows {
		f.Solve(x, b, ops)
		return
	}
	if len(x) != f.n || len(b) != f.n {
		panic("linalg: ILU0 solve dimension mismatch")
	}
	t.f = f
	t.x, t.y = x, b
	for l := 0; l+1 < len(f.fwdPtr); l++ {
		lo, hi := f.fwdPtr[l], f.fwdPtr[l+1]
		if hi-lo < ParMinLevelRows {
			f.forwardRows(x, b, lo, hi)
			continue
		}
		t.op = opILUFwd
		t.splitRange(lo, hi)
		t.kick()
	}
	for l := 0; l+1 < len(f.bwdPtr); l++ {
		lo, hi := f.bwdPtr[l], f.bwdPtr[l+1]
		if hi-lo < ParMinLevelRows {
			f.backwardRows(x, lo, hi)
			continue
		}
		t.op = opILUBwd
		t.splitRange(lo, hi)
		t.kick()
	}
	ops.Add(2 * int64(len(f.val)))
}

// forwardRows runs the unit-lower forward substitution for the schedule
// positions [p0, p1) of fwdRows: x[i] = b[i] - L[i,:]*x.
//
//vetsparse:allocfree
func (f *ILU0) forwardRows(x, b Vector, p0, p1 int) {
	for p := p0; p < p1; p++ {
		i := f.fwdRows[p]
		s := b[i]
		for k := f.rowPtr[i]; k < f.diag[i]; k++ {
			s -= f.val[k] * x[f.colIdx[k]]
		}
		x[i] = s
	}
}

// backwardRows runs the upper backward substitution for the schedule
// positions [p0, p1) of bwdRows: x[i] = (x[i] - U[i,i+1:]*x) / U[i,i].
//
//vetsparse:allocfree
func (f *ILU0) backwardRows(x Vector, p0, p1 int) {
	for p := p0; p < p1; p++ {
		i := f.bwdRows[p]
		s := x[i]
		for k := f.diag[i] + 1; k < f.rowPtr[i+1]; k++ {
			s -= f.val[k] * x[f.colIdx[k]]
		}
		x[i] = s / f.val[f.diag[i]]
	}
}

// BiCGStabILU solves A x = b with BiCGStab preconditioned by an ILU(0)
// factorization of A (computed internally). On operators where ILU(0)
// breaks down it falls back to the Jacobi-preconditioned BiCGStab. It
// allocates fresh factors and workspace; hot loops should hold a Workspace
// and call its BiCGStabILU method, which caches the factorization.
func BiCGStabILU(a *CSR, x, b Vector, tol float64, maxIter int, ops *Ops) (SolveStats, error) {
	return NewWorkspace().BiCGStabILU(a, x, b, tol, maxIter, math.NaN(), ops)
}

// BiCGStabILU is the workspace-pooled variant of the package-level
// BiCGStabILU. The ILU(0) factorization is cached in ws keyed on (a, key):
// passing the Rosenbrock shift gamma*tau as key makes repeated stage
// solves at an unchanged step size reuse the factors outright, and a
// changed step refactorizes in place with no allocation. A NaN key never
// matches, forcing a refactorization. On factorization breakdown it falls
// back to the Jacobi-preconditioned BiCGStab.
//
//vetsparse:allocfree
func (ws *Workspace) BiCGStabILU(a *CSR, x, b Vector, tol float64, maxIter int, key float64, ops *Ops) (SolveStats, error) {
	f, err := ws.ILUFor(a, key, ops)
	if err != nil {
		return ws.BiCGStab(a, x, b, tol, maxIter, ops)
	}
	n := a.Rows
	if maxIter <= 0 {
		maxIter = 4 * n
		if maxIter < 100 {
			maxIter = 100
		}
	}
	ws.ensureBiCGStab(n)
	tm := ws.team
	r := ws.r
	tm.MulVec(a, r, x, ops)
	tm.Sub(r, b, r, ops)
	bNorm := tm.Norm2(b, ops)
	if bNorm == 0 {
		x.Fill(0)
		return SolveStats{}, nil
	}
	if rn := tm.Norm2(r, ops); rn/bNorm <= tol {
		return SolveStats{Residual: rn / bNorm}, nil
	}
	rTilde := ws.rTilde
	tm.Copy(rTilde, r)
	if ws.fusedOK(n) {
		return ws.bicgstabFusedILU(a, f, x, bNorm, tol, maxIter, ops)
	}
	p := ws.p
	v := ws.v
	s := ws.s
	t := ws.t
	pHat := ws.pHat
	sHat := ws.sHat
	rho, alpha, omega := 1.0, 1.0, 1.0
	for it := 1; it <= maxIter; it++ {
		rhoNew := tm.Dot(rTilde, r, ops)
		if abs(rhoNew) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		if it == 1 {
			tm.Copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			tm.UpdateP(p, r, v, beta, omega, ops)
		}
		rho = rhoNew
		f.SolveWith(tm, pHat, p, ops)
		tm.MulVec(a, v, pHat, ops)
		den := tm.Dot(rTilde, v, ops)
		if abs(den) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		alpha = rho / den
		tm.AXPYTo(s, r, -alpha, v, ops)
		if sn := tm.Norm2(s, ops); sn/bNorm <= tol {
			tm.AXPY(x, alpha, pHat, ops)
			return SolveStats{Iterations: it, Residual: sn / bNorm}, nil
		}
		f.SolveWith(tm, sHat, s, ops)
		tm.MulVec(a, t, sHat, ops)
		tt := tm.Dot(t, t, ops)
		if tt == 0 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		omega = tm.Dot(t, s, ops) / tt
		tm.AXPY2(x, alpha, pHat, omega, sHat, ops)
		tm.AXPYTo(r, s, -omega, t, ops)
		if rn := tm.Norm2(r, ops); rn/bNorm <= tol {
			return SolveStats{Iterations: it, Residual: rn / bNorm}, nil
		}
		if abs(omega) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
	}
	return SolveStats{Iterations: maxIter}, ErrNoConvergence
}

// bicgstabFusedILU is the fused-phase iteration body of the ILU BiCGStab.
// The level-scheduled triangular solves keep their own dispatch pattern
// (their dependency barriers cannot fuse with elementwise ranges), so an
// iteration runs the p-update, two preconditioner solves, and four fused
// phases — the matvec+dot tails and the s/x/r update phases shared with
// the Jacobi variant. Flop accounting matches the unfused loop on every
// control path, so stats and Ops are bit-for-bit identical.
//
//vetsparse:allocfree
func (ws *Workspace) bicgstabFusedILU(a *CSR, f *ILU0, x Vector, bNorm, tol float64, maxIter int, ops *Ops) (SolveStats, error) {
	ws.buildBiCGStabPhases(a, x, true)
	tm := ws.team
	sc := &ws.sc
	nn := int64(a.Rows)
	rho, alpha, omega := 1.0, 1.0, 1.0
	for it := 1; it <= maxIter; it++ {
		var rhoNew float64
		if it == 1 {
			rhoNew = tm.Dot(ws.rTilde, ws.r, ops)
		} else {
			rhoNew = ws.phX.Fold(1)
			ops.Add(2 * nn)
		}
		if abs(rhoNew) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		if it == 1 {
			tm.Copy(ws.p, ws.r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			tm.UpdateP(ws.p, ws.r, ws.v, beta, omega, ops)
		}
		rho = rhoNew
		f.SolveWith(tm, ws.pHat, ws.p, ops)
		tm.RunPhase(&ws.phAv)
		ops.Add(ws.phAv.Flops())
		den := ws.phAv.Fold(0)
		if abs(den) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		alpha = rho / den
		sc[scNegAlpha] = -alpha
		tm.RunPhase(&ws.phS)
		ops.Add(ws.phS.Flops())
		if sn := math.Sqrt(ws.phS.Fold(0)); sn/bNorm <= tol {
			tm.AXPY(x, alpha, ws.pHat, ops)
			return SolveStats{Iterations: it, Residual: sn / bNorm}, nil
		}
		f.SolveWith(tm, ws.sHat, ws.s, ops)
		tm.RunPhase(&ws.phAt)
		ops.Add(ws.phAt.Flops())
		tt := ws.phAt.Fold(0)
		if tt == 0 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		omega = ws.phAt.Fold(1) / tt
		sc[scAlpha], sc[scOmega], sc[scNegOmega] = alpha, omega, -omega
		tm.RunPhase(&ws.phX)
		// The rho dot the phase computed ahead is charged at the next
		// loop top, as the unfused loop does.
		ops.Add(ws.phX.Flops() - 2*nn)
		if rn := math.Sqrt(ws.phX.Fold(0)); rn/bNorm <= tol {
			return SolveStats{Iterations: it, Residual: rn / bNorm}, nil
		}
		if abs(omega) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
	}
	return SolveStats{Iterations: maxIter}, ErrNoConvergence
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solve exhausts its
// iteration budget without meeting the tolerance.
var ErrNoConvergence = errors.New("linalg: iteration did not converge")

// ErrBreakdown is returned when BiCGStab hits a true breakdown (rho or
// omega collapses) before converging.
var ErrBreakdown = errors.New("linalg: BiCGStab breakdown")

// SolveStats reports the cost of an iterative solve.
type SolveStats struct {
	Iterations int
	Residual   float64 // final relative residual
}

// BiCGStab solves A x = b with the BiCGStab iteration, Jacobi (diagonal)
// preconditioned, to relative residual tol. x is used as the initial guess
// and overwritten with the solution. maxIter <= 0 means 4*n. It allocates
// a fresh workspace; hot loops should hold a Workspace and call its
// BiCGStab method instead.
func BiCGStab(a *CSR, x, b Vector, tol float64, maxIter int, ops *Ops) (SolveStats, error) {
	return NewWorkspace().BiCGStab(a, x, b, tol, maxIter, ops)
}

// BiCGStab is the workspace-pooled variant of the package-level BiCGStab:
// all solver vectors come from ws, so steady-state calls allocate nothing.
func (ws *Workspace) BiCGStab(a *CSR, x, b Vector, tol float64, maxIter int, ops *Ops) (SolveStats, error) {
	n := a.Rows
	if a.Cols != n || len(x) != n || len(b) != n {
		panic(fmt.Sprintf("linalg: BiCGStab dims %dx%d, x[%d], b[%d]", a.Rows, a.Cols, len(x), len(b)))
	}
	if maxIter <= 0 {
		maxIter = 4 * n
		if maxIter < 100 {
			maxIter = 100
		}
	}
	ws.ensureBiCGStab(n)
	// Jacobi preconditioner M^-1 = 1/diag(A).
	invD := ws.invD
	a.Diagonal(invD)
	for i, d := range invD {
		if d == 0 {
			invD[i] = 1
		} else {
			invD[i] = 1 / d
		}
	}
	ops.Add(int64(n))

	r := ws.r
	a.MulVec(r, x, ops)
	r.Sub(b, r, ops)
	bNorm := b.Norm2(ops)
	if bNorm == 0 {
		x.Fill(0)
		return SolveStats{Iterations: 0, Residual: 0}, nil
	}
	if rn := r.Norm2(ops); rn/bNorm <= tol {
		return SolveStats{Iterations: 0, Residual: rn / bNorm}, nil
	}

	rTilde := ws.rTilde
	copy(rTilde, r)
	p := ws.p
	v := ws.v
	s := ws.s
	t := ws.t
	pHat := ws.pHat
	sHat := ws.sHat

	rho, alpha, omega := 1.0, 1.0, 1.0
	for it := 1; it <= maxIter; it++ {
		rhoNew := rTilde.Dot(r, ops)
		if math.Abs(rhoNew) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		if it == 1 {
			copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
			ops.Add(4 * int64(n))
		}
		rho = rhoNew
		for i := range pHat {
			pHat[i] = invD[i] * p[i]
		}
		ops.Add(int64(n))
		a.MulVec(v, pHat, ops)
		den := rTilde.Dot(v, ops)
		if math.Abs(den) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		ops.Add(2 * int64(n))
		if sn := s.Norm2(ops); sn/bNorm <= tol {
			x.AXPY(alpha, pHat, ops)
			return SolveStats{Iterations: it, Residual: sn / bNorm}, nil
		}
		for i := range sHat {
			sHat[i] = invD[i] * s[i]
		}
		ops.Add(int64(n))
		a.MulVec(t, sHat, ops)
		tt := t.Dot(t, ops)
		if tt == 0 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		omega = t.Dot(s, ops) / tt
		for i := range x {
			x[i] += alpha*pHat[i] + omega*sHat[i]
		}
		ops.Add(4 * int64(n))
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		ops.Add(2 * int64(n))
		if rn := r.Norm2(ops); rn/bNorm <= tol {
			return SolveStats{Iterations: it, Residual: rn / bNorm}, nil
		}
		if math.Abs(omega) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
	}
	return SolveStats{Iterations: maxIter, Residual: math.NaN()}, ErrNoConvergence
}

// SolveTridiag solves a tridiagonal system in place with the Thomas
// algorithm: sub (length n, sub[0] unused), diag (length n), super (length
// n, super[n-1] unused), rhs (length n). The solution overwrites rhs; diag
// and rhs are clobbered.
func SolveTridiag(sub, diag, super, rhs Vector, ops *Ops) error {
	n := len(diag)
	if len(sub) != n || len(super) != n || len(rhs) != n {
		panic("linalg: SolveTridiag length mismatch")
	}
	for i := 1; i < n; i++ {
		if diag[i-1] == 0 {
			return errors.New("linalg: tridiagonal pivot is zero")
		}
		w := sub[i] / diag[i-1]
		diag[i] -= w * super[i-1]
		rhs[i] -= w * rhs[i-1]
	}
	if diag[n-1] == 0 {
		return errors.New("linalg: tridiagonal pivot is zero")
	}
	rhs[n-1] /= diag[n-1]
	for i := n - 2; i >= 0; i-- {
		rhs[i] = (rhs[i] - super[i]*rhs[i+1]) / diag[i]
	}
	ops.Add(8 * int64(n))
	return nil
}

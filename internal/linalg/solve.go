package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solve exhausts its
// iteration budget without meeting the tolerance.
var ErrNoConvergence = errors.New("linalg: iteration did not converge")

// ErrBreakdown is returned when BiCGStab hits a true breakdown (rho or
// omega collapses) before converging.
var ErrBreakdown = errors.New("linalg: BiCGStab breakdown")

// SolveStats reports the cost of an iterative solve.
type SolveStats struct {
	Iterations int
	Residual   float64 // final relative residual
}

// BiCGStab solves A x = b with the BiCGStab iteration, Jacobi (diagonal)
// preconditioned, to relative residual tol. x is used as the initial guess
// and overwritten with the solution. maxIter <= 0 means 4*n. It allocates
// a fresh workspace; hot loops should hold a Workspace and call its
// BiCGStab method instead.
func BiCGStab(a *CSR, x, b Vector, tol float64, maxIter int, ops *Ops) (SolveStats, error) {
	return NewWorkspace().BiCGStab(a, x, b, tol, maxIter, ops)
}

// BiCGStab is the workspace-pooled variant of the package-level BiCGStab:
// all solver vectors come from ws, so steady-state calls allocate nothing.
//
//vetsparse:allocfree
func (ws *Workspace) BiCGStab(a *CSR, x, b Vector, tol float64, maxIter int, ops *Ops) (SolveStats, error) {
	n := a.Rows
	if a.Cols != n || len(x) != n || len(b) != n {
		panic(fmt.Sprintf("linalg: BiCGStab dims %dx%d, x[%d], b[%d]", a.Rows, a.Cols, len(x), len(b)))
	}
	if maxIter <= 0 {
		maxIter = 4 * n
		if maxIter < 100 {
			maxIter = 100
		}
	}
	ws.ensureBiCGStab(n)
	// Jacobi preconditioner M^-1 = 1/diag(A).
	invD := ws.invD
	a.Diagonal(invD)
	for i, d := range invD {
		if d == 0 {
			invD[i] = 1
		} else {
			invD[i] = 1 / d
		}
	}
	ops.Add(int64(n))

	tm := ws.team
	r := ws.r
	tm.MulVec(a, r, x, ops)
	tm.Sub(r, b, r, ops)
	bNorm := tm.Norm2(b, ops)
	if bNorm == 0 {
		x.Fill(0)
		return SolveStats{Iterations: 0, Residual: 0}, nil
	}
	if rn := tm.Norm2(r, ops); rn/bNorm <= tol {
		return SolveStats{Iterations: 0, Residual: rn / bNorm}, nil
	}

	rTilde := ws.rTilde
	tm.Copy(rTilde, r)
	p := ws.p
	v := ws.v
	s := ws.s
	t := ws.t
	pHat := ws.pHat
	sHat := ws.sHat

	rho, alpha, omega := 1.0, 1.0, 1.0
	for it := 1; it <= maxIter; it++ {
		rhoNew := tm.Dot(rTilde, r, ops)
		if math.Abs(rhoNew) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		if it == 1 {
			tm.Copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			tm.UpdateP(p, r, v, beta, omega, ops)
		}
		rho = rhoNew
		tm.MulElem(pHat, invD, p, ops)
		tm.MulVec(a, v, pHat, ops)
		den := tm.Dot(rTilde, v, ops)
		if math.Abs(den) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		alpha = rho / den
		tm.AXPYTo(s, r, -alpha, v, ops)
		if sn := tm.Norm2(s, ops); sn/bNorm <= tol {
			tm.AXPY(x, alpha, pHat, ops)
			return SolveStats{Iterations: it, Residual: sn / bNorm}, nil
		}
		tm.MulElem(sHat, invD, s, ops)
		tm.MulVec(a, t, sHat, ops)
		tt := tm.Dot(t, t, ops)
		if tt == 0 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		omega = tm.Dot(t, s, ops) / tt
		tm.AXPY2(x, alpha, pHat, omega, sHat, ops)
		tm.AXPYTo(r, s, -omega, t, ops)
		if rn := tm.Norm2(r, ops); rn/bNorm <= tol {
			return SolveStats{Iterations: it, Residual: rn / bNorm}, nil
		}
		if math.Abs(omega) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
	}
	return SolveStats{Iterations: maxIter, Residual: math.NaN()}, ErrNoConvergence
}

// SolveTridiag solves a tridiagonal system in place with the Thomas
// algorithm: sub (length n, sub[0] unused), diag (length n), super (length
// n, super[n-1] unused), rhs (length n). The solution overwrites rhs; diag
// and rhs are clobbered.
func SolveTridiag(sub, diag, super, rhs Vector, ops *Ops) error {
	n := len(diag)
	if len(sub) != n || len(super) != n || len(rhs) != n {
		panic("linalg: SolveTridiag length mismatch")
	}
	for i := 1; i < n; i++ {
		if diag[i-1] == 0 {
			return errors.New("linalg: tridiagonal pivot is zero")
		}
		w := sub[i] / diag[i-1]
		diag[i] -= w * super[i-1]
		rhs[i] -= w * rhs[i-1]
	}
	if diag[n-1] == 0 {
		return errors.New("linalg: tridiagonal pivot is zero")
	}
	rhs[n-1] /= diag[n-1]
	for i := n - 2; i >= 0; i-- {
		rhs[i] = (rhs[i] - super[i]*rhs[i+1]) / diag[i]
	}
	ops.Add(8 * int64(n))
	return nil
}

package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solve exhausts its
// iteration budget without meeting the tolerance.
var ErrNoConvergence = errors.New("linalg: iteration did not converge")

// ErrBreakdown is returned when BiCGStab hits a true breakdown (rho or
// omega collapses) before converging.
var ErrBreakdown = errors.New("linalg: BiCGStab breakdown")

// SolveStats reports the cost of an iterative solve.
type SolveStats struct {
	Iterations int
	Residual   float64 // final relative residual
}

// BiCGStab solves A x = b with the BiCGStab iteration, Jacobi (diagonal)
// preconditioned, to relative residual tol. x is used as the initial guess
// and overwritten with the solution. maxIter <= 0 means 4*n. It allocates
// a fresh workspace; hot loops should hold a Workspace and call its
// BiCGStab method instead.
func BiCGStab(a *CSR, x, b Vector, tol float64, maxIter int, ops *Ops) (SolveStats, error) {
	return NewWorkspace().BiCGStab(a, x, b, tol, maxIter, ops)
}

// BiCGStab is the workspace-pooled variant of the package-level BiCGStab:
// all solver vectors come from ws, so steady-state calls allocate nothing.
//
//vetsparse:allocfree
func (ws *Workspace) BiCGStab(a *CSR, x, b Vector, tol float64, maxIter int, ops *Ops) (SolveStats, error) {
	n := a.Rows
	if a.Cols != n || len(x) != n || len(b) != n {
		panic(fmt.Sprintf("linalg: BiCGStab dims %dx%d, x[%d], b[%d]", a.Rows, a.Cols, len(x), len(b)))
	}
	if maxIter <= 0 {
		maxIter = 4 * n
		if maxIter < 100 {
			maxIter = 100
		}
	}
	ws.ensureBiCGStab(n)
	// Jacobi preconditioner M^-1 = 1/diag(A).
	invD := ws.invD
	a.Diagonal(invD)
	for i, d := range invD {
		if d == 0 {
			invD[i] = 1
		} else {
			invD[i] = 1 / d
		}
	}
	ops.Add(int64(n))

	tm := ws.team
	r := ws.r
	tm.MulVec(a, r, x, ops)
	tm.Sub(r, b, r, ops)
	bNorm := tm.Norm2(b, ops)
	if bNorm == 0 {
		x.Fill(0)
		return SolveStats{Iterations: 0, Residual: 0}, nil
	}
	if rn := tm.Norm2(r, ops); rn/bNorm <= tol {
		return SolveStats{Iterations: 0, Residual: rn / bNorm}, nil
	}

	rTilde := ws.rTilde
	tm.Copy(rTilde, r)
	if ws.fusedOK(n) {
		return ws.bicgstabFused(a, x, bNorm, tol, maxIter, ops)
	}
	p := ws.p
	v := ws.v
	s := ws.s
	t := ws.t
	pHat := ws.pHat
	sHat := ws.sHat

	rho, alpha, omega := 1.0, 1.0, 1.0
	for it := 1; it <= maxIter; it++ {
		rhoNew := tm.Dot(rTilde, r, ops)
		if math.Abs(rhoNew) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		if it == 1 {
			tm.Copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			tm.UpdateP(p, r, v, beta, omega, ops)
		}
		rho = rhoNew
		tm.MulElem(pHat, invD, p, ops)
		tm.MulVec(a, v, pHat, ops)
		den := tm.Dot(rTilde, v, ops)
		if math.Abs(den) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		alpha = rho / den
		tm.AXPYTo(s, r, -alpha, v, ops)
		if sn := tm.Norm2(s, ops); sn/bNorm <= tol {
			tm.AXPY(x, alpha, pHat, ops)
			return SolveStats{Iterations: it, Residual: sn / bNorm}, nil
		}
		tm.MulElem(sHat, invD, s, ops)
		tm.MulVec(a, t, sHat, ops)
		tt := tm.Dot(t, t, ops)
		if tt == 0 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		omega = tm.Dot(t, s, ops) / tt
		tm.AXPY2(x, alpha, pHat, omega, sHat, ops)
		tm.AXPYTo(r, s, -omega, t, ops)
		if rn := tm.Norm2(r, ops); rn/bNorm <= tol {
			return SolveStats{Iterations: it, Residual: rn / bNorm}, nil
		}
		if math.Abs(omega) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
	}
	return SolveStats{Iterations: maxIter, Residual: math.NaN()}, ErrNoConvergence
}

// bicgstabFused is the fused-phase iteration body of the Jacobi BiCGStab:
// four team dispatches per iteration instead of fourteen. Phase A updates
// the search direction, applies the preconditioner, multiplies and reduces
// the denominator dot; phase B forms s and its norm; phase C forms t and
// both of its dots; phase D updates x and r, reduces the residual norm and
// — one dispatch early — the next iteration's rho. Every elementwise step
// uses the serial arithmetic and every reduction the fixed-chunk ordered
// fold, and the flop accounting below charges exactly what the unfused
// sequence charges on the same control path, so stats, hashes and Ops are
// bit-for-bit identical to the unfused loop.
//
//vetsparse:allocfree
func (ws *Workspace) bicgstabFused(a *CSR, x Vector, bNorm, tol float64, maxIter int, ops *Ops) (SolveStats, error) {
	ws.buildBiCGStabPhases(a, x, false)
	tm := ws.team
	sc := &ws.sc
	nn := int64(a.Rows)
	rho, alpha, omega := 1.0, 1.0, 1.0
	for it := 1; it <= maxIter; it++ {
		var rhoNew float64
		if it == 1 {
			rhoNew = tm.Dot(ws.rTilde, ws.r, ops)
		} else {
			rhoNew = ws.phX.Fold(1)
			ops.Add(2 * nn)
		}
		if math.Abs(rhoNew) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		var den float64
		if it == 1 {
			tm.RunPhase(&ws.phP1)
			ops.Add(ws.phP1.Flops())
			den = ws.phP1.Fold(0)
		} else {
			sc[scBeta] = (rhoNew / rho) * (alpha / omega)
			sc[scOmegaPrev] = omega
			tm.RunPhase(&ws.phP)
			ops.Add(ws.phP.Flops())
			den = ws.phP.Fold(0)
		}
		rho = rhoNew
		if math.Abs(den) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		alpha = rho / den
		sc[scNegAlpha] = -alpha
		tm.RunPhase(&ws.phS)
		ops.Add(ws.phS.Flops())
		if sn := math.Sqrt(ws.phS.Fold(0)); sn/bNorm <= tol {
			tm.AXPY(x, alpha, ws.pHat, ops)
			return SolveStats{Iterations: it, Residual: sn / bNorm}, nil
		}
		tm.RunPhase(&ws.phT)
		ops.Add(ws.phT.Flops())
		tt := ws.phT.Fold(0)
		if tt == 0 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
		omega = ws.phT.Fold(1) / tt
		sc[scAlpha], sc[scOmega], sc[scNegOmega] = alpha, omega, -omega
		tm.RunPhase(&ws.phX)
		// Charge the x/r updates and the residual norm; the rho dot the
		// phase also computed is charged only if the next iteration runs
		// (the unfused loop computes it at the next loop top).
		ops.Add(ws.phX.Flops() - 2*nn)
		if rn := math.Sqrt(ws.phX.Fold(0)); rn/bNorm <= tol {
			return SolveStats{Iterations: it, Residual: rn / bNorm}, nil
		}
		if math.Abs(omega) < 1e-300 {
			return SolveStats{Iterations: it}, ErrBreakdown
		}
	}
	return SolveStats{Iterations: maxIter, Residual: math.NaN()}, ErrNoConvergence
}

// SolveTridiag solves a tridiagonal system in place with the Thomas
// algorithm: sub (length n, sub[0] unused), diag (length n), super (length
// n, super[n-1] unused), rhs (length n). The solution overwrites rhs; diag
// and rhs are clobbered.
func SolveTridiag(sub, diag, super, rhs Vector, ops *Ops) error {
	n := len(diag)
	if len(sub) != n || len(super) != n || len(rhs) != n {
		panic("linalg: SolveTridiag length mismatch")
	}
	for i := 1; i < n; i++ {
		if diag[i-1] == 0 {
			return errors.New("linalg: tridiagonal pivot is zero")
		}
		w := sub[i] / diag[i-1]
		diag[i] -= w * super[i-1]
		rhs[i] -= w * rhs[i-1]
	}
	if diag[n-1] == 0 {
		return errors.New("linalg: tridiagonal pivot is zero")
	}
	rhs[n-1] /= diag[n-1]
	for i := n - 2; i >= 0; i-- {
		rhs[i] = (rhs[i] - super[i]*rhs[i+1]) / diag[i]
	}
	ops.Add(8 * int64(n))
	return nil
}

package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorAXPY(t *testing.T) {
	v := Vector{1, 2, 3}
	v.AXPY(2, Vector{10, 20, 30}, nil)
	want := Vector{21, 42, 63}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("v = %v, want %v", v, want)
		}
	}
}

func TestVectorDotAndNorm(t *testing.T) {
	v := Vector{3, 4}
	if d := v.Dot(Vector{1, 2}, nil); d != 11 {
		t.Errorf("dot = %g, want 11", d)
	}
	if n := v.Norm2(nil); !almost(n, 5, 1e-12) {
		t.Errorf("norm2 = %g, want 5", n)
	}
	if n := v.NormInf(); n != 4 {
		t.Errorf("norminf = %g, want 4", n)
	}
}

func TestWRMSNorm(t *testing.T) {
	err := Vector{0.1, 0.1}
	ref := Vector{1, 1}
	// weights = atol + rtol*|ref| = 0.1 + 0.0 -> e_i = 1 each.
	if n := err.WRMSNorm(ref, 0.1, 0, nil); !almost(n, 1, 1e-12) {
		t.Fatalf("wrms = %g, want 1", n)
	}
}

func TestOpsCounting(t *testing.T) {
	var ops Ops
	v := NewVector(10)
	v.AXPY(1, NewVector(10), &ops)
	if ops.Flops != 20 {
		t.Fatalf("flops = %d, want 20", ops.Flops)
	}
	var nilOps *Ops
	nilOps.Add(5) // must not panic
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(1, 1, 5)
	m := b.Build()
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", m.NNZ())
	}
	if m.At(0, 0) != 3 || m.At(1, 1) != 5 || m.At(0, 1) != 0 {
		t.Fatalf("matrix entries wrong: %+v", m)
	}
}

func TestBuilderEmptyRows(t *testing.T) {
	b := NewBuilder(4, 4)
	b.Add(2, 2, 7)
	m := b.Build()
	y := NewVector(4)
	m.MulVec(y, Vector{1, 1, 1, 1}, nil)
	want := Vector{0, 0, 7, 0}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestMulVec(t *testing.T) {
	// [[2 1 0], [0 3 0], [4 0 5]]
	b := NewBuilder(3, 3)
	b.Add(0, 0, 2)
	b.Add(0, 1, 1)
	b.Add(1, 1, 3)
	b.Add(2, 0, 4)
	b.Add(2, 2, 5)
	m := b.Build()
	y := NewVector(3)
	m.MulVec(y, Vector{1, 2, 3}, nil)
	want := Vector{4, 6, 19}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestShiftedScaled(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 2)
	b.Add(0, 1, 1)
	b.Add(1, 0, -1) // no diagonal in row 1
	m := b.Build().ShiftedScaled(0.5)
	// I - 0.5*A = [[1-1, -0.5], [0.5, 1]]
	if !almost(m.At(0, 0), 0, 1e-15) || !almost(m.At(0, 1), -0.5, 1e-15) ||
		!almost(m.At(1, 0), 0.5, 1e-15) || !almost(m.At(1, 1), 1, 1e-15) {
		t.Fatalf("shifted matrix wrong: %v %v %v %v", m.At(0, 0), m.At(0, 1), m.At(1, 0), m.At(1, 1))
	}
}

// laplace1D builds the standard tridiagonal -u” stiffness matrix (SPD).
func laplace1D(n int) *CSR {
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i > 0 {
			b.Add(i, i-1, -1)
		}
		if i < n-1 {
			b.Add(i, i+1, -1)
		}
	}
	return b.Build()
}

func TestBiCGStabLaplace(t *testing.T) {
	n := 64
	a := laplace1D(n)
	want := NewVector(n)
	for i := range want {
		want[i] = math.Sin(float64(i+1) / float64(n))
	}
	b := NewVector(n)
	a.MulVec(b, want, nil)
	x := NewVector(n)
	st, err := BiCGStab(a, x, b, 1e-12, 0, nil)
	if err != nil {
		t.Fatalf("BiCGStab: %v (iters %d)", err, st.Iterations)
	}
	for i := range x {
		if !almost(x[i], want[i], 1e-8) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
	if st.Iterations == 0 {
		t.Fatal("expected nonzero iteration count")
	}
}

func TestBiCGStabNonsymmetric(t *testing.T) {
	// Advection-diffusion-like nonsymmetric matrix: 1D upwind + diffusion.
	n := 80
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 3)
		if i > 0 {
			b.Add(i, i-1, -2) // upwind advection
		}
		if i < n-1 {
			b.Add(i, i+1, -0.5)
		}
	}
	a := b.Build()
	want := NewVector(n)
	rng := rand.New(rand.NewSource(7))
	for i := range want {
		want[i] = rng.Float64() - 0.5
	}
	rhs := NewVector(n)
	a.MulVec(rhs, want, nil)
	x := NewVector(n)
	if _, err := BiCGStab(a, x, rhs, 1e-12, 0, nil); err != nil {
		t.Fatalf("BiCGStab: %v", err)
	}
	for i := range x {
		if !almost(x[i], want[i], 1e-7) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestBiCGStabZeroRHS(t *testing.T) {
	a := laplace1D(10)
	x := NewVector(10)
	x.Fill(3)
	st, err := BiCGStab(a, x, NewVector(10), 1e-10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 0 {
		t.Errorf("iterations = %d, want 0", st.Iterations)
	}
	for i := range x {
		if x[i] != 0 {
			t.Fatalf("x = %v, want zero vector", x)
		}
	}
}

func TestBiCGStabGoodInitialGuess(t *testing.T) {
	a := laplace1D(10)
	want := NewVector(10)
	want.Fill(1)
	b := NewVector(10)
	a.MulVec(b, want, nil)
	x := want.Clone()
	st, err := BiCGStab(a, x, b, 1e-10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 0 {
		t.Errorf("iterations = %d, want 0 for exact initial guess", st.Iterations)
	}
}

func TestBiCGStabCountsOps(t *testing.T) {
	var ops Ops
	a := laplace1D(32)
	bv := NewVector(32)
	bv.Fill(1)
	x := NewVector(32)
	if _, err := BiCGStab(a, x, bv, 1e-10, 0, &ops); err != nil {
		t.Fatal(err)
	}
	if ops.Flops == 0 {
		t.Fatal("expected nonzero flop count")
	}
}

func TestSolveTridiag(t *testing.T) {
	n := 50
	sub := NewVector(n)
	diag := NewVector(n)
	super := NewVector(n)
	for i := 0; i < n; i++ {
		diag[i] = 2
		if i > 0 {
			sub[i] = -1
		}
		if i < n-1 {
			super[i] = -1
		}
	}
	want := NewVector(n)
	for i := range want {
		want[i] = float64(i%5) - 2
	}
	// rhs = A*want via the explicit tridiagonal product.
	rhs := NewVector(n)
	for i := 0; i < n; i++ {
		rhs[i] = diag[i] * want[i]
		if i > 0 {
			rhs[i] += sub[i] * want[i-1]
		}
		if i < n-1 {
			rhs[i] += super[i] * want[i+1]
		}
	}
	if err := SolveTridiag(sub, diag, super, rhs, nil); err != nil {
		t.Fatal(err)
	}
	for i := range rhs {
		if !almost(rhs[i], want[i], 1e-10) {
			t.Fatalf("x[%d] = %g, want %g", i, rhs[i], want[i])
		}
	}
}

func TestSolveTridiagSingular(t *testing.T) {
	n := 3
	if err := SolveTridiag(NewVector(n), NewVector(n), NewVector(n), NewVector(n), nil); err == nil {
		t.Fatal("expected error for zero pivot")
	}
}

// Property: BiCGStab solves random diagonally dominant systems to the
// requested residual.
func TestPropBiCGStabResidual(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 4
		rng := rand.New(rand.NewSource(seed))
		bld := NewBuilder(n, n)
		for i := 0; i < n; i++ {
			row := 0.0
			for j := i - 2; j <= i+2; j++ {
				if j < 0 || j >= n || j == i {
					continue
				}
				v := rng.Float64() - 0.5
				bld.Add(i, j, v)
				row += math.Abs(v)
			}
			bld.Add(i, i, row+1+rng.Float64()) // strictly dominant
		}
		a := bld.Build()
		want := NewVector(n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		rhs := NewVector(n)
		a.MulVec(rhs, want, nil)
		x := NewVector(n)
		if _, err := BiCGStab(a, x, rhs, 1e-10, 0, nil); err != nil {
			return false
		}
		r := NewVector(n)
		a.MulVec(r, x, nil)
		r.Sub(rhs, r, nil)
		return r.Norm2(nil) <= 1e-8*(1+rhs.Norm2(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: (I - s*A)x == x - s*(A x) for any vector.
func TestPropShiftedScaledConsistent(t *testing.T) {
	f := func(seed int64, sRaw uint8) bool {
		n := 12
		s := float64(sRaw) / 64
		rng := rand.New(rand.NewSource(seed))
		bld := NewBuilder(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.25 {
					bld.Add(i, j, rng.NormFloat64())
				}
			}
		}
		a := bld.Build()
		shifted := a.ShiftedScaled(s)
		x := NewVector(n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := NewVector(n)
		shifted.MulVec(y1, x, nil)
		ax := NewVector(n)
		a.MulVec(ax, x, nil)
		for i := range x {
			want := x[i] - s*ax[i]
			if !almost(y1[i], want, 1e-12*(1+math.Abs(want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestILU0ExactForTridiagonal(t *testing.T) {
	// For a tridiagonal matrix ILU(0) has no dropped fill, so it is the
	// exact LU factorization: one application solves the system.
	n := 30
	a := laplace1D(n)
	f, err := NewILU0(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := NewVector(n)
	for i := range want {
		want[i] = math.Sin(float64(i))
	}
	b := NewVector(n)
	a.MulVec(b, want, nil)
	x := NewVector(n)
	f.Solve(x, b, nil)
	for i := range x {
		if !almost(x[i], want[i], 1e-10) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestILU0RequiresDiagonal(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	if _, err := NewILU0(b.Build(), nil); err == nil {
		t.Fatal("expected error for missing diagonal")
	}
}

func TestILU0RejectsRectangular(t *testing.T) {
	b := NewBuilder(2, 3)
	b.Add(0, 0, 1)
	if _, err := NewILU0(b.Build(), nil); err == nil {
		t.Fatal("expected error for rectangular matrix")
	}
}

// advDiff2D builds the 5-point upwind advection-diffusion operator used by
// the application (shifted as in a Rosenbrock stage) on an nx x ny grid.
func advDiff2D(nx, ny int, shift float64) *CSR {
	n := nx * ny
	b := NewBuilder(n, n)
	hx, hy := 1.0/float64(nx+1), 1.0/float64(ny+1)
	d := 0.01
	a1, a2 := 1.0, 0.5
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			row := j*nx + i
			diag := shift + 2*d/(hx*hx) + 2*d/(hy*hy) + a1/hx + a2/hy
			b.Add(row, row, diag)
			if i > 0 {
				b.Add(row, row-1, -d/(hx*hx)-a1/hx)
			}
			if i < nx-1 {
				b.Add(row, row+1, -d/(hx*hx))
			}
			if j > 0 {
				b.Add(row, row-nx, -d/(hy*hy)-a2/hy)
			}
			if j < ny-1 {
				b.Add(row, row+nx, -d/(hy*hy))
			}
		}
	}
	return b.Build()
}

func TestBiCGStabILUSolves(t *testing.T) {
	a := advDiff2D(24, 24, 1)
	n := a.Rows
	rng := rand.New(rand.NewSource(5))
	want := NewVector(n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	rhs := NewVector(n)
	a.MulVec(rhs, want, nil)
	x := NewVector(n)
	st, err := BiCGStabILU(a, x, rhs, 1e-11, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almost(x[i], want[i], 1e-7) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
	if st.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestILUBeatsJacobiOnAnisotropicOperator(t *testing.T) {
	// The anisotropic end grids of the sparse-grid family (e.g. 128 x 4
	// cells) are where Jacobi struggles; ILU(0) must cut the iteration
	// count substantially.
	a := advDiff2D(127, 3, 0.5)
	n := a.Rows
	rhs := NewVector(n)
	rhs.Fill(1)

	xJ := NewVector(n)
	stJ, err := BiCGStab(a, xJ, rhs, 1e-10, 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	xI := NewVector(n)
	stI, err := BiCGStabILU(a, xI, rhs, 1e-10, 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stI.Iterations*2 > stJ.Iterations {
		t.Fatalf("ILU took %d iterations vs Jacobi %d; expected at least 2x fewer",
			stI.Iterations, stJ.Iterations)
	}
	for i := range xI {
		if !almost(xI[i], xJ[i], 1e-6*(1+math.Abs(xJ[i]))) {
			t.Fatalf("solutions disagree at %d: %g vs %g", i, xI[i], xJ[i])
		}
	}
}

func TestBiCGStabILUZeroRHS(t *testing.T) {
	a := advDiff2D(8, 8, 1)
	x := NewVector(a.Rows)
	x.Fill(1)
	if _, err := BiCGStabILU(a, x, NewVector(a.Rows), 1e-10, 0, nil); err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("x not zeroed for zero rhs")
		}
	}
}

// Property: applying ILU0.Solve to A*x reproduces x exactly when A is
// tridiagonal (no fill dropped), for random diagonally dominant systems.
func TestPropILU0ExactTridiagonal(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(n, n)
		for i := 0; i < n; i++ {
			row := 0.0
			if i > 0 {
				v := rng.NormFloat64()
				b.Add(i, i-1, v)
				row += math.Abs(v)
			}
			if i < n-1 {
				v := rng.NormFloat64()
				b.Add(i, i+1, v)
				row += math.Abs(v)
			}
			b.Add(i, i, row+1+rng.Float64())
		}
		a := b.Build()
		fac, err := NewILU0(a, nil)
		if err != nil {
			return false
		}
		want := NewVector(n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		rhs := NewVector(n)
		a.MulVec(rhs, want, nil)
		x := NewVector(n)
		fac.Solve(x, rhs, nil)
		for i := range x {
			if !almost(x[i], want[i], 1e-8*(1+math.Abs(want[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

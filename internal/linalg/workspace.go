package linalg

// Workspace owns every buffer the iterative solvers need — the BiCGStab
// vectors, the GMRES Krylov basis and Hessenberg, and a cached ILU(0)
// factorization — so a steady-state Rosenbrock stepping loop performs no
// allocations at all. A zero-value Workspace is ready to use; buffers grow
// on demand and are reused across solves (and across systems of different
// sizes: a buffer is re-sliced when large enough, reallocated otherwise).
//
// A Workspace is not safe for concurrent use; give each goroutine its own.
type Workspace struct {
	// Shared by both BiCGStab variants.
	invD, r, rTilde, p, v, s, t, pHat, sHat Vector

	// GMRES: Krylov basis, Hessenberg columns, Givens rotations.
	basis  []Vector
	hess   [][]float64
	cs, sn []float64
	g, y   []float64
	w, z   Vector

	// Cached ILU(0) factorization, keyed on the matrix identity and the
	// caller-supplied shift key (the Rosenbrock gamma*tau).
	ilu      *ILU0
	iluSrc   *CSR
	iluKey   float64
	iluValid bool
	iluErr   error

	// team, when non-nil, parallelizes the solver kernels across its
	// workers. Results are bit-for-bit identical with any team (or none).
	team *Team
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// SetTeam routes the workspace's solver kernels through t (nil restores
// serial execution). The workspace does not own the team: the caller keeps
// responsibility for Close.
func (ws *Workspace) SetTeam(t *Team) { ws.team = t }

// Team returns the team set by SetTeam (nil means serial).
func (ws *Workspace) Team() *Team { return ws.team }

// grow returns v with length n, reusing its backing array when possible.
func grow(v Vector, n int) Vector {
	if cap(v) < n {
		return make(Vector, n)
	}
	return v[:n]
}

func growF(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

// ensureBiCGStab sizes the BiCGStab buffers for an n-dimensional solve.
func (ws *Workspace) ensureBiCGStab(n int) {
	ws.invD = grow(ws.invD, n)
	ws.r = grow(ws.r, n)
	ws.rTilde = grow(ws.rTilde, n)
	ws.p = grow(ws.p, n)
	ws.v = grow(ws.v, n)
	ws.s = grow(ws.s, n)
	ws.t = grow(ws.t, n)
	ws.pHat = grow(ws.pHat, n)
	ws.sHat = grow(ws.sHat, n)
}

// ensureGMRES sizes the GMRES buffers for restart dimension m on an
// n-dimensional system.
func (ws *Workspace) ensureGMRES(n, m int) {
	ws.invD = grow(ws.invD, n)
	ws.w = grow(ws.w, n)
	ws.z = grow(ws.z, n)
	if cap(ws.basis) < m+1 {
		basis := make([]Vector, m+1)
		copy(basis, ws.basis)
		ws.basis = basis
	}
	ws.basis = ws.basis[:m+1]
	for i := range ws.basis {
		ws.basis[i] = grow(ws.basis[i], n)
	}
	if cap(ws.hess) < m+1 {
		hess := make([][]float64, m+1)
		copy(hess, ws.hess)
		ws.hess = hess
	}
	ws.hess = ws.hess[:m+1]
	for i := range ws.hess {
		ws.hess[i] = growF(ws.hess[i], m)
	}
	ws.cs = growF(ws.cs, m)
	ws.sn = growF(ws.sn, m)
	ws.g = growF(ws.g, m+1)
	ws.y = growF(ws.y, m)
}

// ILUFor returns the ILU(0) factorization of a, reusing the cached factors
// when both the matrix identity and the shift key match the previous call
// — the Rosenbrock step-size controller frequently keeps tau, and then the
// factorization is free. When the key changes but the matrix (and hence
// its pattern) is the same, the factorization is redone in place with no
// allocation. A factorization failure (zero pivot) is cached under the
// same key so repeated stage solves do not retry it.
func (ws *Workspace) ILUFor(a *CSR, key float64, ops *Ops) (*ILU0, error) {
	if ws.iluValid && ws.iluSrc == a && ws.iluKey == key {
		return ws.ilu, ws.iluErr
	}
	if ws.ilu != nil && ws.iluSrc == a {
		ws.iluErr = ws.ilu.Refactor(a, ops)
	} else {
		ws.ilu, ws.iluErr = NewILU0(a, ops)
		if ws.ilu == nil {
			// Structural failure (no diagonal / not square): do not pin
			// the cache to a broken factor object.
			ws.iluSrc, ws.iluValid = nil, false
			return nil, ws.iluErr
		}
		ws.iluSrc = a
	}
	ws.iluKey, ws.iluValid = key, true
	return ws.ilu, ws.iluErr
}

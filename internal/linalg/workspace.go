package linalg

// Workspace owns every buffer the iterative solvers need — the BiCGStab
// vectors, the GMRES Krylov basis and Hessenberg, and a cached ILU(0)
// factorization — so a steady-state Rosenbrock stepping loop performs no
// allocations at all. A zero-value Workspace is ready to use; buffers grow
// on demand and are reused across solves (and across systems of different
// sizes: a buffer is re-sliced when large enough, reallocated otherwise).
//
// A Workspace is not safe for concurrent use; give each goroutine its own.
type Workspace struct {
	// Shared by both BiCGStab variants.
	invD, r, rTilde, p, v, s, t, pHat, sHat Vector

	// GMRES: Krylov basis, Hessenberg columns, Givens rotations.
	basis  []Vector
	hess   [][]float64
	cs, sn []float64
	g, y   []float64
	w, z   Vector

	// Cached ILU(0) factorization, keyed on the matrix identity and the
	// caller-supplied shift key (the Rosenbrock gamma*tau).
	ilu      *ILU0
	iluSrc   *CSR
	iluKey   float64
	iluValid bool
	iluErr   error

	// team, when non-nil, parallelizes the solver kernels across its
	// workers. Results are bit-for-bit identical with any team (or none).
	team *Team

	// Fused-phase plans of the solver iteration bodies, rebuilt at each
	// solve entry (cheap; backing arrays are reused so steady-state
	// rebuilding allocates nothing) because ensure* may have re-sliced
	// the vectors they bind.
	phP1, phP, phS, phT, phX Phase // Jacobi BiCGStab
	phAv, phAt               Phase // ILU BiCGStab matvec+dot phases
	phArn                    Phase // GMRES Arnoldi step
	sc                       [scCount]float64
	karn                     int // current Arnoldi column, bound into phArn
}

// Scalar slots the fused plans read through pointers; the solver loops
// store into them right before each dispatch.
const (
	scBeta = iota
	scOmegaPrev
	scNegAlpha
	scAlpha
	scOmega
	scNegOmega
	scCount
)

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// SetTeam routes the workspace's solver kernels through t (nil restores
// serial execution). The workspace does not own the team: the caller keeps
// responsibility for Close.
func (ws *Workspace) SetTeam(t *Team) { ws.team = t }

// Team returns the team set by SetTeam (nil means serial).
func (ws *Workspace) Team() *Team { return ws.team }

// grow returns v with length n, reusing its backing array when possible.
func grow(v Vector, n int) Vector {
	if cap(v) < n {
		return make(Vector, n)
	}
	return v[:n]
}

func growF(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

// ensureBiCGStab sizes the BiCGStab buffers for an n-dimensional solve.
func (ws *Workspace) ensureBiCGStab(n int) {
	ws.invD = grow(ws.invD, n)
	ws.r = grow(ws.r, n)
	ws.rTilde = grow(ws.rTilde, n)
	ws.p = grow(ws.p, n)
	ws.v = grow(ws.v, n)
	ws.s = grow(ws.s, n)
	ws.t = grow(ws.t, n)
	ws.pHat = grow(ws.pHat, n)
	ws.sHat = grow(ws.sHat, n)
}

// ensureGMRES sizes the GMRES buffers for restart dimension m on an
// n-dimensional system.
func (ws *Workspace) ensureGMRES(n, m int) {
	ws.invD = grow(ws.invD, n)
	ws.w = grow(ws.w, n)
	ws.z = grow(ws.z, n)
	if cap(ws.basis) < m+1 {
		basis := make([]Vector, m+1)
		copy(basis, ws.basis)
		ws.basis = basis
	}
	ws.basis = ws.basis[:m+1]
	for i := range ws.basis {
		ws.basis[i] = grow(ws.basis[i], n)
	}
	if cap(ws.hess) < m+1 {
		hess := make([][]float64, m+1)
		copy(hess, ws.hess)
		ws.hess = hess
	}
	ws.hess = ws.hess[:m+1]
	for i := range ws.hess {
		ws.hess[i] = growF(ws.hess[i], m)
	}
	ws.cs = growF(ws.cs, m)
	ws.sn = growF(ws.sn, m)
	ws.g = growF(ws.g, m+1)
	ws.y = growF(ws.y, m)
}

// fusedOK reports whether a solve of dimension n should run its fused
// iteration body: a real team is attached and the system clears the
// phase cut-over.
func (ws *Workspace) fusedOK(n int) bool {
	return !ws.team.seq() && n >= ParMinPhase
}

// buildBiCGStabPhases (re)binds the fused BiCGStab iteration phases to the
// workspace vectors and the caller's solution vector. The Jacobi variant
// fuses a whole iteration into four dispatches; the ILU variant keeps the
// p-update and triangular solves as separate (level-scheduled) dispatches
// and fuses the matvec+reduction tails. Barriers appear exactly before the
// SpMV steps whose input was written earlier in the same phase.
func (ws *Workspace) buildBiCGStabPhases(a *CSR, x Vector, withILU bool) {
	n := len(ws.r)
	sc := &ws.sc
	if withILU {
		av := &ws.phAv
		av.Reset(n)
		av.MulVec(a, ws.v, ws.pHat) // pHat written pre-dispatch: no barrier
		av.Dot(0, ws.rTilde, ws.v)
		at := &ws.phAt
		at.Reset(n)
		at.MulVec(a, ws.t, ws.sHat)
		at.Dot(0, ws.t, ws.t)
		at.Dot(1, ws.t, ws.s)
	} else {
		p1 := &ws.phP1 // first iteration: p = r instead of the p-update
		p1.Reset(n)
		p1.Copy(ws.p, ws.r)
		p1.MulElem(ws.pHat, ws.invD, ws.p)
		p1.Barrier() // SpMV reads all of pHat
		p1.MulVec(a, ws.v, ws.pHat)
		p1.Dot(0, ws.rTilde, ws.v)
		pp := &ws.phP
		pp.Reset(n)
		pp.UpdateP(ws.p, ws.r, ws.v, &sc[scBeta], &sc[scOmegaPrev])
		pp.MulElem(ws.pHat, ws.invD, ws.p)
		pp.Barrier()
		pp.MulVec(a, ws.v, ws.pHat)
		pp.Dot(0, ws.rTilde, ws.v)
		tt := &ws.phT
		tt.Reset(n)
		tt.MulElem(ws.sHat, ws.invD, ws.s)
		tt.Barrier()
		tt.MulVec(a, ws.t, ws.sHat)
		tt.Dot(0, ws.t, ws.t)
		tt.Dot(1, ws.t, ws.s)
	}
	sp := &ws.phS
	sp.Reset(n)
	sp.AXPYTo(ws.s, ws.r, &sc[scNegAlpha], ws.v)
	sp.Dot(0, ws.s, ws.s)
	xp := &ws.phX
	xp.Reset(n)
	xp.AXPY2(x, &sc[scAlpha], ws.pHat, &sc[scOmega], ws.sHat)
	xp.AXPYTo(ws.r, ws.s, &sc[scNegOmega], ws.t)
	xp.Dot(0, ws.r, ws.r)
	xp.Dot(1, ws.rTilde, ws.r) // next iteration's rho, one dispatch early
}

// buildArnoldiPhase (re)binds the fused GMRES Arnoldi step: preconditioner
// application, SpMV, and the full modified Gram-Schmidt sweep against the
// Krylov basis in one dispatch, with ws.karn selecting the column.
func (ws *Workspace) buildArnoldiPhase(a *CSR) {
	n := len(ws.w)
	ph := &ws.phArn
	ph.Reset(n)
	ph.MulElemAt(ws.z, ws.invD, ws.basis, &ws.karn)
	ph.Barrier() // SpMV reads all of z
	ph.MulVec(a, ws.w, ws.z)
	ph.MGS(ws.w, ws.basis, ws.hess, &ws.karn)
}

// ILUFor returns the ILU(0) factorization of a, reusing the cached factors
// when both the matrix identity and the shift key match the previous call
// — the Rosenbrock step-size controller frequently keeps tau, and then the
// factorization is free. When the key changes but the matrix (and hence
// its pattern) is the same, the factorization is redone in place with no
// allocation. A factorization failure (zero pivot) is cached under the
// same key so repeated stage solves do not retry it.
func (ws *Workspace) ILUFor(a *CSR, key float64, ops *Ops) (*ILU0, error) {
	if ws.iluValid && ws.iluSrc == a && ws.iluKey == key {
		return ws.ilu, ws.iluErr
	}
	if ws.ilu != nil && ws.iluSrc == a {
		ws.iluErr = ws.ilu.Refactor(a, ops)
	} else {
		ws.ilu, ws.iluErr = NewILU0(a, ops)
		if ws.ilu == nil {
			// Structural failure (no diagonal / not square): do not pin
			// the cache to a broken factor object.
			ws.iluSrc, ws.iluValid = nil, false
			return nil, ws.iluErr
		}
		ws.iluSrc = a
	}
	ws.iluKey, ws.iluValid = key, true
	return ws.ilu, ws.iluErr
}

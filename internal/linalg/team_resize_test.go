package linalg

import (
	"math/rand"
	"testing"
)

// TestTeamResizeBitIdentical drives the same kernel sequence through a
// fixed-size team and a team that is elastically resized between
// dispatches, and requires bit-for-bit identical outputs: the fixed-chunk
// ordered reductions make results independent of team size, so a resize
// can never change them.
func TestTeamResizeBitIdentical(t *testing.T) {
	lowerParMins(t)
	rng := rand.New(rand.NewSource(11))
	const n = 5000
	a := gridOperator(70)
	x := randVec(rng, n)
	y := randVec(rng, n)
	gx := randVec(rng, a.Cols)

	fixed := NewTeam(4)
	defer fixed.Close()
	elastic := NewTeam(2)
	defer elastic.Close()

	sizes := []int{1, 4, 2, 3, 4, 1, 2}
	for step, size := range sizes {
		elastic.SetTarget(size)

		var fops, eops Ops
		df := fixed.Dot(x, y, &fops)
		de := elastic.Dot(x, y, &eops)
		if df != de {
			t.Errorf("step %d (target %d): Dot = %v, want %v", step, size, de, df)
		}
		if got := elastic.Size(); got != size {
			t.Errorf("step %d: Size after dispatch = %d, want %d", step, got, size)
		}

		yf, ye := NewVector(a.Rows), NewVector(a.Rows)
		fixed.MulVec(a, yf, gx, &fops)
		elastic.MulVec(a, ye, gx, &eops)
		for i := range yf {
			if yf[i] != ye[i] {
				t.Fatalf("step %d: MulVec[%d] = %v, want %v", step, i, ye[i], yf[i])
			}
		}

		wf, we := NewVector(n), NewVector(n)
		copy(wf, x)
		copy(we, x)
		fixed.AXPY(wf, 0.25, y, &fops)
		elastic.AXPY(we, 0.25, y, &eops)
		for i := range wf {
			if wf[i] != we[i] {
				t.Fatalf("step %d: AXPY[%d] = %v, want %v", step, i, we[i], wf[i])
			}
		}
	}
}

// TestTeamResizePhaseBitIdentical resizes across fused-phase dispatches:
// the grown/shrunk team recomputes chunk-aligned ranges and must produce
// the serial interpretation's exact result at every size.
func TestTeamResizePhaseBitIdentical(t *testing.T) {
	lowerParMins(t)
	rng := rand.New(rand.NewSource(12))
	const n = 4096 + 137
	x := randVec(rng, n)
	y := randVec(rng, n)

	elastic := NewTeam(1) // starts serial; first SetTarget must grow it
	defer elastic.Close()

	a := 0.5
	for _, size := range []int{2, 4, 1, 3} {
		elastic.SetTarget(size)

		ds, dp := NewVector(n), NewVector(n)
		copy(ds, x)
		copy(dp, x)

		var ser Phase
		ser.Reset(n)
		ser.AXPY(ds, &a, y)
		ser.Dot(0, ds, y)
		ser.runSerial()
		sdot := ser.Fold(0)

		var par Phase
		par.Reset(n)
		par.AXPY(dp, &a, y)
		par.Dot(0, dp, y)
		elastic.RunPhase(&par)
		pdot := par.Fold(0)

		if got := elastic.Size(); got != size {
			t.Errorf("Size after RunPhase = %d, want %d", got, size)
		}
		if pdot != sdot {
			t.Errorf("size %d: phase Dot = %v, want %v", size, pdot, sdot)
		}
		for i := range ds {
			if ds[i] != dp[i] {
				t.Fatalf("size %d: phase AXPY[%d] = %v, want %v", size, i, dp[i], ds[i])
			}
		}
	}
}

type recordResize struct {
	events []struct {
		us       int64
		from, to int
	}
}

func (r *recordResize) ObserveResize(us int64, from, to int) {
	r.events = append(r.events, struct {
		us       int64
		from, to int
	}{us, from, to})
}

// TestTeamResizeObserver checks that every applied resize reports a
// non-negative request-to-application latency and the exact size change,
// and that no-op targets (same size) report nothing.
func TestTeamResizeObserver(t *testing.T) {
	lowerParMins(t)
	rng := rand.New(rand.NewSource(13))
	x := randVec(rng, 2048)
	y := randVec(rng, 2048)

	rec := &recordResize{}
	tm := NewTeam(2)
	defer tm.Close()
	tm.SetResizeObserver(rec)

	var ops Ops
	tm.SetTarget(4)
	tm.Dot(x, y, &ops)
	tm.SetTarget(4) // same size: applied as a no-op, not observed
	tm.Dot(x, y, &ops)
	tm.SetTarget(1)
	tm.Dot(x, y, &ops)

	want := []struct{ from, to int }{{2, 4}, {4, 1}}
	if len(rec.events) != len(want) {
		t.Fatalf("observed %d resizes, want %d: %+v", len(rec.events), len(want), rec.events)
	}
	for i, ev := range rec.events {
		if ev.from != want[i].from || ev.to != want[i].to {
			t.Errorf("resize %d = %d->%d, want %d->%d", i, ev.from, ev.to, want[i].from, want[i].to)
		}
		if ev.us < 0 {
			t.Errorf("resize %d latency %dus < 0", i, ev.us)
		}
	}
}

// TestTeamResizeClamps checks SetTarget clamping and that a pending
// request left unapplied at Close neither panics nor resurrects workers.
func TestTeamResizeClamps(t *testing.T) {
	lowerParMins(t)
	rng := rand.New(rand.NewSource(14))
	x := randVec(rng, 1024)
	y := randVec(rng, 1024)

	tm := NewTeam(2)
	var ops Ops
	tm.SetTarget(0) // clamps to 1
	tm.Dot(x, y, &ops)
	if got := tm.Size(); got != 1 {
		t.Errorf("Size after SetTarget(0) = %d, want 1", got)
	}
	tm.SetTarget(MaxTeam + 5) // clamps to MaxTeam, pending
	tm.Close()
	if got := tm.Size(); got != 1 {
		t.Errorf("Size after Close = %d, want 1", got)
	}
	// Kernels on the closed team still work, serially, and must not
	// apply the stale pending target.
	if got, want := tm.Dot(x, y, &ops), x.Dot(y, &ops); got != want {
		t.Errorf("closed-team Dot = %v, want %v", got, want)
	}
	if got := tm.Size(); got != 1 {
		t.Errorf("Size after post-Close dispatch = %d, want 1", got)
	}

	var nilTeam *Team
	nilTeam.SetTarget(4) // no-op, must not panic
	nilTeam.SetResizeObserver(nil)
}

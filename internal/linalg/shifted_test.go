package linalg

import (
	"math/rand"
	"testing"
)

// randomSquare builds a random sparse square matrix through the Builder.
// diagProb controls how often a row gets an explicit diagonal entry, so
// structurally missing diagonals are exercised.
func randomSquare(rng *rand.Rand, n int, density, diagProb float64) *CSR {
	b := NewBuilder(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c == r {
				if rng.Float64() < diagProb {
					b.Add(r, c, rng.NormFloat64())
				}
				continue
			}
			if rng.Float64() < density {
				b.Add(r, c, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

func sameCSR(t *testing.T, want, got *CSR) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("dims: want %dx%d, got %dx%d", want.Rows, want.Cols, got.Rows, got.Cols)
	}
	if len(want.Val) != len(got.Val) {
		t.Fatalf("nnz: want %d, got %d", len(want.Val), len(got.Val))
	}
	for i := range want.RowPtr {
		if want.RowPtr[i] != got.RowPtr[i] {
			t.Fatalf("RowPtr[%d]: want %d, got %d", i, want.RowPtr[i], got.RowPtr[i])
		}
	}
	for i := range want.ColIdx {
		if want.ColIdx[i] != got.ColIdx[i] {
			t.Fatalf("ColIdx[%d]: want %d, got %d", i, want.ColIdx[i], got.ColIdx[i])
		}
	}
	for i := range want.Val {
		// Bit-identical, not just close: the in-place update must perform
		// exactly the arithmetic of the from-scratch assembly.
		if want.Val[i] != got.Val[i] {
			t.Fatalf("Val[%d]: want %v, got %v (bit mismatch)", i, want.Val[i], got.Val[i])
		}
	}
}

// TestShiftedOperatorMatchesShiftedScaled asserts that Update(s) produces
// a matrix bit-identical to a from-scratch ShiftedScaled(s) assembly, on
// randomized sparsity patterns including rows with a structurally missing
// diagonal, across repeated shift changes and the skip-if-unchanged path.
func TestShiftedOperatorMatchesShiftedScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(40)
		a := randomSquare(rng, n, 0.15, 0.6)
		op := NewShiftedOperator(a)
		for _, s := range []float64{0, 1, -0.75, 1e-9, rng.NormFloat64(), 3.5e4} {
			got := op.Update(s, nil)
			want := a.ShiftedScaled(s)
			sameCSR(t, want, got)
			// Repeating the same shift must be a no-op that still holds
			// the correct values.
			again := op.Update(s, nil)
			if again != got {
				t.Fatal("Update with unchanged shift returned a different matrix")
			}
			sameCSR(t, want, again)
		}
	}
}

// TestShiftedOperatorMissingDiagonal pins the all-off-diagonal corner: no
// row has a stored diagonal, so every diagonal entry of M is structural.
func TestShiftedOperatorMissingDiagonal(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(0, 1, 2.0)
	b.Add(1, 2, -3.0)
	b.Add(2, 0, 4.0)
	a := b.Build()
	op := NewShiftedOperator(a)
	for _, s := range []float64{0.5, -2, 0.5} {
		sameCSR(t, a.ShiftedScaled(s), op.Update(s, nil))
	}
	for r := 0; r < 3; r++ {
		if got := op.Matrix().At(r, r); got != 1 {
			t.Fatalf("diag %d = %v, want 1", r, got)
		}
	}
}

// TestShiftedOperatorOps asserts an update is accounted as O(nnz) work and
// a skipped update as none.
func TestShiftedOperatorOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSquare(rng, 20, 0.2, 0.5)
	op := NewShiftedOperator(a)
	var ops Ops
	op.Update(0.25, &ops)
	if want := 2 * int64(op.Matrix().NNZ()); ops.Flops != want {
		t.Fatalf("update flops = %d, want %d", ops.Flops, want)
	}
	op.Update(0.25, &ops)
	if want := 2 * int64(op.Matrix().NNZ()); ops.Flops != want {
		t.Fatalf("skipped update added flops: %d, want %d", ops.Flops, want)
	}
	op.Invalidate()
	op.Update(0.25, &ops)
	if want := 4 * int64(op.Matrix().NNZ()); ops.Flops != want {
		t.Fatalf("invalidated update flops = %d, want %d", ops.Flops, want)
	}
}

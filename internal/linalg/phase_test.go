package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// tridiagOperator builds a diagonally dominant nonsymmetric tridiagonal
// operator of arbitrary dimension n, so the fused-solver tests can pin the
// exact redChunk boundary lengths the square grid operators cannot hit.
func tridiagOperator(n int) *CSR {
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i > 0 {
			b.Add(i, i-1, -1.3)
		}
		if i < n-1 {
			b.Add(i, i+1, -0.7)
		}
	}
	return b.Build()
}

// phaseTestSizes are the system dimensions the fused-vs-unfused tests
// sweep: one below, at and above a chunk boundary, a length several chunks
// in with a ragged tail, and the kernel-suite staple 5000.
func phaseTestSizes() []int {
	return []int{redChunk - 1, redChunk, redChunk + 1, 3*redChunk + 17, 5000}
}

// fusedSolver runs one solver variant against (a, b) from a zero initial
// guess and returns the solution, stats and flop count.
type fusedSolver func(ws *Workspace, a *CSR, x, b Vector) (SolveStats, error, int64)

func bicgstabSolver(ws *Workspace, a *CSR, x, b Vector) (SolveStats, error, int64) {
	var ops Ops
	st, err := ws.BiCGStab(a, x, b, 1e-10, 300, &ops)
	return st, err, ops.Flops
}

func gmresSolver(ws *Workspace, a *CSR, x, b Vector) (SolveStats, error, int64) {
	var ops Ops
	st, err := ws.GMRES(a, x, b, 1e-10, 30, 300, &ops)
	return st, err, ops.Flops
}

func iluSolver(ws *Workspace, a *CSR, x, b Vector) (SolveStats, error, int64) {
	var ops Ops
	st, err := ws.BiCGStabILU(a, x, b, 1e-10, 300, 0.125, &ops)
	return st, err, ops.Flops
}

// testFusedMatchesUnfused is the shared body of the fused bit-identity
// tests: for every chunk-boundary size and team width it runs the serial
// reference (no team), the unfused parallel path (phase cut-over pushed out
// of reach) and the fused path (cut-over at 1), and demands bitwise equal
// solutions, identical iteration counts and residuals, and exact flop
// parity — the full determinism contract of the phase layer.
func testFusedMatchesUnfused(t *testing.T, solve fusedSolver) {
	t.Helper()
	lowerParMins(t)
	rng := rand.New(rand.NewSource(23))
	for _, n := range phaseTestSizes() {
		a := tridiagOperator(n)
		b := randVec(rng, n)

		ref := NewVector(n)
		refWS := NewWorkspace()
		refStats, refErr, refFlops := solve(refWS, a, ref, b)
		if refErr != nil {
			t.Fatalf("n=%d: serial reference failed: %v", n, refErr)
		}

		for _, size := range teamSizes {
			for _, fused := range []bool{false, true} {
				if fused {
					ParMinPhase = 1
				} else {
					ParMinPhase = 1 << 30
				}
				tm := NewTeam(size)
				ws := NewWorkspace()
				ws.SetTeam(tm)
				x := NewVector(n)
				stats, err, flops := solve(ws, a, x, b)
				tm.Close()
				label := fmt.Sprintf("n=%d team=%d fused=%v", n, size, fused)
				if err != nil {
					t.Fatalf("%s: solve failed: %v", label, err)
				}
				checkSame(t, size, label, x, ref)
				if stats.Iterations != refStats.Iterations {
					t.Errorf("%s: %d iterations, serial took %d", label, stats.Iterations, refStats.Iterations)
				}
				if math.Float64bits(stats.Residual) != math.Float64bits(refStats.Residual) {
					t.Errorf("%s: residual %v, serial %v (bit difference)", label, stats.Residual, refStats.Residual)
				}
				if flops != refFlops {
					t.Errorf("%s: %d flops, serial charged %d", label, flops, refFlops)
				}
			}
			ParMinPhase = 1
		}
	}
}

func TestFusedBiCGStabMatchesUnfused(t *testing.T) { testFusedMatchesUnfused(t, bicgstabSolver) }

func TestFusedGMRESMatchesUnfused(t *testing.T) { testFusedMatchesUnfused(t, gmresSolver) }

func TestFusedILUMatchesUnfused(t *testing.T) { testFusedMatchesUnfused(t, iluSolver) }

// TestPhaseSerialFallback pins the serial interpretation RunPhase uses
// below the cut-over (and on nil teams): reductions must reproduce the
// chunk-ordered serial fold at exact chunk-boundary lengths.
func TestPhaseSerialFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var tm *Team // nil team: RunPhase must interpret serially
	for _, n := range []int{1, redChunk - 1, redChunk, redChunk + 1, 2*redChunk + 5} {
		x := randVec(rng, n)
		y := randVec(rng, n)
		dst := NewVector(n)
		alpha := 0.75
		atol, rtol := 1e-6, 1e-4
		var p Phase
		p.Reset(n)
		p.AXPYTo(dst, y, &alpha, x)
		p.Dot(0, x, y)
		p.WRMS(1, x, y, &atol, &rtol)
		tm.RunPhase(&p)
		want := NewVector(n)
		for i := range want {
			want[i] = y[i] + alpha*x[i]
		}
		checkSame(t, 1, fmt.Sprintf("serial phase AXPYTo n=%d", n), dst, want)
		if got, wantDot := p.Fold(0), x.Dot(y, nil); got != wantDot {
			t.Errorf("n=%d: phase Dot fold = %v, want %v", n, got, wantDot)
		}
		wrms := math.Sqrt(p.Fold(1) / float64(n))
		if want := x.WRMSNorm(y, atol, rtol, nil); wrms != want {
			t.Errorf("n=%d: phase WRMS = %v, want %v", n, wrms, want)
		}
	}
}

// TestFusedPhaseAllocFree asserts the fused iteration bodies stay off the
// heap once the workspace is warm: plan rebuilding reuses the step and
// partial arrays, and a phase dispatch passes everything through the Team
// fields.
func TestFusedPhaseAllocFree(t *testing.T) {
	lowerParMins(t)
	rng := rand.New(rand.NewSource(31))
	const n = 8192
	a := tridiagOperator(n)
	b := randVec(rng, n)
	x := NewVector(n)
	tm := NewTeam(4)
	defer tm.Close()
	ws := NewWorkspace()
	ws.SetTeam(tm)
	solve := func() {
		x.Fill(0)
		if _, err := ws.BiCGStab(a, x, b, 1e-10, 300, nil); err != nil {
			t.Fatal(err)
		}
		x.Fill(0)
		if _, err := ws.GMRES(a, x, b, 1e-10, 30, 300, nil); err != nil {
			t.Fatal(err)
		}
	}
	solve() // warm: grows vectors, basis, plan arrays and partials once
	if allocs := testing.AllocsPerRun(5, solve); allocs != 0 {
		t.Fatalf("warm fused solves allocate %v per run, want 0", allocs)
	}
}

// TestCalibrateRespectsKnobs checks the calibration contract that a knob
// the caller already moved off its default is never overwritten, while
// untouched knobs do get calibrated values consistent with the report.
func TestCalibrateRespectsKnobs(t *testing.T) {
	savedVec, savedRed, savedRows, savedLvl, savedPh := ParMinVec, ParMinRed, ParMinRows, ParMinLevelRows, ParMinPhase
	t.Cleanup(func() {
		ParMinVec, ParMinRed, ParMinRows, ParMinLevelRows, ParMinPhase = savedVec, savedRed, savedRows, savedLvl, savedPh
	})
	ParMinVec, ParMinRed, ParMinRows, ParMinLevelRows, ParMinPhase = 7, defParMinRed, defParMinRows, defParMinLevelRows, defParMinPhase
	cal := calibrate()
	if ParMinVec != 7 {
		t.Errorf("calibrate overwrote an explicitly set knob: ParMinVec = %d, want 7", ParMinVec)
	}
	if cal.ParMinVec != 7 {
		t.Errorf("calibration report ParMinVec = %d, want the in-effect 7", cal.ParMinVec)
	}
	if cal.ParMinRed != ParMinRed || cal.ParMinPhase != ParMinPhase {
		t.Errorf("calibration report (%d, %d) disagrees with in-effect knobs (%d, %d)",
			cal.ParMinRed, cal.ParMinPhase, ParMinRed, ParMinPhase)
	}
	if cal.EffectiveProcs < 2 {
		if !cal.Sequentialized || cal.ParMinPhase != knobCeiling {
			t.Errorf("1-proc host must sequentialize: Sequentialized=%v ParMinPhase=%d", cal.Sequentialized, cal.ParMinPhase)
		}
	} else {
		if cal.Sequentialized {
			t.Errorf("%d-proc host must not sequentialize", cal.EffectiveProcs)
		}
		if cal.ParMinPhase < redChunk {
			t.Errorf("calibrated ParMinPhase = %d below one chunk", cal.ParMinPhase)
		}
	}
	if cal.ElemNs <= 0 {
		t.Errorf("ElemNs = %v, want > 0", cal.ElemNs)
	}
}

// BenchmarkTeamDispatch compares the dispatch tax of an unfused four-op
// sequence (four wake/park round-trips) against the same work as one fused
// phase (a single round-trip): the headline number of the fused-phase
// layer. The phase cut-overs are forced low so the team paths run even
// when a calibrated process would sequentialize.
func BenchmarkTeamDispatch(b *testing.B) {
	savedVec, savedRed, savedPh := ParMinVec, ParMinRed, ParMinPhase
	ParMinVec, ParMinRed, ParMinPhase = 1, 1, 1
	b.Cleanup(func() { ParMinVec, ParMinRed, ParMinPhase = savedVec, savedRed, savedPh })
	const n = 1 << 14
	rng := rand.New(rand.NewSource(37))
	x := randVec(rng, n)
	y := randVec(rng, n)
	d := randVec(rng, n)
	dst := NewVector(n)
	alpha := 0.5
	for _, size := range []int{2, 4} {
		b.Run(fmt.Sprintf("unfused/team=%d", size), func(b *testing.B) {
			tm := NewTeam(size)
			defer tm.Close()
			b.ReportAllocs()
			sink := 0.0
			for i := 0; i < b.N; i++ {
				tm.Copy(dst, x)
				tm.AXPY(dst, alpha, y, nil)
				tm.MulElem(dst, d, dst, nil)
				sink += tm.Dot(dst, y, nil)
			}
			benchSink = sink
		})
		b.Run(fmt.Sprintf("fused/team=%d", size), func(b *testing.B) {
			tm := NewTeam(size)
			defer tm.Close()
			var p Phase
			p.Reset(n)
			p.Copy(dst, x)
			p.AXPY(dst, &alpha, y)
			p.MulElem(dst, d, dst)
			p.Dot(0, dst, y)
			b.ReportAllocs()
			sink := 0.0
			for i := 0; i < b.N; i++ {
				tm.RunPhase(&p)
				sink += p.Fold(0)
			}
			benchSink = sink
		})
	}
}

var benchSink float64

package linalg

import (
	"fmt"
	"math"
)

// GMRES solves A x = b with restarted GMRES(m), Jacobi preconditioned (on
// the right), to relative residual tol. x is the initial guess and is
// overwritten. restart <= 0 picks 30; maxIter <= 0 picks 4*n total
// iterations. GMRES is the classic alternative to BiCGStab for the
// nonsymmetric advection-diffusion systems of the Rosenbrock stages: it
// never breaks down and its residual is monotone, at the price of storing
// the Krylov basis. It allocates a fresh workspace (including the basis);
// hot loops should hold a Workspace and call its GMRES method instead.
func GMRES(a *CSR, x, b Vector, tol float64, restart, maxIter int, ops *Ops) (SolveStats, error) {
	return NewWorkspace().GMRES(a, x, b, tol, restart, maxIter, ops)
}

// GMRES is the workspace-pooled variant of the package-level GMRES: the
// Krylov basis, Hessenberg and rotation buffers come from ws and are
// reused across calls, so steady-state calls allocate nothing.
//
//vetsparse:allocfree
func (ws *Workspace) GMRES(a *CSR, x, b Vector, tol float64, restart, maxIter int, ops *Ops) (SolveStats, error) {
	n := a.Rows
	if a.Cols != n || len(x) != n || len(b) != n {
		panic(fmt.Sprintf("linalg: GMRES dims %dx%d, x[%d], b[%d]", a.Rows, a.Cols, len(x), len(b)))
	}
	if restart <= 0 {
		restart = 30
	}
	if restart > n {
		restart = n
	}
	if maxIter <= 0 {
		maxIter = 4 * n
		if maxIter < 100 {
			maxIter = 100
		}
	}
	m := restart
	ws.ensureGMRES(n, m)
	invD := ws.invD
	a.Diagonal(invD)
	for i, d := range invD {
		if d == 0 {
			invD[i] = 1
		} else {
			invD[i] = 1 / d
		}
	}
	ops.Add(int64(n))

	tm := ws.team
	bNorm := tm.Norm2(b, ops)
	if bNorm == 0 {
		x.Fill(0)
		return SolveStats{}, nil
	}
	// Fused Arnoldi: one dispatch per column covers the preconditioner
	// application, the SpMV and the whole Gram-Schmidt sweep, instead of
	// 3 + 2(k+1) op dispatches.
	fused := ws.fusedOK(n)
	if fused {
		ws.buildArnoldiPhase(a)
	}

	// Krylov basis and Hessenberg in column-major slices.
	v := ws.basis
	h := ws.hess
	cs := ws.cs
	sn := ws.sn
	g := ws.g
	w := ws.w
	z := ws.z

	total := 0
	for total < maxIter {
		// r0 = b - A x.
		tm.MulVec(a, w, x, ops)
		tm.Sub(v[0], b, w, ops)
		beta := tm.Norm2(v[0], ops)
		if beta/bNorm <= tol {
			return SolveStats{Iterations: total, Residual: beta / bNorm}, nil
		}
		tm.ScaleTo(v[0], 1/beta, v[0], ops)
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		for ; k < m && total < maxIter; k++ {
			total++
			if fused {
				ws.karn = k
				tm.RunPhase(&ws.phArn)
				// Static steps (MulElemAt + SpMV), the per-column
				// Gram-Schmidt dots and AXPYs, and the final norm —
				// exactly the unfused charges.
				ops.Add(ws.phArn.Flops())
				ops.Add(int64(k+1)*4*int64(n) + 2*int64(n))
				h[k+1][k] = math.Sqrt(ws.phArn.Fold((k + 1) & 1))
			} else {
				// w = A M^-1 v_k (right preconditioning).
				tm.MulElem(z, invD, v[k], ops)
				tm.MulVec(a, w, z, ops)
				// Modified Gram-Schmidt.
				for i := 0; i <= k; i++ {
					h[i][k] = tm.Dot(w, v[i], ops)
					tm.AXPY(w, -h[i][k], v[i], ops)
				}
				h[k+1][k] = tm.Norm2(w, ops)
			}
			if h[k+1][k] > 1e-300 {
				tm.ScaleTo(v[k+1], 1/h[k+1][k], w, ops)
			} else {
				v[k+1].Fill(0) // happy breakdown: exact solution in span
			}
			// Apply previous Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			// New rotation to annihilate h[k+1][k].
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k] = h[k][k] / denom
				sn[k] = h[k+1][k] / denom
			}
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]
			ops.Add(int64(8 * k))
			if math.Abs(g[k+1])/bNorm <= tol {
				k++
				break
			}
		}
		// Solve the k x k triangular system h y = g.
		y := ws.y[:k]
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h[i][j] * y[j]
			}
			if h[i][i] == 0 {
				return SolveStats{Iterations: total}, ErrBreakdown
			}
			y[i] = s / h[i][i]
		}
		// x += M^-1 (V y).
		z.Fill(0)
		for j := 0; j < k; j++ {
			tm.AXPY(z, y[j], v[j], ops)
		}
		tm.MulElemAdd(x, invD, z, ops)

		tm.MulVec(a, w, x, ops)
		tm.Sub(w, b, w, ops)
		res := tm.Norm2(w, ops) / bNorm
		if res <= tol {
			return SolveStats{Iterations: total, Residual: res}, nil
		}
	}
	return SolveStats{Iterations: total, Residual: math.NaN()}, ErrNoConvergence
}

// Package linalg provides the sparse linear algebra used inside the
// sparse-grid solver's subsolve routine: dense vectors, compressed sparse
// row (CSR) matrices, a direct tridiagonal solver and a Jacobi-
// preconditioned BiCGStab iteration for the (I - gamma*tau*J) systems of
// the Rosenbrock integrator.
//
// All entry points optionally account floating-point work into an Ops
// counter so the cluster simulator's work model can be calibrated against
// the real code.
package linalg

import (
	"fmt"
	"math"
)

// Ops accumulates floating-point operation counts. A nil *Ops is legal
// everywhere and disables counting.
type Ops struct {
	Flops int64
}

// Add accounts n floating-point operations.
//
//vetsparse:allocfree
func (o *Ops) Add(n int64) {
	if o != nil {
		o.Flops += n
	}
}

// Vector is a dense vector of float64.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Fill sets every component to s.
//
//vetsparse:allocfree
func (v Vector) Fill(s float64) {
	for i := range v {
		v[i] = s
	}
}

// AXPY computes v += a*x.
//
//vetsparse:allocfree
func (v Vector) AXPY(a float64, x Vector, ops *Ops) {
	if len(v) != len(x) {
		panic(fmt.Sprintf("linalg: axpy length mismatch %d != %d", len(v), len(x)))
	}
	for i := range v {
		v[i] += a * x[i]
	}
	ops.Add(2 * int64(len(v)))
}

// Scale computes v *= a.
//
//vetsparse:allocfree
func (v Vector) Scale(a float64, ops *Ops) {
	for i := range v {
		v[i] *= a
	}
	ops.Add(int64(len(v)))
}

// Dot returns the inner product of v and x, summed through the fixed-chunk
// ordered reduction: per-chunk partials of redChunk elements folded in chunk
// order. The chunking fixes the association of the sum independently of how
// many workers compute the chunks, which is what lets Team.Dot return
// bit-for-bit this value at any team size. Vectors shorter than one chunk
// reduce to the classic single running sum.
//
//vetsparse:allocfree
func (v Vector) Dot(x Vector, ops *Ops) float64 {
	if len(v) != len(x) {
		panic(fmt.Sprintf("linalg: dot length mismatch %d != %d", len(v), len(x)))
	}
	s := 0.0
	for lo := 0; lo < len(v); lo += redChunk {
		hi := lo + redChunk
		if hi > len(v) {
			hi = len(v)
		}
		p := 0.0
		for i := lo; i < hi; i++ {
			p += v[i] * x[i]
		}
		s += p
	}
	ops.Add(2 * int64(len(v)))
	return s
}

// Norm2 returns the Euclidean norm of v.
//
//vetsparse:allocfree
func (v Vector) Norm2(ops *Ops) float64 {
	return math.Sqrt(v.Dot(v, ops))
}

// NormInf returns the maximum absolute component of v.
//
//vetsparse:allocfree
func (v Vector) NormInf() float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// WRMSNorm returns the weighted root-mean-square norm used by the step-size
// controller: sqrt(mean((v_i / (atol + rtol*|ref_i|))^2)). Like Dot it sums
// through the fixed-chunk ordered reduction so Team.WRMSNorm matches it
// bit-for-bit.
//
//vetsparse:allocfree
func (v Vector) WRMSNorm(ref Vector, atol, rtol float64, ops *Ops) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for lo := 0; lo < len(v); lo += redChunk {
		hi := lo + redChunk
		if hi > len(v) {
			hi = len(v)
		}
		p := 0.0
		for i := lo; i < hi; i++ {
			w := atol + rtol*math.Abs(ref[i])
			e := v[i] / w
			p += e * e
		}
		s += p
	}
	ops.Add(5 * int64(len(v)))
	return math.Sqrt(s / float64(len(v)))
}

// Sub computes v = a - b component-wise.
//
//vetsparse:allocfree
func (v Vector) Sub(a, b Vector, ops *Ops) {
	for i := range v {
		v[i] = a[i] - b[i]
	}
	ops.Add(int64(len(v)))
}

package linalg

import "fmt"

// ParMinPhase is the smallest vector length worth a fused-phase dispatch:
// below it RunPhase interprets the micro-program serially on the caller.
// Exported tuning knob like the other ParMin cut-overs; results are
// bit-for-bit identical either way. Calibrate replaces the default with a
// measured break-even on process startup.
var ParMinPhase = defParMinPhase

// phaseOp selects one step of a fused-phase micro-program.
type phaseOp uint8

const (
	phBarrier phaseOp = iota
	phCopy
	phUpdateP
	phMulElem
	phMulElemAt
	phAXPY
	phAXPYTo
	phAXPY2
	phScaleTo
	phSpMV
	phDot
	phWRMS
	phMGS
)

// phaseStep is one op of a micro-program. Operands are bound at build
// time; scalar operands are bound as pointers so the caller can update
// them between dispatches without rebuilding the plan.
type phaseStep struct {
	op       phaseOp
	dst      Vector
	x, y     Vector
	m        *CSR
	a, b     *float64
	slot     int
	basis    []Vector
	hess     [][]float64
	k        *int
}

// Phase is a fused kernel micro-program: a short sequence of vector ops,
// SpMV steps and chunked reductions that one Team dispatch executes end to
// end, instead of paying a wake/park round-trip per op. Workers own
// chunk-aligned index ranges, so an elementwise step and a following
// reduction read exactly the elements the same worker just wrote — the only
// synchronization a phase ever needs is a barrier before a step that reads
// outside its own range (SpMV reading the whole input vector, or the
// Gram-Schmidt fold of all partials).
//
// Determinism: every elementwise step computes each element with exactly
// the serial arithmetic, and every reduction fills the same fixed
// redChunk partials Vector.Dot folds in chunk order, so a phase is
// bit-for-bit identical to the unfused op sequence at any team size —
// including the serial interpretation RunPhase falls back to below
// ParMinPhase.
//
// A Phase is built once per solve (Reset + builder calls; backing arrays
// are reused, so steady-state rebuilding allocates nothing) and dispatched
// many times. It is owned by one goroutine and one Team at a time.
type Phase struct {
	steps    []phaseStep
	n        int
	nch      int
	barriers int   // static phBarrier count (MGS adds k+1 at run time)
	flops    int64 // static flop charge of one run (MGS steps excluded)

	// part holds the reduction slots. Two slots exist so a phase can
	// carry two independent reductions, and so the Gram-Schmidt loop can
	// ping-pong between them: while one worker still folds slot i&1,
	// others may already fill slot (i+1)&1 for the next projection.
	part [2][]float64
}

// Reset clears the program and binds it to length-n vectors. The step and
// partial backing arrays are kept, so rebuilding a plan of the same shape
// allocates nothing.
func (p *Phase) Reset(n int) {
	p.steps = p.steps[:0]
	p.n = n
	p.nch = (n + redChunk - 1) / redChunk
	p.barriers = 0
	p.flops = 0
}

// Len returns the number of steps in the program.
func (p *Phase) Len() int { return len(p.steps) }

// Flops returns the static flop charge of one run of the program
// (Gram-Schmidt steps charge per dispatched column and are excluded).
func (p *Phase) Flops() int64 { return p.flops }

func (p *Phase) check(v Vector) Vector {
	if len(v) != p.n {
		panic(fmt.Sprintf("linalg: phase operand length %d != %d", len(v), p.n))
	}
	return v
}

func (p *Phase) checkSlot(slot int) int {
	if slot != 0 && slot != 1 {
		panic(fmt.Sprintf("linalg: phase reduction slot %d out of range", slot))
	}
	p.part[slot] = growF(p.part[slot], p.nch)
	return slot
}

// Barrier inserts a full-team barrier: every write of the preceding steps
// is visible to every worker after it. Needed exactly before a step that
// reads outside the worker's own range.
func (p *Phase) Barrier() {
	p.steps = append(p.steps, phaseStep{op: phBarrier})
	p.barriers++
}

// Copy appends dst = src.
func (p *Phase) Copy(dst, src Vector) {
	p.steps = append(p.steps, phaseStep{op: phCopy, dst: p.check(dst), x: p.check(src)})
}

// UpdateP appends the BiCGStab search-direction update
// pv = r + beta*(pv - omega*v).
func (p *Phase) UpdateP(pv, r, v Vector, beta, omega *float64) {
	p.steps = append(p.steps, phaseStep{op: phUpdateP, dst: p.check(pv), x: p.check(r), y: p.check(v), a: beta, b: omega})
	p.flops += 4 * int64(p.n)
}

// MulElem appends dst = d .* x.
func (p *Phase) MulElem(dst, d, x Vector) {
	p.steps = append(p.steps, phaseStep{op: phMulElem, dst: p.check(dst), x: p.check(d), y: p.check(x)})
	p.flops += int64(p.n)
}

// MulElemAt appends dst = d .* basis[*k]: the Arnoldi preconditioner
// application, indirected through the current Krylov column.
func (p *Phase) MulElemAt(dst, d Vector, basis []Vector, k *int) {
	p.steps = append(p.steps, phaseStep{op: phMulElemAt, dst: p.check(dst), x: p.check(d), basis: basis, k: k})
	p.flops += int64(p.n)
}

// AXPY appends y += a*x.
func (p *Phase) AXPY(y Vector, a *float64, x Vector) {
	p.steps = append(p.steps, phaseStep{op: phAXPY, dst: p.check(y), x: p.check(x), a: a})
	p.flops += 2 * int64(p.n)
}

// AXPYTo appends dst = y + a*x (dst may alias y or x).
func (p *Phase) AXPYTo(dst, y Vector, a *float64, x Vector) {
	p.steps = append(p.steps, phaseStep{op: phAXPYTo, dst: p.check(dst), y: p.check(y), x: p.check(x), a: a})
	p.flops += 2 * int64(p.n)
}

// AXPY2 appends dst += a*x + b*y.
func (p *Phase) AXPY2(dst Vector, a *float64, x Vector, b *float64, y Vector) {
	p.steps = append(p.steps, phaseStep{op: phAXPY2, dst: p.check(dst), x: p.check(x), y: p.check(y), a: a, b: b})
	p.flops += 4 * int64(p.n)
}

// ScaleTo appends dst = a*x (dst may alias x).
func (p *Phase) ScaleTo(dst Vector, a *float64, x Vector) {
	p.steps = append(p.steps, phaseStep{op: phScaleTo, dst: p.check(dst), x: p.check(x), a: a})
	p.flops += int64(p.n)
}

// MulVec appends y = m*x. m must be square of the phase dimension; the
// rows are split exactly like the vector elements (chunk-aligned), so
// later reductions over y need no barrier — but a Barrier is required
// before this step whenever x was written earlier in the phase, because
// a row's dot product reads the whole of x.
func (p *Phase) MulVec(m *CSR, y, x Vector) {
	if m.Rows != p.n || m.Cols != p.n {
		panic(fmt.Sprintf("linalg: phase SpMV dims %dx%d != %d", m.Rows, m.Cols, p.n))
	}
	p.steps = append(p.steps, phaseStep{op: phSpMV, dst: p.check(y), x: p.check(x), m: m})
	p.flops += 2 * int64(m.NNZ())
}

// Dot appends the chunked partial fill of a·b into reduction slot 0 or 1;
// the caller reads the result with Fold after the dispatch.
func (p *Phase) Dot(slot int, a, b Vector) {
	p.steps = append(p.steps, phaseStep{op: phDot, slot: p.checkSlot(slot), x: p.check(a), y: p.check(b)})
	p.flops += 2 * int64(p.n)
}

// WRMS appends the chunked partial fill of the weighted squared-error sum
// of v against ref into a reduction slot: Fold(slot) afterwards is the s of
// Vector.WRMSNorm, i.e. the norm is sqrt(Fold(slot)/n).
func (p *Phase) WRMS(slot int, v, ref Vector, atol, rtol *float64) {
	p.steps = append(p.steps, phaseStep{op: phWRMS, slot: p.checkSlot(slot), x: p.check(v), y: p.check(ref), a: atol, b: rtol})
	p.flops += 5 * int64(p.n)
}

// MGS appends the modified Gram-Schmidt sweep of the Arnoldi step: for
// i = 0..*k it computes h := <w, basis[i]> through the ordered chunk fold,
// stores it into hess[i][*k], and updates w -= h*basis[i]; finally it fills
// a reduction slot with the partials of <w, w>. The final-norm slot
// alternates with the column: read it with Fold((*k + 1) & 1). Charges are
// dynamic (per column), so the caller accounts (k+1)*4n + 2n itself.
func (p *Phase) MGS(w Vector, basis []Vector, hess [][]float64, k *int) {
	p.checkSlot(0)
	p.checkSlot(1)
	p.steps = append(p.steps, phaseStep{op: phMGS, dst: p.check(w), basis: basis, hess: hess, k: k})
}

// Fold returns the ordered chunk fold of a reduction slot — exactly the
// sum the serial Vector.Dot / WRMSNorm accumulates, independent of which
// worker filled which chunk.
//
//vetsparse:allocfree
func (p *Phase) Fold(slot int) float64 {
	s := 0.0
	for _, q := range p.part[slot][:p.nch] {
		s += q
	}
	return s
}

// barrierCount returns how many barriers one run of the program crosses,
// including the per-column barriers of a Gram-Schmidt step.
//
//vetsparse:allocfree
func (p *Phase) barrierCount() int64 {
	b := int64(p.barriers)
	for i := range p.steps {
		if p.steps[i].op == phMGS {
			b += int64(*p.steps[i].k) + 1
		}
	}
	return b
}

// exec interprets the program for worker w over its chunk-aligned range.
// Reductions fill exactly the chunks the range covers, so the union over
// the team is every chunk, each written once.
//
//vetsparse:allocfree
func (p *Phase) exec(t *Team, w int) {
	lo, hi := t.split[w], t.split[w+1]
	c0 := lo / redChunk
	c1 := (hi + redChunk - 1) / redChunk
	for si := range p.steps {
		st := &p.steps[si]
		switch st.op {
		case phBarrier:
			t.phaseBarrier()
		case phCopy:
			copy(st.dst[lo:hi], st.x[lo:hi])
		case phUpdateP:
			pv, r, v, beta, omega := st.dst, st.x, st.y, *st.a, *st.b
			for i := lo; i < hi; i++ {
				pv[i] = r[i] + beta*(pv[i]-omega*v[i])
			}
		case phMulElem:
			dst, d, x := st.dst, st.x, st.y
			for i := lo; i < hi; i++ {
				dst[i] = d[i] * x[i]
			}
		case phMulElemAt:
			dst, d, x := st.dst, st.x, st.basis[*st.k]
			for i := lo; i < hi; i++ {
				dst[i] = d[i] * x[i]
			}
		case phAXPY:
			y, x, a := st.dst, st.x, *st.a
			for i := lo; i < hi; i++ {
				y[i] += a * x[i]
			}
		case phAXPYTo:
			dst, y, x, a := st.dst, st.y, st.x, *st.a
			for i := lo; i < hi; i++ {
				dst[i] = y[i] + a*x[i]
			}
		case phAXPY2:
			dst, x, y, a, b := st.dst, st.x, st.y, *st.a, *st.b
			for i := lo; i < hi; i++ {
				dst[i] += a*x[i] + b*y[i]
			}
		case phScaleTo:
			dst, x, a := st.dst, st.x, *st.a
			for i := lo; i < hi; i++ {
				dst[i] = a * x[i]
			}
		case phSpMV:
			st.m.mulVecRange(st.dst, st.x, lo, hi)
		case phDot:
			dotChunks(p.part[st.slot], st.x, st.y, c0, c1)
		case phWRMS:
			wrmsChunks(p.part[st.slot], st.x, st.y, *st.a, *st.b, c0, c1)
		case phMGS:
			p.mgs(t, st, w, lo, hi, c0, c1)
		}
	}
}

// mgs runs worker w's share of the modified Gram-Schmidt sweep. Every
// worker folds the full partial set itself after the barrier — the fold is
// the identical float on every worker, so the following AXPY coefficient
// is too, and only worker 0 writes it into the Hessenberg. The partial
// slots ping-pong with the column index so a worker filling column i+1
// never overwrites chunks another worker is still folding for column i
// (the barrier of column i+1 orders any reuse of column i's slot).
//
//vetsparse:allocfree
func (p *Phase) mgs(t *Team, st *phaseStep, w, lo, hi, c0, c1 int) {
	k := *st.k
	wv := st.dst
	nch := p.nch
	for i := 0; i <= k; i++ {
		vi := st.basis[i]
		part := p.part[i&1]
		dotChunks(part, wv, vi, c0, c1)
		t.phaseBarrier()
		h := 0.0
		for _, q := range part[:nch] {
			h += q
		}
		if w == 0 {
			st.hess[i][k] = h
		}
		a := -h
		for j := lo; j < hi; j++ {
			wv[j] += a * vi[j]
		}
	}
	dotChunks(p.part[(k+1)&1], wv, wv, c0, c1)
}

// runSerial interprets the whole program on the calling goroutine:
// the small-n / no-team fallback of RunPhase. Barriers are no-ops, every
// other step is the full-range serial kernel, reductions fill every chunk
// — bit-for-bit what the parallel interpretation produces.
//
//vetsparse:allocfree
func (p *Phase) runSerial() {
	n := p.n
	nch := p.nch
	for si := range p.steps {
		st := &p.steps[si]
		switch st.op {
		case phBarrier:
		case phCopy:
			copy(st.dst, st.x)
		case phUpdateP:
			pv, r, v, beta, omega := st.dst, st.x, st.y, *st.a, *st.b
			for i := 0; i < n; i++ {
				pv[i] = r[i] + beta*(pv[i]-omega*v[i])
			}
		case phMulElem:
			dst, d, x := st.dst, st.x, st.y
			for i := 0; i < n; i++ {
				dst[i] = d[i] * x[i]
			}
		case phMulElemAt:
			dst, d, x := st.dst, st.x, st.basis[*st.k]
			for i := 0; i < n; i++ {
				dst[i] = d[i] * x[i]
			}
		case phAXPY:
			y, x, a := st.dst, st.x, *st.a
			for i := 0; i < n; i++ {
				y[i] += a * x[i]
			}
		case phAXPYTo:
			dst, y, x, a := st.dst, st.y, st.x, *st.a
			for i := 0; i < n; i++ {
				dst[i] = y[i] + a*x[i]
			}
		case phAXPY2:
			dst, x, y, a, b := st.dst, st.x, st.y, *st.a, *st.b
			for i := 0; i < n; i++ {
				dst[i] += a*x[i] + b*y[i]
			}
		case phScaleTo:
			dst, x, a := st.dst, st.x, *st.a
			for i := 0; i < n; i++ {
				dst[i] = a * x[i]
			}
		case phSpMV:
			st.m.mulVecRange(st.dst, st.x, 0, st.m.Rows)
		case phDot:
			dotChunks(p.part[st.slot], st.x, st.y, 0, nch)
		case phWRMS:
			wrmsChunks(p.part[st.slot], st.x, st.y, *st.a, *st.b, 0, nch)
		case phMGS:
			k := *st.k
			wv := st.dst
			for i := 0; i <= k; i++ {
				vi := st.basis[i]
				part := p.part[i&1]
				dotChunks(part, wv, vi, 0, nch)
				h := 0.0
				for _, q := range part[:nch] {
					h += q
				}
				st.hess[i][k] = h
				a := -h
				for j := 0; j < n; j++ {
					wv[j] += a * vi[j]
				}
			}
			dotChunks(p.part[(k+1)&1], wv, wv, 0, nch)
		}
	}
}

package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// lowerParMins drops every parallel cut-over to 1 for the duration of a
// test, so team dispatch is exercised even on tiny vectors, and restores
// the defaults on cleanup.
func lowerParMins(t *testing.T) {
	t.Helper()
	savedVec, savedRed, savedRows, savedLvl, savedPh := ParMinVec, ParMinRed, ParMinRows, ParMinLevelRows, ParMinPhase
	ParMinVec, ParMinRed, ParMinRows, ParMinLevelRows, ParMinPhase = 1, 1, 1, 1, 1
	t.Cleanup(func() {
		ParMinVec, ParMinRed, ParMinRows, ParMinLevelRows, ParMinPhase = savedVec, savedRed, savedRows, savedLvl, savedPh
	})
}

func randVec(rng *rand.Rand, n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// teamSizes are the team widths every kernel test sweeps, including a size
// that does not divide typical lengths evenly.
var teamSizes = []int{1, 2, 3, 4}

// TestTeamKernelsBitIdentical checks every Team kernel against its serial
// twin, element for element and bit for bit, across team sizes — the core
// determinism claim of the intra-grid parallel layer.
func TestTeamKernelsBitIdentical(t *testing.T) {
	lowerParMins(t)
	rng := rand.New(rand.NewSource(7))
	const n = 5000 // spans several redChunk boundaries, not a multiple
	a := gridOperator(70)
	x := randVec(rng, n)
	y := randVec(rng, n)
	d := randVec(rng, n)
	gx := randVec(rng, a.Cols)

	for _, size := range teamSizes {
		tm := NewTeam(size)
		defer tm.Close()

		// Reductions: identical association via the fixed-chunk fold.
		var serOps, parOps Ops
		if got, want := tm.Dot(x, y, &parOps), x.Dot(y, &serOps); got != want {
			t.Errorf("size %d: Dot = %v, want %v", size, got, want)
		}
		if got, want := tm.Norm2(x, &parOps), math.Sqrt(x.Dot(x, &serOps)); got != want {
			t.Errorf("size %d: Norm2 = %v, want %v", size, got, want)
		}
		if got, want := tm.WRMSNorm(x, y, 1e-3, 1e-3, &parOps), x.WRMSNorm(y, 1e-3, 1e-3, &serOps); got != want {
			t.Errorf("size %d: WRMSNorm = %v, want %v", size, got, want)
		}

		// SpMV, split by nnz.
		ys, yp := NewVector(a.Rows), NewVector(a.Rows)
		a.MulVec(ys, gx, &serOps)
		tm.MulVec(a, yp, gx, &parOps)
		checkSame(t, size, "MulVec", yp, ys)

		// Shifted-operator value rewrite.
		so1, so2 := NewShiftedOperator(a), NewShiftedOperator(a)
		ms := so1.Update(0.037, &serOps)
		mp := so2.UpdateWith(tm, 0.037, &parOps)
		for i := range ms.Val {
			if ms.Val[i] != mp.Val[i] {
				t.Fatalf("size %d: ShiftedOperator val[%d] = %v, want %v", size, i, mp.Val[i], ms.Val[i])
			}
		}

		// Elementwise kernels: compute each element with serial arithmetic.
		ser, par := NewVector(n), NewVector(n)

		copy(ser, y)
		ser.AXPY(0.71, x, &serOps)
		copy(par, y)
		tm.AXPY(par, 0.71, x, &parOps)
		checkSame(t, size, "AXPY", par, ser)

		for i := range ser {
			ser[i] = y[i] + (-0.31)*x[i]
		}
		serOps.Add(2 * int64(n)) // the hand-rolled loops charge the kernels' rates
		tm.AXPYTo(par, y, -0.31, x, &parOps)
		checkSame(t, size, "AXPYTo", par, ser)

		copy(ser, d)
		copy(par, d)
		for i := range ser {
			ser[i] += 0.5*x[i] + (-1.25)*y[i]
		}
		serOps.Add(4 * int64(n))
		tm.AXPY2(par, 0.5, x, -1.25, y, &parOps)
		checkSame(t, size, "AXPY2", par, ser)

		copy(ser, d)
		copy(par, d)
		for i := range ser {
			ser[i] = y[i] + 0.9*(ser[i]-0.4*x[i])
		}
		serOps.Add(4 * int64(n))
		tm.UpdateP(par, y, x, 0.9, 0.4, &parOps)
		checkSame(t, size, "UpdateP", par, ser)

		for i := range ser {
			ser[i] = d[i] * x[i]
		}
		serOps.Add(int64(n))
		tm.MulElem(par, d, x, &parOps)
		checkSame(t, size, "MulElem", par, ser)

		copy(ser, y)
		copy(par, y)
		for i := range ser {
			ser[i] += d[i] * x[i]
		}
		serOps.Add(2 * int64(n))
		tm.MulElemAdd(par, d, x, &parOps)
		checkSame(t, size, "MulElemAdd", par, ser)

		for i := range ser {
			ser[i] = 1.75 * x[i]
		}
		serOps.Add(int64(n))
		tm.ScaleTo(par, 1.75, x, &parOps)
		checkSame(t, size, "ScaleTo", par, ser)

		ser.Sub(y, x, &serOps)
		tm.Sub(par, y, x, &parOps)
		checkSame(t, size, "Sub", par, ser)

		tm.Copy(par, x)
		checkSame(t, size, "Copy", par, x)

		// Exact flop accounting is part of the contract: tests elsewhere pin
		// flop counts, so the team kernels must charge exactly the serial
		// amounts.
		if parOps.Flops != serOps.Flops {
			t.Errorf("size %d: team flops %d != serial flops %d", size, parOps.Flops, serOps.Flops)
		}
	}
}

func checkSame(t *testing.T, size int, kernel string, got, want Vector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("size %d: %s length %d, want %d", size, kernel, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("size %d: %s[%d] = %v, want %v (bit difference)", size, kernel, i, got[i], want[i])
		}
	}
}

// TestTeamReductionChunkBoundaries pins the ordered reduction at the exact
// chunk-boundary lengths — one below, at, and above each multiple of
// redChunk — where a partial chunk or an off-by-one split would show up.
func TestTeamReductionChunkBoundaries(t *testing.T) {
	lowerParMins(t)
	rng := rand.New(rand.NewSource(11))
	var sizes []int
	for _, base := range []int{redChunk, 2 * redChunk, 3 * redChunk} {
		sizes = append(sizes, base-1, base, base+1)
	}
	sizes = append(sizes, 1, 2, redChunk/2)
	for _, size := range teamSizes {
		tm := NewTeam(size)
		defer tm.Close()
		for _, n := range sizes {
			a := randVec(rng, n)
			b := randVec(rng, n)
			if got, want := tm.Dot(a, b, nil), a.Dot(b, nil); got != want {
				t.Errorf("team %d, n=%d: Dot = %v, want %v", size, n, got, want)
			}
			if got, want := tm.WRMSNorm(a, b, 1e-6, 1e-4, nil), a.WRMSNorm(b, 1e-6, 1e-4, nil); got != want {
				t.Errorf("team %d, n=%d: WRMSNorm = %v, want %v", size, n, got, want)
			}
		}
	}
}

// TestSerialReductionUnchangedBelowOneChunk guards the compatibility claim
// of the chunked serial Dot: for vectors at most one chunk long the fold
// degenerates to the classic single running sum.
func TestSerialReductionUnchangedBelowOneChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 7, redChunk - 1, redChunk} {
		a := randVec(rng, n)
		b := randVec(rng, n)
		want := 0.0
		for i := range a {
			want += a[i] * b[i]
		}
		if got := a.Dot(b, nil); got != want {
			t.Errorf("n=%d: Dot = %v, want running sum %v", n, got, want)
		}
	}
}

// TestILUSolveWithMatchesSolve checks the level-scheduled parallel
// triangular solve against the serial natural-order solve, bit for bit.
func TestILUSolveWithMatchesSolve(t *testing.T) {
	lowerParMins(t)
	rng := rand.New(rand.NewSource(5))
	a := gridOperator(40) // 1600 rows, plenty of levels
	f, err := NewILU0(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(rng, a.Rows)
	want := NewVector(a.Rows)
	var serOps Ops
	f.Solve(want, b, &serOps)
	for _, size := range teamSizes {
		tm := NewTeam(size)
		got := NewVector(a.Rows)
		var parOps Ops
		f.SolveWith(tm, got, b, &parOps)
		tm.Close()
		checkSame(t, size, "ILU0.SolveWith", got, want)
		if parOps.Flops != serOps.Flops {
			t.Errorf("size %d: SolveWith flops %d != Solve flops %d", size, parOps.Flops, serOps.Flops)
		}
	}
}

// TestTeamRun covers the generic range-split entry point used by the
// prolongation.
func TestTeamRun(t *testing.T) {
	for _, size := range teamSizes {
		tm := NewTeam(size)
		out := make([]int, 1000)
		tm.Run(len(out), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = i * i
			}
		})
		tm.Close()
		for i, v := range out {
			if v != i*i {
				t.Fatalf("size %d: out[%d] = %d, want %d", size, i, v, i*i)
			}
		}
	}
}

// TestTeamSteadyStateAllocFree asserts that a warmed-up team dispatches its
// kernels without allocating: opcode dispatch, argument passing through
// fields, and the pre-grown partial buffer must stay off the heap.
func TestTeamSteadyStateAllocFree(t *testing.T) {
	lowerParMins(t)
	rng := rand.New(rand.NewSource(13))
	const n = 4096
	a := gridOperator(64)
	x := randVec(rng, n)
	y := randVec(rng, n)
	gx := randVec(rng, a.Cols)
	gy := NewVector(a.Rows)
	tm := NewTeam(4)
	defer tm.Close()
	// Warm up: grows the partial buffer once.
	tm.Dot(x, y, nil)
	if allocs := testing.AllocsPerRun(50, func() {
		tm.Dot(x, y, nil)
		tm.WRMSNorm(x, y, 1e-3, 1e-3, nil)
		tm.AXPY(y, 0.5, x, nil)
		tm.MulVec(a, gy, gx, nil)
		tm.Copy(y, x)
	}); allocs != 0 {
		t.Fatalf("steady-state team dispatch allocates %v per run, want 0", allocs)
	}
}

// countingObserver records imbalance observations.
type countingObserver struct {
	n    int
	last int64
}

func (o *countingObserver) Observe(us int64) { o.n++; o.last = us }

// TestTeamImbalanceObserver checks that an installed observer sees one
// measurement per parallel dispatch and none for inline (serial) kernels.
func TestTeamImbalanceObserver(t *testing.T) {
	lowerParMins(t)
	rng := rand.New(rand.NewSource(17))
	x := randVec(rng, 2048)
	y := randVec(rng, 2048)
	tm := NewTeam(2)
	defer tm.Close()
	obs := &countingObserver{}
	tm.SetObserver(obs)
	tm.Dot(x, y, nil)
	tm.AXPY(y, 0.5, x, nil)
	if obs.n != 2 {
		t.Fatalf("observer saw %d dispatches, want 2", obs.n)
	}
	if obs.last < 0 {
		t.Fatalf("imbalance %d us < 0", obs.last)
	}
	// A single team runs inline and must not report.
	single := NewTeam(1)
	single.SetObserver(obs)
	single.Dot(x, y, nil)
	if obs.n != 2 {
		t.Fatalf("single-worker team reported a dispatch (saw %d, want 2)", obs.n)
	}
}

// TestTeamCloseFallsBackToSerial checks that kernels still work — serially —
// after Close, which matters for the deferred Close in panicking workers.
func TestTeamCloseFallsBackToSerial(t *testing.T) {
	lowerParMins(t)
	rng := rand.New(rand.NewSource(19))
	x := randVec(rng, 512)
	y := randVec(rng, 512)
	tm := NewTeam(4)
	tm.Close()
	tm.Close() // idempotent
	if got, want := tm.Dot(x, y, nil), x.Dot(y, nil); got != want {
		t.Fatalf("closed team Dot = %v, want %v", got, want)
	}
	if tm.Size() != 1 {
		t.Fatalf("closed team Size = %d, want 1", tm.Size())
	}
}

// TestNilTeam checks the nil-receiver contract: every entry point runs the
// serial kernel.
func TestNilTeam(t *testing.T) {
	var tm *Team
	x := Vector{1, 2, 3}
	y := Vector{4, 5, 6}
	if got, want := tm.Dot(x, y, nil), x.Dot(y, nil); got != want {
		t.Fatalf("nil team Dot = %v, want %v", got, want)
	}
	if tm.Size() != 1 {
		t.Fatalf("nil team Size = %d, want 1", tm.Size())
	}
	tm.SetObserver(nil) // must not panic
	tm.Close()          // must not panic
}

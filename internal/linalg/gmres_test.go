package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGMRESLaplace(t *testing.T) {
	n := 64
	a := laplace1D(n)
	want := NewVector(n)
	for i := range want {
		want[i] = math.Cos(float64(i) / 10)
	}
	b := NewVector(n)
	a.MulVec(b, want, nil)
	x := NewVector(n)
	// Restarted GMRES(30) needs a few hundred iterations on the plain
	// Laplacian (restart stagnation); full GMRES would need ~34.
	st, err := GMRES(a, x, b, 1e-12, 0, 2000, nil)
	if err != nil {
		t.Fatalf("GMRES: %v after %d iters", err, st.Iterations)
	}
	for i := range x {
		if !almost(x[i], want[i], 1e-7) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestGMRESNonsymmetric(t *testing.T) {
	n := 60
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i > 0 {
			b.Add(i, i-1, -2.5)
		}
		if i < n-1 {
			b.Add(i, i+1, -0.5)
		}
	}
	a := b.Build()
	rng := rand.New(rand.NewSource(3))
	want := NewVector(n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	rhs := NewVector(n)
	a.MulVec(rhs, want, nil)
	x := NewVector(n)
	if _, err := GMRES(a, x, rhs, 1e-12, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almost(x[i], want[i], 1e-6) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestGMRESRestartSmallerThanN(t *testing.T) {
	// Force several restart cycles with a tiny Krylov space. (A pure
	// Laplacian would stagnate under heavy restarting — the classic
	// GMRES(m) failure mode — so use a diagonally dominant operator.)
	n := 40
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 3)
		if i > 0 {
			b.Add(i, i-1, -1)
		}
		if i < n-1 {
			b.Add(i, i+1, -1)
		}
	}
	a := b.Build()
	want := NewVector(n)
	want.Fill(1)
	rhs := NewVector(n)
	a.MulVec(rhs, want, nil)
	x := NewVector(n)
	st, err := GMRES(a, x, rhs, 1e-10, 5, 0, nil)
	if err != nil {
		t.Fatalf("GMRES(5): %v", err)
	}
	if st.Iterations <= 5 {
		t.Fatalf("expected multiple restart cycles, got %d iterations", st.Iterations)
	}
	for i := range x {
		if !almost(x[i], want[i], 1e-7) {
			t.Fatalf("x[%d] = %g", i, x[i])
		}
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	a := laplace1D(8)
	x := NewVector(8)
	x.Fill(2)
	if _, err := GMRES(a, x, NewVector(8), 1e-10, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestGMRESExactInitialGuess(t *testing.T) {
	a := laplace1D(16)
	want := NewVector(16)
	want.Fill(3)
	rhs := NewVector(16)
	a.MulVec(rhs, want, nil)
	x := want.Clone()
	st, err := GMRES(a, x, rhs, 1e-10, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 0 {
		t.Fatalf("iterations = %d, want 0", st.Iterations)
	}
}

func TestGMRESIterationBudget(t *testing.T) {
	a := laplace1D(128)
	rhs := NewVector(128)
	rhs.Fill(1)
	x := NewVector(128)
	if _, err := GMRES(a, x, rhs, 1e-14, 4, 6, nil); err == nil {
		t.Fatal("expected ErrNoConvergence with a 6-iteration budget")
	}
}

func TestGMRESAgreesWithBiCGStab(t *testing.T) {
	n := 50
	b := NewBuilder(n, n)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		row := 0.0
		for j := i - 2; j <= i+2; j++ {
			if j < 0 || j >= n || j == i {
				continue
			}
			v := rng.Float64() - 0.5
			b.Add(i, j, v)
			row += math.Abs(v)
		}
		b.Add(i, i, row+1)
	}
	a := b.Build()
	rhs := NewVector(n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x1 := NewVector(n)
	x2 := NewVector(n)
	if _, err := GMRES(a, x1, rhs, 1e-12, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := BiCGStab(a, x2, rhs, 1e-12, 0, nil); err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if !almost(x1[i], x2[i], 1e-7*(1+math.Abs(x1[i]))) {
			t.Fatalf("solvers disagree at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
}

// Property: GMRES meets the requested residual on diagonally dominant
// systems.
func TestPropGMRESResidual(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 4
		rng := rand.New(rand.NewSource(seed))
		bld := NewBuilder(n, n)
		for i := 0; i < n; i++ {
			row := 0.0
			for j := 0; j < n; j++ {
				if j == i || rng.Float64() > 0.3 {
					continue
				}
				v := rng.NormFloat64()
				bld.Add(i, j, v)
				row += math.Abs(v)
			}
			bld.Add(i, i, row+1+rng.Float64())
		}
		a := bld.Build()
		rhs := NewVector(n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x := NewVector(n)
		if _, err := GMRES(a, x, rhs, 1e-9, 0, 0, nil); err != nil {
			return false
		}
		r := NewVector(n)
		a.MulVec(r, x, nil)
		r.Sub(rhs, r, nil)
		return r.Norm2(nil) <= 1e-7*(1+rhs.Norm2(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package linalg

import "testing"

// gridOperator assembles the 5-point upwind/central advection-diffusion
// stencil of an n x n interior grid — the level-5 sparse-grid operator is
// n = 2^(2+5) - 1 = 127 — without importing internal/pde (which would be
// an import cycle: grid depends on linalg).
func gridOperator(n int) *CSR {
	h := 1.0 / float64(n+1)
	dw := 0.01 / (h * h)
	aw := 1.0 / h
	as := 0.5 / h
	diag := -4*dw - aw - as
	b := NewBuilder(n*n, n*n)
	idx := func(ix, iy int) int { return iy*n + ix }
	for iy := 0; iy < n; iy++ {
		for ix := 0; ix < n; ix++ {
			row := idx(ix, iy)
			b.Add(row, row, diag)
			if ix > 0 {
				b.Add(row, idx(ix-1, iy), dw+aw)
			}
			if ix < n-1 {
				b.Add(row, idx(ix+1, iy), dw)
			}
			if iy > 0 {
				b.Add(row, idx(ix, iy-1), dw+as)
			}
			if iy < n-1 {
				b.Add(row, idx(ix, iy+1), dw)
			}
		}
	}
	return b.Build()
}

// level5 is the interior dimension of the level-5 paper grid (root 2).
const level5 = 1<<7 - 1

// BenchmarkShiftedScaled is the seed path: a full Builder assembly of
// I - s*A on every step-size change.
func BenchmarkShiftedScaled(b *testing.B) {
	a := gridOperator(level5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := 0.01 + float64(i%7)*1e-4 // vary s as the controller does
		_ = a.ShiftedScaled(s)
	}
}

// BenchmarkShiftedUpdate is the new path: rewrite the cached pattern's
// values in place. Must beat BenchmarkShiftedScaled by >= 5x.
func BenchmarkShiftedUpdate(b *testing.B) {
	a := gridOperator(level5)
	op := NewShiftedOperator(a)
	op.Update(0.01, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := 0.01 + float64(i%7)*1e-4
		op.Update(s, nil)
	}
}

// BenchmarkShiftedUpdateHeld measures the skip path: the controller kept
// the step, so the matrix is already current.
func BenchmarkShiftedUpdateHeld(b *testing.B) {
	a := gridOperator(level5)
	op := NewShiftedOperator(a)
	op.Update(0.01, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Update(0.01, nil)
	}
}

func BenchmarkMulVec(b *testing.B) {
	a := gridOperator(level5)
	x := NewVector(a.Cols)
	y := NewVector(a.Rows)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	b.ReportAllocs()
	b.SetBytes(int64(16 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x, nil)
	}
}

// BenchmarkBuilderBuild measures the one-time assembly with the O(nnz)
// counting sort (the seed used sort.Slice).
func BenchmarkBuilderBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gridOperator(level5)
	}
}

// TestShiftedUpdateAllocFree asserts the in-place update allocates
// nothing.
func TestShiftedUpdateAllocFree(t *testing.T) {
	a := gridOperator(31)
	op := NewShiftedOperator(a)
	op.Update(0.01, nil)
	s := 0.01
	if n := testing.AllocsPerRun(100, func() {
		s += 1e-6
		op.Update(s, nil)
	}); n != 0 {
		t.Fatalf("ShiftedOperator.Update allocates %v per call, want 0", n)
	}
}

package linalg

import "fmt"

// CSR is a sparse matrix in compressed sparse row format.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// Builder assembles a sparse matrix by accumulating (row, col, value)
// entries; duplicate coordinates are summed. Finish with Build.
type Builder struct {
	rows, cols int
	entries    []entry
}

type entry struct {
	r, c int
	v    float64
}

// NewBuilder creates a builder for an rows x cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Add accumulates v at (r, c).
func (b *Builder) Add(r, c int, v float64) {
	if r < 0 || r >= b.rows || c < 0 || c >= b.cols {
		panic(fmt.Sprintf("linalg: entry (%d,%d) outside %dx%d", r, c, b.rows, b.cols))
	}
	b.entries = append(b.entries, entry{r, c, v})
}

// Build sorts, merges and converts the accumulated entries to CSR. The
// sort is a two-pass LSD radix over (column, row) using counting buckets —
// O(nnz + rows + cols) instead of a comparison sort — and stable, so
// duplicate coordinates are summed in insertion order.
func (b *Builder) Build() *CSR {
	b.entries = countingSort(b.entries, b.rows, b.cols)
	m := &CSR{Rows: b.rows, Cols: b.cols, RowPtr: make([]int, b.rows+1)}
	for i := 0; i < len(b.entries); {
		e := b.entries[i]
		v := e.v
		j := i + 1
		for j < len(b.entries) && b.entries[j].r == e.r && b.entries[j].c == e.c {
			v += b.entries[j].v
			j++
		}
		m.ColIdx = append(m.ColIdx, e.c)
		m.Val = append(m.Val, v)
		m.RowPtr[e.r+1] = len(m.Val)
		i = j
	}
	for r := 1; r <= b.rows; r++ {
		if m.RowPtr[r] == 0 {
			m.RowPtr[r] = m.RowPtr[r-1]
		}
	}
	return m
}

// countingSort orders entries by (row, column) with a stable two-pass
// least-significant-digit radix sort: first a counting pass over columns,
// then one over rows. Both passes are linear scatter-gathers.
func countingSort(entries []entry, rows, cols int) []entry {
	if len(entries) < 2 {
		return entries
	}
	tmp := make([]entry, len(entries))
	// Pass 1: stable counting sort by column into tmp.
	count := make([]int, maxInt(rows, cols)+1)
	for _, e := range entries {
		count[e.c+1]++
	}
	for c := 1; c < cols; c++ {
		count[c+1] += count[c]
	}
	for _, e := range entries {
		tmp[count[e.c]] = e
		count[e.c]++
	}
	// Pass 2: stable counting sort by row back into entries.
	for i := range count {
		count[i] = 0
	}
	for _, e := range tmp {
		count[e.r+1]++
	}
	for r := 1; r < rows; r++ {
		count[r+1] += count[r]
	}
	for _, e := range tmp {
		entries[count[e.r]] = e
		count[e.r]++
	}
	return entries
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes y = A*x.
//
//vetsparse:allocfree
func (m *CSR) MulVec(y, x Vector, ops *Ops) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: mulvec dims %dx%d with x[%d], y[%d]", m.Rows, m.Cols, len(x), len(y)))
	}
	m.mulVecRange(y, x, 0, m.Rows)
	ops.Add(2 * int64(m.NNZ()))
}

// mulVecRange computes y[r] = (A*x)[r] for rows r in [r0, r1). Each output
// row is an independent serial dot product, so any row partitioning yields
// exactly MulVec's values.
//
//vetsparse:allocfree
func (m *CSR) mulVecRange(y, x Vector, r0, r1 int) {
	for r := r0; r < r1; r++ {
		s := 0.0
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[r] = s
	}
}

// Diagonal extracts the main diagonal into d (missing entries are zero).
//
//vetsparse:allocfree
func (m *CSR) Diagonal(d Vector) {
	for r := 0; r < m.Rows; r++ {
		d[r] = 0
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			if m.ColIdx[k] == r {
				d[r] = m.Val[k]
				break
			}
		}
	}
}

// At returns the (r, c) entry (zero if not stored). Intended for tests;
// O(row nnz).
func (m *CSR) At(r, c int) float64 {
	for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
		if m.ColIdx[k] == c {
			return m.Val[k]
		}
	}
	return 0
}

// ShiftedScaled returns I - s*A for a square A: the Rosenbrock system
// matrix with s = gamma*tau. It assembles a fresh matrix on every call;
// hot loops that vary only s should hold a ShiftedOperator instead, whose
// Update rewrites the values in place.
func (m *CSR) ShiftedScaled(s float64) *CSR {
	if m.Rows != m.Cols {
		panic("linalg: ShiftedScaled needs a square matrix")
	}
	b := NewBuilder(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		hasDiag := false
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			c := m.ColIdx[k]
			v := -s * m.Val[k]
			if c == r {
				v += 1
				hasDiag = true
			}
			b.Add(r, c, v)
		}
		if !hasDiag {
			b.Add(r, r, 1)
		}
	}
	return b.Build()
}

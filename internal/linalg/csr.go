package linalg

import (
	"fmt"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// Builder assembles a sparse matrix by accumulating (row, col, value)
// entries; duplicate coordinates are summed. Finish with Build.
type Builder struct {
	rows, cols int
	entries    []entry
}

type entry struct {
	r, c int
	v    float64
}

// NewBuilder creates a builder for an rows x cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Add accumulates v at (r, c).
func (b *Builder) Add(r, c int, v float64) {
	if r < 0 || r >= b.rows || c < 0 || c >= b.cols {
		panic(fmt.Sprintf("linalg: entry (%d,%d) outside %dx%d", r, c, b.rows, b.cols))
	}
	b.entries = append(b.entries, entry{r, c, v})
}

// Build sorts, merges and converts the accumulated entries to CSR.
func (b *Builder) Build() *CSR {
	sort.Slice(b.entries, func(i, j int) bool {
		if b.entries[i].r != b.entries[j].r {
			return b.entries[i].r < b.entries[j].r
		}
		return b.entries[i].c < b.entries[j].c
	})
	m := &CSR{Rows: b.rows, Cols: b.cols, RowPtr: make([]int, b.rows+1)}
	for i := 0; i < len(b.entries); {
		e := b.entries[i]
		v := e.v
		j := i + 1
		for j < len(b.entries) && b.entries[j].r == e.r && b.entries[j].c == e.c {
			v += b.entries[j].v
			j++
		}
		m.ColIdx = append(m.ColIdx, e.c)
		m.Val = append(m.Val, v)
		m.RowPtr[e.r+1] = len(m.Val)
		i = j
	}
	for r := 1; r <= b.rows; r++ {
		if m.RowPtr[r] == 0 {
			m.RowPtr[r] = m.RowPtr[r-1]
		}
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes y = A*x.
func (m *CSR) MulVec(y, x Vector, ops *Ops) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: mulvec dims %dx%d with x[%d], y[%d]", m.Rows, m.Cols, len(x), len(y)))
	}
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[r] = s
	}
	ops.Add(2 * int64(m.NNZ()))
}

// Diagonal extracts the main diagonal into d (missing entries are zero).
func (m *CSR) Diagonal(d Vector) {
	for r := 0; r < m.Rows; r++ {
		d[r] = 0
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			if m.ColIdx[k] == r {
				d[r] = m.Val[k]
				break
			}
		}
	}
}

// At returns the (r, c) entry (zero if not stored). Intended for tests;
// O(row nnz).
func (m *CSR) At(r, c int) float64 {
	for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
		if m.ColIdx[k] == c {
			return m.Val[k]
		}
	}
	return 0
}

// ShiftedScaled returns I - s*A for a square A: the Rosenbrock system
// matrix with s = gamma*tau.
func (m *CSR) ShiftedScaled(s float64) *CSR {
	if m.Rows != m.Cols {
		panic("linalg: ShiftedScaled needs a square matrix")
	}
	b := NewBuilder(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		hasDiag := false
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			c := m.ColIdx[k]
			v := -s * m.Val[k]
			if c == r {
				v += 1
				hasDiag = true
			}
			b.Add(r, c, v)
		}
		if !hasDiag {
			b.Add(r, r, 1)
		}
	}
	return b.Build()
}

package linalg

import "math"

// ShiftedOperator maintains M = I - s*A for a fixed square A across many
// values of the shift s. The Rosenbrock integrator needs exactly this: the
// stage matrix I - gamma*tau*J shares J's sparsity pattern (plus any
// structurally missing diagonal entries), so the merged pattern can be
// built once and every step-size change only rewrites the value array in
// place — O(nnz) data movement instead of a full Builder assembly.
//
// The operator assumes A's values do not change between Update calls (the
// paper's problem is linear, so J is constant); call Invalidate after
// mutating A.
type ShiftedOperator struct {
	a *CSR
	m *CSR

	// apos[p] is the index into a.Val feeding m.Val[p], or -1 for a
	// diagonal entry that is structurally missing in A.
	apos []int
	// diag[r] is the index of row r's diagonal entry in m.Val.
	diag []int

	s     float64
	valid bool
}

// NewShiftedOperator builds the merged pattern of I and A once. The
// returned operator's matrix holds no meaningful values until Update is
// called.
func NewShiftedOperator(a *CSR) *ShiftedOperator {
	if a.Rows != a.Cols {
		panic("linalg: ShiftedOperator needs a square matrix")
	}
	n := a.Rows
	o := &ShiftedOperator{a: a, diag: make([]int, n)}
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	// First pass: count entries per row (A's row plus one for a missing
	// diagonal) to size the arrays exactly.
	nnz := 0
	for r := 0; r < n; r++ {
		rowN := a.RowPtr[r+1] - a.RowPtr[r]
		hasDiag := false
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if a.ColIdx[k] == r {
				hasDiag = true
				break
			}
		}
		if !hasDiag {
			rowN++
		}
		nnz += rowN
	}
	m.ColIdx = make([]int, 0, nnz)
	m.Val = make([]float64, nnz)
	o.apos = make([]int, 0, nnz)
	// Second pass: merge the (sorted) row of A with the diagonal.
	for r := 0; r < n; r++ {
		hasDiag := false
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			c := a.ColIdx[k]
			if !hasDiag && c > r {
				// Insert the structurally missing diagonal before the
				// first super-diagonal entry.
				o.diag[r] = len(m.ColIdx)
				m.ColIdx = append(m.ColIdx, r)
				o.apos = append(o.apos, -1)
				hasDiag = true
			}
			if c == r {
				o.diag[r] = len(m.ColIdx)
				hasDiag = true
			}
			m.ColIdx = append(m.ColIdx, c)
			o.apos = append(o.apos, k)
		}
		if !hasDiag {
			o.diag[r] = len(m.ColIdx)
			m.ColIdx = append(m.ColIdx, r)
			o.apos = append(o.apos, -1)
		}
		m.RowPtr[r+1] = len(m.ColIdx)
	}
	o.m = m
	return o
}

// Matrix returns the operator's matrix I - s*A for the last Update shift.
// The returned CSR is owned by the operator: its values are rewritten in
// place by the next Update.
func (o *ShiftedOperator) Matrix() *CSR { return o.m }

// A returns the source matrix the operator was built for.
func (o *ShiftedOperator) A() *CSR { return o.a }

// Shift returns the shift of the values currently held in Matrix (NaN
// before the first Update).
func (o *ShiftedOperator) Shift() float64 {
	if !o.valid {
		return math.NaN()
	}
	return o.s
}

// Invalidate forces the next Update to rewrite the values even if the
// shift is unchanged (needed only if A's values were mutated).
func (o *ShiftedOperator) Invalidate() { o.valid = false }

// Update sets M = I - s*A, rewriting only the value array in place, and
// returns M. When s equals the previous shift the matrix is already
// current and the call is free: the step-size controller frequently clamps
// to the same h, and then nothing at all needs to move.
//
// The per-entry arithmetic matches CSR.ShiftedScaled exactly, so the
// resulting values are bit-identical to a from-scratch assembly.
//
//vetsparse:allocfree
func (o *ShiftedOperator) Update(s float64, ops *Ops) *CSR {
	if o.valid && s == o.s {
		return o.m
	}
	o.updateRange(s, 0, o.m.Rows)
	ops.Add(2 * int64(len(o.m.Val)))
	o.s, o.valid = s, true
	return o.m
}

// UpdateWith is Update with the value rewrite split across a Team by row
// ranges. Each stored entry is written exactly once with the serial
// arithmetic, so the values are bit-identical to Update's at any team size.
// A nil team (or one below the parallel cut-over) falls back to Update.
//
//vetsparse:allocfree
func (o *ShiftedOperator) UpdateWith(t *Team, s float64, ops *Ops) *CSR {
	if o.valid && s == o.s {
		return o.m
	}
	if t.seq() || o.m.Rows < ParMinRows {
		return o.Update(s, ops)
	}
	t.so, t.alpha = o, s
	t.op = opShiftedUpdate
	t.splitRowsByNNZ(o.m)
	t.kick()
	ops.Add(2 * int64(len(o.m.Val)))
	o.s, o.valid = s, true
	return o.m
}

// updateRange rewrites the values of rows [r0, r1) for shift s.
//
//vetsparse:allocfree
func (o *ShiftedOperator) updateRange(s float64, r0, r1 int) {
	aval := o.a.Val
	for r := r0; r < r1; r++ {
		for p := o.m.RowPtr[r]; p < o.m.RowPtr[r+1]; p++ {
			k := o.apos[p]
			if k < 0 {
				o.m.Val[p] = 1
				continue
			}
			v := -s * aval[k]
			if p == o.diag[r] {
				v += 1
			}
			o.m.Val[p] = v
		}
	}
}

// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// Simulated processes are goroutines that run one at a time under the
// control of a scheduler, advancing a shared virtual clock. The kernel is
// deterministic: given the same program, every run produces the same event
// ordering (ties in time are broken by a monotonically increasing sequence
// number).
//
// The package is the substrate that stands in for real elapsed time in the
// cluster experiments: computation and communication delays become Hold
// calls, and contention for machines and network links is expressed with
// Resource and Store.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Time is a point in virtual time, in seconds.
type Time = float64

// Infinity is a time later than any event the kernel will ever schedule.
const Infinity Time = math.MaxFloat64

// killed is the sentinel panic value used to unwind blocked processes when
// the environment shuts down.
type killed struct{}

// event is a scheduled wake-up of a process or a function call.
type event struct {
	t   Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() (Time, bool) { // earliest time, if any
	if len(h) == 0 {
		return 0, false
	}
	return h[0].t, true
}

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, spawn processes with Spawn, then call Run.
// An Env must not be shared between operating-system threads while Run is
// executing; all interaction with it happens from simulated processes.
type Env struct {
	now     Time
	queue   eventHeap
	seq     int64
	yield   chan struct{} // handed a token whenever a process blocks or ends
	procs   []*Proc
	blocked map[*Proc]string // procs waiting on a condition (not in queue)
	dead    bool
}

// NewEnv returns an empty simulation environment with the clock at zero.
func NewEnv() *Env {
	return &Env{
		yield:   make(chan struct{}),
		blocked: make(map[*Proc]string),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// schedule enqueues fn to run at time t (>= now).
func (e *Env) schedule(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule in the past: %g < %g", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, event{t: t, seq: e.seq, fn: fn})
}

// Proc is a simulated process. Its body runs in its own goroutine but only
// one process executes at a time; every blocking call (Hold, Resource
// acquisition, Store access, ...) hands control back to the scheduler.
type Proc struct {
	Name   string
	env    *Env
	resume chan struct{}
	done   bool
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Spawn creates a process executing body and schedules it to start at the
// current virtual time. It may be called before Run or from inside a
// running process.
func (e *Env) Spawn(name string, body func(*Proc)) *Proc {
	return e.SpawnAt(e.now, name, body)
}

// SpawnAt creates a process that starts at time t (>= now).
func (e *Env) SpawnAt(t Time, name string, body func(*Proc)) *Proc {
	p := &Proc{Name: name, env: e, resume: make(chan struct{})}
	e.procs = append(e.procs, p)
	e.schedule(t, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(killed); ok {
						p.done = true
						e.yield <- struct{}{} // hand control back to Shutdown
						return
					}
					panic(r)
				}
			}()
			<-p.resume
			if e.dead {
				panic(killed{})
			}
			body(p)
			p.done = true
			e.yield <- struct{}{}
		}()
		p.resume <- struct{}{}
		<-e.yield
	})
	return p
}

// pause blocks the calling process until the scheduler resumes it.
// why describes what the process is waiting for (used in deadlock reports).
func (p *Proc) pause(why string) {
	p.env.blocked[p] = why
	p.env.yield <- struct{}{}
	<-p.resume
	if p.env.dead {
		panic(killed{})
	}
}

// wake moves a blocked process back onto the event queue at the current
// time. It must only be called from inside the scheduler (i.e. from another
// running process or an event function).
func (p *Proc) wake() {
	delete(p.env.blocked, p)
	p.env.schedule(p.env.now, func() {
		p.resume <- struct{}{}
		<-p.env.yield
	})
}

// Hold suspends the process for d seconds of virtual time.
func (p *Proc) Hold(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative hold: %g", d))
	}
	e := p.env
	e.schedule(e.now+d, func() {
		p.resume <- struct{}{}
		<-e.yield
	})
	e.yield <- struct{}{}
	<-p.resume
	if e.dead {
		panic(killed{})
	}
}

// Run executes scheduled events in time order until the queue is empty,
// then returns the final clock value. Processes still blocked on a
// condition when the queue drains are reported by Blocked.
func (e *Env) Run() Time { return e.RunUntil(Infinity) }

// RunUntil executes events with time <= limit and returns the clock value
// (the time of the last executed event, or limit if events remain).
func (e *Env) RunUntil(limit Time) Time {
	for {
		t, ok := e.queue.peek()
		if !ok {
			return e.now
		}
		if t > limit {
			e.now = limit
			return e.now
		}
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.t
		ev.fn()
	}
}

// Blocked returns a description of every process that is still waiting on a
// condition (sorted by name). A non-empty result after Run means the model
// deadlocked or was abandoned mid-wait.
func (e *Env) Blocked() []string {
	var out []string
	for p, why := range e.blocked {
		out = append(out, fmt.Sprintf("%s: %s", p.Name, why))
	}
	sort.Strings(out)
	return out
}

// Shutdown unwinds every blocked or scheduled process so their goroutines
// exit. The environment must not be used afterwards. It is safe to call
// when nothing is blocked.
func (e *Env) Shutdown() {
	e.dead = true
	for p := range e.blocked {
		delete(e.blocked, p)
		p.resume <- struct{}{}
		<-e.yield
	}
	// Drain remaining timed events (held processes, pending spawns): each
	// resumed process observes e.dead and unwinds via the killed sentinel.
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(event)
		ev.fn()
	}
}

// waiter is an entry in a FIFO wait list.
type waiter struct {
	p   *Proc
	n   int // amount requested (Resource) — unused elsewhere
	seq int64
}

// fifo is a FIFO list of blocked processes.
type fifo struct {
	list []waiter
}

func (f *fifo) push(w waiter) { f.list = append(f.list, w) }
func (f *fifo) empty() bool   { return len(f.list) == 0 }
func (f *fifo) peek() waiter  { return f.list[0] }
func (f *fifo) pop() waiter   { w := f.list[0]; f.list = f.list[1:]; return w }
func (f *fifo) len() int      { return len(f.list) }
func (f *fifo) remove(p *Proc) {
	for i, w := range f.list {
		if w.p == p {
			f.list = append(f.list[:i], f.list[i+1:]...)
			return
		}
	}
}

// Resource is a counted resource with FIFO discipline, e.g. a CPU (capacity
// 1) or a bounded pool.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  fifo
	// usage integrates inUse over time for utilisation reporting.
	lastT    Time
	busyArea float64
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: env, name: name, capacity: capacity}
}

// Capacity returns the total capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

func (r *Resource) account() {
	r.busyArea += float64(r.inUse) * (r.env.now - r.lastT)
	r.lastT = r.env.now
}

// Utilisation returns the time-averaged fraction of capacity in use since
// the start of the simulation.
func (r *Resource) Utilisation() float64 {
	r.account()
	if r.env.now == 0 {
		return 0
	}
	return r.busyArea / (float64(r.capacity) * r.env.now)
}

// Acquire blocks the process until n units are available, then takes them.
func (r *Resource) Acquire(p *Proc, n int) {
	if n < 1 || n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d from resource %q of capacity %d", n, r.name, r.capacity))
	}
	if r.waiters.empty() && r.inUse+n <= r.capacity {
		r.account()
		r.inUse += n
		return
	}
	r.env.seq++
	r.waiters.push(waiter{p: p, n: n, seq: r.env.seq})
	p.pause("acquire " + r.name)
}

// Release returns n units and wakes waiting processes in FIFO order.
func (r *Resource) Release(n int) {
	r.account()
	r.inUse -= n
	if r.inUse < 0 {
		panic(fmt.Sprintf("sim: resource %q released below zero", r.name))
	}
	for !r.waiters.empty() && r.inUse+r.waiters.peek().n <= r.capacity {
		w := r.waiters.pop()
		r.account()
		r.inUse += w.n
		w.p.wake()
	}
}

// Store is an unbounded FIFO queue of values with blocking Get, usable as a
// mailbox between simulated processes.
type Store[T any] struct {
	env     *Env
	name    string
	items   []T
	waiters fifo
}

// NewStore creates an empty store.
func NewStore[T any](env *Env, name string) *Store[T] {
	return &Store[T]{env: env, name: name}
}

// Len returns the number of queued items.
func (s *Store[T]) Len() int { return len(s.items) }

// Put appends v and wakes the longest-waiting getter, if any. It never
// blocks and may be called from event functions as well as processes.
func (s *Store[T]) Put(v T) {
	s.items = append(s.items, v)
	if !s.waiters.empty() {
		s.waiters.pop().p.wake()
	}
}

// Get removes and returns the oldest item, blocking while the store is
// empty.
func (s *Store[T]) Get(p *Proc) T {
	for len(s.items) == 0 {
		s.env.seq++
		s.waiters.push(waiter{p: p, seq: s.env.seq})
		p.pause("get " + s.name)
	}
	v := s.items[0]
	s.items = s.items[1:]
	// If items remain and other getters wait, pass the baton.
	if len(s.items) > 0 && !s.waiters.empty() {
		s.waiters.pop().p.wake()
	}
	return v
}

// TryGet removes and returns the oldest item without blocking.
func (s *Store[T]) TryGet() (T, bool) {
	var zero T
	if len(s.items) == 0 {
		return zero, false
	}
	v := s.items[0]
	s.items = s.items[1:]
	return v, true
}

// Signal is a broadcast condition: Wait blocks until the next Fire.
type Signal struct {
	env     *Env
	name    string
	waiters fifo
	fired   int
}

// NewSignal creates a signal.
func NewSignal(env *Env, name string) *Signal {
	return &Signal{env: env, name: name}
}

// Wait blocks the process until the signal fires.
func (s *Signal) Wait(p *Proc) {
	s.env.seq++
	s.waiters.push(waiter{p: p, seq: s.env.seq})
	p.pause("wait " + s.name)
}

// Fire wakes every process currently waiting and returns how many were
// woken.
func (s *Signal) Fire() int {
	n := s.waiters.len()
	for !s.waiters.empty() {
		s.waiters.pop().p.wake()
	}
	s.fired++
	return n
}

// Fired returns how many times the signal has fired.
func (s *Signal) Fired() int { return s.fired }

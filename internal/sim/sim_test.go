package sim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("Now() = %g, want 0", e.Now())
	}
	if got := e.Run(); got != 0 {
		t.Fatalf("Run() with no events = %g, want 0", got)
	}
}

func TestHoldAdvancesClock(t *testing.T) {
	e := NewEnv()
	var at Time
	e.Spawn("p", func(p *Proc) {
		p.Hold(2.5)
		p.Hold(1.5)
		at = p.Now()
	})
	end := e.Run()
	if at != 4.0 {
		t.Errorf("process observed t=%g, want 4.0", at)
	}
	if end != 4.0 {
		t.Errorf("Run() = %g, want 4.0", end)
	}
}

func TestZeroHoldIsLegal(t *testing.T) {
	e := NewEnv()
	ran := false
	e.Spawn("p", func(p *Proc) {
		p.Hold(0)
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("process did not complete after Hold(0)")
	}
}

func TestNegativeHoldPanics(t *testing.T) {
	e := NewEnv()
	var recovered any
	e.Spawn("p", func(p *Proc) {
		defer func() { recovered = recover() }()
		p.Hold(-1)
	})
	e.Run()
	if recovered == nil {
		t.Fatal("Hold(-1) did not panic")
	}
}

func TestSpawnAtStartsLater(t *testing.T) {
	e := NewEnv()
	var start Time
	e.SpawnAt(10, "late", func(p *Proc) { start = p.Now() })
	e.Run()
	if start != 10 {
		t.Fatalf("late process started at %g, want 10", start)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	// Two processes holding identical durations must interleave in spawn
	// order, every run.
	run := func() []string {
		e := NewEnv()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					log = append(log, fmt.Sprintf("%s@%g", name, p.Now()))
					p.Hold(1)
				}
			})
		}
		e.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("trial %d: length %d != %d", trial, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d: log[%d] = %q, want %q", trial, i, got[i], first[i])
			}
		}
	}
	want := []string{"a@0", "b@0", "c@0", "a@1", "b@1", "c@1", "a@2", "b@2", "c@2"}
	for i, w := range want {
		if first[i] != w {
			t.Fatalf("log[%d] = %q, want %q", i, first[i], w)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEnv()
	var childAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Hold(3)
		p.Env().Spawn("child", func(c *Proc) {
			c.Hold(2)
			childAt = c.Now()
		})
		p.Hold(10)
	})
	e.Run()
	if childAt != 5 {
		t.Fatalf("child finished at %g, want 5", childAt)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := NewEnv()
	steps := 0
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Hold(1)
			steps++
		}
	})
	got := e.RunUntil(10.5)
	if got != 10.5 {
		t.Errorf("RunUntil = %g, want 10.5", got)
	}
	if steps != 10 {
		t.Errorf("steps = %d, want 10", steps)
	}
	e.Shutdown()
}

func TestResourceMutualExclusion(t *testing.T) {
	e := NewEnv()
	cpu := NewResource(e, "cpu", 1)
	var order []string
	worker := func(name string, hold Time) func(*Proc) {
		return func(p *Proc) {
			cpu.Acquire(p, 1)
			order = append(order, name+"+")
			p.Hold(hold)
			order = append(order, name+"-")
			cpu.Release(1)
		}
	}
	e.Spawn("a", worker("a", 5))
	e.Spawn("b", worker("b", 3))
	e.Spawn("c", worker("c", 1))
	end := e.Run()
	want := []string{"a+", "a-", "b+", "b-", "c+", "c-"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %q, want %q (full: %v)", i, order[i], want[i], order)
		}
	}
	if end != 9 {
		t.Errorf("end time = %g, want 9", end)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "r", 2)
	var maxInUse int
	for i := 0; i < 6; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			r.Acquire(p, 1)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Hold(1)
			r.Release(1)
		})
	}
	end := e.Run()
	if maxInUse != 2 {
		t.Errorf("max in use = %d, want 2", maxInUse)
	}
	if end != 3 {
		t.Errorf("end = %g, want 3 (6 unit jobs on 2 servers)", end)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "r", 1)
	var got []int
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Hold(10)
		r.Release(1)
	})
	for i := 0; i < 5; i++ {
		i := i
		e.SpawnAt(Time(i+1), fmt.Sprintf("w%d", i), func(p *Proc) {
			r.Acquire(p, 1)
			got = append(got, i)
			r.Release(1)
		})
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("grant order %v not FIFO", got)
		}
	}
}

func TestResourceUtilisation(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "r", 1)
	e.Spawn("p", func(p *Proc) {
		r.Acquire(p, 1)
		p.Hold(5)
		r.Release(1)
		p.Hold(5)
	})
	e.Run()
	if u := r.Utilisation(); math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("utilisation = %g, want 0.5", u)
	}
}

func TestReleaseBelowZeroPanics(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Release(1)
}

func TestStoreFIFO(t *testing.T) {
	e := NewEnv()
	s := NewStore[int](e, "s")
	var got []int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			s.Put(i)
			p.Hold(1)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, s.Get(p))
		}
	})
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want 0..4 in order", got)
		}
	}
}

func TestStoreBlocksWhenEmpty(t *testing.T) {
	e := NewEnv()
	s := NewStore[string](e, "s")
	var when Time
	e.Spawn("consumer", func(p *Proc) {
		s.Get(p)
		when = p.Now()
	})
	e.SpawnAt(7, "producer", func(p *Proc) { s.Put("x") })
	e.Run()
	if when != 7 {
		t.Fatalf("consumer resumed at %g, want 7", when)
	}
}

func TestStoreTryGet(t *testing.T) {
	e := NewEnv()
	s := NewStore[int](e, "s")
	if _, ok := s.TryGet(); ok {
		t.Fatal("TryGet on empty store returned ok")
	}
	s.Put(42)
	v, ok := s.TryGet()
	if !ok || v != 42 {
		t.Fatalf("TryGet = %d, %v; want 42, true", v, ok)
	}
}

func TestStoreMultipleConsumers(t *testing.T) {
	e := NewEnv()
	s := NewStore[int](e, "s")
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("c%d", i), func(p *Proc) {
			for j := 0; j < 4; j++ {
				s.Get(p)
				counts[i]++
			}
		})
	}
	e.Spawn("producer", func(p *Proc) {
		for j := 0; j < 12; j++ {
			s.Put(j)
			p.Hold(1)
		}
	})
	e.Run()
	total := counts[0] + counts[1] + counts[2]
	if total != 12 {
		t.Fatalf("consumed %d items, want 12 (counts %v, blocked %v)", total, counts, e.Blocked())
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEnv()
	sig := NewSignal(e, "go")
	woken := 0
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			sig.Wait(p)
			woken++
		})
	}
	e.SpawnAt(5, "firer", func(p *Proc) {
		if n := sig.Fire(); n != 4 {
			t.Errorf("Fire woke %d, want 4", n)
		}
	})
	e.Run()
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
	if sig.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", sig.Fired())
	}
}

func TestBlockedReportsDeadlock(t *testing.T) {
	e := NewEnv()
	s := NewStore[int](e, "mailbox")
	e.Spawn("stuck", func(p *Proc) { s.Get(p) })
	e.Run()
	b := e.Blocked()
	if len(b) != 1 {
		t.Fatalf("Blocked() = %v, want one entry", b)
	}
	e.Shutdown()
	if len(e.Blocked()) != 0 {
		t.Fatal("Blocked() non-empty after Shutdown")
	}
}

func TestShutdownUnwindsHeldProcesses(t *testing.T) {
	e := NewEnv()
	e.Spawn("sleeper", func(p *Proc) { p.Hold(1e9) })
	e.RunUntil(10)
	e.Shutdown() // must not hang or panic
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEnv()
	e.Spawn("p", func(p *Proc) { p.Hold(5) })
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.SpawnAt(1, "bad", func(*Proc) {})
}

// Property: for any sequence of non-negative holds, the final clock equals
// their sum (one process).
func TestPropHoldSum(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 50 {
			raw = raw[:50]
		}
		e := NewEnv()
		var want float64
		durations := make([]float64, len(raw))
		for i, r := range raw {
			durations[i] = float64(r) / 16.0
			want += durations[i]
		}
		e.Spawn("p", func(p *Proc) {
			for _, d := range durations {
				p.Hold(d)
			}
		})
		got := e.Run()
		return math.Abs(got-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: n unit-length jobs on a resource of capacity c finish at
// ceil(n/c) regardless of spawn interleaving details.
func TestPropResourceMakespan(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n := int(nRaw%40) + 1
		c := int(cRaw%8) + 1
		e := NewEnv()
		r := NewResource(e, "r", c)
		for i := 0; i < n; i++ {
			e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				r.Acquire(p, 1)
				p.Hold(1)
				r.Release(1)
			})
		}
		end := e.Run()
		want := math.Ceil(float64(n) / float64(c))
		return math.Abs(end-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a store delivers every item exactly once, in FIFO order for a
// single consumer.
func TestPropStoreDeliversAll(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		e := NewEnv()
		s := NewStore[int](e, "s")
		var got []int
		e.Spawn("c", func(p *Proc) {
			for i := 0; i < n; i++ {
				got = append(got, s.Get(p))
			}
		})
		e.Spawn("p", func(p *Proc) {
			for i := 0; i < n; i++ {
				s.Put(i)
				if i%3 == 0 {
					p.Hold(0.5)
				}
			}
		})
		e.Run()
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

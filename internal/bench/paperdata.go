// Package bench regenerates every table and figure of the paper's
// evaluation (§6-§7): Table 1 (sequential time, concurrent time, machines,
// speedup for levels 0-15 at tolerances 1.0e-3 and 1.0e-4), Figure 1 (the
// ebb & flow of machines during a level-15 run) and Figures 2-5 (the
// graphical content of Table 1). It also carries the paper's published
// numbers so every regeneration can be compared side by side.
package bench

// PaperRow is one row of the paper's Table 1.
type PaperRow struct {
	Level int
	St    float64 // average sequential time, seconds
	Ct    float64 // average concurrent time, seconds
	M     float64 // weighted average number of machines
	Su    float64 // average speedup st/ct
	// Reconstructed marks rows whose values are corrupted in our source
	// text of the paper (OCR damage in Table 1) and were reconstructed by
	// interpolation from neighbouring rows and the intact 1.0e-4 series.
	Reconstructed bool
}

// PaperTable1e3 returns the paper's Table 1 rows for the 1.0e-3 runs.
// Levels 0-1 are fully reconstructed and levels 2-4 partially (the st
// column survived for 2-4); see EXPERIMENTS.md.
func PaperTable1e3() []PaperRow {
	return []PaperRow{
		{Level: 0, St: 0.03, Ct: 8.0, M: 1.9, Su: 0.0, Reconstructed: true},
		{Level: 1, St: 0.04, Ct: 12.0, M: 2.4, Su: 0.0, Reconstructed: true},
		{Level: 2, St: 0.06, Ct: 13.09, M: 2.8, Su: 0.0},
		{Level: 3, St: 0.11, Ct: 7.86, M: 2.7, Su: 0.0},
		{Level: 4, St: 0.20, Ct: 11.45, M: 2.9, Su: 0.0, Reconstructed: true},
		{Level: 5, St: 0.40, Ct: 17.40, M: 3.6, Su: 0.0},
		{Level: 6, St: 0.86, Ct: 26.91, M: 3.3, Su: 0.0},
		{Level: 7, St: 1.90, Ct: 28.97, M: 3.6, Su: 0.1},
		{Level: 8, St: 4.27, Ct: 30.06, M: 3.7, Su: 0.1},
		{Level: 9, St: 10.28, Ct: 23.84, M: 4.1, Su: 0.4},
		{Level: 10, St: 24.14, Ct: 21.82, M: 5.5, Su: 1.1},
		{Level: 11, St: 57.91, Ct: 33.58, M: 6.3, Su: 1.7},
		{Level: 12, St: 145.47, Ct: 50.79, M: 7.6, Su: 2.9},
		{Level: 13, St: 337.69, Ct: 75.28, M: 9.8, Su: 4.5},
		{Level: 14, St: 818.62, Ct: 124.20, M: 11.7, Su: 6.6},
		{Level: 15, St: 2019.02, Ct: 259.69, M: 12.2, Su: 7.8},
	}
}

// PaperTable1e4 returns the paper's Table 1 rows for the 1.0e-4 runs
// (intact in our source text).
func PaperTable1e4() []PaperRow {
	return []PaperRow{
		{Level: 0, St: 0.02, Ct: 7.68, M: 1.9, Su: 0.0},
		{Level: 1, St: 0.05, Ct: 13.04, M: 2.4, Su: 0.0},
		{Level: 2, St: 0.07, Ct: 12.99, M: 2.8, Su: 0.0},
		{Level: 3, St: 0.15, Ct: 7.44, M: 2.6, Su: 0.0},
		{Level: 4, St: 0.30, Ct: 12.03, M: 2.9, Su: 0.0},
		{Level: 5, St: 0.68, Ct: 16.39, M: 3.3, Su: 0.0},
		{Level: 6, St: 1.53, Ct: 21.07, M: 3.5, Su: 0.1},
		{Level: 7, St: 3.53, Ct: 28.68, M: 3.7, Su: 0.1},
		{Level: 8, St: 8.04, Ct: 30.29, M: 3.9, Su: 0.3},
		{Level: 9, St: 21.00, Ct: 26.24, M: 4.8, Su: 0.8},
		{Level: 10, St: 51.64, Ct: 38.66, M: 5.7, Su: 1.3},
		{Level: 11, St: 124.17, Ct: 46.30, M: 7.6, Su: 2.7},
		{Level: 12, St: 301.17, Ct: 65.02, M: 9.9, Su: 4.6},
		{Level: 13, St: 724.92, Ct: 129.28, M: 11.4, Su: 5.6},
		{Level: 14, St: 1751.02, Ct: 227.18, M: 13.1, Su: 7.7},
		{Level: 15, St: 4118.08, Ct: 519.15, M: 13.3, Su: 7.9},
	}
}

// PaperTable returns the published rows for a tolerance (1e-3 or 1e-4).
func PaperTable(tol float64) []PaperRow {
	if tol == 1e-4 {
		return PaperTable1e4()
	}
	return PaperTable1e3()
}

// PaperFigure1 describes the paper's Figure 1 run: a level-15 application
// that ran for 634 seconds, sometimes used 32 machines, and averaged 11.
type Figure1Paper struct {
	DurationSec float64
	PeakM       int
	AvgM        float64
}

// PaperFigure1Stats returns the numbers quoted in the Figure 1 caption and
// the surrounding text.
func PaperFigure1Stats() Figure1Paper {
	return Figure1Paper{DurationSec: 634, PeakM: 32, AvgM: 11}
}

package bench

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/pde"
	"repro/internal/rosenbrock"
	"repro/internal/solver"
)

// ScalingRow is one row of a strong-scaling measurement: the wall-clock
// time of the finest-grid subsolve at a fixed problem size and a growing
// intra-grid team.
type ScalingRow struct {
	Cores   int
	Seconds float64
	Speedup float64 // vs the 1-core row (or the first row measured)
}

// ScalingOptions configures a strong-scaling run.
type ScalingOptions struct {
	Grid grid.Grid // the grid each run subsolves (the finest-grid wall)
	Tol  float64
	TEnd float64
	Lin  rosenbrock.LinearSolver
	// Cores lists the team sizes to measure, e.g. 1,2,4; nil picks
	// 1,2,4,...,GOMAXPROCS.
	Cores []int
	// Runs > 1 repeats each measurement and keeps the fastest (minimum is
	// the robust wall-clock estimator); <= 1 measures once.
	Runs int
}

// DefaultScalingOptions mirrors the EXPERIMENTS.md strong-scaling table:
// the finest square grid at eval-cap refinement, paper tolerance, cores
// doubling up to GOMAXPROCS.
func DefaultScalingOptions(tol float64) ScalingOptions {
	var cores []int
	for c := 1; c <= runtime.GOMAXPROCS(0); c *= 2 {
		cores = append(cores, c)
	}
	return ScalingOptions{
		Grid:  grid.Grid{Root: 2, L1: 5, L2: 5},
		Tol:   tol,
		TEnd:  solver.DefaultTEnd,
		Cores: cores,
		Runs:  3,
	}
}

// StrongScaling measures the finest-grid subsolve at each team size. The
// computed solutions are bit-for-bit identical across rows (the team
// kernels are deterministic); only the wall clock moves.
func StrongScaling(o ScalingOptions) ([]ScalingRow, error) {
	if len(o.Cores) == 0 {
		o.Cores = []int{1, runtime.GOMAXPROCS(0)}
	}
	if o.Runs < 1 {
		o.Runs = 1
	}
	prob := pde.PaperProblem()
	rows := make([]ScalingRow, 0, len(o.Cores))
	base := 0.0
	for _, c := range o.Cores {
		team := linalg.NewTeam(c)
		ws := rosenbrock.NewWorkspace()
		ws.SetTeam(team)
		best := 0.0
		for r := 0; r < o.Runs; r++ {
			t0 := time.Now()
			if _, err := solver.SubsolveInto(o.Grid, prob, o.Tol, o.TEnd, o.Lin, ws); err != nil {
				team.Close()
				return nil, err
			}
			if sec := time.Since(t0).Seconds(); r == 0 || sec < best {
				best = sec
			}
		}
		team.Close()
		if base == 0 {
			base = best
		}
		rows = append(rows, ScalingRow{Cores: c, Seconds: best, Speedup: base / best})
	}
	return rows, nil
}

// WriteScaling renders the rows in the layout of the paper's Table 1
// (problem column, measured seconds, derived speedup).
func WriteScaling(w io.Writer, o ScalingOptions, rows []ScalingRow) error {
	if _, err := fmt.Fprintf(w, "strong scaling: subsolve %v, tol %.1e, %s (host: GOMAXPROCS=%d, NumCPU=%d)\n",
		o.Grid, o.Tol, o.Lin, runtime.GOMAXPROCS(0), runtime.NumCPU()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s | %12s | %8s\n", "cores", "seconds", "speedup"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%8d | %12.4f | %8.2f\n", r.Cores, r.Seconds, r.Speedup); err != nil {
			return err
		}
	}
	return nil
}

// ParseCores parses a comma-separated cores list such as "1,2,4".
func ParseCores(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bench: bad cores list %q", s)
		}
		out = append(out, c)
	}
	return out, nil
}

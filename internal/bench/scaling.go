package bench

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/pde"
	"repro/internal/rosenbrock"
	"repro/internal/solver"
)

// ScalingRow is one row of a strong-scaling measurement: the wall-clock
// time of the finest-grid subsolve at a fixed problem size and a growing
// intra-grid team, plus the fused-phase dispatch traffic of the fastest
// run (how many team wake/park cycles the solve cost, and how many
// in-phase barriers they crossed).
type ScalingRow struct {
	Cores   int
	Seconds float64
	Speedup float64 // vs the 1-core row (or the first row measured)

	Phases   int64 // fused-phase dispatches in the fastest run
	PhaseUs  int64 // total wall-clock microseconds inside those dispatches
	Barriers int64 // in-phase barriers crossed by those dispatches
}

// phaseCounter tallies fused-phase dispatch traffic; it implements
// linalg.PhaseObserver.
type phaseCounter struct {
	phases, us, barriers int64
}

func (c *phaseCounter) ObservePhase(us, barriers int64) {
	c.phases++
	c.us += us
	c.barriers += barriers
}

// ScalingOptions configures a strong-scaling run.
type ScalingOptions struct {
	Grid grid.Grid // the grid each run subsolves (the finest-grid wall)
	Tol  float64
	TEnd float64
	Lin  rosenbrock.LinearSolver
	// Cores lists the team sizes to measure, e.g. 1,2,4; nil picks
	// 1,2,4,...,GOMAXPROCS.
	Cores []int
	// Runs > 1 repeats each measurement and keeps the fastest (minimum is
	// the robust wall-clock estimator); <= 1 measures once.
	Runs int
}

// DefaultScalingOptions mirrors the EXPERIMENTS.md strong-scaling table:
// the finest square grid at eval-cap refinement, paper tolerance, cores
// doubling up to GOMAXPROCS.
func DefaultScalingOptions(tol float64) ScalingOptions {
	var cores []int
	for c := 1; c <= runtime.GOMAXPROCS(0); c *= 2 {
		cores = append(cores, c)
	}
	return ScalingOptions{
		Grid:  grid.Grid{Root: 2, L1: 5, L2: 5},
		Tol:   tol,
		TEnd:  solver.DefaultTEnd,
		Cores: cores,
		Runs:  3,
	}
}

// StrongScaling measures the finest-grid subsolve at each team size. The
// computed solutions are bit-for-bit identical across rows (the team
// kernels are deterministic); only the wall clock moves. The host is
// calibrated first, so the serial/parallel cut-overs reflect measured
// dispatch cost rather than the hand-set defaults; each row also reports
// the fused-phase dispatch traffic of its fastest run.
func StrongScaling(o ScalingOptions) ([]ScalingRow, error) {
	linalg.Calibrate()
	if len(o.Cores) == 0 {
		o.Cores = []int{1, runtime.GOMAXPROCS(0)}
	}
	if o.Runs < 1 {
		o.Runs = 1
	}
	prob := pde.PaperProblem()
	rows := make([]ScalingRow, 0, len(o.Cores))
	base := 0.0
	for _, c := range o.Cores {
		team := linalg.NewTeam(c)
		ws := rosenbrock.NewWorkspace()
		ws.SetTeam(team)
		best := 0.0
		var bestPh phaseCounter
		for r := 0; r < o.Runs; r++ {
			var ph phaseCounter
			team.SetPhaseObserver(&ph)
			t0 := time.Now()
			if _, err := solver.SubsolveInto(o.Grid, prob, o.Tol, o.TEnd, o.Lin, ws); err != nil {
				team.Close()
				return nil, err
			}
			if sec := time.Since(t0).Seconds(); r == 0 || sec < best {
				best = sec
				bestPh = ph
			}
		}
		team.Close()
		if base == 0 {
			base = best
		}
		rows = append(rows, ScalingRow{
			Cores: c, Seconds: best, Speedup: base / best,
			Phases: bestPh.phases, PhaseUs: bestPh.us, Barriers: bestPh.barriers,
		})
	}
	return rows, nil
}

// WriteScaling renders the rows in the layout of the paper's Table 1
// (problem column, measured seconds, derived speedup), followed by the
// fused-phase dispatch traffic and the host calibration the run used.
func WriteScaling(w io.Writer, o ScalingOptions, rows []ScalingRow) error {
	cal := linalg.Calibrate()
	if _, err := fmt.Fprintf(w, "strong scaling: subsolve %v, tol %.1e, %s (host: GOMAXPROCS=%d, NumCPU=%d)\n",
		o.Grid, o.Tol, o.Lin, runtime.GOMAXPROCS(0), runtime.NumCPU()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "calibration: dispatch %.1f us, elem %.2f ns, effective procs %d, sequentialized %v\n",
		cal.DispatchUs, cal.ElemNs, cal.EffectiveProcs, cal.Sequentialized); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s | %12s | %8s | %10s | %12s | %10s\n",
		"cores", "seconds", "speedup", "phases", "us/phase", "barriers"); err != nil {
		return err
	}
	for _, r := range rows {
		usPerPhase := 0.0
		if r.Phases > 0 {
			usPerPhase = float64(r.PhaseUs) / float64(r.Phases)
		}
		if _, err := fmt.Fprintf(w, "%8d | %12.4f | %8.2f | %10d | %12.2f | %10d\n",
			r.Cores, r.Seconds, r.Speedup, r.Phases, usPerPhase, r.Barriers); err != nil {
			return err
		}
	}
	return nil
}

// ParseCores parses a comma-separated cores list such as "1,2,4".
func ParseCores(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bench: bad cores list %q", s)
		}
		out = append(out, c)
	}
	return out, nil
}

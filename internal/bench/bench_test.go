package bench

import (
	"math"
	"strings"
	"testing"
)

func TestTable1ShapeHolds(t *testing.T) {
	for _, tol := range []float64{1e-3, 1e-4} {
		rows := Table1(DefaultTable1Options(tol))
		if len(rows) != 16 {
			t.Fatalf("tol %g: %d rows, want 16", tol, len(rows))
		}
		devs := Compare(tol, rows)
		paper := PaperTable(tol)
		for i, d := range devs {
			// Sequential times: within 35% wherever the paper value is
			// large enough to be meaningful (sub-second rows carry the
			// granularity of /bin/time); allow 50% up to 10 s.
			if p := paper[i].St; p >= 1 {
				limit := 0.35
				if p < 10 {
					limit = 0.5
				}
				if d.StRel > limit {
					t.Errorf("tol %g level %d: st deviates %.0f%%", tol, d.Level, 100*d.StRel)
				}
			}
			// Concurrent times: within a factor ~2 relative or 12 s
			// absolute — the paper's own low-level ct column is
			// non-monotone by that much (ct(3)=7.44 < ct(0)=7.68).
			abs := math.Abs(rows[i].Ct - paper[i].Ct)
			if !math.IsNaN(d.CtRel) && d.CtRel > 1.0 && abs > 12 {
				t.Errorf("tol %g level %d: ct deviates %.0f%% (%.1f s)", tol, d.Level, 100*d.CtRel, abs)
			}
		}
		// The crossover must match at all levels except possibly the two
		// levels adjacent to the paper's crossover (10).
		for _, d := range devs {
			if d.Level <= 8 || d.Level >= 12 {
				if !d.CrossTogether {
					t.Errorf("tol %g level %d: model and paper on different sides of speedup 1", tol, d.Level)
				}
			}
		}
		// Final speedup within 25% of the paper.
		last := rows[len(rows)-1]
		p15 := paper[15]
		if math.Abs(last.Su-p15.Su)/p15.Su > 0.25 {
			t.Errorf("tol %g: su(15) = %.2f, paper %.2f", tol, last.Su, p15.Su)
		}
	}
}

func TestTable1MonotoneColumns(t *testing.T) {
	rows := Table1(DefaultTable1Options(1e-3))
	for i := 1; i < len(rows); i++ {
		if rows[i].St <= rows[i-1].St {
			t.Errorf("st not increasing at level %d", rows[i].Level)
		}
		if rows[i].Level >= 5 && rows[i].Ct <= rows[i-1].Ct {
			t.Errorf("ct not increasing at level %d", rows[i].Level)
		}
	}
}

func TestWriteTable1Renders(t *testing.T) {
	rows := Table1(Table1Options{Root: 2, MaxLevel: 3, Tol: 1e-3, Runs: 1})
	var sb strings.Builder
	WriteTable1(&sb, 1e-3, rows)
	out := sb.String()
	for _, want := range []string{"Table 1", "level", "st", "su", "reconstructed"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestAveragedRunsCloseToNoiseFree(t *testing.T) {
	opt := Table1Options{Root: 2, MaxLevel: 8, Tol: 1e-3, Runs: 5, NoiseAmp: 0.05}
	noisy := Table1(opt)
	clean := Table1(Table1Options{Root: 2, MaxLevel: 8, Tol: 1e-3, Runs: 1})
	for i := range clean {
		if clean[i].Ct == 0 {
			continue
		}
		rel := math.Abs(noisy[i].Ct-clean[i].Ct) / clean[i].Ct
		if rel > 0.10 {
			t.Errorf("level %d: 5-run average deviates %.0f%% from noise-free", clean[i].Level, 100*rel)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	f := Figure1(2, 15, 1e-3)
	paper := PaperFigure1Stats()
	if f.PeakM < 12 || f.PeakM > paper.PeakM {
		t.Errorf("peak machines %d, want 12..%d", f.PeakM, paper.PeakM)
	}
	if f.AvgM < 8 || f.AvgM > 16 {
		t.Errorf("avg machines %.1f, want 8-16 (paper 11)", f.AvgM)
	}
	if len(f.Trace) < 20 {
		t.Errorf("trace too coarse: %d points", len(f.Trace))
	}
	var sb strings.Builder
	WriteFigure1(&sb, f)
	if !strings.Contains(sb.String(), "machines") {
		t.Error("figure 1 rendering missing legend")
	}
}

func TestTimesFigureSeries(t *testing.T) {
	rows := Table1(DefaultTable1Options(1e-3))
	curves := TimesFigure(rows, 1e-3)
	if len(curves) != 2 {
		t.Fatalf("got %d curves, want 2", len(curves))
	}
	// The sequential and concurrent curves must cross exactly once (the
	// paper's Figures 2/4: ct starts above st and ends below).
	seq, conc := curves[0], curves[1]
	crossings := 0
	for i := 1; i < len(seq.Levels); i++ {
		before := seq.Measured[i-1] > conc.Measured[i-1]
		after := seq.Measured[i] > conc.Measured[i]
		if before != after {
			crossings++
		}
	}
	if crossings != 1 {
		t.Errorf("st/ct curves cross %d times, want exactly 1", crossings)
	}
}

func TestSpeedupFigureSeries(t *testing.T) {
	rows := Table1(DefaultTable1Options(1e-4))
	curves := SpeedupFigure(rows, 1e-4)
	if curves[0].Name != "speedup" || curves[1].Name != "machines" {
		t.Fatalf("unexpected curve names: %v, %v", curves[0].Name, curves[1].Name)
	}
	// Speedup must stay below machines at every level (the paper's
	// observation).
	for i := range curves[0].Levels {
		if curves[0].Measured[i] >= curves[1].Measured[i] {
			t.Errorf("level %d: speedup %.2f >= machines %.2f",
				curves[0].Levels[i], curves[0].Measured[i], curves[1].Measured[i])
		}
	}
}

func TestWriteFigureLogScale(t *testing.T) {
	rows := Table1(Table1Options{Root: 2, MaxLevel: 6, Tol: 1e-3, Runs: 1})
	var sb strings.Builder
	WriteFigure(&sb, "Figure 2", TimesFigure(rows, 1e-3), true)
	out := sb.String()
	if !strings.Contains(out, "log10") {
		t.Error("log-scale figure missing log10 marker")
	}
	if !strings.Contains(out, "sequential time (s) (paper)") {
		t.Error("missing paper series legend")
	}
}

func TestPaperDataSane(t *testing.T) {
	for _, tol := range []float64{1e-3, 1e-4} {
		rows := PaperTable(tol)
		if len(rows) != 16 {
			t.Fatalf("paper table for %g has %d rows", tol, len(rows))
		}
		for i, r := range rows {
			if r.Level != i {
				t.Errorf("row %d has level %d", i, r.Level)
			}
			if r.St < 0 || r.Ct <= 0 || r.M <= 0 {
				t.Errorf("row %d has nonsense values: %+v", i, r)
			}
		}
		if rows[15].Su < 7 {
			t.Errorf("paper su(15) = %g, expected ~7.8/7.9", rows[15].Su)
		}
	}
	// Reconstructed rows exist only in the 1e-3 table.
	for _, r := range PaperTable1e4() {
		if r.Reconstructed {
			t.Errorf("1e-4 row %d marked reconstructed", r.Level)
		}
	}
}

package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/mwsim"
)

// Row is one regenerated row of Table 1.
type Row struct {
	Level int
	St    float64
	Ct    float64
	M     float64
	Su    float64
	Peak  int
	Forks int
}

// Table1Options controls the regeneration.
type Table1Options struct {
	Root     int
	MaxLevel int
	Tol      float64
	// Runs > 1 averages several noisy runs (the paper averaged five);
	// Runs <= 1 performs one noise-free run.
	Runs int
	// NoiseAmp is the relative compute perturbation for noisy runs.
	NoiseAmp float64
}

// DefaultTable1Options mirrors the paper: root 2, levels 0-15.
func DefaultTable1Options(tol float64) Table1Options {
	return Table1Options{Root: 2, MaxLevel: 15, Tol: tol, Runs: 1, NoiseAmp: 0.05}
}

// Table1 regenerates the paper's Table 1 for one tolerance by running the
// cluster simulation at every level.
func Table1(opt Table1Options) []Row {
	rows := make([]Row, 0, opt.MaxLevel+1)
	for level := 0; level <= opt.MaxLevel; level++ {
		cfg := mwsim.PaperConfig(opt.Root, level, opt.Tol)
		var r mwsim.Result
		if opt.Runs > 1 {
			var acc mwsim.Result
			for i := 0; i < opt.Runs; i++ {
				ri := mwsim.RunNoisy(cfg, int64(1000*level+i), opt.NoiseAmp)
				acc.ConcurrentSec += ri.ConcurrentSec
				acc.SequentialSec += ri.SequentialSec
				acc.AvgMachines += ri.AvgMachines
				if ri.PeakMachines > acc.PeakMachines {
					acc.PeakMachines = ri.PeakMachines
				}
				acc.Forks += ri.Forks
			}
			n := float64(opt.Runs)
			r = mwsim.Result{
				ConcurrentSec: acc.ConcurrentSec / n,
				SequentialSec: acc.SequentialSec / n,
				AvgMachines:   acc.AvgMachines / n,
				PeakMachines:  acc.PeakMachines,
				Forks:         acc.Forks / opt.Runs,
			}
			r.Speedup = r.SequentialSec / r.ConcurrentSec
		} else {
			r = mwsim.Run(cfg)
		}
		rows = append(rows, Row{
			Level: level,
			St:    r.SequentialSec,
			Ct:    r.ConcurrentSec,
			M:     r.AvgMachines,
			Su:    r.Speedup,
			Peak:  r.PeakMachines,
			Forks: r.Forks,
		})
	}
	return rows
}

// WriteTable1 renders regenerated rows side by side with the paper's
// published values.
func WriteTable1(w io.Writer, tol float64, rows []Row) {
	paper := PaperTable(tol)
	fmt.Fprintf(w, "Table 1 reproduction, tol = %.0e (measured / paper)\n", tol)
	fmt.Fprintf(w, "level |          st          |          ct          |        m       |      su\n")
	fmt.Fprintf(w, "------+----------------------+----------------------+----------------+---------------\n")
	for _, r := range rows {
		p := paperRowFor(paper, r.Level)
		mark := " "
		if p.Reconstructed {
			mark = "*"
		}
		fmt.Fprintf(w, "%5d | %9.2f /%9.2f%s | %9.2f /%9.2f%s | %5.1f /%5.1f%s | %5.1f /%5.1f%s\n",
			r.Level, r.St, p.St, mark, r.Ct, p.Ct, mark, r.M, p.M, mark, r.Su, p.Su, mark)
	}
	fmt.Fprintf(w, "(* = paper value reconstructed; see EXPERIMENTS.md)\n")
}

func paperRowFor(rows []PaperRow, level int) PaperRow {
	for _, r := range rows {
		if r.Level == level {
			return r
		}
	}
	return PaperRow{Level: level, St: math.NaN(), Ct: math.NaN(), M: math.NaN(), Su: math.NaN()}
}

// Deviation summarizes how far a regenerated table is from the paper.
type Deviation struct {
	Level         int
	StRel         float64 // |model-paper| / paper (NaN when paper value ~0)
	CtRel         float64
	MAbs          float64
	SuAbs         float64
	CrossTogether bool // both model and paper are on the same side of su=1
}

// Compare computes per-level deviations from the published table.
func Compare(tol float64, rows []Row) []Deviation {
	paper := PaperTable(tol)
	var out []Deviation
	for _, r := range rows {
		p := paperRowFor(paper, r.Level)
		d := Deviation{Level: r.Level, MAbs: math.Abs(r.M - p.M), SuAbs: math.Abs(r.Su - p.Su)}
		if p.St > 0.5 {
			d.StRel = math.Abs(r.St-p.St) / p.St
		} else {
			d.StRel = math.NaN()
		}
		if p.Ct > 0.5 {
			d.CtRel = math.Abs(r.Ct-p.Ct) / p.Ct
		} else {
			d.CtRel = math.NaN()
		}
		d.CrossTogether = (r.Su >= 1) == (p.Su >= 1)
		out = append(out, d)
	}
	return out
}

package bench

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/cluster"
	"repro/internal/mwsim"
)

// Figure1Result is the regenerated ebb & flow of one level-15 run.
type Figure1Result struct {
	Trace       []cluster.UsagePoint
	DurationSec float64
	PeakM       int
	AvgM        float64
}

// Figure1 regenerates the paper's Figure 1: the number of machines in use
// over the course of one concurrent run.
func Figure1(root, level int, tol float64) Figure1Result {
	return Figure1Config(mwsim.PaperConfig(root, level, tol))
}

// Figure1Config is Figure1 from an explicit simulator configuration, so a
// caller can customize the run — e.g. attach an observability recorder and
// export the virtual-time timeline alongside the plot.
func Figure1Config(cfg mwsim.Config) Figure1Result {
	r := mwsim.Run(cfg)
	return Figure1Result{
		Trace:       r.Trace,
		DurationSec: r.ConcurrentSec,
		PeakM:       r.PeakMachines,
		AvgM:        r.AvgMachines,
	}
}

// WriteFigure1 renders the ebb & flow as an ASCII step plot, in the spirit
// of the paper's gnuplot figure ("elapsed time in seconds versus number of
// machines").
func WriteFigure1(w io.Writer, f Figure1Result) {
	paper := PaperFigure1Stats()
	fmt.Fprintf(w, "Figure 1: machines in use during a level-15 run\n")
	fmt.Fprintf(w, "measured: duration %.0f s, peak %d machines, weighted average %.1f\n",
		f.DurationSec, f.PeakM, f.AvgM)
	fmt.Fprintf(w, "paper:    duration %.0f s, peak %d machines, weighted average %.1f\n\n",
		paper.DurationSec, paper.PeakM, paper.AvgM)
	plotSeries(w, []series{{name: "machines", pts: tracePoints(f.Trace, f.DurationSec)}},
		"t (s)", 70, 16, false)
}

func tracePoints(trace []cluster.UsagePoint, end float64) []point {
	var pts []point
	for i, u := range trace {
		// Render the step function: hold the previous value up to this
		// change point.
		if i > 0 {
			pts = append(pts, point{x: u.T, y: float64(trace[i-1].Count)})
		}
		pts = append(pts, point{x: u.T, y: float64(u.Count)})
	}
	if n := len(trace); n > 0 && trace[n-1].T < end {
		pts = append(pts, point{x: end, y: float64(trace[n-1].Count)})
	}
	return pts
}

// FigureSeries is one curve of Figures 2-5 with the paper's counterpart.
type FigureSeries struct {
	Name     string
	Levels   []int
	Measured []float64
	Paper    []float64
}

// Figure2 returns the curves of the paper's Figure 2 (or 4 for tol 1e-4):
// average sequential and concurrent times per level, log scale.
func TimesFigure(rows []Row, tol float64) []FigureSeries {
	paper := PaperTable(tol)
	var lv []int
	var st, ct, pst, pct []float64
	for _, r := range rows {
		p := paperRowFor(paper, r.Level)
		lv = append(lv, r.Level)
		st = append(st, r.St)
		ct = append(ct, r.Ct)
		pst = append(pst, p.St)
		pct = append(pct, p.Ct)
	}
	return []FigureSeries{
		{Name: "sequential time (s)", Levels: lv, Measured: st, Paper: pst},
		{Name: "concurrent time (s)", Levels: lv, Measured: ct, Paper: pct},
	}
}

// SpeedupFigure returns the curves of the paper's Figure 3 (or 5 for tol
// 1e-4): speedup and weighted machine count per level.
func SpeedupFigure(rows []Row, tol float64) []FigureSeries {
	paper := PaperTable(tol)
	var lv []int
	var su, m, psu, pm []float64
	for _, r := range rows {
		p := paperRowFor(paper, r.Level)
		lv = append(lv, r.Level)
		su = append(su, r.Su)
		m = append(m, r.M)
		psu = append(psu, p.Su)
		pm = append(pm, p.M)
	}
	return []FigureSeries{
		{Name: "speedup", Levels: lv, Measured: su, Paper: psu},
		{Name: "machines", Levels: lv, Measured: m, Paper: pm},
	}
}

// WriteFigure renders measured-vs-paper curves as an ASCII chart plus the
// underlying numbers. logY plots log10 of the values (the paper uses a
// logarithmic scale in Figures 2 and 4 "because of the wide range").
func WriteFigure(w io.Writer, title string, curves []FigureSeries, logY bool) {
	fmt.Fprintf(w, "%s\n", title)
	var ss []series
	for _, c := range curves {
		mp := make([]point, len(c.Levels))
		pp := make([]point, len(c.Levels))
		for i, l := range c.Levels {
			mp[i] = point{x: float64(l), y: c.Measured[i]}
			pp[i] = point{x: float64(l), y: c.Paper[i]}
		}
		ss = append(ss,
			series{name: c.Name + " (measured)", pts: mp},
			series{name: c.Name + " (paper)", pts: pp})
	}
	plotSeries(w, ss, "level", 64, 18, logY)
	fmt.Fprintln(w)
	// Numeric companion table.
	fmt.Fprintf(w, "level")
	for _, c := range curves {
		fmt.Fprintf(w, " | %s meas/paper", c.Name)
	}
	fmt.Fprintln(w)
	for i, l := range curves[0].Levels {
		fmt.Fprintf(w, "%5d", l)
		for _, c := range curves {
			fmt.Fprintf(w, " | %10.2f /%10.2f", c.Measured[i], c.Paper[i])
		}
		fmt.Fprintln(w)
	}
}

// --- minimal ASCII plotting ---

type point struct{ x, y float64 }

type series struct {
	name string
	pts  []point
}

var glyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// plotSeries renders series as an ASCII scatter/step chart of the given
// size. With logY, y values are log10-transformed (non-positive values are
// dropped).
func plotSeries(w io.Writer, ss []series, xlabel string, width, height int, logY bool) {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	transform := func(y float64) (float64, bool) {
		if logY {
			if y <= 0 {
				return 0, false
			}
			return math.Log10(y), true
		}
		return y, true
	}
	for _, s := range ss {
		for _, p := range s.pts {
			y, ok := transform(p.y)
			if !ok {
				continue
			}
			minX = math.Min(minX, p.x)
			maxX = math.Max(maxX, p.x)
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range ss {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.pts {
			y, ok := transform(p.y)
			if !ok {
				continue
			}
			col := int((p.x - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = g
		}
	}
	yLo, yHi := minY, maxY
	scale := ""
	if logY {
		scale = " (log10)"
	}
	fmt.Fprintf(w, "  y%s: %.3g .. %.3g\n", scale, yLo, yHi)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "   %-8.3g%s%8.3g  (%s)\n", minX, strings.Repeat(" ", max(0, width-18)), maxX, xlabel)
	for si, s := range ss {
		fmt.Fprintf(w, "   %c = %s\n", glyphs[si%len(glyphs)], s.name)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package bench

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/linalg"
	"repro/internal/solver"
)

// CompareOptions configures the scheduler head-to-head: one seeded bursty
// workload of sparse-grid family solves, replayed bit-for-bit identically
// through the static pool, the work-stealing scheduler, and the stealing
// scheduler with elastic team cores.
type CompareOptions struct {
	// Jobs is the number of family solves in the workload.
	Jobs int
	// Burst is how many jobs are released concurrently per burst; the
	// burstiness is what gives idle executors something to steal.
	Burst int
	// Pause separates consecutive bursts.
	Pause time.Duration
	// Seed drives the job mix and the per-job steal seeds.
	Seed int64
	// Executors caps the executors per job (0 = GOMAXPROCS).
	Executors int
	// Tol is the integrator tolerance of every job.
	Tol float64
	// Runs repeats each side and keeps the fastest (minimum is the robust
	// wall-clock estimator); <= 1 measures once.
	Runs int
}

// DefaultCompareOptions is the BENCH_7.json workload: three bursts of
// eight mixed-size family solves, paper problem, loose tolerance.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{
		Jobs: 24, Burst: 8, Pause: 2 * time.Millisecond,
		Seed: 42, Tol: 1e-2, Runs: 3,
	}
}

// compareJob is one family solve of the workload.
type compareJob struct {
	root, level int
	stealSeed   int64
}

// compareWorkload derives the seeded job mix: root 2 throughout, levels
// alternating pseudo-randomly between 1 and 2 so family sizes (3 vs 5
// grids) and per-grid weights differ across the burst.
func compareWorkload(o CompareOptions) []compareJob {
	jobs := make([]compareJob, o.Jobs)
	x := uint64(o.Seed)*0x9E3779B97F4A7C15 + 1
	for i := range jobs {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		jobs[i] = compareJob{root: 2, level: 1 + int(x%2), stealSeed: o.Seed + int64(i)}
	}
	return jobs
}

// CompareSide is one scheduler's measurement over the whole workload.
type CompareSide struct {
	Schedule  string  `json:"schedule"`
	ElapsedMs float64 `json:"elapsed_ms"`
	Thru      float64 `json:"throughput_jobs_per_s"`
	Steals    int64   `json:"steals"`
	Donations int64   `json:"donations"`
	Resizes   int64   `json:"resizes"`
	Speedup   float64 `json:"speedup_vs_pool"`

	hashes [][32]byte
}

// CompareReport is the BENCH_7.json shape.
type CompareReport struct {
	PR           int         `json:"pr"`
	Bench        string      `json:"bench"`
	Go           string      `json:"go"`
	HostCPUs     int         `json:"host_cpus"`
	GOMAXPROCS   int         `json:"gomaxprocs"`
	ScalingValid bool        `json:"scaling_valid"`
	Load         CompareLoad `json:"load"`

	Pool    CompareSide `json:"pool"`
	Steal   CompareSide `json:"steal"`
	Elastic CompareSide `json:"steal_elastic"`

	// BitIdentical is the determinism oracle: every job's output hashed
	// identically under all three schedules (and across repeat runs).
	BitIdentical bool `json:"bit_identical"`
}

// CompareLoad records the workload parameters in the report.
type CompareLoad struct {
	Jobs      int     `json:"jobs"`
	Burst     int     `json:"burst"`
	PauseMs   float64 `json:"pause_ms"`
	Seed      int64   `json:"seed"`
	Executors int     `json:"executors"`
	Tol       float64 `json:"tol"`
	Runs      int     `json:"runs"`
}

// hashCompareOutput digests every float of a run bit-exactly, the same
// oracle the solver determinism suite uses.
func hashCompareOutput(out *solver.Output) [32]byte {
	h := sha256.New()
	var buf [8]byte
	put := func(v linalg.Vector) {
		for _, x := range v {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			h.Write(buf[:])
		}
	}
	put(out.Combined.V)
	for _, r := range out.Results {
		put(r.U)
	}
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// compareSideOnce replays the workload through one schedule: bursts of
// concurrent family solves separated by the pause, wall-clock timed end to
// end. Steal/donation/resize totals are summed over every job.
func compareSideOnce(o CompareOptions, jobs []compareJob, sched solver.Schedule) (CompareSide, error) {
	side := CompareSide{Schedule: sched.String(), hashes: make([][32]byte, len(jobs))}
	errs := make([]error, len(jobs))
	stats := make([]solver.SchedStats, len(jobs))

	t0 := time.Now()
	for at := 0; at < len(jobs); at += o.Burst {
		end := at + o.Burst
		if end > len(jobs) {
			end = len(jobs)
		}
		var wg sync.WaitGroup
		for i := at; i < end; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				j := jobs[i]
				p := solver.Params{
					Root: j.root, Level: j.level, Tol: o.Tol,
					Schedule: sched, Executors: o.Executors, StealSeed: j.stealSeed,
				}
				out, err := solver.Concurrent(p)
				if err != nil {
					errs[i] = err
					return
				}
				side.hashes[i] = hashCompareOutput(out)
				stats[i] = out.Sched
			}(i)
		}
		wg.Wait()
		if end < len(jobs) && o.Pause > 0 {
			time.Sleep(o.Pause)
		}
	}
	elapsed := time.Since(t0)

	for i, err := range errs {
		if err != nil {
			return side, fmt.Errorf("bench: %s job %d: %w", sched, i, err)
		}
	}
	for _, s := range stats {
		side.Steals += int64(s.Steals)
		side.Donations += int64(s.Donations)
		side.Resizes += int64(s.Resizes)
	}
	side.ElapsedMs = float64(elapsed.Microseconds()) / 1e3
	if elapsed > 0 {
		side.Thru = float64(len(jobs)) / elapsed.Seconds()
	}
	return side, nil
}

// compareSide repeats one schedule's replay and keeps the fastest run's
// timing; the steal ledger and hashes of every repeat must agree with the
// kept run's workload semantics (hashes are checked, tallies may differ —
// scheduling decides how many steals happen, not what is computed).
func compareSide(o CompareOptions, jobs []compareJob, sched solver.Schedule) (CompareSide, error) {
	var best CompareSide
	for r := 0; r < o.Runs; r++ {
		side, err := compareSideOnce(o, jobs, sched)
		if err != nil {
			return side, err
		}
		if r == 0 {
			best = side
			continue
		}
		for i := range side.hashes {
			if side.hashes[i] != best.hashes[i] {
				return side, fmt.Errorf("bench: %s job %d hash differs across repeat runs", sched, i)
			}
		}
		if side.ElapsedMs < best.ElapsedMs {
			best = side
		}
	}
	return best, nil
}

// CompareSchedules runs the coordination head-to-head: the identical seeded bursty
// workload through pool, steal, and steal+elastic, with per-job bit
// identity checked across all three.
func CompareSchedules(o CompareOptions) (*CompareReport, error) {
	linalg.Calibrate()
	if o.Jobs < 1 {
		o.Jobs = 1
	}
	if o.Burst < 1 {
		o.Burst = 1
	}
	if o.Runs < 1 {
		o.Runs = 1
	}
	jobs := compareWorkload(o)

	rep := &CompareReport{
		PR: 9, Bench: "sched_headtohead",
		Go: runtime.Version(), HostCPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		ScalingValid: runtime.NumCPU() > 1,
		Load: CompareLoad{
			Jobs: o.Jobs, Burst: o.Burst, PauseMs: float64(o.Pause.Microseconds()) / 1e3,
			Seed: o.Seed, Executors: o.Executors, Tol: o.Tol, Runs: o.Runs,
		},
	}

	var err error
	if rep.Pool, err = compareSide(o, jobs, solver.SchedulePool); err != nil {
		return nil, err
	}
	if rep.Steal, err = compareSide(o, jobs, solver.ScheduleSteal); err != nil {
		return nil, err
	}
	if rep.Elastic, err = compareSide(o, jobs, solver.ScheduleStealElastic); err != nil {
		return nil, err
	}

	rep.BitIdentical = true
	for i := range jobs {
		if rep.Steal.hashes[i] != rep.Pool.hashes[i] || rep.Elastic.hashes[i] != rep.Pool.hashes[i] {
			rep.BitIdentical = false
			break
		}
	}
	rep.Pool.Speedup = 1
	if rep.Pool.ElapsedMs > 0 {
		rep.Steal.Speedup = rep.Pool.ElapsedMs / rep.Steal.ElapsedMs
		rep.Elastic.Speedup = rep.Pool.ElapsedMs / rep.Elastic.ElapsedMs
	}
	return rep, nil
}

// WriteCompare renders the head-to-head as a small table plus the
// determinism verdict.
func WriteCompare(w io.Writer, rep *CompareReport) error {
	if _, err := fmt.Fprintf(w, "scheduler head-to-head: %d jobs, bursts of %d, seed %d (host: GOMAXPROCS=%d, NumCPU=%d, scaling_valid=%v)\n",
		rep.Load.Jobs, rep.Load.Burst, rep.Load.Seed, rep.GOMAXPROCS, rep.HostCPUs, rep.ScalingValid); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%14s | %10s | %8s | %7s | %9s | %8s | %8s\n",
		"schedule", "elapsed ms", "jobs/s", "steals", "donations", "resizes", "speedup"); err != nil {
		return err
	}
	for _, s := range []CompareSide{rep.Pool, rep.Steal, rep.Elastic} {
		if _, err := fmt.Fprintf(w, "%14s | %10.3f | %8.2f | %7d | %9d | %8d | %8.2f\n",
			s.Schedule, s.ElapsedMs, s.Thru, s.Steals, s.Donations, s.Resizes, s.Speedup); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "bit_identical: %v\n", rep.BitIdentical)
	return err
}

// WriteCompareJSON writes the report as indented JSON to the named file.
func WriteCompareJSON(path string, rep *CompareReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

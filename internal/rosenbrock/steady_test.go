package rosenbrock_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/pde"
	"repro/internal/rosenbrock"
)

// steadyStepper builds a warm stepper on a periodically forced transport
// problem with an effectively infinite horizon. The forcing keeps the
// solution moving forever, so the controller holds a bounded step size and
// every Step call does the full hot-loop work (with the paper's decaying
// pulse the error estimate collapses, h grows geometrically and t1 is
// reached in a few dozen steps — useless for metering the loop).
func steadyStepper(tb testing.TB, g grid.Grid, lin rosenbrock.LinearSolver) *rosenbrock.Stepper {
	return steadyStepperCores(tb, g, lin, 1)
}

// steadyStepperCores is steadyStepper with the stepper's kernels running on
// an intra-grid team of the given size (1 = serial, no team goroutines).
func steadyStepperCores(tb testing.TB, g grid.Grid, lin rosenbrock.LinearSolver, cores int) *rosenbrock.Stepper {
	prob := &pde.Problem{
		A1: 1, A2: 0.5, D: 0.01,
		Source: func(x, y, t float64) float64 {
			return math.Cos(t) * math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		},
	}
	d := pde.NewDisc(g, prob)
	u := d.InitialInterior()
	ws := rosenbrock.NewWorkspace()
	if cores > 1 {
		team := linalg.NewTeam(cores)
		tb.Cleanup(team.Close)
		ws.SetTeam(team)
	}
	sp, err := rosenbrock.NewStepper(d, u, 0, 1e9, rosenbrock.Config{Tol: 1e-3, Solver: lin, MaxSteps: 1 << 60, Work: ws})
	if err != nil {
		tb.Fatal(err)
	}
	// Warm up: let the controller settle and every lazily-grown buffer
	// reach its final size.
	for i := 0; i < 25; i++ {
		if err := sp.Step(); err != nil {
			tb.Fatal(err)
		}
	}
	if sp.Done() {
		tb.Fatal("steady stepper finished during warm-up; the harness is not metering the hot loop")
	}
	return sp
}

// TestStepAllocFree asserts the acceptance criterion of the hot-loop
// rework: one steady-state Rosenbrock step — operator update, both stage
// solves, error control — performs zero allocations, for every inner
// linear solver.
func TestStepAllocFree(t *testing.T) {
	for _, lin := range []rosenbrock.LinearSolver{rosenbrock.BiCGStab, rosenbrock.GMRES, rosenbrock.ILU} {
		for _, cores := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/cores=%d", lin, cores), func(t *testing.T) {
				if cores > 1 {
					// Force the parallel kernel paths on this small grid: the
					// opcode dispatch must be as alloc-free as the serial
					// kernels (warm-up grows the reduction partial buffer).
					lowerParMins(t)
				}
				sp := steadyStepperCores(t, grid.Grid{Root: 2, L1: 2, L2: 2}, lin, cores)
				before := sp.Stats()
				var stepErr error
				if n := testing.AllocsPerRun(200, func() {
					if err := sp.Step(); err != nil {
						stepErr = err
					}
				}); n != 0 {
					t.Fatalf("%v/cores=%d: %v allocs per step in steady state, want 0", lin, cores, n)
				}
				if stepErr != nil {
					t.Fatal(stepErr)
				}
				after := sp.Stats()
				// Every metered call must have been a real step attempt, not a
				// post-completion no-op.
				if attempts := (after.Steps + after.Rejected) - (before.Steps + before.Rejected); attempts < 200 {
					t.Fatalf("only %d real step attempts were metered", attempts)
				}
			})
		}
	}
}

// lowerParMins drops the linalg parallel cut-overs to 1 for the duration of
// a test and restores them on cleanup.
func lowerParMins(t *testing.T) {
	t.Helper()
	savedVec, savedRed, savedRows, savedLvl, savedPh := linalg.ParMinVec, linalg.ParMinRed, linalg.ParMinRows, linalg.ParMinLevelRows, linalg.ParMinPhase
	linalg.ParMinVec, linalg.ParMinRed, linalg.ParMinRows, linalg.ParMinLevelRows, linalg.ParMinPhase = 1, 1, 1, 1, 1
	t.Cleanup(func() {
		linalg.ParMinVec, linalg.ParMinRed, linalg.ParMinRows, linalg.ParMinLevelRows, linalg.ParMinPhase = savedVec, savedRed, savedRows, savedLvl, savedPh
	})
}

// BenchmarkSubsolveSteady times the steady-state stepping loop of one
// Subsolve (the paper's heavy kernel) on the finest paper grid
// (level 5, 127x127 interior = 16129 unknowns), with allocation reporting
// — the b.ReportAllocs line must read 0 allocs/op at every team size — and
// an intra-grid cores axis: cores=1 is the serial baseline, the larger
// teams measure the strong scaling of the parallel kernels (bounded by
// GOMAXPROCS; on a single-core host the >1 rows only pay dispatch
// overhead).
func BenchmarkSubsolveSteady(b *testing.B) {
	// Calibrate the parallel cut-overs against this host first, exactly as
	// the real binaries do: on a host that cannot run team members
	// concurrently the >1-core rows honestly sequentialize instead of
	// paying dispatch overhead for nothing.
	linalg.Calibrate()
	for _, lin := range []rosenbrock.LinearSolver{rosenbrock.BiCGStab, rosenbrock.GMRES, rosenbrock.ILU} {
		for _, cores := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%v/cores=%d", lin, cores), func(b *testing.B) {
				sp := steadyStepperCores(b, grid.Grid{Root: 2, L1: 5, L2: 5}, lin, cores)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := sp.Step(); err != nil {
						b.Fatal(err)
					}
				}
				st := sp.Stats()
				b.ReportMetric(float64(st.LinIters)/float64(st.Steps+st.Rejected), "krylov_iters/step")
			})
		}
	}
}

// BenchmarkIntegrateWorkspaceReuse contrasts a fresh workspace per
// integration (the seed behaviour) with a shared one (the sequential
// driver's behaviour) on repeated short integrations.
func BenchmarkIntegrateWorkspaceReuse(b *testing.B) {
	g := grid.Grid{Root: 2, L1: 2, L2: 2}
	for _, reuse := range []bool{false, true} {
		b.Run(fmt.Sprintf("reuse=%v", reuse), func(b *testing.B) {
			d := pde.NewDisc(g, pde.PaperProblem())
			u0 := d.InitialInterior()
			var ws *rosenbrock.Workspace
			if reuse {
				ws = rosenbrock.NewWorkspace()
			}
			u := u0.Clone()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(u, u0)
				if _, err := rosenbrock.Integrate(d, u, 0, 0.01, rosenbrock.Config{Tol: 1e-3, Work: ws}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

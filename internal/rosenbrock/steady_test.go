package rosenbrock_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/pde"
	"repro/internal/rosenbrock"
)

// steadyStepper builds a warm stepper on a periodically forced transport
// problem with an effectively infinite horizon. The forcing keeps the
// solution moving forever, so the controller holds a bounded step size and
// every Step call does the full hot-loop work (with the paper's decaying
// pulse the error estimate collapses, h grows geometrically and t1 is
// reached in a few dozen steps — useless for metering the loop).
func steadyStepper(tb testing.TB, g grid.Grid, lin rosenbrock.LinearSolver) *rosenbrock.Stepper {
	prob := &pde.Problem{
		A1: 1, A2: 0.5, D: 0.01,
		Source: func(x, y, t float64) float64 {
			return math.Cos(t) * math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		},
	}
	d := pde.NewDisc(g, prob)
	u := d.InitialInterior()
	sp, err := rosenbrock.NewStepper(d, u, 0, 1e9, rosenbrock.Config{Tol: 1e-3, Solver: lin, MaxSteps: 1 << 60})
	if err != nil {
		tb.Fatal(err)
	}
	// Warm up: let the controller settle and every lazily-grown buffer
	// reach its final size.
	for i := 0; i < 25; i++ {
		if err := sp.Step(); err != nil {
			tb.Fatal(err)
		}
	}
	if sp.Done() {
		tb.Fatal("steady stepper finished during warm-up; the harness is not metering the hot loop")
	}
	return sp
}

// TestStepAllocFree asserts the acceptance criterion of the hot-loop
// rework: one steady-state Rosenbrock step — operator update, both stage
// solves, error control — performs zero allocations, for every inner
// linear solver.
func TestStepAllocFree(t *testing.T) {
	for _, lin := range []rosenbrock.LinearSolver{rosenbrock.BiCGStab, rosenbrock.GMRES, rosenbrock.ILU} {
		t.Run(lin.String(), func(t *testing.T) {
			sp := steadyStepper(t, grid.Grid{Root: 2, L1: 2, L2: 2}, lin)
			before := sp.Stats()
			var stepErr error
			if n := testing.AllocsPerRun(200, func() {
				if err := sp.Step(); err != nil {
					stepErr = err
				}
			}); n != 0 {
				t.Fatalf("%v: %v allocs per step in steady state, want 0", lin, n)
			}
			if stepErr != nil {
				t.Fatal(stepErr)
			}
			after := sp.Stats()
			// Every metered call must have been a real step attempt, not a
			// post-completion no-op.
			if attempts := (after.Steps + after.Rejected) - (before.Steps + before.Rejected); attempts < 200 {
				t.Fatalf("only %d real step attempts were metered", attempts)
			}
		})
	}
}

// BenchmarkSubsolveSteady times the steady-state stepping loop of one
// Subsolve (the paper's heavy kernel) with allocation reporting: the
// b.ReportAllocs line in the output must read 0 allocs/op.
func BenchmarkSubsolveSteady(b *testing.B) {
	for _, lin := range []rosenbrock.LinearSolver{rosenbrock.BiCGStab, rosenbrock.GMRES, rosenbrock.ILU} {
		b.Run(lin.String(), func(b *testing.B) {
			sp := steadyStepper(b, grid.Grid{Root: 2, L1: 3, L2: 3}, lin)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sp.Step(); err != nil {
					b.Fatal(err)
				}
			}
			st := sp.Stats()
			b.ReportMetric(float64(st.LinIters)/float64(st.Steps+st.Rejected), "krylov_iters/step")
		})
	}
}

// BenchmarkIntegrateWorkspaceReuse contrasts a fresh workspace per
// integration (the seed behaviour) with a shared one (the sequential
// driver's behaviour) on repeated short integrations.
func BenchmarkIntegrateWorkspaceReuse(b *testing.B) {
	g := grid.Grid{Root: 2, L1: 2, L2: 2}
	for _, reuse := range []bool{false, true} {
		b.Run(fmt.Sprintf("reuse=%v", reuse), func(b *testing.B) {
			d := pde.NewDisc(g, pde.PaperProblem())
			u0 := d.InitialInterior()
			var ws *rosenbrock.Workspace
			if reuse {
				ws = rosenbrock.NewWorkspace()
			}
			u := u0.Clone()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(u, u0)
				if _, err := rosenbrock.Integrate(d, u, 0, 0.01, rosenbrock.Config{Tol: 1e-3, Work: ws}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package rosenbrock

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

// scalarSystem is u' = lambda*u + g(t), with Jacobian [lambda].
type scalarSystem struct {
	lambda float64
	g      func(t float64) float64
	jac    *linalg.CSR
}

func newScalar(lambda float64, g func(float64) float64) *scalarSystem {
	b := linalg.NewBuilder(1, 1)
	b.Add(0, 0, lambda)
	return &scalarSystem{lambda: lambda, g: g, jac: b.Build()}
}

func (s *scalarSystem) N() int { return 1 }
func (s *scalarSystem) F(t float64, u, out linalg.Vector, ops *linalg.Ops) {
	gv := 0.0
	if s.g != nil {
		gv = s.g(t)
	}
	out[0] = s.lambda*u[0] + gv
	ops.Add(3)
}
func (s *scalarSystem) Jacobian() *linalg.CSR { return s.jac }

func TestDecayAccuracy(t *testing.T) {
	sys := newScalar(-2, nil)
	u := linalg.Vector{1}
	st, err := Integrate(sys, u, 0, 1, Config{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-2)
	if math.Abs(u[0]-want) > 1e-5 {
		t.Fatalf("u(1) = %g, want %g (err %g, steps %d)", u[0], want, u[0]-want, st.Steps)
	}
	if st.Steps == 0 {
		t.Fatal("no steps taken")
	}
}

func TestTimeDependentSource(t *testing.T) {
	// u' = -u + cos(t), u(0)=0 -> u = (sin t + cos t - e^{-t})/2.
	sys := newScalar(-1, math.Cos)
	u := linalg.Vector{0}
	if _, err := Integrate(sys, u, 0, 2, Config{Tol: 1e-7}); err != nil {
		t.Fatal(err)
	}
	want := (math.Sin(2) + math.Cos(2) - math.Exp(-2)) / 2
	if math.Abs(u[0]-want) > 1e-5 {
		t.Fatalf("u(2) = %g, want %g", u[0], want)
	}
}

func TestExactForLinearInTime(t *testing.T) {
	// u' = 1 (g(t)=1, lambda=0): the trapezoidal weights of ROS2 integrate
	// constants exactly; the error estimate is zero so steps grow to the
	// clamp.
	sys := newScalar(0, func(float64) float64 { return 1 })
	u := linalg.Vector{0}
	st, err := Integrate(sys, u, 0, 10, Config{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u[0]-10) > 1e-9 {
		t.Fatalf("u(10) = %g, want 10", u[0])
	}
	if st.Rejected != 0 {
		t.Errorf("rejected %d steps on an exactly-representable problem", st.Rejected)
	}
}

func TestToleranceControlsError(t *testing.T) {
	// Tighter tolerance must give smaller error and more steps (the
	// mechanism behind the paper's 1.0e-3 vs 1.0e-4 run pairs).
	want := math.Exp(-2)
	var errs []float64
	var steps []int
	for _, tol := range []float64{1e-3, 1e-5, 1e-7} {
		sys := newScalar(-2, nil)
		u := linalg.Vector{1}
		st, err := Integrate(sys, u, 0, 1, Config{Tol: tol})
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, math.Abs(u[0]-want))
		steps = append(steps, st.Steps)
	}
	if !(errs[0] > errs[1] && errs[1] > errs[2]) {
		t.Errorf("errors %v not decreasing with tolerance", errs)
	}
	if !(steps[0] < steps[1] && steps[1] < steps[2]) {
		t.Errorf("steps %v not increasing with tolerance", steps)
	}
}

func TestSecondOrderConvergence(t *testing.T) {
	// With a fixed step (Tol huge so nothing is rejected, H0 set, clamp
	// prevents growth? -- instead emulate fixed step by tiny span), verify
	// global error ~ O(h^2) by comparing two tolerance-driven runs is
	// indirect; here we directly check order by halving H0 on a single
	// step: local error of one ROS2 step is O(tau^3).
	lerr := func(tau float64) float64 {
		sys := newScalar(-1, nil)
		u := linalg.Vector{1}
		// One step exactly: set Tol so large that the step is accepted.
		_, err := Integrate(sys, u, 0, tau, Config{Tol: 1e6, H0: tau})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(u[0] - math.Exp(-tau))
	}
	e1 := lerr(0.2)
	e2 := lerr(0.1)
	ratio := e1 / e2
	// O(tau^3) local error -> ratio ~ 8; allow slack.
	if ratio < 5 || ratio > 12 {
		t.Fatalf("local error ratio %g (e1=%g e2=%g), want ~8 (third-order local)", ratio, e1, e2)
	}
}

func TestStiffStability(t *testing.T) {
	// Very stiff decay: an explicit method with these step counts would
	// explode; ROS2 (L-stable) must stay bounded and accurate.
	sys := newScalar(-1e6, func(t float64) float64 { return 1e6 * math.Sin(t) })
	u := linalg.Vector{1}
	st, err := Integrate(sys, u, 0, 1, Config{Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	// Quasi-steady solution ~ sin(t) for t >> 1e-6.
	if math.Abs(u[0]-math.Sin(1)) > 1e-3 {
		t.Fatalf("u(1) = %g, want ~sin(1)=%g", u[0], math.Sin(1))
	}
	// Order reduction on the stiff source makes the controller take many
	// small steps (global error O(tau) here), but an explicit method would
	// need tau < 2/|lambda| = 2e-6, i.e. >500k steps. L-stability keeps the
	// count four orders of magnitude lower.
	if st.Steps > 50_000 {
		t.Fatalf("stiff problem took %d steps; L-stability not effective", st.Steps)
	}
	if st.Rejected > st.Steps {
		t.Fatalf("rejected %d > accepted %d", st.Rejected, st.Steps)
	}
}

func TestZeroSpanNoWork(t *testing.T) {
	sys := newScalar(-1, nil)
	u := linalg.Vector{1}
	st, err := Integrate(sys, u, 3, 3, Config{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != 0 || u[0] != 1 {
		t.Fatalf("zero-span integration did work: %+v, u=%v", st, u)
	}
}

func TestInvalidArguments(t *testing.T) {
	sys := newScalar(-1, nil)
	if _, err := Integrate(sys, linalg.Vector{1}, 1, 0, Config{Tol: 1e-6}); err == nil {
		t.Error("t1 < t0 accepted")
	}
	if _, err := Integrate(sys, linalg.Vector{1}, 0, 1, Config{Tol: 0}); err == nil {
		t.Error("zero tolerance accepted")
	}
}

func TestMaxStepsEnforced(t *testing.T) {
	sys := newScalar(-1, nil)
	u := linalg.Vector{1}
	_, err := Integrate(sys, u, 0, 1e6, Config{Tol: 1e-10, MaxSteps: 5})
	if err == nil {
		t.Fatal("expected ErrTooManySteps")
	}
}

func TestStatsAccounting(t *testing.T) {
	sys := newScalar(-2, nil)
	u := linalg.Vector{1}
	st, err := Integrate(sys, u, 0, 1, Config{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if st.FEvals != 2*(st.Steps+st.Rejected) {
		t.Errorf("FEvals = %d, want 2*(steps+rejected) = %d", st.FEvals, 2*(st.Steps+st.Rejected))
	}
	if st.Ops.Flops == 0 {
		t.Error("no flops accounted")
	}
}

// diffusion1D is the method-of-lines heat equation with exact solution
// e^{-pi^2 t} sin(pi x): a real PDE-shaped system exercising the BiCGStab
// stage solves.
type diffusion1D struct {
	n   int
	jac *linalg.CSR
}

func newDiffusion1D(n int) *diffusion1D {
	h := 1.0 / float64(n+1)
	b := linalg.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, -2/(h*h))
		if i > 0 {
			b.Add(i, i-1, 1/(h*h))
		}
		if i < n-1 {
			b.Add(i, i+1, 1/(h*h))
		}
	}
	return &diffusion1D{n: n, jac: b.Build()}
}

func (d *diffusion1D) N() int { return d.n }
func (d *diffusion1D) F(t float64, u, out linalg.Vector, ops *linalg.Ops) {
	d.jac.MulVec(out, u, ops)
}
func (d *diffusion1D) Jacobian() *linalg.CSR { return d.jac }

func TestHeatEquation(t *testing.T) {
	n := 63
	sys := newDiffusion1D(n)
	h := 1.0 / float64(n+1)
	u := linalg.NewVector(n)
	for i := range u {
		u[i] = math.Sin(math.Pi * float64(i+1) * h)
	}
	st, err := Integrate(sys, u, 0, 0.1, Config{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	decay := math.Exp(-math.Pi * math.Pi * 0.1)
	maxErr := 0.0
	for i := range u {
		want := decay * math.Sin(math.Pi*float64(i+1)*h)
		if e := math.Abs(u[i] - want); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 5e-4 {
		t.Fatalf("heat equation max error %g (steps %d, liniters %d)", maxErr, st.Steps, st.LinIters)
	}
	if st.LinIters == 0 {
		t.Error("expected BiCGStab iterations on a nontrivial system")
	}
}

func TestGMRESSolverMatchesBiCGStab(t *testing.T) {
	// The inner solver choice must not change the integration result
	// beyond the linear tolerance.
	n := 31
	run := func(s LinearSolver) linalg.Vector {
		sys := newDiffusion1D(n)
		h := 1.0 / float64(n+1)
		u := linalg.NewVector(n)
		for i := range u {
			u[i] = math.Sin(math.Pi * float64(i+1) * h)
		}
		if _, err := Integrate(sys, u, 0, 0.05, Config{Tol: 1e-6, Solver: s}); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		return u
	}
	a := run(BiCGStab)
	b := run(GMRES)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-7 {
			t.Fatalf("solvers diverge at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestLinearSolverString(t *testing.T) {
	if BiCGStab.String() != "BiCGStab" || GMRES.String() != "GMRES" {
		t.Fatalf("%v %v", BiCGStab, GMRES)
	}
}

func TestILUSolverMatchesBiCGStab(t *testing.T) {
	n := 31
	run := func(s LinearSolver) linalg.Vector {
		sys := newDiffusion1D(n)
		h := 1.0 / float64(n+1)
		u := linalg.NewVector(n)
		for i := range u {
			u[i] = math.Sin(math.Pi * float64(i+1) * h)
		}
		if _, err := Integrate(sys, u, 0, 0.05, Config{Tol: 1e-6, Solver: s}); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		return u
	}
	a := run(BiCGStab)
	b := run(ILU)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-7 {
			t.Fatalf("solvers diverge at %d: %g vs %g", i, a[i], b[i])
		}
	}
	if ILU.String() != "ILU-BiCGStab" {
		t.Fatalf("String() = %q", ILU.String())
	}
}

// Package rosenbrock implements the adaptive Rosenbrock time integrator
// that the paper's subsolve routine spends its time in: the two-stage,
// second-order, L-stable ROS2 scheme with an embedded first-order error
// estimate driving the step-size controller, and Jacobi-preconditioned
// BiCGStab for the stage systems (I - gamma*tau*J) k = rhs.
//
// The original application "built up again and again" its system matrix;
// the port no longer does. The shifted stage operator keeps J's merged
// sparsity pattern across the whole integration and a step-size change
// rewrites only the value array in place (linalg.ShiftedOperator); when
// the controller keeps the step, even that is skipped. All solver buffers
// — the BiCGStab vectors, the GMRES Krylov basis, the ILU(0) factors —
// live in a reusable Workspace, and the ILU factorization is keyed on the
// step size so it is redone only when tau actually changes. In steady
// state one step allocates nothing. All work is accounted into a
// linalg.Ops counter so the cluster work model can be calibrated against
// real runs: an in-place update is counted as O(nnz) data movement, not as
// a full rebuild.
package rosenbrock

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Gamma is the ROS2 coefficient 1 + 1/sqrt(2), which makes the scheme
// L-stable.
var Gamma = 1 + 1/math.Sqrt2

// System is a semi-discrete ODE system du/dt = F(t, u) with a constant
// Jacobian (the paper's problem is linear, so J = A exactly).
type System interface {
	// N returns the number of unknowns.
	N() int
	// F evaluates out = F(t, u).
	F(t float64, u, out linalg.Vector, ops *linalg.Ops)
	// Jacobian returns dF/du (not modified by the integrator).
	Jacobian() *linalg.CSR
}

// Config tunes the integration.
type Config struct {
	// Tol is the local error tolerance (the paper's le_tol, argv[3]); it is
	// used as both absolute and relative weight in the WRMS error norm.
	Tol float64
	// H0 is the initial step size; 0 picks (t1-t0)/100.
	H0 float64
	// HMin aborts the integration when the controller pushes the step
	// below it; 0 picks 1e-12*(t1-t0).
	HMin float64
	// MaxSteps bounds accepted+rejected steps; 0 means 10 million.
	MaxSteps int
	// LinTol is the relative residual for the inner BiCGStab solves; 0
	// picks min(1e-8, Tol*1e-3).
	LinTol float64
	// Solver selects the inner linear solver; the zero value is BiCGStab.
	Solver LinearSolver
	// Work is an optional reusable workspace. Passing the same Workspace
	// to successive integrations (as the sequential sparse-grid driver
	// does across its grid family) reuses the solver buffers instead of
	// reallocating them; nil allocates a fresh workspace internally.
	Work *Workspace
}

// LinearSolver selects how the (I - gamma*tau*J) stage systems are solved.
type LinearSolver int

const (
	// BiCGStab is the default: cheap per iteration, no basis storage.
	BiCGStab LinearSolver = iota
	// GMRES uses restarted GMRES(30): monotone residuals, never breaks
	// down, at the price of storing the Krylov basis.
	GMRES
	// ILU uses BiCGStab preconditioned with an ILU(0) factorization of
	// the stage matrix — much stronger than Jacobi on the anisotropic
	// grids. The factorization is cached on the step size, so it is
	// redone (in place) only when the controller changes tau.
	ILU
)

func (s LinearSolver) String() string {
	switch s {
	case GMRES:
		return "GMRES"
	case ILU:
		return "ILU-BiCGStab"
	}
	return "BiCGStab"
}

// Workspace holds every buffer a Rosenbrock integration needs: the stage
// and controller vectors, the shifted stage operator, and the inner linear
// solver's pooled workspace (Krylov vectors, ILU factors). A zero-value
// Workspace is ready to use; buffers grow on demand and are reused across
// integrations, including integrations of different systems and sizes.
// A Workspace is not safe for concurrent use; give each goroutine its own.
type Workspace struct {
	lin linalg.Workspace

	f1, f2, k1, k2, u1, est, uNew linalg.Vector

	// op is the cached shifted operator I - s*J; rebuilt only when the
	// integration targets a different Jacobian.
	op *linalg.ShiftedOperator

	// Fused-phase plans of the stepper's own vector work (stage-2
	// preparation, stage-2 right-hand side, and the stage combination +
	// WRMS error norm), rebuilt by NewStepper after ensure may have
	// re-sliced the vectors they bind. psc holds the scalars the plans
	// read through pointers.
	phPrep, phRhs2, phComb linalg.Phase
	psc                    [pscCount]float64
}

// Scalar slots of the stepper's fused phases.
const (
	pscTau = iota
	psc15Tau
	pscHalfTau
	pscOne
	pscNeg2
	pscTol
	pscCount
)

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Lin exposes the inner linear-solver workspace (for direct solver calls
// sharing the pool).
func (w *Workspace) Lin() *linalg.Workspace { return &w.lin }

// SetTeam routes the integration's hot kernels — the stage solves, the
// shifted-operator rewrite, and the stage-combination vector ops — through
// t (nil restores serial execution). Results are bit-for-bit identical at
// any team size. The workspace does not own the team; the caller keeps
// responsibility for Close.
func (w *Workspace) SetTeam(t *linalg.Team) { w.lin.SetTeam(t) }

// Team returns the team set by SetTeam (nil means serial).
func (w *Workspace) Team() *linalg.Team { return w.lin.Team() }

// TeamSystem is implemented by systems whose F evaluation can use a Team
// (e.g. the PDE right-hand side's SpMV); NewStepper hands the workspace's
// team to such systems automatically.
type TeamSystem interface {
	System
	SetTeam(*linalg.Team)
}

func growVec(v *linalg.Vector, n int) {
	if cap(*v) < n {
		*v = linalg.NewVector(n)
		return
	}
	*v = (*v)[:n]
}

// ensure sizes the stage vectors for n unknowns and binds the shifted
// operator to jac (reusing the previous pattern when it is the same
// matrix).
func (w *Workspace) ensure(n int, jac *linalg.CSR) {
	growVec(&w.f1, n)
	growVec(&w.f2, n)
	growVec(&w.k1, n)
	growVec(&w.k2, n)
	growVec(&w.u1, n)
	growVec(&w.est, n)
	growVec(&w.uNew, n)
	if w.op == nil || w.op.A() != jac {
		w.op = linalg.NewShiftedOperator(jac)
	}
}

// buildStepPhases (re)binds the stepper's fused phases to the stage
// vectors and the caller's solution vector u. All three phases are purely
// elementwise (the WRMS reduction reads only the worker's own chunks), so
// none of them crosses a barrier: one dispatch replaces the whole unfused
// op sequence.
func (w *Workspace) buildStepPhases(u linalg.Vector, tol float64) {
	n := len(u)
	sc := &w.psc
	sc[pscOne] = 1
	sc[pscNeg2] = -2
	sc[pscTol] = tol
	p := &w.phPrep // u1 = u + tau*k1
	p.Reset(n)
	p.Copy(w.u1, u)
	p.AXPY(w.u1, &sc[pscTau], w.k1)
	r := &w.phRhs2 // f2 -= 2*k1; k2 = f2 (stage-2 rhs and initial guess)
	r.Reset(n)
	r.AXPY(w.f2, &sc[pscNeg2], w.k1)
	r.Copy(w.k2, w.f2)
	c := &w.phComb // uNew, est, and the WRMS partials in one dispatch
	c.Reset(n)
	c.Copy(w.uNew, u)
	c.AXPY(w.uNew, &sc[psc15Tau], w.k1)
	c.AXPY(w.uNew, &sc[pscHalfTau], w.k2)
	c.AXPYTo(w.est, w.k1, &sc[pscOne], w.k2)
	c.ScaleTo(w.est, &sc[pscHalfTau], w.est)
	c.WRMS(0, w.est, u, &sc[pscTol], &sc[pscTol])
}

// solve dispatches one stage system to the configured solver, pooling all
// buffers in ws. key is the shift gamma*tau identifying the current stage
// matrix for the ILU factorization cache.
//
//vetsparse:allocfree
func (c Config) solve(ws *Workspace, m *linalg.CSR, x, b linalg.Vector, linTol, key float64, ops *linalg.Ops) (linalg.SolveStats, error) {
	switch c.Solver {
	case GMRES:
		return ws.lin.GMRES(m, x, b, linTol, 0, 0, ops)
	case ILU:
		return ws.lin.BiCGStabILU(m, x, b, linTol, 0, key, ops)
	}
	return ws.lin.BiCGStab(m, x, b, linTol, 0, ops)
}

// Stats reports the cost of an integration.
type Stats struct {
	Steps    int // accepted steps
	Rejected int // rejected steps
	FEvals   int
	LinIters int // total BiCGStab iterations
	Ops      linalg.Ops
}

// ErrStepTooSmall is returned when the controller underflows HMin.
var ErrStepTooSmall = errors.New("rosenbrock: step size underflow")

// ErrTooManySteps is returned when MaxSteps is exhausted before t1.
var ErrTooManySteps = errors.New("rosenbrock: step budget exhausted")

// Stepper drives one integration step by step: NewStepper validates and
// prepares the workspace, and each Step call attempts one time step
// (accepted or rejected). Integrate is the run-to-completion wrapper. The
// explicit form exists so callers (and the steady-state benchmarks) can
// observe and meter the per-step hot loop directly.
type Stepper struct {
	sys System
	cfg Config
	u   linalg.Vector

	t, t1    float64
	h, hMin  float64
	linTol   float64
	maxSteps int

	ws *Workspace
	st Stats
}

// NewStepper prepares an integration of sys from t0 to t1 advancing u in
// place. The configuration is validated exactly as Integrate does.
func NewStepper(sys System, u linalg.Vector, t0, t1 float64, cfg Config) (*Stepper, error) {
	n := sys.N()
	if len(u) != n {
		panic(fmt.Sprintf("rosenbrock: u has %d entries for system of %d", len(u), n))
	}
	if t1 < t0 {
		return nil, fmt.Errorf("rosenbrock: t1 %g < t0 %g", t1, t0)
	}
	s := &Stepper{sys: sys, cfg: cfg, u: u, t: t0, t1: t1}
	if t1 == t0 {
		return s, nil // already done; config is irrelevant, as before
	}
	if cfg.Tol <= 0 {
		return nil, errors.New("rosenbrock: Tol must be positive")
	}
	span := t1 - t0
	s.h = cfg.H0
	if s.h <= 0 {
		s.h = span / 100
	}
	s.hMin = cfg.HMin
	if s.hMin <= 0 {
		s.hMin = 1e-12 * span
	}
	s.maxSteps = cfg.MaxSteps
	if s.maxSteps <= 0 {
		s.maxSteps = 10_000_000
	}
	s.linTol = cfg.LinTol
	if s.linTol <= 0 {
		s.linTol = math.Min(1e-8, cfg.Tol*1e-3)
	}
	s.ws = cfg.Work
	if s.ws == nil {
		s.ws = NewWorkspace()
	}
	s.ws.ensure(n, sys.Jacobian())
	s.ws.buildStepPhases(u, cfg.Tol)
	if ts, ok := sys.(TeamSystem); ok {
		ts.SetTeam(s.ws.Team())
	}
	return s, nil
}

// Done reports whether the integration has reached t1.
func (s *Stepper) Done() bool { return s.t >= s.t1 }

// T returns the current integration time.
func (s *Stepper) T() float64 { return s.t }

// Stats returns the cost statistics accumulated so far.
func (s *Stepper) Stats() Stats { return s.st }

// Step attempts one time step: both ROS2 stages, the embedded error
// estimate, and the controller update. An accepted step advances u and t;
// a rejected step only shrinks h. Calling Step after Done is a no-op. In
// steady state (workspace warm, step size held or varied) it allocates
// nothing.
//
//vetsparse:allocfree
func (s *Stepper) Step() error {
	if s.Done() {
		return nil
	}
	if s.st.Steps+s.st.Rejected >= s.maxSteps {
		return ErrTooManySteps
	}
	ops := &s.st.Ops
	ws := s.ws
	tm := ws.Team()
	u := s.u
	// The stepper's own vector work runs as three fused phases (one team
	// dispatch each, zero barriers) when a real team is attached and the
	// system clears the phase cut-over; results are bit-for-bit identical
	// to the unfused op sequence either way.
	fused := tm.Size() > 1 && len(u) >= linalg.ParMinPhase

	tau := math.Min(s.h, s.t1-s.t)
	// M = I - gamma*tau*J: an in-place value rewrite of the cached
	// pattern, skipped entirely when the controller kept the step.
	key := Gamma * tau
	m := ws.op.UpdateWith(tm, key, ops)

	// Stage 1: M k1 = F(t, u).
	s.sys.F(s.t, u, ws.f1, ops)
	s.st.FEvals++
	tm.Copy(ws.k1, ws.f1) // initial guess: explicit value
	s1, err := s.cfg.solve(ws, m, ws.k1, ws.f1, s.linTol, key, ops)
	s.st.LinIters += s1.Iterations
	if err != nil {
		return fmt.Errorf("rosenbrock: stage 1 at t=%g tau=%g: %w", s.t, tau, err)
	}

	// Stage 2: M k2 = F(t+tau, u + tau*k1) - 2 k1.
	if fused {
		ws.psc[pscTau] = tau
		tm.RunPhase(&ws.phPrep)
		ops.Add(ws.phPrep.Flops())
	} else {
		tm.Copy(ws.u1, u)
		tm.AXPY(ws.u1, tau, ws.k1, ops)
	}
	s.sys.F(s.t+tau, ws.u1, ws.f2, ops)
	s.st.FEvals++
	if fused {
		tm.RunPhase(&ws.phRhs2)
		ops.Add(ws.phRhs2.Flops())
	} else {
		tm.AXPY(ws.f2, -2, ws.k1, ops)
		tm.Copy(ws.k2, ws.f2)
	}
	s2, err := s.cfg.solve(ws, m, ws.k2, ws.f2, s.linTol, key, ops)
	s.st.LinIters += s2.Iterations
	if err != nil {
		return fmt.Errorf("rosenbrock: stage 2 at t=%g tau=%g: %w", s.t, tau, err)
	}

	// Candidate solution and embedded error estimate:
	// u_{n+1} = u + 1.5 tau k1 + 0.5 tau k2; est = (tau/2)(k1 + k2).
	var errNorm float64
	if fused {
		ws.psc[psc15Tau] = 1.5 * tau
		ws.psc[pscHalfTau] = 0.5 * tau
		tm.RunPhase(&ws.phComb)
		ops.Add(ws.phComb.Flops())
		errNorm = math.Sqrt(ws.phComb.Fold(0) / float64(len(u)))
	} else {
		tm.Copy(ws.uNew, u)
		tm.AXPY(ws.uNew, 1.5*tau, ws.k1, ops)
		tm.AXPY(ws.uNew, 0.5*tau, ws.k2, ops)
		// est = (0.5 tau)(k1 + 1*k2), fused ops bit-identical to the direct
		// expression (1*x is exact, and Go associates 0.5*tau*(...) leftward).
		tm.AXPYTo(ws.est, ws.k1, 1, ws.k2, nil)
		tm.ScaleTo(ws.est, 0.5*tau, ws.est, nil)
		ops.Add(3 * int64(len(u)))
		errNorm = tm.WRMSNorm(ws.est, u, s.cfg.Tol, s.cfg.Tol, ops)
	}
	if errNorm <= 1 {
		tm.Copy(u, ws.uNew)
		s.t += tau
		s.st.Steps++
	} else {
		s.st.Rejected++
	}
	// Standard order-2 controller with safety factor and clamps.
	factor := 0.8 * math.Pow(math.Max(errNorm, 1e-10), -0.5)
	factor = math.Min(5, math.Max(0.2, factor))
	s.h = tau * factor
	if s.h < s.hMin {
		return fmt.Errorf("%w: h=%g at t=%g", ErrStepTooSmall, s.h, s.t)
	}
	return nil
}

// Integrate advances u from t0 to t1 in place and returns the stats.
func Integrate(sys System, u linalg.Vector, t0, t1 float64, cfg Config) (Stats, error) {
	s, err := NewStepper(sys, u, t0, t1, cfg)
	if err != nil {
		return Stats{}, err
	}
	for !s.Done() {
		if err := s.Step(); err != nil {
			return s.st, err
		}
	}
	return s.st, nil
}

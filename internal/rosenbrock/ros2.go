// Package rosenbrock implements the adaptive Rosenbrock time integrator
// that the paper's subsolve routine spends its time in: the two-stage,
// second-order, L-stable ROS2 scheme with an embedded first-order error
// estimate driving the step-size controller, and Jacobi-preconditioned
// BiCGStab for the stage systems (I - gamma*tau*J) k = rhs.
//
// As in the original application, the system matrix is "built up again and
// again": every step reassembles the shifted operator for the current step
// size, and the adaptive controller recomputes the step from the local
// error estimate. All work is accounted into a linalg.Ops counter so the
// cluster work model can be calibrated against real runs.
package rosenbrock

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Gamma is the ROS2 coefficient 1 + 1/sqrt(2), which makes the scheme
// L-stable.
var Gamma = 1 + 1/math.Sqrt2

// System is a semi-discrete ODE system du/dt = F(t, u) with a constant
// Jacobian (the paper's problem is linear, so J = A exactly).
type System interface {
	// N returns the number of unknowns.
	N() int
	// F evaluates out = F(t, u).
	F(t float64, u, out linalg.Vector, ops *linalg.Ops)
	// Jacobian returns dF/du (not modified by the integrator).
	Jacobian() *linalg.CSR
}

// Config tunes the integration.
type Config struct {
	// Tol is the local error tolerance (the paper's le_tol, argv[3]); it is
	// used as both absolute and relative weight in the WRMS error norm.
	Tol float64
	// H0 is the initial step size; 0 picks (t1-t0)/100.
	H0 float64
	// HMin aborts the integration when the controller pushes the step
	// below it; 0 picks 1e-12*(t1-t0).
	HMin float64
	// MaxSteps bounds accepted+rejected steps; 0 means 10 million.
	MaxSteps int
	// LinTol is the relative residual for the inner BiCGStab solves; 0
	// picks min(1e-8, Tol*1e-3).
	LinTol float64
	// Solver selects the inner linear solver; the zero value is BiCGStab.
	Solver LinearSolver
}

// LinearSolver selects how the (I - gamma*tau*J) stage systems are solved.
type LinearSolver int

const (
	// BiCGStab is the default: cheap per iteration, no basis storage.
	BiCGStab LinearSolver = iota
	// GMRES uses restarted GMRES(30): monotone residuals, never breaks
	// down, at the price of storing the Krylov basis.
	GMRES
	// ILU uses BiCGStab preconditioned with an ILU(0) factorization of
	// the stage matrix — much stronger than Jacobi on the anisotropic
	// grids, at the price of refactorizing whenever the step changes.
	ILU
)

func (s LinearSolver) String() string {
	switch s {
	case GMRES:
		return "GMRES"
	case ILU:
		return "ILU-BiCGStab"
	}
	return "BiCGStab"
}

// solve dispatches one stage system to the configured solver.
func (c Config) solve(m *linalg.CSR, x, b linalg.Vector, linTol float64, ops *linalg.Ops) (linalg.SolveStats, error) {
	switch c.Solver {
	case GMRES:
		return linalg.GMRES(m, x, b, linTol, 0, 0, ops)
	case ILU:
		return linalg.BiCGStabILU(m, x, b, linTol, 0, ops)
	}
	return linalg.BiCGStab(m, x, b, linTol, 0, ops)
}

// Stats reports the cost of an integration.
type Stats struct {
	Steps    int // accepted steps
	Rejected int // rejected steps
	FEvals   int
	LinIters int // total BiCGStab iterations
	Ops      linalg.Ops
}

// ErrStepTooSmall is returned when the controller underflows HMin.
var ErrStepTooSmall = errors.New("rosenbrock: step size underflow")

// ErrTooManySteps is returned when MaxSteps is exhausted before t1.
var ErrTooManySteps = errors.New("rosenbrock: step budget exhausted")

// Integrate advances u from t0 to t1 in place and returns the stats.
func Integrate(sys System, u linalg.Vector, t0, t1 float64, cfg Config) (Stats, error) {
	var st Stats
	n := sys.N()
	if len(u) != n {
		panic(fmt.Sprintf("rosenbrock: u has %d entries for system of %d", len(u), n))
	}
	if t1 < t0 {
		return st, fmt.Errorf("rosenbrock: t1 %g < t0 %g", t1, t0)
	}
	if t1 == t0 {
		return st, nil
	}
	if cfg.Tol <= 0 {
		return st, errors.New("rosenbrock: Tol must be positive")
	}
	span := t1 - t0
	h := cfg.H0
	if h <= 0 {
		h = span / 100
	}
	hMin := cfg.HMin
	if hMin <= 0 {
		hMin = 1e-12 * span
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 10_000_000
	}
	linTol := cfg.LinTol
	if linTol <= 0 {
		linTol = math.Min(1e-8, cfg.Tol*1e-3)
	}

	jac := sys.Jacobian()
	ops := &st.Ops

	f1 := linalg.NewVector(n)
	f2 := linalg.NewVector(n)
	k1 := linalg.NewVector(n)
	k2 := linalg.NewVector(n)
	u1 := linalg.NewVector(n)
	est := linalg.NewVector(n)
	uNew := linalg.NewVector(n)

	t := t0
	for t < t1 {
		if st.Steps+st.Rejected >= maxSteps {
			return st, ErrTooManySteps
		}
		tau := math.Min(h, t1-t)
		// Build M = I - gamma*tau*J. The original application rebuilt its
		// system matrix every time step; we account that cost too.
		m := jac.ShiftedScaled(Gamma * tau)
		ops.Add(2 * int64(jac.NNZ()))

		// Stage 1: M k1 = F(t, u).
		sys.F(t, u, f1, ops)
		st.FEvals++
		copy(k1, f1) // initial guess: explicit value
		s1, err := cfg.solve(m, k1, f1, linTol, ops)
		st.LinIters += s1.Iterations
		if err != nil {
			return st, fmt.Errorf("rosenbrock: stage 1 at t=%g tau=%g: %w", t, tau, err)
		}

		// Stage 2: M k2 = F(t+tau, u + tau*k1) - 2 k1.
		copy(u1, u)
		u1.AXPY(tau, k1, ops)
		sys.F(t+tau, u1, f2, ops)
		st.FEvals++
		f2.AXPY(-2, k1, ops)
		copy(k2, f2)
		s2, err := cfg.solve(m, k2, f2, linTol, ops)
		st.LinIters += s2.Iterations
		if err != nil {
			return st, fmt.Errorf("rosenbrock: stage 2 at t=%g tau=%g: %w", t, tau, err)
		}

		// Candidate solution and embedded error estimate:
		// u_{n+1} = u + 1.5 tau k1 + 0.5 tau k2; est = (tau/2)(k1 + k2).
		copy(uNew, u)
		uNew.AXPY(1.5*tau, k1, ops)
		uNew.AXPY(0.5*tau, k2, ops)
		for i := range est {
			est[i] = 0.5 * tau * (k1[i] + k2[i])
		}
		ops.Add(3 * int64(n))

		errNorm := est.WRMSNorm(u, cfg.Tol, cfg.Tol, ops)
		if errNorm <= 1 {
			copy(u, uNew)
			t += tau
			st.Steps++
		} else {
			st.Rejected++
		}
		// Standard order-2 controller with safety factor and clamps.
		factor := 0.8 * math.Pow(math.Max(errNorm, 1e-10), -0.5)
		factor = math.Min(5, math.Max(0.2, factor))
		h = tau * factor
		if h < hMin {
			return st, fmt.Errorf("%w: h=%g at t=%g", ErrStepTooSmall, h, t)
		}
	}
	return st, nil
}

package cluster

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestComputeCheckedCompletesOnHealthyMachine(t *testing.T) {
	env := sim.NewEnv()
	c := NewPaper(env)
	m := c.Machines[0] // 1200 MHz
	var ok bool
	var at sim.Time
	env.Spawn("w", func(p *sim.Proc) {
		ok = c.ComputeChecked(p, m, 2400) // 2 s
		at = p.Now()
	})
	env.Run()
	if !ok || math.Abs(at-2) > 1e-9 {
		t.Fatalf("ok=%v at=%g, want completion at 2 s", ok, at)
	}
}

func TestComputeCheckedLosesWorkToCrash(t *testing.T) {
	// The machine dies one second into a two-second computation: the work
	// is lost at the crash instant, not at the would-be finish time.
	env := sim.NewEnv()
	c := NewPaper(env)
	m := c.Machines[0]
	m.FailAt(1)
	var ok bool
	var at sim.Time
	env.Spawn("w", func(p *sim.Proc) {
		ok = c.ComputeChecked(p, m, 2400)
		at = p.Now()
	})
	env.Run()
	if ok {
		t.Fatal("computation on a crashing machine reported success")
	}
	if math.Abs(at-1) > 1e-9 {
		t.Fatalf("loss observed at %g, want the crash instant 1", at)
	}
}

func TestComputeCheckedOnDeadMachineFailsImmediately(t *testing.T) {
	env := sim.NewEnv()
	c := NewPaper(env)
	m := c.Machines[0]
	m.FailAt(0.5)
	var ok bool
	var at sim.Time
	env.SpawnAt(2, "w", func(p *sim.Proc) {
		ok = c.ComputeChecked(p, m, 2400)
		at = p.Now()
	})
	env.Run()
	if ok || at != 2 {
		t.Fatalf("ok=%v at=%g, want immediate failure at 2", ok, at)
	}
}

func TestSlowFromStretchesComputation(t *testing.T) {
	// A factor-3 slowdown starting one second into a two-second job: the
	// first second runs at full speed, the remaining second takes three.
	env := sim.NewEnv()
	c := NewPaper(env)
	m := c.Machines[0]
	m.SlowFrom(1, 3)
	var at sim.Time
	env.Spawn("w", func(p *sim.Proc) {
		c.Compute(p, m, 2400)
		at = p.Now()
	})
	env.Run()
	if math.Abs(at-4) > 1e-9 {
		t.Fatalf("finish at %g, want 4 (1 s full speed + 3 s stretched)", at)
	}
}

func TestPlaceSkipsDeadMachines(t *testing.T) {
	// The first locus machine is dead and the second hosts a reusable
	// instance whose machine also dies: placement must skip both and fork
	// on the third.
	env := sim.NewEnv()
	c := NewPaper(env)
	s := NewSpawner(c, SpawnerConfig{
		Loci:      []*Machine{c.Machines[1], c.Machines[2], c.Machines[3]},
		Perpetual: true,
		MaxLoad:   1,
	})
	var hosts []*Machine
	env.Spawn("m", func(p *sim.Proc) {
		t1 := s.Place(p, 1) // forks on Machines[1]
		s.Leave(t1, 1)      // idle perpetual instance, reusable
		c.Machines[1].FailAt(p.Now())
		c.Machines[2].FailAt(p.Now())
		s.KillHost(c.Machines[1])
		p.Hold(1)
		t2 := s.Place(p, 1) // must skip the dead instance and dead locus
		hosts = append(hosts, t1.Host, t2.Host)
	})
	env.Run()
	if hosts[0] != c.Machines[1] || hosts[1] != c.Machines[3] {
		t.Fatalf("hosts = %s, %s; want %s then %s",
			hosts[0].Name(), hosts[1].Name(), c.Machines[1].Name(), c.Machines[3].Name())
	}
}

func TestKillHostDropsInstancesFromTrace(t *testing.T) {
	env := sim.NewEnv()
	c := NewPaper(env)
	s := NewSpawner(c, SpawnerConfig{
		Loci:    []*Machine{c.Machines[1], c.Machines[2]},
		MaxLoad: 1,
	})
	env.Spawn("m", func(p *sim.Proc) {
		a := s.Place(p, 1) // Machines[1]
		b := s.Place(p, 1) // Machines[2]
		p.Hold(1)
		c.Machines[1].FailAt(p.Now())
		if killed := s.KillHost(c.Machines[1]); killed != 1 {
			t.Errorf("killed %d instances, want 1", killed)
		}
		if c.Alive() != 1 {
			t.Errorf("alive = %d after crash, want 1", c.Alive())
		}
		// Leaving the dead instance must not double-count its death; the
		// survivor leaves normally.
		s.Leave(a, 1)
		if c.Alive() != 1 {
			t.Errorf("alive = %d after leaving the dead instance, want 1", c.Alive())
		}
		s.Leave(b, 1)
		if c.Alive() != 0 {
			t.Errorf("alive = %d at the end, want 0", c.Alive())
		}
	})
	env.Run()
}

package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPaperClusterComposition(t *testing.T) {
	specs := PaperCluster()
	if len(specs) != 32 {
		t.Fatalf("cluster size = %d, want 32", len(specs))
	}
	counts := map[float64]int{}
	for _, s := range specs {
		counts[s.MHz]++
	}
	if counts[1200] != 24 || counts[1400] != 5 || counts[1466] != 3 {
		t.Fatalf("clock mix = %v, want 24x1200 5x1400 3x1466", counts)
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate host name %q", s.Name)
		}
		seen[s.Name] = true
	}
	// The six hosts named in the paper's §6 output must be present.
	for _, n := range []string{"bumpa", "diplice", "alboka", "altfluit", "arghul", "basfluit"} {
		if !seen[n+".sen.cwi.nl"] {
			t.Errorf("paper host %s missing", n)
		}
	}
}

func TestComputeScalesWithClock(t *testing.T) {
	env := sim.NewEnv()
	c := NewPaper(env)
	slow := c.Machines[0]  // 1200 MHz
	fast := c.Machines[31] // 1466 MHz
	if slow.Spec.MHz != 1200 || fast.Spec.MHz != 1466 {
		t.Fatalf("unexpected machine order: %g, %g", slow.Spec.MHz, fast.Spec.MHz)
	}
	var tSlow, tFast sim.Time
	env.Spawn("a", func(p *sim.Proc) {
		c.Compute(p, slow, 2400) // 2400 Mc / 1200 MHz = 2 s
		tSlow = p.Now()
	})
	env.Spawn("b", func(p *sim.Proc) {
		c.Compute(p, fast, 2932) // 2932 Mc / 1466 MHz = 2 s
		tFast = p.Now()
	})
	env.Run()
	if math.Abs(tSlow-2) > 1e-9 || math.Abs(tFast-2) > 1e-9 {
		t.Fatalf("compute times = %g, %g; want 2, 2", tSlow, tFast)
	}
}

func TestComputeQueuesOnOneCPU(t *testing.T) {
	env := sim.NewEnv()
	c := NewPaper(env)
	m := c.Machines[0]
	done := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("w", func(p *sim.Proc) {
			c.Compute(p, m, 1200) // 1 s each
			done[i] = p.Now()
		})
	}
	env.Run()
	if done[0] != 1 || done[1] != 2 {
		t.Fatalf("done = %v, want [1 2] (serialized on one CPU)", done)
	}
}

func TestTransferTime(t *testing.T) {
	env := sim.NewEnv()
	c := NewPaper(env)
	var at sim.Time
	env.Spawn("p", func(p *sim.Proc) {
		// 1.25 MB at 100 Mbps = 0.1 s, plus 0.5 ms latency.
		c.Transfer(p, c.Machines[0], c.Machines[1], 1.25e6)
		at = p.Now()
	})
	env.Run()
	want := 0.0005 + 0.1
	if math.Abs(at-want) > 1e-9 {
		t.Fatalf("transfer time = %g, want %g", at, want)
	}
}

func TestLocalTransferIsFree(t *testing.T) {
	env := sim.NewEnv()
	c := NewPaper(env)
	var at sim.Time
	env.Spawn("p", func(p *sim.Proc) {
		c.Transfer(p, c.Machines[0], c.Machines[0], 1e9)
		at = p.Now()
	})
	env.Run()
	if at != 0 {
		t.Fatalf("local transfer took %g, want 0", at)
	}
}

func TestOppositeTransfersDoNotDeadlock(t *testing.T) {
	env := sim.NewEnv()
	c := NewPaper(env)
	a, b := c.Machines[0], c.Machines[1]
	finished := 0
	env.Spawn("ab", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			c.Transfer(p, a, b, 1e6)
		}
		finished++
	})
	env.Spawn("ba", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			c.Transfer(p, b, a, 1e6)
		}
		finished++
	})
	env.Run()
	if finished != 2 {
		t.Fatalf("finished = %d, want 2 (blocked: %v)", finished, env.Blocked())
	}
}

func spawnerConfig(c *Cluster, perpetual bool) SpawnerConfig {
	return SpawnerConfig{
		Loci:      c.Machines[1:],
		Perpetual: perpetual,
		MaxLoad:   1,
		ForkCost:  1.0,
		ReuseCost: 0.05,
	}
}

func TestPerpetualReuse(t *testing.T) {
	env := sim.NewEnv()
	c := NewPaper(env)
	s := NewSpawner(c, spawnerConfig(c, true))
	env.Spawn("driver", func(p *sim.Proc) {
		// Sequential lifecycle: each worker dies before the next arrives,
		// so one task instance should be forked and then reused.
		for i := 0; i < 5; i++ {
			ti := s.Place(p, 1)
			p.Hold(0.1)
			s.Leave(ti, 1)
		}
		s.RetireAll()
	})
	env.Run()
	if s.Forks() != 1 {
		t.Errorf("forks = %d, want 1 (perpetual reuse)", s.Forks())
	}
	if s.Reuses() != 4 {
		t.Errorf("reuses = %d, want 4", s.Reuses())
	}
	if peak := c.Trace().Peak(); peak != 1 {
		t.Errorf("peak machines = %d, want 1", peak)
	}
}

func TestNonPerpetualForksEachTime(t *testing.T) {
	env := sim.NewEnv()
	c := NewPaper(env)
	s := NewSpawner(c, spawnerConfig(c, false))
	env.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			ti := s.Place(p, 1)
			p.Hold(0.1)
			s.Leave(ti, 1) // dies at load zero
		}
	})
	env.Run()
	if s.Forks() != 5 {
		t.Errorf("forks = %d, want 5 (no reuse without perpetual)", s.Forks())
	}
}

func TestConcurrentWorkersPeak(t *testing.T) {
	env := sim.NewEnv()
	c := NewPaper(env)
	s := NewSpawner(c, spawnerConfig(c, true))
	env.Spawn("driver", func(p *sim.Proc) {
		var tis []*TaskInstance
		for i := 0; i < 8; i++ {
			tis = append(tis, s.Place(p, 1))
		}
		p.Hold(10)
		for _, ti := range tis {
			s.Leave(ti, 1)
		}
		s.RetireAll()
	})
	env.Run()
	if peak := c.Trace().Peak(); peak != 8 {
		t.Errorf("peak = %d, want 8", peak)
	}
}

func TestMaxLoadBundling(t *testing.T) {
	env := sim.NewEnv()
	c := NewPaper(env)
	cfg := spawnerConfig(c, true)
	cfg.MaxLoad = 6 // the paper's "{load 6}" parallel bundling
	s := NewSpawner(c, cfg)
	env.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			s.Place(p, 1)
		}
	})
	env.Run()
	if s.Forks() != 1 {
		t.Errorf("forks = %d, want 1 (all six processes share one task instance)", s.Forks())
	}
}

func TestWeightedAverage(t *testing.T) {
	u := UsageTrace{}
	u.record(0, 1)
	u.record(10, 3)
	u.record(20, 0)
	// [0,10): 1, [10,20): 3, [20,30): 0 -> average over [0,30] = 40/30.
	got := u.WeightedAverage(0, 30)
	want := 40.0 / 30.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("weighted average = %g, want %g", got, want)
	}
	// Sub-interval starting mid-step.
	got = u.WeightedAverage(5, 15)
	want = (5*1 + 5*3) / 10.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("weighted average [5,15] = %g, want %g", got, want)
	}
}

func TestAdoptCountsInTrace(t *testing.T) {
	env := sim.NewEnv()
	c := NewPaper(env)
	s := NewSpawner(c, spawnerConfig(c, true))
	env.Spawn("driver", func(p *sim.Proc) {
		master := s.Adopt(c.Machines[0], 1)
		p.Hold(5)
		s.Retire(master)
	})
	env.Run()
	if peak := c.Trace().Peak(); peak != 1 {
		t.Fatalf("peak = %d, want 1", peak)
	}
	if avg := c.Trace().WeightedAverage(0, 5); math.Abs(avg-1) > 1e-12 {
		t.Fatalf("avg = %g, want 1", avg)
	}
}

// Property: the weighted average of a usage trace is bounded by its peak
// and is non-negative.
func TestPropWeightedAverageBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		u := UsageTrace{}
		t0 := 0.0
		for i, r := range raw {
			if i > 30 {
				break
			}
			u.record(t0, int(r%16))
			t0 += 1 + float64(r%7)
		}
		if t0 == 0 {
			return true
		}
		avg := u.WeightedAverage(0, t0)
		return avg >= 0 && avg <= float64(u.Peak())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: placing then leaving n workers with perpetual reuse never uses
// more task instances than the maximum number simultaneously alive.
func TestPropForksBoundedByConcurrency(t *testing.T) {
	f := func(nRaw, holdRaw uint8) bool {
		n := int(nRaw%20) + 1
		hold := float64(holdRaw%10) / 2
		env := sim.NewEnv()
		c := NewPaper(env)
		s := NewSpawner(c, spawnerConfig(c, true))
		env.Spawn("driver", func(p *sim.Proc) {
			var tis []*TaskInstance
			for i := 0; i < n; i++ {
				ti := s.Place(p, 1)
				tis = append(tis, ti)
				env.Spawn("w", func(wp *sim.Proc) {
					wp.Hold(hold)
					s.Leave(ti, 1)
				})
			}
			_ = tis
		})
		env.Run()
		return s.Forks() <= c.Trace().Peak() && s.Forks() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Package cluster models the hardware substrate of the paper's evaluation:
// a cluster of single-processor workstations with heterogeneous CPU clock
// rates connected by switched 100 Mbps Ethernet, on which operating-system
// level task instances are forked, reused ("perpetual" semantics) and
// retired.
//
// The model runs on the deterministic virtual clock of internal/sim, so a
// paper-scale experiment (thousands of seconds of 2004 wall-clock time)
// replays in milliseconds while preserving the sequencing that shaped the
// paper's numbers: sequential task forks, master-mediated data transfers,
// CPU contention and the ebb & flow of live task instances.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// MachineSpec describes one workstation.
type MachineSpec struct {
	Name string
	MHz  float64 // CPU clock rate in MHz; work is expressed in megacycles
}

// PaperCluster returns the 32-machine CWI cluster from §7 of the paper:
// 24 AMD Athlons at 1200 MHz, 5 at 1400 MHz and 3 at 1466 MHz, all with
// switched 100 Mbps Ethernet. The six host names that appear in the paper's
// §6 output come first; the remaining names are synthesized in the same
// style (the paper's hosts are named after folk instruments).
func PaperCluster() []MachineSpec {
	names := []string{
		"bumpa", "diplice", "alboka", "altfluit", "arghul", "basfluit",
		"bansuri", "bombarde", "cimbasso", "cornamusa", "didgeridoo", "dizi",
		"duduk", "dulzaina", "fujara", "gaita", "gemshorn", "hichiriki",
		"hulusi", "kaval", "launeddas", "mizmar", "ocarina", "pibgorn",
		"quena", "rauschpfeife", "shakuhachi", "shawm", "sopilka", "tarogato",
		"tsampouna", "zurna",
	}
	specs := make([]MachineSpec, 32)
	for i := range specs {
		mhz := 1200.0
		switch {
		case i >= 29: // 3 machines at 1466 MHz
			mhz = 1466
		case i >= 24: // 5 machines at 1400 MHz
			mhz = 1400
		}
		specs[i] = MachineSpec{Name: names[i] + ".sen.cwi.nl", MHz: mhz}
	}
	return specs
}

// Machine is a single-processor workstation: a CPU (capacity 1) and a
// network interface that serializes this host's transfers. A machine can be
// scheduled to crash (it disappears, taking its task instances with it) or
// to slow down (multi-user load, the paper's runaway-Netscape effect).
type Machine struct {
	Spec  MachineSpec
	Index int
	cpu   *sim.Resource
	nic   *sim.Resource

	crashAt    sim.Time // virtual time at which the machine dies; Infinity = never
	slowAt     sim.Time // virtual time from which computation stretches
	slowFactor float64  // stretch factor from slowAt on; 1 = full speed
}

// Name returns the host name.
func (m *Machine) Name() string { return m.Spec.Name }

// FailAt schedules the machine to crash at virtual time t: computations in
// flight at t are lost (ComputeChecked reports the loss) and no new task
// instance is placed on the machine at or after t.
func (m *Machine) FailAt(t sim.Time) { m.crashAt = t }

// SlowFrom stretches every computation on the machine by the given factor
// from virtual time t on (factor 3 means a third of the original speed).
func (m *Machine) SlowFrom(t sim.Time, factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("cluster: slow factor %g <= 0", factor))
	}
	m.slowAt = t
	m.slowFactor = factor
}

// AliveAt reports whether the machine has not yet crashed at time t.
func (m *Machine) AliveAt(t sim.Time) bool { return t < m.crashAt }

// CrashTime returns the scheduled crash time (Infinity when none).
func (m *Machine) CrashTime() sim.Time { return m.crashAt }

// stretch returns the duration of a computation starting at now that would
// take d seconds at full speed, accounting for a slowdown beginning at
// slowAt (piecewise: full speed before, stretched after).
func (m *Machine) stretch(now sim.Time, d float64) float64 {
	if m.slowFactor == 1 || now+d <= m.slowAt {
		return d
	}
	if now >= m.slowAt {
		return d * m.slowFactor
	}
	pre := m.slowAt - now
	return pre + (d-pre)*m.slowFactor
}

// Cluster is a set of machines plus the shared network parameters and the
// task-instance bookkeeping.
type Cluster struct {
	Env           *sim.Env
	Machines      []*Machine
	BandwidthMbps float64 // per-link bandwidth of the switched Ethernet
	LatencySec    float64 // per-message latency (switch + protocol stack)

	// Noise, when non-nil, multiplies every compute duration by a factor
	// drawn from this source, emulating the paper's multi-user
	// perturbations. Nil means noise-free.
	Noise *rand.Rand
	// NoiseAmplitude is the maximum relative perturbation (e.g. 0.05 for
	// +/-5%). Only used when Noise is non-nil.
	NoiseAmplitude float64

	// Obs, when non-nil, records task-instance lifecycle events (fork,
	// adopt, reuse, kill) stamped with the virtual clock, so a simulated run
	// exports the same timeline formats as a live one. Nil costs nothing.
	Obs *obs.Recorder

	trace  UsageTrace
	nextID int
	alive  int
}

// emit records one virtual-time event on the cluster recorder (no-op when
// observability is off).
func (c *Cluster) emit(k obs.Kind, host string, a, b int64) {
	if c.Obs != nil {
		c.Obs.EmitAt(int64(c.Env.Now()*1e6), k, host, "Spawner", "", a, b)
	}
}

// New builds a cluster over the given simulation environment.
func New(env *sim.Env, specs []MachineSpec, bandwidthMbps, latencySec float64) *Cluster {
	c := &Cluster{
		Env:           env,
		BandwidthMbps: bandwidthMbps,
		LatencySec:    latencySec,
	}
	for i, s := range specs {
		c.Machines = append(c.Machines, &Machine{
			Spec:       s,
			Index:      i,
			cpu:        sim.NewResource(env, s.Name+"/cpu", 1),
			nic:        sim.NewResource(env, s.Name+"/nic", 1),
			crashAt:    sim.Infinity,
			slowAt:     sim.Infinity,
			slowFactor: 1,
		})
	}
	return c
}

// NewPaper builds the paper's 32-node cluster (100 Mbps, 0.5 ms latency).
func NewPaper(env *sim.Env) *Cluster {
	return New(env, PaperCluster(), 100, 0.0005)
}

// MachineByName returns the machine with the given host name, or nil.
func (c *Cluster) MachineByName(name string) *Machine {
	for _, m := range c.Machines {
		if m.Spec.Name == name {
			return m
		}
	}
	return nil
}

// Compute occupies machine m's CPU for work megacycles of computation
// (seconds = megacycles / MHz), queueing behind other processes using the
// same CPU.
func (c *Cluster) Compute(p *sim.Proc, m *Machine, megacycles float64) {
	if megacycles < 0 {
		panic(fmt.Sprintf("cluster: negative work %g", megacycles))
	}
	d := megacycles / m.Spec.MHz
	if c.Noise != nil {
		d *= 1 + c.NoiseAmplitude*(2*c.Noise.Float64()-1)
	}
	m.cpu.Acquire(p, 1)
	p.Hold(m.stretch(p.Now(), d))
	m.cpu.Release(1)
}

// ComputeChecked is Compute on a machine that may crash: it returns true
// when the computation completed, and false when the machine died first (in
// which case the calling process has been held until the crash instant —
// the moment the work was lost). Slow-node stretching applies as in
// Compute.
func (c *Cluster) ComputeChecked(p *sim.Proc, m *Machine, megacycles float64) bool {
	if megacycles < 0 {
		panic(fmt.Sprintf("cluster: negative work %g", megacycles))
	}
	d := megacycles / m.Spec.MHz
	if c.Noise != nil {
		d *= 1 + c.NoiseAmplitude*(2*c.Noise.Float64()-1)
	}
	m.cpu.Acquire(p, 1)
	now := p.Now()
	if !m.AliveAt(now) {
		m.cpu.Release(1)
		return false
	}
	d = m.stretch(now, d)
	if now+d >= m.crashAt {
		p.Hold(m.crashAt - now)
		m.cpu.Release(1)
		return false
	}
	p.Hold(d)
	m.cpu.Release(1)
	return true
}

// Transfer moves bytes from one machine to another, serializing on both
// hosts' network interfaces. Transfers within one host are free (shared
// memory between threads of one task instance).
func (c *Cluster) Transfer(p *sim.Proc, from, to *Machine, bytes float64) {
	if from == to {
		return
	}
	// Acquire NICs in index order so concurrent opposite transfers cannot
	// deadlock on the FIFO resources.
	first, second := from, to
	if second.Index < first.Index {
		first, second = second, first
	}
	first.nic.Acquire(p, 1)
	second.nic.Acquire(p, 1)
	p.Hold(c.LatencySec + bytes*8/(c.BandwidthMbps*1e6))
	second.nic.Release(1)
	first.nic.Release(1)
}

// TaskInstance is an operating-system level process housing one or more
// coordination-level processes (threads). It corresponds to a MANIFOLD task
// instance: it has a weight-based load, may be perpetual (staying alive at
// load zero to welcome new workers), and occupies one machine.
type TaskInstance struct {
	ID        int
	Host      *Machine
	Perpetual bool
	MaxLoad   int
	load      int
	idleEpoch int
	dead      bool
}

// Load returns the current load (sum of weights of housed processes).
func (t *TaskInstance) Load() int { return t.load }

// Alive reports whether the task instance still exists.
func (t *TaskInstance) Alive() bool { return !t.dead }

// SpawnerConfig controls task-instance creation.
type SpawnerConfig struct {
	// Loci is the list of machines on which new task instances may be
	// started, used round-robin (the CONFIG {locus ...} line).
	Loci []*Machine
	// Perpetual keeps task instances alive at load zero for reuse (the
	// MLINK {perpetual} keyword).
	Perpetual bool
	// MaxLoad is the load at which a task instance is full (the MLINK
	// {load N} line).
	MaxLoad int
	// ForkCost is the virtual seconds needed to start a fresh task
	// instance on a remote machine (process fork, executable start-up,
	// inter-task channel setup).
	ForkCost float64
	// ReuseCost is the much smaller cost of placing a new process in an
	// already-running perpetual task instance.
	ReuseCost float64
	// IdleTimeout, when positive, reclaims a perpetual task instance that
	// has stayed at load zero for this many seconds.
	IdleTimeout float64
}

// Spawner creates, reuses and retires task instances on a cluster,
// recording the number of live instances over time (the paper's "number of
// machines", Figure 1).
type Spawner struct {
	Cluster *Cluster
	Config  SpawnerConfig
	tasks   []*TaskInstance
	next    int // round-robin cursor into Config.Loci
	forks   int
	reuses  int
}

// NewSpawner creates a spawner. The usage trace starts at zero machines.
func NewSpawner(c *Cluster, cfg SpawnerConfig) *Spawner {
	if cfg.MaxLoad < 1 {
		cfg.MaxLoad = 1
	}
	s := &Spawner{Cluster: c, Config: cfg}
	c.trace.record(c.Env.Now(), c.alive)
	return s
}

func (c *Cluster) markAlive(delta int) {
	c.alive += delta
	c.trace.record(c.Env.Now(), c.alive)
}

// Place finds room for a process of the given weight: it reuses a live
// task instance with spare load if one exists (cheap), otherwise forks a
// fresh task instance on the next locus machine (expensive). Crashed
// machines are skipped — their instances are never reused and no fresh
// instance is forked on them. The calling simulated process pays the cost.
func (s *Spawner) Place(p *sim.Proc, weight int) *TaskInstance {
	now := s.Cluster.Env.Now()
	// Prefer the oldest live instance with room (deterministic).
	for _, t := range s.tasks {
		if !t.dead && t.Host.AliveAt(now) && t.load+weight <= t.MaxLoad {
			p.Hold(s.Config.ReuseCost)
			t.load += weight
			t.idleEpoch++ // invalidate any pending reap
			s.reuses++
			s.Cluster.emit(obs.KTaskReuse, t.Host.Name(), int64(t.ID), int64(t.load))
			return t
		}
	}
	var host *Machine
	for range s.Config.Loci {
		cand := s.Config.Loci[s.next%len(s.Config.Loci)]
		s.next++
		if cand.AliveAt(now) {
			host = cand
			break
		}
	}
	if host == nil {
		panic("cluster: no locus machine left alive")
	}
	p.Hold(s.Config.ForkCost)
	s.forks++
	c := s.Cluster
	c.nextID++
	t := &TaskInstance{
		ID:        c.nextID,
		Host:      host,
		Perpetual: s.Config.Perpetual,
		MaxLoad:   s.Config.MaxLoad,
		load:      weight,
	}
	s.tasks = append(s.tasks, t)
	c.markAlive(1)
	c.emit(obs.KTaskFork, host.Name(), int64(t.ID), int64(t.load))
	return t
}

// Adopt registers an externally created task instance (e.g. the start-up
// task housing the master on the machine the user sits behind) so that it
// is counted in the usage trace.
func (s *Spawner) Adopt(host *Machine, weight int) *TaskInstance {
	c := s.Cluster
	c.nextID++
	t := &TaskInstance{
		ID:        c.nextID,
		Host:      host,
		Perpetual: s.Config.Perpetual,
		MaxLoad:   s.Config.MaxLoad,
		load:      weight,
	}
	s.tasks = append(s.tasks, t)
	c.markAlive(1)
	c.emit(obs.KTaskAdopt, host.Name(), int64(t.ID), int64(t.load))
	return t
}

// Leave removes one process of the given weight from t. A non-perpetual
// task instance dies when its load reaches zero; a perpetual one stays
// alive (but idle), ready to welcome a new worker. Leaving an instance that
// already died with its machine is a no-op.
func (s *Spawner) Leave(t *TaskInstance, weight int) {
	if t.dead {
		return
	}
	t.load -= weight
	if t.load < 0 {
		panic("cluster: task instance load below zero")
	}
	if t.load == 0 {
		if !t.Perpetual {
			s.kill(t)
			return
		}
		// A perpetual task instance stays alive for reuse, but if nobody
		// claims it within the idle timeout the runtime reclaims it (the
		// dynamic shrinking visible in the paper's Figure 1).
		if s.Config.IdleTimeout > 0 {
			t.idleEpoch++
			epoch := t.idleEpoch
			s.Cluster.Env.SpawnAt(s.Cluster.Env.Now()+s.Config.IdleTimeout, "reaper", func(*sim.Proc) {
				if !t.dead && t.load == 0 && t.idleEpoch == epoch {
					s.kill(t)
				}
			})
		}
	}
}

// Retire kills a task instance regardless of perpetual status (end of the
// application).
func (s *Spawner) Retire(t *TaskInstance) {
	if !t.dead {
		s.kill(t)
	}
}

// RetireAll kills every remaining task instance.
func (s *Spawner) RetireAll() {
	for _, t := range s.tasks {
		if !t.dead {
			s.kill(t)
		}
	}
}

func (s *Spawner) kill(t *TaskInstance) {
	if t.dead {
		return
	}
	t.dead = true
	s.Cluster.markAlive(-1)
	s.Cluster.emit(obs.KTaskKill, t.Host.Name(), int64(t.ID), 0)
}

// KillHost kills every task instance living on machine m (the machine
// itself crashed) and returns how many died. The usage trace records the
// drop at the current virtual time.
func (s *Spawner) KillHost(m *Machine) int {
	killed := 0
	for _, t := range s.tasks {
		if !t.dead && t.Host == m {
			s.kill(t)
			killed++
		}
	}
	return killed
}

// Alive returns the number of live task instances.
func (c *Cluster) Alive() int { return c.alive }

// Forks returns how many fresh task instances were started.
func (s *Spawner) Forks() int { return s.forks }

// Reuses returns how many times a live task instance welcomed a new
// process.
func (s *Spawner) Reuses() int { return s.reuses }

// Trace returns the machine-usage trace recorded so far.
func (c *Cluster) Trace() *UsageTrace { return &c.trace }

// UsagePoint is one step of the machines-in-use step function.
type UsagePoint struct {
	T     sim.Time
	Count int
}

// UsageTrace records the number of live task instances over time. Because
// in the paper's deployment every task instance runs on a separate machine,
// this is exactly "the number of machines" of Figure 1.
type UsageTrace struct {
	points []UsagePoint
}

func (u *UsageTrace) record(t sim.Time, count int) {
	if n := len(u.points); n > 0 && u.points[n-1].T == t {
		u.points[n-1].Count = count
		return
	}
	u.points = append(u.points, UsagePoint{T: t, Count: count})
}

// Points returns the recorded step function.
func (u *UsageTrace) Points() []UsagePoint { return u.points }

// Peak returns the maximum simultaneous count.
func (u *UsageTrace) Peak() int {
	peak := 0
	for _, p := range u.points {
		if p.Count > peak {
			peak = p.Count
		}
	}
	return peak
}

// WeightedAverage integrates the step function over [t0, t1] and divides by
// the interval, yielding the paper's "weighted average of the number of
// machines used".
func (u *UsageTrace) WeightedAverage(t0, t1 sim.Time) float64 {
	if t1 <= t0 || len(u.points) == 0 {
		return 0
	}
	// Find the count in effect at t0.
	idx := sort.Search(len(u.points), func(i int) bool { return u.points[i].T > t0 })
	cur := 0
	if idx > 0 {
		cur = u.points[idx-1].Count
	}
	area := 0.0
	t := t0
	for _, p := range u.points[idx:] {
		if p.T >= t1 {
			break
		}
		area += float64(cur) * (p.T - t)
		t = p.T
		cur = p.Count
	}
	area += float64(cur) * (t1 - t)
	return area / (t1 - t0)
}

// Package mwsim replays the restructured application — the master/worker
// protocol of internal/core driving one subsolve worker per family grid —
// on the simulated 32-node cluster of internal/cluster, using the
// calibrated cost model of internal/workmodel for compute and message
// sizes.
//
// This is the experiment engine behind Table 1 and Figures 1-5: a run
// reproduces the sequencing that shaped the paper's measurements (start-up
// of the MANIFOLD runtime, sequential worker placement with perpetual
// task-instance reuse, master-mediated data transfers over 100 Mbps
// Ethernet, heterogeneous CPU speeds, rendezvous, final prolongation) in
// deterministic virtual time.
package mwsim

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/manifold/mconfig"
	"repro/internal/manifold/mlink"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workmodel"
)

// Config describes one concurrent run.
type Config struct {
	Root  int
	Level int
	Tol   float64

	Model workmodel.Model

	// StartupSec models starting the MANIFOLD runtime, reading the CONFIG
	// host file and launching the start-up task instance on the machine
	// the user sits behind.
	StartupSec float64
	// ForkSec is the cost of forking a fresh task instance on a remote
	// machine (paid by the master while it waits for the worker
	// reference).
	ForkSec float64
	// ReuseSec is the cost of installing a worker in an already-running
	// perpetual task instance.
	ReuseSec float64
	// EventSec is the latency of raising one protocol event.
	EventSec float64
	// WorkerSetupSec is the worker-side start-up inside its task instance
	// (loading the solver state, inter-task handshakes). It occupies the
	// task instance — keeping its machine in use — but does not block the
	// master, which has already moved on to the next worker.
	WorkerSetupSec float64
	// IdleTimeoutSec reclaims perpetual task instances idle this long.
	IdleTimeoutSec float64

	// Perpetual mirrors the MLINK {perpetual} keyword; false makes every
	// task instance die with its worker (ablation).
	Perpetual bool
	// MaxLoad mirrors the MLINK {load N} line: how many workers share one
	// task instance. 1 is the paper's distributed deployment; a large
	// value emulates the single-task parallel bundling.
	MaxLoad int
	// IOWorkers enables the paper's §4.1 untried alternative: dedicated
	// I/O workers move the data, so transfers do not occupy the master's
	// own time line (they still contend for the master host's NIC).
	IOWorkers bool
	// PoolPerLevel makes the master open a separate pool (with its own
	// rendezvous barrier) per grid level lm instead of one pool for the
	// whole nested loop (ablation).
	PoolPerLevel bool
	// LociNames, when non-empty, restricts fresh task instances to the
	// named machines (in order), as a CONFIG {locus ...} line does.
	// Unknown names are ignored; an empty result falls back to every
	// machine except the start-up one.
	LociNames []string

	// Faults injects machine-level failures into the run: crashes that
	// lose the machine's task instances and in-flight workers, and
	// slowdowns that stretch its computations. Faults naming unknown
	// machines, and crash faults naming the start-up machine (the master
	// cannot lose its own host), are ignored.
	Faults []MachineFault
	// DetectSec is the failure-detection latency: how long after a crash
	// the master learns that a worker was lost and re-forks its job on
	// another machine. 0 means instant detection.
	DetectSec float64

	// Obs, when non-nil, records the run's virtual-time events (task
	// instance fork/reuse/kill, machine crashes and slowdowns, lost
	// workers) stamped with the virtual clock, so the simulated timeline
	// exports in the same formats as a live run. Nil costs nothing.
	Obs *obs.Recorder
}

// MachineFault schedules one machine-level failure.
type MachineFault struct {
	// Machine is the host name, with or without the ".sen.cwi.nl" suffix.
	Machine string
	// AtSec is the virtual time of the fault.
	AtSec float64
	// Kind is "crash" (the machine dies) or "slow" (it keeps running at
	// reduced speed).
	Kind string
	// Factor is the slowdown factor for "slow" faults (3 = a third of the
	// original speed); ignored for crashes.
	Factor float64
}

// FromDeployment derives the deployment-dependent fields of a Config from
// MLINK and CONFIG sources, tying the paper's §6 application-construction
// pipeline to the simulator: {perpetual} and {load N} come from the MLINK
// task rule, the locus machines from the CONFIG file.
func FromDeployment(base Config, mlinkSrc, configSrc, task string) (Config, error) {
	f, err := mlink.Parse(mlinkSrc)
	if err != nil {
		return base, err
	}
	rule := f.RuleFor(task)
	base.Perpetual = rule.Perpetual
	if rule.Load > 0 {
		base.MaxLoad = rule.Load
	}
	cfg, err := mconfig.Parse(configSrc)
	if err != nil {
		return base, err
	}
	placer, err := cfg.Placer(task)
	if err != nil {
		return base, err
	}
	base.LociNames = placer.Hosts()
	return base, nil
}

// PaperConfig returns the configuration calibrated against the paper's
// concurrent measurements.
func PaperConfig(root, level int, tol float64) Config {
	return Config{
		Root:           root,
		Level:          level,
		Tol:            tol,
		Model:          workmodel.Paper(),
		StartupSec:     2.5,
		ForkSec:        2.0,
		ReuseSec:       1.3,
		EventSec:       0.002,
		WorkerSetupSec: 3.0,
		IdleTimeoutSec: 30,
		Perpetual:      true,
		MaxLoad:        1,
		DetectSec:      5,
	}
}

// Result reports one simulated concurrent run.
type Result struct {
	// ConcurrentSec is the virtual wall-clock time of the whole run
	// (the paper's "ct").
	ConcurrentSec float64
	// SequentialSec is the modelled sequential time on the start-up
	// machine (the paper's "st").
	SequentialSec float64
	// AvgMachines is the weighted average of live task instances (the
	// paper's "m").
	AvgMachines float64
	// PeakMachines is the maximum simultaneous task-instance count.
	PeakMachines int
	// Speedup is SequentialSec / ConcurrentSec (the paper's "su").
	Speedup float64
	// Workers is the number of workers used (2*level + 1).
	Workers int
	// Forks and Reuses split worker placements by task-instance fate.
	Forks, Reuses int
	// Lost counts workers that died with their crashed machine.
	Lost int
	// Retries counts jobs re-dispatched to a replacement worker after a
	// loss (equal to Lost when every loss is recovered).
	Retries int
	// Trace is the machines-in-use step function (Figure 1).
	Trace []cluster.UsagePoint
}

// RunNoisy is Run with the multi-user perturbation model enabled: every
// compute duration is scaled by a deterministic pseudo-random factor in
// [1-amp, 1+amp], emulating the paper's night-time cluster sharing
// (runaway Netscape jobs included). The paper averaged five such runs;
// callers can do the same with five seeds.
func RunNoisy(cfg Config, seed int64, amp float64) Result {
	return run(cfg, seed, amp)
}

// Run simulates one concurrent run, noise-free, and returns its metrics.
func Run(cfg Config) Result { return run(cfg, 0, 0) }

func run(cfg Config, seed int64, noiseAmp float64) Result {
	if cfg.MaxLoad < 1 {
		cfg.MaxLoad = 1
	}
	env := sim.NewEnv()
	cl := cluster.NewPaper(env)
	cl.Obs = cfg.Obs
	if noiseAmp > 0 {
		cl.Noise = rand.New(rand.NewSource(seed))
		cl.NoiseAmplitude = noiseAmp
	}
	masterHost := cl.Machines[0] // the start-up machine (bumpa)
	loci := cl.Machines[1:]
	if len(cfg.LociNames) > 0 {
		var named []*cluster.Machine
		for _, n := range cfg.LociNames {
			if m := cl.MachineByName(n); m != nil {
				named = append(named, m)
			}
		}
		if len(named) > 0 {
			loci = named
		}
	}
	spawner := cluster.NewSpawner(cl, cluster.SpawnerConfig{
		Loci:        loci,
		Perpetual:   cfg.Perpetual,
		MaxLoad:     cfg.MaxLoad,
		ForkCost:    cfg.ForkSec,
		ReuseCost:   cfg.ReuseSec,
		IdleTimeout: cfg.IdleTimeoutSec,
	})
	model := cfg.Model
	fam := grid.Family(cfg.Root, cfg.Level)

	// Group grids into pools: one pool overall, or one per grid level lm.
	var pools [][]grid.Grid
	if cfg.PoolPerLevel {
		byLevel := map[int][]grid.Grid{}
		var order []int
		for _, g := range fam {
			if _, ok := byLevel[g.Level()]; !ok {
				order = append(order, g.Level())
			}
			byLevel[g.Level()] = append(byLevel[g.Level()], g)
		}
		for _, lm := range order {
			pools = append(pools, byLevel[lm])
		}
	} else {
		pools = [][]grid.Grid{fam}
	}

	// Schedule the machine faults. Crashes both mark the machine (so
	// in-flight ComputeChecked calls observe the loss) and kill its task
	// instances at the crash instant (so the usage trace records the drop).
	for _, f := range cfg.Faults {
		m := cl.MachineByName(f.Machine)
		if m == nil {
			m = cl.MachineByName(f.Machine + ".sen.cwi.nl")
		}
		if m == nil {
			continue // unknown machine: ignored
		}
		switch f.Kind {
		case "slow":
			m.SlowFrom(f.AtSec, f.Factor)
			if cfg.Obs != nil {
				cfg.Obs.EmitAt(int64(f.AtSec*1e6), obs.KMachineSlow, m.Name(), "FailurePlan", "", int64(f.Factor), 0)
			}
		case "crash":
			if m == masterHost {
				continue // the master cannot lose its own host
			}
			m.FailAt(f.AtSec)
			mm := m
			env.SpawnAt(f.AtSec, "crash:"+mm.Name(), func(*sim.Proc) {
				if cfg.Obs != nil {
					cfg.Obs.EmitAt(int64(f.AtSec*1e6), obs.KMachineCrash, mm.Name(), "FailurePlan", "", 0, 0)
				}
				spawner.KillHost(mm)
			})
		}
	}

	results := sim.NewStore[arrival](env, "dataport")
	deaths := sim.NewStore[struct{}](env, "death_worker")
	var end sim.Time
	lost, retries := 0, 0

	env.Spawn("Master", func(p *sim.Proc) {
		// MANIFOLD runtime start-up; the start-up task instance houses the
		// master.
		p.Hold(cfg.StartupSec)
		masterTask := spawner.Adopt(masterHost, 1)
		// Sequential initialization work of the legacy code.
		cl.Compute(p, masterHost, model.InitMc)

		// dispatch charges one worker with grid g: the coordinator forks or
		// reuses a task instance (the master waits for the worker
		// reference), then the job data moves — on the master's own time
		// line unless I/O workers carry it (step 3d).
		dispatch := func(g grid.Grid) {
			p.Hold(cfg.EventSec) // raise create_worker
			ti := spawner.Place(p, 1)
			if cfg.IOWorkers {
				env.Spawn("io-out", func(io *sim.Proc) {
					cl.Transfer(io, masterHost, ti.Host, workmodel.JobBytes(g))
					startWorker(env, cl, spawner, cfg, g, ti, masterHost, results, deaths)
				})
			} else {
				cl.Transfer(p, masterHost, ti.Host, workmodel.JobBytes(g))
				startWorker(env, cl, spawner, cfg, g, ti, masterHost, results, deaths)
			}
		}

		for _, pool := range pools {
			p.Hold(cfg.EventSec) // raise create_pool
			for _, g := range pool {
				dispatch(g)
			}
			// Step 3f: collect the pool's results. A failed arrival means a
			// machine crash took the worker with it: the master — already
			// past the detection latency — re-forks the job on a machine
			// that is still alive.
			workers := len(pool)
			for done := 0; done < len(pool); {
				a := results.Get(p)
				if a.ok {
					done++
					continue
				}
				lost++
				retries++
				workers++
				dispatch(a.g)
			}
			// Steps 3g/3h: rendezvous — the coordinator counts one
			// death_worker per worker created for this pool, lost workers
			// included, so the barrier terminates under faults.
			p.Hold(cfg.EventSec) // raise rendezvous
			for i := 0; i < workers; i++ {
				deaths.Get(p)
			}
			p.Hold(cfg.EventSec) // a_rendezvous
		}
		p.Hold(cfg.EventSec) // raise finished
		// Step 5: final sequential prolongation work.
		cl.Compute(p, masterHost, model.ProlongWork(cfg.Root, cfg.Level))
		spawner.Retire(masterTask)
		spawner.RetireAll() // application exit kills perpetual tasks
		end = p.Now()
	})

	env.Run()
	if b := env.Blocked(); len(b) > 0 {
		panic(fmt.Sprintf("mwsim: deadlock: %v", b))
	}

	trace := cl.Trace()
	st := model.SequentialSeconds(cfg.Root, cfg.Level, cfg.Tol, masterHost.Spec.MHz)
	res := Result{
		ConcurrentSec: end,
		SequentialSec: st,
		AvgMachines:   trace.WeightedAverage(0, end),
		PeakMachines:  trace.Peak(),
		Workers:       len(fam),
		Forks:         spawner.Forks(),
		Reuses:        spawner.Reuses(),
		Lost:          lost,
		Retries:       retries,
		Trace:         trace.Points(),
	}
	if end > 0 {
		res.Speedup = st / end
	}
	return res
}

// arrival is one dataport delivery: either a worker's result for grid g, or
// — when a machine crash took the worker — the master's delayed discovery
// that the job was lost and must be re-dispatched.
type arrival struct {
	g  grid.Grid
	ok bool
}

// startWorker launches the simulated worker: compute on the task
// instance's host, ship the result back through the master's NIC, signal
// the dataport and die. If the host crashes first, the worker is lost: the
// master learns of the loss DetectSec after the crash, and the coordinator
// raises the lost worker's death_worker on its behalf so the rendezvous
// count stays correct.
func startWorker(env *sim.Env, cl *cluster.Cluster, spawner *cluster.Spawner,
	cfg Config, g grid.Grid, ti *cluster.TaskInstance, masterHost *cluster.Machine,
	results *sim.Store[arrival], deaths *sim.Store[struct{}]) {

	env.Spawn(fmt.Sprintf("Worker(%d,%d)", g.L1, g.L2), func(w *sim.Proc) {
		w.Hold(cfg.WorkerSetupSec)
		ok := cl.ComputeChecked(w, ti.Host, cfg.Model.GridWork(g, cfg.Tol))
		if ok {
			cl.Transfer(w, ti.Host, masterHost, workmodel.ResultBytes(g))
			ok = ti.Host.AliveAt(w.Now()) // host may die mid-transfer
		}
		if !ok {
			if detectAt := ti.Host.CrashTime() + cfg.DetectSec; detectAt > w.Now() {
				w.Hold(detectAt - w.Now())
			}
			if cfg.Obs != nil {
				cfg.Obs.EmitAt(int64(w.Now()*1e6), obs.KWorkerLost, ti.Host.Name(), w.Name, "", int64(g.L1), int64(g.L2))
			}
			results.Put(arrival{g: g, ok: false})
			deaths.Put(struct{}{}) // raised on the lost worker's behalf
			return                 // the task instance died with its machine
		}
		results.Put(arrival{g: g, ok: true})
		w.Hold(cfg.EventSec) // raise death_worker
		deaths.Put(struct{}{})
		spawner.Leave(ti, 1)
	})
}

package mwsim

import (
	"testing"
)

// crashed returns a level-7 paper config with one machine crash injected.
func crashed(machine string, at float64) Config {
	cfg := PaperConfig(2, 7, 1e-3)
	cfg.Faults = []MachineFault{{Machine: machine, AtSec: at, Kind: "crash"}}
	return cfg
}

func TestCrashRecoveryTimeline(t *testing.T) {
	// diplice (the first locus machine) dies mid-run with a worker on it:
	// the in-flight subsolve is lost, the master pays the detection latency
	// and re-forks the job on another machine, and the run still completes
	// with every grid solved and a terminating rendezvous.
	base := Run(PaperConfig(2, 7, 1e-3))
	r := Run(crashed("diplice", 15))
	if r.Lost != 1 || r.Retries != 1 {
		t.Fatalf("lost=%d retries=%d, want 1/1", r.Lost, r.Retries)
	}
	if r.ConcurrentSec <= base.ConcurrentSec {
		t.Fatalf("ct = %g not above fault-free %g: recovery cost vanished",
			r.ConcurrentSec, base.ConcurrentSec)
	}
	if over := r.ConcurrentSec - base.ConcurrentSec; over > 10 {
		t.Fatalf("recovery overhead %g s, want detection + re-dispatch only", over)
	}
	// The trace must show the crash: the machine count drops at t=15 and
	// recovers when the replacement worker is forked.
	drop, regrow := false, false
	prev := 0
	for _, pt := range r.Trace {
		if pt.T == 15 && pt.Count < prev {
			drop = true
		}
		if drop && pt.T > 15 && pt.T < r.ConcurrentSec && pt.Count > prev {
			regrow = true
		}
		prev = pt.Count
	}
	if !drop || !regrow {
		t.Fatalf("trace %v shows drop=%v regrow=%v, want the crash and the re-fork", r.Trace, drop, regrow)
	}
	if last := r.Trace[len(r.Trace)-1]; last.Count != 0 {
		t.Fatalf("final machine count %d, want 0", last.Count)
	}
}

func TestCrashRecoveryPerpetualAblation(t *testing.T) {
	// The same early crash under {perpetual} on and off: both deployments
	// must lose the worker and recover; reuse keeps the perpetual run's
	// fork count (and clock) well below the fork-per-worker ablation.
	perp := Run(crashed("diplice", 7))
	cfg := crashed("diplice", 7)
	cfg.Perpetual = false
	nonperp := Run(cfg)
	if perp.Lost != 1 || nonperp.Lost != 1 {
		t.Fatalf("lost = %d / %d, want 1 in both deployments", perp.Lost, nonperp.Lost)
	}
	if perp.Retries != 1 || nonperp.Retries != 1 {
		t.Fatalf("retries = %d / %d, want 1 in both deployments", perp.Retries, nonperp.Retries)
	}
	if perp.Forks >= nonperp.Forks {
		t.Fatalf("perpetual forks %d >= non-perpetual %d", perp.Forks, nonperp.Forks)
	}
	if perp.ConcurrentSec >= nonperp.ConcurrentSec {
		t.Fatalf("perpetual ct %g >= non-perpetual %g", perp.ConcurrentSec, nonperp.ConcurrentSec)
	}
	if last := nonperp.Trace[len(nonperp.Trace)-1]; last.Count != 0 {
		t.Fatalf("non-perpetual run left %d machines alive", last.Count)
	}
}

func TestSlowNodeFault(t *testing.T) {
	// A slow node (the paper's multi-user perturbation, writ large) delays
	// the run but loses nothing — no retry, no re-fork.
	base := Run(PaperConfig(2, 7, 1e-3))
	cfg := PaperConfig(2, 7, 1e-3)
	cfg.Faults = []MachineFault{{Machine: "diplice", AtSec: 0, Kind: "slow", Factor: 5}}
	r := Run(cfg)
	if r.Lost != 0 || r.Retries != 0 {
		t.Fatalf("lost=%d retries=%d, want 0/0 for a slow node", r.Lost, r.Retries)
	}
	if r.ConcurrentSec <= base.ConcurrentSec {
		t.Fatalf("ct = %g not above fault-free %g", r.ConcurrentSec, base.ConcurrentSec)
	}
	if r.Forks != base.Forks {
		t.Fatalf("forks = %d, want the fault-free %d", r.Forks, base.Forks)
	}
}

func TestIgnoredFaults(t *testing.T) {
	// Faults on unknown machines and crashes on the master's own host are
	// ignored: the run is bit-for-bit the fault-free timeline.
	base := Run(PaperConfig(2, 7, 1e-3))
	for _, f := range []MachineFault{
		{Machine: "ghost", AtSec: 10, Kind: "crash"},
		{Machine: "bumpa", AtSec: 10, Kind: "crash"},
	} {
		cfg := PaperConfig(2, 7, 1e-3)
		cfg.Faults = []MachineFault{f}
		r := Run(cfg)
		if r.ConcurrentSec != base.ConcurrentSec || r.Lost != 0 || r.Forks != base.Forks {
			t.Fatalf("fault %+v changed the run: ct %g vs %g, lost %d",
				f, r.ConcurrentSec, base.ConcurrentSec, r.Lost)
		}
	}
}

func TestCrashWithIOWorkers(t *testing.T) {
	// The §4.1 I/O-worker alternative must interoperate with the failure
	// model: the replacement job's data moves through an I/O worker too.
	cfg := crashed("diplice", 15)
	cfg.IOWorkers = true
	r := Run(cfg)
	if r.Lost != 1 || r.Retries != 1 {
		t.Fatalf("lost=%d retries=%d, want 1/1", r.Lost, r.Retries)
	}
	if last := r.Trace[len(r.Trace)-1]; last.Count != 0 {
		t.Fatalf("final machine count %d, want 0", last.Count)
	}
}

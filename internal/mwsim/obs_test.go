package mwsim

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestObservedSimTimeline: a simulated run with a machine crash must record
// a virtual-time event stream that agrees with the run's own accounting and
// renders as a parseable paper-format trace whose Welcome/Bye messages
// reconstruct the machines-in-use ebb and flow.
func TestObservedSimTimeline(t *testing.T) {
	rec := obs.NewRecorder(0)
	cfg := crashed("diplice", 15)
	cfg.Obs = rec
	r := Run(cfg)

	if got := rec.KindCount(obs.KWorkerLost); got != uint64(r.Lost) {
		t.Fatalf("KWorkerLost = %d, want Result.Lost = %d", got, r.Lost)
	}
	if got := rec.KindCount(obs.KMachineCrash); got != 1 {
		t.Fatalf("KMachineCrash = %d, want 1", got)
	}
	forks := rec.KindCount(obs.KTaskFork)
	if forks != uint64(r.Forks) {
		t.Fatalf("KTaskFork = %d, want Result.Forks = %d", forks, r.Forks)
	}
	if got := rec.KindCount(obs.KTaskReuse); got != uint64(r.Reuses) {
		t.Fatalf("KTaskReuse = %d, want Result.Reuses = %d", got, r.Reuses)
	}
	// Every task instance (forked or adopted) is eventually killed: either
	// by its own retirement or with its crashed machine.
	adopts := rec.KindCount(obs.KTaskAdopt)
	if kills := rec.KindCount(obs.KTaskKill); kills != forks+adopts {
		t.Fatalf("KTaskKill = %d, want forks+adopts = %d", kills, forks+adopts)
	}

	// The Welcome/Bye messages of the exported trace must replay Figure 1:
	// the ebb-and-flow peak equals the simulator's own peak and the flow
	// ends at zero live machines.
	var sb strings.Builder
	if err := rec.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	var entries []trace.Entry
	for i := 0; i+1 < len(lines); i += 2 {
		e, err := trace.Parse(lines[i] + "\n" + lines[i+1])
		if err != nil {
			t.Fatalf("entry %d does not parse: %v", i/2, err)
		}
		entries = append(entries, e)
	}
	flow := trace.MachineEbbFlow(entries)
	if len(flow) == 0 {
		t.Fatal("empty ebb-and-flow from exported trace")
	}
	peak := 0
	for _, f := range flow {
		if f.Count > peak {
			peak = f.Count
		}
	}
	if peak != r.PeakMachines {
		t.Fatalf("trace peak %d, want simulator peak %d", peak, r.PeakMachines)
	}
	if last := flow[len(flow)-1].Count; last != 0 {
		t.Fatalf("flow ends at %d live machines, want 0", last)
	}
}
